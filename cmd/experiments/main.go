// Command experiments regenerates every table and figure of the paper's
// experimental evaluation (Section 6):
//
//	experiments [-scale f] [-out file] fig7 fig8 fig9a fig9b fig10 prop51 ablations
//	experiments [-scale f] [-out file] all
//
// scale 1.0 corresponds to the paper's setup (a ~2.1M-tuple TPC-C
// instance, a 1M-tuple synthetic table, logs of up to 2000 update
// queries); the default scale keeps a full run in the order of a minute.
// Output is a set of aligned tables whose columns mirror the paper's
// series; EXPERIMENTS.md in the repository root records a full run next
// to the paper's reported numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hyperprov/internal/benchutil"
)

func main() {
	scale := flag.Float64("scale", 0.05, "experiment scale (1.0 = the paper's setup)")
	out := flag.String("out", "", "write output to this file instead of stdout")
	prop51Steps := flag.Int("prop51-steps", 24, "maximum adversary length for prop51")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-scale f] [-out file] {fig7|fig8|fig9a|fig9b|fig10|prop51|ablations|all}...")
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	run := map[string]func() error{
		"fig7":      func() error { return benchutil.Fig7(w, *scale) },
		"fig8":      func() error { return benchutil.Fig8(w, *scale) },
		"fig9a":     func() error { return benchutil.Fig9a(w, *scale) },
		"fig9b":     func() error { return benchutil.Fig9b(w, *scale) },
		"fig10":     func() error { return benchutil.Fig10(w, *scale) },
		"prop51":    func() error { return benchutil.Prop51(w, *prop51Steps) },
		"ablations": func() error { return benchutil.Ablations(w, *scale) },
	}
	order := []string{"fig7", "fig8", "fig9a", "fig9b", "fig10", "prop51", "ablations"}

	var targets []string
	for _, a := range args {
		if a == "all" {
			targets = append(targets, order...)
			continue
		}
		if _, ok := run[a]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			os.Exit(2)
		}
		targets = append(targets, a)
	}
	fmt.Fprintf(w, "# hyperprov experiments (scale %g)\n\n", *scale)
	for _, t := range targets {
		if err := run[t](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t, err)
			os.Exit(1)
		}
	}
}
