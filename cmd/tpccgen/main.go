// Command tpccgen generates a TPC-C instance and a hyperplane
// transaction log, replacing the py-tpcc setup of the paper's Section 6:
//
//	tpccgen -scale 0.05 -queries 2000 -outdir ./tpcc-data
//
// It writes one CSV per TPC-C relation plus txns.sql, a BEGIN/COMMIT
// transaction log in the SQL fragment accepted by cmd/hyperprov.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hyperprov/internal/db"
	"hyperprov/internal/parser"
	"hyperprov/internal/tpcc"
)

func main() {
	scale := flag.Float64("scale", 0.05, "scale factor (1.0 ≈ the paper's 2.1M-tuple instance)")
	queries := flag.Int("queries", 2000, "minimum number of update queries in the log")
	outdir := flag.String("outdir", "tpcc-data", "output directory")
	seed := flag.Int64("seed", 1, "generator seed")
	syntax := flag.String("syntax", "sql", "log syntax to emit: sql or datalog")
	flag.Parse()

	if err := run(*scale, *queries, *outdir, *seed, *syntax); err != nil {
		fmt.Fprintln(os.Stderr, "tpccgen:", err)
		os.Exit(1)
	}
}

func run(scale float64, queries int, outdir string, seed int64, syntax string) error {
	cfg := tpcc.Scaled(scale)
	cfg.Seed = seed
	g := tpcc.NewGenerator(cfg)
	initial, err := g.InitialDatabase()
	if err != nil {
		return err
	}
	txns := g.TransactionsForQueries(queries)

	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	for _, rel := range initial.Schema().Names() {
		f, err := os.Create(filepath.Join(outdir, rel+".csv"))
		if err != nil {
			return err
		}
		if err := db.WriteCSV(f, initial.Instance(rel)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	logName := "txns.sql"
	var log string
	var err2 error
	switch syntax {
	case "sql":
		log, err2 = parser.FormatSQLLog(initial.Schema(), txns)
	case "datalog":
		logName = "txns.dl"
		log, err2 = parser.FormatDatalogLog(initial.Schema(), txns)
	default:
		err2 = fmt.Errorf("unknown syntax %q", syntax)
	}
	if err2 != nil {
		return err2
	}
	if err := os.WriteFile(filepath.Join(outdir, logName), []byte(log), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d tuples across %d relations and %d transactions (%d update queries) to %s\n",
		initial.NumTuples(), len(initial.Schema().Names()), len(txns), db.CountQueries(txns), outdir)
	return nil
}
