package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyperprov/internal/admission"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
	"hyperprov/internal/server"
	"hyperprov/internal/wal"
)

// runServe implements the serve subcommand: it loads an annotated
// database (CSV data or a snapshot), optionally ingests a transaction
// log in the background while already answering requests, and serves
// the provenance-usage API of internal/server until SIGINT/SIGTERM,
// then shuts down gracefully.
func runServe(args []string) error {
	fs := flag.NewFlagSet("hyperprov serve", flag.ExitOnError)
	data := dataFlags{}
	fs.Var(data, "data", "relation data as Relation=file.csv (repeatable)")
	addr := fs.String("addr", ":8080", "listen address")
	logPath := fs.String("log", "", "transaction log to ingest in the background after startup")
	syntax := fs.String("syntax", "sql", "log syntax: sql or datalog")
	mode := fs.String("mode", "nf", "provenance mode: nf (normal form) or naive")
	loadSnap := fs.String("load-snapshot", "", "restore an annotated database instead of loading CSV data (-data and -mode are then ignored)")
	shards := fs.Int("shards", 1, "hash-shard the engine across N independent lock domains (1 = single engine)")
	autoIndex := fs.Int("autoindex", 0, "auto-build a column index after N =-pinned scans without one (0 disables the advisor)")
	timeout := fs.Duration("timeout", server.DefaultTimeout, "per-request timeout (0 disables)")
	grace := fs.Duration("shutdown-grace", 10*time.Second, "how long in-flight requests may finish on shutdown")
	dataDir := fs.String("data-dir", "", "persist to a write-ahead-logged directory (bootstrapped from -data on first use, recovered afterwards)")
	syncPolicy := fs.String("sync", "always", "WAL durability: always, interval, or never (with -data-dir)")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint after N logged records, 0 = only via POST /v1/checkpoint and shutdown (with -data-dir)")
	follow := fs.String("follow", "", "run as a read replica of the leader at this base URL (e.g. http://leader:8080); requires -data-dir, refuses writes")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (heap and allocs profiles verify the zero-allocation read path)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent expensive requests (db dumps, what-ifs, snapshot saves); 0 = unlimited")
	maxInflightReads := fs.Int("max-inflight-reads", 0, "concurrent cheap point reads (annotation, schema, index listings); 0 = unlimited")
	maxInflightWrites := fs.Int("max-inflight-writes", 0, "concurrent writes (ingest, index DDL, checkpoints, snapshot loads); 0 = unlimited")
	maxStreams := fs.Int("max-streams", 0, "concurrent replication/subscription streams (no queue; excess sheds immediately); 0 = unlimited")
	queueDepth := fs.Int("queue-depth", 16, "per-class wait queue depth once a class is at its limit (0 = shed immediately)")
	queueWait := fs.Duration("queue-wait", time.Second, "longest a request may wait in a class queue before it is shed")
	minService := fs.Duration("min-service", 0, "shed a queued request immediately if its deadline leaves less than this to actually serve it")
	maxBody := fs.Int64("max-body-bytes", 64<<20, "largest accepted request body (ingest logs, snapshot uploads); oversize answers 413")
	reconnectBudget := fs.Int("reconnect-budget", 0, "consecutive failed redials before the follower's circuit breaker opens for a cooldown (with -follow; 0 disables)")
	stallTimeout := fs.Duration("stall-timeout", 10*time.Second, "silence on the replication stream before the follower declares it dead and redials (with -follow; 0 waits forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *loadSnap == "" && len(data) == 0 && *dataDir == "" {
		fs.Usage()
		return errors.New("need -data Rel=file.csv, -load-snapshot, or -data-dir")
	}
	if *follow != "" {
		switch {
		case *dataDir == "":
			return errors.New("-follow needs -data-dir for the replica's local WAL")
		case len(data) > 0, *loadSnap != "", *logPath != "":
			return errors.New("-follow replicates from the leader; -data, -load-snapshot and -log do not apply")
		}
	}

	logger := log.New(os.Stderr, "hyperprov: ", log.LstdFlags)
	engOpts := []engine.Option{engine.WithShards(*shards), engine.WithAutoIndex(*autoIndex)}
	admCfg := admission.Unlimited()
	admCfg.MinService = *minService
	for class, limit := range map[admission.Class]int{
		admission.ClassRead:      *maxInflightReads,
		admission.ClassExpensive: *maxInflight,
		admission.ClassWrite:     *maxInflightWrites,
	} {
		if limit > 0 {
			admCfg.Classes[class] = admission.ClassConfig{
				MaxInFlight: limit, QueueDepth: *queueDepth, QueueWait: *queueWait,
			}
		}
	}
	if *maxStreams > 0 {
		// Streams hold their slot for the connection's lifetime; a queue
		// would just park handshakes, so excess sheds immediately.
		admCfg.Classes[admission.ClassStream] = admission.ClassConfig{MaxInFlight: *maxStreams}
	}
	srvOpts := []server.Option{
		server.WithTimeout(*timeout),
		server.WithLogf(logger.Printf),
		server.WithAdmission(admCfg),
		server.WithMaxBodyBytes(*maxBody),
	}
	var srv *server.Server
	var store *wal.Store
	var follower *wal.Follower
	switch {
	case *follow != "":
		sp, err := wal.ParseSyncPolicy(*syncPolicy)
		if err != nil {
			return err
		}
		walOpts := []wal.Option{
			wal.WithSync(sp),
			wal.WithCheckpointEvery(uint64(*ckptEvery)),
			wal.WithEngineOptions(engOpts...),
			wal.WithReconnectBudget(*reconnectBudget, 0),
			wal.WithStreamStallTimeout(*stallTimeout),
		}
		// Bound only the initial bootstrap wait; once the local engine
		// exists the follower reconnects forever on its own.
		bootCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		fl, err := wal.OpenFollower(bootCtx, *dataDir, wal.HTTPSource(*follow, nil), walOpts...)
		cancel()
		if err != nil {
			return fmt.Errorf("opening follower: %w", err)
		}
		follower = fl
		srv = server.New(fl, srvOpts...)
		rs := fl.ReplicaStats()
		logger.Printf("following %s from %s at LSN %d (leader LSN %d)", *follow, *dataDir, rs.AppliedLSN, rs.LeaderLSN)
	case *dataDir != "":
		if *loadSnap != "" {
			return errors.New("-load-snapshot cannot be combined with -data-dir (the directory has its own checkpoints)")
		}
		st, _, err := openStore(*dataDir, *syncPolicy, *mode, *ckptEvery, data, engOpts)
		if err != nil {
			return err
		}
		store = st
		srv = server.New(st, srvOpts...)
		logger.Printf("persistent store %s at LSN %d (sync=%s)", *dataDir, st.Stats().LSN, *syncPolicy)
	case *loadSnap != "":
		f, err := os.Open(*loadSnap)
		if err != nil {
			return err
		}
		e, err := provstore.LoadSnapshot(f, engOpts...)
		f.Close()
		if err != nil {
			return err
		}
		srv = server.New(e, srvOpts...)
	default:
		e, _, err := loadCSVEngine(data, *mode, engOpts...)
		if err != nil {
			return err
		}
		srv = server.New(e, srvOpts...)
	}
	srv.PublishExpvar("hyperprov")
	logger.Printf("serving %d rows (%s) on %s", srv.Engine().NumRows(), srv.Engine().Mode(), *addr)

	// Background ingestion: the engine answers reads at transaction
	// granularity while the log applies.
	if *logPath != "" {
		src, err := os.ReadFile(*logPath)
		if err != nil {
			return err
		}
		txns, err := parseLog(srv.Engine(), *syntax, string(src))
		if err != nil {
			return err
		}
		go func() {
			start := time.Now()
			if err := srv.Engine().ApplyAll(context.Background(), txns); err != nil {
				logger.Printf("background ingestion failed: %v", err)
				return
			}
			logger.Printf("ingested %d transactions from %s in %v", len(txns), *logPath, time.Since(start).Round(time.Millisecond))
		}()
	}

	handler := srv.Handler()
	if *pprofOn {
		// Opt-in profiling endpoints, mounted in front of the API handler
		// so they bypass its request timeout (profiles stream for their
		// whole -seconds window). The API is unaffected when -pprof is off.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Printf("pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down (grace %v)", *grace)
	// Replication and subscription streams never end on their own and
	// would hold Shutdown for the whole grace period; cut them first —
	// followers redial once the leader is back. Close also stops the
	// subscription manager and uninstalls the engine's commit hook.
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if store != nil {
		// One final checkpoint so the next start restores from a
		// snapshot instead of replaying the whole log, then release the
		// directory lock.
		if err := store.Checkpoint(); err != nil {
			logger.Printf("final checkpoint: %v", err)
		}
		if err := store.Close(); err != nil {
			return fmt.Errorf("closing store: %w", err)
		}
	}
	if follower != nil {
		if err := follower.Close(); err != nil {
			return fmt.Errorf("closing follower: %w", err)
		}
	}
	logger.Printf("bye")
	return nil
}
