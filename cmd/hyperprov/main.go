// Command hyperprov runs an annotated hyperplane transaction log over
// CSV data with provenance tracking and prints the annotated result.
//
//	hyperprov -data Products=products.csv [-data Other=o.csv] -log txns.sql \
//	          [-syntax sql|datalog] [-mode nf|naive] [-show Products] \
//	          [-abort p1,p2] [-minimize] [-all]
//
// The log is either the SQL fragment of Section 2 of the paper
// (INSERT/DELETE/UPDATE with =/<> constant predicates, grouped by
// "BEGIN label; … COMMIT;") or the paper's datalog-like notation (one
// annotated query per line). Initial tuples are annotated t0, t1, … in
// deterministic (sorted-key) order.
//
// By default the live relation is printed with each tuple's provenance
// annotation. -abort prints instead the hypothetical database with the
// given transactions aborted (their annotations set to false), computed
// from provenance without re-running the log. -all includes tombstoned
// tuples (annotations that evaluate to an absent tuple). -as-of N
// prints the database as it stood at the end of MVCC epoch N (epoch 0
// is the initial load) via a pinned time-travel view.
//
// With -data-dir the run is persistent: every transaction is written to
// a checksummed write-ahead log before it is applied, and a later run
// (or serve) on the same directory recovers the state exactly. -sync
// picks the durability level (always, interval, never) and
// -checkpoint-every the automatic checkpoint cadence.
//
// The serve subcommand exposes the engine over HTTP/JSON instead of
// printing it (see serve.go and the README):
//
//	hyperprov serve -addr :8080 -data Products=products.csv [-log txns.sql] \
//	          [-syntax sql|datalog] [-mode nf|naive] [-load-snapshot file] \
//	          [-data-dir dir] [-sync always|interval|never] [-timeout 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/parser"
	"hyperprov/internal/provstore"
	"hyperprov/internal/upstruct"
	"hyperprov/internal/wal"
)

type dataFlags map[string]string

func (d dataFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dataFlags) Set(v string) error {
	eq := strings.IndexByte(v, '=')
	if eq <= 0 {
		return fmt.Errorf("want Relation=file.csv, got %q", v)
	}
	d[v[:eq]] = v[eq+1:]
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "hyperprov serve:", err)
			os.Exit(1)
		}
		return
	}
	data := dataFlags{}
	flag.Var(data, "data", "relation data as Relation=file.csv (repeatable)")
	logPath := flag.String("log", "", "transaction log file")
	syntax := flag.String("syntax", "sql", "log syntax: sql or datalog")
	mode := flag.String("mode", "nf", "provenance mode: nf (normal form) or naive")
	show := flag.String("show", "", "relation to print (default: all)")
	abort := flag.String("abort", "", "comma-separated transaction labels to abort hypothetically")
	minimize := flag.Bool("minimize", true, "apply the zero-axiom minimization to printed annotations")
	all := flag.Bool("all", false, "include tombstoned tuples (outside the live database)")
	explain := flag.Bool("explain", false, "print a human-readable account of each annotation")
	saveSnap := flag.String("save-snapshot", "", "write the annotated database to this file after the run")
	loadSnap := flag.String("load-snapshot", "", "restore an annotated database instead of loading CSV data (-data is then ignored)")
	shards := flag.Int("shards", 1, "hash-shard the engine across N independent lock domains (1 = single engine)")
	autoIndex := flag.Int("autoindex", 0, "auto-build a column index after N =-pinned scans without one (0 disables the advisor)")
	dataDir := flag.String("data-dir", "", "persist to a write-ahead-logged directory (bootstrapped from -data on first use, recovered afterwards)")
	syncPolicy := flag.String("sync", "always", "WAL durability: always, interval, or never (with -data-dir)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint after N logged records, 0 = only when the run finishes (with -data-dir)")
	asOf := flag.Int64("as-of", -1, "print the database as of this MVCC epoch instead of the latest state (-1 = latest; epoch 0 is the initial load, each applied batch commits one more)")
	flag.Parse()

	persistent := *dataDir != ""
	if *loadSnap == "" && !persistent && (len(data) == 0 || *logPath == "") {
		fmt.Fprintln(os.Stderr, "usage: hyperprov -data Rel=file.csv -log txns.sql [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := runConfig{
		data: data, logPath: *logPath, syntax: *syntax, mode: *mode,
		show: *show, abort: *abort, minimize: *minimize, all: *all,
		explain: *explain, saveSnap: *saveSnap, loadSnap: *loadSnap,
		shards: *shards, autoIndex: *autoIndex,
		dataDir: *dataDir, syncPolicy: *syncPolicy, ckptEvery: *ckptEvery,
		asOf: *asOf,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hyperprov:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	data               dataFlags
	logPath            string
	syntax             string
	mode               string
	show               string
	abort              string
	minimize, all      bool
	explain            bool
	saveSnap, loadSnap string
	shards             int
	autoIndex          int
	dataDir            string
	syncPolicy         string
	ckptEvery          int
	asOf               int64
}

func parseMode(name string) (engine.Mode, error) {
	switch name {
	case "nf":
		return engine.ModeNormalForm, nil
	case "naive":
		return engine.ModeNaive, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

// loadCSVDatabase builds the initial database from the -data CSV files,
// deriving each relation schema from its header; it returns the
// database and the relation names in sorted order.
func loadCSVDatabase(data dataFlags) (*db.Database, []string, error) {
	var names []string
	for rel := range data {
		names = append(names, rel)
	}
	sort.Strings(names)
	var rels []*db.RelationSchema
	contents := make(map[string][]byte)
	for _, rel := range names {
		raw, err := os.ReadFile(data[rel])
		if err != nil {
			return nil, nil, err
		}
		contents[rel] = raw
		header := strings.SplitN(string(raw), "\n", 2)[0]
		rs, err := db.ReadCSVSchema(rel, strings.Split(strings.TrimSpace(header), ","))
		if err != nil {
			return nil, nil, err
		}
		rels = append(rels, rs)
	}
	schema, err := db.NewSchema(rels...)
	if err != nil {
		return nil, nil, err
	}
	initial := db.NewDatabase(schema)
	for _, rel := range names {
		if _, err := db.ReadCSV(initial, rel, strings.NewReader(string(contents[rel]))); err != nil {
			return nil, nil, err
		}
	}
	return initial, names, nil
}

// loadCSVEngine builds an in-memory engine from the -data CSV files.
// Options select the sharded engine or the index advisor — annotations
// and snapshots are identical in every configuration.
func loadCSVEngine(data dataFlags, modeName string, opts ...engine.Option) (engine.DB, []string, error) {
	m, err := parseMode(modeName)
	if err != nil {
		return nil, nil, err
	}
	initial, names, err := loadCSVDatabase(data)
	if err != nil {
		return nil, nil, err
	}
	return engine.Open(m, initial, opts...), names, nil
}

// openStore opens (or bootstraps) the persistent store in -data-dir.
// CSV data, when given, seeds a fresh directory only; an existing one
// recovers from its latest checkpoint plus the log suffix and the CSV
// files are ignored.
func openStore(dir, syncName, modeName string, ckptEvery int, data dataFlags, engOpts []engine.Option) (*wal.Store, []string, error) {
	pol, err := wal.ParseSyncPolicy(syncName)
	if err != nil {
		return nil, nil, err
	}
	m, err := parseMode(modeName)
	if err != nil {
		return nil, nil, err
	}
	opts := []wal.Option{
		wal.WithMode(m),
		wal.WithSync(pol),
		wal.WithEngineOptions(engOpts...),
	}
	if ckptEvery > 0 {
		opts = append(opts, wal.WithCheckpointEvery(uint64(ckptEvery)))
	}
	if len(data) > 0 {
		initial, _, err := loadCSVDatabase(data)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, wal.WithInitialDatabase(initial))
	}
	st, err := wal.Open(dir, opts...)
	if err != nil {
		return nil, nil, err
	}
	return st, st.Schema().Names(), nil
}

// parseLog parses a transaction log in the given syntax.
func parseLog(e engine.DB, syntax, src string) ([]db.Transaction, error) {
	switch syntax {
	case "sql":
		return parser.ParseSQLLog(e.Schema(), src)
	case "datalog":
		return parser.ParseDatalogLog(e.Schema(), src)
	default:
		return nil, fmt.Errorf("unknown syntax %q", syntax)
	}
}

func run(cfg runConfig) error {
	var e engine.DB
	var txns []db.Transaction
	var names []string

	opts := []engine.Option{engine.WithShards(cfg.shards), engine.WithAutoIndex(cfg.autoIndex)}
	switch {
	case cfg.dataDir != "":
		if cfg.loadSnap != "" {
			return fmt.Errorf("-load-snapshot cannot be combined with -data-dir (the directory has its own checkpoints)")
		}
		st, ns, err := openStore(cfg.dataDir, cfg.syncPolicy, cfg.mode, cfg.ckptEvery, cfg.data, opts)
		if err != nil {
			return err
		}
		defer func() {
			// Fold the whole run into one checkpoint so the next open
			// starts from a snapshot instead of replaying the log.
			if err := st.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "hyperprov: final checkpoint:", err)
			}
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hyperprov: close:", err)
			}
		}()
		e, names = st, ns
	case cfg.loadSnap != "":
		f, err := os.Open(cfg.loadSnap)
		if err != nil {
			return err
		}
		defer f.Close()
		e, err = provstore.LoadSnapshot(f, opts...)
		if err != nil {
			return err
		}
		names = e.Schema().Names()
	default:
		var err error
		e, names, err = loadCSVEngine(cfg.data, cfg.mode, opts...)
		if err != nil {
			return err
		}
	}

	if cfg.logPath != "" {
		logSrc, err := os.ReadFile(cfg.logPath)
		if err != nil {
			return err
		}
		txns, err = parseLog(e, cfg.syntax, string(logSrc))
		if err != nil {
			return err
		}
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			return err
		}
	}

	// Reads run against r: the live engine, or — under -as-of — a
	// read-only MVCC view pinned at the end of the requested epoch.
	var r engine.Reader = e
	if cfg.asOf >= 0 {
		h := engine.SeqEpoch(e.Horizon())
		if uint64(cfg.asOf) > h {
			return fmt.Errorf("-as-of epoch %d is beyond the committed horizon epoch %d", cfg.asOf, h)
		}
		r = e.At(engine.EpochSeq(uint64(cfg.asOf)))
		fmt.Printf("-- database as of epoch %d (horizon epoch %d)\n", cfg.asOf, h)
	}

	env := func(core.Annot) bool { return true }
	if cfg.abort != "" {
		dead := make(map[core.Annot]bool)
		for _, label := range strings.Split(cfg.abort, ",") {
			dead[core.QueryAnnot(strings.TrimSpace(label))] = false
		}
		env = upstruct.MapEnv(dead, true)
		fmt.Printf("-- hypothetical database with transactions aborted: %s\n", cfg.abort)
	}

	printRels := names
	if cfg.show != "" {
		printRels = []string{cfg.show}
	}
	for _, rel := range printRels {
		if r.Schema().Relation(rel) == nil {
			return fmt.Errorf("unknown relation %s", rel)
		}
		fmt.Printf("== %s ==\n", rel)
		type line struct {
			tuple string
			live  bool
			ann   string
		}
		var lines []line
		r.EachRow(rel, func(t db.Tuple, ann *core.Expr) {
			live := upstruct.Eval(ann, upstruct.Bool, env)
			if !live && !cfg.all {
				return
			}
			if cfg.minimize {
				ann = core.Minimize(ann)
			}
			rendered := ann.String()
			if cfg.explain {
				rendered = "\n" + core.ExplainString(ann)
			}
			lines = append(lines, line{tuple: t.String(), live: live, ann: rendered})
		})
		sort.Slice(lines, func(i, j int) bool { return lines[i].tuple < lines[j].tuple })
		for _, l := range lines {
			marker := " "
			if !l.live {
				marker = "✗"
			}
			fmt.Printf("%s %-50s  %s\n", marker, l.tuple, l.ann)
		}
	}
	fmt.Printf("-- %d transactions, %d update queries, provenance size %d nodes (%s)\n",
		len(txns), db.CountQueries(txns), r.ProvSize(), r.Mode())
	if cfg.saveSnap != "" {
		f, err := os.Create(cfg.saveSnap)
		if err != nil {
			return err
		}
		// Under -as-of the snapshot captures the pinned epoch, not the
		// latest state.
		if err := provstore.SaveSnapshot(f, r); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("-- snapshot written to %s\n", cfg.saveSnap)
	}
	return nil
}
