// Command benchjson converts `go test -bench` text output into a JSON
// artifact and gates metric regressions against a committed baseline.
//
//	go test -bench Fig8 -benchmem . | benchjson convert -o bench.json
//	benchjson delta -baseline bench/baseline.json -match Fig8_Synthetic \
//	    -metric B/op -max-regress 10 bench.json
//
// convert parses every "BenchmarkName-P  N  <value> <unit> ..." line
// into {name, n, metrics{unit: value}}; custom b.ReportMetric pairs
// (prov_nf, gc_pause_p99_us, ...) are captured the same way as ns/op,
// B/op and allocs/op. delta compares one metric across matching
// benchmarks and exits nonzero when the current value regresses past
// the allowed percentage — CI commits bench/baseline.json and fails
// the build when the Fig8 apply path regains allocations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the JSON artifact shape.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: odd metric fields in %q", sc.Text())
		}
		b := Benchmark{Name: m[1], N: n, Metrics: make(map[string]float64, len(fields)/2)}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], sc.Text())
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return rep, nil
}

// metric returns the named metric averaged over every benchmark whose
// name matches re (multiple -count runs of one benchmark average out).
func metric(rep *Report, re *regexp.Regexp, name string) (float64, int) {
	var sum float64
	var n int
	for _, b := range rep.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		if v, ok := b.Metrics[name]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("benchjson convert", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := io.Reader(os.Stdin)
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines in input")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

func runDelta(args []string) error {
	fs := flag.NewFlagSet("benchjson delta", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline JSON (required)")
	match := fs.String("match", ".", "benchmark name regexp")
	name := fs.String("metric", "B/op", "metric to compare")
	maxRegress := fs.Float64("max-regress", 10, "allowed regression percent (current above baseline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: benchjson delta -baseline base.json [-match re] [-metric name] [-max-regress pct] current.json")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return err
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cur, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	bv, bn := metric(base, re, *name)
	cv, cn := metric(cur, re, *name)
	if bn == 0 {
		return fmt.Errorf("benchjson: baseline has no %q for /%s/", *name, *match)
	}
	if cn == 0 {
		return fmt.Errorf("benchjson: current run has no %q for /%s/", *name, *match)
	}
	deltaPct := 0.0
	if bv != 0 {
		deltaPct = (cv - bv) / bv * 100
	}
	fmt.Printf("benchjson: /%s/ %s: baseline %.1f, current %.1f (%+.1f%%, limit +%.1f%%)\n",
		*match, *name, bv, cv, deltaPct, *maxRegress)
	if deltaPct > *maxRegress {
		return fmt.Errorf("benchjson: %s regressed %.1f%% (> %.1f%% allowed)", *name, deltaPct, *maxRegress)
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson convert|delta [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "convert":
		err = runConvert(os.Args[2:])
	case "delta":
		err = runDelta(os.Args[2:])
	default:
		err = fmt.Errorf("benchjson: unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
