// Command synthgen generates the synthetic dataset and update sequence
// of the paper's Section 6.1:
//
//	synthgen -tuples 100000 -pool 20 -group 1 -updates 200 -outdir ./synth-data
//
// It writes R.csv and txns.sql (a BEGIN/COMMIT SQL log accepted by
// cmd/hyperprov).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hyperprov/internal/db"
	"hyperprov/internal/parser"
	"hyperprov/internal/workload"
)

func main() {
	tuples := flag.Int("tuples", 100000, "initial table size (the paper uses 1000000)")
	pool := flag.Int("pool", 20, "total number of affected tuples (0.02% in the paper)")
	group := flag.Int("group", 1, "tuples affected per query")
	updates := flag.Int("updates", 200, "number of update queries")
	perTxn := flag.Int("queries-per-txn", 1, "queries per transaction annotation")
	merge := flag.Float64("merge", 0.1, "fraction of modifications collapsing a group")
	seed := flag.Int64("seed", 1, "generator seed")
	outdir := flag.String("outdir", "synth-data", "output directory")
	syntax := flag.String("syntax", "sql", "log syntax to emit: sql or datalog")
	flag.Parse()

	cfg := workload.Config{
		Tuples: *tuples, Pool: *pool, Group: *group, Updates: *updates,
		QueriesPerTxn: *perTxn, MergeRatio: *merge, Seed: *seed,
	}
	if err := run(cfg, *outdir, *syntax); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(cfg workload.Config, outdir string, syntax string) error {
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outdir, "R.csv"))
	if err != nil {
		return err
	}
	if err := db.WriteCSV(f, initial.Instance("R")); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	logName := "txns.sql"
	var log string
	var err2 error
	switch syntax {
	case "sql":
		log, err2 = parser.FormatSQLLog(initial.Schema(), txns)
	case "datalog":
		logName = "txns.dl"
		log, err2 = parser.FormatDatalogLog(initial.Schema(), txns)
	default:
		err2 = fmt.Errorf("unknown syntax %q", syntax)
	}
	if err2 != nil {
		return err2
	}
	if err := os.WriteFile(filepath.Join(outdir, logName), []byte(log), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d tuples and %d transactions (%d update queries) to %s\n",
		initial.NumTuples(), len(txns), db.CountQueries(txns), outdir)
	return nil
}
