package hyperprov_test

// Tests of the public facade: everything a downstream user touches is
// exercised through the hyperprov package itself, following the paper's
// running example end to end.

import (
	"context"
	"strings"
	"testing"

	"hyperprov"
)

func exampleSchema(t *testing.T) *hyperprov.Schema {
	t.Helper()
	return hyperprov.MustSchema(hyperprov.MustRelation("Products",
		hyperprov.Attribute{Name: "Product", Kind: hyperprov.KindString},
		hyperprov.Attribute{Name: "Category", Kind: hyperprov.KindString},
		hyperprov.Attribute{Name: "Price", Kind: hyperprov.KindInt},
	))
}

func exampleDB(t *testing.T) *hyperprov.Database {
	t.Helper()
	d := hyperprov.NewDatabase(exampleSchema(t))
	for _, r := range []hyperprov.Tuple{
		{hyperprov.S("Kids mnt bike"), hyperprov.S("Sport"), hyperprov.I(120)},
		{hyperprov.S("Tennis Racket"), hyperprov.S("Sport"), hyperprov.I(70)},
		{hyperprov.S("Kids mnt bike"), hyperprov.S("Kids"), hyperprov.I(120)},
		{hyperprov.S("Children sneakers"), hyperprov.S("Fashion"), hyperprov.I(40)},
	} {
		if err := d.InsertTuple("Products", r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func annotByCategory() hyperprov.Option {
	return hyperprov.WithInitialAnnotations(func(rel string, tu hyperprov.Tuple) hyperprov.Annot {
		if tu[0].Str() == "Tennis Racket" {
			return hyperprov.TupleAnnot("p2")
		}
		switch tu[1].Str() {
		case "Sport":
			return hyperprov.TupleAnnot("p1")
		case "Kids":
			return hyperprov.TupleAnnot("p3")
		default:
			return hyperprov.TupleAnnot("p4")
		}
	})
}

func TestFacadeRunningExample(t *testing.T) {
	schema := exampleSchema(t)
	txns, err := hyperprov.ParseDatalogLog(schema, `
ProductsM,p("Kids mnt bike", "Kids", c -> "Kids mnt bike", "Sport", c):-
ProductsM,p("Kids mnt bike", "Sport", c -> "Kids mnt bike", "Bicycles", c):-
ProductsM,pp(a, "Sport", c -> a, "Sport", 50):-
`)
	if err != nil {
		t.Fatal(err)
	}
	eng := hyperprov.New(hyperprov.ModeNormalForm, exampleDB(t), annotByCategory())
	if err := eng.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	bic := hyperprov.Tuple{hyperprov.S("Kids mnt bike"), hyperprov.S("Bicycles"), hyperprov.I(120)}
	ann := hyperprov.Minimize(eng.Annotation("Products", bic))
	if got, want := ann.String(), "(p1 + p3) *M p"; got != want {
		t.Errorf("Bicycles annotation = %q, want %q (Example 5.7)", got, want)
	}

	// Deletion propagation (Example 4.3).
	without := hyperprov.DeletionPropagation(eng, hyperprov.TupleAnnot("p2"))
	racket50 := hyperprov.Tuple{hyperprov.S("Tennis Racket"), hyperprov.S("Sport"), hyperprov.I(50)}
	if without.Instance("Products").Contains(racket50) {
		t.Error("deleting p2 must remove the discounted racket")
	}

	// Transaction abortion (Example 4.4).
	aborted := hyperprov.AbortTransactions(eng, "p")
	bike50 := hyperprov.Tuple{hyperprov.S("Kids mnt bike"), hyperprov.S("Sport"), hyperprov.I(50)}
	if !aborted.Instance("Products").Contains(bike50) {
		t.Error("aborting p must reprice the Sport bike")
	}
}

func TestFacadeExpressionAPI(t *testing.T) {
	e, err := hyperprov.ParseExpr("(p1 +M (p3 *M p)) - p", func(name string) hyperprov.AnnotKind {
		if name == "p" {
			return hyperprov.KindQuery
		}
		return hyperprov.KindTuple
	})
	if err != nil {
		t.Fatal(err)
	}
	n := hyperprov.Normalize(e)
	if got, want := n.String(), "p1 - p"; got != want {
		t.Errorf("Normalize = %q, want %q", got, want)
	}
	built := hyperprov.Minus(
		hyperprov.PlusM(hyperprov.Var(hyperprov.TupleAnnot("p1")),
			hyperprov.DotM(hyperprov.Var(hyperprov.TupleAnnot("p3")), hyperprov.Var(hyperprov.QueryAnnot("p")))),
		hyperprov.Var(hyperprov.QueryAnnot("p")))
	if !built.Equal(e) {
		t.Error("constructor-built expression differs from the parsed one")
	}
	var b strings.Builder
	if err := hyperprov.WriteDOT(&b, "x", e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "digraph") {
		t.Error("DOT export broken")
	}
	if hyperprov.SimplifyZero(hyperprov.PlusM(hyperprov.Zero(), e)) != e {
		t.Error("SimplifyZero broken through the facade")
	}
	if hyperprov.Sum().Op() != hyperprov.OpZero {
		t.Error("empty sum must be zero")
	}
}

func TestFacadeEvalStructures(t *testing.T) {
	e, err := hyperprov.ParseExpr("(a + b) *M p", func(name string) hyperprov.AnnotKind {
		if name == "p" {
			return hyperprov.KindQuery
		}
		return hyperprov.KindTuple
	})
	if err != nil {
		t.Fatal(err)
	}
	bv := hyperprov.Eval(e, hyperprov.Bool, func(a hyperprov.Annot) bool {
		return a.Name != "b"
	})
	if !bv {
		t.Error("Boolean eval through facade broken")
	}
	sv := hyperprov.Eval(e, hyperprov.Sets, func(a hyperprov.Annot) hyperprov.Set {
		switch a.Name {
		case "a":
			return hyperprov.NewSet("IL")
		case "b":
			return hyperprov.NewSet("FR")
		default:
			return hyperprov.NewSet("IL", "FR")
		}
	})
	if !sv.Equal(hyperprov.NewSet("FR", "IL")) {
		t.Errorf("set eval = %v", sv)
	}
	st := hyperprov.TrustStructure{L: 0.5}
	tv := hyperprov.Eval(e, st, func(a hyperprov.Annot) hyperprov.Trust {
		return hyperprov.Score(0.9)
	})
	if !st.Trusted(tv) {
		t.Error("trust eval through facade broken")
	}
}

func TestFacadeSQLFrontEnd(t *testing.T) {
	schema := exampleSchema(t)
	u, err := hyperprov.ParseSQLStatement(schema, "DELETE FROM Products WHERE Category = 'Fashion'")
	if err != nil {
		t.Fatal(err)
	}
	d := exampleDB(t)
	if err := d.Apply(u); err != nil {
		t.Fatal(err)
	}
	if d.NumTuples() != 3 {
		t.Errorf("after delete: %d tuples, want 3", d.NumTuples())
	}
	if _, _, err := hyperprov.ParseDatalogQuery(schema, `Products+,p("x","y",1):-`); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEngineOptions(t *testing.T) {
	initial := exampleDB(t)
	for _, opt := range [][]hyperprov.Option{
		nil,
		{hyperprov.WithCopyOnWrite(false)},
		{hyperprov.WithEagerZeroAxioms(true)},
	} {
		e := hyperprov.New(hyperprov.ModeNaive, initial, opt...)
		txn := hyperprov.Transaction{Label: "p", Updates: []hyperprov.Update{
			hyperprov.Delete("Products", hyperprov.AllPattern(3)),
		}}
		if err := e.ApplyTransaction(&txn); err != nil {
			t.Fatal(err)
		}
		if live := hyperprov.LiveDB(e); live.NumTuples() != 0 {
			t.Errorf("live DB after delete-all: %d tuples", live.NumTuples())
		}
	}
}
