// Certification demonstrates the trust semantics of Section 4.1: tuples
// and transactions carry trust scores in [0,1]; given a minimal trust
// level L, specializing the provenance certifies exactly the tuples
// that an execution involving only sufficiently trusted inputs and
// transactions would produce.
package main

import (
	"context"
	"fmt"
	"log"

	"hyperprov"
)

func main() {
	schema := hyperprov.MustSchema(hyperprov.MustRelation("Readings",
		hyperprov.Attribute{Name: "Sensor", Kind: hyperprov.KindString},
		hyperprov.Attribute{Name: "Zone", Kind: hyperprov.KindString},
		hyperprov.Attribute{Name: "Status", Kind: hyperprov.KindString},
	))
	initial := hyperprov.NewDatabase(schema)
	// Sensor readings from sources of varying reliability.
	trust := map[string]float64{
		"s1": 0.95, // calibrated sensor
		"s2": 0.60, // aging sensor
		"s3": 0.20, // known-flaky sensor
	}
	for _, r := range []hyperprov.Tuple{
		{hyperprov.S("s1"), hyperprov.S("north"), hyperprov.S("raw")},
		{hyperprov.S("s2"), hyperprov.S("north"), hyperprov.S("raw")},
		{hyperprov.S("s3"), hyperprov.S("south"), hyperprov.S("raw")},
	} {
		if err := initial.InsertTuple("Readings", r); err != nil {
			log.Fatal(err)
		}
	}
	annots := hyperprov.WithInitialAnnotations(func(rel string, t hyperprov.Tuple) hyperprov.Annot {
		return hyperprov.TupleAnnot(t[0].Str())
	})

	// A well-reviewed pipeline validates the north zone; a hotfix with a
	// low review score validates the south zone.
	txns, err := hyperprov.ParseSQLLog(schema, `
BEGIN reviewed_pipeline;
UPDATE Readings SET Status = 'validated' WHERE Zone = 'north';
COMMIT;
BEGIN hotfix;
UPDATE Readings SET Status = 'validated' WHERE Zone = 'south';
COMMIT;
`)
	if err != nil {
		log.Fatal(err)
	}
	txnTrust := map[string]float64{"reviewed_pipeline": 0.9, "hotfix": 0.4}

	eng := hyperprov.New(hyperprov.ModeNormalForm, initial, annots)
	if err := eng.ApplyAll(context.Background(), txns); err != nil {
		log.Fatal(err)
	}

	env := func(a hyperprov.Annot) hyperprov.Trust {
		if v, ok := trust[a.Name]; ok {
			return hyperprov.Score(v)
		}
		if v, ok := txnTrust[a.Name]; ok {
			return hyperprov.Score(v)
		}
		return hyperprov.Score(1)
	}

	for _, level := range []float64{0.3, 0.5, 0.8} {
		certified := hyperprov.Certify(eng, level, env)
		fmt.Printf("trust level L=%.1f certifies %d validated readings:\n", level, count(certified, "validated"))
		certified.Instance("Readings").Each(func(t hyperprov.Tuple) {
			if t[2].Str() == "validated" {
				fmt.Printf("  %v\n", t)
			}
		})
	}
	// At L=0.3 both pipelines pass but sensor s3 does not, so only the
	// north readings certify; raising L to 0.8 additionally drops the
	// aging sensor s2.
}

func count(d *hyperprov.Database, status string) int {
	n := 0
	d.Instance("Readings").Each(func(t hyperprov.Tuple) {
		if t[2].Str() == status {
			n++
		}
	})
	return n
}
