// Accesscontrol demonstrates the set-based access-control semantics of
// Section 4.1: tuples and transactions are annotated with sets of
// country names; specializing the abstract provenance into the set
// structure computes, for every tuple of the result, exactly the
// countries whose users may see it.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"hyperprov"
)

func main() {
	schema := hyperprov.MustSchema(hyperprov.MustRelation("Products",
		hyperprov.Attribute{Name: "Product", Kind: hyperprov.KindString},
		hyperprov.Attribute{Name: "Category", Kind: hyperprov.KindString},
		hyperprov.Attribute{Name: "Price", Kind: hyperprov.KindInt},
	))
	initial := hyperprov.NewDatabase(schema)
	// Per-country catalogues: the bike ships everywhere, the racket only
	// inside the EU, the sneakers only to IL.
	visibility := map[string]hyperprov.Set{
		"Kids mnt bike":     hyperprov.NewSet("IL", "FR", "DE", "US"),
		"Tennis Racket":     hyperprov.NewSet("FR", "DE"),
		"Children sneakers": hyperprov.NewSet("IL"),
	}
	for _, r := range []hyperprov.Tuple{
		{hyperprov.S("Kids mnt bike"), hyperprov.S("Sport"), hyperprov.I(120)},
		{hyperprov.S("Tennis Racket"), hyperprov.S("Sport"), hyperprov.I(70)},
		{hyperprov.S("Children sneakers"), hyperprov.S("Fashion"), hyperprov.I(40)},
	} {
		if err := initial.InsertTuple("Products", r); err != nil {
			log.Fatal(err)
		}
	}
	annots := hyperprov.WithInitialAnnotations(func(rel string, t hyperprov.Tuple) hyperprov.Annot {
		return hyperprov.TupleAnnot("t:" + t[0].Str())
	})

	// A summer-sale transaction that only the EU storefronts run, and a
	// global deletion of the Fashion category.
	txns, err := hyperprov.ParseSQLLog(schema, `
BEGIN eu_sale;
UPDATE Products SET Price = 50 WHERE Category = 'Sport';
COMMIT;
BEGIN global_cleanup;
DELETE FROM Products WHERE Category = 'Fashion';
COMMIT;
`)
	if err != nil {
		log.Fatal(err)
	}
	eng := hyperprov.New(hyperprov.ModeNormalForm, initial, annots)
	if err := eng.ApplyAll(context.Background(), txns); err != nil {
		log.Fatal(err)
	}

	// The valuation: tuple annotations carry catalogue visibility;
	// transaction annotations the countries that ran them. The
	// global cleanup is visible everywhere.
	everywhere := hyperprov.NewSet("IL", "FR", "DE", "US")
	env := func(a hyperprov.Annot) hyperprov.Set {
		switch a {
		case hyperprov.QueryAnnot("eu_sale"):
			return hyperprov.NewSet("FR", "DE")
		case hyperprov.QueryAnnot("global_cleanup"):
			return everywhere
		default:
			return visibility[a.Name[len("t:"):]]
		}
	}

	result := hyperprov.AccessControl(eng, env)
	fmt.Println("per-country visibility of the resulting catalogue:")
	var lines []string
	eng.EachRow("Products", func(t hyperprov.Tuple, ann *hyperprov.Expr) {
		set := hyperprov.Eval(hyperprov.Minimize(ann), hyperprov.Sets, env)
		if set.Len() == 0 {
			return
		}
		lines = append(lines, fmt.Sprintf("  %-38s visible in %s", t, set))
	})
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}

	// A French user sees the sale price; a US user still sees the
	// original price, because the sale transaction is not visible to it.
	fr := countryView(result, "FR")
	us := countryView(result, "US")
	fmt.Printf("\nFR sees %d product rows, US sees %d\n", fr, us)
}

func countryView(result map[string]map[string]hyperprov.Set, country string) int {
	n := 0
	for _, rows := range result {
		for _, set := range rows {
			if set.Contains(country) {
				n++
			}
		}
	}
	return n
}
