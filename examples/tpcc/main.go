// Tpcc runs a provenance-tracked TPC-C session (the Section 6.1
// workload): a scaled TPC-C instance executes a mix of New-Order,
// Payment and Delivery transactions lowered to hyperplane updates; the
// example then inspects the provenance of a customer's balance and
// answers "which orders would still exist had transaction X aborted?"
// without re-running anything.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hyperprov"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/upstruct"
)

func main() {
	gen := tpcc.NewGenerator(tpcc.Scaled(0.02))
	initial, err := gen.InitialDatabase()
	if err != nil {
		log.Fatal(err)
	}
	txns := gen.TransactionsForQueries(150)
	fmt.Printf("TPC-C instance: %d tuples across %d tables; log of %d transactions\n",
		initial.NumTuples(), len(initial.Schema().Names()), len(txns))

	eng := hyperprov.New(hyperprov.ModeNormalForm, initial)
	start := time.Now()
	if err := eng.ApplyAll(context.Background(), txns); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed with provenance in %v; provenance size %d nodes, %d stored rows (%d live)\n",
		time.Since(start), eng.ProvSize(), eng.NumRows(), eng.SupportSize())

	// Find a customer row a Payment transaction touched and show the
	// provenance trail of its current balance.
	var sample hyperprov.Tuple
	var sampleAnn *hyperprov.Expr
	eng.EachRow(tpcc.Customer, func(t hyperprov.Tuple, ann *hyperprov.Expr) {
		if sample == nil && ann.Size() >= 5 && upstruct.Eval(ann, upstruct.Bool, allTrue) {
			sample, sampleAnn = t, ann
		}
	})
	if sample != nil {
		fmt.Printf("\ncustomer (c_id=%v, d=%v, w=%v) balance %v has provenance\n  %s\n",
			sample[0], sample[1], sample[2], sample[7], hyperprov.Minimize(sampleAnn))
	}

	// Hypothetically abort the first New-Order transaction and count the
	// orders that disappear, from provenance alone.
	var abortLabel string
	for i := range txns {
		if len(txns[i].Label) >= 8 && txns[i].Label[:8] == "neworder" {
			abortLabel = txns[i].Label
			break
		}
	}
	if abortLabel == "" {
		return
	}
	live := hyperprov.LiveDB(eng)
	hypo := hyperprov.AbortTransactions(eng, abortLabel)
	fmt.Printf("\naborting %s: ORDERS %d -> %d, ORDER_LINE %d -> %d, NEW_ORDER %d -> %d\n",
		abortLabel,
		live.Instance(tpcc.Orders).Len(), hypo.Instance(tpcc.Orders).Len(),
		live.Instance(tpcc.OrderLine).Len(), hypo.Instance(tpcc.OrderLine).Len(),
		live.Instance(tpcc.NewOrder).Len(), hypo.Instance(tpcc.NewOrder).Len())
}

func allTrue(hyperprov.Annot) bool { return true }
