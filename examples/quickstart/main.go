// Quickstart walks through the paper's running example (Figures 1, 2
// and 4): the Products table, transaction T1 (re-categorizing the kids
// mountain bike) and transaction T2 (discounting Sport products), with
// provenance tracked in both the naive and the normal-form
// representation, and two what-if questions answered from provenance
// alone.
package main

import (
	"context"
	"fmt"
	"log"

	"hyperprov"
)

func main() {
	// Figure 1a: the Products table, annotated p1…p4.
	schema := hyperprov.MustSchema(hyperprov.MustRelation("Products",
		hyperprov.Attribute{Name: "Product", Kind: hyperprov.KindString},
		hyperprov.Attribute{Name: "Category", Kind: hyperprov.KindString},
		hyperprov.Attribute{Name: "Price", Kind: hyperprov.KindInt},
	))
	initial := hyperprov.NewDatabase(schema)
	rows := []hyperprov.Tuple{
		{hyperprov.S("Kids mnt bike"), hyperprov.S("Sport"), hyperprov.I(120)},
		{hyperprov.S("Tennis Racket"), hyperprov.S("Sport"), hyperprov.I(70)},
		{hyperprov.S("Kids mnt bike"), hyperprov.S("Kids"), hyperprov.I(120)},
		{hyperprov.S("Children sneakers"), hyperprov.S("Fashion"), hyperprov.I(40)},
	}
	for _, r := range rows {
		if err := initial.InsertTuple("Products", r); err != nil {
			log.Fatal(err)
		}
	}
	names := map[string]string{
		"Sport":   "p1",
		"Kids":    "p3",
		"Fashion": "p4",
	}
	annots := hyperprov.WithInitialAnnotations(func(rel string, t hyperprov.Tuple) hyperprov.Annot {
		if t[0].Str() == "Tennis Racket" {
			return hyperprov.TupleAnnot("p2")
		}
		return hyperprov.TupleAnnot(names[t[1].Str()])
	})

	// Figure 2: T1 moves the kids bike Kids→Sport→Bicycles; T2 sets the
	// price of every Sport product to 50. Written in the paper's
	// datalog-like notation and parsed.
	txns, err := hyperprov.ParseDatalogLog(schema, `
ProductsM,p("Kids mnt bike", "Kids", c -> "Kids mnt bike", "Sport", c):-
ProductsM,p("Kids mnt bike", "Sport", c -> "Kids mnt bike", "Bicycles", c):-
ProductsM,pp(a, "Sport", c -> a, "Sport", 50):-
`)
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []hyperprov.Mode{hyperprov.ModeNaive, hyperprov.ModeNormalForm} {
		eng := hyperprov.New(mode, initial, annots)
		if err := eng.ApplyAll(context.Background(), txns); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %v ===\n", mode)
		eng.EachRow("Products", func(t hyperprov.Tuple, ann *hyperprov.Expr) {
			fmt.Printf("  %-42s %s\n", t, hyperprov.Minimize(ann))
		})

		// Example 4.3: what if the Tennis Racket had not been in the
		// database? Assign false to p2 — no re-execution needed.
		without := hyperprov.DeletionPropagation(eng, hyperprov.TupleAnnot("p2"))
		racket := hyperprov.Tuple{hyperprov.S("Tennis Racket"), hyperprov.S("Sport"), hyperprov.I(50)}
		fmt.Printf("  deletion propagation: discounted racket present without p2? %v\n",
			without.Instance("Products").Contains(racket))

		// Example 4.4: what if transaction p had been aborted? The Sport
		// bike would then have been discounted by pp.
		abort := hyperprov.AbortTransactions(eng, "p")
		bike := hyperprov.Tuple{hyperprov.S("Kids mnt bike"), hyperprov.S("Sport"), hyperprov.I(50)}
		fmt.Printf("  abortion: Sport bike at 50 present without transaction p? %v\n\n",
			abort.Instance("Products").Contains(bike))
	}
}
