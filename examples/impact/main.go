// Impact demonstrates the analysis layer built on top of provenance:
// the inverted impact index answers "which output tuples could change
// if this input tuple or this transaction were revoked?", snapshots
// persist the annotated database across process restarts, and Explain
// renders a tuple's history for humans.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"hyperprov"
	"hyperprov/internal/benchutil"
	"hyperprov/internal/engine"
	"hyperprov/internal/tpcc"
)

func main() {
	gen := tpcc.NewGenerator(tpcc.Scaled(0.01))
	initial, err := gen.InitialDatabase()
	if err != nil {
		log.Fatal(err)
	}
	txns := gen.TransactionsForQueries(120)
	eng := hyperprov.New(hyperprov.ModeNormalForm, initial,
		hyperprov.WithInitialAnnotations(benchutil.KeyAnnot))
	if err := eng.ApplyAll(context.Background(), txns); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-C session: %d tuples, %d transactions tracked\n",
		initial.NumTuples(), len(txns))

	// Build the inverted index once; then impact questions are
	// sub-millisecond lookups plus candidate-local valuations.
	im := engine.BuildImpact(eng)
	fmt.Printf("impact index over %d distinct annotations\n", im.NumAnnotations())

	// Which rows would actually change if the first delivery had been
	// aborted?
	var delivery string
	for i := range txns {
		if len(txns[i].Updates) > 0 && txns[i].Label[:3] == "del" {
			delivery = txns[i].Label
			break
		}
	}
	if delivery == "" && len(txns) > 0 {
		delivery = txns[0].Label
	}
	if delivery != "" {
		rels, cands := im.Candidates(hyperprov.QueryAnnot(delivery))
		frels, flipped := im.Flipped(hyperprov.QueryAnnot(delivery))
		fmt.Printf("\ntransaction %s: %d candidate rows, %d actually flip:\n", delivery, len(cands), len(flipped))
		for i, tu := range flipped {
			if i >= 5 {
				fmt.Printf("  … and %d more\n", len(flipped)-5)
				break
			}
			fmt.Printf("  %-12s %v\n", frels[i], tu)
		}
		_ = rels
	}

	// Tuple-level dependencies of a modified customer.
	var cust hyperprov.Tuple
	eng.EachRow(tpcc.Customer, func(t hyperprov.Tuple, ann *hyperprov.Expr) {
		if cust == nil && ann.Size() > 1 {
			cust = t
		}
	})
	if cust != nil {
		tuples, labels := engine.Dependencies(eng, tpcc.Customer, cust)
		fmt.Printf("\ncustomer (c_id=%v, d=%v, w=%v) depends on %d input tuples and %d transactions\n",
			cust[0], cust[1], cust[2], len(tuples), len(labels))
		fmt.Println(hyperprov.ExplainString(hyperprov.Minimize(eng.Annotation(tpcc.Customer, cust))))
	}

	// Persist the annotated database and prove the snapshot is usable.
	var buf bytes.Buffer
	if err := hyperprov.SaveSnapshot(&buf, eng); err != nil {
		log.Fatal(err)
	}
	restored, err := hyperprov.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes for %d provenance nodes; restored live db equals original: %v\n",
		buf.Len(), eng.ProvSize(),
		hyperprov.LiveDB(restored).Equal(hyperprov.LiveDB(eng)))
}
