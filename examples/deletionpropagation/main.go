// Deletionpropagation demonstrates hypothetical reasoning at scale
// (Section 4.1 and the Figure 8c experiment): a synthetic table and a
// long update sequence are executed once with provenance; afterwards,
// "what would the result be without tuple X?" and "…with transaction T
// aborted?" are answered by valuation, and cross-checked against actual
// re-execution.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hyperprov"
	"hyperprov/internal/benchutil"
	"hyperprov/internal/workload"
)

func main() {
	cfg := workload.Config{
		Tuples: 50_000, Pool: 25, Group: 1, Updates: 250,
		QueriesPerTxn: 10, MergeRatio: 0.1, Seed: 42,
	}
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic table: %d tuples, %d transactions (%d update queries)\n",
		initial.NumTuples(), len(txns), cfg.Updates)

	eng := hyperprov.New(hyperprov.ModeNormalForm, initial,
		hyperprov.WithInitialAnnotations(benchutil.KeyAnnot))
	start := time.Now()
	if err := eng.ApplyAll(context.Background(), txns); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provenance tracking run: %v (provenance size %d nodes)\n",
		time.Since(start), eng.ProvSize())

	// What-if 1: delete a pool tuple from the input.
	victim, _ := benchutil.PickVictim(initial, txns, "R")
	start = time.Now()
	hypo := hyperprov.DeletionPropagation(eng, benchutil.KeyAnnot("R", victim))
	propagation := time.Since(start)

	start = time.Now()
	smaller := initial.Clone()
	if err := smaller.Apply(hyperprov.Delete("R", hyperprov.ConstPattern(victim))); err != nil {
		log.Fatal(err)
	}
	if err := smaller.ApplyAll(txns); err != nil {
		log.Fatal(err)
	}
	rerun := time.Since(start)

	if !hypo.Equal(smaller) {
		log.Fatalf("deletion propagation diverged from re-execution:\n%s", hypo.Diff(smaller))
	}
	fmt.Printf("deletion propagation of %v:\n  by valuation   %v\n  by re-running  %v (%s)\n  results agree: true\n",
		victim, propagation, rerun, benchutil.Ratio(rerun, propagation))

	// What-if 2: abort the 3rd transaction.
	label := txns[2].Label
	start = time.Now()
	aborted := hyperprov.AbortTransactions(eng, label)
	abortTime := time.Since(start)

	replay := initial.Clone()
	for i := range txns {
		if txns[i].Label == label {
			continue
		}
		if err := replay.ApplyTransaction(&txns[i]); err != nil {
			log.Fatal(err)
		}
	}
	if !aborted.Equal(replay) {
		log.Fatalf("transaction abortion diverged from re-execution:\n%s", aborted.Diff(replay))
	}
	fmt.Printf("abortion of transaction %s by valuation: %v; results agree: true\n", label, abortTime)
}
