package hyperprov

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section 6), plus the Proposition 5.1 adversary and the design
// ablations. Each benchmark runs a fixed, scaled-down instance of the
// corresponding experiment and reports the paper's headline metrics via
// b.ReportMetric:
//
//	prov_naive / prov_nf    provenance size (expression tree nodes)
//	ns_naive / ns_nf / …    runtime per configuration
//	use_* metrics           provenance-usage (deletion propagation) time
//
// `go test -bench=. -benchmem` regenerates every series point at the
// default scale; `cmd/experiments` prints the full paper-style tables
// and accepts larger scales.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"hyperprov/internal/benchutil"
	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/wal"
	"hyperprov/internal/workload"
)

// benchScale keeps every benchmark in CI time; cmd/experiments runs the
// full-scale versions.
const benchScale = 0.02

func tpccWorkload(b *testing.B, queries int) (*db.Database, []db.Transaction) {
	b.Helper()
	g := tpcc.NewGenerator(tpcc.Scaled(benchScale))
	initial, err := g.InitialDatabase()
	if err != nil {
		b.Fatal(err)
	}
	return initial, g.TransactionsForQueries(queries)
}

func syntheticWorkload(b *testing.B, cfg workload.Config) (*db.Database, []db.Transaction) {
	b.Helper()
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return initial, txns
}

func runEngines(b *testing.B, initial *db.Database, txns []db.Transaction) {
	b.Helper()
	var lastNaive, lastNF, lastNaiveDAG, lastNFDAG int64
	for i := 0; i < b.N; i++ {
		o, naive, nf, err := benchutil.RunOverhead(initial, txns)
		if err != nil {
			b.Fatal(err)
		}
		lastNaive, lastNF = o.NaiveProv, o.NFProv
		lastNaiveDAG, lastNFDAG = naive.ProvDAGSize(), nf.ProvDAGSize()
		b.ReportMetric(float64(o.NaiveTime.Nanoseconds()), "ns_naive")
		b.ReportMetric(float64(o.NFTime.Nanoseconds()), "ns_nf")
		b.ReportMetric(float64(o.PlainTime.Nanoseconds()), "ns_noprov")
	}
	b.ReportMetric(float64(lastNaive), "prov_naive")
	b.ReportMetric(float64(lastNF), "prov_nf")
	// The hash-consed measures: distinct expression nodes actually held,
	// next to the paper's per-occurrence tree counts above.
	b.ReportMetric(float64(lastNaiveDAG), "prov_naive_dag")
	b.ReportMetric(float64(lastNFDAG), "prov_nf_dag")
	// Process-cumulative GC pause percentiles, recorded into the bench
	// artifact next to B/op (the allocation-free hot path shows up here
	// as flat pause tails under load).
	p50, p90, p99 := benchutil.GCPausePercentiles()
	b.ReportMetric(p50, "gc_pause_p50_us")
	b.ReportMetric(p90, "gc_pause_p90_us")
	b.ReportMetric(p99, "gc_pause_p99_us")
}

// BenchmarkFig7_TPCC regenerates Figures 7a/7b: time and memory overhead
// of provenance tracking over a TPC-C log.
func BenchmarkFig7_TPCC(b *testing.B) {
	initial, txns := tpccWorkload(b, 40)
	runEngines(b, initial, txns)
}

// BenchmarkFig7c_TPCCUsage regenerates Figure 7c: deletion propagation
// by valuation versus re-execution on TPC-C.
func BenchmarkFig7c_TPCCUsage(b *testing.B) {
	initial, txns := tpccWorkload(b, 40)
	o, naive, nf, err := benchutil.RunOverhead(initial, txns)
	if err != nil {
		b.Fatal(err)
	}
	_ = o
	victim, ok := benchutil.PickVictim(initial, txns, tpcc.Customer)
	if !ok {
		b.Fatal("no victim")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := benchutil.RunUsage(initial, txns, naive, nf, tpcc.Customer, victim)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(u.RerunTime.Nanoseconds()), "ns_use_rerun")
		b.ReportMetric(float64(u.NaiveUse.Nanoseconds()), "ns_use_naive")
		b.ReportMetric(float64(u.NFUse.Nanoseconds()), "ns_use_nf")
	}
}

// BenchmarkFig8_Synthetic regenerates Figures 8a/8b on the synthetic
// dataset.
func BenchmarkFig8_Synthetic(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	runEngines(b, initial, txns)
}

// BenchmarkFig8c_SyntheticUsage regenerates Figure 8c.
func BenchmarkFig8c_SyntheticUsage(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	_, naive, nf, err := benchutil.RunOverhead(initial, txns)
	if err != nil {
		b.Fatal(err)
	}
	victim, ok := benchutil.PickVictim(initial, txns, "R")
	if !ok {
		b.Fatal("no victim")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := benchutil.RunUsage(initial, txns, naive, nf, "R", victim)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(u.RerunTime.Nanoseconds()), "ns_use_rerun")
		b.ReportMetric(float64(u.NaiveUse.Nanoseconds()), "ns_use_naive")
		b.ReportMetric(float64(u.NFUse.Nanoseconds()), "ns_use_nf")
	}
}

// BenchmarkFig9a_AffectedTotal regenerates Figure 9a: fixed transaction
// length, growing pool of affected tuples (updates-per-tuple falls, the
// naive/normal-form gap narrows).
func BenchmarkFig9a_AffectedTotal(b *testing.B) {
	for _, mult := range []int{1, 3, 5} {
		cfg := workload.Default(benchScale)
		cfg.Pool *= mult
		initial, txns := syntheticWorkload(b, cfg)
		b.Run(multName("pool", cfg.Pool), func(b *testing.B) {
			runEngines(b, initial, txns)
		})
	}
}

// BenchmarkFig9b_AffectedPerQuery regenerates Figure 9b: 5 update
// queries, growing per-query selectivity.
func BenchmarkFig9b_AffectedPerQuery(b *testing.B) {
	for _, mult := range []int{1, 3, 5} {
		cfg := workload.Default(benchScale)
		cfg.Updates = 5
		cfg.Group = cfg.Pool * mult
		cfg.Pool = cfg.Group
		initial, txns := syntheticWorkload(b, cfg)
		b.Run(multName("group", cfg.Group), func(b *testing.B) {
			runEngines(b, initial, txns)
		})
	}
}

// BenchmarkFig10_MVSemiring regenerates Figures 10a/10b: the comparison
// with the MV-semiring model (tree and string implementations).
func BenchmarkFig10_MVSemiring(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	var lastTree, lastString int64
	for i := 0; i < b.N; i++ {
		m, err := benchutil.RunMV(initial, txns)
		if err != nil {
			b.Fatal(err)
		}
		lastTree, lastString = m.TreeProv, m.StringProv
		b.ReportMetric(float64(m.TreeTime.Nanoseconds()), "ns_mv_tree")
		b.ReportMetric(float64(m.StringTime.Nanoseconds()), "ns_mv_string")
	}
	b.ReportMetric(float64(lastTree), "prov_mv_tree")
	b.ReportMetric(float64(lastString), "prov_mv_string")
}

// BenchmarkProp51_Blowup regenerates the Proposition 5.1 adversary: the
// naive provenance grows exponentially with alternating modifications
// while the normal form stays linear.
func BenchmarkProp51_Blowup(b *testing.B) {
	schema := db.MustSchema(db.MustRelationSchema("R", db.Attribute{Name: "k", Kind: db.KindString}))
	initial := db.NewDatabase(schema)
	if err := initial.InsertTuple("R", db.Tuple{db.S("a")}); err != nil {
		b.Fatal(err)
	}
	if err := initial.InsertTuple("R", db.Tuple{db.S("b")}); err != nil {
		b.Fatal(err)
	}
	txn := db.Transaction{Label: "p"}
	for i := 0; i < 20; i++ {
		from, to := "a", "b"
		if i%2 == 1 {
			from, to = "b", "a"
		}
		txn.Updates = append(txn.Updates,
			db.Modify("R", db.Pattern{db.Const(db.S(from))}, []db.SetClause{db.SetTo(db.S(to))}))
	}
	var naiveProv, nfProv, naiveDAG, nfDAG int64
	for i := 0; i < b.N; i++ {
		naive := engine.New(engine.ModeNaive, initial, engine.WithCopyOnWrite(false))
		if err := naive.ApplyTransaction(&txn); err != nil {
			b.Fatal(err)
		}
		nf := engine.New(engine.ModeNormalForm, initial)
		if err := nf.ApplyTransaction(&txn); err != nil {
			b.Fatal(err)
		}
		naiveProv, nfProv = naive.ProvSize(), nf.ProvSize()
		naiveDAG, nfDAG = naive.ProvDAGSize(), nf.ProvDAGSize()
	}
	b.ReportMetric(float64(naiveProv), "prov_naive")
	b.ReportMetric(float64(nfProv), "prov_nf")
	// The shared-representation naive engine's exponential trees are a
	// linear-size DAG under hash-consing; both measures are reported so
	// the Proposition 5.1 blowup stays visible.
	b.ReportMetric(float64(naiveDAG), "prov_naive_dag")
	b.ReportMetric(float64(nfDAG), "prov_nf_dag")
}

// BenchmarkAblationCopyOnWrite compares the paper-faithful deep-copying
// naive engine with the shared-representation ablation.
func BenchmarkAblationCopyOnWrite(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	b.Run("copy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.ModeNaive, initial)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.ModeNaive, initial, engine.WithCopyOnWrite(false))
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIndex compares the paper's full-scan execution with
// the hash-index extension.
func BenchmarkAblationIndex(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.ModeNormalForm, initial)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.ModeNormalForm, initial)
			if err := e.BuildIndex("R", "grp"); err != nil {
				b.Fatal(err)
			}
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationZeroMinimization measures the Proposition 5.5
// post-processing pass.
func BenchmarkAblationZeroMinimization(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	var before, after int64
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.ModeNormalForm, initial)
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			b.Fatal(err)
		}
		before = e.ProvSize()
		var err error
		after, err = e.MinimizeAll(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(before), "prov_nf")
	b.ReportMetric(float64(after), "prov_nf_min")
}

func multName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationParallelUsage compares sequential and parallel
// deletion-propagation valuation (the provenance-usage operation of
// Figures 7c/8c is embarrassingly parallel, unlike re-execution).
func BenchmarkAblationParallelUsage(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	e := engine.New(engine.ModeNormalForm, initial)
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		b.Fatal(err)
	}
	env := func(a core.Annot) bool { return a.Name != "q0" }
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = engine.BoolRestrict(e, env)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.BoolRestrictParallel(context.Background(), e, env, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProvstoreSnapshot measures the storage layer: saving and
// loading a whole annotated database through the deduplicating codec.
func BenchmarkProvstoreSnapshot(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	e := engine.New(engine.ModeNormalForm, initial)
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf.Len()), "snapshot_bytes")
	b.ReportMetric(float64(e.ProvSize()), "prov_nodes")
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := provstore.SaveSnapshot(&w, e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := provstore.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALApply measures the durability tax: the synthetic workload
// applied through the write-ahead-logged store at each sync policy,
// next to the plain in-memory engine as the baseline. sync=never pays
// only the encoding and buffered writes, sync=interval adds a
// background fsync every 50ms, sync=always fsyncs inside every commit.
func BenchmarkWALApply(b *testing.B) {
	cfg := workload.Default(benchScale)
	initial, txns := syntheticWorkload(b, cfg)
	b.Run("inmemory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.ModeNormalForm, initial)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, pol := range []wal.SyncPolicy{wal.SyncNever, wal.SyncInterval, wal.SyncAlways} {
		b.Run("sync="+pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				b.StartTimer()
				st, err := wal.Open(dir,
					wal.WithMode(engine.ModeNormalForm),
					wal.WithInitialDatabase(initial),
					wal.WithSync(pol),
				)
				if err != nil {
					b.Fatal(err)
				}
				if err := st.ApplyAll(context.Background(), txns); err != nil {
					b.Fatal(err)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApplySharded measures batched transaction apply on the fully
// pinned workload (workload.GeneratePinned): every selection names one
// concrete tuple, so the sharded engine routes each transaction to a
// single shard and resolves the selection with an O(1) point lookup,
// while the single engine scans the relation per update. The speedup is
// therefore algorithmic — it holds even on one CPU — and grows with the
// table size. The "speedup8" sub-benchmark reports single-engine time
// over 8-shard time directly.
func BenchmarkApplySharded(b *testing.B) {
	cfg := workload.Config{Tuples: 4000, Updates: 1500, QueriesPerTxn: 1, Seed: 3}
	initial, txns, err := workload.GeneratePinned(cfg)
	if err != nil {
		b.Fatal(err)
	}
	apply := func(b *testing.B, e engine.DB) time.Duration {
		b.Helper()
		start := time.Now()
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	variants := []struct {
		name string
		open func() engine.DB
	}{
		{"single", func() engine.DB { return engine.New(engine.ModeNormalForm, initial) }},
		{"shards1", func() engine.DB { return engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(1)) }},
		{"shards2", func() engine.DB { return engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(2)) }},
		{"shards8", func() engine.DB { return engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(8)) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total += apply(b, v.open())
			}
			b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "prov_apply_sharded_ns")
		})
	}
	b.Run("speedup8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tSingle := apply(b, engine.New(engine.ModeNormalForm, initial))
			t8 := apply(b, engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(8)))
			if t8 > 0 {
				b.ReportMetric(float64(tSingle)/float64(t8), "speedup_shards8")
			}
		}
	})
}

// BenchmarkScanPlanner measures the cost-based scan planner on the
// partially-pinned multi-column workload (workload.GenerateMultiColumn):
// selections pin grp, grp+cat, or mix = with ≠, so the sharded
// point-lookup fast path never applies and every update goes through
// scan(). The "fullscan" variant is the paper's access path; "indexed"
// builds the grp and cat indexes up front; "autoindex" starts cold and
// lets the advisor build them after a few pinned scans. The speedup
// sub-benchmark reports fullscan time over indexed time directly
// (speedup_planner) — the posting lists touch ~Group rows where the
// full scan walks all Tuples, so the ratio is algorithmic and grows
// with the table. The tpcc_auto sub-benchmark replays the TPC-C
// transaction mix (naturally partially pinned on warehouse/district
// columns) cold-start against the advisor and reports the end-to-end
// gain as speedup_tpcc_auto.
func BenchmarkScanPlanner(b *testing.B) {
	cfg := workload.Config{Tuples: 80000, Group: 50, Updates: 500, QueriesPerTxn: 2, Seed: 17}
	initial, txns, err := workload.GenerateMultiColumn(cfg)
	if err != nil {
		b.Fatal(err)
	}
	apply := func(b *testing.B, e engine.DB) time.Duration {
		b.Helper()
		start := time.Now()
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	openIndexed := func() engine.DB {
		e := engine.New(engine.ModeNormalForm, initial)
		for _, attr := range []string{"grp", "cat"} {
			if err := e.BuildIndex("R", attr); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	variants := []struct {
		name string
		open func() engine.DB
	}{
		{"fullscan", func() engine.DB { return engine.New(engine.ModeNormalForm, initial) }},
		{"indexed", openIndexed},
		{"autoindex", func() engine.DB {
			return engine.New(engine.ModeNormalForm, initial, engine.WithAutoIndex(4))
		}},
		{"indexed_shards8", func() engine.DB {
			e := engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(8))
			for _, attr := range []string{"grp", "cat"} {
				if err := e.BuildIndex("R", attr); err != nil {
					b.Fatal(err)
				}
			}
			return e
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total += apply(b, v.open())
			}
			b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "planner_apply_ns")
		})
	}
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tFull := apply(b, engine.New(engine.ModeNormalForm, initial))
			tIdx := apply(b, openIndexed())
			if tIdx > 0 {
				b.ReportMetric(float64(tFull)/float64(tIdx), "speedup_planner")
			}
		}
	})
	b.Run("tpcc_auto", func(b *testing.B) {
		tpccInitial, tpccTxns := tpccWorkload(b, 15000)
		for i := 0; i < b.N; i++ {
			start := time.Now()
			cold := engine.New(engine.ModeNormalForm, tpccInitial)
			if err := cold.ApplyAll(context.Background(), tpccTxns); err != nil {
				b.Fatal(err)
			}
			tFull := time.Since(start)
			start = time.Now()
			auto := engine.New(engine.ModeNormalForm, tpccInitial, engine.WithAutoIndex(4))
			if err := auto.ApplyAll(context.Background(), tpccTxns); err != nil {
				b.Fatal(err)
			}
			tAuto := time.Since(start)
			if ps := auto.PlannerStats(); ps.AutoBuilds == 0 {
				b.Fatal("advisor never fired on the TPC-C mix")
			}
			if tAuto > 0 {
				b.ReportMetric(float64(tFull)/float64(tAuto), "speedup_tpcc_auto")
			}
		}
	})
}

// BenchmarkMVCCReadDuringApply measures the tentpole claim of the MVCC
// storage: reader throughput while a large batch (100k inserted tuples)
// applies concurrently. Readers pin the committed horizon each pass and
// run annotation lookups plus a full row stream — lock-free, so the
// reported read rate must stay far from zero for the whole apply
// (under the old RWMutex storage, readers stalled behind every batch).
// Reported: read_ops_per_s (pinned-view read passes per second during
// the apply) and apply_ns (wall time of the concurrent batch).
func BenchmarkMVCCReadDuringApply(b *testing.B) {
	const (
		tuples      = 100_000
		perTxn      = 100
		initialRows = 512
	)
	schema := db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "K", Kind: db.KindInt},
		db.Attribute{Name: "V", Kind: db.KindInt},
	))
	initial := db.NewDatabase(schema)
	for i := int64(0); i < initialRows; i++ {
		if err := initial.InsertTuple("R", db.Tuple{db.I(i), db.I(i % 7)}); err != nil {
			b.Fatal(err)
		}
	}
	txns := make([]db.Transaction, 0, tuples/perTxn)
	for base := int64(0); base < tuples; base += perTxn {
		updates := make([]db.Update, perTxn)
		for j := range updates {
			k := initialRows + base + int64(j)
			updates[j] = db.Insert("R", db.Tuple{db.I(k), db.I(k % 7)})
		}
		txns = append(txns, db.Transaction{Label: "b", Updates: updates})
	}
	probe := db.Tuple{db.I(3), db.I(3)}

	for i := 0; i < b.N; i++ {
		e := engine.Open(engine.ModeNormalForm, initial, engine.WithShards(8))
		done := make(chan time.Duration)
		go func() {
			start := time.Now()
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				b.Error(err)
			}
			done <- time.Since(start)
		}()
		var readOps int
		start := time.Now()
		reading := true
		var applyTime time.Duration
		for reading {
			select {
			case applyTime = <-done:
				reading = false
			default:
				v := e.At(e.Horizon())
				if v.Annotation("R", probe) == nil {
					b.Fatal("initial row lost")
				}
				n := 0
				v.EachRow("R", func(t db.Tuple, _ *core.Expr) { n++ })
				if n < initialRows {
					b.Fatalf("view saw %d rows, want >= %d", n, initialRows)
				}
				readOps++
			}
		}
		elapsed := time.Since(start)
		if e.NumRows() != initialRows+tuples {
			b.Fatalf("engine has %d rows, want %d", e.NumRows(), initialRows+tuples)
		}
		if readOps == 0 {
			b.Fatal("no reader progress during the concurrent apply")
		}
		b.ReportMetric(float64(readOps)/elapsed.Seconds(), "read_ops_per_s")
		b.ReportMetric(float64(applyTime.Nanoseconds()), "apply_ns")
	}
}
