package hyperprov_test

import (
	"context"
	"errors"
	"testing"

	"hyperprov"
)

// TestFacadeDurableStore drives the persistent store through the public
// facade: bootstrap from an initial database, apply a log, crash-free
// close, reopen and verify the state — then check the typed errors are
// reachable.
func TestFacadeDurableStore(t *testing.T) {
	dir := t.TempDir()
	st, err := hyperprov.OpenDir(dir,
		hyperprov.WithMode(hyperprov.ModeNormalForm),
		hyperprov.WithInitialDatabase(exampleDB(t)),
		hyperprov.WithSync(hyperprov.SyncAlways),
	)
	if err != nil {
		t.Fatal(err)
	}
	txns, err := hyperprov.ParseSQLLog(st.Schema(), `
BEGIN p;
UPDATE Products SET Category = 'Bicycles' WHERE Product = 'Kids mnt bike';
COMMIT;
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	wantRows := st.NumRows()

	// A second open while the first holds the directory must fail typed.
	if _, err := hyperprov.OpenDir(dir); !errors.Is(err, hyperprov.ErrLocked) {
		t.Fatalf("concurrent open: err = %v, want ErrLocked", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyTransaction(&txns[0]); !errors.Is(err, hyperprov.ErrClosed) {
		t.Fatalf("write after close: err = %v, want ErrClosed", err)
	}

	re, err := hyperprov.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumRows() != wantRows {
		t.Fatalf("reopened store has %d rows, want %d", re.NumRows(), wantRows)
	}
	if got := re.Stats().LSN; got != 1 {
		t.Fatalf("reopened store at LSN %d, want 1", got)
	}
	var pol hyperprov.SyncPolicy
	if pol, err = hyperprov.ParseSyncPolicy("interval"); err != nil || pol != hyperprov.SyncInterval {
		t.Fatalf("ParseSyncPolicy(interval) = %v, %v", pol, err)
	}
}
