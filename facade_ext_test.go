package hyperprov_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"hyperprov"
)

// TestFacadeSnapshotAndAnalysis drives the storage and analysis APIs
// through the public facade.
func TestFacadeSnapshotAndAnalysis(t *testing.T) {
	schema := exampleSchema(t)
	txns, err := hyperprov.ParseSQLLog(schema, `
BEGIN p;
UPDATE Products SET Category = 'Bicycles' WHERE Product = 'Kids mnt bike';
COMMIT;
`)
	if err != nil {
		t.Fatal(err)
	}
	eng := hyperprov.New(hyperprov.ModeNormalForm, exampleDB(t), annotByCategory())
	if err := eng.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}

	// Snapshot round trip.
	var buf bytes.Buffer
	if err := hyperprov.SaveSnapshot(&buf, eng); err != nil {
		t.Fatal(err)
	}
	back, err := hyperprov.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !hyperprov.LiveDB(back).Equal(hyperprov.LiveDB(eng)) {
		t.Error("snapshot round trip broke the live database")
	}

	// Dependencies of the merged bicycle tuple.
	bic := hyperprov.Tuple{hyperprov.S("Kids mnt bike"), hyperprov.S("Bicycles"), hyperprov.I(120)}
	tuples, labels := hyperprov.Dependencies(eng, "Products", bic)
	if len(tuples) != 2 || len(labels) != 1 || labels[0] != hyperprov.QueryAnnot("p") {
		t.Errorf("Dependencies = %v / %v", tuples, labels)
	}

	// Impact of the transaction.
	im := hyperprov.BuildImpact(eng)
	_, flipped := im.Flipped(hyperprov.QueryAnnot("p"))
	if len(flipped) == 0 {
		t.Error("aborting p must flip some rows")
	}

	// Explain.
	out := hyperprov.ExplainString(eng.Annotation("Products", bic))
	if !strings.Contains(out, "received a modification") {
		t.Errorf("ExplainString = %q", out)
	}
	var w strings.Builder
	if err := hyperprov.Explain(&w, eng.Annotation("Products", bic)); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeConjunctiveExtension drives Update.WithConds through the
// facade.
func TestFacadeConjunctiveExtension(t *testing.T) {
	schema := hyperprov.MustSchema(hyperprov.MustRelation("R",
		hyperprov.Attribute{Name: "a", Kind: hyperprov.KindInt},
		hyperprov.Attribute{Name: "b", Kind: hyperprov.KindInt},
	))
	d := hyperprov.NewDatabase(schema)
	_ = d.InsertTuple("R", hyperprov.Tuple{hyperprov.I(1), hyperprov.I(1)})
	_ = d.InsertTuple("R", hyperprov.Tuple{hyperprov.I(1), hyperprov.I(2)})
	eng := hyperprov.New(hyperprov.ModeNormalForm, d)
	txn := hyperprov.Transaction{Label: "p", Updates: []hyperprov.Update{
		hyperprov.Delete("R", hyperprov.AllPattern(2)).WithConds(hyperprov.AttrCond{Left: 0, Right: 1}),
	}}
	if err := eng.ApplyTransaction(&txn); err != nil {
		t.Fatal(err)
	}
	live := hyperprov.LiveDB(eng)
	if live.NumTuples() != 1 || !live.Instance("R").Contains(hyperprov.Tuple{hyperprov.I(1), hyperprov.I(2)}) {
		t.Errorf("diagonal delete through facade left %d tuples", live.NumTuples())
	}
}

// TestFacadeLiveMatchingOption smoke-tests the option through the
// facade.
func TestFacadeLiveMatchingOption(t *testing.T) {
	eng := hyperprov.New(hyperprov.ModeNormalForm, exampleDB(t), hyperprov.WithLiveMatching(true))
	txn := hyperprov.Transaction{Label: "p", Updates: []hyperprov.Update{
		hyperprov.Delete("Products", hyperprov.AllPattern(3)),
	}}
	if err := eng.ApplyTransaction(&txn); err != nil {
		t.Fatal(err)
	}
	if hyperprov.LiveDB(eng).NumTuples() != 0 {
		t.Error("delete-all under live matching broken")
	}
}

// TestFacadeParallelAndCodec drives the parallel valuation and the
// expression codec through the facade.
func TestFacadeParallelAndCodec(t *testing.T) {
	eng := hyperprov.New(hyperprov.ModeNormalForm, exampleDB(t), annotByCategory())
	txn := hyperprov.Transaction{Label: "p", Updates: []hyperprov.Update{
		hyperprov.Delete("Products", hyperprov.AllPattern(3)),
	}}
	if err := eng.ApplyTransaction(&txn); err != nil {
		t.Fatal(err)
	}
	env := func(a hyperprov.Annot) bool { return a != hyperprov.QueryAnnot("p") }
	seq := hyperprov.BoolRestrict(eng, env)
	par, err := hyperprov.BoolRestrictParallel(context.Background(), eng, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(seq) {
		t.Error("parallel restrict diverges through facade")
	}
	n := 0
	hyperprov.Specialize[bool](eng, hyperprov.Bool, env, func(rel string, tu hyperprov.Tuple, v bool) { n++ })
	if n != 4 {
		t.Errorf("Specialize visited %d rows", n)
	}
	m := 0
	var mu sync.Mutex
	if err := hyperprov.SpecializeParallel[bool](context.Background(), eng, hyperprov.Bool, env, 2, func(rel string, tu hyperprov.Tuple, v bool) {
		mu.Lock()
		m++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if m != 4 {
		t.Errorf("SpecializeParallel visited %d rows", m)
	}

	e := hyperprov.Minus(hyperprov.Var(hyperprov.TupleAnnot("p1")), hyperprov.Var(hyperprov.QueryAnnot("p")))
	var buf bytes.Buffer
	if err := hyperprov.WriteExpr(&buf, e); err != nil {
		t.Fatal(err)
	}
	back, err := hyperprov.ReadExpr(&buf)
	if err != nil || !back.Equal(e) {
		t.Fatalf("codec round trip through facade failed: %v", err)
	}
}
