package hyperprov

import (
	"context"
	"io"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/parser"
	"hyperprov/internal/provstore"
	"hyperprov/internal/subscribe"
	"hyperprov/internal/upstruct"
	"hyperprov/internal/wal"
)

// --- provenance expressions (internal/core) ----------------------------

// Expr is a UP[X] provenance expression.
type Expr = core.Expr

// Annot is a basic annotation (tuple or query identifier).
type Annot = core.Annot

// AnnotKind distinguishes tuple annotations (X) from query/transaction
// annotations (P).
type AnnotKind = core.AnnotKind

// Annotation kinds.
const (
	KindTuple = core.KindTuple
	KindQuery = core.KindQuery
)

// Op enumerates UP[X] expression node kinds.
type Op = core.Op

// Expression node kinds.
const (
	OpZero  = core.OpZero
	OpVar   = core.OpVar
	OpPlusI = core.OpPlusI
	OpMinus = core.OpMinus
	OpPlusM = core.OpPlusM
	OpDotM  = core.OpDotM
	OpSum   = core.OpSum
)

// NF is a provenance expression maintained in the Theorem 5.3 normal
// form.
type NF = core.NF

// Expression constructors and annotation helpers.
var (
	Zero       = core.Zero
	Var        = core.Var
	TupleAnnot = core.TupleAnnot
	QueryAnnot = core.QueryAnnot
	PlusI      = core.PlusI
	Minus      = core.Minus
	PlusM      = core.PlusM
	DotM       = core.DotM
	Sum        = core.Sum
)

// Rewriting: Normalize applies the Figure 6 rules exhaustively
// (Theorem 5.3), Minimize the zero-axiom post-processing
// (Proposition 5.5), SimplifyZero just the zero-related axioms.
var (
	Normalize    = core.Normalize
	Minimize     = core.Minimize
	SimplifyZero = core.SimplifyZero
	ParseExpr    = core.ParseExpr
	WriteDOT     = core.WriteDOT
)

// --- relational substrate (internal/db) --------------------------------

// Kind is the type of an attribute value.
type Kind = db.Kind

// Attribute value kinds.
const (
	KindString = db.KindString
	KindInt    = db.KindInt
	KindFloat  = db.KindFloat
)

// Value is a typed attribute value; Tuple an ordered list of values.
type (
	Value     = db.Value
	Tuple     = db.Tuple
	Attribute = db.Attribute
	Schema    = db.Schema
	Database  = db.Database
	Pattern   = db.Pattern
	Term      = db.Term
	Update    = db.Update
	SetClause = db.SetClause
	// AttrCond is an inter-attribute condition of the conjunctive
	// extension beyond the hyperplane fragment (Update.WithConds).
	AttrCond = db.AttrCond
	// Transaction is an annotated sequence of hyperplane update queries.
	Transaction = db.Transaction
)

// Value and schema constructors.
var (
	S                 = db.S
	I                 = db.I
	F                 = db.F
	NewDatabase       = db.NewDatabase
	NewSchema         = db.NewSchema
	MustSchema        = db.MustSchema
	NewRelationSchema = db.NewRelationSchema
	MustRelation      = db.MustRelationSchema
)

// Pattern and update constructors.
var (
	Const        = db.Const
	AnyVar       = db.AnyVar
	VarNotEq     = db.VarNotEq
	ConstPattern = db.ConstPattern
	AllPattern   = db.AllPattern
	Insert       = db.Insert
	Delete       = db.Delete
	Modify       = db.Modify
	Keep         = db.Keep
	SetTo        = db.SetTo
)

// --- provenance engines (internal/engine) ------------------------------

// DB is the interface shared by both provenance engines: the
// single-writer Engine and the hash-sharded ShardedEngine. Open returns
// one or the other; program against DB unless you need
// implementation-specific calls.
type DB = engine.DB

// Reader is the lock-free read surface shared by live engines and
// pinned time-travel views: annotation lookup, deterministic row
// streaming and the size measures, all resolved against one committed
// MVCC horizon.
type Reader = engine.Reader

// View is a read-only database pinned at one MVCC horizon, as returned
// by DB.At: immutable no matter how many transactions commit after it
// was taken.
type View = engine.View

// MVCCStats are the version-storage counters of an engine (committed
// horizon, epochs allocated, row versions held).
type MVCCStats = engine.MVCCStats

// Horizon-sequence helpers: EpochSeq returns the horizon pinning
// everything up to and including epoch k (pass it to DB.At); SeqEpoch
// extracts the epoch from a horizon sequence.
var (
	EpochSeq = engine.EpochSeq
	SeqEpoch = engine.SeqEpoch
)

// Engine is the single-lock provenance-tracking database.
type Engine = engine.Engine

// ShardedEngine partitions rows across hash shards with independent
// lock domains; see Open and WithShards.
type ShardedEngine = engine.ShardedEngine

// Option configures an engine built by Open, New, or NewSharded.
type Option = engine.Option

// Mode selects the provenance representation.
type Mode = engine.Mode

// IndexInfo describes one secondary index (see DB.IndexStats):
// identity, manual-vs-advisor origin and posting-list volume.
type IndexInfo = engine.IndexInfo

// PlannerStats are the scan planner's cumulative counters: full vs
// index vs intersection scans, advisor auto-builds and posting-list
// compaction sweeps (see DB.PlannerStats).
type PlannerStats = engine.PlannerStats

// Engine modes: the definition-following construction with no axioms,
// and the incrementally maintained normal form.
const (
	ModeNaive      = engine.ModeNaive
	ModeNormalForm = engine.ModeNormalForm
)

// Engine construction and options. Open is the entry point: it builds
// the single engine by default and the hash-sharded engine under
// WithShards(n) for n > 1; both produce identical annotations and
// identical snapshot bytes for the same input. New and NewSharded pin a
// concrete implementation.
var (
	Open                   = engine.Open
	OpenEmpty              = engine.OpenEmpty
	New                    = engine.New
	NewSharded             = engine.NewSharded
	WithShards             = engine.WithShards
	WithCopyOnWrite        = engine.WithCopyOnWrite
	WithEagerZeroAxioms    = engine.WithEagerZeroAxioms
	WithInitialAnnotations = engine.WithInitialAnnotations
	WithLiveMatching       = engine.WithLiveMatching
	// WithAutoIndex enables the adaptive index advisor: after threshold
	// scans arrive with a column =-pinned but unindexed, the engine
	// builds that index automatically. Indexes are pure access-path
	// choices — annotations and snapshot bytes are identical either way.
	WithAutoIndex = engine.WithAutoIndex
)

// Provenance applications (Section 4 of the paper).
var (
	LiveDB              = engine.LiveDB
	BoolRestrict        = engine.BoolRestrict
	DeletionPropagation = engine.DeletionPropagation
	AbortTransactions   = engine.AbortTransactions
	AccessControl       = engine.AccessControl
	Certify             = engine.Certify
)

// Impact analysis: Dependencies extracts a tuple's input-tuple and
// transaction dependencies; BuildImpact constructs the inverted index.
type Impact = engine.Impact

var (
	Dependencies = engine.Dependencies
	BuildImpact  = engine.BuildImpact
)

// Explain renders a human-readable account of a provenance expression.
var (
	Explain       = core.Explain
	ExplainString = core.ExplainString
)

// Provenance storage (package provstore): SaveSnapshot persists an
// annotated database — a live engine or a pinned time-travel View —
// with a structurally deduplicated expression table; LoadSnapshot
// restores it. Both accept either engine implementation, and the bytes
// are independent of the shard count.
func SaveSnapshot(w io.Writer, e Reader) error { return provstore.SaveSnapshot(w, e) }

// LoadSnapshot restores an annotated database saved by SaveSnapshot.
// Options pass through to Open — WithShards(n) restores into a
// hash-sharded engine.
func LoadSnapshot(r io.Reader, opts ...Option) (DB, error) {
	return provstore.LoadSnapshot(r, opts...)
}

// WriteExpr and ReadExpr persist single expressions through the
// structurally deduplicating codec.
var (
	WriteExpr = provstore.WriteExpr
	ReadExpr  = provstore.ReadExpr
)

// --- durable storage (internal/wal) -------------------------------------

// Store is the persistent engine: an in-memory engine.DB fronted by a
// segmented, checksummed write-ahead log with periodic checkpoints in
// the snapshot format. Every write is logged before it is applied and
// acknowledged; OpenDir on the same directory recovers a state
// byte-identical to the acknowledged history. A store that can no
// longer reach its log degrades to read-only (writes answer
// ErrReadOnly, reads keep serving).
type Store = wal.Store

// StoreOption configures OpenDir.
type StoreOption = wal.Option

// StoreStats are the durability counters of a Store (LSN, checkpoint
// positions, sync and recovery counts, read-only state).
type StoreStats = wal.StoreStats

// SyncPolicy is the WAL durability level: fsync every commit, on a
// timer, or never (leave it to the OS).
type SyncPolicy = wal.SyncPolicy

// Sync policies for WithSync.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// OpenDir opens (or bootstraps) the persistent store in a directory; a
// fresh directory needs WithSchema or WithInitialDatabase. The
// directory is locked against concurrent opens.
var OpenDir = wal.Open

// Store options: bootstrap inputs (mode, schema or initial database,
// engine options such as WithShards), durability (sync policy and
// interval), and log shape (segment size, automatic checkpoint cadence).
var (
	WithMode            = wal.WithMode
	WithSchema          = wal.WithSchema
	WithInitialDatabase = wal.WithInitialDatabase
	WithEngineOptions   = wal.WithEngineOptions
	WithSync            = wal.WithSync
	WithSyncInterval    = wal.WithSyncInterval
	WithSegmentSize     = wal.WithSegmentSize
	WithCheckpointEvery = wal.WithCheckpointEvery
	ParseSyncPolicy     = wal.ParseSyncPolicy
)

// Typed failures of the persistent store.
var (
	ErrReadOnly = wal.ErrReadOnly
	ErrLocked   = wal.ErrLocked
	ErrCorrupt  = wal.ErrCorrupt
	ErrClosed   = wal.ErrClosed
)

// --- replication (internal/wal) ------------------------------------------

// Follower is a read replica of a Store: it tails the leader's
// replication stream into a local WAL directory (promotable to leader
// by reopening it with OpenDir), serves the full read surface at its
// replayed MVCC horizon, and refuses writes with ErrFollower.
type Follower = wal.Follower

// FollowerStats is a follower's replication-lag summary.
type FollowerStats = wal.FollowerStats

// StreamSource dials one replication stream; HTTPSource is the
// production implementation against a leader's HTTP endpoint.
type StreamSource = wal.StreamSource

// OpenFollower opens a directory as a replica of the leader behind the
// StreamSource and starts the apply loop.
var OpenFollower = wal.OpenFollower

// HTTPSource dials GET <base>/v1/replication/stream on a leader.
var HTTPSource = wal.HTTPSource

// Replication failures.
var (
	// ErrFollower reports a write attempted on a follower.
	ErrFollower = wal.ErrFollower
	// ErrStreamCorrupt reports a damaged replication frame; followers
	// reconnect and resume from their durably applied position.
	ErrStreamCorrupt = wal.ErrStreamCorrupt
)

// --- live subscriptions (internal/subscribe) -----------------------------

// CommitEvent is one message of the engine's change-notification bus:
// a committed transaction (or restore/minimize/reset), the MVCC
// horizon it advanced to, and the rows it touched. Install a
// CommitHook with DB.SetCommitHook to consume the bus directly; hooks
// run on the committing goroutine and must not block.
type (
	CommitEvent = engine.CommitEvent
	CommitKind  = engine.CommitKind
	CommitHook  = engine.CommitHook
	RowRef      = engine.RowRef
)

// Commit-event kinds.
const (
	CommitTxn      = engine.CommitTxn
	CommitRestore  = engine.CommitRestore
	CommitMinimize = engine.CommitMinimize
	CommitReset    = engine.CommitReset
)

// SubscriptionManager maintains live provenance subscriptions over the
// commit-event bus: register a deletion-propagation or abort what-if,
// or an annotation watch, once, and receive exact incremental deltas
// as transactions commit. SubConn is one client connection (a bounded
// frame queue), SubSpec the subscription description, SubFrame one
// streamed message (ack/delta/resync/error). The HTTP surface at
// /v1/subscribe speaks the same frames as ND-JSON or SSE.
type (
	SubscriptionManager = subscribe.Manager
	SubConn             = subscribe.Conn
	SubSpec             = subscribe.Spec
	SubFrame            = subscribe.Frame
	SubRow              = subscribe.Row
	SubKind             = subscribe.Kind
	SubscriptionStats   = subscribe.Stats
)

// Subscription kinds.
const (
	SubDeletion = subscribe.KindDeletion
	SubAbort    = subscribe.KindAbort
	SubWatch    = subscribe.KindWatch
)

// NewSubscriptionManager builds a manager over d and installs its
// commit hook; call Close to uninstall it. One manager serves any
// number of connections and subscriptions.
var NewSubscriptionManager = subscribe.NewManager

// ErrSubscriptionClosed reports a read from a subscription connection
// whose manager or connection was closed.
var ErrSubscriptionClosed = subscribe.ErrClosed

// --- Update-Structures (internal/upstruct) ------------------------------

// Structure is an Update-Structure: concrete semantics for UP[X].
type Structure[T any] interface {
	upstruct.Structure[T]
}

// Set is the sorted string set of the access-control semantics; Trust
// the (score, flag) pair of the certification semantics.
type (
	Set            = upstruct.Set
	Trust          = upstruct.Trust
	TrustStructure = upstruct.TrustStructure
	BoolStructure  = upstruct.BoolStructure
	SetStructure   = upstruct.SetStructure
)

// Shared structure instances and helpers.
var (
	Bool   = upstruct.Bool
	Sets   = upstruct.Sets
	NewSet = upstruct.NewSet
	Score  = upstruct.Score
)

// Eval specializes an abstract provenance expression into a concrete
// Update-Structure under a valuation (Proposition 4.2 makes this
// sound).
func Eval[T any](e *Expr, s upstruct.Structure[T], env func(Annot) T) T {
	return upstruct.Eval(e, s, env)
}

// Specialize evaluates every stored annotation of the reader — a live
// engine or a pinned View — in the given structure, streaming results
// to f; SpecializeParallel spreads evaluation over workers goroutines
// (0 = GOMAXPROCS).
func Specialize[T any](e Reader, s upstruct.Structure[T], env func(Annot) T, f func(rel string, t Tuple, v T)) {
	engine.Specialize(e, s, env, f)
}

// SpecializeParallel is Specialize with parallel row evaluation; f must
// be safe for concurrent use. ctx cancels the pass at chunk boundaries
// (nil means context.Background()).
func SpecializeParallel[T any](ctx context.Context, e Reader, s upstruct.Structure[T], env func(Annot) T, workers int, f func(rel string, t Tuple, v T)) error {
	return engine.SpecializeParallel(ctx, e, s, env, workers, f)
}

// BoolRestrictParallel is BoolRestrict with parallel evaluation and
// context cancellation.
var BoolRestrictParallel = engine.BoolRestrictParallel

// --- query front ends (internal/parser) ---------------------------------

// Parsers for the SQL fragment of Section 2 and the paper's
// datalog-like notation.
var (
	ParseSQLStatement = parser.ParseSQLStatement
	ParseSQLLog       = parser.ParseSQLLog
	ParseDatalogQuery = parser.ParseDatalogQuery
	ParseDatalogLog   = parser.ParseDatalogLog
)
