module hyperprov

go 1.22
