// Package hyperprov is an equivalence-invariant algebraic provenance
// framework for hyperplane update queries — a Go implementation of
// Bourhis, Deutch and Moskovitch, "Equivalence-Invariant Algebraic
// Provenance for Hyperplane Update Queries" (SIGMOD 2020,
// arXiv:2007.05463).
//
// Hyperplane update queries are the domain-based fragment of relational
// transactions: single-tuple insertions, and deletions/modifications
// whose conditions compare individual attributes to constants with = or
// ≠. For this fragment the paper builds the algebraic structure UP[X],
// whose axioms mirror the sound and complete Karabeg–Vianu
// axiomatization of transaction set-equivalence; consequently two
// transactions produce equivalent provenance if and only if they are
// set-equivalent, so the recorded provenance captures the essence of
// the computation rather than the accidental way it was phrased.
//
// The package re-exports the user-facing API of the internal packages:
//
//   - expressions and normal forms (internal/core): Expr, NF, the
//     constructors, Normalize, Minimize, SimplifyZero;
//   - the relational substrate (internal/db): Schema, Tuple, Pattern,
//     Update, Transaction and the plain Database;
//   - the provenance engines (internal/engine): Engine with ModeNaive
//     and ModeNormalForm, plus the provenance applications (LiveDB,
//     DeletionPropagation, AbortTransactions, AccessControl, Certify);
//   - Update-Structures (internal/upstruct): Structure, Eval, the
//     Boolean/set/trust instances and the semiring bridge;
//   - the SQL / datalog front ends (internal/parser).
//
// See examples/ for runnable walkthroughs (the paper's running example,
// access control, deletion propagation, certification and a TPC-C
// session) and cmd/ for the command-line tools.
package hyperprov
