package mvsemiring

import (
	"fmt"

	"hyperprov/internal/db"
)

// Repr selects the annotation representation, mirroring the two
// implementations compared in Section 6.4.
type Repr uint8

const (
	// ReprTree stores annotations as Expr trees (the anytree-style
	// implementation of the paper's comparison).
	ReprTree Repr = iota
	// ReprString stores annotations as flat strings; each update
	// re-renders the wrapped annotation, so updates cost O(annotation
	// length) but no recursive structure is kept (uses require parsing,
	// which the paper notes as this representation's hidden cost).
	ReprString
)

// String names the representation.
func (r Repr) String() string {
	switch r {
	case ReprTree:
		return "MV-semiring (tree impl)"
	case ReprString:
		return "MV-semiring (string impl)"
	default:
		return fmt.Sprintf("Repr(%d)", uint8(r))
	}
}

type mvRow struct {
	tuple db.Tuple
	expr  *Expr  // ReprTree
	str   string // ReprString
	txn   int
}

type mvTable struct {
	rel  *db.RelationSchema
	rows map[string]*mvRow
	list []*mvRow
	dead map[*mvRow]bool
}

func (t *mvTable) add(key string, r *mvRow) {
	t.rows[key] = r
	t.list = append(t.list, r)
}

// Engine tracks MV-semiring provenance for hyperplane update workloads.
// Unlike the UP[X] engines, modified tuples are versioned in place (the
// model of [6] does not duplicate modified tuples — Section 6.4), so the
// stored row count matches the plain database plus tombstoned deletions.
type Engine struct {
	repr   Repr
	schema *db.Schema
	tables map[string]*mvTable

	clock   int // ν − 1: advanced per update query
	varSeq  int
	cur     string // current transaction identifier
	inTxn   bool
	txnNo   int
	touched []*mvRow
	commit  bool
}

// Option configures the MV engine.
type Option func(*Engine)

// WithCommitAnnotations wraps every touched tuple in a C^id_{T,ν}
// annotation at transaction end, as the full model of [6] does. Off by
// default to match the expressions of Example 3.10.
func WithCommitAnnotations(on bool) Option {
	return func(e *Engine) { e.commit = on }
}

// New builds an MV engine over an initial database. Initial tuples are
// annotated with fresh variables x0, x1, … (insertions that predate the
// tracked history, as in the paper's examples).
func New(repr Repr, initial *db.Database, opts ...Option) *Engine {
	e := &Engine{repr: repr, schema: initial.Schema(), tables: make(map[string]*mvTable)}
	for _, o := range opts {
		o(e)
	}
	for _, name := range e.schema.Names() {
		tbl := &mvTable{rel: e.schema.Relation(name), rows: make(map[string]*mvRow), dead: make(map[*mvRow]bool)}
		e.tables[name] = tbl
		for _, t := range initial.Instance(name).Tuples() {
			r := &mvRow{tuple: t, txn: -1}
			v := e.freshVar()
			if repr == ReprTree {
				r.expr = Var(v)
			} else {
				r.str = v
			}
			tbl.add(t.Key(), r)
		}
	}
	return e
}

func (e *Engine) freshVar() string {
	v := fmt.Sprintf("x%d", e.varSeq)
	e.varSeq++
	return v
}

// Repr reports the representation in use.
func (e *Engine) Repr() Repr { return e.repr }

// Begin starts a transaction identified by label.
func (e *Engine) Begin(label string) {
	if e.inTxn {
		panic("mvsemiring: Begin inside an open transaction")
	}
	e.cur = label
	e.inTxn = true
	e.touched = e.touched[:0]
}

// End closes the transaction, optionally wrapping touched rows in commit
// annotations.
func (e *Engine) End() {
	if !e.inTxn {
		panic("mvsemiring: End without Begin")
	}
	if e.commit {
		for _, r := range e.touched {
			e.wrap(r, OpCommit, rowID(r))
		}
		e.clock++
	}
	e.inTxn = false
	e.txnNo++
	e.touched = e.touched[:0]
}

func rowID(r *mvRow) string { return "t:" + r.tuple.Key() }

func (e *Engine) wrap(r *mvRow, op VersionOp, id string) {
	if e.repr == ReprTree {
		r.expr = Version(op, id, e.cur, e.clock, r.expr)
	} else {
		r.str = fmt.Sprintf("%c^%s_{%s,%d}(%s)", byte(op), id, e.cur, e.clock+1, r.str)
	}
}

func (e *Engine) touch(r *mvRow) {
	if r.txn != e.txnNo {
		r.txn = e.txnNo
		e.touched = append(e.touched, r)
	}
}

func (e *Engine) alive(tbl *mvTable, r *mvRow) bool { return !tbl.dead[r] }

func (e *Engine) scan(tbl *mvTable, sel db.Pattern) []*mvRow {
	var out []*mvRow
	for _, r := range tbl.list {
		if e.alive(tbl, r) && sel.Matches(r.tuple) {
			out = append(out, r)
		}
	}
	return out
}

// Apply executes one update query within the current transaction.
func (e *Engine) Apply(u db.Update) error {
	if !e.inTxn {
		return fmt.Errorf("mvsemiring: Apply outside a transaction")
	}
	tbl := e.tables[u.Rel]
	if tbl == nil {
		return fmt.Errorf("mvsemiring: unknown relation %s", u.Rel)
	}
	defer func() { e.clock++ }()
	switch u.Kind {
	case db.OpInsert:
		key := u.Row.Key()
		r := tbl.rows[key]
		if r == nil || !e.alive(tbl, r) {
			if r == nil {
				r = &mvRow{tuple: u.Row, txn: -1}
				tbl.add(key, r)
			}
			delete(tbl.dead, r)
			v := e.freshVar()
			if e.repr == ReprTree {
				r.expr = Var(v)
			} else {
				r.str = v
			}
		}
		e.wrap(r, OpInsert, rowID(r))
		e.touch(r)
		return nil
	case db.OpDelete:
		for _, r := range e.scan(tbl, u.Sel) {
			e.wrap(r, OpDelete, rowID(r))
			tbl.dead[r] = true
			e.touch(r)
		}
		return nil
	case db.OpModify:
		sources := e.scan(tbl, u.Sel)
		if len(sources) == 0 {
			return nil
		}
		type group struct {
			target db.Tuple
			exprs  []*Expr
			strs   []string
		}
		groups := make(map[string]*group)
		var order []string
		for _, src := range sources {
			target := u.Target(src.tuple)
			key := target.Key()
			g := groups[key]
			if g == nil {
				g = &group{target: target}
				groups[key] = g
				order = append(order, key)
			}
			id := rowID(src)
			if e.repr == ReprTree {
				g.exprs = append(g.exprs, Version(OpUpdate, id, e.cur, e.clock, src.expr))
			} else {
				g.strs = append(g.strs, fmt.Sprintf("U^%s_{%s,%d}(%s)", id, e.cur, e.clock+1, src.str))
			}
		}
		for _, src := range sources {
			tbl.dead[src] = true
			e.touch(src)
		}
		for _, key := range order {
			g := groups[key]
			r := tbl.rows[key]
			if r == nil {
				r = &mvRow{tuple: g.target, txn: -1}
				tbl.add(key, r)
			} else if e.alive(tbl, r) {
				// An update into an existing live tuple keeps its prior
				// annotation alongside the incoming update versions.
				if e.repr == ReprTree {
					g.exprs = append([]*Expr{r.expr}, g.exprs...)
				} else {
					g.strs = append([]string{r.str}, g.strs...)
				}
			}
			delete(tbl.dead, r)
			if e.repr == ReprTree {
				r.expr = Plus(g.exprs...)
			} else {
				if len(g.strs) == 1 {
					r.str = g.strs[0]
				} else {
					s := "("
					for i, gs := range g.strs {
						if i > 0 {
							s += " + "
						}
						s += gs
					}
					r.str = s + ")"
				}
			}
			e.touch(r)
		}
		return nil
	default:
		return fmt.Errorf("mvsemiring: unknown update kind %v", u.Kind)
	}
}

// ApplyTransaction runs a whole transaction.
func (e *Engine) ApplyTransaction(t *db.Transaction) error {
	e.Begin(t.Label)
	for i := range t.Updates {
		if err := e.Apply(t.Updates[i]); err != nil {
			e.End()
			return fmt.Errorf("transaction %s, query %d: %w", t.Label, i, err)
		}
	}
	e.End()
	return nil
}

// ApplyAll runs a sequence of transactions.
func (e *Engine) ApplyAll(txns []db.Transaction) error {
	for i := range txns {
		if err := e.ApplyTransaction(&txns[i]); err != nil {
			return err
		}
	}
	return nil
}

// Annotation returns the tree annotation of a tuple (ReprTree), or nil.
func (e *Engine) Annotation(rel string, t db.Tuple) *Expr {
	tbl := e.tables[rel]
	if tbl == nil {
		return nil
	}
	r := tbl.rows[t.Key()]
	if r == nil {
		return nil
	}
	return r.expr
}

// AnnotationString returns the string annotation of a tuple (ReprString).
func (e *Engine) AnnotationString(rel string, t db.Tuple) string {
	tbl := e.tables[rel]
	if tbl == nil {
		return ""
	}
	r := tbl.rows[t.Key()]
	if r == nil {
		return ""
	}
	return r.str
}

// ProvSize reports the total provenance length: tree nodes for ReprTree,
// string bytes for ReprString — the implementation-independent length
// measure of Section 6.4.
func (e *Engine) ProvSize() int64 {
	var n int64
	for _, tbl := range e.tables {
		for _, r := range tbl.list {
			if e.repr == ReprTree {
				n += r.expr.Size()
			} else {
				n += int64(len(r.str))
			}
		}
	}
	return n
}

// TokenSize reports the total token-weighted provenance length
// (ReprTree; see Expr.TokenSize). For ReprString it reports the string
// length, which is the same measure up to constant factors.
func (e *Engine) TokenSize() int64 {
	var n int64
	for _, tbl := range e.tables {
		for _, r := range tbl.list {
			if e.repr == ReprTree {
				n += r.expr.TokenSize()
			} else {
				n += int64(len(r.str))
			}
		}
	}
	return n
}

// NumRows reports the number of stored rows (live + tombstoned); the
// MV model versions modified tuples in place, so this stays close to
// the plain database size.
func (e *Engine) NumRows() int {
	n := 0
	for _, tbl := range e.tables {
		n += len(tbl.list)
	}
	return n
}

// LiveDB materializes the current set-semantics database.
func (e *Engine) LiveDB() *db.Database {
	out := db.NewDatabase(e.schema)
	for _, name := range e.schema.Names() {
		tbl := e.tables[name]
		for _, r := range tbl.list {
			if e.alive(tbl, r) {
				_ = out.InsertTuple(name, r.tuple)
			}
		}
	}
	return out
}
