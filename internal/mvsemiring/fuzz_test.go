package mvsemiring_test

import (
	"testing"

	"hyperprov/internal/mvsemiring"
)

// FuzzParseString checks the MV annotation parser never panics and that
// everything it accepts round-trips through String.
func FuzzParseString(f *testing.F) {
	for _, seed := range []string{
		"0",
		"x1",
		"U^t1_{T2,5}(I^t1_{T,2}(x1))",
		"(x1 + x2)",
		"(x1 * x2)",
		"D^t_{T,3}((x1 + x2))",
		"(",
		"U^t_{T,",
		"1)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := mvsemiring.ParseString(src)
		if err != nil {
			return
		}
		out := e.String()
		back, err := mvsemiring.ParseString(out)
		if err != nil {
			t.Fatalf("rendering %q of accepted %q does not re-parse: %v", out, src, err)
		}
		if !back.Equal(e) {
			t.Fatalf("round trip changed %q -> %q", out, back.String())
		}
		if e.Size() < 1 {
			t.Fatal("degenerate size")
		}
		_ = e.Unv()
		_ = e.Canonical()
		_ = e.Depth()
	})
}
