package mvsemiring

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseString parses the string representation maintained by the
// ReprString engine back into an expression tree. This is the hidden
// cost of the string implementation that Section 6.4 points out: the
// string updates quickly, but every *use* of the provenance (valuation,
// Unv, inspection) must first parse it.
//
// Grammar (exactly what the engine emits):
//
//	expr   := atom | '(' expr (' + ' expr)* ')' | '(' expr (' * ' expr)* ')'
//	atom   := '0' | '1' | ident | version
//	version:= [IUDC] '^' id '_{' txn ',' time '}' '(' expr ')'
//
// where id and txn run to the next structural delimiter.
func ParseString(s string) (*Expr, error) {
	p := &stringParser{src: s}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("mvsemiring: trailing input at offset %d in %q", p.pos, s)
	}
	return e, nil
}

type stringParser struct {
	src string
	pos int
}

func (p *stringParser) skipSpace() {
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		p.pos++
	}
}

func (p *stringParser) parseExpr() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("mvsemiring: unexpected end of input")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		kids := []*Expr{first}
		var op byte
		for {
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ')' {
				p.pos++
				break
			}
			if p.pos >= len(p.src) || (p.src[p.pos] != '+' && p.src[p.pos] != '*') {
				return nil, fmt.Errorf("mvsemiring: expected + or * at offset %d", p.pos)
			}
			cur := p.src[p.pos]
			if op == 0 {
				op = cur
			} else if op != cur {
				return nil, fmt.Errorf("mvsemiring: mixed + and * without parentheses at offset %d", p.pos)
			}
			p.pos++
			next, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			kids = append(kids, next)
		}
		if op == '*' {
			return Times(kids...), nil
		}
		return Plus(kids...), nil
	}
	return p.parseAtom()
}

func (p *stringParser) parseAtom() (*Expr, error) {
	c := p.src[p.pos]
	// Version annotation: X^id_{txn,time}(child).
	if (c == 'I' || c == 'U' || c == 'D' || c == 'C') && p.pos+1 < len(p.src) && p.src[p.pos+1] == '^' {
		op := VersionOp(c)
		p.pos += 2
		id, err := p.until("_{")
		if err != nil {
			return nil, err
		}
		txn, err := p.until(",")
		if err != nil {
			return nil, err
		}
		timeStr, err := p.until("}")
		if err != nil {
			return nil, err
		}
		tv, err := strconv.Atoi(strings.TrimSpace(timeStr))
		if err != nil {
			return nil, fmt.Errorf("mvsemiring: bad time %q: %v", timeStr, err)
		}
		if p.pos >= len(p.src) || p.src[p.pos] != '(' {
			return nil, fmt.Errorf("mvsemiring: expected ( after version head at offset %d", p.pos)
		}
		p.pos++
		child, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("mvsemiring: expected ) at offset %d", p.pos)
		}
		p.pos++
		return Version(op, id, txn, tv-1, child), nil
	}
	switch {
	case c == '0':
		p.pos++
		return Zero(), nil
	case c == '1':
		p.pos++
		return One(), nil
	case unicode.IsLetter(rune(c)) || c == '_':
		start := p.pos
		for p.pos < len(p.src) {
			r := rune(p.src[p.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			p.pos++
		}
		return Var(p.src[start:p.pos]), nil
	default:
		return nil, fmt.Errorf("mvsemiring: unexpected character %q at offset %d", c, p.pos)
	}
}

// until consumes up to and including the delimiter, returning the text
// before it.
func (p *stringParser) until(delim string) (string, error) {
	idx := strings.Index(p.src[p.pos:], delim)
	if idx < 0 {
		return "", fmt.Errorf("mvsemiring: missing %q after offset %d", delim, p.pos)
	}
	out := p.src[p.pos : p.pos+idx]
	p.pos += idx + len(delim)
	return out, nil
}
