package mvsemiring_test

import (
	"math/rand"
	"strings"
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/mvsemiring"
)

func bikeDB(t *testing.T) *db.Database {
	t.Helper()
	schema := db.MustSchema(db.MustRelationSchema("Products",
		db.Attribute{Name: "Product", Kind: db.KindString},
		db.Attribute{Name: "Category", Kind: db.KindString},
		db.Attribute{Name: "Price", Kind: db.KindInt},
	))
	d := db.NewDatabase(schema)
	for _, r := range []db.Tuple{
		{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)},
		{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
		{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)},
	} {
		if err := d.InsertTuple("Products", r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestExprStringAndSize(t *testing.T) {
	x := mvsemiring.Var("x1")
	e := mvsemiring.Version(mvsemiring.OpUpdate, "t1", "T2", 4,
		mvsemiring.Version(mvsemiring.OpInsert, "t1", "T", 1, x))
	want := "U^t1_{T2,5}(I^t1_{T,2}(x1))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if e.Size() != 3 {
		t.Errorf("Size = %d, want 3", e.Size())
	}
	if e.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", e.Depth())
	}
}

func TestUnvExample311(t *testing.T) {
	// Example 3.11: Unv of U^3(U^2(U^1(I(x1)))) and of U^2(U^1(I(x1)))
	// both yield x1.
	x := mvsemiring.Var("x1")
	deep := mvsemiring.Version(mvsemiring.OpUpdate, "t", "T2", 4,
		mvsemiring.Version(mvsemiring.OpUpdate, "t", "T1", 3,
			mvsemiring.Version(mvsemiring.OpUpdate, "t", "T1", 2,
				mvsemiring.Version(mvsemiring.OpInsert, "t", "T", 1, x))))
	shallow := mvsemiring.Version(mvsemiring.OpUpdate, "t", "T2", 3,
		mvsemiring.Version(mvsemiring.OpUpdate, "t", "T1'", 2,
			mvsemiring.Version(mvsemiring.OpInsert, "t", "T", 1, x)))
	if !deep.Unv().Equal(x) || !shallow.Unv().Equal(x) {
		t.Errorf("Unv = %v / %v, want x1", deep.Unv(), shallow.Unv())
	}
	// Deletions vanish under Unv.
	del := mvsemiring.Version(mvsemiring.OpDelete, "t", "T", 1, x)
	if !del.Unv().Equal(mvsemiring.Zero()) {
		t.Errorf("Unv(D(x1)) = %v, want 0", del.Unv())
	}
	sum := mvsemiring.Plus(del, shallow)
	if !sum.Unv().Equal(x) {
		t.Errorf("Unv(D(x1) + U(...)) = %v, want x1", sum.Unv())
	}
}

func TestPlusTimesConstructors(t *testing.T) {
	if !mvsemiring.Plus().Equal(mvsemiring.Zero()) {
		t.Error("empty Plus must be 0")
	}
	if !mvsemiring.Times().Equal(mvsemiring.One()) {
		t.Error("empty Times must be 1")
	}
	x := mvsemiring.Var("x")
	if !mvsemiring.Plus(x).Equal(x) || !mvsemiring.Times(x).Equal(x) {
		t.Error("singletons must collapse")
	}
	z := mvsemiring.Times(mvsemiring.Zero(), x)
	if !z.Unv().Equal(mvsemiring.Zero()) {
		t.Error("0 * x must Unv to 0")
	}
}

func bikeModify(cat, to string) db.Update {
	return db.Modify("Products",
		db.Pattern{db.Const(db.S("Kids mnt bike")), db.Const(db.S(cat)), db.AnyVar("c")},
		[]db.SetClause{db.Keep(), db.SetTo(db.S(to)), db.Keep()})
}

// TestExample310NonInvariance reproduces the paper's key criticism: the
// set-equivalent transactions T1 (Kids→Sport; Sport→Bicycles) and T1'
// (Kids→Bicycles; Sport→Bicycles) give structurally different
// MV-semiring annotations — version chains of different depth — while
// Unv collapses both to the same underlying polynomial.
func TestExample310NonInvariance(t *testing.T) {
	t1 := db.Transaction{Label: "T1", Updates: []db.Update{
		bikeModify("Kids", "Sport"), bikeModify("Sport", "Bicycles"),
	}}
	t1p := db.Transaction{Label: "T1'", Updates: []db.Update{
		bikeModify("Kids", "Bicycles"), bikeModify("Sport", "Bicycles"),
	}}
	e1 := mvsemiring.New(mvsemiring.ReprTree, bikeDB(t))
	e2 := mvsemiring.New(mvsemiring.ReprTree, bikeDB(t))
	if err := e1.ApplyAll([]db.Transaction{t1}); err != nil {
		t.Fatal(err)
	}
	if err := e2.ApplyAll([]db.Transaction{t1p}); err != nil {
		t.Fatal(err)
	}
	bic := db.Tuple{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)}
	a1 := e1.Annotation("Products", bic)
	a2 := e2.Annotation("Products", bic)
	if a1 == nil || a2 == nil {
		t.Fatal("missing Bicycles annotations")
	}
	if a1.Equal(a2) {
		t.Errorf("MV-semiring should NOT be equivalence invariant, got equal annotations %v", a1)
	}
	if a1.Depth() <= a2.Depth() {
		t.Errorf("T1 chains two updates for the Kids tuple: depth %d vs %d", a1.Depth(), a2.Depth())
	}
	if !a1.Unv().Canonical().Equal(a2.Unv().Canonical()) {
		t.Errorf("Unv must coincide: %v vs %v", a1.Unv(), a2.Unv())
	}
}

func TestStringReprMatchesTreeRendering(t *testing.T) {
	txn := db.Transaction{Label: "T1", Updates: []db.Update{
		bikeModify("Kids", "Sport"), bikeModify("Sport", "Bicycles"),
	}}
	tree := mvsemiring.New(mvsemiring.ReprTree, bikeDB(t))
	str := mvsemiring.New(mvsemiring.ReprString, bikeDB(t))
	if err := tree.ApplyAll([]db.Transaction{txn}); err != nil {
		t.Fatal(err)
	}
	if err := str.ApplyAll([]db.Transaction{txn}); err != nil {
		t.Fatal(err)
	}
	bic := db.Tuple{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)}
	if got, want := str.AnnotationString("Products", bic), tree.Annotation("Products", bic).String(); got != want {
		t.Errorf("string repr = %q, tree rendering = %q", got, want)
	}
}

func TestMVLiveDBMatchesPlain(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	cats := []string{"a", "b", "c"}
	schema := db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "id", Kind: db.KindInt},
		db.Attribute{Name: "cat", Kind: db.KindString},
	))
	for trial := 0; trial < 40; trial++ {
		initial := db.NewDatabase(schema)
		for i := 0; i < 3+r.Intn(8); i++ {
			_ = initial.InsertTuple("R", db.Tuple{db.I(int64(r.Intn(5))), db.S(cats[r.Intn(3)])})
		}
		var txns []db.Transaction
		for i := 0; i < 1+r.Intn(3); i++ {
			var ups []db.Update
			for j := 0; j < 1+r.Intn(4); j++ {
				switch r.Intn(3) {
				case 0:
					ups = append(ups, db.Insert("R", db.Tuple{db.I(int64(r.Intn(5))), db.S(cats[r.Intn(3)])}))
				case 1:
					ups = append(ups, db.Delete("R", db.Pattern{db.Const(db.I(int64(r.Intn(5)))), db.AnyVar("c")}))
				default:
					ups = append(ups, db.Modify("R",
						db.Pattern{db.AnyVar("i"), db.Const(db.S(cats[r.Intn(3)]))},
						[]db.SetClause{db.Keep(), db.SetTo(db.S(cats[r.Intn(3)]))}))
				}
			}
			txns = append(txns, db.Transaction{Label: "T" + string(rune('0'+i)), Updates: ups})
		}
		plain := initial.Clone()
		if err := plain.ApplyAll(txns); err != nil {
			t.Fatal(err)
		}
		for _, repr := range []mvsemiring.Repr{mvsemiring.ReprTree, mvsemiring.ReprString} {
			e := mvsemiring.New(repr, initial)
			if err := e.ApplyAll(txns); err != nil {
				t.Fatal(err)
			}
			if !e.LiveDB().Equal(plain) {
				t.Fatalf("trial %d, %v: MV live DB diverges:\n%s", trial, repr, e.LiveDB().Diff(plain))
			}
		}
	}
}

func TestCommitAnnotations(t *testing.T) {
	txn := db.Transaction{Label: "T1", Updates: []db.Update{bikeModify("Kids", "Sport")}}
	e := mvsemiring.New(mvsemiring.ReprTree, bikeDB(t), mvsemiring.WithCommitAnnotations(true))
	if err := e.ApplyAll([]db.Transaction{txn}); err != nil {
		t.Fatal(err)
	}
	sport := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)}
	ann := e.Annotation("Products", sport)
	if ann == nil || !strings.HasPrefix(ann.String(), "C^") {
		t.Errorf("commit annotation missing: %v", ann)
	}
}

func TestMVEngineErrors(t *testing.T) {
	e := mvsemiring.New(mvsemiring.ReprTree, bikeDB(t))
	if err := e.Apply(db.Insert("Products", db.Tuple{db.S("x"), db.S("y"), db.I(1)})); err == nil {
		t.Error("Apply outside transaction must fail")
	}
	e.Begin("T")
	if err := e.Apply(db.Insert("Nope", db.Tuple{db.S("x")})); err == nil {
		t.Error("unknown relation must fail")
	}
	e.End()
}

func TestMVProvSizeGrowsWithUpdates(t *testing.T) {
	// Version chains grow linearly with updates per tuple, matching the
	// "roughly the same as naive UP[X] per tuple" observation of
	// Section 6.4.
	e := mvsemiring.New(mvsemiring.ReprTree, bikeDB(t))
	base := e.ProvSize()
	txns := []db.Transaction{{Label: "T", Updates: []db.Update{
		bikeModify("Kids", "Sport"),
		bikeModify("Sport", "Kids"),
		bikeModify("Kids", "Sport"),
		bikeModify("Sport", "Kids"),
	}}}
	if err := e.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	if e.ProvSize() <= base {
		t.Errorf("ProvSize did not grow: %d -> %d", base, e.ProvSize())
	}
}
