package mvsemiring_test

import (
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/mvsemiring"
)

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"0",
		"1",
		"x1",
		"U^t1_{T2,5}(I^t1_{T,2}(x1))",
		"(x1 + U^t_{T,2}(x2))",
		"(x1 * x2)",
		"(U^a_{T,1}(x1) + U^b_{T,1}(x2) + x3)",
		"D^t_{T,3}((x1 + x2))",
	}
	for _, s := range cases {
		e, err := mvsemiring.ParseString(s)
		if err != nil {
			t.Fatalf("ParseString(%q): %v", s, err)
		}
		if got := e.String(); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
	}
}

func TestParseStringErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"(",
		"(x1 + x2",
		"(x1 + x2 * x3)",
		"U^t_{T,notanumber}(x)",
		"U^t(x)",
		"$",
		"x1 x2",
	} {
		if _, err := mvsemiring.ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

// TestParseStringMatchesTreeEngine: parsing the string engine's
// annotations recovers exactly the tree engine's expressions — so the
// two implementations are interchangeable up to the parsing cost the
// paper calls out.
func TestParseStringMatchesTreeEngine(t *testing.T) {
	txns := []db.Transaction{
		{Label: "T1", Updates: []db.Update{
			bikeModify("Kids", "Sport"), bikeModify("Sport", "Bicycles"),
		}},
		{Label: "T2", Updates: []db.Update{
			db.Insert("Products", db.Tuple{db.S("Lego"), db.S("Kids"), db.I(90)}),
			db.Delete("Products", db.Pattern{db.AnyVar("p"), db.Const(db.S("Bicycles")), db.AnyVar("c")}),
		}},
	}
	tree := mvsemiring.New(mvsemiring.ReprTree, bikeDB(t))
	str := mvsemiring.New(mvsemiring.ReprString, bikeDB(t))
	if err := tree.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	if err := str.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, tu := range []db.Tuple{
		{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)},
		{db.S("Lego"), db.S("Kids"), db.I(90)},
		{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
	} {
		s := str.AnnotationString("Products", tu)
		if s == "" {
			continue
		}
		parsed, err := mvsemiring.ParseString(s)
		if err != nil {
			t.Fatalf("parse of %q: %v", s, err)
		}
		want := tree.Annotation("Products", tu)
		if want == nil || !parsed.Equal(want) {
			t.Errorf("%v: parsed %v, tree engine has %v", tu, parsed, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no annotations compared")
	}
}
