package mvsemiring

import (
	"fmt"
	"sort"
	"strings"
)

// VersionOp is the operation recorded by a version annotation.
type VersionOp byte

const (
	// OpInsert marks an insertion version annotation I^id_{T,ν}(k).
	OpInsert VersionOp = 'I'
	// OpUpdate marks an update version annotation U^id_{T,ν}(k).
	OpUpdate VersionOp = 'U'
	// OpDelete marks a deletion version annotation D^id_{T,ν}(k).
	OpDelete VersionOp = 'D'
	// OpCommit marks a commit version annotation C^id_{T,ν}(k).
	OpCommit VersionOp = 'C'
)

type exprKind uint8

const (
	kindZero exprKind = iota
	kindOne
	kindVar
	kindVersion
	kindPlus
	kindTimes
)

// Expr is an N[X]ν expression in tree representation: a variable (the
// identifier of a freshly inserted tuple), a semiring constant, a sum or
// product, or a version annotation X^id_{T,ν}(k) wrapping the previous
// annotation k of the tuple identified by id.
type Expr struct {
	kind  exprKind
	name  string // kindVar
	op    VersionOp
	id    string // affected tuple identifier
	txn   string // transaction identifier
	time  int    // ν − 1, the execution time
	child *Expr  // kindVersion
	kids  []*Expr
	size  int64
}

var (
	zeroExpr = &Expr{kind: kindZero, size: 1}
	oneExpr  = &Expr{kind: kindOne, size: 1}
)

// Zero returns the semiring 0.
func Zero() *Expr { return zeroExpr }

// One returns the semiring 1.
func One() *Expr { return oneExpr }

// Var returns a fresh-tuple variable.
func Var(name string) *Expr { return &Expr{kind: kindVar, name: name, size: 1} }

// Version returns the version annotation op^id_{txn,time+1}(child).
func Version(op VersionOp, id, txn string, time int, child *Expr) *Expr {
	return &Expr{kind: kindVersion, op: op, id: id, txn: txn, time: time, child: child, size: 1 + child.size}
}

// Plus returns the sum of the given expressions (empty → 0, singleton →
// the element).
func Plus(kids ...*Expr) *Expr {
	switch len(kids) {
	case 0:
		return zeroExpr
	case 1:
		return kids[0]
	}
	size := int64(1)
	for _, k := range kids {
		size += k.size
	}
	return &Expr{kind: kindPlus, kids: kids, size: size}
}

// Times returns the product of the given expressions (empty → 1,
// singleton → the element).
func Times(kids ...*Expr) *Expr {
	switch len(kids) {
	case 0:
		return oneExpr
	case 1:
		return kids[0]
	}
	size := int64(1)
	for _, k := range kids {
		size += k.size
	}
	return &Expr{kind: kindTimes, kids: kids, size: size}
}

// Size returns the tree size of the expression (the provenance-length
// measure used in Section 6.4).
func (e *Expr) Size() int64 { return e.size }

// TokenSize returns the length of the expression counted in rendered
// tokens: constants and variables count 1, sums and products 1 per
// operator, and a version annotation X^id_{T,ν}(…) counts 4 (operation,
// tuple identifier, transaction, timestamp) plus its argument. Unlike
// the raw node count, this is comparable to UP[X] expression sizes,
// where every node renders as a single token.
func (e *Expr) TokenSize() int64 {
	switch e.kind {
	case kindVersion:
		return 4 + e.child.TokenSize()
	case kindPlus, kindTimes:
		var n int64 = int64(len(e.kids)) - 1
		for _, k := range e.kids {
			n += k.TokenSize()
		}
		return n
	default:
		return 1
	}
}

// Depth returns the height of the expression tree; MV version chains
// make trees deep, which Section 6.4 identifies as the cost driver of
// the tree implementation.
func (e *Expr) Depth() int {
	switch e.kind {
	case kindVersion:
		return 1 + e.child.Depth()
	case kindPlus, kindTimes:
		d := 0
		for _, k := range e.kids {
			if kd := k.Depth(); kd > d {
				d = kd
			}
		}
		return d + 1
	default:
		return 1
	}
}

// IsDeleted reports whether the top of the expression records a
// deletion.
func (e *Expr) IsDeleted() bool { return e.kind == kindVersion && e.op == OpDelete }

// String renders the expression in the paper's notation, e.g.
// "U^t1_{T2,5}(I^t1_{T,2}(x1))".
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	switch e.kind {
	case kindZero:
		b.WriteByte('0')
	case kindOne:
		b.WriteByte('1')
	case kindVar:
		b.WriteString(e.name)
	case kindVersion:
		fmt.Fprintf(b, "%c^%s_{%s,%d}(", byte(e.op), e.id, e.txn, e.time+1)
		e.child.write(b)
		b.WriteByte(')')
	case kindPlus, kindTimes:
		sep := " + "
		if e.kind == kindTimes {
			sep = " * "
		}
		b.WriteByte('(')
		for i, k := range e.kids {
			if i > 0 {
				b.WriteString(sep)
			}
			k.write(b)
		}
		b.WriteByte(')')
	}
}

// Unv strips the embedded version history, keeping only the underlying
// N[X] information (Section 3.3; Example 3.11): insert, update and
// commit annotations are replaced by their arguments, a deletion maps to
// 0, and sums/products are rebuilt over the stripped children.
func (e *Expr) Unv() *Expr {
	switch e.kind {
	case kindZero, kindOne, kindVar:
		return e
	case kindVersion:
		if e.op == OpDelete {
			return zeroExpr
		}
		return e.child.Unv()
	case kindPlus:
		kids := make([]*Expr, 0, len(e.kids))
		for _, k := range e.kids {
			u := k.Unv()
			if u.kind == kindZero {
				continue
			}
			kids = append(kids, u)
		}
		return Plus(kids...)
	case kindTimes:
		kids := make([]*Expr, 0, len(e.kids))
		for _, k := range e.kids {
			u := k.Unv()
			if u.kind == kindZero {
				return zeroExpr
			}
			if u.kind == kindOne {
				continue
			}
			kids = append(kids, u)
		}
		return Times(kids...)
	default:
		return e
	}
}

// Canonical returns the expression with the children of every sum and
// product sorted by their rendering. N[X] addition and multiplication
// are commutative, so the result is Unv-equivalent; it gives a
// deterministic representative for comparing underlying polynomials.
func (e *Expr) Canonical() *Expr {
	switch e.kind {
	case kindVersion:
		return Version(e.op, e.id, e.txn, e.time, e.child.Canonical())
	case kindPlus, kindTimes:
		kids := make([]*Expr, len(e.kids))
		for i, k := range e.kids {
			kids[i] = k.Canonical()
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i].String() < kids[j].String() })
		if e.kind == kindPlus {
			return Plus(kids...)
		}
		return Times(kids...)
	default:
		return e
	}
}

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e.kind != o.kind || e.size != o.size || e.name != o.name ||
		e.op != o.op || e.id != o.id || e.txn != o.txn || e.time != o.time || len(e.kids) != len(o.kids) {
		return false
	}
	if e.kind == kindVersion {
		return e.child.Equal(o.child)
	}
	for i := range e.kids {
		if !e.kids[i].Equal(o.kids[i]) {
			return false
		}
	}
	return true
}
