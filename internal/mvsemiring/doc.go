// Package mvsemiring reimplements the multi-version semiring (MV-
// semiring) provenance model of Arab, Gawlick, Krishnaswamy,
// Radhakrishnan and Glavic ("Reenactment for read-committed snapshot
// isolation", CIKM 2016), which the paper compares against in Sections
// 3.3 and 6.4.
//
// In the most general MV-semiring N[X]ν, every tuple is annotated by a
// symbolic expression over variables (identifiers of freshly inserted
// tuples), the semiring operations + and ·, and version annotations
// X^id_{T,ν}(k), where X ∈ {I, U, D, C} records that an insert, update,
// delete or commit was executed at time ν−1 by transaction T on the
// tuple with identifier id whose previous annotation was k. The
// structure of an expression thus encodes the full derivation history of
// the tuple — which is precisely why the model is not invariant under
// transaction equivalence (Example 3.10): set-equivalent transactions
// wrap annotations in different version chains.
//
// The package provides two interchangeable representations, mirroring
// the two implementations benchmarked in Section 6.4: a tree
// representation (Expr) and a string representation (StringAnnotations),
// plus the Unv operation that strips version annotations, and an Engine
// that tracks MV provenance for the same hyperplane workloads the
// hyperprov engines run (package engine).
package mvsemiring
