package server

import (
	"expvar"
	"net/http"
	"time"
)

// metrics holds the per-endpoint counters in an expvar.Map that is not
// published to the process-global namespace by default, so multiple
// servers (e.g. in tests) do not collide; PublishExpvar on the Server
// exposes it under /debug/vars.
type metrics struct {
	m *expvar.Map
}

func newMetrics() *metrics {
	return &metrics{m: new(expvar.Map).Init()}
}

// statusRecorder captures the status code a handler writes, for the
// error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request, error and latency counters
// keyed by the endpoint name.
func (mt *metrics) instrument(name string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, req)
		mt.m.Add(name+".requests", 1)
		mt.m.Add(name+".latency_us", time.Since(start).Microseconds())
		if rec.status >= 400 {
			mt.m.Add(name+".errors", 1)
		}
	})
}

func (mt *metrics) serveHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(mt.m.String()))
}
