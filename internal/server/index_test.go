package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hyperprov/internal/engine"
)

type indexInfoJSON struct {
	Rel         string `json:"rel"`
	Attr        string `json:"attr"`
	Auto        bool   `json:"auto"`
	Keys        int    `json:"keys"`
	Entries     int    `json:"entries"`
	Dead        int    `json:"dead"`
	Compactions uint64 `json:"compactions"`
}

type indexListJSON struct {
	Indexes []indexInfoJSON `json:"indexes"`
	Planner struct {
		FullScans      uint64 `json:"fullScans"`
		IndexScans     uint64 `json:"indexScans"`
		IntersectScans uint64 `json:"intersectScans"`
		AutoBuilds     uint64 `json:"autoBuilds"`
		Compactions    uint64 `json:"compactions"`
	} `json:"planner"`
}

// TestIndexEndpoints walks the index lifecycle over HTTP: empty list,
// build, idempotent re-build, list with stats, drop, and the 404 for
// dropping what is not there.
func TestIndexEndpoints(t *testing.T) {
	srv := New(figure1Engine(t, engine.ModeNormalForm))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Empty listing renders an empty array, not null.
	resp, err := client.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[indexListJSON](t, resp)
	if list.Indexes == nil || len(list.Indexes) != 0 {
		t.Fatalf("want empty indexes array, got %+v", list.Indexes)
	}

	// Build an index; building it again is a no-op success.
	for i := 0; i < 2; i++ {
		resp = postJSON(t, client, ts.URL+"/v1/indexes", map[string]string{
			"rel": "Products", "attr": "Category",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("build #%d: status %d", i+1, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp = postJSON(t, client, ts.URL+"/v1/indexes", map[string]string{
		"rel": "Products", "attr": "Product",
	})
	resp.Body.Close()

	// The figure 1 log pins Category and Product, so after ingesting it
	// the planner counters move and the listing shows both indexes.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/ingest", strings.NewReader(figure1Log))
	req.Header.Set("Content-Type", "text/plain")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = client.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	list = decode[indexListJSON](t, resp)
	if len(list.Indexes) != 2 {
		t.Fatalf("want 2 indexes listed, got %+v", list.Indexes)
	}
	for _, info := range list.Indexes {
		if info.Rel != "Products" || info.Auto {
			t.Fatalf("unexpected index row %+v", info)
		}
		if info.Keys == 0 || info.Entries == 0 {
			t.Fatalf("index %s.%s reports no volume: %+v", info.Rel, info.Attr, info)
		}
	}
	if list.Planner.IndexScans == 0 {
		t.Fatalf("ingest did not move the planner counters: %+v", list.Planner)
	}

	// Planner counters are also surfaced in /v1/stats.
	resp, err = client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[map[string]any](t, resp)
	for _, key := range []string{"plannerFullScans", "plannerIndexScans", "plannerIntersectScans",
		"plannerAutoBuilds", "plannerCompactions", "indexes"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/v1/stats missing %q: %v", key, stats)
		}
	}
	if n, _ := stats["indexes"].(float64); n != 2 {
		t.Errorf("/v1/stats indexes = %v, want 2", stats["indexes"])
	}

	// Drop one; dropping it again is a 404 with the typed code.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/indexes?rel=Products&attr=Product", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drop: status %d", resp.StatusCode)
	}
	dropped := decode[map[string]bool](t, resp)
	if !dropped["dropped"] {
		t.Fatalf("drop response %v", dropped)
	}
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/indexes?rel=Products&attr=Product", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double drop: status %d, want 404", resp.StatusCode)
	}
	errResp := decode[errorResponse](t, resp)
	if errResp.Error.Code != codeUnknownIndex {
		t.Fatalf("double drop code %q, want %q", errResp.Error.Code, codeUnknownIndex)
	}
}

// TestIndexEndpointErrors covers the request-validation and
// engine-sentinel paths of the index handlers.
func TestIndexEndpointErrors(t *testing.T) {
	srv := New(figure1Engine(t, engine.ModeNaive))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	check := func(resp *http.Response, status int, code string) {
		t.Helper()
		if resp.StatusCode != status {
			t.Fatalf("status %d, want %d", resp.StatusCode, status)
		}
		got := decode[errorResponse](t, resp)
		if got.Error.Code != code {
			t.Fatalf("code %q, want %q", got.Error.Code, code)
		}
	}

	// Build: missing fields, unknown relation, unknown attribute.
	check(postJSON(t, client, ts.URL+"/v1/indexes", map[string]string{"rel": "Products"}),
		http.StatusBadRequest, codeBadRequest)
	check(postJSON(t, client, ts.URL+"/v1/indexes", map[string]string{"rel": "Nope", "attr": "x"}),
		http.StatusNotFound, codeUnknownRelation)
	check(postJSON(t, client, ts.URL+"/v1/indexes", map[string]string{"rel": "Products", "attr": "Nope"}),
		http.StatusNotFound, codeUnknownAttribute)

	// Drop: missing query parameters, unknown relation, missing index.
	for path, want := range map[string]struct {
		status int
		code   string
	}{
		"/v1/indexes?rel=Products":               {http.StatusBadRequest, codeBadRequest},
		"/v1/indexes?rel=Nope&attr=x":            {http.StatusNotFound, codeUnknownRelation},
		"/v1/indexes?rel=Products&attr=Category": {http.StatusNotFound, codeUnknownIndex},
	} {
		req, _ := http.NewRequest("DELETE", ts.URL+path, nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		check(resp, want.status, want.code)
	}
}
