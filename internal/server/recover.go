package server

import (
	"net/http"
	"runtime/debug"
)

// recoverPanics is the outermost-but-one middleware (inside the request
// timeout): a panicking handler answers a 500 internal envelope instead
// of killing the connection with an empty reply, and the panic is
// counted under "panics" in the metrics map. http.ErrAbortHandler is
// re-raised — it is the sanctioned way to abort a response whose
// headers are already out (the snapshot download uses it), and
// net/http suppresses its stack trace.
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if r == http.ErrAbortHandler {
				panic(r)
			}
			s.metrics.m.Add("panics", 1)
			s.logf("panic serving %s %s: %v\n%s", req.Method, req.URL.Path, r, debug.Stack())
			// Best effort: if the handler already wrote headers this is
			// a no-op on the status line and the client sees a truncated
			// body, which still fails loudly on their side.
			writeError(w, http.StatusInternalServerError, codeInternal, "internal server error")
		}()
		h.ServeHTTP(w, req)
	})
}
