package server

import (
	"context"
	"encoding/binary"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperprov/internal/engine"
	"hyperprov/internal/wal"
	"hyperprov/internal/workload"
)

// startLeaderPair opens a persistent leader over the figure-1 database,
// serves it over HTTP, and returns the leader server plus a follower
// replicating from it (also served over HTTP).
func startLeaderPair(t *testing.T) (leader *httptest.Server, st *wal.Store, follower *httptest.Server, f *wal.Follower) {
	t.Helper()
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(figure1Database(t)),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	leader = httptest.NewServer(New(st, WithLogf(t.Logf)).Handler())
	t.Cleanup(leader.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f, err = wal.OpenFollower(ctx, t.TempDir(), wal.HTTPSource(leader.URL, nil), wal.WithSync(wal.SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	follower = httptest.NewServer(New(f, WithLogf(t.Logf)).Handler())
	t.Cleanup(follower.Close)
	return leader, st, follower, f
}

// waitFollowerLSN polls until the follower's applied LSN reaches n.
func waitFollowerLSN(t *testing.T, f *wal.Follower, n uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f.ReplicaStats().AppliedLSN >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower stuck at LSN %d waiting for %d", f.ReplicaStats().AppliedLSN, n)
}

// TestReplicationServerDifferential drives writes through the leader's
// HTTP API and checks the follower's HTTP read surface answers
// byte-identically once caught up: /v1/db, what-if endpoints, and the
// replication sections of /readyz and /v1/stats.
func TestReplicationServerDifferential(t *testing.T) {
	leader, st, follower, f := startLeaderPair(t)

	resp, err := leader.Client().Post(leader.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(figure1Log))
	if err != nil {
		t.Fatal(err)
	}
	if ing := decode[map[string]int](t, resp); ing["transactions"] != 2 {
		t.Fatalf("ingest reported %v", ing)
	}
	waitFollowerLSN(t, f, st.Stats().LSN)

	// Identical live database over HTTP.
	code, lraw := getBytes(t, leader.Client(), leader.URL+"/v1/db")
	if code != http.StatusOK {
		t.Fatalf("leader /v1/db: %d", code)
	}
	code, fraw := getBytes(t, follower.Client(), follower.URL+"/v1/db")
	if code != http.StatusOK {
		t.Fatalf("follower /v1/db: %d", code)
	}
	if string(lraw) != string(fraw) {
		t.Fatalf("live DB differs:\nleader   %s\nfollower %s", lraw, fraw)
	}

	// What-ifs run on the follower's replica state and agree with the
	// leader's answers.
	for _, ep := range []struct {
		path string
		body any
	}{
		{"/v1/whatif/deletion", deletionRequest{Tuples: []string{"p3"}}},
		{"/v1/whatif/abort", abortRequest{Labels: []string{"p"}}},
	} {
		lgot := decode[any](t, postJSON(t, leader.Client(), leader.URL+ep.path, ep.body))
		fgot := decode[any](t, postJSON(t, follower.Client(), follower.URL+ep.path, ep.body))
		if !reflect.DeepEqual(lgot, fgot) {
			t.Fatalf("%s differs between leader and follower:\nleader   %v\nfollower %v", ep.path, lgot, fgot)
		}
	}

	// Annotation lookups agree.
	req := annotationRequest{Rel: "Products", Tuple: []any{"Kids mnt bike", "Bicycles", 120}}
	la := decode[annotationResponse](t, postJSON(t, leader.Client(), leader.URL+"/v1/annotation", req))
	fa := decode[annotationResponse](t, postJSON(t, follower.Client(), follower.URL+"/v1/annotation", req))
	if !la.Found || la.Annotation != fa.Annotation {
		t.Fatalf("annotation differs: leader %+v, follower %+v", la, fa)
	}

	// A caught-up follower is ready and reports its lag.
	resp, err = follower.Client().Get(follower.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready := decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK || ready["ok"] != true || ready["follower"] != true {
		t.Fatalf("follower readyz: %d %v", resp.StatusCode, ready)
	}
	if _, ok := ready["lag"].(map[string]any); !ok {
		t.Fatalf("follower readyz has no lag section: %v", ready)
	}

	// /v1/stats carries the replication section on the follower only.
	stats := decode[map[string]any](t, mustGet(t, follower.Client(), follower.URL+"/v1/stats"))
	if stats["replication"] == nil {
		t.Fatalf("follower stats has no replication section: %v", stats)
	}
	lstats := decode[map[string]any](t, mustGet(t, leader.Client(), leader.URL+"/v1/stats"))
	if lstats["replication"] != nil {
		t.Fatalf("leader stats has a replication section: %v", lstats["replication"])
	}
}

// TestFollowerWriteRejection: every mutating endpoint on a follower
// answers 403 with code follower; the read surface keeps working.
func TestFollowerWriteRejection(t *testing.T) {
	leader, st, follower, f := startLeaderPair(t)
	resp, err := leader.Client().Post(leader.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(figure1Log))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFollowerLSN(t, f, st.Stats().LSN)
	before := f.ReplicaStats().AppliedLSN

	cases := []struct {
		name string
		do   func() *http.Response
	}{
		{"ingest", func() *http.Response {
			resp, err := follower.Client().Post(follower.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(figure1Log))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
		{"checkpoint", func() *http.Response {
			resp, err := follower.Client().Post(follower.URL+"/v1/checkpoint", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
		{"snapshot load", func() *http.Response {
			resp, err := follower.Client().Post(follower.URL+"/v1/snapshot", "application/octet-stream", strings.NewReader("x"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
		{"index build", func() *http.Response {
			return postJSON(t, follower.Client(), follower.URL+"/v1/indexes", indexRequest{Rel: "Products", Attr: "Category"})
		}},
	}
	for _, c := range cases {
		resp := c.do()
		er := decode[errorResponse](t, resp)
		if resp.StatusCode != http.StatusForbidden || er.Error.Code != codeFollower {
			t.Errorf("%s on follower: status %d code %q, want 403 %q", c.name, resp.StatusCode, er.Error.Code, codeFollower)
		}
	}
	if got := f.ReplicaStats().AppliedLSN; got != before {
		t.Fatalf("rejected writes moved the follower LSN %d -> %d", before, got)
	}
	if code, _ := getBytes(t, follower.Client(), follower.URL+"/v1/db"); code != http.StatusOK {
		t.Fatalf("follower reads broken after rejected writes: %d", code)
	}
}

// TestReplicationStreamEndpointErrors: the stream endpoint needs a
// persistent leader (409 not_persistent on an in-memory engine, and a
// follower is not a leader either) and a well-formed ?from= (400).
func TestReplicationStreamEndpointErrors(t *testing.T) {
	mem := httptest.NewServer(New(figure1Engine(t, engine.ModeNormalForm)).Handler())
	defer mem.Close()
	resp, err := mem.Client().Get(mem.URL + "/v1/replication/stream")
	if err != nil {
		t.Fatal(err)
	}
	if er := decode[errorResponse](t, resp); resp.StatusCode != http.StatusConflict || er.Error.Code != codeNotPersistent {
		t.Fatalf("stream on in-memory engine: %d %+v, want 409 not_persistent", resp.StatusCode, er.Error)
	}

	st, err := wal.Open(t.TempDir(), wal.WithMode(engine.ModeNormalForm), wal.WithInitialDatabase(figure1Database(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	leader := httptest.NewServer(New(st).Handler())
	defer leader.Close()
	resp, err = leader.Client().Get(leader.URL + "/v1/replication/stream?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	if er := decode[errorResponse](t, resp); resp.StatusCode != http.StatusBadRequest || er.Error.Code != codeBadRequest {
		t.Fatalf("bad from parameter: %d %+v, want 400 bad_request", resp.StatusCode, er.Error)
	}
}

// TestDrainStreamsUnblocksShutdown reproduces the deployment shutdown
// path: graceful http.Server.Shutdown on a leader with an attached
// follower must complete promptly once DrainStreams cuts the stream.
// Without the drain, Shutdown waits on the never-ending stream response
// until its context deadline and the process exits uncleanly.
func TestDrainStreamsUnblocksShutdown(t *testing.T) {
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(figure1Database(t)),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := New(st, WithLogf(t.Logf))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	f, err := wal.OpenFollower(ctx, t.TempDir(),
		wal.HTTPSource("http://"+ln.Addr().String(), nil), wal.WithSync(wal.SyncNever))
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for deadline := time.Now().Add(10 * time.Second); st.Stats().ActiveStreams == 0; {
		if time.Now().After(deadline) {
			t.Fatal("follower stream never attached")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv.DrainStreams()
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	start := time.Now()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown after DrainStreams: %v (waited %v)", err, time.Since(start))
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
}

// gatedSource forwards the replication stream frame-by-frame up to and
// including the checkpoint-done marker (message type 3), then stalls
// until Release — freezing a follower exactly at "bootstrapped but not
// caught up" so tests can observe the syncing window deterministically.
type gatedSource struct {
	src     wal.StreamSource
	mu      sync.Mutex
	release chan struct{}
	first   bool
}

func newGatedSource(src wal.StreamSource) *gatedSource {
	return &gatedSource{src: src, release: make(chan struct{})}
}

func (g *gatedSource) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.release:
	default:
		close(g.release)
	}
}

func (g *gatedSource) dial(ctx context.Context, from uint64) (io.ReadCloser, error) {
	rc, err := g.src(ctx, from)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.first {
		return rc, nil
	}
	g.first = true
	return &gatedReader{rc: rc, ctx: ctx, release: g.release}, nil
}

// gatedReader hands out whole frames until it has forwarded the
// msgCkptDone frame, then blocks on release before passing through.
// The block respects the dial context so the follower can still tear
// the session down while gated.
type gatedReader struct {
	rc      io.ReadCloser
	ctx     context.Context
	release chan struct{}
	pending []byte
	passed  bool
	open    bool
}

func (g *gatedReader) Read(p []byte) (int, error) {
	if len(g.pending) == 0 && g.passed && !g.open {
		select {
		case <-g.release:
			g.open = true
		case <-g.ctx.Done():
			return 0, g.ctx.Err()
		}
	}
	if len(g.pending) == 0 && !g.open {
		// Pull one whole frame: 8-byte header (length LE32 + CRC32), then
		// the payload whose first byte is the message type.
		var hdr [8]byte
		if _, err := io.ReadFull(g.rc, hdr[:]); err != nil {
			return 0, err
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		payload := make([]byte, length)
		if _, err := io.ReadFull(g.rc, payload); err != nil {
			return 0, err
		}
		if length > 0 && payload[0] == 3 { // msgCkptDone
			g.passed = true
		}
		g.pending = append(hdr[:], payload...)
	}
	if len(g.pending) > 0 {
		n := copy(p, g.pending)
		g.pending = g.pending[n:]
		return n, nil
	}
	return g.rc.Read(p)
}

func (g *gatedReader) Close() error { return g.rc.Close() }

// TestFollowerReadyzSyncing is the regression test for the readiness
// gap: a follower that bootstrapped from a checkpoint but has not yet
// replayed up to the leader LSN announced at handshake must answer 503
// syncing — with its current lag — and flip to 200 only after catch-up.
func TestFollowerReadyzSyncing(t *testing.T) {
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(figure1Database(t)),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	leader := httptest.NewServer(New(st, WithLogf(t.Logf)).Handler())
	defer leader.Close()
	// Records beyond the bootstrap checkpoint: the follower's initial
	// sync target (the leader LSN at handshake) sits past what the
	// shipped checkpoint alone provides.
	resp, err := leader.Client().Post(leader.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(figure1Log))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	gate := newGatedSource(wal.HTTPSource(leader.URL, nil))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f, err := wal.OpenFollower(ctx, t.TempDir(), gate.dial, wal.WithSync(wal.SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	follower := httptest.NewServer(New(f, WithLogf(t.Logf)).Handler())
	defer follower.Close()

	resp, err = follower.Client().Get(follower.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("syncing follower readyz answered %d (%v), want 503", resp.StatusCode, body)
	}
	er, _ := body["error"].(map[string]any)
	if er["code"] != codeSyncing {
		t.Fatalf("syncing follower error %v, want code %q", body["error"], codeSyncing)
	}
	lag, _ := body["lag"].(map[string]any)
	if lag == nil || lag["records"].(float64) <= 0 || lag["epochs"].(float64) <= 0 {
		t.Fatalf("syncing follower reports no lag: %v", body)
	}

	// min_epoch fencing while lagging: a client that observed the
	// leader's horizon must not read older replica state.
	code, raw := getBytes(t, follower.Client(), follower.URL+"/v1/db?min_epoch=banana")
	if code != http.StatusBadRequest {
		t.Fatalf("bogus min_epoch answered %d: %s", code, raw)
	}
	// Epoch numbering is per process life, so the fence is phrased in
	// the follower's own domain: each gated record is one epoch, so
	// current epoch + record lag is reachable only after catch-up.
	rs := f.ReplicaStats()
	if rs.LagRecords == 0 {
		t.Fatalf("gated follower reports no lag: %+v", rs)
	}
	fence := rs.Epoch + rs.LagRecords
	start := time.Now()
	code, raw = getBytes(t, follower.Client(), follower.URL+"/v1/db?min_epoch="+itoa(fence))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fenced read on lagging follower answered %d: %s", code, raw)
	}
	if strings.Contains(string(raw), codeReplicaLagging) == false {
		t.Fatalf("fenced read error %s, want code %q", raw, codeReplicaLagging)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("fenced read blocked %v, want a bounded wait", waited)
	}

	// Release the stream: the follower catches up, flips ready, and the
	// fence is satisfiable.
	gate.Release()
	waitFollowerLSN(t, f, st.Stats().LSN)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = follower.Client().Get(follower.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body = decode[map[string]any](t, resp)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never became ready: %d %v", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if body["follower"] != true || body["ok"] != true {
		t.Fatalf("ready follower body: %v", body)
	}
	// The caught-up follower satisfies the fence that was unreachable
	// while it lagged.
	if code, raw := getBytes(t, follower.Client(), follower.URL+"/v1/db?min_epoch="+itoa(fence)); code != http.StatusOK {
		t.Fatalf("satisfied fence answered %d: %s", code, raw)
	}
}

// TestServeFollowerWhileReplicating is the follower leg of the race
// matrix: readers hammer every follower endpoint over HTTP while the
// leader commits a workload that streams in live underneath them.
// Afterwards the follower's served database must equal the leader's.
func TestServeFollowerWhileReplicating(t *testing.T) {
	initial, txns, err := workload.Generate(workload.Config{
		Tuples: 200, Pool: 20, Group: 2, Updates: 80,
		QueriesPerTxn: 2, MergeRatio: 0.2, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithHeartbeatEvery(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	leader := httptest.NewServer(New(st, WithLogf(t.Logf)).Handler())
	defer leader.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	f, err := wal.OpenFollower(ctx, t.TempDir(), wal.HTTPSource(leader.URL, nil), wal.WithSync(wal.SyncNever))
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	follower := httptest.NewServer(New(f, WithLogf(t.Logf)).Handler())
	defer follower.Close()
	client := follower.Client()

	done := make(chan struct{})
	var wg sync.WaitGroup
	reader := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					fn()
				}
			}
		}()
	}
	drain := func(path string) {
		resp, err := client.Get(follower.URL + path)
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	reader(func() { drain("/v1/db") })
	reader(func() { drain("/v1/stats") })
	reader(func() { drain("/readyz") })
	reader(func() { drain("/v1/snapshot") })
	reader(func() {
		resp := postJSON(t, client, follower.URL+"/v1/whatif/abort", abortRequest{Labels: []string{txns[0].Label}})
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	})

	for i := range txns {
		if err := st.ApplyTransaction(&txns[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitFollowerLSN(t, f, st.Stats().LSN)
	close(done)
	wg.Wait()

	_, lraw := getBytes(t, leader.Client(), leader.URL+"/v1/db")
	_, fraw := getBytes(t, client, follower.URL+"/v1/db")
	if string(lraw) != string(fraw) {
		t.Fatal("follower /v1/db differs from leader after concurrent replication")
	}
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
