package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"hyperprov/internal/engine"
	"hyperprov/internal/subscribe"
)

// frameReader pumps one streaming response body on a goroutine so
// tests can read frames with a timeout instead of hanging on a broken
// stream.
type frameReader struct {
	resp   *http.Response
	frames chan subscribe.Frame
	errs   chan error
}

func newFrameReader(resp *http.Response, sse bool) *frameReader {
	fr := &frameReader{resp: resp, frames: make(chan subscribe.Frame, 64), errs: make(chan error, 1)}
	go func() {
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				fr.errs <- err
				return
			}
			line = strings.TrimSpace(line)
			if sse {
				if !strings.HasPrefix(line, "data: ") {
					continue // SSE frame separators are blank lines
				}
				line = strings.TrimPrefix(line, "data: ")
			}
			if line == "" {
				continue
			}
			var f subscribe.Frame
			if err := json.Unmarshal([]byte(line), &f); err != nil {
				fr.errs <- fmt.Errorf("bad frame %q: %v", line, err)
				return
			}
			fr.frames <- f
		}
	}()
	return fr
}

// close drops the client side of the stream so httptest.Server.Close
// does not wait out the infinite response.
func (fr *frameReader) close() { fr.resp.Body.Close() }

func (fr *frameReader) next(t *testing.T) subscribe.Frame {
	t.Helper()
	select {
	case f := <-fr.frames:
		return f
	case err := <-fr.errs:
		t.Fatalf("stream ended: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a frame")
	}
	return subscribe.Frame{}
}

// openStream POSTs the subscription request and returns the frame
// reader once the 200 header is in.
func openStream(t *testing.T, ts *httptest.Server, body string) *frameReader {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/subscribe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		t.Fatalf("subscribe answered %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("subscribe content type %q", ct)
	}
	return newFrameReader(resp, false)
}

// TestSubscribeStream drives the ND-JSON endpoint end to end: register
// a watch and a deletion what-if, ingest the Figure 1 log over HTTP,
// and assert acks and in-order deltas arrive on the stream.
func TestSubscribeStream(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fr := openStream(t, ts, `{"subscriptions":[
		{"id":"watch","kind":"watch","rel":"Products"},
		{"id":"del","kind":"deletion","tuples":["p1"]}
	]}`)
	defer fr.close()
	ackA, ackB := fr.next(t), fr.next(t)
	if ackA.Type != "ack" || ackA.ID != "watch" || len(ackA.Rows) != 4 {
		t.Fatalf("bad watch ack: %+v", ackA)
	}
	if ackB.Type != "ack" || ackB.ID != "del" || len(ackB.Rows) != 3 {
		t.Fatalf("bad deletion ack (p1 dead leaves 3 rows): %+v", ackB)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(figure1Log))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Two transactions committed; the watch must see both in epoch
	// order, the deletion what-if at least the first (T1 moves p3's
	// survivor row).
	var lastEpoch uint64
	seen := map[string]int{}
	for i := 0; i < 3; i++ {
		f := fr.next(t)
		if f.Type != "delta" {
			t.Fatalf("frame %d: unexpected %q frame: %+v", i, f.Type, f)
		}
		if f.Epoch < lastEpoch {
			t.Fatalf("frame %d: epoch %d after %d", i, f.Epoch, lastEpoch)
		}
		lastEpoch = f.Epoch
		seen[f.ID]++
	}
	if seen["watch"] != 2 || seen["del"] != 1 {
		t.Fatalf("unexpected delta mix: %v", seen)
	}

	// The stats section must report the registrations.
	st := decode[map[string]any](t, mustGet(t, ts.Client(), ts.URL+"/v1/stats"))
	sub, ok := st["subscriptions"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no subscriptions section: %v", st)
	}
	if sub["subscriptions"].(float64) != 2 || sub["connections"].(float64) != 1 {
		t.Fatalf("subscription stats wrong: %v", sub)
	}
	if sub["deltas"].(float64) < 3 {
		t.Fatalf("delta counter did not move: %v", sub)
	}
}

// TestSubscribeSSE exercises the GET/SSE shape of the same endpoint.
func TestSubscribeSSE(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := url.QueryEscape(`{"id":"w","kind":"watch","rel":"Products","match":[null,"Sport",null]}`)
	resp, err := ts.Client().Get(ts.URL + "/v1/subscribe?spec=" + spec)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE subscribe answered %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	fr := newFrameReader(resp, true)
	defer fr.close()
	ack := fr.next(t)
	if ack.Type != "ack" || ack.ID != "w" || len(ack.Rows) != 2 {
		t.Fatalf("bad SSE ack (2 Sport rows): %+v", ack)
	}
}

// TestSubscribeRejections: spec errors answer typed envelopes before
// any stream bytes.
func TestSubscribeRejections(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		body   string
		status int
		code   string
	}{
		{`{"subscriptions":[]}`, http.StatusBadRequest, codeBadRequest},
		{`{"subscriptions":[{"kind":"watch","rel":"Nope"}]}`, http.StatusNotFound, codeUnknownRelation},
		{`{"subscriptions":[{"kind":"deletion"}]}`, http.StatusBadRequest, codeBadRequest},
		{`{"subscriptions":[{"kind":"watch","rel":"Products","match":[1]}]}`, http.StatusBadRequest, codeBadRequest},
		{`not json`, http.StatusBadRequest, codeBadRequest},
	}
	for i, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/subscribe", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("case %d: status %d, want %d", i, resp.StatusCode, tc.status)
		}
		body := decode[errorResponse](t, resp)
		if body.Error.Code != tc.code {
			t.Fatalf("case %d: code %q, want %q", i, body.Error.Code, tc.code)
		}
	}
}

// TestSubscribeAcrossSnapshotLoad keeps a stream open while the served
// engine is swapped by a snapshot load: the subscriber must receive a
// resync frame against the new engine rather than going silent.
func TestSubscribeAcrossSnapshotLoad(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fr := openStream(t, ts, `{"subscriptions":[{"id":"w","kind":"watch","rel":"Products"}]}`)
	defer fr.close()
	if ack := fr.next(t); ack.Type != "ack" {
		t.Fatalf("expected ack, got %+v", ack)
	}

	// Round-trip the server's own snapshot back into it with a
	// different shard layout — the swap the subscription must survive.
	snap, err := ts.Client().Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/snapshot?shards=2", "application/octet-stream", snap.Body)
	snap.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot load answered %d", resp.StatusCode)
	}

	f := fr.next(t)
	if f.Type != "resync" || f.ID != "w" || len(f.Rows) != 4 {
		t.Fatalf("expected post-swap resync with 4 rows, got %+v", f)
	}
}

// TestErrorEnvelopeRouting: unknown routes answer 404 unknown_route
// and known paths with a wrong method answer 405 method_not_allowed
// with an Allow header — through the typed envelope, on both the plain
// and the stream-mounted routes.
func TestErrorEnvelopeRouting(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do := func(method, path string) *http.Response {
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := do("GET", "/v1/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route answered %d", resp.StatusCode)
	}
	if body := decode[errorResponse](t, resp); body.Error.Code != codeUnknownRoute {
		t.Fatalf("unknown route code %q", body.Error.Code)
	}

	for _, tc := range []struct{ method, path, allow string }{
		{"DELETE", "/v1/stats", "GET"},
		{"POST", "/healthz", "GET"},
		{"GET", "/v1/whatif/deletion", "POST"},
		{"DELETE", "/v1/subscribe", "GET, POST"},
		{"POST", "/v1/replication/stream", "GET"},
	} {
		resp := do(tc.method, tc.path)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s answered %d", tc.method, tc.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != tc.allow {
			t.Fatalf("%s %s Allow %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
		if body := decode[errorResponse](t, resp); body.Error.Code != codeMethodNotAllowed {
			t.Fatalf("%s %s code %q", tc.method, tc.path, body.Error.Code)
		}
	}
}
