package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperprov/internal/admission"
	"hyperprov/internal/engine"
)

// shedConfig bounds the expensive class to one in-flight request with
// no queue, with a short window so tests can watch the state recover.
func shedConfig() admission.Config {
	cfg := admission.Unlimited()
	cfg.Classes[admission.ClassExpensive] = admission.ClassConfig{MaxInFlight: 1}
	cfg.Window = 250 * time.Millisecond
	return cfg
}

func errCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return body.Error.Code
}

// TestOverloadShedsTyped drives the server into overload on the
// expensive class and asserts the contract: saturated expensive work
// answers typed 429/503 envelopes with Retry-After, cheap point reads
// keep answering 200 throughout, readyz flips to 503 overloaded, and
// the state recovers once the pressure is gone.
func TestOverloadShedsTyped(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithAdmission(shedConfig()), WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Occupy the expensive class's only slot, as a long what-if would.
	release, err := srv.Admission().Admit(context.Background(), admission.ClassExpensive)
	if err != nil {
		t.Fatal(err)
	}

	// The saturated class sheds with the typed 429 and a Retry-After.
	resp, err := client.Get(ts.URL + "/v1/db")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /v1/db answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response has no Retry-After header")
	}
	if code := errCode(t, resp); code != codeQueueFull {
		t.Fatalf("shed code %q, want %q", code, codeQueueFull)
	}

	// The controller is now overloaded: further expensive work sheds
	// outright with 503 overloaded.
	resp, err = client.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded /v1/snapshot answered %d, want 503", resp.StatusCode)
	}
	if code := errCode(t, resp); code != codeOverloaded {
		t.Fatalf("overload shed code %q, want %q", code, codeOverloaded)
	}

	// Cheap point reads keep answering on their own healthy class.
	resp, err = client.Get(ts.URL + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/schema answered %d under overload, want 200", resp.StatusCode)
	}
	resp = postJSON(t, client, ts.URL+"/v1/annotation", map[string]any{
		"rel": "Products", "tuple": []any{"Tennis Racket", "Sport", 70},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/annotation answered %d under overload, want 200", resp.StatusCode)
	}

	// Liveness and readiness split: healthz stays 200 (the process is
	// fine), readyz answers 503 overloaded with Retry-After (drain me).
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz answered %d under overload, want 200", resp.StatusCode)
	}
	resp, err = client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz answered %d under overload, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("overloaded readyz has no Retry-After header")
	}
	resp.Body.Close()

	// Stats expose the shed counters and the folded health state.
	resp, err = client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[map[string]any](t, resp)
	if got := stats["health"]; got != "overloaded" {
		t.Fatalf("stats health %v, want overloaded", got)
	}
	if srv.Admission().TotalShed() == 0 {
		t.Fatal("TotalShed is zero after sheds")
	}

	// Pressure gone: the state decays back to ok within the window.
	release()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz still %d long after release", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err = client.Get(ts.URL + "/v1/db")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered /v1/db answered %d, want 200", resp.StatusCode)
	}
}

// TestDeadlineAwareShed: a request whose remaining deadline cannot
// cover the minimum service time is shed the moment it would queue —
// it never occupies a queue slot just to time out.
func TestDeadlineAwareShed(t *testing.T) {
	cfg := admission.Unlimited()
	cfg.Classes[admission.ClassWrite] = admission.ClassConfig{MaxInFlight: 1, QueueDepth: 8}
	cfg.MinService = time.Minute // nothing can afford service within the 100ms timeout below
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithAdmission(cfg), WithTimeout(100*time.Millisecond), WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release, err := srv.Admission().Admit(context.Background(), admission.ClassWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("BEGIN x;\nCOMMIT;\n"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-doomed ingest answered %d, want 503", resp.StatusCode)
	}
	if code := errCode(t, resp); code != codeShedDeadline {
		t.Fatalf("shed code %q, want %q", code, codeShedDeadline)
	}
	st := srv.Admission().StatsSnapshot().Classes[admission.ClassWrite.String()]
	if st.ShedDeadline == 0 {
		t.Fatalf("write class counters %+v, want a deadline shed", st)
	}
}

// TestQueueAdmitsOnRelease: at the limit a request queues FIFO and is
// admitted when the slot frees — pressure delays work, it does not
// lose it.
func TestQueueAdmitsOnRelease(t *testing.T) {
	cfg := admission.Unlimited()
	cfg.Classes[admission.ClassWrite] = admission.ClassConfig{MaxInFlight: 1, QueueDepth: 8, QueueWait: 5 * time.Second}
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithAdmission(cfg), WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release, err := srv.Admission().Admit(context.Background(), admission.ClassWrite)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("BEGIN q;\nCOMMIT;\n"))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	// Wait until the request is actually queued, then free the slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Admission().StatsSnapshot().Classes[admission.ClassWrite.String()].Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ingest never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}
	release()
	if got := <-done; got != http.StatusOK {
		t.Fatalf("queued ingest answered %d, want 200 after release", got)
	}
}

// TestBodyTooLarge: every body-accepting endpoint answers the typed
// 413 envelope when the request exceeds the configured cap, instead of
// a generic 400 or a hung connection.
func TestBodyTooLarge(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithMaxBodyBytes(1024), WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	big := strings.Repeat("x", 4096)
	check := func(name string, resp *http.Response, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s answered %d, want 413", name, resp.StatusCode)
		}
		if code := errCode(t, resp); code != codeBodyTooLarge {
			t.Fatalf("%s code %q, want %q", name, code, codeBodyTooLarge)
		}
	}

	resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("BEGIN a;\n-- "+big+"\nCOMMIT;\n"))
	check("ingest", resp, err)

	resp, err = client.Post(ts.URL+"/v1/annotation", "application/json",
		strings.NewReader(fmt.Sprintf(`{"rel":%q,"tuple":["a","b",1]}`, big)))
	check("annotation", resp, err)

	resp, err = client.Post(ts.URL+"/v1/snapshot", "application/octet-stream", strings.NewReader(big))
	check("snapshot_load", resp, err)

	resp, err = client.Post(ts.URL+"/v1/subscribe", "application/json",
		strings.NewReader(fmt.Sprintf(`{"subscriptions":[{"id":%q,"kind":"tuples"}]}`, big)))
	check("subscribe", resp, err)

	// Under the cap everything still works.
	resp, err = client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("BEGIN ok;\nCOMMIT;\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small ingest answered %d, want 200", resp.StatusCode)
	}
}

// TestStalledSubscriberUnderShedding: a subscriber that stops reading
// must never block the write path, even while the write class is under
// admission pressure — the manager drops its frames and schedules a
// resync instead. The test fails by deadlock (or -race) if either
// property breaks.
func TestStalledSubscriberUnderShedding(t *testing.T) {
	cfg := admission.Unlimited()
	cfg.Classes[admission.ClassWrite] = admission.ClassConfig{MaxInFlight: 1, QueueDepth: 32, QueueWait: 10 * time.Second}
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithAdmission(cfg), WithLogf(t.Logf))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Open a subscription with a tiny buffer and read only the ack —
	// then stall, never reading another frame.
	spec := url.QueryEscape(`{"id":"w","kind":"watch","rel":"Products","match":[null,null,null]}`)
	resp, err := client.Get(ts.URL + "/v1/subscribe?buffer=1&spec=" + spec)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe answered %d", resp.StatusCode)
	}
	ack := make([]byte, 1)
	if _, err := resp.Body.Read(ack); err != nil {
		t.Fatalf("reading ack: %v", err)
	}

	// Hammer the bounded write class from several goroutines. Every
	// ingest must complete (queued, not lost) within the test timeout;
	// a write path blocked on the stalled subscriber would hang here.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				log := fmt.Sprintf("BEGIN t%d_%d;\nUPDATE Products SET Price = %d WHERE Category = 'Sport';\nCOMMIT;\n", g, i, 100+g*10+i)
				resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(log))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest %d/%d answered %d", g, i, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The stalled connection fell behind: the manager dropped frames or
	// scheduled a resync rather than blocking the committers.
	sub := srv.Subscriptions().StatsSnapshot()
	raw, _ := json.Marshal(sub)
	var counters map[string]any
	_ = json.Unmarshal(raw, &counters)
	moved := false
	for _, k := range []string{"dropped", "drops", "resyncs", "resyncsScheduled"} {
		if v, ok := counters[k].(float64); ok && v > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("stalled subscriber produced no drop/resync activity: %s", raw)
	}
}
