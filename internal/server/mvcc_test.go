package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hyperprov/internal/engine"
	"hyperprov/internal/parser"
	"hyperprov/internal/provstore"
)

func getBytes(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestAsOfEndpoints drives the ?as_of= time-travel parameter: reads
// against an old epoch must match a fresh engine that never saw the
// later transactions, the final epoch must match the live reads, and
// out-of-range or malformed epochs answer 400.
func TestAsOfEndpoints(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e, WithLogf(t.Logf))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Epoch 0 is the initial load; the two example transactions land in
	// epochs 1 and 2 (one batch each).
	for _, frag := range strings.SplitAfter(figure1Log, "COMMIT;") {
		if strings.TrimSpace(frag) == "" {
			continue
		}
		resp, err := client.Post(ts.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(frag))
		if err != nil {
			t.Fatal(err)
		}
		ing := decode[map[string]int](t, resp)
		if ing["applied"] != ing["transactions"] {
			t.Fatalf("ingest reported %v: applied != transactions", ing)
		}
	}

	stats := decode[map[string]any](t, mustGet(t, client, ts.URL+"/v1/stats"))
	if got := stats["mvccHorizonEpoch"].(float64); got != 2 {
		t.Fatalf("mvccHorizonEpoch = %v, want 2", got)
	}
	if got := stats["engineGeneration"].(float64); got != 1 {
		t.Fatalf("engineGeneration = %v, want 1", got)
	}
	if stats["mvccVersions"].(float64) <= 0 || stats["mvccEpochs"].(float64) < 2 {
		t.Fatalf("implausible mvcc counters: %v", stats)
	}

	// The initial database, as served by a fresh engine that applied
	// nothing, must be exactly what ?as_of=0 answers now.
	fresh := figure1Engine(t, engine.ModeNormalForm)
	freshSrv := New(fresh, WithLogf(t.Logf))
	freshTS := httptest.NewServer(freshSrv.Handler())
	defer freshTS.Close()
	_, want := getBytes(t, freshTS.Client(), freshTS.URL+"/v1/db")
	status, got := getBytes(t, client, ts.URL+"/v1/db?as_of=0")
	if status != http.StatusOK {
		t.Fatalf("db?as_of=0: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("db?as_of=0 differs from the un-updated engine:\ngot:  %s\nwant: %s", got, want)
	}

	// The final epoch is the live state, for /v1/db and the snapshot.
	_, live := getBytes(t, client, ts.URL+"/v1/db")
	if _, at2 := getBytes(t, client, ts.URL+"/v1/db?as_of=2"); !bytes.Equal(at2, live) {
		t.Fatalf("db?as_of=2 differs from live db")
	}
	_, liveSnap := getBytes(t, client, ts.URL+"/v1/snapshot")
	if _, at2 := getBytes(t, client, ts.URL+"/v1/snapshot?as_of=2"); !bytes.Equal(at2, liveSnap) {
		t.Fatalf("snapshot?as_of=2 differs from live snapshot")
	}
	if _, at0 := getBytes(t, client, ts.URL+"/v1/snapshot?as_of=0"); bytes.Equal(at0, liveSnap) {
		t.Fatalf("snapshot?as_of=0 unexpectedly equals the live snapshot")
	}

	// Annotation lookup at epoch 1: the price update of transaction pp
	// has not happened yet, so the pre-update tuple is still found.
	reqBody := annotationRequest{Rel: "Products", Tuple: []any{"Tennis Racket", "Sport", 70}}
	resp := postJSON(t, client, ts.URL+"/v1/annotation?as_of=1", reqBody)
	ann := decode[annotationResponse](t, resp)
	if !ann.Found || !ann.Live {
		t.Fatalf("annotation?as_of=1 for the pre-update tuple: %+v", ann)
	}

	// Out-of-range and malformed epochs.
	for _, q := range []string{"as_of=3", "as_of=xyz", "as_of=-1"} {
		status, body := getBytes(t, client, ts.URL+"/v1/db?"+q)
		if status != http.StatusBadRequest {
			t.Fatalf("db?%s: status %d, want 400 (%s)", q, status, body)
		}
	}

	// What-if endpoints accept as_of too.
	resp = postJSON(t, client, ts.URL+"/v1/whatif/abort?as_of=1", abortRequest{Labels: []string{"p"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif/abort?as_of=1: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func mustGet(t *testing.T, client *http.Client, url string) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSnapshotLoadSwapRace is the satellite regression for the engine
// swap: slow readers racing POST /v1/snapshot must each stream one
// consistent engine — every GET /v1/snapshot response is byte-equal to
// one of the two snapshots being alternated, never a mix — and the
// generation counter ticks once per load. Run under -race this also
// proves the lock-free swap publishes safely.
func TestSnapshotLoadSwapRace(t *testing.T) {
	mkSnap := func(prices string) []byte {
		e := figure1Engine(t, engine.ModeNormalForm)
		txn := fmt.Sprintf("BEGIN q; UPDATE Products SET Price = %s WHERE Category = 'Sport'; COMMIT;", prices)
		if err := ingestLog(e, txn); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := provstore.SaveSnapshot(&buf, e); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	snapA, snapB := mkSnap("11"), mkSnap("22")
	if bytes.Equal(snapA, snapB) {
		t.Fatal("test snapshots are identical")
	}

	srv := New(figure1Engine(t, engine.ModeNormalForm), WithLogf(t.Logf))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Establish a known baseline before racing.
	resp, err := client.Post(ts.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(snapA))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	const loads = 24
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, got := getBytes(t, client, ts.URL+"/v1/snapshot")
				if status != http.StatusOK {
					t.Errorf("snapshot: status %d", status)
					return
				}
				if !bytes.Equal(got, snapA) && !bytes.Equal(got, snapB) {
					t.Errorf("snapshot response matches neither engine (%d bytes)", len(got))
					return
				}
			}
		}()
	}
	for i := 0; i < loads; i++ {
		body := snapA
		if i%2 == 0 {
			body = snapB
		}
		resp, err := client.Post(ts.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot load %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()

	if got, want := srv.EngineGeneration(), uint64(1+1+loads); got != want {
		t.Fatalf("EngineGeneration = %d, want %d (1 initial + %d loads)", got, want, 1+loads)
	}
	stats := decode[map[string]any](t, mustGet(t, client, ts.URL+"/v1/stats"))
	if got := uint64(stats["engineGeneration"].(float64)); got != 2+loads {
		t.Fatalf("stats engineGeneration = %d, want %d", got, 2+loads)
	}
}

// ingestLog applies a SQL log directly to an engine (test helper).
func ingestLog(e engine.DB, src string) error {
	txns, err := parser.ParseSQLLog(e.Schema(), src)
	if err != nil {
		return err
	}
	return e.ApplyAll(context.Background(), txns)
}
