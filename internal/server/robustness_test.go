package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/iofault"
	"hyperprov/internal/wal"
)

// figure1Database rebuilds the Figure 1a Products instance for tests
// that need a database value (the persistent store bootstraps from it).
func figure1Database(t *testing.T) *db.Database {
	t.Helper()
	schema := db.MustSchema(db.MustRelationSchema("Products",
		db.Attribute{Name: "Product", Kind: db.KindString},
		db.Attribute{Name: "Category", Kind: db.KindString},
		db.Attribute{Name: "Price", Kind: db.KindInt},
	))
	d := db.NewDatabase(schema)
	for _, r := range []db.Tuple{
		{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)},
		{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
		{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)},
		{db.S("Children sneakers"), db.S("Fashion"), db.I(40)},
	} {
		if err := d.InsertTuple("Products", r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestRecoverPanicsMiddleware pins the panic contract: an arbitrary
// panic answers the 500 internal envelope and bumps the counter, while
// http.ErrAbortHandler passes through and kills the connection.
func TestRecoverPanicsMiddleware(t *testing.T) {
	s := New(figure1Engine(t, engine.ModeNormalForm), WithLogf(func(string, ...any) {}))

	boom := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(boom)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
	}
	body := decode[errorResponse](t, resp)
	if body.Error.Code != codeInternal {
		t.Fatalf("error code %q, want %q", body.Error.Code, codeInternal)
	}
	if got := s.metrics.m.Get("panics").String(); got != "1" {
		t.Fatalf("panics counter = %s, want 1", got)
	}

	// ErrAbortHandler must re-panic (net/http turns it into a closed
	// connection with no response).
	abort := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	ts2 := httptest.NewServer(abort)
	defer ts2.Close()
	if _, err := ts2.Client().Get(ts2.URL + "/"); err == nil {
		t.Fatal("aborted handler produced a response, want a transport error")
	}
	if got := s.metrics.m.Get("panics").String(); got != "1" {
		t.Fatalf("ErrAbortHandler bumped the panics counter: %s", got)
	}
}

// failAfterWriter fails every Write after the first n bytes, simulating
// a client that disconnects mid-download.
type failAfterWriter struct {
	http.ResponseWriter
	n       int
	written int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.written >= f.n {
		return 0, errors.New("client gone")
	}
	if f.written+len(p) > f.n {
		p = p[:f.n-f.written]
	}
	n, _ := f.ResponseWriter.Write(p)
	f.written += n
	return n, errors.New("client gone")
}

// TestSnapshotSaveAbortsOnWriteError is the regression test for the
// mid-stream failure path: the handler must abort the response via
// http.ErrAbortHandler — never append a JSON error envelope to the 200
// binary body, where it would corrupt the download.
func TestSnapshotSaveAbortsOnWriteError(t *testing.T) {
	s := New(figure1Engine(t, engine.ModeNormalForm), WithLogf(func(string, ...any) {}))
	rec := httptest.NewRecorder()
	w := &failAfterWriter{ResponseWriter: rec, n: 10}
	req := httptest.NewRequest("GET", "/v1/snapshot", nil)

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		s.handleSnapshotSave(w, req)
	}()
	if recovered != http.ErrAbortHandler {
		t.Fatalf("handler recovered %v, want http.ErrAbortHandler", recovered)
	}
	if body := rec.Body.String(); strings.Contains(body, `"error"`) {
		t.Fatalf("JSON error envelope appended to binary body: %q", body)
	}
	if got := s.metrics.m.Get("snapshot_save.aborts").String(); got != "1" {
		t.Fatalf("abort counter = %s, want 1", got)
	}
}

// TestCheckpointNotPersistent: forcing a checkpoint on an in-memory
// engine answers 409 not_persistent.
func TestCheckpointNotPersistent(t *testing.T) {
	srv := New(figure1Engine(t, engine.ModeNormalForm))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint on in-memory engine answered %d, want 409", resp.StatusCode)
	}
	if body := decode[errorResponse](t, resp); body.Error.Code != codeNotPersistent {
		t.Fatalf("error code %q, want %q", body.Error.Code, codeNotPersistent)
	}
}

// TestPersistentServerEndpoints runs the server over a wal.Store:
// readiness reports persistence, ingest is durable across a reopen,
// checkpoint works, stats carry the WAL counters, and snapshot load is
// refused (it would desync the served state from the log).
func TestPersistentServerEndpoints(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(figure1Database(t)),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready := decode[map[string]any](t, resp)
	if ready["ok"] != true || ready["persistent"] != true {
		t.Fatalf("readyz on persistent store: %v", ready)
	}

	resp, err = client.Post(ts.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(figure1Log))
	if err != nil {
		t.Fatal(err)
	}
	if ing := decode[map[string]int](t, resp); ing["transactions"] != 2 {
		t.Fatalf("ingest reported %v", ing)
	}

	resp, err = client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[map[string]any](t, resp)
	walStats, ok := stats["wal"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing wal section: %v", stats)
	}
	if walStats["lsn"].(float64) != 2 {
		t.Fatalf("wal lsn %v after two transactions", walStats["lsn"])
	}

	resp, err = client.Post(ts.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	ck := decode[map[string]any](t, resp)
	if ck["checkpointLSN"].(float64) != 2 {
		t.Fatalf("checkpoint answered %v", ck)
	}

	resp, err = client.Post(ts.URL+"/v1/snapshot", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot load over persistent store answered %d, want 409", resp.StatusCode)
	}
	if body := decode[errorResponse](t, resp); body.Error.Code != codeNotPersistent {
		t.Fatalf("error code %q, want %q", body.Error.Code, codeNotPersistent)
	}

	ts.Close()
	wantRows := st.NumRows()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the ingested transactions survived.
	re, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumRows() != wantRows {
		t.Fatalf("reopened store has %d rows, want %d", re.NumRows(), wantRows)
	}
	if lsn := re.Stats().LSN; lsn != 2 {
		t.Fatalf("reopened store at LSN %d, want 2", lsn)
	}
}

// TestServerReadOnlyDegradation drives the store into read-only via an
// injected fsync failure and checks the HTTP surface: writes answer 503
// read_only, /readyz flips to 503, reads keep serving.
func TestServerReadOnlyDegradation(t *testing.T) {
	dir := t.TempDir()
	fs := iofault.Wrap(wal.OSFS{})
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(figure1Database(t)),
		wal.WithFS(fs),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := New(st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	fs.Inject(iofault.Fault{Op: iofault.OpSync, Match: "wal-", Nth: 1, Mode: iofault.Fail})
	resp, err := client.Post(ts.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(figure1Log))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest on degraded store answered %d, want 503", resp.StatusCode)
	}
	if body := decode[errorResponse](t, resp); body.Error.Code != codeReadOnly {
		t.Fatalf("error code %q, want %q", body.Error.Code, codeReadOnly)
	}

	resp, err = client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz on degraded store answered %d, want 503", resp.StatusCode)
	}
	if body := decode[errorResponse](t, resp); body.Error.Code != codeReadOnly {
		t.Fatalf("readyz error code %q, want %q", body.Error.Code, codeReadOnly)
	}

	resp, err = client.Post(ts.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint on degraded store answered %d, want 503", resp.StatusCode)
	}

	// Reads still serve.
	resp, err = client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[map[string]any](t, resp)
	if stats["rows"].(float64) != 4 {
		t.Fatalf("reads broken after degradation: %v", stats["rows"])
	}
	walStats := stats["wal"].(map[string]any)
	if walStats["read_only"] != true {
		t.Fatalf("stats do not report read-only: %v", walStats)
	}
}

// TestSnapshotLoadHonorsContext: the load reader observes request
// cancellation between reads.
func TestSnapshotLoadHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := ctxReader{ctx: ctx, r: strings.NewReader("data")}
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("read under canceled context: err = %v, want context.Canceled", err)
	}
}
