package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/parser"
	"hyperprov/internal/workload"
)

// TestServeWhileIngesting hammers every read endpoint while the
// synthetic transaction log streams in through /v1/ingest in chunks —
// the serving-layer contract of this package, checked under -race.
// Afterwards the served deletion-propagation result must equal
// engine.DeletionPropagation run directly on a serially ingested
// reference engine.
func TestServeWhileIngesting(t *testing.T) {
	cfg := workload.Default(0.002)
	cfg.QueriesPerTxn = 4
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	annots := workload.InitialAnnotations()
	withNames := engine.WithInitialAnnotations(func(rel string, tp db.Tuple) core.Annot {
		return core.TupleAnnot(annots(rel, tp))
	})
	e := engine.New(engine.ModeNormalForm, initial, withNames)
	srv := New(e)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// The log as SQL, split into per-transaction ingest requests.
	chunks := make([]string, 0, len(txns))
	for i := range txns {
		src, err := parser.FormatSQLLog(initial.Schema(), txns[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, src)
	}

	probe := initial.Instance("R").Tuples()[0]
	probeReq, err := json.Marshal(annotationRequest{Rel: "R", Tuple: tupleJSON(probe)})
	if err != nil {
		t.Fatal(err)
	}
	abortReq, err := json.Marshal(abortRequest{Labels: []string{txns[0].Label}})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	reader := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					f()
				}
			}
		}()
	}
	get := func(path string) *http.Response {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return nil
		}
		return resp
	}
	drain := func(resp *http.Response) {
		if resp == nil {
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	reader(func() { drain(get("/v1/db")) })
	reader(func() { drain(get("/v1/stats")) })
	reader(func() { drain(get("/v1/snapshot")) })
	reader(func() {
		resp, err := client.Post(ts.URL+"/v1/annotation", "application/json", strings.NewReader(string(probeReq)))
		if err != nil {
			t.Error(err)
			return
		}
		ar := decode[annotationResponse](t, resp)
		if !ar.Found {
			t.Error("probe tuple vanished mid-ingestion")
		}
	})
	reader(func() {
		resp, err := client.Post(ts.URL+"/v1/whatif/abort", "application/json", strings.NewReader(string(abortReq)))
		if err != nil {
			t.Error(err)
			return
		}
		drain(resp)
	})

	for _, chunk := range chunks {
		resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(chunk))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("ingest failed: %d %s", resp.StatusCode, body)
		}
		drain(resp)
	}
	close(done)
	wg.Wait()

	// Reference: the same log ingested serially, no server involved.
	refInitial, refTxns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := engine.New(engine.ModeNormalForm, refInitial, withNames)
	if err := ref.ApplyAll(context.Background(), refTxns); err != nil {
		t.Fatal(err)
	}

	// Served deletion propagation == direct engine.DeletionPropagation.
	deadName := workload.PoolAnnotName(0)
	delReq, err := json.Marshal(deletionRequest{Tuples: []string{deadName}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/v1/whatif/deletion", "application/json", strings.NewReader(string(delReq)))
	if err != nil {
		t.Fatal(err)
	}
	got := decode[any](t, resp)
	direct := engine.DeletionPropagation(ref, core.TupleAnnot(deadName))
	if want := normalize(t, dbJSON(direct)); !reflect.DeepEqual(got, want) {
		t.Fatal("served deletion propagation differs from engine.DeletionPropagation on the serial reference")
	}
}
