package server

import (
	"math"
	rtmetrics "runtime/metrics"

	"hyperprov/internal/engine"
)

// Runtime memory observability for the allocation-free hot path: the
// engine's claim is that steady-state reads allocate nothing, and the
// way to watch that claim in production is GC behavior — live heap,
// pause distribution, cycle count. These gauges come from
// runtime/metrics (the GC-internal accounting, cheap to sample) and
// are served both in /v1/stats (memory section) and the expvar map.

// memMetricNames are the runtime/metrics samples the memory section
// reads. Read defensively: a name missing in some future runtime
// yields KindBad and its fields are simply omitted.
var memMetricNames = []string{
	"/gc/heap/live:bytes",
	"/gc/pauses:seconds",
	"/gc/cycles/total:gc-cycles",
	"/sched/goroutines:goroutines",
}

// MemoryStats is the sampled runtime memory block. Pause percentiles
// are in microseconds, computed over the runtime's whole-process pause
// histogram (cumulative since start).
type MemoryStats struct {
	HeapLiveBytes uint64  `json:"heapLiveBytes"`
	GCCycles      uint64  `json:"gcCycles"`
	Goroutines    uint64  `json:"goroutines"`
	GCPauseP50us  float64 `json:"gcPauseP50us"`
	GCPauseP90us  float64 `json:"gcPauseP90us"`
	GCPauseP99us  float64 `json:"gcPauseP99us"`
}

// ReadMemoryStats samples the runtime. Exported for the serve command
// and benchmarks; allocation cost is a handful of samples per call,
// nowhere near any hot path.
func ReadMemoryStats() MemoryStats {
	samples := make([]rtmetrics.Sample, len(memMetricNames))
	for i, name := range memMetricNames {
		samples[i].Name = name
	}
	rtmetrics.Read(samples)
	var ms MemoryStats
	for _, s := range samples {
		switch s.Name {
		case "/gc/heap/live:bytes":
			if s.Value.Kind() == rtmetrics.KindUint64 {
				ms.HeapLiveBytes = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == rtmetrics.KindUint64 {
				ms.GCCycles = s.Value.Uint64()
			}
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == rtmetrics.KindUint64 {
				ms.Goroutines = s.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == rtmetrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				ms.GCPauseP50us = histPercentile(h, 0.50) * 1e6
				ms.GCPauseP90us = histPercentile(h, 0.90) * 1e6
				ms.GCPauseP99us = histPercentile(h, 0.99) * 1e6
			}
		}
	}
	return ms
}

// histPercentile reads the q-quantile out of a runtime histogram,
// reporting the upper bound of the bucket where the cumulative count
// crosses q (0 for an empty histogram; the last finite bound when the
// crossing lands in the +Inf overflow bucket).
func histPercentile(h *rtmetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= need {
			// Bucket i spans (Buckets[i], Buckets[i+1]].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// collectMemoryStats contributes the memory section of /v1/stats.
func collectMemoryStats(s *Server, e engine.DB, out map[string]any) {
	ms := ReadMemoryStats()
	out["heapLiveBytes"] = ms.HeapLiveBytes
	out["gcCycles"] = ms.GCCycles
	out["goroutines"] = ms.Goroutines
	out["gcPauseP50us"] = ms.GCPauseP50us
	out["gcPauseP90us"] = ms.GCPauseP90us
	out["gcPauseP99us"] = ms.GCPauseP99us
}
