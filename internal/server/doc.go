// Package server exposes a provenance engine over HTTP/JSON: the
// provenance-usage operations of Section 4 of the paper (tuple
// annotation and explanation, the live database, deletion-propagation
// and transaction-abortion what-ifs), snapshot save/load, and ingestion
// of SQL or datalog transaction logs.
//
// Concurrency model: read endpoints pin the engine's committed MVCC
// horizon at entry and run lock-free against its version chains, so
// they never block behind (or stall) /v1/ingest — readers observe the
// database at batch-commit granularity, never mid-transaction, and a
// long read streams one consistent epoch snapshot end to end. (An
// earlier revision serialized reads against writes with the engine's
// RWMutex; that description is superseded — there is no longer a
// reader-visible engine lock.) The endpoints that time-travel accept
// ?as_of=N to run against the database as of epoch N. The server holds
// no lock of its own either: the engine reference is an atomic pointer
// captured once per request, so loading a snapshot over POST
// /v1/snapshot swaps the served engine while in-flight requests keep
// streaming from the one they started with.
//
// Every endpoint is instrumented with expvar-compatible counters
// (<endpoint>.requests, <endpoint>.errors, <endpoint>.latency_us),
// served at GET /v1/metrics and publishable into the process-global
// expvar namespace (see Server.PublishExpvar) for /debug/vars.
package server
