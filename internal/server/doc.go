// Package server exposes a provenance engine over HTTP/JSON: the
// provenance-usage operations of Section 4 of the paper (tuple
// annotation and explanation, the live database, deletion-propagation
// and transaction-abortion what-ifs), snapshot save/load, and ingestion
// of SQL or datalog transaction logs.
//
// Concurrency model: the engine's RWMutex makes every read endpoint
// safe while /v1/ingest applies transactions — readers observe the
// database at transaction granularity, never mid-transaction. The
// server adds one more lock of its own, guarding the engine *pointer*
// only: loading a snapshot over POST /v1/snapshot atomically swaps in
// the restored engine, and in-flight requests keep using the engine
// they started with.
//
// Every endpoint is instrumented with expvar-compatible counters
// (<endpoint>.requests, <endpoint>.errors, <endpoint>.latency_us),
// served at GET /v1/metrics and publishable into the process-global
// expvar namespace (see Server.PublishExpvar) for /debug/vars.
package server
