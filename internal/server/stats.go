package server

import (
	"net/http"

	"hyperprov/internal/core"
	"hyperprov/internal/engine"
	"hyperprov/internal/wal"
)

// statsSection contributes one named group of /v1/stats fields. The
// response stays one flat JSON object (plus the nested wal /
// replication / subscriptions blocks), so the registry exists for
// composition, not response shape: each concern owns its collector,
// and a new subsystem adds a section instead of growing a monolith.
// Field names are part of the stable API — documented in DESIGN.md and
// depended on by clients and tests; never rename, only add.
type statsSection struct {
	name    string
	collect func(s *Server, e engine.DB, out map[string]any)
}

// statsSections is the registry, in collection order. Later sections
// may not overwrite earlier fields (names are disjoint by
// construction).
var statsSections = []statsSection{
	{"engine", collectEngineStats},
	{"intern", collectInternStats},
	{"mvcc", collectMVCCStats},
	{"planner", collectPlannerStats},
	{"wal", collectWALStats},
	{"replication", collectReplicationStats},
	{"sharding", collectShardingStats},
	{"subscriptions", collectSubscriptionStats},
	{"admission", collectAdmissionStats},
	{"memory", collectMemoryStats},
}

// collectEngineStats reports the size measures: provSize is the
// paper's per-occurrence tree count (Fig. 7b/8b), provDagSize the
// number of distinct hash-consed nodes backing this engine's
// annotations (the memory actually held). engineGeneration counts
// snapshot-load swaps (see Server.EngineGeneration).
func collectEngineStats(s *Server, e engine.DB, out map[string]any) {
	out["mode"] = e.Mode().String()
	out["rows"] = e.NumRows()
	out["support"] = e.SupportSize()
	out["provSize"] = e.ProvSize()
	out["provDagSize"] = e.ProvDAGSize()
	out["engineGeneration"] = s.EngineGeneration()
}

// collectInternStats reports the process-global intern table counters.
func collectInternStats(s *Server, e engine.DB, out map[string]any) {
	ist := core.InternStats()
	out["internNodes"] = ist.Nodes
	out["internHits"] = ist.Hits
	out["internMisses"] = ist.Misses
}

// collectMVCCStats reports the committed read horizon (what a reader
// entering now would pin) and version-storage volume.
func collectMVCCStats(s *Server, e engine.DB, out map[string]any) {
	ms := e.MVCCStats()
	out["mvccHorizonEpoch"] = ms.HorizonEpoch
	out["mvccHorizonSeq"] = ms.HorizonSeq
	out["mvccEpochs"] = ms.Epochs
	out["mvccVersions"] = ms.Versions
}

// collectPlannerStats reports scan-resolution counters and the live
// index count.
func collectPlannerStats(s *Server, e engine.DB, out map[string]any) {
	ps := e.PlannerStats()
	out["plannerFullScans"] = ps.FullScans
	out["plannerIndexScans"] = ps.IndexScans
	out["plannerIntersectScans"] = ps.IntersectScans
	out["plannerAutoBuilds"] = ps.AutoBuilds
	out["plannerCompactions"] = ps.Compactions
	out["indexes"] = len(e.IndexStats())
}

// collectWALStats reports the durability counters of a persistent
// store or a follower's local WAL; absent on in-memory engines.
func collectWALStats(s *Server, e engine.DB, out map[string]any) {
	switch st := e.(type) {
	case *wal.Store:
		out["wal"] = st.Stats()
	case *wal.Follower:
		out["wal"] = st.WALStats()
	}
}

// collectReplicationStats reports a follower's lag block; absent on
// leaders and in-memory engines (tests depend on the key being
// missing, not null-valued, there).
func collectReplicationStats(s *Server, e engine.DB, out map[string]any) {
	if fl, ok := e.(*wal.Follower); ok {
		out["replication"] = fl.ReplicaStats()
	}
}

// collectShardingStats looks through persistent wrappers for the
// hash-sharded engine's routing gauges; absent on single engines.
func collectShardingStats(s *Server, e engine.DB, out map[string]any) {
	inner := e
	if ws, ok := e.(*wal.Store); ok {
		inner = ws.Underlying()
	}
	if fl, ok := e.(*wal.Follower); ok {
		inner = fl.Underlying()
	}
	if se, ok := inner.(*engine.ShardedEngine); ok {
		st := se.Stats()
		out["shards"] = st.Shards
		out["shardRouted"] = st.Routed
		out["shardRendezvous"] = st.Rendezvous
		out["shardFanout"] = st.FanOut
		out["rowsPerShard"] = st.RowsPerShard
	}
}

// collectSubscriptionStats reports the live-subscription manager's
// fanout and lag counters (see subscribe.Stats for field docs).
func collectSubscriptionStats(s *Server, e engine.DB, out map[string]any) {
	out["subscriptions"] = s.subs.StatsSnapshot()
}

// collectAdmissionStats reports the load-shedding controller's
// per-class counters plus the folded health state (the same three
// states /readyz answers with: ok, degraded, overloaded).
func collectAdmissionStats(s *Server, e engine.DB, out map[string]any) {
	out["admission"] = s.adm.StatsSnapshot()
	out["health"] = s.health(e).String()
}

// handleStats serves /v1/stats by running every registered section
// against the engine captured once at entry.
func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	e := s.Engine()
	stats := make(map[string]any, 32)
	for _, sec := range statsSections {
		sec.collect(s, e, stats)
	}
	writeJSON(w, http.StatusOK, stats)
}
