package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"hyperprov/internal/admission"
	"hyperprov/internal/engine"
	"hyperprov/internal/wal"
)

// WithAdmission bounds per-class request concurrency (see
// admission.Config). The default is admission.Unlimited() — pure
// accounting, no behavioral change — so load shedding is strictly
// opt-in; the serve command opts in via flags.
func WithAdmission(cfg admission.Config) Option {
	return func(s *Server) { s.adm = admission.NewController(cfg) }
}

// WithMaxBodyBytes caps request bodies (ingest logs, snapshot uploads,
// subscription specs alike). The default is 64 MiB; tests shrink it to
// exercise the 413 path.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// Admission exposes the controller, for the serve command's shutdown
// reporting and for tests asserting shed counters.
func (s *Server) Admission() *admission.Controller { return s.adm }

// admit wraps a handler with class-based admission: the request holds
// one in-flight slot in class for its whole lifetime (for streams,
// the connection's lifetime), and a shed answers the typed envelope
// with a Retry-After hint instead of running the handler. Health
// endpoints are mounted without this wrapper — they are never shed.
func (s *Server) admit(class admission.Class, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		release, err := s.adm.Admit(req.Context(), class)
		if err != nil {
			s.metrics.m.Add("admission.shed", 1)
			writeShed(w, err)
			return
		}
		defer release()
		h(w, req)
	}
}

// writeShed renders an admission failure: 429 queue_full when the
// class's wait queue was full, 503 otherwise (overload shedding or a
// deadline that could not be met), always with a Retry-After header.
func writeShed(w http.ResponseWriter, err error) {
	var shed *admission.ShedError
	if !errors.As(err, &shed) {
		writeError(w, http.StatusInternalServerError, codeInternal, "%v", err)
		return
	}
	w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
	switch shed.Reason {
	case admission.ReasonQueueFull:
		writeError(w, http.StatusTooManyRequests, codeQueueFull,
			"%s request shed: the class is at its concurrency limit and its queue is full", shed.Class)
	case admission.ReasonOverload:
		writeError(w, http.StatusServiceUnavailable, codeOverloaded,
			"%s request shed: server is overloaded", shed.Class)
	default:
		writeError(w, http.StatusServiceUnavailable, codeShedDeadline,
			"%s request shed: could not be admitted within its deadline", shed.Class)
	}
}

// retryAfterSeconds renders a Retry-After hint in whole seconds,
// rounding up with a 1s floor (Retry-After: 0 reads as "retry now").
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// health folds the external degradation signals into the admission
// controller's own state: a read-only persistent store or a follower
// that is still syncing marks the node degraded even when admission
// itself is keeping up. Overload always dominates.
func (s *Server) health(e engine.DB) admission.State {
	st := s.adm.State()
	if st == admission.StateOverloaded {
		return st
	}
	switch x := e.(type) {
	case *wal.Store:
		if x.ReadOnly() {
			return admission.StateDegraded
		}
	case *wal.Follower:
		if !x.ReplicaStats().Ready {
			return admission.StateDegraded
		}
	}
	return st
}
