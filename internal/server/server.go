package server

import (
	"context"
	"expvar"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperprov/internal/admission"
	"hyperprov/internal/engine"
	"hyperprov/internal/subscribe"
	"hyperprov/internal/wal"
)

// maxBodyBytes caps request bodies (JSON, logs and snapshots alike).
const maxBodyBytes = 64 << 20

// DefaultTimeout bounds each request end to end unless WithTimeout
// overrides it.
const DefaultTimeout = 30 * time.Second

// engineRef pairs the served engine with its swap generation. Handlers
// load the ref once at entry, so a concurrent snapshot load never
// splits one request across two engines — and because the ref is an
// atomic pointer, a slow reader pinned on the old engine's MVCC
// horizon keeps streaming from it without blocking the swap (or being
// blocked by it).
type engineRef struct {
	db  engine.DB
	gen uint64
}

// Server serves one provenance engine over HTTP — either implementation
// of engine.DB (the single-lock Engine or the hash-sharded
// ShardedEngine) behind the same handlers. The zero value is not
// usable; construct with New.
type Server struct {
	eng atomic.Pointer[engineRef] // swapped whole by snapshot load

	metrics *metrics
	timeout time.Duration
	handler http.Handler
	logf    func(format string, args ...any)

	// adm admits requests class by class (reads / expensive reads /
	// writes / streams) and sheds with typed 429/503 envelopes when a
	// class saturates. Defaults to unlimited; see WithAdmission.
	adm *admission.Controller
	// maxBody caps request bodies; see WithMaxBodyBytes.
	maxBody int64

	// subs maintains the live provenance subscriptions served at
	// /v1/subscribe, fed by the engine's commit-event bus. Snapshot
	// loads rebind it to the new engine (see setEngine).
	subs *subscribe.Manager

	// drainCtx is canceled by DrainStreams to end the long-lived
	// replication and subscription stream responses, which would
	// otherwise hold http.Server.Shutdown for the whole grace period.
	drainCtx    context.Context
	drainCancel context.CancelFunc
	closeOnce   sync.Once
}

// Option configures a Server.
type Option func(*Server)

// WithTimeout bounds each request end to end (0 disables the limit).
func WithTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithLogf sets the diagnostic logger (used for recovered panics).
// The default is log.Printf; tests pass t.Logf or a no-op.
func WithLogf(f func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = f }
}

// New builds a server around the engine.
func New(eng engine.DB, opts ...Option) *Server {
	s := &Server{
		metrics: newMetrics(),
		timeout: DefaultTimeout,
		logf:    log.Printf,
		adm:     admission.NewController(admission.Unlimited()),
		maxBody: maxBodyBytes,
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.eng.Store(&engineRef{db: eng, gen: 1})
	s.subs = subscribe.NewManager(eng)
	for _, o := range opts {
		o(s)
	}
	// Planner and index gauges live next to the endpoint counters in the
	// same expvar map (served at /v1/metrics and, once published,
	// /debug/vars). Func closures read through s.Engine() so a snapshot
	// load swapping the engine swaps the gauges too.
	s.metrics.m.Set("planner", expvar.Func(func() any { return s.Engine().PlannerStats() }))
	s.metrics.m.Set("indexes", expvar.Func(func() any { return s.Engine().IndexStats() }))
	s.metrics.m.Set("wal", expvar.Func(func() any {
		switch e := s.Engine().(type) {
		case *wal.Store:
			return e.Stats()
		case *wal.Follower:
			return e.WALStats()
		}
		return nil
	}))
	s.metrics.m.Set("replication", expvar.Func(func() any {
		if f, ok := s.Engine().(*wal.Follower); ok {
			return f.ReplicaStats()
		}
		return nil
	}))
	s.metrics.m.Set("memory", expvar.Func(func() any { return ReadMemoryStats() }))
	s.metrics.m.Set("admission", expvar.Func(func() any { return s.adm.StatsSnapshot() }))
	// methodsByPath records every registered route so the fallback can
	// distinguish a wrong method on a known path (405 + Allow) from an
	// unknown path (404), both through the typed error envelope.
	methodsByPath := map[string][]string{}
	register := func(pattern string) {
		if method, path, ok := strings.Cut(pattern, " "); ok {
			methodsByPath[path] = append(methodsByPath[path], method)
		}
	}
	mux := http.NewServeMux()
	route := func(name, pattern string, h http.HandlerFunc) {
		register(pattern)
		mux.Handle(pattern, s.metrics.instrument(name, h))
	}
	// Route classification for admission: health and observability
	// endpoints mount bare (never shed — a load balancer probing an
	// overloaded node must still get an answer); cheap point reads,
	// materializing reads, and writes each draw from their own class so
	// saturation in one cannot starve another, and under overload the
	// expensive reads shed first.
	route("healthz", "GET /healthz", s.handleHealthz)
	route("readyz", "GET /readyz", s.handleReadyz)
	route("stats", "GET /v1/stats", s.handleStats)
	route("schema", "GET /v1/schema", s.admit(admission.ClassRead, s.handleSchema))
	route("annotation", "POST /v1/annotation", s.admit(admission.ClassRead, s.handleAnnotation))
	route("indexes_list", "GET /v1/indexes", s.admit(admission.ClassRead, s.handleIndexList))
	route("db", "GET /v1/db", s.admit(admission.ClassExpensive, s.handleDB))
	route("whatif_deletion", "POST /v1/whatif/deletion", s.admit(admission.ClassExpensive, s.handleDeletion))
	route("whatif_abort", "POST /v1/whatif/abort", s.admit(admission.ClassExpensive, s.handleAbort))
	route("snapshot_save", "GET /v1/snapshot", s.admit(admission.ClassExpensive, s.handleSnapshotSave))
	route("ingest", "POST /v1/ingest", s.admit(admission.ClassWrite, s.handleIngest))
	route("indexes_build", "POST /v1/indexes", s.admit(admission.ClassWrite, s.handleIndexBuild))
	route("indexes_drop", "DELETE /v1/indexes", s.admit(admission.ClassWrite, s.handleIndexDrop))
	route("snapshot_load", "POST /v1/snapshot", s.admit(admission.ClassWrite, s.handleSnapshotLoad))
	route("checkpoint", "POST /v1/checkpoint", s.admit(admission.ClassWrite, s.handleCheckpoint))
	register("GET /v1/metrics")
	mux.HandleFunc("GET /v1/metrics", s.metrics.serveHTTP)
	register("GET /debug/vars")
	mux.Handle("GET /debug/vars", expvar.Handler())
	// Panic recovery sits inside the timeout handler so a panicking
	// endpoint answers a typed 500 rather than an empty reply; the
	// timeout handler still bounds the whole thing.
	inner := s.recoverPanics(mux)
	if s.timeout > 0 {
		inner = http.TimeoutHandler(inner, s.timeout, timeoutBody)
	}
	// The replication and subscription streams are long-lived flushed
	// responses, so they mount outside the timeout handler (which
	// buffers bodies and would both break flushing and kill the stream
	// at the deadline). They get their own panic recovery and a plain
	// request counter; the statusRecorder wrapper is skipped because it
	// hides http.Flusher.
	// Streams admit under ClassStream and hold their slot for the
	// connection's lifetime — past the cap a reconnect storm sheds
	// immediately (no queue) instead of piling up handshakes.
	root := http.NewServeMux()
	register("GET /v1/replication/stream")
	root.Handle("GET /v1/replication/stream", s.recoverPanics(s.admit(admission.ClassStream, func(w http.ResponseWriter, req *http.Request) {
		s.metrics.m.Add("replication_stream.requests", 1)
		s.handleReplicationStream(w, req)
	})))
	subscribeHandler := s.recoverPanics(s.admit(admission.ClassStream, func(w http.ResponseWriter, req *http.Request) {
		s.metrics.m.Add("subscribe.requests", 1)
		s.handleSubscribe(w, req)
	}))
	register("GET /v1/subscribe")
	root.Handle("GET /v1/subscribe", subscribeHandler)
	register("POST /v1/subscribe")
	root.Handle("POST /v1/subscribe", subscribeHandler)
	// The fallback settles routing for everything the stream routes did
	// not claim: requests matching an inner-mux pattern go through the
	// timeout/panic chain; the rest answer a typed envelope — 405 with
	// an Allow header when the path exists under other methods, 404
	// otherwise (Go's mux would answer both as bare text).
	root.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if _, pattern := mux.Handler(req); pattern != "" {
			inner.ServeHTTP(w, req)
			return
		}
		if allow, known := methodsByPath[req.URL.Path]; known {
			w.Header().Set("Allow", strings.Join(allow, ", "))
			writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "method %s is not allowed for %s", req.Method, req.URL.Path)
			return
		}
		writeError(w, http.StatusNotFound, codeUnknownRoute, "unknown route %s", req.URL.Path)
	}))
	s.handler = root
	return s
}

// Handler returns the root handler (routes wrapped with metrics and the
// request timeout).
func (s *Server) Handler() http.Handler { return s.handler }

// DrainStreams ends every replication stream this server is feeding
// (and cuts short any that arrive afterwards), sending followers back
// to redialing. Call it before
// http.Server.Shutdown: stream responses are infinite, so a graceful
// shutdown would otherwise block on them until the grace period
// expires. Followers treat the drop exactly like a leader restart and
// reconnect on their own once the leader is back.
func (s *Server) DrainStreams() { s.drainCancel() }

// Close releases the server's background resources: it drains the
// stream responses and shuts down the subscription manager (stopping
// its dispatcher and uninstalling the engine's commit hook). The
// HTTP handler keeps answering plain requests afterwards; call this
// during process shutdown, after (or instead of) DrainStreams.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.drainCancel()
		s.subs.Close()
	})
}

// Subscriptions exposes the live-subscription manager, for process
// embedders that want programmatic subscriptions next to the HTTP
// surface.
func (s *Server) Subscriptions() *subscribe.Manager { return s.subs }

// Engine returns the currently served engine. Lock-free: callers that
// need a consistent engine across several calls must capture the
// result once (handlers do, at entry) rather than call Engine
// repeatedly.
func (s *Server) Engine() engine.DB { return s.eng.Load().db }

// EngineGeneration reports how many engines this server has served: 1
// for the engine it was constructed with, +1 per snapshot load. Reads
// that captured an earlier generation keep answering from it.
func (s *Server) EngineGeneration() uint64 { return s.eng.Load().gen }

func (s *Server) setEngine(e engine.DB) {
	for {
		old := s.eng.Load()
		if s.eng.CompareAndSwap(old, &engineRef{db: e, gen: old.gen + 1}) {
			// Move the subscription manager with the served engine: live
			// subscriptions rebuild against the new state and their
			// clients resync, instead of going silent on the old engine.
			s.subs.Rebind(e)
			return
		}
	}
}

// ExpvarMap returns the per-endpoint counter map, for publishing under
// a process-global expvar name.
func (s *Server) ExpvarMap() *expvar.Map { return s.metrics.m }

// PublishExpvar publishes the counters into the process-global expvar
// namespace (served at GET /debug/vars) under the given name. Publish
// panics on duplicate names, so call this at most once per process —
// the serve command does; tests do not.
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, s.metrics.m)
}
