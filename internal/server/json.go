package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/wal"
)

// writeJSON renders v with a status code; encoding errors past the
// header are unrecoverable and ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// Machine-readable error codes of the JSON error envelope. Every error
// response has the shape {"error":{"code":"...","message":"..."}}; the
// code is stable for clients to branch on, the message is for humans.
const (
	codeBadRequest       = "bad_request"
	codeUnknownRelation  = "unknown_relation"
	codeUnknownAttribute = "unknown_attribute"
	codeUnknownIndex     = "unknown_index"
	codeBadTuple         = "bad_tuple"
	codeApplyFailed      = "apply_failed"
	codeCanceled         = "canceled"
	codeInternal         = "internal"
	codeTimeout          = "timeout"
	codeReadOnly         = "read_only"
	codeNotPersistent    = "not_persistent"
	codeFollower         = "follower"
	codeSyncing          = "syncing"
	codeReplicaLagging   = "replica_lagging"
	codeMethodNotAllowed = "method_not_allowed"
	codeUnknownRoute     = "unknown_route"
	codeBodyTooLarge     = "body_too_large"
	codeQueueFull        = "queue_full"
	codeOverloaded       = "overloaded"
	codeShedDeadline     = "shed_deadline"
)

// timeoutBody is the body http.TimeoutHandler serves on deadline; it
// must stay in sync with the envelope shape (it is written verbatim,
// not through writeError).
const timeoutBody = `{"error":{"code":"` + codeTimeout + `","message":"request timed out"}}`

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Applied, present only on partial batch failures, counts the
	// transactions durably applied before the error: txns[:applied]
	// must not be resubmitted, txns[applied:] may be.
	Applied *int `json:"applied,omitempty"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: errorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// engineErrorStatus maps the engine's sentinel errors onto HTTP
// statuses and envelope codes: unknown relation / attribute / index →
// 404, malformed tuple → 400, a degraded persistent store → 503,
// cancellation → 503, anything else from applying a log → 422.
func engineErrorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, wal.ErrFollower):
		return http.StatusForbidden, codeFollower
	case errors.Is(err, wal.ErrReadOnly):
		return http.StatusServiceUnavailable, codeReadOnly
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, codeCanceled
	case errors.Is(err, engine.ErrUnknownRelation):
		return http.StatusNotFound, codeUnknownRelation
	case errors.Is(err, engine.ErrUnknownAttribute):
		return http.StatusNotFound, codeUnknownAttribute
	case errors.Is(err, engine.ErrUnknownIndex):
		return http.StatusNotFound, codeUnknownIndex
	case errors.Is(err, engine.ErrBadTuple):
		return http.StatusBadRequest, codeBadTuple
	default:
		return http.StatusUnprocessableEntity, codeApplyFailed
	}
}

func writeEngineError(w http.ResponseWriter, err error) {
	status, code := engineErrorStatus(err)
	writeError(w, status, code, "%v", err)
}

// writeEngineErrorApplied is writeEngineError for partial batch
// failures: the envelope carries the durably-applied prefix length so
// the client knows where to resume.
func writeEngineErrorApplied(w http.ResponseWriter, err error, applied int) {
	status, code := engineErrorStatus(err)
	writeJSON(w, status, errorResponse{Error: errorBody{
		Code:    code,
		Message: fmt.Sprintf("%v", err),
		Applied: &applied,
	}})
}

// valueJSON renders a db.Value as its natural JSON type.
func valueJSON(v db.Value) any {
	switch v.Kind() {
	case db.KindString:
		return v.Str()
	case db.KindInt:
		return v.Int()
	case db.KindFloat:
		return v.Float()
	default:
		return v.String()
	}
}

func tupleJSON(t db.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		out[i] = valueJSON(v)
	}
	return out
}

// parseTuple converts a JSON value array into a typed tuple conforming
// to the relation schema: strings for string attributes, numbers for
// int (must be integral) and float attributes. Numeric strings are also
// accepted for convenience in curl sessions.
func parseTuple(rel *db.RelationSchema, raw []any) (db.Tuple, error) {
	if len(raw) != len(rel.Attrs) {
		return nil, fmt.Errorf("tuple has %d values, relation %s needs %d", len(raw), rel.Name, len(rel.Attrs))
	}
	t := make(db.Tuple, len(raw))
	for i, rv := range raw {
		a := rel.Attrs[i]
		switch a.Kind {
		case db.KindString:
			s, ok := rv.(string)
			if !ok {
				return nil, fmt.Errorf("attribute %s wants a string, got %T", a.Name, rv)
			}
			t[i] = db.S(s)
		case db.KindInt:
			switch n := rv.(type) {
			case float64:
				if n != math.Trunc(n) {
					return nil, fmt.Errorf("attribute %s wants an integer, got %v", a.Name, n)
				}
				t[i] = db.I(int64(n))
			case string:
				v, err := db.ParseValue(db.KindInt, n)
				if err != nil {
					return nil, fmt.Errorf("attribute %s: %v", a.Name, err)
				}
				t[i] = v
			default:
				return nil, fmt.Errorf("attribute %s wants an integer, got %T", a.Name, rv)
			}
		case db.KindFloat:
			switch n := rv.(type) {
			case float64:
				t[i] = db.F(n)
			case string:
				v, err := db.ParseValue(db.KindFloat, n)
				if err != nil {
					return nil, fmt.Errorf("attribute %s: %v", a.Name, err)
				}
				t[i] = v
			default:
				return nil, fmt.Errorf("attribute %s wants a float, got %T", a.Name, rv)
			}
		default:
			return nil, fmt.Errorf("attribute %s has unknown kind %v", a.Name, a.Kind)
		}
	}
	return t, nil
}

// relationJSON is one relation of a rendered database.
type relationJSON struct {
	Attrs  []string `json:"attrs"`
	Tuples [][]any  `json:"tuples"`
}

type databaseJSON struct {
	Relations map[string]relationJSON `json:"relations"`
	NumTuples int                     `json:"numTuples"`
}

// dbJSON renders a materialized database. Tuple order within a relation
// is the engine's deterministic streaming order.
func dbJSON(d *db.Database) databaseJSON {
	out := databaseJSON{Relations: make(map[string]relationJSON), NumTuples: d.NumTuples()}
	for _, name := range d.Schema().Names() {
		rel := d.Schema().Relation(name)
		attrs := make([]string, len(rel.Attrs))
		for i, a := range rel.Attrs {
			attrs[i] = a.Name
		}
		rj := relationJSON{Attrs: attrs, Tuples: [][]any{}}
		d.Instance(name).Each(func(t db.Tuple) {
			rj.Tuples = append(rj.Tuples, tupleJSON(t))
		})
		out.Relations[name] = rj
	}
	return out
}

// readBody decodes a JSON request body into dst with the server's size
// cap. An oversized body surfaces as *http.MaxBytesError in the chain,
// which writeBodyError maps to 413 body_too_large.
func (s *Server) readBody(w http.ResponseWriter, req *http.Request, dst any) error {
	req.Body = http.MaxBytesReader(w, req.Body, s.maxBody)
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// writeBodyError renders a body read/decode failure: a typed 413 when
// the size cap was the cause, 400 bad_request otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
			"request body exceeds the %d-byte limit", mbe.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
}
