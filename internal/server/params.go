package server

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
)

// Query-parameter parsing shared by every handler. All handlers go
// through these two helpers so a malformed value always produces the
// same 400 bad_request envelope with the message shape
// "<name> parameter %q is not <what>" — no endpoint hand-rolls its own
// strconv call or error wording.

// uintQuery parses the optional unsigned query parameter name. ok
// reports whether the parameter was present; err is a caller-facing
// message naming the parameter and the expected shape (what, e.g. "an
// epoch number").
func uintQuery(req *http.Request, name, what string) (val uint64, ok bool, err error) {
	v := req.URL.Query().Get(name)
	if v == "" {
		return 0, false, nil
	}
	n, perr := strconv.ParseUint(v, 10, 64)
	if perr != nil {
		return 0, true, fmt.Errorf("%s parameter %q is not %s", name, v, what)
	}
	return n, true, nil
}

// intQuery is uintQuery for signed integer parameters.
func intQuery(req *http.Request, name, what string) (val int, ok bool, err error) {
	v := req.URL.Query().Get(name)
	if v == "" {
		return 0, false, nil
	}
	n, perr := strconv.Atoi(v)
	if perr != nil {
		return 0, true, fmt.Errorf("%s parameter %q is not %s", name, v, what)
	}
	return n, true, nil
}

// posIntQuery is intQuery rejecting zero and negative values with the
// same message shape.
func posIntQuery(req *http.Request, name, what string) (val int, ok bool, err error) {
	n, ok, err := intQuery(req, name, what)
	if err == nil && ok && n < 1 {
		err = fmt.Errorf("%s parameter %q is not %s", name, req.URL.Query().Get(name), what)
	}
	return n, ok, err
}

// workersParam parses the optional ?workers= query parameter. A
// non-numeric value is an error (the caller answers 400); numeric
// values are clamped to [1, 4×GOMAXPROCS] so a client cannot request an
// absurd goroutine count; absent means 0 (GOMAXPROCS).
func workersParam(req *http.Request) (int, error) {
	n, ok, err := intQuery(req, "workers", "an integer")
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // GOMAXPROCS
	}
	if n < 1 {
		n = 1
	}
	if limit := 4 * runtime.GOMAXPROCS(0); n > limit {
		n = limit
	}
	return n, nil
}
