package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"hyperprov/internal/engine"
	"hyperprov/internal/subscribe"
)

// subscribeRequest is the POST /v1/subscribe body: the subscriptions
// to register up front, and an optional per-connection frame buffer
// (how many undelivered frames the server queues before dropping and
// scheduling a resync; 0 selects the default).
type subscribeRequest struct {
	Subscriptions []subscribe.Spec `json:"subscriptions"`
	Buffer        int              `json:"buffer,omitempty"`
}

// handleSubscribe is the streaming subscription endpoint, mounted
// outside the request timeout (the response lives until the client
// disconnects or DrainStreams fires):
//
//	POST /v1/subscribe   body {"subscriptions":[spec...]}  → ND-JSON frames
//	GET  /v1/subscribe?spec={json}&spec={json}             → SSE frames
//
// Each registered subscription is acknowledged with an "ack" frame
// carrying its initial state; afterwards every committed transaction
// that moves a subscription produces a "delta" frame, and a connection
// that falls behind receives a "resync" snapshot instead of blocking
// the write path (see subscribe.Frame for the full protocol).
func (s *Server) handleSubscribe(w http.ResponseWriter, req *http.Request) {
	sse := req.Method == http.MethodGet
	var specs []subscribe.Spec
	var buffer int
	if sse {
		for _, raw := range req.URL.Query()["spec"] {
			var sp subscribe.Spec
			if err := json.Unmarshal([]byte(raw), &sp); err != nil {
				writeError(w, http.StatusBadRequest, codeBadRequest, "bad spec parameter: %v", err)
				return
			}
			specs = append(specs, sp)
		}
		n, _, err := intQuery(req, "buffer", "an integer")
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
			return
		}
		buffer = n
	} else {
		var sr subscribeRequest
		if err := s.readBody(w, req, &sr); err != nil {
			writeBodyError(w, err)
			return
		}
		specs = sr.Subscriptions
		buffer = sr.Buffer
	}
	if len(specs) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "no subscriptions given")
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, codeInternal, "response writer cannot stream")
		return
	}

	conn := s.subs.Attach(buffer)
	if conn == nil {
		writeError(w, http.StatusServiceUnavailable, codeCanceled, "server is shutting down")
		return
	}
	defer conn.Close()
	// Register everything before writing the status line so a bad spec
	// is a clean 4xx rather than a mid-stream error frame.
	acks := make([]subscribe.Frame, 0, len(specs))
	for _, sp := range specs {
		ack, err := s.subs.Subscribe(conn, sp)
		if err != nil {
			if errors.Is(err, engine.ErrUnknownRelation) {
				writeError(w, http.StatusNotFound, codeUnknownRelation, "%v", err)
			} else {
				writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
			}
			return
		}
		acks = append(acks, ack)
	}

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	write := func(f subscribe.Frame) bool {
		if sse {
			if _, err := w.Write([]byte("data: ")); err != nil {
				return false
			}
		}
		if err := enc.Encode(f); err != nil { // Encode appends the \n ND-JSON needs
			return false
		}
		if sse {
			if _, err := w.Write([]byte("\n")); err != nil {
				return false
			}
		}
		flusher.Flush()
		return true
	}
	for _, ack := range acks {
		if !write(ack) {
			return
		}
	}

	// The stream ends when the client goes away or DrainStreams cancels
	// it for shutdown; either way the client re-subscribes and receives
	// fresh acks, so ending the response is the whole cleanup.
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	defer context.AfterFunc(s.drainCtx, cancel)()
	for {
		f, err := conn.Next(ctx)
		if err != nil {
			return
		}
		if !write(f) {
			s.metrics.m.Add("subscribe.drops", 1)
			return
		}
	}
}
