package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hyperprov/internal/admission"
	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/parser"
	"hyperprov/internal/provstore"
	"hyperprov/internal/upstruct"
	"hyperprov/internal/wal"
)

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReadyz is the readiness probe, now a three-state health
// machine (ok → degraded → overloaded):
//
//   - overloaded — the admission controller shed for capacity within
//     its window: 503 overloaded with Retry-After, drain this node.
//   - degraded — queue pressure, a read-only persistent store, or a
//     follower that has not finished its initial sync. The WAL and
//     follower causes keep their historical responses (503 read_only /
//     503 syncing) so balancer configs and clients keep working; pure
//     queue pressure answers 200 with state "degraded" (the node still
//     serves, it is just busy).
//   - ok — 200.
//
// Reads keep answering on the other endpoints in every state, so load
// balancers can drain writes without killing the process.
func (s *Server) handleReadyz(w http.ResponseWriter, req *http.Request) {
	e := s.Engine()
	if s.adm.State() == admission.StateOverloaded {
		w.Header().Set("Retry-After", retryAfterSeconds(s.adm.Window()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ok": false, "state": admission.StateOverloaded.String(),
			"error": errorBody{Code: codeOverloaded, Message: "server is shedding load"},
		})
		return
	}
	state := s.health(e).String()
	switch e := e.(type) {
	case *wal.Store:
		if e.ReadOnly() {
			writeError(w, http.StatusServiceUnavailable, codeReadOnly, "persistent store is read-only: %v", e.Stats().ReadOnlyCause)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "persistent": true, "state": state})
	case *wal.Follower:
		rs := e.ReplicaStats()
		if !rs.Ready {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ok": false, "follower": true, "state": state,
				"error": errorBody{Code: codeSyncing, Message: "follower has not finished its initial sync"},
				"lag":   map[string]uint64{"records": rs.LagRecords, "epochs": rs.LagEpochs},
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "persistent": true, "follower": true, "state": state,
			"lag": map[string]uint64{"records": rs.LagRecords, "epochs": rs.LagEpochs},
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "persistent": false, "state": state})
	}
}

// handleReplicationStream is the leader's replication endpoint: it
// streams the follower handshake (hello, optionally a checkpoint
// bootstrap) followed by the live CRC-framed record feed, resuming at
// ?from=N. The response flushes after every frame and lives until the
// follower disconnects; it is mounted outside the request timeout.
func (s *Server) handleReplicationStream(w http.ResponseWriter, req *http.Request) {
	st, ok := s.Engine().(*wal.Store)
	if !ok {
		writeError(w, http.StatusConflict, codeNotPersistent, "replication needs a persistent leader store")
		return
	}
	from, _, err := uintQuery(req, "from", "an LSN")
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// The stream runs until the follower disconnects or DrainStreams
	// cancels it for shutdown; either way the follower redials and
	// resumes, so errors here just end the response.
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	defer context.AfterFunc(s.drainCtx, cancel)()
	if err := st.ServeStream(ctx, w, from); err != nil {
		s.metrics.m.Add("replication_stream.drops", 1)
	}
}

// handleCheckpoint forces a checkpoint of the persistent store: the
// current engine state is written as a snapshot and fully-covered WAL
// segments are pruned. Serving an in-memory engine answers 409
// not_persistent; a degraded store answers 503 read_only.
func (s *Server) handleCheckpoint(w http.ResponseWriter, req *http.Request) {
	if _, ok := s.Engine().(*wal.Follower); ok {
		writeError(w, http.StatusForbidden, codeFollower, "server is a replication follower; checkpoint the leader")
		return
	}
	st, ok := s.Engine().(*wal.Store)
	if !ok {
		writeError(w, http.StatusConflict, codeNotPersistent, "server is not running on a persistent store")
		return
	}
	if err := st.Checkpoint(); err != nil {
		writeEngineError(w, err)
		return
	}
	stats := st.Stats()
	writeJSON(w, http.StatusOK, map[string]any{"lsn": stats.LSN, "checkpointLSN": stats.CheckpointLSN})
}

type attrJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type relationSchemaJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs"`
}

func (s *Server) handleSchema(w http.ResponseWriter, req *http.Request) {
	e := s.Engine()
	schema := e.Schema()
	rels := make([]relationSchemaJSON, 0, len(schema.Names()))
	for _, name := range schema.Names() {
		rel := schema.Relation(name)
		rj := relationSchemaJSON{Name: name}
		for _, a := range rel.Attrs {
			rj.Attrs = append(rj.Attrs, attrJSON{Name: a.Name, Kind: a.Kind.String()})
		}
		rels = append(rels, rj)
	}
	writeJSON(w, http.StatusOK, map[string]any{"mode": e.Mode().String(), "relations": rels})
}

// handleIndexList reports every secondary index with its posting-list
// volume, plus the planner's cumulative counters.
func (s *Server) handleIndexList(w http.ResponseWriter, req *http.Request) {
	e := s.Engine()
	infos := e.IndexStats()
	if infos == nil {
		infos = []engine.IndexInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"indexes": infos,
		"planner": e.PlannerStats(),
	})
}

type indexRequest struct {
	Rel  string `json:"rel"`
	Attr string `json:"attr"`
}

// handleIndexBuild creates a secondary index on {rel, attr}. Building
// an index that already exists is a no-op success; unknown relations
// and attributes answer 404 through the error envelope.
func (s *Server) handleIndexBuild(w http.ResponseWriter, req *http.Request) {
	var ir indexRequest
	if err := s.readBody(w, req, &ir); err != nil {
		writeBodyError(w, err)
		return
	}
	if ir.Rel == "" || ir.Attr == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "need rel and attr")
		return
	}
	e := s.Engine()
	if err := e.BuildIndex(ir.Rel, ir.Attr); err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"indexes": e.IndexStats()})
}

// handleIndexDrop removes the index named by ?rel=&attr=; a missing
// index answers 404 with code unknown_index.
func (s *Server) handleIndexDrop(w http.ResponseWriter, req *http.Request) {
	rel := req.URL.Query().Get("rel")
	attr := req.URL.Query().Get("attr")
	if rel == "" || attr == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "need rel and attr query parameters")
		return
	}
	if err := s.Engine().DropIndex(rel, attr); err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"dropped": true})
}

// minEpochWait bounds how long a ?min_epoch= fenced read blocks for the
// horizon to catch up before answering 503 replica_lagging. Long enough
// to absorb normal replication lag, short enough that a stalled replica
// fails fast.
const minEpochWait = time.Second

// asOfReader resolves the optional ?as_of= query parameter (an epoch
// number, as reported by mvccHorizonEpoch in /v1/stats) to the reader
// the request runs against: the live engine when absent, an MVCC view
// pinned at the end of that epoch otherwise. Time travel is free —
// views share the engine's version chains — and lock-free against
// concurrent ingestion. Epochs beyond the committed horizon answer
// 400; ok=false means the error response has been written.
//
// ?min_epoch=N fences stale reads: the request proceeds only once the
// serving engine's committed horizon covers epoch N, waiting up to
// minEpochWait and then answering 503 replica_lagging. On a follower
// this is the read-your-writes guard — a client that wrote through the
// leader (observing its mvccHorizonEpoch) passes that epoch here and
// never reads a replica state older than its own write; on the leader
// the fence is satisfied immediately.
func (s *Server) asOfReader(w http.ResponseWriter, req *http.Request) (engine.Reader, bool) {
	e := s.Engine()
	if n, present, err := uintQuery(req, "min_epoch", "an epoch number"); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return nil, false
	} else if present {
		seq := engine.EpochSeq(n)
		if e.Horizon() < seq {
			ctx, cancel := context.WithTimeout(req.Context(), minEpochWait)
			_ = e.WaitHorizon(ctx, seq)
			cancel()
		}
		if h := engine.SeqEpoch(e.Horizon()); h < n {
			writeError(w, http.StatusServiceUnavailable, codeReplicaLagging, "committed horizon epoch %d has not reached min_epoch %d", h, n)
			return nil, false
		}
	}
	n, present, err := uintQuery(req, "as_of", "an epoch number")
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return nil, false
	}
	if !present {
		return e, true
	}
	if h := engine.SeqEpoch(e.Horizon()); n > h {
		writeError(w, http.StatusBadRequest, codeBadRequest, "as_of epoch %d is beyond the committed horizon epoch %d", n, h)
		return nil, false
	}
	return e.At(engine.EpochSeq(n)), true
}

type annotationRequest struct {
	Rel      string `json:"rel"`
	Tuple    []any  `json:"tuple"`
	Minimize bool   `json:"minimize"`
	Explain  bool   `json:"explain"`
}

type dependenciesJSON struct {
	Tuples       []string `json:"tuples"`
	Transactions []string `json:"transactions"`
}

type annotationResponse struct {
	Found        bool             `json:"found"`
	Live         bool             `json:"live,omitempty"`
	Annotation   string           `json:"annotation,omitempty"`
	Size         int64            `json:"size,omitempty"`
	Explain      string           `json:"explain,omitempty"`
	Dependencies dependenciesJSON `json:"dependencies"`
}

// handleAnnotation answers "why is this tuple (not) in the database?":
// the stored provenance expression, its liveness under the all-true
// valuation, its input-tuple and transaction dependencies, and
// optionally the Explain rendering. ?as_of=N answers against the
// database as of epoch N — "why was this tuple here then?".
func (s *Server) handleAnnotation(w http.ResponseWriter, req *http.Request) {
	var ar annotationRequest
	if err := s.readBody(w, req, &ar); err != nil {
		writeBodyError(w, err)
		return
	}
	e, ok := s.asOfReader(w, req)
	if !ok {
		return
	}
	rel := e.Schema().Relation(ar.Rel)
	if rel == nil {
		writeError(w, http.StatusNotFound, codeUnknownRelation, "unknown relation %q", ar.Rel)
		return
	}
	t, err := parseTuple(rel, ar.Tuple)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadTuple, "%v", err)
		return
	}
	ann := e.Annotation(ar.Rel, t)
	if ann == nil {
		writeJSON(w, http.StatusOK, annotationResponse{Found: false})
		return
	}
	if ar.Minimize {
		ann = core.Minimize(ann)
	}
	resp := annotationResponse{
		Found:      true,
		Live:       upstruct.Eval(ann, upstruct.Bool, func(core.Annot) bool { return true }),
		Annotation: ann.String(),
		Size:       ann.Size(),
	}
	if ar.Explain {
		resp.Explain = core.ExplainString(ann)
	}
	tuples, txns := engine.Dependencies(e, ar.Rel, t)
	resp.Dependencies = dependenciesJSON{Tuples: annotNames(tuples), Transactions: annotNames(txns)}
	writeJSON(w, http.StatusOK, resp)
}

func annotNames(as []core.Annot) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// restrictParallel runs the Boolean-valuation materialization shared by
// the db and what-if endpoints — against the live engine or an ?as_of=
// view, resolved by the caller — translating the workers parameter and
// request-context cancellation into envelope errors. ok=false means the
// error response has been written.
func (s *Server) restrictParallel(w http.ResponseWriter, req *http.Request, e engine.Reader, env upstruct.Env[bool]) (*db.Database, bool) {
	workers, err := workersParam(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return nil, false
	}
	d, err := engine.BoolRestrictParallel(req.Context(), e, env, workers)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, codeCanceled, "%v", err)
		return nil, false
	}
	return d, true
}

// handleDB serves the live database — the all-true valuation — with
// parallel evaluation. ?as_of=N serves the database as of epoch N.
func (s *Server) handleDB(w http.ResponseWriter, req *http.Request) {
	e, ok := s.asOfReader(w, req)
	if !ok {
		return
	}
	d, ok := s.restrictParallel(w, req, e, func(core.Annot) bool { return true })
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, dbJSON(d))
}

type deletionRequest struct {
	Tuples []string `json:"tuples"`
}

// handleDeletion answers the Section 4.1 deletion-propagation what-if:
// the database had the named input-tuple annotations never existed,
// computed by valuation without re-running the log. ?as_of=N asks the
// hypothetical against the database as of epoch N.
func (s *Server) handleDeletion(w http.ResponseWriter, req *http.Request) {
	var dr deletionRequest
	if err := s.readBody(w, req, &dr); err != nil {
		writeBodyError(w, err)
		return
	}
	if len(dr.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "no tuple annotations given")
		return
	}
	e, ok := s.asOfReader(w, req)
	if !ok {
		return
	}
	dead := make(map[core.Annot]bool, len(dr.Tuples))
	for _, name := range dr.Tuples {
		dead[core.TupleAnnot(name)] = false
	}
	d, ok := s.restrictParallel(w, req, e, upstruct.MapEnv(dead, true))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, dbJSON(d))
}

type abortRequest struct {
	Labels []string `json:"labels"`
}

// handleAbort answers the transaction-abortion what-if: the database
// had the labelled transactions been aborted. ?as_of=N asks the
// hypothetical against the database as of epoch N.
func (s *Server) handleAbort(w http.ResponseWriter, req *http.Request) {
	var ar abortRequest
	if err := s.readBody(w, req, &ar); err != nil {
		writeBodyError(w, err)
		return
	}
	if len(ar.Labels) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "no transaction labels given")
		return
	}
	e, ok := s.asOfReader(w, req)
	if !ok {
		return
	}
	dead := make(map[core.Annot]bool, len(ar.Labels))
	for _, l := range ar.Labels {
		dead[core.QueryAnnot(l)] = false
	}
	d, ok := s.restrictParallel(w, req, e, upstruct.MapEnv(dead, true))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, dbJSON(d))
}

// handleIngest parses the request body as a transaction log (SQL
// fragment by default, ?syntax=datalog for the paper's notation) and
// applies it. Read endpoints pin the MVCC horizon at entry and never
// block while a large log streams in; each batch publishes atomically
// when it commits. The response (and, on failure or client
// disconnection, the error envelope) reports how many transactions
// were durably applied — the caller may safely resubmit the rest.
func (s *Server) handleIngest(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, s.maxBody)
	src, err := io.ReadAll(req.Body)
	if err != nil {
		writeBodyError(w, fmt.Errorf("reading log: %w", err))
		return
	}
	e := s.Engine()
	var txns []db.Transaction
	switch syntax := req.URL.Query().Get("syntax"); syntax {
	case "", "sql":
		txns, err = parser.ParseSQLLog(e.Schema(), string(src))
	case "datalog":
		txns, err = parser.ParseDatalogLog(e.Schema(), string(src))
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest, "unknown syntax %q", syntax)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "parsing log: %v", err)
		return
	}
	applied, err := e.ApplyBatch(req.Context(), txns)
	if err != nil {
		writeEngineErrorApplied(w, err, applied)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"transactions": len(txns),
		"applied":      applied,
		"queries":      db.CountQueries(txns),
	})
}

// handleSnapshotSave streams the annotated database in the provstore
// binary format — one consistent MVCC cut pinned at entry, with
// deterministic bytes. ?as_of=N streams the database as it stood at
// the end of epoch N.
func (s *Server) handleSnapshotSave(w http.ResponseWriter, req *http.Request) {
	e, ok := s.asOfReader(w, req)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := provstore.SaveSnapshot(w, e); err != nil {
		// The 200 header and part of the binary body may already be on
		// the wire, so a JSON error envelope appended here would corrupt
		// the download into something that half-parses. Abort the
		// connection instead: the client's load fails on the truncated
		// stream.
		s.metrics.m.Add("snapshot_save.aborts", 1)
		panic(http.ErrAbortHandler)
	}
}

// ctxReader propagates request-context cancellation into a blocking
// body read, so a disconnected client stops a snapshot load promptly
// instead of after the next short read.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// limitReader records whether an http.MaxBytesReader underneath it hit
// its cap, for callers whose downstream decoder hides the error chain.
type limitReader struct {
	r   io.Reader
	hit bool
}

func (l *limitReader) Read(p []byte) (int, error) {
	n, err := l.r.Read(p)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		l.hit = true
	}
	return n, err
}

// handleSnapshotLoad restores a snapshot and atomically swaps it in as
// the served engine; in-flight requests finish against the old one.
// ?shards=N restores into a hash-sharded engine (default: the single
// engine); the snapshot bytes are identical either way.
func (s *Server) handleSnapshotLoad(w http.ResponseWriter, req *http.Request) {
	if _, ok := s.Engine().(*wal.Store); ok {
		// Swapping an in-memory engine over a persistent store would
		// silently fork the served state from the WAL on disk.
		writeError(w, http.StatusConflict, codeNotPersistent, "server is running on a persistent store; snapshot load would desync it from the log")
		return
	}
	if _, ok := s.Engine().(*wal.Follower); ok {
		// Same desync hazard, plus the apply loop would keep writing to
		// the store the swap just abandoned.
		writeError(w, http.StatusForbidden, codeFollower, "server is a replication follower; its state comes from the leader")
		return
	}
	var opts []engine.Option
	if n, present, err := posIntQuery(req, "shards", "a positive integer"); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	} else if present {
		opts = append(opts, engine.WithShards(n))
	}
	// The snapshot decoder wraps reader errors in its own context, so a
	// limit hit is recorded by the tracking reader rather than recovered
	// from the error chain.
	lr := &limitReader{r: http.MaxBytesReader(w, req.Body, s.maxBody)}
	e, err := provstore.LoadSnapshot(ctxReader{ctx: req.Context(), r: lr}, opts...)
	if err != nil {
		if lr.hit {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				"snapshot exceeds the %d-byte limit", s.maxBody)
			return
		}
		if req.Context().Err() != nil {
			writeError(w, http.StatusServiceUnavailable, codeCanceled, "loading snapshot: %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "loading snapshot: %v", err)
		return
	}
	s.setEngine(e)
	writeJSON(w, http.StatusOK, map[string]any{"rows": e.NumRows(), "mode": e.Mode().String()})
}
