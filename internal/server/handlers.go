package server

import (
	"io"
	"net/http"
	"strconv"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/parser"
	"hyperprov/internal/provstore"
	"hyperprov/internal/upstruct"
)

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

type attrJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type relationSchemaJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs"`
}

func (s *Server) handleSchema(w http.ResponseWriter, req *http.Request) {
	e := s.Engine()
	schema := e.Schema()
	rels := make([]relationSchemaJSON, 0, len(schema.Names()))
	for _, name := range schema.Names() {
		rel := schema.Relation(name)
		rj := relationSchemaJSON{Name: name}
		for _, a := range rel.Attrs {
			rj.Attrs = append(rj.Attrs, attrJSON{Name: a.Name, Kind: a.Kind.String()})
		}
		rels = append(rels, rj)
	}
	writeJSON(w, http.StatusOK, map[string]any{"mode": e.Mode().String(), "relations": rels})
}

// handleStats reports the engine's size measures: provSize is the
// paper's per-occurrence tree count (Fig. 7b/8b), provDagSize the
// number of distinct hash-consed nodes backing this engine's
// annotations (the memory actually held), and the intern* fields are
// the process-global intern table counters.
func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	e := s.Engine()
	ist := core.InternStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":         e.Mode().String(),
		"rows":         e.NumRows(),
		"support":      e.SupportSize(),
		"provSize":     e.ProvSize(),
		"provDagSize":  e.ProvDAGSize(),
		"internNodes":  ist.Nodes,
		"internHits":   ist.Hits,
		"internMisses": ist.Misses,
	})
}

type annotationRequest struct {
	Rel      string `json:"rel"`
	Tuple    []any  `json:"tuple"`
	Minimize bool   `json:"minimize"`
	Explain  bool   `json:"explain"`
}

type dependenciesJSON struct {
	Tuples       []string `json:"tuples"`
	Transactions []string `json:"transactions"`
}

type annotationResponse struct {
	Found        bool             `json:"found"`
	Live         bool             `json:"live,omitempty"`
	Annotation   string           `json:"annotation,omitempty"`
	Size         int64            `json:"size,omitempty"`
	Explain      string           `json:"explain,omitempty"`
	Dependencies dependenciesJSON `json:"dependencies"`
}

// handleAnnotation answers "why is this tuple (not) in the database?":
// the stored provenance expression, its liveness under the all-true
// valuation, its input-tuple and transaction dependencies, and
// optionally the Explain rendering.
func (s *Server) handleAnnotation(w http.ResponseWriter, req *http.Request) {
	var ar annotationRequest
	if err := readBody(w, req, &ar); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e := s.Engine()
	rel := e.Schema().Relation(ar.Rel)
	if rel == nil {
		writeError(w, http.StatusNotFound, "unknown relation %q", ar.Rel)
		return
	}
	t, err := parseTuple(rel, ar.Tuple)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ann := e.Annotation(ar.Rel, t)
	if ann == nil {
		writeJSON(w, http.StatusOK, annotationResponse{Found: false})
		return
	}
	if ar.Minimize {
		ann = core.Minimize(ann)
	}
	resp := annotationResponse{
		Found:      true,
		Live:       upstruct.Eval(ann, upstruct.Bool, func(core.Annot) bool { return true }),
		Annotation: ann.String(),
		Size:       ann.Size(),
	}
	if ar.Explain {
		resp.Explain = core.ExplainString(ann)
	}
	tuples, txns := engine.Dependencies(e, ar.Rel, t)
	resp.Dependencies = dependenciesJSON{Tuples: annotNames(tuples), Transactions: annotNames(txns)}
	writeJSON(w, http.StatusOK, resp)
}

func annotNames(as []core.Annot) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func workersParam(req *http.Request) int {
	if v := req.URL.Query().Get("workers"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 0 // GOMAXPROCS
}

// handleDB serves the live database — the all-true valuation — with
// parallel evaluation.
func (s *Server) handleDB(w http.ResponseWriter, req *http.Request) {
	e := s.Engine()
	d := engine.BoolRestrictParallel(e, func(core.Annot) bool { return true }, workersParam(req))
	writeJSON(w, http.StatusOK, dbJSON(d))
}

type deletionRequest struct {
	Tuples []string `json:"tuples"`
}

// handleDeletion answers the Section 4.1 deletion-propagation what-if:
// the database had the named input-tuple annotations never existed,
// computed by valuation without re-running the log.
func (s *Server) handleDeletion(w http.ResponseWriter, req *http.Request) {
	var dr deletionRequest
	if err := readBody(w, req, &dr); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(dr.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, "no tuple annotations given")
		return
	}
	dead := make(map[core.Annot]bool, len(dr.Tuples))
	for _, name := range dr.Tuples {
		dead[core.TupleAnnot(name)] = false
	}
	e := s.Engine()
	d := engine.BoolRestrictParallel(e, upstruct.MapEnv(dead, true), workersParam(req))
	writeJSON(w, http.StatusOK, dbJSON(d))
}

type abortRequest struct {
	Labels []string `json:"labels"`
}

// handleAbort answers the transaction-abortion what-if: the database
// had the labelled transactions been aborted.
func (s *Server) handleAbort(w http.ResponseWriter, req *http.Request) {
	var ar abortRequest
	if err := readBody(w, req, &ar); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(ar.Labels) == 0 {
		writeError(w, http.StatusBadRequest, "no transaction labels given")
		return
	}
	dead := make(map[core.Annot]bool, len(ar.Labels))
	for _, l := range ar.Labels {
		dead[core.QueryAnnot(l)] = false
	}
	e := s.Engine()
	d := engine.BoolRestrictParallel(e, upstruct.MapEnv(dead, true), workersParam(req))
	writeJSON(w, http.StatusOK, dbJSON(d))
}

// handleIngest parses the request body as a transaction log (SQL
// fragment by default, ?syntax=datalog for the paper's notation) and
// applies it. The engine write lock is taken per transaction, so read
// endpoints keep answering — at transaction granularity — while a large
// log streams in.
func (s *Server) handleIngest(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, maxBodyBytes)
	src, err := io.ReadAll(req.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading log: %v", err)
		return
	}
	e := s.Engine()
	var txns []db.Transaction
	switch syntax := req.URL.Query().Get("syntax"); syntax {
	case "", "sql":
		txns, err = parser.ParseSQLLog(e.Schema(), string(src))
	case "datalog":
		txns, err = parser.ParseDatalogLog(e.Schema(), string(src))
	default:
		writeError(w, http.StatusBadRequest, "unknown syntax %q", syntax)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing log: %v", err)
		return
	}
	if err := e.ApplyAll(txns); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "applying log: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"transactions": len(txns),
		"queries":      db.CountQueries(txns),
	})
}

// handleSnapshotSave streams the annotated database in the provstore
// binary format — one consistent cut under the engine read lock, with
// deterministic bytes.
func (s *Server) handleSnapshotSave(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := provstore.SaveSnapshot(w, s.Engine()); err != nil {
		// Headers are out; the truncated body fails the client's load.
		writeError(w, http.StatusInternalServerError, "saving snapshot: %v", err)
	}
}

// handleSnapshotLoad restores a snapshot and atomically swaps it in as
// the served engine; in-flight requests finish against the old one.
func (s *Server) handleSnapshotLoad(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, maxBodyBytes)
	e, err := provstore.LoadSnapshot(req.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "loading snapshot: %v", err)
		return
	}
	s.setEngine(e)
	writeJSON(w, http.StatusOK, map[string]any{"rows": e.NumRows(), "mode": e.Mode().String()})
}
