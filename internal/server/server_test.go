package server

import (
	"bytes"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// figure1Engine builds the paper's Figure 1a Products instance with the
// p1…p4 annotations and applies the running example's T1 and T2 as SQL.
func figure1Engine(t *testing.T, mode engine.Mode) *engine.Engine {
	t.Helper()
	schema := db.MustSchema(db.MustRelationSchema("Products",
		db.Attribute{Name: "Product", Kind: db.KindString},
		db.Attribute{Name: "Category", Kind: db.KindString},
		db.Attribute{Name: "Price", Kind: db.KindInt},
	))
	d := db.NewDatabase(schema)
	for _, r := range []db.Tuple{
		{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)},
		{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
		{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)},
		{db.S("Children sneakers"), db.S("Fashion"), db.I(40)},
	} {
		if err := d.InsertTuple("Products", r); err != nil {
			t.Fatal(err)
		}
	}
	names := map[string]string{
		"s13:Kids mnt bike|s5:Sport|i120":      "p1",
		"s13:Tennis Racket|s5:Sport|i70":       "p2",
		"s13:Kids mnt bike|s4:Kids|i120":       "p3",
		"s17:Children sneakers|s7:Fashion|i40": "p4",
	}
	return engine.New(mode, d, engine.WithInitialAnnotations(func(rel string, tp db.Tuple) core.Annot {
		return core.TupleAnnot(names[tp.Key()])
	}))
}

const figure1Log = `
BEGIN p;
UPDATE Products SET Category = 'Sport' WHERE Product = 'Kids mnt bike' AND Category = 'Kids';
UPDATE Products SET Category = 'Bicycles' WHERE Product = 'Kids mnt bike' AND Category = 'Sport';
COMMIT;
BEGIN pp;
UPDATE Products SET Price = 50 WHERE Category = 'Sport';
COMMIT;
`

func postJSON(t *testing.T, client *http.Client, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// normalize re-marshals any JSON-able value so that a decoded response
// (float64 numbers) compares equal to a freshly rendered databaseJSON
// (typed numbers).
func normalize(t *testing.T, v any) any {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var out any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerEndpoints(t *testing.T) {
	e := figure1Engine(t, engine.ModeNormalForm)
	srv := New(e)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Ingest the running example.
	resp, err := client.Post(ts.URL+"/v1/ingest?syntax=sql", "text/plain", strings.NewReader(figure1Log))
	if err != nil {
		t.Fatal(err)
	}
	ing := decode[map[string]int](t, resp)
	if ing["transactions"] != 2 || ing["queries"] != 3 {
		t.Fatalf("ingest reported %v", ing)
	}

	// Health and stats.
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if ok := decode[map[string]bool](t, resp); !ok["ok"] {
		t.Fatal("healthz not ok")
	}
	resp, err = client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[map[string]any](t, resp)
	if int(stats["rows"].(float64)) != e.NumRows() {
		t.Fatalf("stats rows %v, engine has %d", stats["rows"], e.NumRows())
	}
	if int64(stats["provSize"].(float64)) != e.ProvSize() {
		t.Fatalf("stats provSize %v, engine has %d", stats["provSize"], e.ProvSize())
	}
	if int64(stats["provDagSize"].(float64)) != e.ProvDAGSize() {
		t.Fatalf("stats provDagSize %v, engine has %d", stats["provDagSize"], e.ProvDAGSize())
	}
	if dag, tree := int64(stats["provDagSize"].(float64)), int64(stats["provSize"].(float64)); dag > tree || dag <= 0 {
		t.Fatalf("DAG size %d not in (0, tree size %d]", dag, tree)
	}
	// The intern counters are process-global and monotone; the stats
	// endpoint must report a consistent nonzero snapshot by this point.
	if int64(stats["internNodes"].(float64)) <= 0 || int64(stats["internMisses"].(float64)) <= 0 {
		t.Fatalf("intern table counters missing from stats: %v", stats)
	}

	// Annotation of the Figure 4 merged bike tuple.
	resp = postJSON(t, client, ts.URL+"/v1/annotation", annotationRequest{
		Rel:     "Products",
		Tuple:   []any{"Kids mnt bike", "Bicycles", 120},
		Explain: true,
	})
	ar := decode[annotationResponse](t, resp)
	if !ar.Found || !ar.Live {
		t.Fatalf("bike tuple not found/live: %+v", ar)
	}
	want := e.Annotation("Products", db.Tuple{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)})
	if ar.Annotation != want.String() {
		t.Fatalf("served annotation %q, engine says %q", ar.Annotation, want)
	}
	if ar.Explain == "" {
		t.Fatal("explain requested but empty")
	}
	if len(ar.Dependencies.Transactions) != 1 || ar.Dependencies.Transactions[0] != "p" {
		t.Fatalf("dependencies %+v, want transaction p", ar.Dependencies)
	}

	// Live database equals the direct valuation.
	resp, err = client.Get(ts.URL + "/v1/db")
	if err != nil {
		t.Fatal(err)
	}
	got := decode[any](t, resp)
	if wantDB := normalize(t, dbJSON(engine.LiveDB(e))); !reflect.DeepEqual(got, wantDB) {
		t.Fatalf("served live DB differs from engine.LiveDB:\n got %v\nwant %v", got, wantDB)
	}

	// Deletion propagation equals the direct engine call.
	resp = postJSON(t, client, ts.URL+"/v1/whatif/deletion", deletionRequest{Tuples: []string{"p3"}})
	got = decode[any](t, resp)
	if wantDB := normalize(t, dbJSON(engine.DeletionPropagation(e, core.TupleAnnot("p3")))); !reflect.DeepEqual(got, wantDB) {
		t.Fatalf("served deletion propagation differs from engine.DeletionPropagation:\n got %v\nwant %v", got, wantDB)
	}

	// Abort what-if equals the direct engine call.
	resp = postJSON(t, client, ts.URL+"/v1/whatif/abort", abortRequest{Labels: []string{"p"}})
	got = decode[any](t, resp)
	if wantDB := normalize(t, dbJSON(engine.AbortTransactions(e, "p"))); !reflect.DeepEqual(got, wantDB) {
		t.Fatal("served abort what-if differs from engine.AbortTransactions")
	}

	// Snapshot round trip: download, load into a fresh server, compare.
	resp, err = client.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(figure1Engine(t, engine.ModeNormalForm))
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, err = ts2.Client().Post(ts2.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	loaded := decode[map[string]any](t, resp)
	if int(loaded["rows"].(float64)) != e.NumRows() {
		t.Fatalf("restored server has %v rows, want %d", loaded["rows"], e.NumRows())
	}
	resp, err = ts2.Client().Get(ts2.URL + "/v1/db")
	if err != nil {
		t.Fatal(err)
	}
	got = decode[any](t, resp)
	if wantDB := normalize(t, dbJSON(engine.LiveDB(e))); !reflect.DeepEqual(got, wantDB) {
		t.Fatal("live DB after snapshot round trip differs")
	}

	// Metrics counted every endpoint hit at least once.
	resp, err = client.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	counters := decode[map[string]any](t, resp)
	for _, key := range []string{"ingest.requests", "annotation.requests", "db.requests", "whatif_deletion.requests", "snapshot_save.requests"} {
		if counters[key] == nil {
			t.Fatalf("metrics missing %s: %v", key, counters)
		}
	}
	if counters["annotation.errors"] != nil {
		t.Fatalf("unexpected annotation errors: %v", counters["annotation.errors"])
	}
}

func TestServerErrors(t *testing.T) {
	srv := New(figure1Engine(t, engine.ModeNaive))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name   string
		do     func() *http.Response
		status int
	}{
		{"unknown relation", func() *http.Response {
			return postJSON(t, client, ts.URL+"/v1/annotation", annotationRequest{Rel: "Nope", Tuple: []any{"x"}})
		}, http.StatusNotFound},
		{"bad tuple arity", func() *http.Response {
			return postJSON(t, client, ts.URL+"/v1/annotation", annotationRequest{Rel: "Products", Tuple: []any{"x"}})
		}, http.StatusBadRequest},
		{"bad tuple type", func() *http.Response {
			return postJSON(t, client, ts.URL+"/v1/annotation", annotationRequest{Rel: "Products", Tuple: []any{"x", "y", 1.5}})
		}, http.StatusBadRequest},
		{"empty deletion", func() *http.Response {
			return postJSON(t, client, ts.URL+"/v1/whatif/deletion", deletionRequest{})
		}, http.StatusBadRequest},
		{"bad log", func() *http.Response {
			resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("DROP TABLE Products;"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"bad snapshot", func() *http.Response {
			resp, err := client.Post(ts.URL+"/v1/snapshot", "application/octet-stream", strings.NewReader("not a snapshot"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := c.do()
		er := decode[errorResponse](t, resp)
		if resp.StatusCode != c.status || er.Error.Message == "" || er.Error.Code == "" {
			t.Errorf("%s: status %d (want %d), error %+v", c.name, resp.StatusCode, c.status, er.Error)
		}
	}

	// A missing tuple is found=false, not an error.
	resp := postJSON(t, client, ts.URL+"/v1/annotation", annotationRequest{Rel: "Products", Tuple: []any{"x", "y", 1}})
	if ar := decode[annotationResponse](t, resp); ar.Found {
		t.Fatal("absent tuple reported found")
	}
}

// TestServerTupleAnnotationNames checks that int and float attributes
// parse from JSON numbers and numeric strings alike.
func TestParseTupleLenient(t *testing.T) {
	rel := db.MustRelationSchema("R",
		db.Attribute{Name: "s", Kind: db.KindString},
		db.Attribute{Name: "i", Kind: db.KindInt},
		db.Attribute{Name: "f", Kind: db.KindFloat},
	)
	for _, raw := range [][]any{
		{"a", float64(3), float64(1.5)},
		{"a", "3", "1.5"},
	} {
		tp, err := parseTuple(rel, raw)
		if err != nil {
			t.Fatalf("%v: %v", raw, err)
		}
		if want := (db.Tuple{db.S("a"), db.I(3), db.F(1.5)}); !tp.Equal(want) {
			t.Fatalf("parsed %v as %v, want %v", raw, tp, want)
		}
	}
	if _, err := parseTuple(rel, []any{"a", 1.5, 1.0}); err == nil {
		t.Fatal("accepted fractional value for int attribute")
	}
}
