package upstruct_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperprov/internal/upstruct"
)

// randSet draws a random subset of a small universe.
func randSet(r *rand.Rand) upstruct.Set {
	var elems []string
	for _, e := range []string{"a", "b", "c", "d", "e"} {
		if r.Intn(2) == 0 {
			elems = append(elems, e)
		}
	}
	return upstruct.NewSet(elems...)
}

// TestSetLatticeLaws checks, with testing/quick, the distributive
// lattice laws that make (P(C), ∪, ∩, ∖) the access-control
// Update-Structure: commutativity, associativity, idempotence,
// absorption, distributivity, and the difference laws used by the
// axioms.
func TestSetLatticeLaws(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	f := func() bool {
		a, b, c := randSet(r), randSet(r), randSet(r)
		if !a.Union(b).Equal(b.Union(a)) || !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		if !a.Intersect(b.Intersect(c)).Equal(a.Intersect(b).Intersect(c)) {
			return false
		}
		if !a.Union(a).Equal(a) || !a.Intersect(a).Equal(a) {
			return false
		}
		if !a.Union(a.Intersect(b)).Equal(a) || !a.Intersect(a.Union(b)).Equal(a) {
			return false
		}
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			return false
		}
		// Difference laws: (a∖b)∩b = ∅ and (a∖b)∪(a∩b) = a.
		if a.Diff(b).Intersect(b).Len() != 0 {
			return false
		}
		if !a.Diff(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSetEdgeCases(t *testing.T) {
	empty := upstruct.NewSet()
	a := upstruct.NewSet("x", "y")
	if !empty.Union(a).Equal(a) || !a.Union(empty).Equal(a) {
		t.Error("∅ is not a union identity")
	}
	if empty.Intersect(a).Len() != 0 || a.Intersect(empty).Len() != 0 {
		t.Error("∅ does not annihilate intersection")
	}
	if !a.Diff(empty).Equal(a) || empty.Diff(a).Len() != 0 {
		t.Error("difference with ∅ broken")
	}
	if empty.Contains("x") {
		t.Error("∅ contains nothing")
	}
	if got := empty.String(); got != "{}" {
		t.Errorf("∅ renders as %q", got)
	}
	if len(a.Elems()) != 2 {
		t.Error("Elems broken")
	}
}
