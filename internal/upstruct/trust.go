package upstruct

import "fmt"

// TrustFlag is the resolution state of a trust value: already decided
// true or false, or still unknown (to be decided against the threshold).
type TrustFlag uint8

const (
	// TrustUnknown marks a raw score not yet compared to the threshold.
	TrustUnknown TrustFlag = iota
	// TrustTrue marks a value decided trusted.
	TrustTrue
	// TrustFalse marks a value decided untrusted.
	TrustFalse
)

// Trust is an annotation of the certification semantics of Section 4.1:
// a score V in [0,1] together with a resolution flag R. Input tuples and
// transactions are typically annotated (score, TrustUnknown); the
// operations resolve combinations to (1, TrustTrue) or (0, TrustFalse).
type Trust struct {
	V float64
	R TrustFlag
}

// Score returns an unresolved trust value with the given score.
func Score(v float64) Trust { return Trust{V: v, R: TrustUnknown} }

// String renders the trust value.
func (t Trust) String() string {
	switch t.R {
	case TrustTrue:
		return "T"
	case TrustFalse:
		return "F"
	default:
		return fmt.Sprintf("U(%.2f)", t.V)
	}
}

var (
	trustTrue  = Trust{V: 1, R: TrustTrue}
	trustFalse = Trust{V: 0, R: TrustFalse}
)

// TrustStructure is the tuple/transaction certification semantics of
// Section 4.1, parameterized by the minimal trust level L. With
// trusted(x) := (x.R = T) or (x.R = U and x.V > L):
//
//	a +M b = a +I b = a + b := (1,T) if trusted(a) or trusted(b), else (0,F)
//	a − b                   := (1,T) if trusted(a) and not trusted(b), else (0,F)
//	a ·M b                  := (1,T) if trusted(a) and trusted(b), else (0,F)
//	0                       := (0,F)
//
// A tuple is certified iff its specialized provenance is trusted: it
// would be produced by an execution involving only tuples and
// transactions whose trust score exceeds L.
type TrustStructure struct {
	// L is the minimal trust level.
	L float64
}

// Trusted reports the paper's trusted(x) predicate under this
// structure's threshold.
func (s TrustStructure) Trusted(a Trust) bool {
	return a.R == TrustTrue || (a.R == TrustUnknown && a.V > s.L)
}

func (s TrustStructure) decide(b bool) Trust {
	if b {
		return trustTrue
	}
	return trustFalse
}

// Zero returns (0, F).
func (s TrustStructure) Zero() Trust { return trustFalse }

// PlusI is the disjunctive combination.
func (s TrustStructure) PlusI(a, b Trust) Trust {
	return s.decide(s.Trusted(a) || s.Trusted(b))
}

// PlusM is the disjunctive combination.
func (s TrustStructure) PlusM(a, b Trust) Trust {
	return s.decide(s.Trusted(a) || s.Trusted(b))
}

// DotM is the conjunctive combination.
func (s TrustStructure) DotM(a, b Trust) Trust {
	return s.decide(s.Trusted(a) && s.Trusted(b))
}

// Minus is trusted(a) and not trusted(b).
func (s TrustStructure) Minus(a, b Trust) Trust {
	return s.decide(s.Trusted(a) && !s.Trusted(b))
}

// Plus is the disjunctive combination.
func (s TrustStructure) Plus(a, b Trust) Trust {
	return s.decide(s.Trusted(a) || s.Trusted(b))
}
