package upstruct_test

import (
	"math"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/upstruct"
)

func boolEq(a, b bool) bool { return a == b }

var boolSamples = []bool{false, true}

var setSamples = []upstruct.Set{
	upstruct.NewSet(),
	upstruct.NewSet("IL"),
	upstruct.NewSet("FR"),
	upstruct.NewSet("IL", "FR"),
	upstruct.NewSet("IL", "US"),
	upstruct.NewSet("IL", "FR", "US"),
}

func setEq(a, b upstruct.Set) bool { return a.Equal(b) }

// TestBoolStructureAxioms is exhaustive over the Boolean domain, so it
// constitutes a proof that the deletion-propagation semantics of
// Section 4.1 is an Update-Structure.
func TestBoolStructureAxioms(t *testing.T) {
	for _, v := range upstruct.CheckAxioms[bool](upstruct.Bool, boolEq, boolSamples) {
		t.Error(v)
	}
}

func TestSetStructureAxioms(t *testing.T) {
	for _, v := range upstruct.CheckAxioms[upstruct.Set](upstruct.Sets, setEq, setSamples) {
		t.Error(v)
	}
}

// TestTrustStructureAxioms checks the certification semantics; equality
// is observational (same trustedness under the threshold), which is the
// notion the structure computes with.
func TestTrustStructureAxioms(t *testing.T) {
	st := upstruct.TrustStructure{L: 0.5}
	eq := func(a, b upstruct.Trust) bool { return st.Trusted(a) == st.Trusted(b) }
	samples := []upstruct.Trust{
		st.Zero(),
		upstruct.Score(0.1),
		upstruct.Score(0.49),
		upstruct.Score(0.51),
		upstruct.Score(0.9),
		{V: 1, R: upstruct.TrustTrue},
		{V: 0, R: upstruct.TrustFalse},
	}
	for _, v := range upstruct.CheckAxioms[upstruct.Trust](st, eq, samples) {
		t.Error(v)
	}
}

func TestSemiringBridgeBool(t *testing.T) {
	k := upstruct.BoolSemiring{}
	if msg := upstruct.CheckSemiringConditions[bool](k, boolEq, boolSamples); msg != "" {
		t.Fatalf("PosBool violates Theorem 4.5 conditions: %s", msg)
	}
	s := upstruct.FromSemiring[bool](k, func(a, b bool) bool { return a && !b })
	for _, v := range upstruct.CheckAxioms[bool](s, boolEq, boolSamples) {
		t.Error(v)
	}
	// The lifted structure coincides with the hand-written one.
	for _, a := range boolSamples {
		for _, b := range boolSamples {
			if s.Minus(a, b) != upstruct.Bool.Minus(a, b) || s.DotM(a, b) != upstruct.Bool.DotM(a, b) {
				t.Errorf("bridge diverges from BoolStructure at %v,%v", a, b)
			}
		}
	}
}

func TestSemiringBridgeSets(t *testing.T) {
	k := upstruct.SetSemiring{Universe: upstruct.NewSet("IL", "FR", "US", "DE")}
	if msg := upstruct.CheckSemiringConditions[upstruct.Set](k, setEq, setSamples); msg != "" {
		t.Fatalf("set semiring violates Theorem 4.5 conditions: %s", msg)
	}
	s := upstruct.FromSemiring[upstruct.Set](k, func(a, b upstruct.Set) upstruct.Set { return a.Diff(b) })
	for _, v := range upstruct.CheckAxioms[upstruct.Set](s, setEq, setSamples) {
		t.Error(v)
	}
}

// TestNatSemiringFailsConditions: provenance polynomials do not lift —
// not every semiring is an Update-Structure (Theorem 4.5 has real
// preconditions).
func TestNatSemiringFailsConditions(t *testing.T) {
	msg := upstruct.CheckSemiringConditions[int](upstruct.NatSemiring{}, func(a, b int) bool { return a == b }, []int{0, 1, 2, 3})
	if msg == "" {
		t.Fatal("NatSemiring unexpectedly satisfies the Theorem 4.5 conditions")
	}
}

// TestFuzzyMonusViolatesAxioms reproduces the paper's remark (end of
// Section 4.2) that the monus operator does not in general work as the
// minus of an Update-Structure: the fuzzy semiring satisfies the
// Theorem 4.5 conditions, but pairing it with its monus breaks the
// axioms (axiom 5 in particular).
func TestFuzzyMonusViolatesAxioms(t *testing.T) {
	k := upstruct.FuzzySemiring{}
	feq := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
	samples := []float64{0, 0.25, 0.5, 0.75, 1}
	if msg := upstruct.CheckSemiringConditions[float64](k, feq, samples); msg != "" {
		t.Fatalf("fuzzy semiring should satisfy the conditions, got: %s", msg)
	}
	s := upstruct.FromSemiring[float64](k, upstruct.FuzzyMonus)
	violations := upstruct.CheckAxioms[float64](s, feq, samples)
	if len(violations) == 0 {
		t.Fatal("fuzzy monus unexpectedly satisfies all axioms")
	}
	found := false
	for _, v := range violations {
		if v.Law == "axiom 5" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an axiom 5 violation, got %v", violations[0])
	}
}

// TestSetToBoolHomomorphism: h(S) = ("IL" ∈ S) is a homomorphism from
// the access-control structure to the Boolean structure — restricting
// the access-control view to one user.
func TestSetToBoolHomomorphism(t *testing.T) {
	h := func(s upstruct.Set) bool { return s.Contains("IL") }
	for _, v := range upstruct.CheckHomomorphism[upstruct.Set, bool](h, upstruct.Sets, upstruct.Bool, boolEq, setSamples) {
		t.Error(v)
	}
}

// TestProp42EvalCommutesWithHomomorphism checks Proposition 4.2 at the
// expression level: specializing an abstract expression into S1 and then
// mapping through h equals specializing directly into S2 under h∘env.
func TestProp42EvalCommutesWithHomomorphism(t *testing.T) {
	h := func(s upstruct.Set) bool { return s.Contains("IL") }
	r := rand.New(rand.NewSource(41))
	names := []string{"x1", "x2", "p", "q"}
	for trial := 0; trial < 200; trial++ {
		e := randConstructionExpr(r, names, 4)
		assign := make(map[core.Annot]upstruct.Set)
		env := func(a core.Annot) upstruct.Set {
			v, ok := assign[a]
			if !ok {
				var elems []string
				for _, c := range []string{"IL", "FR", "US"} {
					if r.Intn(2) == 0 {
						elems = append(elems, c)
					}
				}
				v = upstruct.NewSet(elems...)
				assign[a] = v
			}
			return v
		}
		lhs := h(upstruct.Eval(e, upstruct.Sets, env))
		rhs := upstruct.Eval(e, upstruct.Bool, func(a core.Annot) bool { return h(env(a)) })
		if lhs != rhs {
			t.Fatalf("Eval does not commute with homomorphism for %v", e)
		}
	}
}

// randConstructionExpr builds a random expression shaped like the
// provenance construction's output.
func randConstructionExpr(r *rand.Rand, names []string, depth int) *core.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(5) == 0 {
			return core.Zero()
		}
		return core.TupleVar(names[r.Intn(len(names))])
	}
	p := core.QueryVar(names[r.Intn(len(names))])
	a := randConstructionExpr(r, names, depth-1)
	switch r.Intn(4) {
	case 0:
		return core.PlusI(a, p)
	case 1:
		return core.Minus(a, p)
	case 2:
		b := randConstructionExpr(r, names, depth-1)
		return core.PlusM(a, core.DotM(core.Sum(b), p))
	default:
		b := randConstructionExpr(r, names, depth-1)
		c := randConstructionExpr(r, names, depth-1)
		return core.PlusM(a, core.DotM(core.Sum(b, c), p))
	}
}

func TestEvalExamples(t *testing.T) {
	// Example 4.3: t = products("Tennis Racket","Sport",$50) annotated
	// 0 +M (p2 ·M p'); deleting the input tuple (p2 := false) removes t.
	p2 := core.TupleAnnot("p2")
	pPrime := core.QueryAnnot("p'")
	e := core.PlusM(core.Zero(), core.DotM(core.Var(p2), core.Var(pPrime)))
	envAllTrue := func(core.Annot) bool { return true }
	if !upstruct.Eval(e, upstruct.Bool, envAllTrue) {
		t.Error("tuple should be present when nothing is deleted")
	}
	del := upstruct.MapEnv(map[core.Annot]bool{p2: false}, true)
	if upstruct.Eval(e, upstruct.Bool, del) {
		t.Error("deleting p2 must remove the tuple (Example 4.3)")
	}

	// Example 4.4: Products("Kids mnt bike","Sport",$50) annotated
	// 0 +M (((p1 +M (p3 ·M p)) − p) ·M p'); aborting the first
	// transaction (p := false) keeps the tuple.
	p1 := core.TupleAnnot("p1")
	p3 := core.TupleAnnot("p3")
	p := core.QueryAnnot("p")
	inner := core.Minus(core.PlusM(core.Var(p1), core.DotM(core.Var(p3), core.Var(p))), core.Var(p))
	e2 := core.PlusM(core.Zero(), core.DotM(inner, core.Var(pPrime)))
	if upstruct.Eval(e2, upstruct.Bool, envAllTrue) {
		t.Error("with both transactions the Sport tuple was modified away before T2 priced it")
	}
	abort := upstruct.MapEnv(map[core.Annot]bool{p: false}, true)
	if !upstruct.Eval(e2, upstruct.Bool, abort) {
		t.Error("aborting the first transaction must keep the tuple (Example 4.4)")
	}
}

func TestSetOperations(t *testing.T) {
	a := upstruct.NewSet("IL", "FR")
	b := upstruct.NewSet("FR", "US")
	if got := a.Union(b); !got.Equal(upstruct.NewSet("FR", "IL", "US")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(upstruct.NewSet("FR")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(upstruct.NewSet("IL")) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Contains("IL") || a.Contains("US") {
		t.Error("Contains misbehaves")
	}
	if upstruct.NewSet("a", "a", "b").Len() != 2 {
		t.Error("NewSet must deduplicate")
	}
	if got := upstruct.NewSet("b", "a").String(); got != "{a, b}" {
		t.Errorf("String = %q", got)
	}
}

func TestEvalNFAgainstExprOnSets(t *testing.T) {
	p := core.QueryAnnot("p")
	n := core.NewNF(core.TupleVar("x"))
	n.AbsorbMod([]*core.Expr{core.TupleVar("y"), core.TupleVar("z")}, false, p)
	env := upstruct.MapEnv(map[core.Annot]upstruct.Set{
		core.TupleAnnot("x"): upstruct.NewSet("IL"),
		core.TupleAnnot("y"): upstruct.NewSet("FR", "US"),
		core.TupleAnnot("z"): upstruct.NewSet("DE"),
		p:                    upstruct.NewSet("FR", "DE"),
	}, upstruct.Set{})
	a := upstruct.EvalNF(n, upstruct.Sets, env)
	b := upstruct.Eval(n.ToExpr(), upstruct.Sets, env)
	if !a.Equal(b) {
		t.Errorf("EvalNF = %v, Eval = %v", a, b)
	}
	if !a.Equal(upstruct.NewSet("DE", "FR", "IL")) {
		t.Errorf("access control result = %v", a)
	}
}
