package upstruct

// Semiring is a commutative semiring (K, +, ·, 0, 1). It is the input to
// the Theorem 4.5 construction of Update-Structures.
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
}

// CheckSemiringConditions verifies, over the given sample values, the
// two conditions Theorem 4.5 imposes on a commutative semiring before it
// can be lifted to an Update-Structure: a + 1 = 1 (the paper's
// absorption condition) and a · a = a (multiplicative idempotence),
// together with commutativity of both operations. It returns a
// description of the first violated law, or "" if all checks pass.
func CheckSemiringConditions[T any](k Semiring[T], eq func(a, b T) bool, samples []T) string {
	one := k.One()
	for _, a := range samples {
		if !eq(k.Add(a, one), one) {
			return "a + 1 = 1 violated"
		}
		if !eq(k.Mul(a, a), a) {
			return "a * a = a violated"
		}
		for _, b := range samples {
			if !eq(k.Add(a, b), k.Add(b, a)) {
				return "+ not commutative"
			}
			if !eq(k.Mul(a, b), k.Mul(b, a)) {
				return "* not commutative"
			}
		}
	}
	return ""
}

// semiringStructure is the Update-Structure obtained from a semiring by
// Theorem 4.5: +M, +I and + are the semiring addition, ·M is the
// semiring multiplication, and − is supplied by the caller (it must
// satisfy axioms 2, 4, 5, 7, 10 and 12 with respect to the semiring
// operations; CheckAxioms verifies this on samples).
type semiringStructure[T any] struct {
	k     Semiring[T]
	minus func(a, b T) T
}

// FromSemiring lifts a commutative semiring satisfying the Theorem 4.5
// conditions into an Update-Structure, using the given minus operator.
// The construction makes +I and +M commutative, as the paper notes.
func FromSemiring[T any](k Semiring[T], minus func(a, b T) T) Structure[T] {
	return semiringStructure[T]{k: k, minus: minus}
}

func (s semiringStructure[T]) Zero() T        { return s.k.Zero() }
func (s semiringStructure[T]) PlusI(a, b T) T { return s.k.Add(a, b) }
func (s semiringStructure[T]) PlusM(a, b T) T { return s.k.Add(a, b) }
func (s semiringStructure[T]) DotM(a, b T) T  { return s.k.Mul(a, b) }
func (s semiringStructure[T]) Plus(a, b T) T  { return s.k.Add(a, b) }
func (s semiringStructure[T]) Minus(a, b T) T { return s.minus(a, b) }

// BoolSemiring is PosBool: ({false,true}, ∨, ∧, false, true). Together
// with a − b := a ∧ ¬b it yields (via Theorem 4.5) exactly the
// deletion-propagation structure of Section 4.1.
type BoolSemiring struct{}

func (BoolSemiring) Zero() bool         { return false }
func (BoolSemiring) One() bool          { return true }
func (BoolSemiring) Add(a, b bool) bool { return a || b }
func (BoolSemiring) Mul(a, b bool) bool { return a && b }

// SetSemiring is (P(C), ∪, ∩, ∅, C) over subsets of the given universe.
// Together with set difference it yields (via Theorem 4.5) the
// access-control structure of Section 4.1 (Example 4.6).
type SetSemiring struct {
	// Universe is the full set C (the semiring's 1).
	Universe Set
}

func (s SetSemiring) Zero() Set        { return Set{} }
func (s SetSemiring) One() Set         { return s.Universe }
func (s SetSemiring) Add(a, b Set) Set { return a.Union(b) }
func (s SetSemiring) Mul(a, b Set) Set { return a.Intersect(b) }

// FuzzySemiring is the Viterbi-like fuzzy semiring ([0,1], max, min, 0, 1).
// It satisfies the Theorem 4.5 conditions (max(a,1)=1, min(a,a)=a), but
// the natural "fuzzy negation" minus a − b := min(a, 1−b) does NOT
// satisfy the update axioms (axiom 10 fails); the package tests use it
// as a negative example, alongside the monus operator the paper calls
// out at the end of Section 4.2.
type FuzzySemiring struct{}

func (FuzzySemiring) Zero() float64 { return 0 }
func (FuzzySemiring) One() float64  { return 1 }
func (FuzzySemiring) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (FuzzySemiring) Mul(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// NatSemiring is (N, +, ·, 0, 1), the base of provenance polynomials.
// It violates both Theorem 4.5 conditions (a+1 ≠ 1, a·a ≠ a) and is used
// by tests as a negative example: not every semiring lifts to an
// Update-Structure.
type NatSemiring struct{}

func (NatSemiring) Zero() int        { return 0 }
func (NatSemiring) One() int         { return 1 }
func (NatSemiring) Add(a, b int) int { return a + b }
func (NatSemiring) Mul(a, b int) int { return a * b }

// FuzzyMonus is the monus (truncated difference) of the naturally
// ordered fuzzy semiring: a ⊖ b is the least c with a ≤ max(b, c), i.e.
// a if a > b and 0 otherwise. The paper notes (end of Section 4.2) that
// monus does not in general work as the minus of an Update-Structure;
// FuzzyMonus violates axiom 5 and is used by tests as that negative
// example.
func FuzzyMonus(a, b float64) float64 {
	if a > b {
		return a
	}
	return 0
}
