package upstruct

import (
	"fmt"

	"hyperprov/internal/core"
)

// Structure is an Update-Structure (K, +M, ·M, −, +I, +, 0): a concrete
// domain of provenance values together with one operation per abstract
// UP[X] operator. Implementations are expected to satisfy the
// equivalence axioms of Figure 3 and the zero-related axioms of
// Section 3.1; CheckAxioms verifies both on sample values.
type Structure[T any] interface {
	// Zero is the interpretation of the 0 element (absent tuple /
	// update that did not take place).
	Zero() T
	// PlusI interprets a +I b (insertion).
	PlusI(a, b T) T
	// PlusM interprets a +M b (receiving a modification result).
	PlusM(a, b T) T
	// DotM interprets a ·M b (tuple a updated by query b).
	DotM(a, b T) T
	// Minus interprets a − b (deletion / modification source).
	Minus(a, b T) T
	// Plus interprets the disjunction a + b (Σ folds over Plus).
	Plus(a, b T) T
}

// Env is a valuation of basic annotations into a concrete domain.
type Env[T any] func(core.Annot) T

// MapEnv builds an Env from a map, falling back to def for annotations
// absent from the map. This is the usual shape of provenance use: assign
// concrete values (False for a deleted tuple or an aborted transaction,
// a country set, a trust score) to the annotations of interest and a
// default to all others.
func MapEnv[T any](m map[core.Annot]T, def T) Env[T] {
	return func(a core.Annot) T {
		if v, ok := m[a]; ok {
			return v
		}
		return def
	}
}

// Eval specializes the abstract provenance expression e into the
// structure s under the valuation env. Σ nodes fold left over Plus; an
// empty sum evaluates to Zero.
func Eval[T any](e *core.Expr, s Structure[T], env Env[T]) T {
	switch e.Op() {
	case core.OpZero:
		return s.Zero()
	case core.OpVar:
		return env(e.Annot())
	case core.OpSum:
		kids := e.Children()
		acc := Eval(kids[0], s, env)
		for _, k := range kids[1:] {
			acc = s.Plus(acc, Eval(k, s, env))
		}
		return acc
	case core.OpPlusI:
		return s.PlusI(Eval(e.Left(), s, env), Eval(e.Right(), s, env))
	case core.OpPlusM:
		return s.PlusM(Eval(e.Left(), s, env), Eval(e.Right(), s, env))
	case core.OpDotM:
		return s.DotM(Eval(e.Left(), s, env), Eval(e.Right(), s, env))
	case core.OpMinus:
		return s.Minus(Eval(e.Left(), s, env), Eval(e.Right(), s, env))
	default:
		panic(fmt.Sprintf("upstruct: unknown op %v", e.Op()))
	}
}

// EvalNF specializes a normal-form value without materializing its
// expression tree.
func EvalNF[T any](n *core.NF, s Structure[T], env Env[T]) T {
	base := Eval(n.Base(), s, env)
	switch n.Kind() {
	case core.NFBase:
		return base
	case core.NFPlusI:
		return s.PlusI(base, env(n.P()))
	case core.NFMinus:
		return s.Minus(base, env(n.P()))
	case core.NFMod, core.NFMinusMod:
		sum := n.Sum()
		acc := s.Zero()
		for i, b := range sum {
			v := Eval(b, s, env)
			if i == 0 {
				acc = v
			} else {
				acc = s.Plus(acc, v)
			}
		}
		left := base
		if n.Kind() == core.NFMinusMod {
			left = s.Minus(base, env(n.P()))
		}
		return s.PlusM(left, s.DotM(acc, env(n.P())))
	default:
		panic("upstruct: invalid NF kind")
	}
}
