package upstruct_test

import (
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/upstruct"
)

// TestAxiomSchemasHoldInAllStructures evaluates every Figure 3 axiom
// schema (core.Axioms) under random valuations in the Boolean, set and
// trust structures — the syntactic counterpart of the operator-level
// CheckAxioms, closing the loop between the paper's axiom statements
// and the concrete semantics.
func TestAxiomSchemasHoldInAllStructures(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	trust := upstruct.TrustStructure{L: 0.5}
	for _, ax := range core.Axioms() {
		if len(ax.Metavariables()) == 0 {
			t.Fatalf("%s: no metavariables", ax.Name)
		}
		for trial := 0; trial < 200; trial++ {
			// Boolean.
			bm := make(map[core.Annot]bool)
			benv := func(a core.Annot) bool {
				v, ok := bm[a]
				if !ok {
					v = r.Intn(2) == 0
					bm[a] = v
				}
				return v
			}
			if upstruct.Eval(ax.LHS, upstruct.Bool, benv) != upstruct.Eval(ax.RHS, upstruct.Bool, benv) {
				t.Fatalf("%s fails in Bool:\n  LHS = %v\n  RHS = %v", ax.Name, ax.LHS, ax.RHS)
			}
			// Sets.
			sm := make(map[core.Annot]upstruct.Set)
			senv := func(a core.Annot) upstruct.Set {
				v, ok := sm[a]
				if !ok {
					var elems []string
					for _, c := range []string{"IL", "FR", "US"} {
						if r.Intn(2) == 0 {
							elems = append(elems, c)
						}
					}
					v = upstruct.NewSet(elems...)
					sm[a] = v
				}
				return v
			}
			if !upstruct.Eval(ax.LHS, upstruct.Sets, senv).Equal(upstruct.Eval(ax.RHS, upstruct.Sets, senv)) {
				t.Fatalf("%s fails in Sets:\n  LHS = %v\n  RHS = %v", ax.Name, ax.LHS, ax.RHS)
			}
			// Trust (observational equality).
			tm := make(map[core.Annot]upstruct.Trust)
			tenv := func(a core.Annot) upstruct.Trust {
				v, ok := tm[a]
				if !ok {
					v = upstruct.Score(r.Float64())
					tm[a] = v
				}
				return v
			}
			lt := upstruct.Eval(ax.LHS, trust, tenv)
			rt := upstruct.Eval(ax.RHS, trust, tenv)
			if trust.Trusted(lt) != trust.Trusted(rt) {
				t.Fatalf("%s fails in Trust:\n  LHS = %v\n  RHS = %v", ax.Name, ax.LHS, ax.RHS)
			}
		}
	}
}

// TestAxiomSchemasAreCanonicallyEqual: the Normalize+Minimize canonical
// form identifies both sides of every axiom whose shapes it covers —
// i.e. the rewriting engine internalizes Figure 3.
func TestAxiomSchemasAreCanonicallyEqual(t *testing.T) {
	for _, ax := range core.Axioms() {
		l := core.Minimize(core.Normalize(ax.LHS))
		r := core.Minimize(core.Normalize(ax.RHS))
		if !l.Equal(r) {
			t.Errorf("%s: canonical forms differ\n  LHS %v -> %v\n  RHS %v -> %v",
				ax.Name, ax.LHS, l, ax.RHS, r)
		}
	}
}
