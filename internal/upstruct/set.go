package upstruct

import (
	"sort"
	"strings"
)

// Set is an immutable sorted string set, the domain of the access-control
// semantics of Section 4.1 (items are, e.g., country names). The zero
// value is the empty set.
type Set struct {
	elems []string // sorted, unique
}

// NewSet returns the set of the given elements.
func NewSet(elems ...string) Set {
	if len(elems) == 0 {
		return Set{}
	}
	s := append([]string(nil), elems...)
	sort.Strings(s)
	out := s[:0]
	for i, e := range s {
		if i == 0 || s[i-1] != e {
			out = append(out, e)
		}
	}
	return Set{elems: out}
}

// Len reports the number of elements.
func (s Set) Len() int { return len(s.elems) }

// Contains reports membership of e.
func (s Set) Contains(e string) bool {
	i := sort.SearchStrings(s.elems, e)
	return i < len(s.elems) && s.elems[i] == e
}

// Elems returns the sorted elements. The returned slice must not be
// modified.
func (s Set) Elems() []string { return s.elems }

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	if len(s.elems) != len(o.elems) {
		return false
	}
	for i := range s.elems {
		if s.elems[i] != o.elems[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	if len(s.elems) == 0 {
		return o
	}
	if len(o.elems) == 0 {
		return s
	}
	out := make([]string, 0, len(s.elems)+len(o.elems))
	i, j := 0, 0
	for i < len(s.elems) && j < len(o.elems) {
		switch {
		case s.elems[i] < o.elems[j]:
			out = append(out, s.elems[i])
			i++
		case s.elems[i] > o.elems[j]:
			out = append(out, o.elems[j])
			j++
		default:
			out = append(out, s.elems[i])
			i++
			j++
		}
	}
	out = append(out, s.elems[i:]...)
	out = append(out, o.elems[j:]...)
	return Set{elems: out}
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	var out []string
	i, j := 0, 0
	for i < len(s.elems) && j < len(o.elems) {
		switch {
		case s.elems[i] < o.elems[j]:
			i++
		case s.elems[i] > o.elems[j]:
			j++
		default:
			out = append(out, s.elems[i])
			i++
			j++
		}
	}
	return Set{elems: out}
}

// Diff returns s ∖ o.
func (s Set) Diff(o Set) Set {
	var out []string
	j := 0
	for _, e := range s.elems {
		for j < len(o.elems) && o.elems[j] < e {
			j++
		}
		if j < len(o.elems) && o.elems[j] == e {
			continue
		}
		out = append(out, e)
	}
	return Set{elems: out}
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	return "{" + strings.Join(s.elems, ", ") + "}"
}

// SetStructure is the access-control semantics of Section 4.1 over sets
// (e.g. of country names):
//
//	a +M b = a +I b = a + b := a ∪ b
//	a ·M b := a ∩ b
//	a − b  := a ∖ b
//	0      := ∅
//
// A user with credential c can see a tuple iff c is a member of the
// tuple's specialized provenance. The corresponding semiring
// (P(C), ∪, ∩, ∅, C) satisfies the conditions of Theorem 4.5.
type SetStructure struct{}

// Sets is the shared SetStructure instance.
var Sets Structure[Set] = SetStructure{}

// Zero returns the empty set.
func (SetStructure) Zero() Set { return Set{} }

// PlusI returns a ∪ b.
func (SetStructure) PlusI(a, b Set) Set { return a.Union(b) }

// PlusM returns a ∪ b.
func (SetStructure) PlusM(a, b Set) Set { return a.Union(b) }

// DotM returns a ∩ b.
func (SetStructure) DotM(a, b Set) Set { return a.Intersect(b) }

// Minus returns a ∖ b.
func (SetStructure) Minus(a, b Set) Set { return a.Diff(b) }

// Plus returns a ∪ b.
func (SetStructure) Plus(a, b Set) Set { return a.Union(b) }
