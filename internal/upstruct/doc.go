// Package upstruct implements Update-Structures: the concrete semantics
// that UP[X] provenance expressions can be specialized into (Section 4 of
// Bourhis, Deutch, Moskovitch, SIGMOD 2020).
//
// An Update-Structure is a tuple (K, +M, ·M, −, +I, +, 0) of concrete
// operations over a value domain K satisfying the equivalence axioms of
// the paper's Figure 3 and the zero-related axioms of Section 3.1. Eval
// maps an abstract UP[X] expression into such a structure under a
// valuation of the basic annotations; by Proposition 4.2 this
// specialization commutes with provenance propagation, which is what
// makes post-hoc provenance use (deletion propagation, transaction
// abortion, access control, certification) sound.
//
// The package provides the paper's example structures (Boolean,
// set-based access control, trust certification), the semiring-to-UP[X]
// bridge of Theorem 4.5, a law checker that verifies the axioms on
// sample values, and homomorphism utilities.
package upstruct
