package upstruct

import "fmt"

// Violation describes a failed law instance found by CheckAxioms or
// CheckHomomorphism.
type Violation struct {
	Law    string
	Detail string
}

// Error renders the violation.
func (v Violation) Error() string { return v.Law + ": " + v.Detail }

// CheckAxioms verifies the twelve equivalence axioms of Figure 3 and the
// zero-related axioms of Section 3.1 on every combination of the given
// sample values (axioms with set-indexed sums are checked on small
// instantiations that cover the partition structure). It returns all
// violations found, up to a limit of 32; a structure that returns no
// violations on a representative sample is a plausible Update-Structure,
// and exhaustive samples over a finite domain make the check a proof.
func CheckAxioms[T any](s Structure[T], eq func(a, b T) bool, samples []T) []Violation {
	var out []Violation
	report := func(law string, format string, args ...any) {
		if len(out) < 32 {
			out = append(out, Violation{Law: law, Detail: fmt.Sprintf(format, args...)})
		}
	}
	check := func(law string, lhs, rhs T, vals ...T) {
		if !eq(lhs, rhs) {
			report(law, "lhs=%v rhs=%v for %v", lhs, rhs, vals)
		}
	}
	zero := s.Zero()
	for _, a := range samples {
		// Zero-related axioms.
		check("zero: 0 - a = 0", s.Minus(zero, a), zero, a)
		check("zero: 0 *M a = 0", s.DotM(zero, a), zero, a)
		check("zero: a *M 0 = 0", s.DotM(a, zero), zero, a)
		check("zero: 0 +M a = a", s.PlusM(zero, a), a, a)
		check("zero: 0 +I a = a", s.PlusI(zero, a), a, a)
		check("zero: a +I 0 = a", s.PlusI(a, zero), a, a)
		check("zero: a +M 0 = a", s.PlusM(a, zero), a, a)
		check("zero: a - 0 = a", s.Minus(a, zero), a, a)
		for _, b := range samples {
			// Axiom 4: (a−b)−b = a−b.
			check("axiom 4", s.Minus(s.Minus(a, b), b), s.Minus(a, b), a, b)
			// Axiom 7: (a +I b) − b = a − b.
			check("axiom 7", s.Minus(s.PlusI(a, b), b), s.Minus(a, b), a, b)
			// Axiom 10: (a−b) +I b = a +I b.
			check("axiom 10", s.PlusI(s.Minus(a, b), b), s.PlusI(a, b), a, b)
			for _, c := range samples {
				// Axiom 2: (a +M (b ·M c)) − c = a − c.
				check("axiom 2",
					s.Minus(s.PlusM(a, s.DotM(b, c)), c),
					s.Minus(a, c), a, b, c)
				// Axiom 5 (single summand): a +M ((b−c) ·M c) = a.
				check("axiom 5",
					s.PlusM(a, s.DotM(s.Minus(b, c), c)),
					a, a, b, c)
				// Axiom 6: (a +M (b·M c)) +I c = (a +I c) +M (b ·M c).
				check("axiom 6",
					s.PlusI(s.PlusM(a, s.DotM(b, c)), c),
					s.PlusM(s.PlusI(a, c), s.DotM(b, c)), a, b, c)
				// Axiom 8: a +M ((b +I c) ·M c) = (a +I c) +M (b ·M c).
				check("axiom 8",
					s.PlusM(a, s.DotM(s.PlusI(b, c), c)),
					s.PlusM(s.PlusI(a, c), s.DotM(b, c)), a, b, c)
				// Axiom 9: (a +M (b·M c)) +I c = a +I c.
				check("axiom 9",
					s.PlusI(s.PlusM(a, s.DotM(b, c)), c),
					s.PlusI(a, c), a, b, c)
				for _, d := range samples {
					// Axiom 1: commutativity of modification summands.
					check("axiom 1",
						s.PlusM(s.PlusM(a, s.DotM(b, c)), s.DotM(d, c)),
						s.PlusM(s.PlusM(a, s.DotM(d, c)), s.DotM(b, c)), a, b, c, d)
					// Axiom 5 (two summands): a +M (((b−c)+(d−c)) ·M c) = a.
					check("axiom 5 (two summands)",
						s.PlusM(a, s.DotM(s.Plus(s.Minus(b, c), s.Minus(d, c)), c)),
						a, a, b, c, d)
					// Axiom 11: a +M ((b+d)·M c) = (a +M (b·M c)) +M (d·M c).
					check("axiom 11",
						s.PlusM(a, s.DotM(s.Plus(b, d), c)),
						s.PlusM(s.PlusM(a, s.DotM(b, c)), s.DotM(d, c)), a, b, c, d)
					// Axiom 12: (a−b) +M (c·M b) =
					//           (a−b) +M (((d−b) +M (c·M b)) ·M b).
					check("axiom 12",
						s.PlusM(s.Minus(a, b), s.DotM(c, b)),
						s.PlusM(s.Minus(a, b), s.DotM(s.PlusM(s.Minus(d, b), s.DotM(c, b)), b)), a, b, c, d)
					// Axiom 3 on the partition I = {c, d}, S1 = {c},
					// S2 = {d}, with summands b and a (shape-covering
					// instantiation):
					// (x +M ((c+d)·M p)) +M ((b+a)·M p) =
					//   x +M (((b +M (c·M p)) + (a +M (d·M p))) ·M p)
					for _, p := range samples {
						lhs := s.PlusM(s.PlusM(a, s.DotM(s.Plus(c, d), p)), s.DotM(s.Plus(b, a), p))
						rhs := s.PlusM(a, s.DotM(s.Plus(s.PlusM(b, s.DotM(c, p)), s.PlusM(a, s.DotM(d, p))), p))
						check("axiom 3", lhs, rhs, a, b, c, d, p)
					}
				}
			}
		}
		if len(out) >= 32 {
			break
		}
	}
	return out
}

// CheckHomomorphism verifies that h commutes with every operation of the
// two structures on the given samples (Definition 4.1), returning all
// violations found up to a limit of 32.
func CheckHomomorphism[A, B any](h func(A) B, s1 Structure[A], s2 Structure[B], eq func(a, b B) bool, samples []A) []Violation {
	var out []Violation
	check := func(law string, lhs, rhs B, a, b A) {
		if len(out) < 32 && !eq(lhs, rhs) {
			out = append(out, Violation{Law: law, Detail: fmt.Sprintf("lhs=%v rhs=%v for %v,%v", lhs, rhs, a, b)})
		}
	}
	if !eq(h(s1.Zero()), s2.Zero()) {
		out = append(out, Violation{Law: "h(0) = 0", Detail: fmt.Sprintf("h(0)=%v", h(s1.Zero()))})
	}
	for _, a := range samples {
		for _, b := range samples {
			check("h(a +I b)", h(s1.PlusI(a, b)), s2.PlusI(h(a), h(b)), a, b)
			check("h(a +M b)", h(s1.PlusM(a, b)), s2.PlusM(h(a), h(b)), a, b)
			check("h(a *M b)", h(s1.DotM(a, b)), s2.DotM(h(a), h(b)), a, b)
			check("h(a - b)", h(s1.Minus(a, b)), s2.Minus(h(a), h(b)), a, b)
			check("h(a + b)", h(s1.Plus(a, b)), s2.Plus(h(a), h(b)), a, b)
		}
	}
	return out
}
