package upstruct

// BoolStructure is the deletion-propagation / transaction-abortion
// semantics of Section 4.1:
//
//	a +M b = a +I b = a + b := a ∨ b
//	a ·M b := a ∧ b
//	a − b  := a ∧ ¬b
//	0      := false
//
// Assigning false to a tuple annotation simulates deleting that tuple
// from the input database; assigning false to a transaction annotation
// simulates aborting that transaction. A tuple is present in the
// hypothetical result iff its provenance evaluates to true.
type BoolStructure struct{}

// Bool is the shared BoolStructure instance.
var Bool Structure[bool] = BoolStructure{}

// Zero returns false.
func (BoolStructure) Zero() bool { return false }

// PlusI returns a ∨ b.
func (BoolStructure) PlusI(a, b bool) bool { return a || b }

// PlusM returns a ∨ b.
func (BoolStructure) PlusM(a, b bool) bool { return a || b }

// DotM returns a ∧ b.
func (BoolStructure) DotM(a, b bool) bool { return a && b }

// Minus returns a ∧ ¬b.
func (BoolStructure) Minus(a, b bool) bool { return a && !b }

// Plus returns a ∨ b.
func (BoolStructure) Plus(a, b bool) bool { return a || b }
