package workload_test

import (
	"context"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/workload"
)

func TestGenerateBasic(t *testing.T) {
	cfg := workload.Config{Tuples: 500, Pool: 50, Group: 5, Updates: 100, QueriesPerTxn: 4, MergeRatio: 0.2, Seed: 7}
	d, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTuples() != 500 {
		t.Fatalf("tuples = %d, want 500", d.NumTuples())
	}
	if got := db.CountQueries(txns); got != 100 {
		t.Fatalf("queries = %d, want 100", got)
	}
	for i := range txns {
		if err := txns[i].Validate(d.Schema()); err != nil {
			t.Fatalf("transaction %d invalid: %v", i, err)
		}
		if len(txns[i].Updates) > 4 {
			t.Fatalf("transaction %d has %d queries, want ≤ 4", i, len(txns[i].Updates))
		}
	}
	if err := d.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := workload.Default(0.001)
	d1, t1, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, t2, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) || len(t1) != len(t2) {
		t.Fatal("same config must generate identical workloads")
	}
}

func TestGroupSelectivity(t *testing.T) {
	// Each delete/modify query must affect exactly Group tuples on the
	// initial database.
	cfg := workload.Config{Tuples: 1000, Pool: 100, Group: 10, Updates: 40, Seed: 3}
	d, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := range txns {
		for _, u := range txns[i].Updates {
			if u.Kind == db.OpInsert {
				continue
			}
			n := 0
			d.Instance("R").Each(func(tu db.Tuple) {
				if u.Sel.Matches(tu) {
					n++
				}
			})
			if n != cfg.Group {
				t.Fatalf("query %v matches %d tuples, want %d", u, n, cfg.Group)
			}
			checked++
		}
		if checked > 0 {
			break // only against the pristine initial database
		}
	}
	if checked == 0 {
		t.Skip("first transaction had only inserts")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := workload.Generate(workload.Config{Tuples: 10, Pool: 100, Updates: 1}); err == nil {
		t.Error("pool larger than table accepted")
	}
	if _, _, err := workload.Generate(workload.Config{Tuples: 100, Pool: 10, Group: 20, Updates: 1}); err == nil {
		t.Error("group larger than pool accepted")
	}
}

func TestDefaultScaling(t *testing.T) {
	c := workload.Default(0.1)
	if c.Tuples != 100000 {
		t.Errorf("Tuples = %d, want 100000", c.Tuples)
	}
	if c.Pool != 100000/5000 {
		t.Errorf("Pool = %d, want 0.02%% of tuples", c.Pool)
	}
	tiny := workload.Default(0.00001)
	if tiny.Tuples < 100 || tiny.Pool < 10 {
		t.Errorf("degenerate default config: %+v", tiny)
	}
}

// TestProvenanceOverSyntheticWorkload is the synthetic counterpart of
// the TPC-C integration test: both engines agree with plain set
// semantics, and the normal form stays smaller than the naive
// representation on an update-heavy pool.
func TestProvenanceOverSyntheticWorkload(t *testing.T) {
	cfg := workload.Config{Tuples: 400, Pool: 20, Group: 2, Updates: 120, MergeRatio: 0.2, Seed: 11}
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := initial.Clone()
	if err := plain.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	sizes := map[engine.Mode]int64{}
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		e := engine.New(mode, initial, engine.WithInitialAnnotations(func(rel string, tu db.Tuple) core.Annot {
			return core.TupleAnnot(workload.PoolAnnotName(tu[0].Int()))
		}))
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		if !engine.LiveDB(e).Equal(plain) {
			t.Fatalf("%v: live DB diverges:\n%s", mode, engine.LiveDB(e).Diff(plain))
		}
		sizes[mode] = e.ProvSize()
	}
	if sizes[engine.ModeNormalForm] > sizes[engine.ModeNaive] {
		t.Errorf("normal form (%d) larger than naive (%d) on update-heavy pool",
			sizes[engine.ModeNormalForm], sizes[engine.ModeNaive])
	}
}

func TestGenerateMultiColumn(t *testing.T) {
	cfg := workload.Config{Tuples: 800, Group: 80, Updates: 200, QueriesPerTxn: 4, Seed: 41}
	d, txns, err := workload.GenerateMultiColumn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTuples() != 800 {
		t.Fatalf("tuples = %d, want 800", d.NumTuples())
	}
	if got := db.CountQueries(txns); got != 200 {
		t.Fatalf("queries = %d, want 200", got)
	}

	// The selection mix must cover every planner path: single pinned
	// column, two pinned columns, = mixed with ≠, and ≠-only — and no
	// selection may pin every attribute (that would route to the
	// point-lookup fast path and bypass the scan planner entirely).
	var singlePin, doublePin, mixed, notEqOnly int
	for i := range txns {
		if err := txns[i].Validate(d.Schema()); err != nil {
			t.Fatalf("transaction %d invalid: %v", i, err)
		}
		for _, u := range txns[i].Updates {
			if u.Sel == nil { // inserts
				continue
			}
			if _, pinned := u.Sel.PinnedTuple(); pinned {
				t.Fatalf("selection %v pins every attribute", u.Sel)
			}
			var consts, notEqs int
			for _, term := range u.Sel {
				if term.IsConst() {
					consts++
				} else if len(term.NotEq()) > 0 {
					notEqs++
				}
			}
			switch {
			case consts == 1 && notEqs == 0:
				singlePin++
			case consts == 2:
				doublePin++
			case consts == 1 && notEqs == 1:
				mixed++
			case consts == 0 && notEqs == 1:
				notEqOnly++
			}
		}
	}
	if singlePin == 0 || doublePin == 0 || mixed == 0 || notEqOnly == 0 {
		t.Fatalf("selection mix incomplete: single=%d double=%d mixed=%d noteq=%d",
			singlePin, doublePin, mixed, notEqOnly)
	}

	// Replayable on the plain database and deterministic by seed.
	if err := d.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	d2, t2, err := workload.GenerateMultiColumn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != len(txns) {
		t.Fatal("same config must generate identical workloads")
	}
	if err := d2.ApplyAll(t2); err != nil {
		t.Fatal(err)
	}
	if !d.Equal(d2) {
		t.Fatal("same config must generate identical workloads")
	}
}
