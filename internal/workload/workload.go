// Package workload generates the synthetic dataset and update sequences
// of the paper's experimental evaluation (Sections 6.1 and 6.3): a large
// uniformly random table and sequences of hyperplane update queries with
// a uniformly random type mix, whose selections go over a numeric
// column. Two knobs control the experiments of Figure 9: the total
// number of tuples a transaction may affect (the "pool"), and the number
// of tuples affected by each individual query (the "group" selected by
// the numeric column).
package workload

import (
	"fmt"
	"math/rand"

	"hyperprov/internal/db"
)

// Config parameterizes the generator. The defaults (via Default) follow
// Section 6.2: a 1M-tuple table scaled down by the caller, 200 affected
// tuples (0.02%), one tuple per query.
type Config struct {
	// Tuples is the initial table size (the paper uses 1,000,000).
	Tuples int
	// Pool is the total number of distinct initial tuples that the
	// update sequence may affect (the paper's "affected tuples",
	// 200–1000 in Figure 9a).
	Pool int
	// Group is the number of tuples affected by each delete/modify
	// query (Figure 9b varies this from 200 to 1000; elsewhere it is 1).
	Group int
	// Updates is the number of update queries to generate.
	Updates int
	// QueriesPerTxn groups consecutive queries under one transaction
	// annotation (1 = one annotation per query).
	QueriesPerTxn int
	// MergeRatio is the fraction of modification queries that collapse
	// their whole group into a single tuple, exercising Σ provenance.
	MergeRatio float64
	// Seed makes generation deterministic.
	Seed int64
}

// Default returns the Section 6.2 configuration at the given scale
// factor: scale=1.0 is the paper's 1M-tuple table with a 200-tuple pool
// and 2000 updates.
func Default(scale float64) Config {
	n := int(1_000_000 * scale)
	if n < 100 {
		n = 100
	}
	pool := n / 5000 // 0.02%
	if pool < 10 {
		pool = 10
	}
	// The update count scales with the database so that the paper's
	// ratio of ~10 updates per affected tuple is preserved at every
	// scale: the naive representation grows combinatorially in
	// updates-per-tuple (Proposition 5.1), so a fixed 2000-update log
	// over a tiny pool would not be a scaled-down version of the
	// paper's experiment but a different (adversarial) one.
	updates := int(2000 * scale)
	if updates < 20 {
		updates = 20
	}
	return Config{
		Tuples:        n,
		Pool:          pool,
		Group:         1,
		Updates:       updates,
		QueriesPerTxn: 10, // TPC-C-like transaction length
		MergeRatio:    0.1,
		Seed:          1,
	}
}

// Schema returns the synthetic relation: an id, the numeric selection
// column grp, a categorical column, a numeric payload val and a string
// payload.
func Schema() *db.Schema {
	return db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "id", Kind: db.KindInt},
		db.Attribute{Name: "grp", Kind: db.KindInt},
		db.Attribute{Name: "cat", Kind: db.KindString},
		db.Attribute{Name: "val", Kind: db.KindInt},
		db.Attribute{Name: "pad", Kind: db.KindString},
	))
}

var cats = []string{"alpha", "beta", "gamma", "delta"}

// Generate builds the initial database and the update-query sequence for
// the configuration. The first cfg.Pool tuples form the affected pool,
// partitioned into groups of cfg.Group consecutive tuples sharing a grp
// value; all other tuples carry grp values no query selects. Query types
// are drawn uniformly (insert / delete / modify); deletes and modifies
// select one pool group through the numeric grp column, and inserts add
// fresh tuples into a pool group.
func Generate(cfg Config) (*db.Database, []db.Transaction, error) {
	if cfg.Group <= 0 {
		cfg.Group = 1
	}
	if cfg.Pool <= 0 || cfg.Pool > cfg.Tuples {
		return nil, nil, fmt.Errorf("workload: pool %d out of range (tuples %d)", cfg.Pool, cfg.Tuples)
	}
	if cfg.Group > cfg.Pool {
		return nil, nil, fmt.Errorf("workload: group %d exceeds pool %d", cfg.Group, cfg.Pool)
	}
	if cfg.QueriesPerTxn <= 0 {
		cfg.QueriesPerTxn = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := db.NewDatabase(Schema())
	groups := cfg.Pool / cfg.Group
	if groups == 0 {
		groups = 1
	}
	for i := 0; i < cfg.Tuples; i++ {
		grp := int64(-1 - i) // unaffected region: unique negative grp
		if i < cfg.Pool {
			grp = int64(i % groups)
		}
		t := db.Tuple{
			db.I(int64(i)),
			db.I(grp),
			db.S(cats[r.Intn(len(cats))]),
			db.I(int64(r.Intn(100))),
			db.S("payload"),
		}
		if err := d.InsertTuple("R", t); err != nil {
			return nil, nil, err
		}
	}
	nextID := int64(cfg.Tuples)
	var txns []db.Transaction
	var cur *db.Transaction
	for q := 0; q < cfg.Updates; q++ {
		if cur == nil || len(cur.Updates) == cfg.QueriesPerTxn {
			txns = append(txns, db.Transaction{Label: fmt.Sprintf("q%d", len(txns))})
			cur = &txns[len(txns)-1]
		}
		grp := int64(r.Intn(groups))
		sel := db.Pattern{
			db.AnyVar("id"),
			db.Const(db.I(grp)),
			db.AnyVar("cat"),
			db.AnyVar("val"),
			db.AnyVar("pad"),
		}
		switch r.Intn(3) {
		case 0: // insert a fresh tuple into the selected pool group
			t := db.Tuple{
				db.I(nextID),
				db.I(grp),
				db.S(cats[r.Intn(len(cats))]),
				db.I(int64(r.Intn(100))),
				db.S("payload"),
			}
			nextID++
			cur.Updates = append(cur.Updates, db.Insert("R", t))
		case 1: // delete the selected group
			cur.Updates = append(cur.Updates, db.Delete("R", sel))
		default: // modify the selected group
			set := []db.SetClause{db.Keep(), db.Keep(), db.Keep(), db.SetTo(db.I(int64(r.Intn(100)))), db.Keep()}
			if r.Float64() < cfg.MergeRatio {
				// Collapse the whole group into one tuple.
				set[0] = db.SetTo(db.I(nextID))
				nextID++
			}
			cur.Updates = append(cur.Updates, db.Modify("R", sel, set))
		}
	}
	return d, txns, nil
}

// GeneratePinned builds an initial database and an update sequence in
// which every selection is a fully pinned constant pattern: each delete
// and modify names one concrete live tuple (tracked through a mirror of
// the database state). Under the sharded engine such updates route to a
// single shard and resolve with an O(1) point lookup instead of an
// O(rows) scan, so this workload isolates the shard-routing fast path —
// it is the input of the sharded-apply benchmarks.
func GeneratePinned(cfg Config) (*db.Database, []db.Transaction, error) {
	if cfg.QueriesPerTxn <= 0 {
		cfg.QueriesPerTxn = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := db.NewDatabase(Schema())
	live := make([]db.Tuple, 0, cfg.Tuples)
	for i := 0; i < cfg.Tuples; i++ {
		t := db.Tuple{
			db.I(int64(i)),
			db.I(int64(i)),
			db.S(cats[r.Intn(len(cats))]),
			db.I(int64(r.Intn(100))),
			db.S("payload"),
		}
		if err := d.InsertTuple("R", t); err != nil {
			return nil, nil, err
		}
		live = append(live, t)
	}
	nextID := int64(cfg.Tuples)
	// Modified tuples receive globally fresh val values so that a modify
	// never collides with (and merges into) another live tuple: the
	// mirror then remains an exact image of the database.
	nextVal := int64(1_000_000)
	var txns []db.Transaction
	var cur *db.Transaction
	for q := 0; q < cfg.Updates; q++ {
		if cur == nil || len(cur.Updates) == cfg.QueriesPerTxn {
			txns = append(txns, db.Transaction{Label: fmt.Sprintf("q%d", len(txns))})
			cur = &txns[len(txns)-1]
		}
		op := r.Intn(3)
		if len(live) == 0 {
			op = 0
		}
		switch op {
		case 0: // insert a fresh tuple
			t := db.Tuple{
				db.I(nextID),
				db.I(nextID),
				db.S(cats[r.Intn(len(cats))]),
				db.I(int64(r.Intn(100))),
				db.S("payload"),
			}
			nextID++
			cur.Updates = append(cur.Updates, db.Insert("R", t))
			live = append(live, t)
		case 1: // delete one concrete live tuple
			i := r.Intn(len(live))
			t := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			cur.Updates = append(cur.Updates, db.Delete("R", db.ConstPattern(t)))
		default: // modify one concrete live tuple's payload value
			i := r.Intn(len(live))
			t := live[i]
			set := []db.SetClause{db.Keep(), db.Keep(), db.Keep(), db.SetTo(db.I(nextVal)), db.Keep()}
			nt := append(db.Tuple(nil), t...)
			nt[3] = db.I(nextVal)
			nextVal++
			live[i] = nt
			cur.Updates = append(cur.Updates, db.Modify("R", db.ConstPattern(t), set))
		}
	}
	return d, txns, nil
}

// GenerateMultiColumn builds an initial database and an update sequence
// whose selections pin *some* columns — the workload the scan planner is
// for. Tuples are spread over cfg.Tuples/cfg.Group grp values and the
// four cat values; deletes and modifies draw their selection shape from
// a fixed mix:
//
//   - grp pinned, everything else free (single-index scan),
//   - grp and cat both pinned (multi-candidate: planner picks the
//     shorter posting list, possibly intersecting),
//   - grp pinned with a ≠ constraint on cat (mixed =/≠: the = column
//     can use its index, the ≠ filters per row),
//   - rarely, only a ≠ constraint on cat (no =-pinned column: the
//     planner's full-scan fallback, excluding every cat so the shape
//     costs a scan but matches nothing).
//
// No selection pins every attribute, so under a sharded engine every
// delete/modify fans out and exercises per-shard scans rather than the
// point-lookup routing fast path.
func GenerateMultiColumn(cfg Config) (*db.Database, []db.Transaction, error) {
	if cfg.Group <= 0 {
		cfg.Group = 1
	}
	if cfg.QueriesPerTxn <= 0 {
		cfg.QueriesPerTxn = 1
	}
	groups := cfg.Tuples / cfg.Group
	if groups <= 0 {
		groups = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := db.NewDatabase(Schema())
	for i := 0; i < cfg.Tuples; i++ {
		t := db.Tuple{
			db.I(int64(i)),
			db.I(int64(i % groups)),
			db.S(cats[i%len(cats)]),
			db.I(int64(r.Intn(100))),
			db.S("payload"),
		}
		if err := d.InsertTuple("R", t); err != nil {
			return nil, nil, err
		}
	}
	nextID := int64(cfg.Tuples)
	var txns []db.Transaction
	var cur *db.Transaction
	for q := 0; q < cfg.Updates; q++ {
		if cur == nil || len(cur.Updates) == cfg.QueriesPerTxn {
			txns = append(txns, db.Transaction{Label: fmt.Sprintf("q%d", len(txns))})
			cur = &txns[len(txns)-1]
		}
		grp := int64(r.Intn(groups))
		cat := cats[r.Intn(len(cats))]
		sel := db.Pattern{
			db.AnyVar("id"),
			db.Const(db.I(grp)),
			db.AnyVar("cat"),
			db.AnyVar("val"),
			db.AnyVar("pad"),
		}
		switch shape := r.Intn(20); {
		case shape < 5: // grp and cat both pinned
			sel[2] = db.Const(db.S(cat))
		case shape < 10: // grp pinned, cat ≠-constrained
			sel[2] = db.VarNotEq("cat", db.S(cat))
		case shape == 10: // ≠-only: no =-pinned column, full-scan fallback.
			// Excluding every cat makes the selection match nothing, so
			// the shape costs exactly one relation scan on every access
			// path — it exercises the planner's fallback without the
			// O(n) annotation churn a broad ≠ match would add to both
			// sides of a comparison.
			notEq := make([]db.Value, len(cats))
			for i, c := range cats {
				notEq[i] = db.S(c)
			}
			sel[1] = db.AnyVar("grp")
			sel[2] = db.VarNotEq("cat", notEq...)
		}
		switch r.Intn(4) {
		case 0: // insert a fresh tuple into the selected group
			t := db.Tuple{
				db.I(nextID),
				db.I(grp),
				db.S(cat),
				db.I(int64(r.Intn(100))),
				db.S("payload"),
			}
			nextID++
			cur.Updates = append(cur.Updates, db.Insert("R", t))
		case 1: // delete the selection
			cur.Updates = append(cur.Updates, db.Delete("R", sel))
		default: // modify the selection's payload value
			set := []db.SetClause{db.Keep(), db.Keep(), db.Keep(), db.SetTo(db.I(int64(r.Intn(100)))), db.Keep()}
			cur.Updates = append(cur.Updates, db.Modify("R", sel, set))
		}
	}
	return d, txns, nil
}

// PoolAnnotName names the annotation of the i'th pool tuple when engines
// are constructed with InitialAnnotations (see InitialAnnotations).
func PoolAnnotName(id int64) string { return fmt.Sprintf("x%d", id) }

// InitialAnnotations returns an annotation naming function that names
// every tuple after its id column, so experiments can target specific
// pool tuples for deletion propagation.
func InitialAnnotations() func(rel string, t db.Tuple) string {
	return func(rel string, t db.Tuple) string {
		return PoolAnnotName(t[0].Int())
	}
}
