package provstore

import (
	"sync"

	"hyperprov/internal/core"
)

// Parallel node-table construction. Workers pre-walk disjoint chunks of
// the annotation list into local node tables — each a children-first
// first-visit ordering of the chunk's expression DAG, deduplicated
// locally — and a sequential merge replays the local lists in chunk
// order through Encoder.addFlat. Because the merge deduplicates against
// everything already emitted and visits nodes in exactly the order a
// sequential encode of the same annotation list would first reach them,
// the assigned ids, the node table, and hence the snapshot bytes are
// identical to the sequential encoder's.

// localNode is one node of a worker's private table; kids are local
// ids, remapped to global ids during the merge.
type localNode struct {
	expr *core.Expr
	kids []int
}

type localDedup struct {
	expr *core.Expr
	id   int
}

type localTable struct {
	nodes []localNode
	ptr   map[*core.Expr]int
	index map[uint64][]localDedup
	roots []int // local root id per annotation of the chunk
}

func buildLocal(anns []*core.Expr) *localTable {
	lt := &localTable{
		ptr:   make(map[*core.Expr]int),
		index: make(map[uint64][]localDedup),
	}
	for _, ann := range anns {
		lt.roots = append(lt.roots, lt.add(ann))
	}
	return lt
}

// add mirrors Encoder.add — pointer fast path, fingerprint-bucket
// fallback, children first — without emitting any bytes.
func (lt *localTable) add(x *core.Expr) int {
	if id, ok := lt.ptr[x]; ok {
		return id
	}
	h := x.Hash()
	for _, prev := range lt.index[h] {
		if prev.expr == x || prev.expr.Equal(x) {
			lt.ptr[x] = prev.id
			return prev.id
		}
	}
	var kids []int
	if n := x.NumChildren(); n > 0 {
		kids = make([]int, n)
		for i := 0; i < n; i++ {
			kids[i] = lt.add(x.Child(i))
		}
	}
	id := len(lt.nodes)
	lt.nodes = append(lt.nodes, localNode{expr: x, kids: kids})
	lt.ptr[x] = id
	lt.index[h] = append(lt.index[h], localDedup{expr: x, id: id})
	return id
}

// encodeAll writes every annotation into the encoder's node table and
// returns their node ids, using up to workers goroutines for the
// expression walks. workers <= 1 (or a trivially small input) is the
// plain sequential path; the outputs are byte-identical either way.
func encodeAll(enc *Encoder, anns []*core.Expr, workers int) ([]uint64, error) {
	ids := make([]uint64, len(anns))
	if workers <= 1 || len(anns) < 2*workers {
		for i, ann := range anns {
			id, err := enc.Add(ann)
			if err != nil {
				return nil, err
			}
			ids[i] = id
		}
		return ids, enc.Flush()
	}
	per := (len(anns) + workers - 1) / workers
	type span struct{ start, end int }
	var spans []span
	for s := 0; s < len(anns); s += per {
		spans = append(spans, span{s, min(s+per, len(anns))})
	}
	tables := make([]*localTable, len(spans))
	var wg sync.WaitGroup
	for i := range spans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i] = buildLocal(anns[spans[i].start:spans[i].end])
		}(i)
	}
	wg.Wait()
	// Sequential merge in chunk order: replay each local table through
	// the shared encoder, remapping local child ids to global ones.
	for ci, lt := range tables {
		global := make([]uint64, len(lt.nodes))
		for ni, n := range lt.nodes {
			gk := make([]uint64, len(n.kids))
			for k, lk := range n.kids {
				gk[k] = global[lk]
			}
			global[ni] = enc.addFlat(n.expr, gk)
		}
		for k, root := range lt.roots {
			ids[spans[ci].start+k] = global[root]
		}
	}
	return ids, enc.Flush()
}
