package provstore_test

import (
	"bytes"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
)

// FuzzReadExpr checks the expression decoder never panics and that
// everything it accepts is a well-formed expression that re-encodes.
func FuzzReadExpr(f *testing.F) {
	// Seed with a valid encoding.
	var buf bytes.Buffer
	e := core.PlusM(core.TupleVar("a"), core.DotM(core.Sum(core.TupleVar("b"), core.Zero()), core.QueryVar("p")))
	if err := provstore.WriteExpr(&buf, e); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := provstore.ReadExpr(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := provstore.WriteExpr(&out, x); err != nil {
			t.Fatalf("accepted expression does not re-encode: %v", err)
		}
		back, err := provstore.ReadExpr(&out)
		if err != nil || !back.Equal(x) {
			t.Fatalf("re-encoded expression does not round trip: %v", err)
		}
	})
}

// FuzzLoadSnapshot checks the snapshot loader never panics and that
// everything it accepts round-trips through SaveSnapshot.
func FuzzLoadSnapshot(f *testing.F) {
	sch := exampleSnapshotBytes(f)
	f.Add(sch)
	f.Add([]byte("HPRV1\n"))
	f.Add([]byte{})
	// Truncations of a valid snapshot exercise every mid-structure EOF
	// path; single-bit flips exercise the malformed-tag and bad-count
	// paths with otherwise plausible surroundings.
	for _, cut := range []int{7, len(sch) / 4, len(sch) / 2, len(sch) - 1} {
		if cut > 0 && cut < len(sch) {
			f.Add(sch[:cut])
		}
	}
	for _, pos := range []int{8, len(sch) / 3, len(sch) / 2, len(sch) - 2} {
		if pos > 0 && pos < len(sch) {
			flipped := bytes.Clone(sch)
			flipped[pos] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := provstore.LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := provstore.SaveSnapshot(&out, e); err != nil {
			t.Fatalf("accepted snapshot does not re-save: %v", err)
		}
		if _, err := provstore.LoadSnapshot(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-saved snapshot does not load: %v", err)
		}
	})
}

func exampleSnapshotBytes(f *testing.F) []byte {
	f.Helper()
	sch, err := dbSchemaForFuzz()
	if err != nil {
		f.Fatal(err)
	}
	e := engine.NewEmpty(engine.ModeNormalForm, sch)
	if err := e.RestoreRow("R", fuzzTuple(), core.PlusI(core.TupleVar("x"), core.QueryVar("p"))); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func dbSchemaForFuzz() (*db.Schema, error) {
	rel, err := db.NewRelationSchema("R",
		db.Attribute{Name: "a", Kind: db.KindInt},
		db.Attribute{Name: "b", Kind: db.KindString},
		db.Attribute{Name: "c", Kind: db.KindFloat},
	)
	if err != nil {
		return nil, err
	}
	return db.NewSchema(rel)
}

func fuzzTuple() db.Tuple {
	return db.Tuple{db.I(1), db.S("x"), db.F(2.5)}
}
