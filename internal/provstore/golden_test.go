package provstore_test

// Golden-file compatibility for the snapshot format across the
// hash-consing change. The fixtures under testdata were produced by the
// pre-interning encoder (same workload for both engine modes:
// Tuples=40, Pool=10, Group=2, Updates=30, QueriesPerTxn=3,
// MergeRatio=0.5, Seed=42). The interned encoder takes a pointer
// fast-path, but dedup classes and id assignment must be unchanged, so
//
//   - the old bytes still load, to an engine with the expected shape, and
//   - re-saving the loaded engine reproduces the fixture byte for byte,
//     and saving twice is stable.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hyperprov/internal/provstore"
)

func TestGoldenPreInterningSnapshots(t *testing.T) {
	cases := []struct {
		file          string
		rows, support int
		provSize      int64
	}{
		{"pre_interning_naive.snap", 89, 89, 1207},
		{"pre_interning_nf.snap", 87, 85, 743},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			e, err := provstore.LoadSnapshot(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("loading pre-interning fixture: %v", err)
			}
			if got := e.NumRows(); got != tc.rows {
				t.Errorf("rows = %d, want %d", got, tc.rows)
			}
			if got := e.SupportSize(); got != tc.support {
				t.Errorf("support = %d, want %d", got, tc.support)
			}
			if got := e.ProvSize(); got != tc.provSize {
				t.Errorf("prov size = %d, want %d", got, tc.provSize)
			}

			var out1 bytes.Buffer
			if err := provstore.SaveSnapshot(&out1, e); err != nil {
				t.Fatalf("re-saving: %v", err)
			}
			if !bytes.Equal(out1.Bytes(), raw) {
				t.Fatalf("re-saved snapshot differs from the pre-interning fixture: %d bytes vs %d", out1.Len(), len(raw))
			}

			// Double-save through a fresh load: still byte-identical.
			e2, err := provstore.LoadSnapshot(bytes.NewReader(out1.Bytes()))
			if err != nil {
				t.Fatalf("reloading: %v", err)
			}
			var out2 bytes.Buffer
			if err := provstore.SaveSnapshot(&out2, e2); err != nil {
				t.Fatalf("second save: %v", err)
			}
			if !bytes.Equal(out2.Bytes(), raw) {
				t.Fatal("second-generation snapshot drifted from the fixture bytes")
			}
		})
	}
}
