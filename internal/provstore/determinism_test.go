package provstore_test

import (
	"bytes"
	"context"
	"testing"

	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
	"hyperprov/internal/workload"
)

func snapshotBytes(t *testing.T, e engine.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotBytesDeterministic asserts that snapshot serialization is
// a pure function of the engine state: two SaveSnapshot calls on the
// same engine produce byte-identical output, and a save→load→save
// cycle is byte-idempotent. Both held as long as row iteration is
// deterministic; they broke when EachRow iterated the rows map, whose
// order reshuffles node-table ids between passes.
func TestSnapshotBytesDeterministic(t *testing.T) {
	cfg := workload.Default(0.002)
	cfg.QueriesPerTxn = 5
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		t.Run(mode.String(), func(t *testing.T) {
			e := engine.New(mode, initial)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}

			first := snapshotBytes(t, e)
			second := snapshotBytes(t, e)
			if !bytes.Equal(first, second) {
				t.Fatalf("two SaveSnapshot calls differ: %d vs %d bytes", len(first), len(second))
			}

			restored, err := provstore.LoadSnapshot(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			again := snapshotBytes(t, restored)
			if !bytes.Equal(first, again) {
				t.Fatalf("save→load→save is not byte-idempotent: %d vs %d bytes", len(first), len(again))
			}
		})
	}
}
