package provstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// snapshotMagic identifies the snapshot format (version 1).
const snapshotMagic = "HPRV1\n"

// SaveSnapshot persists the engine's entire annotated database: the
// schema, one shared expression node table (structurally deduplicated),
// and every stored row — including tombstones — with a reference into
// the table. The result can be restored with LoadSnapshot into either
// engine mode.
func SaveSnapshot(w io.Writer, e *engine.Engine) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(e.Mode())); err != nil {
		return err
	}
	schema := e.Schema()
	names := schema.Names()
	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		rel := schema.Relation(name)
		writeString(bw, rel.Name)
		writeUvarint(bw, uint64(len(rel.Attrs)))
		for _, a := range rel.Attrs {
			writeString(bw, a.Name)
			_ = bw.WriteByte(byte(a.Kind))
		}
	}

	// First pass: encode every annotation into the shared node table and
	// remember each row's node id. Engine.Rows iterates relations in
	// schema order and rows in insertion order under one read lock, so
	// the snapshot is a consistent cut (safe while transactions apply
	// concurrently) and its bytes are deterministic: two saves of the
	// same engine state are byte-identical.
	var table bytes.Buffer
	enc := NewEncoder(&table)
	type rowRef struct {
		tuple db.Tuple
		id    uint64
	}
	rows := make(map[string][]rowRef, len(names))
	var encErr error
	e.Rows(func(name string, t db.Tuple, ann *core.Expr) {
		if encErr != nil {
			return
		}
		id, err := enc.Add(ann)
		if err != nil {
			encErr = err
			return
		}
		rows[name] = append(rows[name], rowRef{tuple: t, id: id})
	})
	if encErr != nil {
		return encErr
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	writeUvarint(bw, enc.Len())
	if _, err := bw.Write(table.Bytes()); err != nil {
		return err
	}

	// Second pass: rows per relation.
	for _, name := range names {
		rel := schema.Relation(name)
		writeUvarint(bw, uint64(len(rows[name])))
		for _, rr := range rows[name] {
			for i, v := range rr.tuple {
				if err := writeValue(bw, rel.Attrs[i].Kind, v); err != nil {
					return err
				}
			}
			writeUvarint(bw, rr.id)
		}
	}
	return bw.Flush()
}

// LoadSnapshot restores an annotated database saved by SaveSnapshot.
// The engine mode is taken from the snapshot; in normal-form mode every
// restored annotation becomes the tuple's base expression.
func LoadSnapshot(r io.Reader, opts ...engine.Option) (*engine.Engine, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("provstore: bad snapshot magic %q", magic)
	}
	modeByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	mode := engine.Mode(modeByte)
	if mode != engine.ModeNaive && mode != engine.ModeNormalForm {
		return nil, fmt.Errorf("provstore: unknown engine mode %d", modeByte)
	}
	nRels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nRels > 1<<16 {
		return nil, fmt.Errorf("provstore: implausible relation count %d", nRels)
	}
	rels := make([]*db.RelationSchema, 0, nRels)
	for i := uint64(0); i < nRels; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		nAttrs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nAttrs > 1<<16 {
			return nil, fmt.Errorf("provstore: implausible attribute count %d", nAttrs)
		}
		attrs := make([]db.Attribute, 0, nAttrs)
		for j := uint64(0); j < nAttrs; j++ {
			aname, err := readString(br)
			if err != nil {
				return nil, err
			}
			kind, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, db.Attribute{Name: aname, Kind: db.Kind(kind)})
		}
		rel, err := db.NewRelationSchema(name, attrs...)
		if err != nil {
			return nil, err
		}
		rels = append(rels, rel)
	}
	schema, err := db.NewSchema(rels...)
	if err != nil {
		return nil, err
	}

	nNodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nNodes > 1<<40 {
		return nil, fmt.Errorf("provstore: implausible node count %d", nNodes)
	}
	dec := NewDecoder(br)
	if err := dec.ReadNodes(nNodes); err != nil {
		return nil, err
	}

	e := engine.NewEmpty(mode, schema, opts...)
	for _, rel := range rels {
		nRows, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nRows; i++ {
			t := make(db.Tuple, len(rel.Attrs))
			for j, a := range rel.Attrs {
				v, err := readValue(br, a.Kind)
				if err != nil {
					return nil, err
				}
				t[j] = v
			}
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			ann, err := dec.Expr(id)
			if err != nil {
				return nil, err
			}
			if err := e.RestoreRow(rel.Name, t, ann); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("provstore: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(w *bufio.Writer, kind db.Kind, v db.Value) error {
	if v.Kind() != kind {
		return fmt.Errorf("provstore: value kind %v where %v expected", v.Kind(), kind)
	}
	switch kind {
	case db.KindString:
		writeString(w, v.Str())
	case db.KindInt:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.Int())
		_, _ = w.Write(buf[:n])
	case db.KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		_, _ = w.Write(buf[:])
	default:
		return fmt.Errorf("provstore: unknown kind %v", kind)
	}
	return nil
}

func readValue(r *bufio.Reader, kind db.Kind) (db.Value, error) {
	switch kind {
	case db.KindString:
		s, err := readString(r)
		if err != nil {
			return db.Value{}, err
		}
		return db.S(s), nil
	case db.KindInt:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return db.Value{}, err
		}
		return db.I(i), nil
	case db.KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return db.Value{}, err
		}
		return db.F(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	default:
		return db.Value{}, fmt.Errorf("provstore: unknown kind %v", kind)
	}
}
