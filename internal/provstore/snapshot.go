package provstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// snapshotMagic identifies the snapshot format (version 1).
const snapshotMagic = "HPRV1\n"

// Source is the engine surface the snapshot writer needs: the mode, the
// schema, and one deterministic pass over every stored row. Both
// engine.Engine and engine.ShardedEngine satisfy it (engine.DB embeds
// it), and both stream rows in the same order, so the snapshot bytes
// are independent of the shard count.
type Source interface {
	Mode() engine.Mode
	Schema() *db.Schema
	Rows(f func(rel string, t db.Tuple, ann *core.Expr))
}

// SaveSnapshot persists the engine's entire annotated database: the
// schema, one shared expression node table (structurally deduplicated),
// and every stored row — including tombstones — with a reference into
// the table. The result can be restored with LoadSnapshot into either
// engine mode. Expression walks use GOMAXPROCS workers; see
// SaveSnapshotParallel for the determinism argument.
func SaveSnapshot(w io.Writer, src Source) error {
	return SaveSnapshotParallel(w, src, 0)
}

// SaveSnapshotParallel is SaveSnapshot with the expression encoding
// spread over workers goroutines (0 = GOMAXPROCS). The row list is
// collected in one src.Rows pass — a consistent cut under the source's
// read lock(s), in deterministic order — then workers walk disjoint
// chunks of the annotations into local node tables that merge
// sequentially in chunk order. The merge assigns node ids in exactly
// the first-visit order a sequential encode would use, so the output is
// byte-identical for every worker count (the differential tests check
// this), and byte-identical across engine implementations and shard
// counts.
func SaveSnapshotParallel(w io.Writer, src Source, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(src.Mode())); err != nil {
		return err
	}
	schema := src.Schema()
	names := schema.Names()
	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		rel := schema.Relation(name)
		writeString(bw, rel.Name)
		writeUvarint(bw, uint64(len(rel.Attrs)))
		for _, a := range rel.Attrs {
			writeString(bw, a.Name)
			_ = bw.WriteByte(byte(a.Kind))
		}
	}

	// Collect the rows. Rows holds the engine's read lock(s) for the
	// whole pass, so this is one consistent cut even while transactions
	// apply concurrently; the collected expressions are immutable (the
	// engine never mutates nodes in place), so encoding after the lock
	// is released reads the same values.
	type flatRow struct {
		rel   string
		tuple db.Tuple
		ann   *core.Expr
	}
	var flat []flatRow
	src.Rows(func(name string, t db.Tuple, ann *core.Expr) {
		flat = append(flat, flatRow{rel: name, tuple: t, ann: ann})
	})

	anns := make([]*core.Expr, len(flat))
	for i := range flat {
		anns[i] = flat[i].ann
	}
	var table bytes.Buffer
	enc := NewEncoder(&table)
	ids, err := encodeAll(enc, anns, workers)
	if err != nil {
		return err
	}
	writeUvarint(bw, enc.Len())
	if _, err := bw.Write(table.Bytes()); err != nil {
		return err
	}

	// Rows per relation. Rows visits relations contiguously in schema
	// order, so grouping flat indices by relation preserves row order.
	byRel := make(map[string][]int, len(names))
	for i := range flat {
		byRel[flat[i].rel] = append(byRel[flat[i].rel], i)
	}
	for _, name := range names {
		rel := schema.Relation(name)
		idxs := byRel[name]
		writeUvarint(bw, uint64(len(idxs)))
		for _, i := range idxs {
			for j, v := range flat[i].tuple {
				if err := writeValue(bw, rel.Attrs[j].Kind, v); err != nil {
					return err
				}
			}
			writeUvarint(bw, ids[i])
		}
	}
	return bw.Flush()
}

// LoadSnapshot restores an annotated database saved by SaveSnapshot.
// The engine mode is taken from the snapshot; in normal-form mode every
// restored annotation becomes the tuple's base expression. Options pass
// through to engine.OpenEmpty — engine.WithShards(n) restores into a
// hash-sharded engine; the default is the plain single engine.
func LoadSnapshot(r io.Reader, opts ...engine.Option) (engine.DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic %q", ErrMalformed, magic)
	}
	modeByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	mode := engine.Mode(modeByte)
	if mode != engine.ModeNaive && mode != engine.ModeNormalForm {
		return nil, fmt.Errorf("%w: unknown engine mode %d", ErrMalformed, modeByte)
	}
	nRels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nRels > maxSchemaDim {
		return nil, fmt.Errorf("%w: implausible relation count %d", ErrMalformed, nRels)
	}
	rels := make([]*db.RelationSchema, 0, prealloc(nRels, 256))
	for i := uint64(0); i < nRels; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		nAttrs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nAttrs > maxSchemaDim {
			return nil, fmt.Errorf("%w: implausible attribute count %d", ErrMalformed, nAttrs)
		}
		attrs := make([]db.Attribute, 0, prealloc(nAttrs, 256))
		for j := uint64(0); j < nAttrs; j++ {
			aname, err := readString(br)
			if err != nil {
				return nil, err
			}
			kind, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, db.Attribute{Name: aname, Kind: db.Kind(kind)})
		}
		rel, err := db.NewRelationSchema(name, attrs...)
		if err != nil {
			return nil, err
		}
		rels = append(rels, rel)
	}
	schema, err := db.NewSchema(rels...)
	if err != nil {
		return nil, err
	}

	nNodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nNodes > 1<<40 {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrMalformed, nNodes)
	}
	dec := NewDecoder(br)
	if err := dec.ReadNodes(nNodes); err != nil {
		return nil, err
	}

	e := engine.OpenEmpty(mode, schema, opts...)
	for _, rel := range rels {
		nRows, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nRows; i++ {
			t := make(db.Tuple, len(rel.Attrs))
			for j, a := range rel.Attrs {
				v, err := readValue(br, a.Kind)
				if err != nil {
					return nil, err
				}
				t[j] = v
			}
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			ann, err := dec.Expr(id)
			if err != nil {
				return nil, err
			}
			if err := e.RestoreRow(rel.Name, t, ann); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

// readString reads a uvarint-length-prefixed string, growing the buffer
// in bounded chunks as bytes actually arrive: a hostile length prefix
// costs the attacker proportional input, not a proportional allocation.
func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d too large", ErrMalformed, n)
	}
	const chunk = 64 << 10
	buf := make([]byte, 0, prealloc(n, chunk))
	for uint64(len(buf)) < n {
		take := n - uint64(len(buf))
		if take > chunk {
			take = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, take)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return "", err
		}
	}
	return string(buf), nil
}

func writeValue(w *bufio.Writer, kind db.Kind, v db.Value) error {
	if v.Kind() != kind {
		return fmt.Errorf("provstore: value kind %v where %v expected", v.Kind(), kind)
	}
	switch kind {
	case db.KindString:
		writeString(w, v.Str())
	case db.KindInt:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.Int())
		_, _ = w.Write(buf[:n])
	case db.KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		_, _ = w.Write(buf[:])
	default:
		return fmt.Errorf("provstore: unknown kind %v", kind)
	}
	return nil
}

func readValue(r *bufio.Reader, kind db.Kind) (db.Value, error) {
	switch kind {
	case db.KindString:
		s, err := readString(r)
		if err != nil {
			return db.Value{}, err
		}
		return db.S(s), nil
	case db.KindInt:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return db.Value{}, err
		}
		return db.I(i), nil
	case db.KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return db.Value{}, err
		}
		return db.F(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	default:
		return db.Value{}, fmt.Errorf("provstore: unknown kind %v", kind)
	}
}
