package provstore_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
)

// uv appends a uvarint to b.
func uv(b []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(b, buf[:n]...)
}

// TestHostileCountsAreTyped feeds the decoders inputs whose uvarint
// counts claim absurd sizes backed by almost no bytes. Each must fail
// fast with ErrMalformed or an io error — no panic, and (checked
// indirectly by running at all) no allocation proportional to the
// claimed count.
func TestHostileCountsAreTyped(t *testing.T) {
	cases := map[string][]byte{
		// WriteExpr header: node count 1, root 0, then a sum node
		// claiming 2^20 children with no child bytes behind it.
		"sum-arity-bomb": uv(append(uv(uv(nil, 1), 0), 6), 1<<20),
		// Var node whose name claims 2^20 bytes backed by one.
		"string-length-bomb": append(uv(append(uv(uv(nil, 1), 0), 1, 0), 1<<20), 'x'),
		// Sum arity just over the hard cap.
		"sum-arity-over-cap": uv(append(uv(uv(nil, 1), 0), 6), (1<<24)+1),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := provstore.ReadExpr(bytes.NewReader(data))
			if err == nil {
				t.Fatal("hostile input accepted")
			}
		})
	}

	// The over-cap cases must carry the typed sentinel.
	overCap := uv(append(uv(uv(nil, 1), 0), 6), (1<<24)+1)
	if _, err := provstore.ReadExpr(bytes.NewReader(overCap)); !errors.Is(err, provstore.ErrMalformed) {
		t.Fatalf("over-cap sum arity: err = %v, want ErrMalformed", err)
	}
	overLen := uv(append(uv(uv(nil, 1), 0), 1, 0), (1<<24)+1)
	if _, err := provstore.ReadExpr(bytes.NewReader(overLen)); !errors.Is(err, provstore.ErrMalformed) {
		t.Fatalf("over-cap string length: err = %v, want ErrMalformed", err)
	}
}

// TestHostileSnapshotHeader checks the snapshot loader's structural
// failures carry ErrMalformed.
func TestHostileSnapshotHeader(t *testing.T) {
	bad := func(b []byte) error {
		_, err := provstore.LoadSnapshot(bytes.NewReader(b))
		return err
	}
	if err := bad([]byte("NOPE!\nxxxx")); !errors.Is(err, provstore.ErrMalformed) {
		t.Fatalf("bad magic: err = %v, want ErrMalformed", err)
	}
	if err := bad([]byte("HPRV1\n\xff")); !errors.Is(err, provstore.ErrMalformed) {
		t.Fatalf("bad mode: err = %v, want ErrMalformed", err)
	}
	// Relation count bomb: mode byte then 2^40 relations.
	hdr := uv(append([]byte("HPRV1\n"), byte(engine.ModeNormalForm)), 1<<40)
	if err := bad(hdr); !errors.Is(err, provstore.ErrMalformed) {
		t.Fatalf("relation count bomb: err = %v, want ErrMalformed", err)
	}
}

// TestSnapshotTruncationsNeverPanic loads every prefix of a valid
// snapshot: each must return an error (only the full image loads), and
// none may panic.
func TestSnapshotTruncationsNeverPanic(t *testing.T) {
	full := exampleSnapshotBytesT(t)
	for cut := 0; cut < len(full); cut++ {
		if _, err := provstore.LoadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
	if _, err := provstore.LoadSnapshot(bytes.NewReader(full)); err != nil {
		t.Fatalf("full snapshot rejected: %v", err)
	}
}

// TestSnapshotBitFlipsNeverPanic flips one bit in every byte of a valid
// snapshot. A flip may still decode (many bytes are value payloads) but
// must never panic; when it errors, the error must be a plain value.
func TestSnapshotBitFlipsNeverPanic(t *testing.T) {
	full := exampleSnapshotBytesT(t)
	for pos := 0; pos < len(full); pos++ {
		flipped := bytes.Clone(full)
		flipped[pos] ^= 0x10
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on bit flip at byte %d: %v", pos, r)
				}
			}()
			_, _ = provstore.LoadSnapshot(bytes.NewReader(flipped))
		}()
	}
}

func exampleSnapshotBytesT(t *testing.T) []byte {
	t.Helper()
	sch, err := dbSchemaForFuzz()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.NewEmpty(engine.ModeNormalForm, sch)
	ann := core.PlusI(core.TupleVar("x"), core.DotM(core.Sum(core.TupleVar("y"), core.QueryVar("q")), core.QueryVar("p")))
	if err := e.RestoreRow("R", fuzzTuple(), ann); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
