package provstore_test

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/upstruct"
	"hyperprov/internal/workload"
)

func kindOf(name string) core.AnnotKind {
	if strings.HasPrefix(name, "q") || name == "p" {
		return core.KindQuery
	}
	return core.KindTuple
}

func mustParse(t *testing.T, s string) *core.Expr {
	t.Helper()
	e, err := core.ParseExpr(s, kindOf)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExprRoundTrip(t *testing.T) {
	cases := []string{
		"0",
		"x1",
		"p",
		"(p1 +M (p3 *M p)) - p",
		"0 +M (((p1 +M (p3 *M p)) - p) *M q1)",
		"(a + b + c) *M p",
		"((a - p) +M ((b0 + b1) *M p)) +I q2",
	}
	for _, s := range cases {
		e := mustParse(t, s)
		var buf bytes.Buffer
		if err := provstore.WriteExpr(&buf, e); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		back, err := provstore.ReadExpr(&buf)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if !back.Equal(e) {
			t.Errorf("round trip of %q = %q", s, back)
		}
	}
}

func randExpr(r *rand.Rand, depth int) *core.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return core.Zero()
		case 1:
			return core.QueryVar([]string{"p", "q1", "q2"}[r.Intn(3)])
		default:
			return core.TupleVar([]string{"x1", "x2", "x3"}[r.Intn(3)])
		}
	}
	switch r.Intn(5) {
	case 0:
		return core.PlusI(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return core.Minus(randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return core.PlusM(randExpr(r, depth-1), randExpr(r, depth-1))
	case 3:
		return core.DotM(randExpr(r, depth-1), randExpr(r, depth-1))
	default:
		kids := make([]*core.Expr, 2+r.Intn(3))
		for i := range kids {
			kids[i] = randExpr(r, depth-1)
		}
		return core.Sum(kids...)
	}
}

func TestExprRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func() bool {
		e := randExpr(r, 5)
		var buf bytes.Buffer
		if err := provstore.WriteExpr(&buf, e); err != nil {
			return false
		}
		back, err := provstore.ReadExpr(&buf)
		return err == nil && back.Equal(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestDedupCompressesExponentialTrees: the Prop. 5.1 adversary's naive
// expression has exponential tree size but the encoded table stays
// polynomial — structural dedup turns the tree into its DAG.
func TestDedupCompressesExponentialTrees(t *testing.T) {
	p := core.QueryVar("p")
	e1, e2 := core.TupleVar("a"), core.TupleVar("b")
	for i := 0; i < 24; i++ {
		if i%2 == 0 {
			e1, e2 = core.Minus(e1, p), core.PlusM(e2, core.DotM(core.Sum(e1), p))
		} else {
			e2, e1 = core.Minus(e2, p), core.PlusM(e1, core.DotM(core.Sum(e2), p))
		}
	}
	if e1.Size() < 1<<12 {
		t.Fatalf("adversary too small: %d", e1.Size())
	}
	var buf bytes.Buffer
	enc := provstore.NewEncoder(&buf)
	if _, err := enc.Add(e1); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Add(e2); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if nodes := enc.Len(); nodes > 200 {
		t.Errorf("encoded %d nodes for tree size %d; dedup broken", nodes, e1.Size())
	}
	if buf.Len() > 2048 {
		t.Errorf("encoded %d bytes; dedup broken", buf.Len())
	}
}

func TestEncoderSharesAcrossExpressions(t *testing.T) {
	base := mustParse(t, "(x1 +M (x2 *M p)) - p")
	other := core.PlusI(base, core.QueryVar("q1"))
	var buf bytes.Buffer
	enc := provstore.NewEncoder(&buf)
	id1, err := enc.Add(base)
	if err != nil {
		t.Fatal(err)
	}
	before := enc.Len()
	id2, err := enc.Add(other)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Error("distinct expressions must get distinct ids")
	}
	// other adds only its two new nodes (the +I and the q1 var).
	if enc.Len()-before != 2 {
		t.Errorf("expected 2 new nodes, got %d", enc.Len()-before)
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	if _, err := provstore.ReadExpr(bytes.NewReader([]byte{0x02, 0x00, 0xFF})); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := provstore.ReadExpr(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Forward reference: a binary node referring to itself.
	if _, err := provstore.ReadExpr(bytes.NewReader([]byte{0x01, 0x00, 0x02, 0x00, 0x00})); err == nil {
		t.Error("forward reference accepted")
	}
}

func snapshotWorkload(t *testing.T, mode engine.Mode) *engine.Engine {
	t.Helper()
	cfg := workload.Config{Tuples: 300, Pool: 15, Group: 2, Updates: 80, QueriesPerTxn: 8, MergeRatio: 0.2, Seed: 9}
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(mode, initial)
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		e := snapshotWorkload(t, mode)
		var buf bytes.Buffer
		if err := provstore.SaveSnapshot(&buf, e); err != nil {
			t.Fatal(err)
		}
		back, err := provstore.LoadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if back.Mode() != mode {
			t.Errorf("mode = %v, want %v", back.Mode(), mode)
		}
		if back.NumRows() != e.NumRows() {
			t.Errorf("rows = %d, want %d", back.NumRows(), e.NumRows())
		}
		// Every annotation survives byte-identically (structurally).
		e.EachRow("R", func(tu db.Tuple, ann *core.Expr) {
			got := back.Annotation("R", tu)
			if got == nil || !got.Equal(ann) {
				t.Errorf("%v: annotation mismatch after restore", tu)
			}
		})
		// And the live database agrees.
		if !engine.LiveDB(back).Equal(engine.LiveDB(e)) {
			t.Error("live database changed across snapshot")
		}
	}
}

func TestSnapshotRestoredEngineKeepsWorking(t *testing.T) {
	e := snapshotWorkload(t, engine.ModeNormalForm)
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	back, err := provstore.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Apply one more transaction to both and compare.
	txn := db.Transaction{Label: "post", Updates: []db.Update{
		db.Modify("R",
			db.Pattern{db.AnyVar("i"), db.Const(db.I(0)), db.AnyVar("c"), db.AnyVar("v"), db.AnyVar("p")},
			[]db.SetClause{db.Keep(), db.Keep(), db.Keep(), db.SetTo(db.I(7)), db.Keep()}),
	}}
	if err := e.ApplyTransaction(&txn); err != nil {
		t.Fatal(err)
	}
	if err := back.ApplyTransaction(&txn); err != nil {
		t.Fatal(err)
	}
	if !engine.LiveDB(back).Equal(engine.LiveDB(e)) {
		t.Error("restored engine diverges on further updates")
	}
	allTrue := func(core.Annot) bool { return true }
	e.EachRow("R", func(tu db.Tuple, ann *core.Expr) {
		got := back.Annotation("R", tu)
		if got == nil {
			t.Errorf("%v missing after restore", tu)
			return
		}
		if upstruct.Eval(ann, upstruct.Bool, allTrue) != upstruct.Eval(got, upstruct.Bool, allTrue) {
			t.Errorf("%v: semantics diverged after restore", tu)
		}
	})
}

func TestSnapshotTPCC(t *testing.T) {
	g := tpcc.NewGenerator(tpcc.DefaultConfig())
	initial, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.ModeNormalForm, initial)
	if err := e.ApplyAll(context.Background(), g.Transactions(20)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	back, err := provstore.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !engine.LiveDB(back).Equal(engine.LiveDB(e)) {
		t.Error("TPC-C snapshot round trip broke the live database")
	}
	if len(back.Schema().Names()) != 9 {
		t.Errorf("restored schema has %d relations", len(back.Schema().Names()))
	}
}

func TestLoadSnapshotRejectsBadInput(t *testing.T) {
	if _, err := provstore.LoadSnapshot(bytes.NewReader([]byte("NOTSNAP"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := provstore.LoadSnapshot(bytes.NewReader([]byte(""))); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated: magic + bad mode.
	if _, err := provstore.LoadSnapshot(bytes.NewReader([]byte("HPRV1\n\xFF"))); err == nil {
		t.Error("bad mode accepted")
	}
}
