// Package provstore persists annotated databases: the storage half of
// the paper's "efficient generation and storage of provenance"
// (Sections 5–6).
//
// The central piece is a binary codec for UP[X] expressions that writes
// the expression as a node table in topological order with
// varint-encoded child references. Structurally identical
// sub-expressions are written once, so the on-disk size is the DAG size
// of the expression set rather than its tree size — for the naive
// construction, whose trees can be exponentially large while their
// distinct-subterm count stays polynomial (Proposition 5.1 builds the
// same sub-expressions over and over), this is an exponential storage
// saving on top of the in-memory representation, and for normal-form
// provenance it deduplicates the bases shared between a tuple's
// versions.
//
// On top of the codec, Snapshot writes and reads whole annotated
// databases (schema, every stored row including tombstones, one
// expression reference per row), restoring into either engine mode.
package provstore
