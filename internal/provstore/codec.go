package provstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hyperprov/internal/core"
)

// node type tags of the expression codec.
const (
	tagZero  byte = 0
	tagVar   byte = 1
	tagPlusI byte = 2
	tagMinus byte = 3
	tagPlusM byte = 4
	tagDotM  byte = 5
	tagSum   byte = 6
)

// ErrMalformed wraps every structural decoding failure — bad magic,
// unknown tags, implausible counts, out-of-range references — so
// callers can branch on hostile or corrupt input without string
// matching. Plain io errors (unexpected EOF) are not wrapped.
var ErrMalformed = errors.New("provstore: malformed input")

// Hard upper bounds on attacker-controlled uvarint counts. They exist
// to classify garbage early with a typed error; the real defense
// against allocation bombs is that every slice below grows only as
// bytes actually arrive (capped preallocation + append).
const (
	maxStringLen = 1 << 24 // annotation names, relation/attribute names
	maxSumArity  = 1 << 24 // children of one OpSum node
	maxSchemaDim = 1 << 16 // relations in a schema, attributes in a relation
)

// prealloc bounds a claimed element count to a small initial capacity:
// decoding loops append as elements actually decode, so a hostile count
// cannot force a large up-front allocation.
func prealloc(claimed, cap uint64) int {
	if claimed < cap {
		return int(claimed)
	}
	return int(cap)
}

// Encoder writes expressions into a shared node table with structural
// deduplication: each distinct subterm is emitted once, with children
// referenced by backwards node ids, so the stream stores the DAG, not
// the trees. Create one with NewEncoder, Add every expression, then
// Flush; Add returns the node index that identifies the expression in
// the table (to be stored wherever the annotation is referenced).
//
// Hash-consed (interned) expressions are deduplicated by canonical
// pointer in O(1); the fingerprint buckets remain as the fallback so
// that non-interned trees (naive copy-on-write snapshots) still
// deduplicate structurally against everything already emitted — the
// two paths assign identical ids, keeping the bytes identical to the
// pre-interning format (see the golden-file test).
type Encoder struct {
	w     *bufio.Writer
	ptr   map[*core.Expr]uint64
	index map[uint64][]dedupEntry
	next  uint64
	buf   [binary.MaxVarintLen64]byte
	err   error
}

type dedupEntry struct {
	expr *core.Expr
	id   uint64
}

// NewEncoder returns an encoder writing the node table to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{
		w:     bufio.NewWriter(w),
		ptr:   make(map[*core.Expr]uint64),
		index: make(map[uint64][]dedupEntry),
	}
}

func (e *Encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *Encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *Encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

// Add writes the expression's missing nodes to the table and returns its
// node id. Structurally equal expressions share one id.
func (e *Encoder) Add(x *core.Expr) (uint64, error) {
	id := e.add(x)
	return id, e.err
}

func (e *Encoder) add(x *core.Expr) uint64 {
	if id, ok := e.ptr[x]; ok {
		return id
	}
	h := x.Hash()
	for _, prev := range e.index[h] {
		if prev.expr == x || prev.expr.Equal(x) {
			e.ptr[x] = prev.id
			return prev.id
		}
	}
	// Children first: references always point backwards.
	var kids []uint64
	if n := x.NumChildren(); n > 0 {
		kids = make([]uint64, n)
		for i := 0; i < n; i++ {
			kids[i] = e.add(x.Child(i))
		}
	}
	id := e.next
	e.next++
	e.ptr[x] = id
	e.index[h] = append(e.index[h], dedupEntry{expr: x, id: id})
	e.emit(x, kids)
	return id
}

// emit writes one table node whose children already have the given
// global ids. Both the recursive add path and the parallel merge path
// (addFlat) funnel through here, so the wire format is defined once.
func (e *Encoder) emit(x *core.Expr, kids []uint64) {
	switch x.Op() {
	case core.OpZero:
		e.byte(tagZero)
	case core.OpVar:
		e.byte(tagVar)
		a := x.Annot()
		e.byte(byte(a.Kind))
		e.str(a.Name)
	case core.OpPlusI, core.OpMinus, core.OpPlusM, core.OpDotM:
		e.byte(map[core.Op]byte{
			core.OpPlusI: tagPlusI, core.OpMinus: tagMinus,
			core.OpPlusM: tagPlusM, core.OpDotM: tagDotM,
		}[x.Op()])
		e.uvarint(kids[0])
		e.uvarint(kids[1])
	case core.OpSum:
		e.byte(tagSum)
		e.uvarint(uint64(len(kids)))
		for _, k := range kids {
			e.uvarint(k)
		}
	default:
		if e.err == nil {
			e.err = fmt.Errorf("provstore: unknown op %v", x.Op())
		}
	}
}

// addFlat registers and emits a node whose children are already in the
// table under the given global ids, deduplicating against everything
// emitted so far exactly like add. It is the merge half of the parallel
// snapshot encoder: workers pre-walk their expressions into local node
// lists (children-first), and replaying those lists through addFlat in
// chunk order assigns the same ids — hence the same bytes — as a
// sequential add over the same expressions.
func (e *Encoder) addFlat(x *core.Expr, kids []uint64) uint64 {
	if id, ok := e.ptr[x]; ok {
		return id
	}
	h := x.Hash()
	for _, prev := range e.index[h] {
		if prev.expr == x || prev.expr.Equal(x) {
			e.ptr[x] = prev.id
			return prev.id
		}
	}
	id := e.next
	e.next++
	e.ptr[x] = id
	e.index[h] = append(e.index[h], dedupEntry{expr: x, id: id})
	e.emit(x, kids)
	return id
}

// Len reports the number of table nodes written so far (the DAG size of
// everything added).
func (e *Encoder) Len() uint64 { return e.next }

// Flush completes the stream.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// Decoder reads a node table produced by Encoder.
type Decoder struct {
	r     *bufio.Reader
	nodes []*core.Expr
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// ReadNodes consumes exactly n table nodes.
func (d *Decoder) ReadNodes(n uint64) error {
	for i := uint64(0); i < n; i++ {
		if err := d.readNode(); err != nil {
			return err
		}
	}
	return nil
}

func (d *Decoder) child(id uint64) (*core.Expr, error) {
	if id >= uint64(len(d.nodes)) {
		return nil, fmt.Errorf("%w: forward node reference %d (have %d)", ErrMalformed, id, len(d.nodes))
	}
	return d.nodes[id], nil
}

func (d *Decoder) readNode() error {
	tag, err := d.r.ReadByte()
	if err != nil {
		return err
	}
	switch tag {
	case tagZero:
		d.nodes = append(d.nodes, core.Zero())
	case tagVar:
		kind, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		name, err := d.readString()
		if err != nil {
			return err
		}
		d.nodes = append(d.nodes, core.Var(core.Annot{Name: name, Kind: core.AnnotKind(kind)}))
	case tagPlusI, tagMinus, tagPlusM, tagDotM:
		l, err := d.readRef()
		if err != nil {
			return err
		}
		r, err := d.readRef()
		if err != nil {
			return err
		}
		var x *core.Expr
		switch tag {
		case tagPlusI:
			x = core.PlusI(l, r)
		case tagMinus:
			x = core.Minus(l, r)
		case tagPlusM:
			x = core.PlusM(l, r)
		default:
			x = core.DotM(l, r)
		}
		d.nodes = append(d.nodes, x)
	case tagSum:
		n, err := binary.ReadUvarint(d.r)
		if err != nil {
			return err
		}
		if n > maxSumArity {
			return fmt.Errorf("%w: implausible sum arity %d", ErrMalformed, n)
		}
		// Capped preallocation: each child reference costs at least one
		// input byte, so the slice grows with the input, not with the
		// claimed arity.
		kids := make([]*core.Expr, 0, prealloc(n, 1024))
		for i := uint64(0); i < n; i++ {
			k, err := d.readRef()
			if err != nil {
				return err
			}
			kids = append(kids, k)
		}
		// Sum flattens and collapses; to preserve the encoded identity we
		// rely on the encoder only emitting sums as they appear in
		// expressions (already flat, ≥2 children).
		d.nodes = append(d.nodes, core.Sum(kids...))
	default:
		return fmt.Errorf("%w: unknown node tag %d", ErrMalformed, tag)
	}
	return nil
}

func (d *Decoder) readRef() (*core.Expr, error) {
	id, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, err
	}
	return d.child(id)
}

func (d *Decoder) readString() (string, error) {
	return readString(d.r)
}

// Expr returns the decoded expression with the given node id.
func (d *Decoder) Expr(id uint64) (*core.Expr, error) {
	return d.child(id)
}

// WriteExpr encodes a single expression: a header (node count, root id)
// followed by the node table.
func WriteExpr(w io.Writer, x *core.Expr) error {
	var table bytes.Buffer
	enc := NewEncoder(&table)
	id, err := enc.Add(x)
	if err != nil {
		return err
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], enc.Len())
	n += binary.PutUvarint(hdr[n:], id)
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err = w.Write(table.Bytes())
	return err
}

// ReadExpr decodes an expression written by WriteExpr.
func ReadExpr(r io.Reader) (*core.Expr, error) {
	br := bufio.NewReader(r)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	root, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	dec := NewDecoder(br)
	if err := dec.ReadNodes(count); err != nil {
		return nil, err
	}
	return dec.Expr(root)
}
