// Package admission is the server's overload-protection toolbox:
// per-class concurrency limits with small bounded wait queues, typed
// load-shed errors, a three-state health summary (ok → degraded →
// overloaded), and the client-side resilience primitives — full-jitter
// exponential backoff and a circuit breaker — the replication follower
// uses for its redial loop.
//
// The controller divides work into classes (cheap point reads,
// expensive materializations, writes, long-lived streams) so that
// saturation in one class cannot starve the others: a storm of what-if
// queries queues and then sheds inside its own class while point reads
// and writes keep flowing. Shedding is deadline-aware — a request whose
// remaining context deadline could not cover both the queue wait and a
// minimum service time is shed immediately rather than parked to time
// out — and every shed carries a retry hint the HTTP layer renders as
// a Retry-After header.
//
// The health state is deliberately coarse: load balancers only need to
// know "keep sending" (ok), "prefer another node" (degraded: queues
// forming, a read-only WAL, a lagging replica) or "drain me"
// (overloaded: the controller is actively shedding). The server folds
// its own signals (WAL degradation, replication lag) into the
// controller's view; see internal/server.
package admission
