package admission

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Class partitions requests by the resources they hold while in
// flight. Each class has its own concurrency limit and wait queue, so
// saturation in one cannot starve another.
type Class int

const (
	// ClassRead is cheap point work: annotation lookups, schema and
	// index listings. Never shed proactively — under overload these are
	// the requests that must keep answering.
	ClassRead Class = iota
	// ClassExpensive is materializing read work: full-database
	// valuations, what-if restrictions, snapshot encodes. Shed first
	// under overload (recomputable by the client, and each one holds a
	// worker pool while it runs).
	ClassExpensive
	// ClassWrite is state-changing work: ingestion, index DDL,
	// checkpoints, snapshot loads. Shed only by its own queue limits,
	// after expensive reads.
	ClassWrite
	// ClassStream is a long-lived streaming connection (replication or
	// subscription). Streams hold their slot for the connection's
	// lifetime and never queue: past the cap they shed immediately, so
	// a replica reconnect storm cannot pile up handshakes.
	ClassStream
	// NumClasses sizes per-class tables.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassExpensive:
		return "expensive"
	case ClassWrite:
		return "write"
	case ClassStream:
		return "stream"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Reason says why a request was shed.
type Reason string

const (
	// ReasonQueueFull: the class was at its concurrency limit and its
	// wait queue was full. The canonical 429.
	ReasonQueueFull Reason = "queue_full"
	// ReasonDeadline: the request could not be admitted within its
	// remaining deadline (or the class's queue wait) — shed immediately
	// or when the wait expired. 503.
	ReasonDeadline Reason = "deadline"
	// ReasonOverload: the controller is in the overloaded state and
	// sheds expensive work outright to protect the rest. 503.
	ReasonOverload Reason = "overloaded"
)

// ShedError is the typed load-shed result. RetryAfter is the hint the
// HTTP layer renders as a Retry-After header.
type ShedError struct {
	Class      Class
	Reason     Reason
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: %s request shed (%s; retry after %v)", e.Class, e.Reason, e.RetryAfter)
}

// ClassConfig bounds one class. A zero MaxInFlight means unlimited
// (admission becomes pure accounting); a zero QueueDepth means no
// queue (at the limit, shed immediately).
type ClassConfig struct {
	MaxInFlight int
	QueueDepth  int
	QueueWait   time.Duration
}

// Config configures a Controller.
type Config struct {
	Classes [NumClasses]ClassConfig
	// MinService is the service time a queued request must still be
	// able to afford: a request whose context deadline leaves less than
	// MinService after any queue wait is shed immediately (it would
	// only occupy a queue slot to time out).
	MinService time.Duration
	// Window is how long a capacity shed keeps the controller in the
	// overloaded state, and queue pressure keeps it degraded.
	Window time.Duration
	// now is injectable for tests.
	now func() time.Time
}

// Unlimited is the pass-through configuration: every class unbounded.
// The server defaults to it so admission is strictly opt-in; the serve
// command opts in with real limits.
func Unlimited() Config { return Config{} }

const (
	defaultQueueWait = time.Second
	defaultWindow    = time.Second
)

// State is the coarse health summary.
type State int

const (
	// StateOK: admitting everything promptly.
	StateOK State = iota
	// StateDegraded: requests are queueing (or an external signal like
	// a read-only WAL or replication lag says so) but nothing is shed.
	StateDegraded
	// StateOverloaded: the controller shed for capacity within the
	// window — drain this node.
	StateOverloaded
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	default:
		return "overloaded"
	}
}

// Controller admits requests class by class.
type Controller struct {
	classes    [NumClasses]*limiter
	minService time.Duration
	window     time.Duration
	now        func() time.Time

	lastShed   atomic.Int64 // unix nanos of the last capacity shed
	lastQueued atomic.Int64 // unix nanos of the last forced queue entry
}

// NewController builds a controller from cfg, filling zero QueueWait /
// Window with defaults.
func NewController(cfg Config) *Controller {
	c := &Controller{minService: cfg.MinService, window: cfg.Window, now: cfg.now}
	if c.window <= 0 {
		c.window = defaultWindow
	}
	if c.now == nil {
		c.now = time.Now
	}
	for i := range c.classes {
		cc := cfg.Classes[i]
		if cc.QueueWait <= 0 {
			cc.QueueWait = defaultQueueWait
		}
		c.classes[i] = &limiter{cfg: cc}
	}
	return c
}

// Admit reserves an in-flight slot in class. It returns a release
// function on success; the caller must invoke it exactly once when the
// request finishes. On shed it returns a *ShedError.
//
// Fast path: below the class limit, admit immediately. At the limit,
// the request queues (FIFO) up to the class queue depth, bounded by
// the class queue wait and the request's own deadline. Expensive-class
// requests are shed outright while the controller is overloaded —
// reads shed before writes.
func (c *Controller) Admit(ctx context.Context, class Class) (func(), error) {
	l := c.classes[class]
	if class == ClassExpensive && c.State() == StateOverloaded {
		l.shedOverload.Add(1)
		return nil, &ShedError{Class: class, Reason: ReasonOverload, RetryAfter: c.window}
	}
	if ok := l.tryAcquire(); ok {
		return l.releaseFunc(), nil
	}
	// Queue entry. Compute the wait budget first: the class bound,
	// shrunk by the request's remaining deadline less MinService.
	wait := l.cfg.QueueWait
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl) - c.minService
		if rem <= 0 {
			l.shedDeadline.Add(1)
			c.noteShed()
			return nil, &ShedError{Class: class, Reason: ReasonDeadline, RetryAfter: l.cfg.QueueWait}
		}
		if rem < wait {
			wait = rem
		}
	}
	w, queued, err := l.enqueue()
	if err != nil {
		c.noteShed()
		return nil, &ShedError{Class: class, Reason: ReasonQueueFull, RetryAfter: l.cfg.QueueWait}
	}
	if queued {
		c.noteQueued()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.granted:
		return l.releaseFunc(), nil
	case <-ctx.Done():
	case <-timer.C:
	}
	if l.abandon(w) {
		// The grant raced our timeout: the slot is ours, give it back.
		l.release()
	}
	l.shedDeadline.Add(1)
	c.noteShed()
	return nil, &ShedError{Class: class, Reason: ReasonDeadline, RetryAfter: l.cfg.QueueWait}
}

func (c *Controller) noteShed()   { c.lastShed.Store(c.now().UnixNano()) }

// Window reports the overload stickiness window — the Retry-After hint
// for state-based refusals rendered outside Admit (e.g. readyz).
func (c *Controller) Window() time.Duration { return c.window }
func (c *Controller) noteQueued() { c.lastQueued.Store(c.now().UnixNano()) }

// State reports the controller's own view: overloaded while a capacity
// shed is within the window, degraded while queue pressure is, ok
// otherwise. External signals (WAL degradation, replication lag) are
// folded in by the server, not here.
func (c *Controller) State() State {
	now := c.now().UnixNano()
	win := c.window.Nanoseconds()
	if ls := c.lastShed.Load(); ls != 0 && now-ls < win {
		return StateOverloaded
	}
	if lq := c.lastQueued.Load(); lq != 0 && now-lq < win {
		return StateDegraded
	}
	for _, l := range c.classes {
		if l.queuedNow() > 0 {
			return StateDegraded
		}
	}
	return StateOK
}

// ClassStats is one class's counter snapshot.
type ClassStats struct {
	InFlight      int    `json:"in_flight"`
	Queued        int    `json:"queued"`
	MaxInFlight   int    `json:"max_in_flight"`
	QueueDepth    int    `json:"queue_depth"`
	Admitted      uint64 `json:"admitted"`
	QueuedTotal   uint64 `json:"queued_total"`
	ShedQueueFull uint64 `json:"shed_queue_full"`
	ShedDeadline  uint64 `json:"shed_deadline"`
	ShedOverload  uint64 `json:"shed_overload"`
}

// Shed is the class's total shed count.
func (cs ClassStats) Shed() uint64 { return cs.ShedQueueFull + cs.ShedDeadline + cs.ShedOverload }

// Stats is the controller snapshot served under /v1/stats and expvar.
type Stats struct {
	State   string                `json:"state"`
	Classes map[string]ClassStats `json:"classes"`
}

// StatsSnapshot collects the per-class counters.
func (c *Controller) StatsSnapshot() Stats {
	st := Stats{State: c.State().String(), Classes: make(map[string]ClassStats, NumClasses)}
	for i, l := range c.classes {
		st.Classes[Class(i).String()] = l.snapshot()
	}
	return st
}

// TotalShed sums sheds across classes (the chaos CI job asserts it
// moved).
func (c *Controller) TotalShed() uint64 {
	var n uint64
	for _, l := range c.classes {
		n += l.snapshot().Shed()
	}
	return n
}

// limiter is one class's semaphore plus FIFO wait queue.
type limiter struct {
	cfg ClassConfig

	mu       sync.Mutex
	inflight int
	waiters  list.List // of *waiter, FIFO

	admitted     atomic.Uint64
	queuedTotal  atomic.Uint64
	shedFull     atomic.Uint64
	shedDeadline atomic.Uint64
	shedOverload atomic.Uint64
}

type waiter struct {
	granted chan struct{}
	elem    *list.Element
	done    bool // granted or abandoned, settled under limiter.mu
}

func (l *limiter) tryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.MaxInFlight > 0 && l.inflight >= l.cfg.MaxInFlight {
		return false
	}
	l.inflight++
	l.admitted.Add(1)
	return true
}

func (l *limiter) enqueue() (w *waiter, queued bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Re-check under the lock: a release may have freed a slot between
	// tryAcquire and here.
	if l.cfg.MaxInFlight <= 0 || l.inflight < l.cfg.MaxInFlight {
		l.inflight++
		l.admitted.Add(1)
		w := &waiter{granted: make(chan struct{})}
		close(w.granted)
		w.done = true
		return w, false, nil
	}
	if l.waiters.Len() >= l.cfg.QueueDepth {
		l.shedFull.Add(1)
		return nil, false, &ShedError{Reason: ReasonQueueFull}
	}
	w = &waiter{granted: make(chan struct{})}
	w.elem = l.waiters.PushBack(w)
	l.queuedTotal.Add(1)
	return w, true, nil
}

// abandon removes w from the queue after a timeout or cancellation. It
// reports whether the grant won the race (the slot is held and must be
// released by the caller).
func (l *limiter) abandon(w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.done {
		return true
	}
	l.waiters.Remove(w.elem)
	w.done = true
	return false
}

// release frees one in-flight slot, handing it to the oldest waiter if
// any (the slot transfers — inflight stays constant).
func (l *limiter) release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for e := l.waiters.Front(); e != nil; e = l.waiters.Front() {
		w := e.Value.(*waiter)
		l.waiters.Remove(e)
		if w.done {
			continue
		}
		w.done = true
		l.admitted.Add(1)
		close(w.granted)
		return
	}
	l.inflight--
}

func (l *limiter) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(l.release) }
}

func (l *limiter) queuedNow() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiters.Len()
}

func (l *limiter) snapshot() ClassStats {
	l.mu.Lock()
	inflight, queued := l.inflight, l.waiters.Len()
	l.mu.Unlock()
	return ClassStats{
		InFlight:      inflight,
		Queued:        queued,
		MaxInFlight:   l.cfg.MaxInFlight,
		QueueDepth:    l.cfg.QueueDepth,
		Admitted:      l.admitted.Load(),
		QueuedTotal:   l.queuedTotal.Load(),
		ShedQueueFull: l.shedFull.Load(),
		ShedDeadline:  l.shedDeadline.Load(),
		ShedOverload:  l.shedOverload.Load(),
	}
}
