package admission

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff is a full-jitter exponential backoff schedule (AWS style):
// the nth delay is uniform in [0, min(Cap, Base·2ⁿ)), floored at a
// millisecond so a zero draw cannot hot-loop. Full jitter decorrelates
// clients that fail together — N replicas losing their leader at the
// same instant redial spread across the whole window instead of in
// lockstep.
//
// Not safe for concurrent use; each retry loop owns its schedule.
type Backoff struct {
	Base time.Duration // first ceiling; 0 defaults to 50ms
	Cap  time.Duration // ceiling growth stops here; 0 defaults to 2s
	// Rand returns a uniform draw in [0, 1); nil uses the shared
	// process source. Tests inject a deterministic sequence.
	Rand func() float64

	attempt int
}

// DefaultBackoff mirrors the follower's historical schedule bounds.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
)

// backoffFloor keeps a zero jitter draw from redialing instantly.
const backoffFloor = time.Millisecond

var (
	globalRandMu sync.Mutex
	globalRand   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func globalFloat64() float64 {
	globalRandMu.Lock()
	defer globalRandMu.Unlock()
	return globalRand.Float64()
}

// Next returns the next delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	ceil := base
	for i := 0; i < b.attempt && ceil < cap; i++ {
		ceil *= 2
	}
	if ceil > cap {
		ceil = cap
	}
	b.attempt++
	draw := b.Rand
	if draw == nil {
		draw = globalFloat64
	}
	d := time.Duration(draw() * float64(ceil))
	if d < backoffFloor {
		d = backoffFloor
	}
	if d > ceil {
		d = ceil
	}
	return d
}

// Reset rewinds the schedule to the first attempt; call it whenever a
// session makes progress.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
