package admission

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the reconnect budget is spent; attempts are refused
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe attempt
	// is in flight. Success closes the breaker, failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half_open"
	}
}

// Breaker is a consecutive-failure circuit breaker for retry loops: it
// spends a budget of consecutive failures, then opens for a cooldown
// so a peer that is down stays undisturbed (and the retry loop stops
// burning connections), then half-opens for a single probe. The
// follower's redial loop runs one; its state is exported in
// replication stats.
//
// A zero Budget disables the breaker: Allow always consents.
type Breaker struct {
	Budget   int           // consecutive failures before opening
	Cooldown time.Duration // how long Open refuses; 0 defaults to 5s
	// Now is injectable for tests; nil uses time.Now.
	Now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int
	opens    uint64
	openedAt time.Time
}

const defaultBreakerCooldown = 5 * time.Second

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return defaultBreakerCooldown
}

// Allow reports whether an attempt may proceed. While open it returns
// (remaining cooldown, false); when the cooldown has elapsed it
// half-opens and consents to one probe.
func (b *Breaker) Allow() (time.Duration, bool) {
	if b.Budget <= 0 {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0, true
	}
	if rem := b.cooldown() - b.now().Sub(b.openedAt); rem > 0 {
		return rem, false
	}
	b.state = BreakerHalfOpen
	return 0, true
}

// Success records a working attempt: the breaker closes and the
// failure run resets.
func (b *Breaker) Success() {
	if b.Budget <= 0 {
		return
	}
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.mu.Unlock()
}

// Failure records a failed attempt: a half-open probe reopens
// immediately, and a closed breaker opens once the consecutive run
// reaches the budget.
func (b *Breaker) Failure() {
	if b.Budget <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.Budget {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.opens++
	}
}

// BreakerStats is the exported snapshot.
type BreakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               uint64 `json:"opens"`
	Budget              int    `json:"budget"`
}

// Snapshot reports the breaker's position and counters.
func (b *Breaker) Snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		Budget:              b.Budget,
	}
}
