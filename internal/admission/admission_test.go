package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func cfgWith(class Class, cc ClassConfig) Config {
	var cfg Config
	cfg.Classes[class] = cc
	return cfg
}

// TestAdmitFastPath: below the limit every request admits immediately
// and release frees the slot.
func TestAdmitFastPath(t *testing.T) {
	c := NewController(cfgWith(ClassRead, ClassConfig{MaxInFlight: 2, QueueDepth: 1}))
	r1, err := c.Admit(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Admit(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	st := c.StatsSnapshot().Classes["read"]
	if st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("in-flight %d admitted %d, want 2/2", st.InFlight, st.Admitted)
	}
	r1()
	r1() // double release must be a no-op
	r2()
	if st := c.StatsSnapshot().Classes["read"]; st.InFlight != 0 {
		t.Fatalf("in-flight %d after release, want 0", st.InFlight)
	}
}

// TestAdmitUnlimited: a zero MaxInFlight never queues or sheds.
func TestAdmitUnlimited(t *testing.T) {
	c := NewController(Unlimited())
	var rels []func()
	for i := 0; i < 100; i++ {
		r, err := c.Admit(context.Background(), ClassExpensive)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		rels = append(rels, r)
	}
	if st := c.State(); st != StateOK {
		t.Fatalf("state %v under unlimited config, want ok", st)
	}
	for _, r := range rels {
		r()
	}
}

// TestQueueFullSheds: with the limit and queue both full, the next
// request sheds queue_full and the controller reports overloaded.
func TestQueueFullSheds(t *testing.T) {
	c := NewController(cfgWith(ClassExpensive, ClassConfig{MaxInFlight: 1, QueueDepth: 1, QueueWait: time.Minute}))
	release, err := c.Admit(context.Background(), ClassExpensive)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue slot with a waiter.
	waitErr := make(chan error, 1)
	go func() {
		r, err := c.Admit(context.Background(), ClassExpensive)
		if err == nil {
			r()
		}
		waitErr <- err
	}()
	waitForQueued(t, c, ClassExpensive, 1)
	_, err = c.Admit(context.Background(), ClassExpensive)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("third admit: %v, want queue_full shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed has no retry hint: %+v", shed)
	}
	if st := c.State(); st != StateOverloaded {
		t.Fatalf("state %v after capacity shed, want overloaded", st)
	}
	release() // hands the slot to the waiter
	if err := <-waitErr; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	st := c.StatsSnapshot().Classes["expensive"]
	if st.ShedQueueFull != 1 || st.QueuedTotal != 1 {
		t.Fatalf("counters %+v, want 1 shed_queue_full / 1 queued_total", st)
	}
}

// TestDeadlineShedsImmediately: a saturated class sheds a request
// whose remaining deadline cannot cover MinService without parking it.
func TestDeadlineShedsImmediately(t *testing.T) {
	cfg := cfgWith(ClassWrite, ClassConfig{MaxInFlight: 1, QueueDepth: 4, QueueWait: time.Minute})
	cfg.MinService = 50 * time.Millisecond
	c := NewController(cfg)
	release, err := c.Admit(context.Background(), ClassWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Admit(ctx, ClassWrite)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("admit: %v, want deadline shed", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("immediate shed took %v", el)
	}
	if got := c.StatsSnapshot().Classes["write"].ShedDeadline; got != 1 {
		t.Fatalf("shed_deadline %d, want 1", got)
	}
}

// TestQueueWaitExpires: a queued request is shed once the class queue
// wait elapses without a slot.
func TestQueueWaitExpires(t *testing.T) {
	c := NewController(cfgWith(ClassWrite, ClassConfig{MaxInFlight: 1, QueueDepth: 4, QueueWait: 20 * time.Millisecond}))
	release, err := c.Admit(context.Background(), ClassWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = c.Admit(context.Background(), ClassWrite)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("admit: %v, want deadline shed after queue wait", err)
	}
}

// TestFIFOHandoff: released slots go to waiters in arrival order.
func TestFIFOHandoff(t *testing.T) {
	c := NewController(cfgWith(ClassWrite, ClassConfig{MaxInFlight: 1, QueueDepth: 8, QueueWait: time.Minute}))
	release, err := c.Admit(context.Background(), ClassWrite)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	order := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Admit(context.Background(), ClassWrite)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			r()
		}()
		waitForQueued(t, c, ClassWrite, i+1)
	}
	release()
	wg.Wait()
	close(order)
	prev := -1
	for got := range order {
		if got != prev+1 {
			t.Fatalf("handoff order broke FIFO: got %d after %d", got, prev)
		}
		prev = got
	}
}

// TestOverloadShedsExpensiveOnly: in the overloaded state, expensive
// requests shed immediately while reads and writes still admit — reads
// shed before writes, cheap reads never.
func TestOverloadShedsExpensiveOnly(t *testing.T) {
	now := time.Now()
	cfg := cfgWith(ClassExpensive, ClassConfig{MaxInFlight: 1, QueueDepth: 0})
	cfg.now = func() time.Time { return now }
	c := NewController(cfg)
	// Force a capacity shed to enter the overloaded state.
	release, err := c.Admit(context.Background(), ClassExpensive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(context.Background(), ClassExpensive); err == nil {
		t.Fatal("second expensive admit succeeded past the limit")
	}
	if st := c.State(); st != StateOverloaded {
		t.Fatalf("state %v, want overloaded", st)
	}
	release()
	// Slot is free again, but the overload window still sheds expensive
	// work outright...
	_, err = c.Admit(context.Background(), ClassExpensive)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonOverload {
		t.Fatalf("expensive admit under overload: %v, want overloaded shed", err)
	}
	// ...while the other classes are untouched.
	for _, cl := range []Class{ClassRead, ClassWrite, ClassStream} {
		r, err := c.Admit(context.Background(), cl)
		if err != nil {
			t.Fatalf("%v admit under overload: %v", cl, err)
		}
		r()
	}
	// Past the window the state recovers and expensive flows again.
	now = now.Add(2 * defaultWindow)
	if st := c.State(); st != StateOK {
		t.Fatalf("state %v after window, want ok", st)
	}
	r, err := c.Admit(context.Background(), ClassExpensive)
	if err != nil {
		t.Fatalf("expensive admit after recovery: %v", err)
	}
	r()
	if got := c.StatsSnapshot().Classes["expensive"].ShedOverload; got != 1 {
		t.Fatalf("shed_overload %d, want 1", got)
	}
}

// TestDegradedOnQueuePressure: queueing without shedding reports
// degraded, then recovers.
func TestDegradedOnQueuePressure(t *testing.T) {
	now := time.Now()
	cfg := cfgWith(ClassWrite, ClassConfig{MaxInFlight: 1, QueueDepth: 2, QueueWait: time.Minute})
	cfg.now = func() time.Time { return now }
	c := NewController(cfg)
	release, err := c.Admit(context.Background(), ClassWrite)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r, err := c.Admit(context.Background(), ClassWrite)
		if err == nil {
			r()
		}
		close(done)
	}()
	waitForQueued(t, c, ClassWrite, 1)
	if st := c.State(); st != StateDegraded {
		t.Fatalf("state %v with a queued waiter, want degraded", st)
	}
	release()
	<-done
	now = now.Add(2 * defaultWindow)
	if st := c.State(); st != StateOK {
		t.Fatalf("state %v after drain, want ok", st)
	}
}

// TestAdmitConcurrentStress hammers one tight class from many
// goroutines; run under -race it proves the limiter's accounting.
func TestAdmitConcurrentStress(t *testing.T) {
	c := NewController(cfgWith(ClassWrite, ClassConfig{MaxInFlight: 4, QueueDepth: 16, QueueWait: 50 * time.Millisecond}))
	var wg sync.WaitGroup
	var admitted, shed sync.Map
	for g := 0; g < 32; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r, err := c.Admit(context.Background(), ClassWrite)
				if err != nil {
					var se *ShedError
					if !errors.As(err, &se) {
						t.Errorf("non-shed error: %v", err)
						return
					}
					shed.Store([2]int{g, i}, true)
					continue
				}
				admitted.Store([2]int{g, i}, true)
				time.Sleep(time.Microsecond)
				r()
			}
		}()
	}
	wg.Wait()
	st := c.StatsSnapshot().Classes["write"]
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
}

func waitForQueued(t *testing.T, c *Controller, class Class, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.classes[class].queuedNow() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters", n)
}
