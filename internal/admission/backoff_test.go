package admission

import (
	"testing"
	"time"
)

// seqRand returns the given draws in order, cycling.
func seqRand(draws ...float64) func() float64 {
	i := 0
	return func() float64 {
		d := draws[i%len(draws)]
		i++
		return d
	}
}

// TestBackoffFullJitterBounds: with the maximum draw the schedule
// doubles up to the cap; with a zero draw it floors at a millisecond.
func TestBackoffFullJitterBounds(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: 400 * time.Millisecond, Rand: seqRand(0.999999)}
	want := []time.Duration{50, 100, 200, 400, 400} // ms ceilings
	for i, w := range want {
		got := b.Next()
		ceil := w * time.Millisecond
		if got > ceil || got < ceil-time.Millisecond {
			t.Fatalf("attempt %d: %v, want ≈%v", i, got, ceil)
		}
	}
	b.Rand = seqRand(0)
	if got := b.Next(); got != backoffFloor {
		t.Fatalf("zero draw: %v, want the %v floor", got, backoffFloor)
	}
}

// TestBackoffReset rewinds to the first ceiling.
func TestBackoffReset(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Rand: seqRand(0.5)}
	b.Next()
	b.Next()
	b.Next()
	if b.Attempt() != 3 {
		t.Fatalf("attempt %d, want 3", b.Attempt())
	}
	b.Reset()
	if got := b.Next(); got != 5*time.Millisecond {
		t.Fatalf("first delay after reset: %v, want 5ms (0.5 × 10ms)", got)
	}
}

// TestBackoffDecorrelates: two schedules with different draws produce
// different delays at the same attempt — the lockstep-redial fix.
func TestBackoffDecorrelates(t *testing.T) {
	a := Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Rand: seqRand(0.2)}
	b := Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Rand: seqRand(0.9)}
	for i := 0; i < 5; i++ {
		if da, db := a.Next(), b.Next(); da == db {
			t.Fatalf("attempt %d: both schedules drew %v", i, da)
		}
	}
}

// TestBackoffDefaults: zero Base/Cap fall back to the documented
// defaults and the result never exceeds the cap.
func TestBackoffDefaults(t *testing.T) {
	b := Backoff{Rand: seqRand(0.999999)}
	var last time.Duration
	for i := 0; i < 12; i++ {
		last = b.Next()
		if last > DefaultBackoffCap {
			t.Fatalf("attempt %d exceeded the cap: %v", i, last)
		}
	}
	if last < DefaultBackoffCap-time.Millisecond {
		t.Fatalf("cap never reached: %v", last)
	}
}

// TestBreakerLifecycle: closed → open after the budget, refuses during
// cooldown, half-opens for one probe, closes on success and reopens on
// a failed probe.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := Breaker{Budget: 3, Cooldown: time.Second, Now: func() time.Time { return now }}
	for i := 0; i < 2; i++ {
		b.Failure()
		if _, ok := b.Allow(); !ok {
			t.Fatalf("breaker opened after %d failures, budget is 3", i+1)
		}
	}
	b.Failure() // third: opens
	if st := b.Snapshot(); st.State != "open" || st.Opens != 1 || st.ConsecutiveFailures != 3 {
		t.Fatalf("after budget: %+v", st)
	}
	if rem, ok := b.Allow(); ok || rem <= 0 {
		t.Fatalf("open breaker allowed an attempt (rem %v ok %v)", rem, ok)
	}
	now = now.Add(1500 * time.Millisecond)
	if _, ok := b.Allow(); !ok {
		t.Fatal("cooldown elapsed but breaker still refuses")
	}
	if st := b.Snapshot(); st.State != "half_open" {
		t.Fatalf("state %q, want half_open", st.State)
	}
	b.Failure() // failed probe reopens immediately
	if st := b.Snapshot(); st.State != "open" || st.Opens != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	now = now.Add(2 * time.Second)
	if _, ok := b.Allow(); !ok {
		t.Fatal("second cooldown elapsed but breaker refuses")
	}
	b.Success()
	if st := b.Snapshot(); st.State != "closed" || st.ConsecutiveFailures != 0 {
		t.Fatalf("after successful probe: %+v", st)
	}
}

// TestBreakerDisabled: a zero budget never opens.
func TestBreakerDisabled(t *testing.T) {
	var b Breaker
	for i := 0; i < 100; i++ {
		b.Failure()
	}
	if _, ok := b.Allow(); !ok {
		t.Fatal("disabled breaker refused")
	}
	if st := b.Snapshot(); st.State != "closed" {
		t.Fatalf("state %q, want closed", st.State)
	}
}
