package subscribe_test

// Differential subscription test on a replication follower: a manager
// bound to a wal.Follower must maintain exactly the same states as a
// from-scratch recompute against the follower's own views, with
// commits arriving through the replication stream rather than local
// applies.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"hyperprov/internal/engine"
	"hyperprov/internal/subscribe"
	"hyperprov/internal/wal"
)

// startLeaderStream serves st's replication stream over loopback HTTP
// and returns a StreamSource dialing it.
func startLeaderStream(t *testing.T, st *wal.Store) wal.StreamSource {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		from, err := strconv.ParseUint(req.URL.Query().Get("from"), 10, 64)
		if err != nil {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
		_ = st.ServeStream(req.Context(), w, from)
	}))
	t.Cleanup(ts.Close)
	return wal.HTTPSource(ts.URL, nil)
}

func waitFollowerLSN(t *testing.T, f *wal.Follower, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f.ReplicaStats().AppliedLSN >= lsn {
			return
		}
		time.Sleep(time.Millisecond)
	}
	rs := f.ReplicaStats()
	t.Fatalf("follower stuck at LSN %d waiting for %d (last error %q)", rs.AppliedLSN, lsn, rs.LastError)
}

// TestDifferentialOnFollower applies the workload transaction by
// transaction on the leader and, after replication catches up each
// time, compares every subscription's incremental state on the
// follower to a from-scratch recompute against the follower's view.
func TestDifferentialOnFollower(t *testing.T) {
	initial, txns := testWorkload(t, 21)
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithEngineOptions(engine.WithInitialAnnotations(testAnnot)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	src := startLeaderStream(t, st)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f, err := wal.OpenFollower(ctx, t.TempDir(), src,
		wal.WithSync(wal.SyncNever),
		wal.WithEngineOptions(engine.WithInitialAnnotations(testAnnot)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	m := subscribe.NewManager(f)
	defer m.Close()
	c := m.Attach(4)
	specs := testSpecs(f)
	for _, sp := range specs {
		if _, err := m.Subscribe(c, sp); err != nil {
			t.Fatalf("subscribe %q: %v", sp.ID, err)
		}
	}

	for i := range txns {
		if err := st.ApplyTransaction(&txns[i]); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		waitFollowerLSN(t, f, st.LSN())
		m.Sync()
		for _, sp := range specs {
			got, since, ok := m.CanonicalState(sp.ID)
			if !ok {
				t.Fatalf("txn %d: subscription %q vanished", i, sp.ID)
			}
			want, err := subscribe.Recompute(f.At(since), sp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("txn %d: follower subscription %q diverged at seq %d\nincremental:\n%srecompute:\n%s",
					i, sp.ID, since, got, want)
			}
		}
	}

	// The leader and follower states must also agree on the final
	// horizon (canonical bytes are engine-independent).
	for _, sp := range specs {
		lw, err := subscribe.Recompute(st.At(st.Horizon()), sp)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := subscribe.Recompute(f.At(f.Horizon()), sp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lw, fw) {
			t.Fatalf("leader and follower disagree on %q:\n%svs\n%s", sp.ID, lw, fw)
		}
	}
}
