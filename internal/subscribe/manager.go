package subscribe

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// ErrClosed reports a read from a connection whose manager or connection
// was closed.
var ErrClosed = errors.New("subscribe: connection closed")

// Frame is one message of the streaming protocol, in the JSON shape the
// /v1/subscribe surface writes verbatim (ND-JSON lines or SSE data
// payloads).
//
//   - "ack": a subscription was registered; Rows is its initial state at
//     Epoch. Every later frame for the ID reflects commits after Epoch.
//   - "delta": one committed transaction moved the subscription;
//     Added/Removed/Changed list the member rows that entered, left, or
//     (watches only) changed annotation.
//   - "resync": the client's copy went stale — the server dropped at
//     least one frame rather than block the write path — and Rows is the
//     full state at Epoch, replacing everything previously received.
//   - "error": terminal failure for the ID (or the whole stream when ID
//     is empty).
type Frame struct {
	Type    string `json:"type"`
	ID      string `json:"id,omitempty"`
	Kind    Kind   `json:"kind,omitempty"`
	Epoch   uint64 `json:"epoch"`
	Label   string `json:"label,omitempty"`
	Rows    []Row  `json:"rows,omitempty"`
	Added   []Row  `json:"added,omitempty"`
	Removed []Row  `json:"removed,omitempty"`
	Changed []Row  `json:"changed,omitempty"`
	Code    string `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

// Row is one member row in a frame.
type Row struct {
	Rel   string `json:"rel"`
	Tuple []any  `json:"tuple"`
	// Annotation is the row's provenance rendering (watch subscriptions
	// only).
	Annotation string `json:"annotation,omitempty"`
}

// item is one unit of dispatcher work: a commit event tagged with the
// engine that produced it, or a sync barrier.
type item struct {
	src  engine.DB
	ev   engine.CommitEvent
	sync chan struct{}
}

// Manager maintains every live subscription against one engine.DB. It
// consumes the engine's commit-event bus on a dedicated dispatcher
// goroutine: the commit hook only enqueues onto a bounded channel (or,
// on overflow, sets a lost flag and drops — the write path is never
// blocked), and the dispatcher folds events into subscription states
// and fans frames out to connections. A connection that does not keep
// up loses frames, not correctness: its subscription is flagged for
// resync and the next read returns a full snapshot.
type Manager struct {
	mu    sync.Mutex
	d     engine.DB
	relIx map[string]int
	subs  []*sub
	conns map[*Conn]struct{}
	seq   int // auto-ID counter

	items  chan item
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool

	// lost is set when the bounded queue overflowed: at least one event
	// was dropped, so every subscription state is suspect. The
	// dispatcher repairs by rebuilding all states from the live horizon
	// (exact — the horizon covers every dropped event).
	lost atomic.Bool

	nsubs    atomic.Int64
	lastSeq  atomic.Uint64 // newest horizon the dispatcher has folded in
	events   atomic.Uint64
	qdrops   atomic.Uint64
	deltas   atomic.Uint64
	fanout   atomic.Uint64
	cdrops   atomic.Uint64
	resyncs  atomic.Uint64
	rebuilds atomic.Uint64
}

// queueDepth bounds the hook→dispatcher channel; overflow costs a
// rebuild, not a stall.
const queueDepth = 256

// defaultConnBuffer bounds a connection's frame queue when Attach is
// given a non-positive buffer.
const defaultConnBuffer = 64

// NewManager builds a manager over d and installs its commit hook.
// Close must be called to uninstall it and stop the dispatcher.
func NewManager(d engine.DB) *Manager {
	m := &Manager{
		d:     d,
		relIx: relIndex(d.Schema()),
		conns: make(map[*Conn]struct{}),
		items: make(chan item, queueDepth),
		stop:  make(chan struct{}),
	}
	m.lastSeq.Store(d.Horizon())
	m.wg.Add(1)
	go m.dispatch()
	d.SetCommitHook(m.hookFor(d))
	return m
}

// hookFor tags events with the engine that produced them, so events
// from an engine replaced by Rebind are recognized and dropped.
func (m *Manager) hookFor(src engine.DB) engine.CommitHook {
	return func(ev engine.CommitEvent) { m.onCommit(src, ev) }
}

// onCommit runs on the committing goroutine with engine locks held: it
// must never block. Overflow drops the event and flags a rebuild.
func (m *Manager) onCommit(src engine.DB, ev engine.CommitEvent) {
	m.events.Add(1)
	if m.nsubs.Load() == 0 && ev.Kind != engine.CommitReset {
		// No subscriptions: just track the horizon; nothing to fold.
		m.storeLastSeq(ev.Seq)
		return
	}
	select {
	case m.items <- item{src: src, ev: ev}:
	default:
		m.qdrops.Add(1)
		m.lost.Store(true)
	}
}

// storeLastSeq advances lastSeq monotonically (sharded engines may
// report an epoch after a tracker batch already covered it).
func (m *Manager) storeLastSeq(seq uint64) {
	for {
		cur := m.lastSeq.Load()
		if seq <= cur || m.lastSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

func (m *Manager) dispatch() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case it := <-m.items:
			if it.sync != nil {
				if m.lost.Swap(false) {
					m.rebuild()
				}
				close(it.sync)
				continue
			}
			if m.lost.Swap(false) {
				// The rebuild horizon covers this event too; skip it.
				m.rebuild()
				continue
			}
			if it.ev.Kind == engine.CommitReset {
				m.rebuild()
				continue
			}
			m.applyEvent(it.src, it.ev)
		}
	}
}

// applyEvent folds one commit into every subscription at the event's
// own horizon, so a burst of commits yields one exact delta per commit
// rather than a merged diff.
func (m *Manager) applyEvent(src engine.DB, ev engine.CommitEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src != m.d {
		return // stale engine, already rebound away from
	}
	m.storeLastSeq(ev.Seq)
	if len(m.subs) == 0 {
		return
	}
	v := m.d.At(ev.Seq)
	for _, s := range m.subs {
		if ev.Seq <= s.since {
			continue
		}
		d, n := s.apply(v, ev)
		m.fanout.Add(n)
		s.since = ev.Seq
		if d == nil {
			continue
		}
		m.deltas.Add(1)
		if s.needResync {
			continue // the pending snapshot will include this delta
		}
		f := Frame{
			Type:    "delta",
			ID:      s.spec.ID,
			Kind:    s.spec.Kind,
			Epoch:   ev.Epoch,
			Label:   ev.Label,
			Added:   m.rowsLocked(d.added),
			Removed: m.rowsLocked(d.removed),
			Changed: m.rowsLocked(d.changed),
		}
		if !s.conn.trySend(f) {
			s.needResync = true
			m.cdrops.Add(1)
			s.conn.poke()
		}
	}
}

// rebuild re-primes every subscription from scratch at the live
// horizon and flags all of them for resync. Called after a queue
// overflow, an engine swap (CommitReset), or a Rebind.
func (m *Manager) rebuild() {
	m.rebuilds.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.relIx = relIndex(m.d.Schema())
	h := m.d.Horizon()
	v := m.d.At(h)
	for _, s := range m.subs {
		s.prime(v)
		s.since = h
		s.needResync = true
		s.conn.poke()
	}
	m.storeLastSeq(h)
}

// rowsLocked renders entries as frame rows in canonical order; callers
// hold m.mu (for relIx).
func (m *Manager) rowsLocked(es []*entry) []Row {
	if len(es) == 0 {
		return nil
	}
	sortEntries(es, m.relIx)
	out := make([]Row, len(es))
	for i, e := range es {
		out[i] = Row{Rel: e.rel, Tuple: tupleJSON(e.tuple), Annotation: e.ann}
	}
	return out
}

func tupleJSON(t db.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Kind() {
		case db.KindString:
			out[i] = v.Str()
		case db.KindInt:
			out[i] = v.Int()
		case db.KindFloat:
			out[i] = v.Float()
		}
	}
	return out
}

// Sync blocks until the dispatcher has folded in every event enqueued
// before the call (repairing any overflow first). Tests use it as a
// barrier between ApplyAll and state assertions.
func (m *Manager) Sync() {
	ch := make(chan struct{})
	select {
	case m.items <- item{sync: ch}:
	case <-m.stop:
		return
	}
	select {
	case <-ch:
	case <-m.stop:
	}
}

// Rebind switches the manager to a new engine (the snapshot-load path
// replaces the server's engine wholesale): the old engine's hook is
// removed, the new engine's installed, and every subscription is
// rebuilt against the new engine. Events still in flight from the old
// engine are dropped by source tag.
func (m *Manager) Rebind(d engine.DB) {
	m.mu.Lock()
	if m.closed || d == m.d {
		m.mu.Unlock()
		return
	}
	old := m.d
	m.d = d
	m.mu.Unlock()
	old.SetCommitHook(nil)
	d.SetCommitHook(m.hookFor(d))
	// Force a rebuild even if no further commits arrive on d. Blocking
	// send is fine here: Rebind runs on a server goroutine, not the
	// commit path, and the dispatcher always drains.
	select {
	case m.items <- item{src: d, ev: engine.CommitEvent{Kind: engine.CommitReset}}:
	case <-m.stop:
	}
}

// Close uninstalls the hook, stops the dispatcher and closes every
// connection. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	d := m.d
	conns := make([]*Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()
	d.SetCommitHook(nil)
	close(m.stop)
	m.wg.Wait()
	for _, c := range conns {
		c.Close()
	}
}

// Stats is the subscriptions section of /v1/stats. Field names are
// stable (documented in DESIGN.md).
type Stats struct {
	// Subscriptions and Connections are the live registration counts.
	Subscriptions int `json:"subscriptions"`
	Connections   int `json:"connections"`
	// Events counts commit events the engine delivered to the hook;
	// EventDrops counts those dropped on queue overflow (each costing
	// one rebuild, never a write-path stall).
	Events     uint64 `json:"events"`
	EventDrops uint64 `json:"eventDrops"`
	// Deltas counts non-empty per-subscription deltas produced; Fanout
	// counts row re-specializations performed across all subscriptions.
	Deltas uint64 `json:"deltas"`
	Fanout uint64 `json:"fanout"`
	// FrameDrops counts frames dropped on slow connections, Resyncs the
	// snapshot frames served to repair them, Rebuilds the from-scratch
	// re-primes (overflow, engine swap, rebind).
	FrameDrops uint64 `json:"frameDrops"`
	Resyncs    uint64 `json:"resyncs"`
	Rebuilds   uint64 `json:"rebuilds"`
	// LagEpochs is how many committed epochs the dispatcher has not yet
	// folded into subscription states.
	LagEpochs uint64 `json:"lagEpochs"`
}

// StatsSnapshot reports the manager's counters.
func (m *Manager) StatsSnapshot() Stats {
	m.mu.Lock()
	nsubs, nconns := len(m.subs), len(m.conns)
	h := m.d.Horizon()
	m.mu.Unlock()
	st := Stats{
		Subscriptions: nsubs,
		Connections:   nconns,
		Events:        m.events.Load(),
		EventDrops:    m.qdrops.Load(),
		Deltas:        m.deltas.Load(),
		Fanout:        m.fanout.Load(),
		FrameDrops:    m.cdrops.Load(),
		Resyncs:       m.resyncs.Load(),
		Rebuilds:      m.rebuilds.Load(),
	}
	if last := m.lastSeq.Load(); h > last {
		st.LagEpochs = engine.SeqEpoch(h) - engine.SeqEpoch(last)
	}
	return st
}

// CanonicalState returns the canonical byte rendering of one live
// subscription's incrementally maintained state — what the
// differential tests compare against Recompute.
func (m *Manager) CanonicalState(id string) ([]byte, uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.subs {
		if s.spec.ID == id {
			return canonical(s.entries(m.relIx)), s.since, true
		}
	}
	return nil, 0, false
}

// Conn is one client connection: a bounded frame queue the dispatcher
// fans out to, plus the wakeup plumbing for pull-based resync. A Conn
// may carry any number of subscriptions.
type Conn struct {
	m  *Manager
	ch chan Frame
	// note wakes a blocked Next when a subscription was flagged for
	// resync without a frame making it onto ch.
	note   chan struct{}
	closed chan struct{}
	once   sync.Once
}

// Attach registers a new connection; buffer bounds its frame queue
// (<= 0 selects the default). Returns nil if the manager is closed.
func (m *Manager) Attach(buffer int) *Conn {
	if buffer <= 0 {
		buffer = defaultConnBuffer
	}
	c := &Conn{
		m:      m,
		ch:     make(chan Frame, buffer),
		note:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.conns[c] = struct{}{}
	return c
}

func (c *Conn) trySend(f Frame) bool {
	select {
	case c.ch <- f:
		return true
	default:
		return false
	}
}

func (c *Conn) poke() {
	select {
	case c.note <- struct{}{}:
	default:
	}
}

// Subscribe registers a subscription on the connection and returns its
// ack frame carrying the initial state. The caller must deliver the
// ack before pumping Next: every queued frame for the ID reflects
// commits after the ack's epoch.
func (m *Manager) Subscribe(c *Conn, sp Spec) (Frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Frame{}, ErrClosed
	}
	if sp.ID == "" {
		m.seq++
		sp.ID = fmt.Sprintf("sub-%d", m.seq)
	}
	for _, s := range m.subs {
		if s.conn == c && s.spec.ID == sp.ID {
			return Frame{}, fmt.Errorf("duplicate subscription id %q", sp.ID)
		}
	}
	s, err := compile(m.d.Schema(), sp)
	if err != nil {
		return Frame{}, err
	}
	h := m.d.Horizon()
	s.prime(m.d.At(h))
	s.since = h
	s.conn = c
	m.subs = append(m.subs, s)
	m.nsubs.Store(int64(len(m.subs)))
	return Frame{
		Type:  "ack",
		ID:    sp.ID,
		Kind:  sp.Kind,
		Epoch: engine.SeqEpoch(h),
		Rows:  m.rowsLocked(s.entries(m.relIx)),
	}, nil
}

// Unsubscribe removes one subscription from the connection.
func (m *Manager) Unsubscribe(c *Conn, id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range m.subs {
		if s.conn == c && s.spec.ID == id {
			m.subs = append(m.subs[:i], m.subs[i+1:]...)
			m.nsubs.Store(int64(len(m.subs)))
			return true
		}
	}
	return false
}

// takeResync builds the pending resync frame for the connection's
// first stale subscription, if any. Generated at read time — a client
// behind on a quiet stream still repairs on its next read.
func (m *Manager) takeResync(c *Conn) (Frame, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.subs {
		if s.conn != c || !s.needResync {
			continue
		}
		s.needResync = false
		m.resyncs.Add(1)
		return Frame{
			Type:  "resync",
			ID:    s.spec.ID,
			Kind:  s.spec.Kind,
			Epoch: engine.SeqEpoch(s.since),
			Rows:  m.rowsLocked(s.entries(m.relIx)),
		}, true
	}
	return Frame{}, false
}

// Next returns the connection's next frame, blocking until one is
// available or ctx is done. Resync frames are generated here, at read
// time, so a stale client repairs even when no further commits arrive.
func (c *Conn) Next(ctx context.Context) (Frame, error) {
	for {
		select {
		case f := <-c.ch:
			return f, nil
		default:
		}
		if f, ok := c.m.takeResync(c); ok {
			return f, nil
		}
		select {
		case f := <-c.ch:
			return f, nil
		case <-c.note:
		case <-ctx.Done():
			return Frame{}, ctx.Err()
		case <-c.closed:
			// Drain frames already queued before reporting closure.
			select {
			case f := <-c.ch:
				return f, nil
			default:
			}
			return Frame{}, ErrClosed
		}
	}
}

// Close detaches the connection and removes its subscriptions.
// Idempotent; a blocked Next returns ErrClosed.
func (c *Conn) Close() {
	c.once.Do(func() {
		m := c.m
		m.mu.Lock()
		delete(m.conns, c)
		kept := m.subs[:0]
		for _, s := range m.subs {
			if s.conn != c {
				kept = append(kept, s)
			}
		}
		m.subs = kept
		m.nsubs.Store(int64(len(m.subs)))
		m.mu.Unlock()
		close(c.closed)
	})
}
