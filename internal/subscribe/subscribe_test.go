package subscribe_test

// Differential and behavioral tests for live subscriptions. The core
// property: after every committed epoch, the incrementally maintained
// state of each subscription is byte-identical to a from-scratch
// recompute (Recompute) against a view pinned at that epoch — across
// shard counts, both provenance modes, and on a replication follower.
// The behavioral tests cover commit-order delivery, slow and stalled
// subscribers (the write path must never block), concurrent
// subscribe/unsubscribe under -race, and delivery across an engine
// swap (Rebind).

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/subscribe"
	"hyperprov/internal/workload"
)

func testAnnot(rel string, t db.Tuple) core.Annot {
	return core.TupleAnnot("t_" + t.Key())
}

// testWorkload builds a small seeded update log with merge-heavy
// transactions so deltas exercise added, removed and changed rows.
func testWorkload(t testing.TB, seed int64) (*db.Database, []db.Transaction) {
	t.Helper()
	initial, txns, err := workload.Generate(workload.Config{
		Tuples: 80, Pool: 16, Group: 2, Updates: 30,
		QueriesPerTxn: 2, MergeRatio: 0.4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return initial, txns
}

// poolTupleNames returns the annotation names of the first n initial
// tuples (the workload's affected pool, in insertion order).
func poolTupleNames(d engine.Reader, n int) []string {
	var names []string
	d.EachRow("R", func(tu db.Tuple, _ *core.Expr) {
		if len(names) < n {
			names = append(names, "t_"+tu.Key())
		}
	})
	return names
}

// testSpecs is the subscription mix the differential suite maintains:
// a deletion what-if over pool tuples, an abort what-if over the first
// transaction labels, a whole-relation watch and a hyperplane watch.
func testSpecs(d engine.Reader) []subscribe.Spec {
	return []subscribe.Spec{
		{ID: "del", Kind: subscribe.KindDeletion, Tuples: poolTupleNames(d, 6)},
		{ID: "abort", Kind: subscribe.KindAbort, Labels: []string{"q0", "q1", "q2"}},
		{ID: "watch", Kind: subscribe.KindWatch, Rel: "R"},
		{ID: "watch-alpha", Kind: subscribe.KindWatch, Rel: "R",
			Match: []any{nil, nil, "alpha", nil, nil}},
	}
}

// checkDifferential asserts every registered spec's incremental state
// equals a from-scratch recompute at the state's own horizon.
func checkDifferential(t *testing.T, m *subscribe.Manager, d engine.DB, specs []subscribe.Spec, step int) {
	t.Helper()
	for _, sp := range specs {
		got, since, ok := m.CanonicalState(sp.ID)
		if !ok {
			t.Fatalf("step %d: subscription %q vanished", step, sp.ID)
		}
		want, err := subscribe.Recompute(d.At(since), sp)
		if err != nil {
			t.Fatalf("step %d: recompute %q: %v", step, sp.ID, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("step %d: subscription %q diverged at seq %d\nincremental:\n%srecompute:\n%s",
				step, sp.ID, since, got, want)
		}
	}
}

// TestDifferentialIncrementalVsRecompute drives the full matrix:
// shards {1, 8} × both provenance modes, comparing incremental states
// to from-scratch recomputes after every single committed transaction.
// The connection buffer is deliberately tiny so frame drops and resync
// flags occur mid-run: delivery may degrade, state exactness may not.
func TestDifferentialIncrementalVsRecompute(t *testing.T) {
	for _, shards := range []int{1, 8} {
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			t.Run(fmt.Sprintf("shards=%d/mode=%v", shards, mode), func(t *testing.T) {
				initial, txns := testWorkload(t, 3)
				d := engine.Open(mode, initial,
					engine.WithShards(shards),
					engine.WithInitialAnnotations(testAnnot))
				m := subscribe.NewManager(d)
				defer m.Close()
				c := m.Attach(4)
				specs := testSpecs(d)
				for _, sp := range specs {
					if _, err := m.Subscribe(c, sp); err != nil {
						t.Fatalf("subscribe %q: %v", sp.ID, err)
					}
				}
				for i := range txns {
					if err := d.ApplyTransaction(&txns[i]); err != nil {
						t.Fatalf("txn %d: %v", i, err)
					}
					m.Sync()
					checkDifferential(t, m, d, specs, i)
				}
			})
		}
	}
}

// TestCommitOrderDelivery asserts delta frames arrive in strictly
// increasing epoch order with no resync interleaved when the
// connection keeps up.
func TestCommitOrderDelivery(t *testing.T) {
	initial, txns := testWorkload(t, 5)
	d := engine.Open(engine.ModeNormalForm, initial,
		engine.WithInitialAnnotations(testAnnot))
	m := subscribe.NewManager(d)
	defer m.Close()
	c := m.Attach(len(txns) + 8)
	if _, err := m.Subscribe(c, subscribe.Spec{ID: "w", Kind: subscribe.KindWatch, Rel: "R"}); err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	m.Sync()

	var last uint64
	var frames int
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		f, err := c.Next(ctx)
		cancel()
		if err != nil {
			break // drained
		}
		if f.Type != "delta" {
			t.Fatalf("frame %d: unexpected type %q (a keeping-up connection must see deltas only)", frames, f.Type)
		}
		if f.Epoch <= last {
			t.Fatalf("frame %d: epoch %d not after %d", frames, f.Epoch, last)
		}
		last = f.Epoch
		frames++
	}
	if frames == 0 {
		t.Fatal("no delta frames delivered")
	}
	if st := m.StatsSnapshot(); st.FrameDrops != 0 || st.EventDrops != 0 {
		t.Fatalf("unexpected drops on a keeping-up connection: %+v", st)
	}
}

// TestStalledSubscriberNeverBlocksApply registers a subscriber on a
// 1-frame buffer that never reads while the full workload applies; the
// write path must complete promptly, and the subscriber's next read
// must repair it with a resync snapshot matching a fresh recompute.
func TestStalledSubscriberNeverBlocksApply(t *testing.T) {
	initial, txns := testWorkload(t, 7)
	d := engine.Open(engine.ModeNormalForm, initial,
		engine.WithShards(4),
		engine.WithInitialAnnotations(testAnnot))
	m := subscribe.NewManager(d)
	defer m.Close()
	c := m.Attach(1)
	sp := subscribe.Spec{ID: "w", Kind: subscribe.KindWatch, Rel: "R"}
	if _, err := m.Subscribe(c, sp); err != nil {
		t.Fatal(err)
	}

	// A stalled reader: it takes at most one frame, then never reads
	// again, holding the 1-frame buffer full for the whole apply.
	stall, stallCancel := context.WithCancel(context.Background())
	defer stallCancel()
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		_, _ = c.Next(stall)
		<-stall.Done()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	if err := d.ApplyAll(ctx, txns); err != nil {
		t.Fatalf("apply blocked behind stalled subscriber: %v (after %v)", err, time.Since(start))
	}
	m.Sync()
	stallCancel()
	readerDone.Wait()

	if st := m.StatsSnapshot(); st.FrameDrops == 0 {
		t.Fatalf("expected frame drops on a stalled 1-buffer connection, got %+v", st)
	}
	// Drain the one buffered frame, then expect the resync snapshot.
	var resync *subscribe.Frame
	for i := 0; i < 4; i++ {
		rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Second)
		f, err := c.Next(rctx)
		rcancel()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if f.Type == "resync" {
			resync = &f
			break
		}
	}
	if resync == nil {
		t.Fatal("stalled subscriber never offered a resync frame")
	}
	got, since, _ := m.CanonicalState("w")
	want, err := subscribe.Recompute(d.At(since), sp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-resync state diverged:\n%svs\n%s", got, want)
	}
	if len(resync.Rows) != bytes.Count(want, []byte("\n")) {
		t.Fatalf("resync carries %d rows, recompute has %d", len(resync.Rows), bytes.Count(want, []byte("\n")))
	}
}

// TestConcurrentSubscribeUnsubscribe churns connections and
// subscriptions from several goroutines while the workload applies —
// run under -race in CI — then differentially checks a subscription
// that lived through all of it.
func TestConcurrentSubscribeUnsubscribe(t *testing.T) {
	initial, txns := testWorkload(t, 9)
	d := engine.Open(engine.ModeNormalForm, initial,
		engine.WithShards(4),
		engine.WithInitialAnnotations(testAnnot))
	m := subscribe.NewManager(d)
	defer m.Close()

	keeper := m.Attach(4)
	sp := subscribe.Spec{ID: "keep", Kind: subscribe.KindWatch, Rel: "R"}
	if _, err := m.Subscribe(keeper, sp); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := m.Attach(2)
				if c == nil {
					return
				}
				id := fmt.Sprintf("churn-%d-%d", g, i)
				if _, err := m.Subscribe(c, subscribe.Spec{
					ID: id, Kind: subscribe.KindDeletion, Tuples: []string{"t_x"},
				}); err != nil {
					t.Error(err)
					c.Close()
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				_, _ = c.Next(ctx)
				cancel()
				if i%2 == 0 {
					m.Unsubscribe(c, id)
				}
				c.Close()
			}
		}(g)
	}

	if err := d.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	m.Sync()
	checkDifferential(t, m, d, []subscribe.Spec{sp}, -1)

	st := m.StatsSnapshot()
	if st.Subscriptions != 1 || st.Connections != 1 {
		t.Fatalf("churned registrations leaked: %+v", st)
	}
}

// TestRebindAcrossEngineSwap simulates the snapshot-load path: the
// manager is rebound to a brand-new engine mid-stream. Subscriptions
// must rebuild against the new engine, flag resync, and keep exact
// incremental state for commits on the new engine; late events from
// the old engine must be ignored.
func TestRebindAcrossEngineSwap(t *testing.T) {
	initialA, txnsA := testWorkload(t, 11)
	d1 := engine.Open(engine.ModeNormalForm, initialA,
		engine.WithInitialAnnotations(testAnnot))
	m := subscribe.NewManager(d1)
	defer m.Close()
	c := m.Attach(64)
	sp := subscribe.Spec{ID: "w", Kind: subscribe.KindWatch, Rel: "R"}
	if _, err := m.Subscribe(c, sp); err != nil {
		t.Fatal(err)
	}
	if err := d1.ApplyAll(context.Background(), txnsA[:10]); err != nil {
		t.Fatal(err)
	}
	m.Sync()

	initialB, txnsB := testWorkload(t, 13)
	d2 := engine.Open(engine.ModeNormalForm, initialB,
		engine.WithShards(2),
		engine.WithInitialAnnotations(testAnnot))
	m.Rebind(d2)
	// Old engine keeps committing after the swap; its events must not
	// corrupt state now maintained against d2.
	if err := d1.ApplyAll(context.Background(), txnsA[10:]); err != nil {
		t.Fatal(err)
	}
	for i := range txnsB {
		if err := d2.ApplyTransaction(&txnsB[i]); err != nil {
			t.Fatal(err)
		}
		m.Sync()
		checkDifferential(t, m, d2, []subscribe.Spec{sp}, i)
	}

	// The reader must be offered a resync for the swap.
	sawResync := false
	for i := 0; i < 256 && !sawResync; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		f, err := c.Next(ctx)
		cancel()
		if err != nil {
			break
		}
		sawResync = f.Type == "resync"
	}
	if !sawResync {
		t.Fatal("no resync frame after engine swap")
	}
	if st := m.StatsSnapshot(); st.Rebuilds == 0 {
		t.Fatalf("rebind did not rebuild: %+v", st)
	}
}

// TestSubscribeErrors covers spec validation and duplicate IDs.
func TestSubscribeErrors(t *testing.T) {
	initial, _ := testWorkload(t, 15)
	d := engine.Open(engine.ModeNormalForm, initial,
		engine.WithInitialAnnotations(testAnnot))
	m := subscribe.NewManager(d)
	defer m.Close()
	c := m.Attach(0)

	bad := []subscribe.Spec{
		{Kind: subscribe.KindDeletion},                                   // no tuples
		{Kind: subscribe.KindAbort},                                      // no labels
		{Kind: subscribe.KindWatch, Rel: "nope"},                         // unknown relation
		{Kind: subscribe.KindWatch, Rel: "R", Match: []any{nil}},         // arity
		{Kind: subscribe.KindWatch, Rel: "R", Match: []any{true, nil, nil, nil, nil}}, // type
		{Kind: "nonsense"},
	}
	for i, sp := range bad {
		if _, err := m.Subscribe(c, sp); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
	if _, err := m.Subscribe(c, subscribe.Spec{ID: "dup", Kind: subscribe.KindWatch, Rel: "R"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Subscribe(c, subscribe.Spec{ID: "dup", Kind: subscribe.KindWatch, Rel: "R"}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if !m.Unsubscribe(c, "dup") || m.Unsubscribe(c, "dup") {
		t.Fatal("unsubscribe bookkeeping wrong")
	}

	// Auto-assigned IDs must be unique and acknowledged.
	a1, err := m.Subscribe(c, subscribe.Spec{Kind: subscribe.KindWatch, Rel: "R"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Subscribe(c, subscribe.Spec{Kind: subscribe.KindWatch, Rel: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Type != "ack" || a2.Type != "ack" || a1.ID == "" || a1.ID == a2.ID {
		t.Fatalf("bad acks: %+v / %+v", a1, a2)
	}
}

// TestAckCarriesInitialState: the ack snapshot must equal a recompute
// at the ack's epoch, so a client's state machine starts exact.
func TestAckCarriesInitialState(t *testing.T) {
	initial, txns := testWorkload(t, 17)
	d := engine.Open(engine.ModeNormalForm, initial,
		engine.WithInitialAnnotations(testAnnot))
	if err := d.ApplyAll(context.Background(), txns[:8]); err != nil {
		t.Fatal(err)
	}
	m := subscribe.NewManager(d)
	defer m.Close()
	c := m.Attach(0)
	sp := subscribe.Spec{ID: "w", Kind: subscribe.KindWatch, Rel: "R"}
	ack, err := m.Subscribe(c, sp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := subscribe.Recompute(d.At(engine.EpochSeq(ack.Epoch)), sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(want, []byte("\n")); len(ack.Rows) != got {
		t.Fatalf("ack has %d rows, recompute %d", len(ack.Rows), got)
	}
}
