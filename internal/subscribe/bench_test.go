package subscribe_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"hyperprov/internal/engine"
	"hyperprov/internal/subscribe"
	"hyperprov/internal/workload"
)

// BenchmarkSubscriptionFanout measures delta production and fanout
// cost while the Section 6.2 update mix applies over a 100k-tuple
// table, at 1, 64 and 512 live subscribers. Subscriber i watches pool
// group i mod groups (the hyperplane pattern production watchers would
// use) on its own drained connection, so every committed transaction
// is screened against every subscription; the reported time covers
// apply + full fanout (Sync barriers each iteration).
func BenchmarkSubscriptionFanout(b *testing.B) {
	const pool, group = 200, 1
	initial, txns, err := workload.Generate(workload.Config{
		Tuples: 100_000, Pool: pool, Group: group, Updates: 100,
		QueriesPerTxn: 10, MergeRatio: 0.1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, subs := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			d := engine.Open(engine.ModeNormalForm, initial,
				engine.WithInitialAnnotations(testAnnot))
			m := subscribe.NewManager(d)
			defer m.Close()

			// LIFO: cancel releases the drainers before Wait runs.
			var drainers sync.WaitGroup
			defer drainers.Wait()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for i := 0; i < subs; i++ {
				c := m.Attach(256)
				if _, err := m.Subscribe(c, subscribe.Spec{
					ID: fmt.Sprintf("w%d", i), Kind: subscribe.KindWatch, Rel: "R",
					Match: []any{nil, float64(i % (pool / group)), nil, nil, nil},
				}); err != nil {
					b.Fatal(err)
				}
				drainers.Add(1)
				go func() {
					defer drainers.Done()
					for {
						if _, err := c.Next(ctx); err != nil {
							return
						}
					}
				}()
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.ApplyAll(context.Background(), txns); err != nil {
					b.Fatal(err)
				}
				m.Sync()
			}
			b.StopTimer()
			st := m.StatsSnapshot()
			b.ReportMetric(float64(st.Fanout)/float64(b.N), "rowevals/op")
			b.ReportMetric(float64(st.Deltas)/float64(b.N), "deltas/op")
		})
	}
}
