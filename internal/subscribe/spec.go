// Package subscribe maintains live provenance subscriptions over the
// engine's commit-event bus (engine.CommitHook): clients register a
// what-if once — a deletion-propagation impact set, an abort what-if,
// or an annotation watch on a (relation, pattern) — and receive
// incremental deltas as transactions commit, instead of re-asking
// /v1/whatif/* after every write.
//
// Incrementality is exact, not approximate: the Theorem 5.3 normal
// form is per-row local (a row's annotation depends only on that row's
// history and the query annotations, never on other rows), so rows a
// commit did not touch cannot change their specialization. Each commit
// event names exactly the touched rows; re-specializing those rows at
// the event's horizon therefore reproduces a from-scratch recompute —
// the differential tests assert byte-identical canonical states at
// every epoch, across shard counts, modes and on followers.
package subscribe

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/upstruct"
)

// Kind selects what a subscription maintains.
type Kind string

const (
	// KindDeletion maintains the Section 4.1 deletion-propagation
	// what-if: the database as it would look had the named input-tuple
	// annotations never existed. The maintained state is the set of
	// surviving rows.
	KindDeletion Kind = "deletion"
	// KindAbort maintains the transaction-abortion what-if over the
	// named transaction labels.
	KindAbort Kind = "abort"
	// KindWatch maintains the support rows of one relation matching a
	// hyperplane pattern, together with their annotation strings —
	// "tell me whenever provenance touches these tuples".
	KindWatch Kind = "watch"
)

// Spec describes one subscription, in the JSON shape the streaming API
// accepts verbatim.
type Spec struct {
	// ID names the subscription in its connection's frames. Optional;
	// the manager assigns sub-N when empty.
	ID   string `json:"id,omitempty"`
	Kind Kind   `json:"kind"`
	// Tuples are the input-tuple annotation names a deletion what-if
	// deletes (KindDeletion).
	Tuples []string `json:"tuples,omitempty"`
	// Labels are the transaction labels an abort what-if aborts
	// (KindAbort).
	Labels []string `json:"labels,omitempty"`
	// Rel and Match select the watched rows (KindWatch): Match has one
	// entry per attribute of Rel — null matches anything, a JSON value
	// must equal the attribute. An absent Match watches the whole
	// relation.
	Rel   string `json:"rel,omitempty"`
	Match []any  `json:"match,omitempty"`
	// Pattern is the typed form of Match for programmatic use (the
	// facade's Watch); it wins over Match when non-nil.
	Pattern db.Pattern `json:"-"`
}

// sub is one live subscription: its compiled spec plus the
// incrementally maintained state.
type sub struct {
	spec Spec
	conn *Conn

	env upstruct.Env[bool] // deletion/abort: the Boolean valuation
	pat db.Pattern         // watch: the compiled pattern

	// since is the horizon sequence the state reflects; events at or
	// below it are skipped (the state already includes them).
	since uint64
	// needResync marks the client copy stale (a delta frame was dropped
	// on the bounded queue, or the manager rebuilt after an overflow or
	// reset); the state itself stays exact. The reader repairs it by
	// pulling a full resync snapshot.
	needResync bool

	// state maps rel+"\x00"+tuple.Key() to the member entry.
	state map[string]*entry
}

// entry is one member row of a subscription state. For watches, ann is
// the row's annotation rendering (what "changed" frames diff); for
// what-ifs membership itself is the state and ann stays empty.
type entry struct {
	rel   string
	key   string
	tuple db.Tuple
	ann   string
}

func stateKey(rel, key string) string { return rel + "\x00" + key }

// compile validates a spec against the schema and builds the sub.
func compile(schema *db.Schema, sp Spec) (*sub, error) {
	s := &sub{spec: sp, state: make(map[string]*entry)}
	switch sp.Kind {
	case KindDeletion:
		if len(sp.Tuples) == 0 {
			return nil, fmt.Errorf("deletion subscription needs tuples")
		}
		dead := make(map[core.Annot]bool, len(sp.Tuples))
		for _, name := range sp.Tuples {
			dead[core.TupleAnnot(name)] = false
		}
		s.env = upstruct.MapEnv(dead, true)
	case KindAbort:
		if len(sp.Labels) == 0 {
			return nil, fmt.Errorf("abort subscription needs labels")
		}
		dead := make(map[core.Annot]bool, len(sp.Labels))
		for _, l := range sp.Labels {
			dead[core.QueryAnnot(l)] = false
		}
		s.env = upstruct.MapEnv(dead, true)
	case KindWatch:
		rel := schema.Relation(sp.Rel)
		if rel == nil {
			return nil, fmt.Errorf("%w %q", engine.ErrUnknownRelation, sp.Rel)
		}
		pat := sp.Pattern
		if pat == nil {
			var err error
			if pat, err = matchPattern(rel, sp.Match); err != nil {
				return nil, err
			}
		}
		if err := pat.Validate(rel); err != nil {
			return nil, fmt.Errorf("watch pattern: %v", err)
		}
		s.pat = pat
	default:
		return nil, fmt.Errorf("unknown subscription kind %q", sp.Kind)
	}
	return s, nil
}

// matchPattern compiles the JSON match array (null = wildcard, value =
// equality) into a typed pattern over the relation.
func matchPattern(rel *db.RelationSchema, match []any) (db.Pattern, error) {
	if match == nil {
		return db.AllPattern(len(rel.Attrs)), nil
	}
	if len(match) != len(rel.Attrs) {
		return nil, fmt.Errorf("match has %d terms, relation %s needs %d", len(match), rel.Name, len(rel.Attrs))
	}
	pat := make(db.Pattern, len(match))
	for i, raw := range match {
		a := rel.Attrs[i]
		if raw == nil {
			pat[i] = db.AnyVar(fmt.Sprintf("x%d", i))
			continue
		}
		v, err := matchValue(a, raw)
		if err != nil {
			return nil, err
		}
		pat[i] = db.Const(v)
	}
	return pat, nil
}

// matchValue converts one JSON match term to a typed value, with the
// same conversions the ingest surface applies to tuples.
func matchValue(a db.Attribute, raw any) (db.Value, error) {
	switch a.Kind {
	case db.KindString:
		s, ok := raw.(string)
		if !ok {
			return db.Value{}, fmt.Errorf("attribute %s wants a string, got %T", a.Name, raw)
		}
		return db.S(s), nil
	case db.KindInt:
		switch n := raw.(type) {
		case float64:
			if n != math.Trunc(n) {
				return db.Value{}, fmt.Errorf("attribute %s wants an integer, got %v", a.Name, n)
			}
			return db.I(int64(n)), nil
		case string:
			return db.ParseValue(db.KindInt, n)
		}
	case db.KindFloat:
		switch n := raw.(type) {
		case float64:
			return db.F(n), nil
		case string:
			return db.ParseValue(db.KindFloat, n)
		}
	}
	return db.Value{}, fmt.Errorf("attribute %s: cannot match %T", a.Name, raw)
}

// prime rebuilds the subscription state from scratch against a reader
// (a pinned view or a live engine).
func (s *sub) prime(v engine.Reader) {
	s.state = make(map[string]*entry)
	if s.spec.Kind == KindWatch {
		if v.Schema().Relation(s.spec.Rel) == nil {
			return // relation vanished across an engine swap
		}
		v.EachRow(s.spec.Rel, func(t db.Tuple, ann *core.Expr) {
			if !s.pat.Matches(t) || ann.IsZero() {
				return
			}
			k := t.Key()
			s.state[stateKey(s.spec.Rel, k)] = &entry{rel: s.spec.Rel, key: k, tuple: t, ann: ann.String()}
		})
		return
	}
	engine.Specialize[bool](v, upstruct.Bool, s.env, func(rel string, t db.Tuple, member bool) {
		if !member {
			return
		}
		k := t.Key()
		s.state[stateKey(rel, k)] = &entry{rel: rel, key: k, tuple: t}
	})
}

// apply folds one commit event into the state, re-specializing exactly
// the touched rows at the event's horizon (v = db.At(ev.Seq)), and
// returns the delta — nil when the event does not move this
// subscription — plus the number of rows evaluated (the fanout
// counter).
func (s *sub) apply(v engine.Reader, ev engine.CommitEvent) (*delta, uint64) {
	var d delta
	var n uint64
	for _, ref := range ev.Rows {
		if s.spec.Kind == KindWatch {
			if ref.Rel != s.spec.Rel || !s.pat.Matches(ref.Tuple) {
				continue
			}
			n++
			k := stateKey(ref.Rel, ref.Tuple.Key())
			ann := v.Annotation(ref.Rel, ref.Tuple)
			inSupport := ann != nil && !ann.IsZero()
			old := s.state[k]
			switch {
			case inSupport && old == nil:
				e := &entry{rel: ref.Rel, key: ref.Tuple.Key(), tuple: ref.Tuple, ann: ann.String()}
				s.state[k] = e
				d.added = append(d.added, e)
			case !inSupport && old != nil:
				delete(s.state, k)
				d.removed = append(d.removed, old)
			case inSupport:
				if rendered := ann.String(); rendered != old.ann {
					old.ann = rendered
					d.changed = append(d.changed, old)
				}
			}
			continue
		}
		n++
		k := stateKey(ref.Rel, ref.Tuple.Key())
		ann := v.Annotation(ref.Rel, ref.Tuple)
		member := ann != nil && upstruct.Eval(ann, upstruct.Bool, s.env)
		old := s.state[k]
		switch {
		case member && old == nil:
			e := &entry{rel: ref.Rel, key: ref.Tuple.Key(), tuple: ref.Tuple}
			s.state[k] = e
			d.added = append(d.added, e)
		case !member && old != nil:
			delete(s.state, k)
			d.removed = append(d.removed, old)
		}
	}
	if len(d.added) == 0 && len(d.removed) == 0 && len(d.changed) == 0 {
		return nil, n
	}
	return &d, n
}

// delta is the raw result of folding one event into one subscription.
type delta struct {
	added, removed, changed []*entry
}

// sortEntries orders entries canonically: relations in schema order,
// rows by tuple key within a relation.
func sortEntries(es []*entry, relIx map[string]int) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].rel != es[j].rel {
			return relIx[es[i].rel] < relIx[es[j].rel]
		}
		return es[i].key < es[j].key
	})
}

// entries returns the state as a canonically sorted slice.
func (s *sub) entries(relIx map[string]int) []*entry {
	out := make([]*entry, 0, len(s.state))
	for _, e := range s.state {
		out = append(out, e)
	}
	sortEntries(out, relIx)
	return out
}

// canonical renders sorted entries deterministically, one line per
// member row — the byte representation the differential tests compare.
func canonical(es []*entry) []byte {
	var b strings.Builder
	for _, e := range es {
		b.WriteString(e.rel)
		b.WriteByte('\t')
		b.WriteString(e.key)
		if e.ann != "" {
			b.WriteByte('\t')
			b.WriteString(e.ann)
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// relIndex maps relation names to their schema positions.
func relIndex(schema *db.Schema) map[string]int {
	ix := make(map[string]int)
	for i, name := range schema.Names() {
		ix[name] = i
	}
	return ix
}

// Recompute builds the canonical state of a spec from scratch against
// a reader — the oracle the differential tests compare incremental
// states to. Pass a pinned view (db.At(seq)) to recompute at a
// historical epoch.
func Recompute(v engine.Reader, sp Spec) ([]byte, error) {
	s, err := compile(v.Schema(), sp)
	if err != nil {
		return nil, err
	}
	s.prime(v)
	return canonical(s.entries(relIndex(v.Schema()))), nil
}
