// Package iofault wraps the wal.FS filesystem abstraction with
// deterministic fault injection: the Nth operation matching a spec
// fails outright, writes short, or takes the whole "device" down. The
// sweep pattern — run a workload once to count operations, then rerun
// it once per injection point — lets tests prove that every possible
// I/O failure yields a typed error or read-only degradation, never a
// panic or silent corruption.
package iofault

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"hyperprov/internal/wal"
)

// ErrInjected is the error returned by every injected failure.
var ErrInjected = errors.New("iofault: injected failure")

// Op identifies a filesystem operation class.
type Op string

// Operation classes. OpWrite and OpSync apply to file handles and
// match on the name the file was opened with.
const (
	OpCreate     Op = "create"
	OpOpenAppend Op = "open-append"
	OpWrite      Op = "write"
	OpSync       Op = "sync"
	OpReadFile   Op = "read-file"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpTruncate   Op = "truncate"
	OpSyncDir    Op = "sync-dir"
)

// Mode is how a matched operation fails.
type Mode int

const (
	// Fail returns ErrInjected with no side effect.
	Fail Mode = iota
	// ShortWrite writes half the buffer, then returns ErrInjected
	// (only meaningful for OpWrite; other ops treat it as Fail).
	ShortWrite
	// Torn writes half the buffer, returns ErrInjected, and fails
	// every subsequent operation — the device is gone.
	Torn
)

// Fault selects the Nth operation of class Op whose target path
// contains Match (empty matches everything).
type Fault struct {
	Op    Op
	Match string
	Nth   int // 1-based
	Mode  Mode
}

// FS wraps an inner wal.FS with one injectable fault. It also counts
// every operation by class, so a fault-free first run sizes the sweep.
type FS struct {
	inner wal.FS

	mu      sync.Mutex
	fault   Fault
	armed   bool
	matched int
	tripped bool
	dead    bool
	counts  map[Op]int
}

var _ wal.FS = (*FS)(nil)

// Wrap builds a fault-injecting view of inner with no fault armed.
func Wrap(inner wal.FS) *FS {
	return &FS{inner: inner, counts: make(map[Op]int)}
}

// Inject arms the fault and resets match state.
func (f *FS) Inject(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fault = fault
	f.armed = true
	f.matched = 0
	f.tripped = false
	f.dead = false
}

// Tripped reports whether the armed fault has fired.
func (f *FS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// Count returns how many operations of class op have been issued since
// Wrap (faulted or not).
func (f *FS) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check records one operation and reports the mode to fail it with, if
// any.
func (f *FS) check(op Op, name string) (Mode, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	if f.dead {
		return Fail, true
	}
	if !f.armed || f.tripped || op != f.fault.Op || !strings.Contains(name, f.fault.Match) {
		return 0, false
	}
	f.matched++
	if f.matched != f.fault.Nth {
		return 0, false
	}
	f.tripped = true
	if f.fault.Mode == Torn {
		f.dead = true
	}
	return f.fault.Mode, true
}

func injected(op Op, name string) error {
	return fmt.Errorf("%w: %s %s", ErrInjected, op, name)
}

// MkdirAll implements wal.FS (never faulted: it runs before the store
// exists).
func (f *FS) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

// Create implements wal.FS.
func (f *FS) Create(name string) (wal.File, error) {
	if _, fail := f.check(OpCreate, name); fail {
		return nil, injected(OpCreate, name)
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: name, inner: inner}, nil
}

// OpenAppend implements wal.FS.
func (f *FS) OpenAppend(name string) (wal.File, error) {
	if _, fail := f.check(OpOpenAppend, name); fail {
		return nil, injected(OpOpenAppend, name)
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: name, inner: inner}, nil
}

// ReadFile implements wal.FS.
func (f *FS) ReadFile(name string) ([]byte, error) {
	if _, fail := f.check(OpReadFile, name); fail {
		return nil, injected(OpReadFile, name)
	}
	return f.inner.ReadFile(name)
}

// ReadDir implements wal.FS (never faulted).
func (f *FS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// Rename implements wal.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if _, fail := f.check(OpRename, newpath); fail {
		return injected(OpRename, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements wal.FS.
func (f *FS) Remove(name string) error {
	if _, fail := f.check(OpRemove, name); fail {
		return injected(OpRemove, name)
	}
	return f.inner.Remove(name)
}

// Truncate implements wal.FS.
func (f *FS) Truncate(name string, size int64) error {
	if _, fail := f.check(OpTruncate, name); fail {
		return injected(OpTruncate, name)
	}
	return f.inner.Truncate(name, size)
}

// SyncDir implements wal.FS.
func (f *FS) SyncDir(dir string) error {
	if _, fail := f.check(OpSyncDir, dir); fail {
		return injected(OpSyncDir, dir)
	}
	return f.inner.SyncDir(dir)
}

// file routes Write/Sync through the injector under the name the file
// was opened with.
type file struct {
	fs    *FS
	name  string
	inner wal.File
}

func (w *file) Write(p []byte) (int, error) {
	mode, fail := w.fs.check(OpWrite, w.name)
	if !fail {
		return w.inner.Write(p)
	}
	if (mode == ShortWrite || mode == Torn) && len(p) > 1 {
		n, err := w.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, injected(OpWrite, w.name)
	}
	return 0, injected(OpWrite, w.name)
}

func (w *file) Sync() error {
	if _, fail := w.fs.check(OpSync, w.name); fail {
		return injected(OpSync, w.name)
	}
	return w.inner.Sync()
}

func (w *file) Close() error { return w.inner.Close() }
