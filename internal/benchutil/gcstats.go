package benchutil

import (
	"math"
	"runtime/metrics"
)

// GCPausePercentiles samples the runtime's cumulative GC pause
// histogram (/gc/pauses:seconds) and reports the p50/p90/p99 bucket
// upper bounds in microseconds. Benchmarks report these next to B/op
// so the bench artifact ties allocation pressure to observed pause
// behavior. Returns zeros when the metric is unavailable.
func GCPausePercentiles() (p50, p90, p99 float64) {
	samples := []metrics.Sample{{Name: "/gc/pauses:seconds"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0, 0, 0
	}
	h := samples[0].Value.Float64Histogram()
	return pauseQuantile(h, 0.50) * 1e6, pauseQuantile(h, 0.90) * 1e6, pauseQuantile(h, 0.99) * 1e6
}

func pauseQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= need {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
