// Package benchutil contains the measurement harness behind the paper's
// experimental evaluation (Section 6): timed runs of the plain engine,
// the two provenance engines ("No axioms" and "Normal form"), the
// MV-semiring baseline, and the provenance-usage measurements (deletion
// propagation by valuation versus re-execution). cmd/experiments and the
// repository's bench_test.go are thin layers over this package.
package benchutil

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/mvsemiring"
)

// KeyAnnot names a tuple's initial annotation after the tuple itself,
// so experiments can address any initial tuple for deletion propagation.
func KeyAnnot(rel string, t db.Tuple) core.Annot {
	return core.TupleAnnot("t:" + rel + ":" + t.Key())
}

// Overhead is one measurement of provenance tracking cost (Figures 7a,
// 7b, 8a, 8b, 9a, 9b).
type Overhead struct {
	Updates int
	// InitialTuples is the size of the input database; every initial
	// tuple carries a one-node annotation, so provenance sizes have this
	// as a floor. The paper's log-scale "memory overhead" axes plot the
	// overhead above it.
	InitialTuples int
	PlainTime     time.Duration
	PlainTuples   int

	NaiveTime time.Duration
	NaiveProv int64
	NaiveRows int

	NFTime time.Duration
	NFProv int64
	NFRows int
}

// OverheadNaive is the naive provenance size above the one-node-per-
// initial-tuple floor — the "memory overhead" of the paper's figures.
func (o Overhead) OverheadNaive() int64 { return o.NaiveProv - int64(o.InitialTuples) }

// OverheadNF is the normal-form provenance size above the floor.
func (o Overhead) OverheadNF() int64 { return o.NFProv - int64(o.InitialTuples) }

// RunOverhead measures plain, naive and normal-form executions of the
// transactions over (copies of) the initial database, returning the
// engines for further use measurements.
func RunOverhead(initial *db.Database, txns []db.Transaction) (Overhead, *engine.Engine, *engine.Engine, error) {
	o := Overhead{Updates: db.CountQueries(txns), InitialTuples: initial.NumTuples()}

	// Each configuration starts from a clean heap so that one engine's
	// allocation pressure does not bleed into the next measurement.
	runtime.GC()
	plain := initial.Clone()
	start := time.Now()
	if err := plain.ApplyAll(txns); err != nil {
		return o, nil, nil, err
	}
	o.PlainTime = time.Since(start)
	o.PlainTuples = plain.NumTuples()

	runtime.GC()
	naive := engine.New(engine.ModeNaive, initial, engine.WithInitialAnnotations(KeyAnnot))
	start = time.Now()
	if err := naive.ApplyAll(context.Background(), txns); err != nil {
		return o, nil, nil, err
	}
	o.NaiveTime = time.Since(start)
	o.NaiveProv = naive.ProvSize()
	o.NaiveRows = naive.NumRows()

	runtime.GC()
	nf := engine.New(engine.ModeNormalForm, initial, engine.WithInitialAnnotations(KeyAnnot))
	start = time.Now()
	if err := nf.ApplyAll(context.Background(), txns); err != nil {
		return o, nil, nil, err
	}
	o.NFTime = time.Since(start)
	o.NFProv = nf.ProvSize()
	o.NFRows = nf.NumRows()
	return o, naive, nf, nil
}

// Usage is one measurement of provenance use for deletion propagation
// (Figures 7c, 8c): the "No provenance" baseline re-runs the whole
// sequence on the reduced database, the provenance variants assign a
// truth value and evaluate.
type Usage struct {
	RerunTime time.Duration
	NaiveUse  time.Duration
	NFUse     time.Duration
}

// RunUsage measures deletion propagation of the given victim tuple:
// re-execution on initial∖{victim} versus valuation of the naive and
// normal-form provenance (engines as returned by RunOverhead).
func RunUsage(initial *db.Database, txns []db.Transaction, naive, nf *engine.Engine, victimRel string, victim db.Tuple) (Usage, error) {
	var u Usage
	smaller := initial.Clone()
	if err := smaller.Apply(db.Delete(victimRel, db.ConstPattern(victim))); err != nil {
		return u, err
	}
	start := time.Now()
	if err := smaller.ApplyAll(txns); err != nil {
		return u, err
	}
	u.RerunTime = time.Since(start)
	want := smaller

	ann := KeyAnnot(victimRel, victim)
	start = time.Now()
	gotNaive := engine.DeletionPropagation(naive, ann)
	u.NaiveUse = time.Since(start)

	start = time.Now()
	gotNF := engine.DeletionPropagation(nf, ann)
	u.NFUse = time.Since(start)

	if !gotNaive.Equal(want) {
		return u, fmt.Errorf("benchutil: naive deletion propagation diverged from re-execution:\n%s", gotNaive.Diff(want))
	}
	if !gotNF.Equal(want) {
		return u, fmt.Errorf("benchutil: normal-form deletion propagation diverged from re-execution:\n%s", gotNF.Diff(want))
	}
	return u, nil
}

// MV is one measurement of the MV-semiring comparison (Figure 10).
type MV struct {
	TreeTime time.Duration
	// TreeProv counts expression nodes; TreeTokens counts rendered
	// tokens (a version annotation carries four fields), which is the
	// length measure comparable to UP[X] sizes.
	TreeProv   int64
	TreeTokens int64
	TreeRows   int
	StringTime time.Duration
	StringProv int64
}

// RunMV measures both MV-semiring representations on the workload.
func RunMV(initial *db.Database, txns []db.Transaction) (MV, error) {
	var m MV
	runtime.GC()
	tree := mvsemiring.New(mvsemiring.ReprTree, initial)
	start := time.Now()
	if err := tree.ApplyAll(txns); err != nil {
		return m, err
	}
	m.TreeTime = time.Since(start)
	m.TreeProv = tree.ProvSize()
	m.TreeTokens = tree.TokenSize()
	m.TreeRows = tree.NumRows()

	runtime.GC()
	str := mvsemiring.New(mvsemiring.ReprString, initial)
	start = time.Now()
	if err := str.ApplyAll(txns); err != nil {
		return m, err
	}
	m.StringTime = time.Since(start)
	m.StringProv = str.ProvSize()
	return m, nil
}

// Table is a simple aligned-column table for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row, stringifying the cells with %v ("%.3f" for floats
// and millisecond rendering for durations).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = fmt.Sprintf("%.1fms", float64(v.Microseconds())/1000)
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n\n", t.Title)
	}
	var header strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&header, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(header.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(header.String(), " "))))
	for _, r := range t.Rows {
		var line strings.Builder
		for i, c := range r {
			fmt.Fprintf(&line, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	}
	fmt.Fprintln(w)
}

// CSV writes the table as CSV (header + rows), for plotting the series
// with external tools.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Ratio renders a/b as "×N.N" (the paper reports speedups this way), or
// "-" when b is zero.
func Ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("x%.1f", float64(a)/float64(b))
}

// PickVictim returns a pool tuple present in the initial database to use
// for deletion propagation; it prefers a tuple the transactions touch so
// that the propagation is non-trivial.
func PickVictim(initial *db.Database, txns []db.Transaction, rel string) (db.Tuple, bool) {
	in := initial.Instance(rel)
	if in == nil || in.Len() == 0 {
		return nil, false
	}
	for i := range txns {
		for _, u := range txns[i].Updates {
			if u.Rel != rel || u.Kind == db.OpInsert {
				continue
			}
			var found db.Tuple
			in.Each(func(t db.Tuple) {
				if found == nil && u.Sel.Matches(t) {
					found = t
				}
			})
			if found != nil {
				return found, true
			}
		}
	}
	return in.Tuples()[0], true
}
