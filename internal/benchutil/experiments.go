package benchutil

import (
	"context"
	"fmt"
	"io"
	"time"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/workload"
)

// prefixForQueries returns the shortest transaction prefix containing at
// least q update queries (the paper's x-axes count individual queries).
func prefixForQueries(txns []db.Transaction, q int) []db.Transaction {
	total := 0
	for i := range txns {
		total += len(txns[i].Updates)
		if total >= q {
			return txns[:i+1]
		}
	}
	return txns
}

// UpdateSeries scales the paper's x-axis (updates up to ~2000) by f.
func UpdateSeries(f float64) []int {
	base := []int{250, 500, 1000, 1500, 2000}
	out := make([]int, 0, len(base))
	for _, b := range base {
		v := int(float64(b) * f)
		if v < 5 {
			v = 5
		}
		out = append(out, v)
	}
	return out
}

// Fig7 reproduces Figures 7a/7b/7c: memory overhead, runtime and
// deletion-propagation usage time over a TPC-C log, as a function of the
// number of update queries. scale scales both the database and the
// update counts (1.0 ≈ the paper's setup).
func Fig7(w io.Writer, scale float64) error {
	gen := tpcc.NewGenerator(tpcc.Scaled(scale))
	initial, err := gen.InitialDatabase()
	if err != nil {
		return err
	}
	series := UpdateSeries(scale)
	all := gen.TransactionsForQueries(series[len(series)-1])
	return overheadAndUsageTable(w, "Fig 7 (TPC-C): overhead and usage", initial, all, series, tpcc.Customer)
}

// Fig8 reproduces Figures 8a/8b/8c on the synthetic dataset (1M tuples
// at scale 1.0, 0.02% affected).
func Fig8(w io.Writer, scale float64) error {
	cfg := workload.Default(scale)
	series := UpdateSeries(scale)
	cfg.Updates = series[len(series)-1]
	initial, all, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	return overheadAndUsageTable(w, "Fig 8 (synthetic): overhead and usage", initial, all, series, "R")
}

func overheadAndUsageTable(w io.Writer, title string, initial *db.Database, all []db.Transaction, series []int, usageRel string) error {
	tbl := &Table{
		Title: title,
		Columns: []string{"updates", "db_tuples",
			"time_noprov", "time_naive", "time_nf",
			"ovh_naive", "ovh_nf", "rows_naive", "rows_nf",
			"use_rerun", "use_naive", "use_nf"},
	}
	for _, q := range series {
		txns := prefixForQueries(all, q)
		o, naive, nf, err := RunOverhead(initial, txns)
		if err != nil {
			return err
		}
		victim, ok := PickVictim(initial, txns, usageRel)
		u := Usage{}
		if ok {
			u, err = RunUsage(initial, txns, naive, nf, usageRel, victim)
			if err != nil {
				return err
			}
		}
		tbl.Add(o.Updates, o.PlainTuples, o.PlainTime, o.NaiveTime, o.NFTime,
			o.OverheadNaive(), o.OverheadNF(), o.NaiveRows, o.NFRows,
			u.RerunTime, u.NaiveUse, u.NFUse)
	}
	tbl.Fprint(w)
	return nil
}

// Fig9a reproduces Figure 9a: fixed transaction length (2000 updates at
// scale 1.0) over the synthetic dataset, varying the total number of
// affected tuples from 0.02% to 0.1% of the database.
func Fig9a(w io.Writer, scale float64) error {
	base := workload.Default(scale)
	tbl := &Table{
		Title:   "Fig 9a (synthetic): varying total affected tuples, fixed transaction length",
		Columns: []string{"affected", "affected_pct", "ovh_naive", "ovh_nf", "time_naive", "time_nf"},
	}
	for mult := 1; mult <= 5; mult++ {
		cfg := base
		cfg.Pool = base.Pool * mult
		if cfg.Pool > cfg.Tuples {
			cfg.Pool = cfg.Tuples
		}
		initial, txns, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		o, _, _, err := RunOverhead(initial, txns)
		if err != nil {
			return err
		}
		tbl.Add(cfg.Pool, fmt.Sprintf("%.2f%%", 100*float64(cfg.Pool)/float64(cfg.Tuples)),
			o.OverheadNaive(), o.OverheadNF(), o.NaiveTime, o.NFTime)
	}
	tbl.Fprint(w)
	return nil
}

// Fig9b reproduces Figure 9b: a 5-query transaction sequence over the
// synthetic dataset, varying the number of tuples affected by each
// query from 0.02% to 0.1% of the database.
func Fig9b(w io.Writer, scale float64) error {
	base := workload.Default(scale)
	tbl := &Table{
		Title:   "Fig 9b (synthetic): varying tuples affected per query, 5 update queries",
		Columns: []string{"per_query", "per_query_pct", "ovh_naive", "ovh_nf", "time_naive", "time_nf"},
	}
	for mult := 1; mult <= 5; mult++ {
		cfg := base
		cfg.Updates = 5
		cfg.Group = base.Pool * mult
		cfg.Pool = cfg.Group
		if cfg.Pool > cfg.Tuples {
			cfg.Pool = cfg.Tuples
			cfg.Group = cfg.Tuples
		}
		initial, txns, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		o, _, _, err := RunOverhead(initial, txns)
		if err != nil {
			return err
		}
		tbl.Add(cfg.Group, fmt.Sprintf("%.2f%%", 100*float64(cfg.Group)/float64(cfg.Tuples)),
			o.OverheadNaive(), o.OverheadNF(), o.NaiveTime, o.NFTime)
	}
	tbl.Fprint(w)
	return nil
}

// Fig10 reproduces Figures 10a/10b: memory overhead and runtime of the
// UP[X] engines versus the MV-semiring model (tree and string
// implementations) on the synthetic dataset. Memory is reported as the
// implementation-independent sum of provenance length and stored rows,
// as in Section 6.4.
func Fig10(w io.Writer, scale float64) error {
	cfg := workload.Default(scale)
	series := UpdateSeries(scale)
	cfg.Updates = series[len(series)-1]
	initial, all, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	tbl := &Table{
		Title: "Fig 10 (synthetic): comparison with MV-semirings",
		Columns: []string{"updates",
			"mem_naive", "mem_nf", "mem_naive_lm", "mem_nf_lm", "mem_mv", "mem_mv_tok",
			"time_naive", "time_nf", "time_mv_tree", "time_mv_string"},
	}
	for _, q := range series {
		txns := prefixForQueries(all, q)
		o, _, _, err := RunOverhead(initial, txns)
		if err != nil {
			return err
		}
		m, err := RunMV(initial, txns)
		if err != nil {
			return err
		}
		// The live-matching configurations mirror what a conventional
		// reenactment implementation (like the paper's and [6]'s)
		// measures: update selections touch live tuples only, so
		// per-tuple provenance is comparable to MV version chains.
		lmNaive, lmNF, err := runLiveMatching(initial, txns)
		if err != nil {
			return err
		}
		tbl.Add(o.Updates,
			o.NaiveProv+int64(o.NaiveRows), o.NFProv+int64(o.NFRows),
			lmNaive, lmNF, m.TreeProv+int64(m.TreeRows), m.TreeTokens+int64(m.TreeRows),
			o.NaiveTime, o.NFTime, m.TreeTime, m.StringTime)
	}
	tbl.Fprint(w)
	return nil
}

// runLiveMatching measures the provenance-plus-rows memory of both
// engine modes under WithLiveMatching.
func runLiveMatching(initial *db.Database, txns []db.Transaction) (naive, nf int64, err error) {
	en := engine.New(engine.ModeNaive, initial, engine.WithLiveMatching(true))
	if err := en.ApplyAll(context.Background(), txns); err != nil {
		return 0, 0, err
	}
	naive = en.ProvSize() + int64(en.NumRows())
	ef := engine.New(engine.ModeNormalForm, initial, engine.WithLiveMatching(true))
	if err := ef.ApplyAll(context.Background(), txns); err != nil {
		return 0, 0, err
	}
	nf = ef.ProvSize() + int64(ef.NumRows())
	return naive, nf, nil
}

// Prop51 demonstrates Proposition 5.1 on the engines: a two-tuple
// relation with alternating modifications t1→t2, t2→t1 makes the naive
// provenance grow exponentially in the number of queries while the
// normal form stays linear.
func Prop51(w io.Writer, steps int) error {
	schema := db.MustSchema(db.MustRelationSchema("R", db.Attribute{Name: "k", Kind: db.KindString}))
	initial := db.NewDatabase(schema)
	if err := initial.InsertTuple("R", db.Tuple{db.S("a")}); err != nil {
		return err
	}
	if err := initial.InsertTuple("R", db.Tuple{db.S("b")}); err != nil {
		return err
	}
	mod := func(from, to string) db.Update {
		return db.Modify("R", db.Pattern{db.Const(db.S(from))}, []db.SetClause{db.SetTo(db.S(to))})
	}
	tbl := &Table{
		Title:   "Prop 5.1: exponential naive blowup on alternating modifications",
		Columns: []string{"queries", "prov_naive", "prov_nf"},
	}
	for n := 4; n <= steps; n += 4 {
		txn := db.Transaction{Label: "p"}
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				txn.Updates = append(txn.Updates, mod("a", "b"))
			} else {
				txn.Updates = append(txn.Updates, mod("b", "a"))
			}
		}
		naive := engine.New(engine.ModeNaive, initial)
		if err := naive.ApplyTransaction(&txn); err != nil {
			return err
		}
		nf := engine.New(engine.ModeNormalForm, initial)
		if err := nf.ApplyTransaction(&txn); err != nil {
			return err
		}
		tbl.Add(n, naive.ProvSize(), nf.ProvSize())
	}
	tbl.Fprint(w)
	return nil
}

// Ablations measures the design-choice ablations DESIGN.md calls out:
// copy-on-write versus shared naive representation, the hash-index
// access path, and Proposition 5.5 zero-minimization.
func Ablations(w io.Writer, scale float64) error {
	cfg := workload.Default(scale)
	cfg.Updates = UpdateSeries(scale)[2]
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	tbl := &Table{
		Title:   "Ablations",
		Columns: []string{"variant", "time", "prov_size", "note"},
	}

	run := func(mode engine.Mode, opts ...engine.Option) (*engine.Engine, time.Duration, error) {
		e := engine.New(mode, initial, opts...)
		start := time.Now()
		err := e.ApplyAll(context.Background(), txns)
		return e, time.Since(start), err
	}

	naive, dt, err := run(engine.ModeNaive)
	if err != nil {
		return err
	}
	tbl.Add("naive copy-on-write", dt, naive.ProvSize(), "paper behaviour")

	shared, dt, err := run(engine.ModeNaive, engine.WithCopyOnWrite(false))
	if err != nil {
		return err
	}
	tbl.Add("naive shared (DAG)", dt, shared.ProvSize(), "tree size equal, no copying")

	zero, dt, err := run(engine.ModeNaive, engine.WithEagerZeroAxioms(true))
	if err != nil {
		return err
	}
	tbl.Add("naive + zero axioms", dt, zero.ProvSize(), "zero axioms only")

	nf, dt, err := run(engine.ModeNormalForm)
	if err != nil {
		return err
	}
	sizeBefore := nf.ProvSize()
	start := time.Now()
	sizeAfter, err := nf.MinimizeAll(context.Background())
	if err != nil {
		return err
	}
	minTime := time.Since(start)
	tbl.Add("normal form", dt, sizeBefore, "paper behaviour")
	tbl.Add("normal form + Prop 5.5 min", dt+minTime, sizeAfter, "post-processing included")

	idx := engine.New(engine.ModeNormalForm, initial)
	if err := idx.BuildIndex("R", "grp"); err != nil {
		return err
	}
	start = time.Now()
	if err := idx.ApplyAll(context.Background(), txns); err != nil {
		return err
	}
	tbl.Add("normal form + hash index", time.Since(start), idx.ProvSize(), "beyond-paper access path")

	lm, dt, err := run(engine.ModeNormalForm, engine.WithLiveMatching(true))
	if err != nil {
		return err
	}
	tbl.Add("normal form + live matching", dt, lm.ProvSize(), "trades abort reasoning for linear growth")

	tbl.Fprint(w)
	return nil
}

// AnnotOf recomputes the initial annotation used by RunOverhead for a
// tuple, for callers that need to target it in valuations.
func AnnotOf(rel string, t db.Tuple) core.Annot { return KeyAnnot(rel, t) }
