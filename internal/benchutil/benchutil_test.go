package benchutil_test

import (
	"strings"
	"testing"
	"time"

	"hyperprov/internal/benchutil"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/workload"
)

func TestRunOverheadAndUsage(t *testing.T) {
	cfg := workload.Config{Tuples: 300, Pool: 15, Group: 1, Updates: 60, MergeRatio: 0.1, Seed: 5}
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, naive, nf, err := benchutil.RunOverhead(initial, txns)
	if err != nil {
		t.Fatal(err)
	}
	if o.Updates != 60 || o.PlainTuples == 0 || o.NaiveProv == 0 || o.NFProv == 0 {
		t.Fatalf("incomplete overhead measurement: %+v", o)
	}
	if o.NFProv > o.NaiveProv {
		t.Errorf("normal form (%d) should not exceed naive (%d)", o.NFProv, o.NaiveProv)
	}
	victim, ok := benchutil.PickVictim(initial, txns, "R")
	if !ok {
		t.Fatal("no victim found")
	}
	// RunUsage cross-checks both valuations against re-execution
	// internally; an error means the oracle failed.
	if _, err := benchutil.RunUsage(initial, txns, naive, nf, "R", victim); err != nil {
		t.Fatal(err)
	}
}

func TestRunMV(t *testing.T) {
	cfg := workload.Config{Tuples: 200, Pool: 10, Group: 1, Updates: 40, Seed: 6}
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := benchutil.RunMV(initial, txns)
	if err != nil {
		t.Fatal(err)
	}
	if m.TreeProv == 0 || m.StringProv == 0 {
		t.Fatalf("incomplete MV measurement: %+v", m)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &benchutil.Table{Title: "T", Columns: []string{"a", "long_column"}}
	tbl.Add(1, 1500*time.Microsecond)
	tbl.Add("xx", 2.5)
	var b strings.Builder
	tbl.Fprint(&b)
	out := b.String()
	for _, frag := range []string{"## T", "long_column", "1.5ms", "2.500"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table output missing %q:\n%s", frag, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &benchutil.Table{Title: "T", Columns: []string{"a", "b"}}
	tbl.Add(1, "x,y")
	var b strings.Builder
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if got := b.String(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestRatio(t *testing.T) {
	if got := benchutil.Ratio(100*time.Millisecond, 10*time.Millisecond); got != "x10.0" {
		t.Errorf("Ratio = %q", got)
	}
	if got := benchutil.Ratio(time.Second, 0); got != "-" {
		t.Errorf("Ratio by zero = %q", got)
	}
}

// TestExperimentsSmoke runs every figure regenerator at a tiny scale so
// the harness itself is covered by the test suite; the internal oracle
// in RunUsage also re-validates deletion propagation on every point.
func TestExperimentsSmoke(t *testing.T) {
	var b strings.Builder
	if err := benchutil.Fig7(&b, 0.02); err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if err := benchutil.Fig8(&b, 0.002); err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if err := benchutil.Fig9a(&b, 0.002); err != nil {
		t.Fatalf("Fig9a: %v", err)
	}
	if err := benchutil.Fig9b(&b, 0.002); err != nil {
		t.Fatalf("Fig9b: %v", err)
	}
	if err := benchutil.Fig10(&b, 0.002); err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if err := benchutil.Prop51(&b, 16); err != nil {
		t.Fatalf("Prop51: %v", err)
	}
	if err := benchutil.Ablations(&b, 0.002); err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	out := b.String()
	for _, frag := range []string{"Fig 7", "Fig 8", "Fig 9a", "Fig 9b", "Fig 10", "Prop 5.1", "Ablations"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing section %q", frag)
		}
	}
}

func TestUpdateSeries(t *testing.T) {
	s := benchutil.UpdateSeries(1)
	if len(s) != 5 || s[4] != 2000 {
		t.Errorf("UpdateSeries(1) = %v", s)
	}
	tiny := benchutil.UpdateSeries(0.0001)
	for _, v := range tiny {
		if v < 5 {
			t.Errorf("degenerate series %v", tiny)
		}
	}
}

func TestPickVictimTPCC(t *testing.T) {
	g := tpcc.NewGenerator(tpcc.DefaultConfig())
	initial, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	txns := g.Transactions(10)
	v, ok := benchutil.PickVictim(initial, txns, tpcc.Customer)
	if !ok || len(v) == 0 {
		t.Fatal("no TPC-C victim")
	}
	if !initial.Instance(tpcc.Customer).Contains(v) {
		t.Error("victim not in initial database")
	}
}
