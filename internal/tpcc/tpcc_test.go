package tpcc_test

import (
	"context"
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/tpcc"
)

func TestInitialDatabaseCardinalities(t *testing.T) {
	cfg := tpcc.DefaultConfig()
	g := tpcc.NewGenerator(cfg)
	d, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]int{
		tpcc.Warehouse: cfg.Warehouses,
		tpcc.District:  cfg.Warehouses * cfg.Districts,
		tpcc.Customer:  cfg.Warehouses * cfg.Districts * cfg.CustomersPerDistrict,
		tpcc.History:   cfg.Warehouses * cfg.Districts * cfg.CustomersPerDistrict,
		tpcc.Orders:    cfg.Warehouses * cfg.Districts * cfg.OrdersPerDistrict,
		tpcc.Item:      cfg.Items,
		tpcc.Stock:     cfg.Warehouses * cfg.Items,
	}
	for rel, want := range checks {
		if got := d.Instance(rel).Len(); got != want {
			t.Errorf("%s: %d tuples, want %d", rel, got, want)
		}
	}
	// 30% of initial orders are undelivered.
	wantNO := cfg.Warehouses * cfg.Districts * (cfg.OrdersPerDistrict - cfg.OrdersPerDistrict*7/10)
	if got := d.Instance(tpcc.NewOrder).Len(); got != wantNO {
		t.Errorf("NEW_ORDER: %d tuples, want %d", got, wantNO)
	}
	// 5–15 lines per order.
	ol := d.Instance(tpcc.OrderLine).Len()
	orders := d.Instance(tpcc.Orders).Len()
	if ol < 5*orders || ol > 15*orders {
		t.Errorf("ORDER_LINE: %d lines for %d orders", ol, orders)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	g1 := tpcc.NewGenerator(tpcc.DefaultConfig())
	g2 := tpcc.NewGenerator(tpcc.DefaultConfig())
	d1, err := g1.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g2.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Fatal("same seed must generate the same database")
	}
	t1 := g1.Transactions(20)
	t2 := g2.Transactions(20)
	for i := range t1 {
		if t1[i].Label != t2[i].Label || len(t1[i].Updates) != len(t2[i].Updates) {
			t.Fatalf("transaction %d diverges", i)
		}
	}
}

func TestTransactionsValidateAndApply(t *testing.T) {
	g := tpcc.NewGenerator(tpcc.DefaultConfig())
	d, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	txns := g.TransactionsForQueries(300)
	if got := db.CountQueries(txns); got < 300 {
		t.Fatalf("generated only %d queries", got)
	}
	for i := range txns {
		if err := txns[i].Validate(d.Schema()); err != nil {
			t.Fatalf("transaction %d invalid: %v", i, err)
		}
	}
	if err := d.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
}

// TestShadowStateConsistent verifies the defining property of the
// generator: because every modification carries constant SET clauses,
// the log is only correct if the shadow state matches the database at
// every step. Applying the log and then re-running New-Order against the
// final district counters must produce fresh order ids not present in
// ORDERS.
func TestShadowStateConsistent(t *testing.T) {
	g := tpcc.NewGenerator(tpcc.DefaultConfig())
	d, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	txns := g.Transactions(60)
	if err := d.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	// NEW_ORDER rows and ORDERS without carrier move in lockstep:
	// every NEW_ORDER entry must reference an existing order with
	// carrier 0.
	orders := d.Instance(tpcc.Orders)
	undelivered := make(map[string]bool)
	orders.Each(func(tu db.Tuple) {
		if tu[5].Int() == 0 {
			key := db.Tuple{tu[0], tu[1], tu[2]}.Key()
			undelivered[key] = true
		}
	})
	bad := 0
	d.Instance(tpcc.NewOrder).Each(func(tu db.Tuple) {
		if !undelivered[tu.Key()] {
			bad++
		}
	})
	if bad > 0 {
		t.Errorf("%d NEW_ORDER entries reference delivered/missing orders", bad)
	}
	// District counters exceed all order ids in that district.
	d.Instance(tpcc.District).Each(func(dt db.Tuple) {
		dID, wID, next := dt[0].Int(), dt[1].Int(), dt[5].Int()
		orders.Each(func(ot db.Tuple) {
			if ot[1].Int() == dID && ot[2].Int() == wID && ot[0].Int() >= next {
				t.Errorf("order %d >= d_next_o_id %d in district (%d,%d)", ot[0].Int(), next, wID, dID)
			}
		})
	})
}

// TestProvenanceOverTPCC runs the log through both provenance engines
// and checks the all-true valuation against the plain engine — the
// end-to-end integration the Figure 7 experiments rely on.
func TestProvenanceOverTPCC(t *testing.T) {
	g := tpcc.NewGenerator(tpcc.DefaultConfig())
	initial, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	txns := g.TransactionsForQueries(150)
	plain := initial.Clone()
	if err := plain.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		e := engine.New(mode, initial)
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		live := engine.LiveDB(e)
		if !live.Equal(plain) {
			t.Fatalf("%v: TPC-C live DB diverges from plain:\n%s", mode, live.Diff(plain))
		}
		// Modified tuples are duplicated, so rows exceed plain tuples by
		// a small margin (about 2% at paper scale).
		if e.NumRows() <= plain.NumTuples() {
			t.Errorf("%v: expected tombstone overhead, rows=%d plain=%d", mode, e.NumRows(), plain.NumTuples())
		}
	}
}

func TestDeliveryConsumesPending(t *testing.T) {
	cfg := tpcc.DefaultConfig()
	g := tpcc.NewGenerator(cfg)
	d, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	before := d.Instance(tpcc.NewOrder).Len()
	// Generate enough deliveries to consume entries.
	var deliveries []db.Transaction
	for i := 0; i < 5; i++ {
		deliveries = append(deliveries, g.DeliveryTxn())
	}
	if err := d.ApplyAll(deliveries); err != nil {
		t.Fatal(err)
	}
	after := d.Instance(tpcc.NewOrder).Len()
	if after >= before {
		t.Errorf("delivery did not consume NEW_ORDER entries: %d -> %d", before, after)
	}
}

func TestScaledConfig(t *testing.T) {
	c := tpcc.Scaled(0.01)
	if c.Items < 1 || c.CustomersPerDistrict < 1 {
		t.Errorf("scaled config degenerate: %+v", c)
	}
	p := tpcc.PaperConfig()
	// Rough size check: the paper instance is about 2.1M tuples. Count
	// without materializing: items + per-warehouse rows.
	perW := p.Items + p.Districts*(2*p.CustomersPerDistrict+p.OrdersPerDistrict*11) // stock + cust + hist + orders with ~10 lines each
	approx := p.Items + p.Warehouses*perW
	if approx < 2_000_000 {
		t.Errorf("paper config too small: ~%d tuples", approx)
	}
}
