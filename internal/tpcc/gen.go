package tpcc

import (
	"fmt"
	"math/rand"

	"hyperprov/internal/db"
)

// Config scales the TPC-C instance. The TPC-C cardinalities are per
// warehouse: 10 districts, 3000 customers and 3000 orders per district,
// 100000 items and stock rows; PaperConfig approximates the paper's
// 2.1M-tuple database, DefaultConfig is a CI-sized instance with the
// same structure.
type Config struct {
	Warehouses           int
	Districts            int // per warehouse
	CustomersPerDistrict int
	OrdersPerDistrict    int // initially loaded orders (with order lines)
	Items                int // shared item catalogue; stock rows per warehouse
	Seed                 int64
}

// DefaultConfig returns a small instance (~4k tuples) suitable for tests
// and quick runs.
func DefaultConfig() Config {
	return Config{Warehouses: 1, Districts: 3, CustomersPerDistrict: 30, OrdersPerDistrict: 30, Items: 200, Seed: 1}
}

// PaperConfig returns an instance of roughly the paper's size (about
// 2.1M tuples across nine tables: 4 warehouses at full per-warehouse
// cardinalities).
func PaperConfig() Config {
	return Config{Warehouses: 4, Districts: 10, CustomersPerDistrict: 3000, OrdersPerDistrict: 3000, Items: 100000, Seed: 1}
}

// Scaled returns DefaultConfig cardinalities multiplied toward
// PaperConfig by the given factor in (0, 1].
func Scaled(f float64) Config {
	p := PaperConfig()
	scale := func(v int) int {
		s := int(float64(v) * f)
		if s < 1 {
			s = 1
		}
		return s
	}
	return Config{
		Warehouses:           1,
		Districts:            p.Districts,
		CustomersPerDistrict: scale(p.CustomersPerDistrict),
		OrdersPerDistrict:    scale(p.OrdersPerDistrict),
		Items:                scale(p.Items),
		Seed:                 1,
	}
}

// Generator produces the initial database and a stream of TPC-C write
// transactions lowered to hyperplane updates. It keeps shadow state
// (district order counters, stock quantities, customer balances,
// pending new-orders) so that modifications can be emitted with the
// constant SET clauses the hyperplane fragment requires; the emitted log
// is therefore valid exactly against the generated initial database.
type Generator struct {
	cfg Config
	r   *rand.Rand

	nextOID   map[[2]int]int     // (w,d) → d_next_o_id
	pending   map[[2]int][]int   // (w,d) → undelivered order ids (FIFO)
	orderCust map[[3]int]int     // (w,d,o) → customer
	orderCnt  map[[3]int]int     // (w,d,o) → ol_cnt
	orderAmt  map[[3]int]float64 // (w,d,o) → Σ ol_amount
	stockQty  map[[2]int]int     // (w,i) → s_quantity
	stockYtd  map[[2]int]int
	stockOrd  map[[2]int]int
	whYtd     map[int]float64
	distYtd   map[[2]int]float64
	custBal   map[[3]int]float64 // (w,d,c)
	custYtd   map[[3]int]float64
	custPay   map[[3]int]int
	custDel   map[[3]int]int

	hid   int
	clock int
	txnNo int
}

// NewGenerator builds a generator for the configuration.
func NewGenerator(cfg Config) *Generator {
	return &Generator{
		cfg:       cfg,
		r:         rand.New(rand.NewSource(cfg.Seed)),
		nextOID:   make(map[[2]int]int),
		pending:   make(map[[2]int][]int),
		orderCust: make(map[[3]int]int),
		orderCnt:  make(map[[3]int]int),
		orderAmt:  make(map[[3]int]float64),
		stockQty:  make(map[[2]int]int),
		stockYtd:  make(map[[2]int]int),
		stockOrd:  make(map[[2]int]int),
		whYtd:     make(map[int]float64),
		distYtd:   make(map[[2]int]float64),
		custBal:   make(map[[3]int]float64),
		custYtd:   make(map[[3]int]float64),
		custPay:   make(map[[3]int]int),
		custDel:   make(map[[3]int]int),
	}
}

var lastNames = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// cLast composes the TPC-C customer last name from a number.
func cLast(n int) string {
	return lastNames[n/100%10] + lastNames[n/10%10] + lastNames[n%10]
}

func money(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

// InitialDatabase populates the nine tables per the configuration.
func (g *Generator) InitialDatabase() (*db.Database, error) {
	d := db.NewDatabase(Schema())
	ins := func(rel string, t db.Tuple) error { return d.InsertTuple(rel, t) }
	for i := 1; i <= g.cfg.Items; i++ {
		if err := ins(Item, db.Tuple{
			db.I(int64(i)), db.I(int64(g.r.Intn(10000))), db.S(fmt.Sprintf("item-%d", i)),
			db.F(money(1 + g.r.Float64()*99)), db.S("data"),
		}); err != nil {
			return nil, err
		}
	}
	for w := 1; w <= g.cfg.Warehouses; w++ {
		g.whYtd[w] = 300000
		if err := ins(Warehouse, db.Tuple{
			db.I(int64(w)), db.S(fmt.Sprintf("wh-%d", w)), db.S("city"), db.S("ST"),
			db.F(money(g.r.Float64() * 0.2)), db.F(300000),
		}); err != nil {
			return nil, err
		}
		for i := 1; i <= g.cfg.Items; i++ {
			q := 10 + g.r.Intn(91)
			g.stockQty[[2]int{w, i}] = q
			if err := ins(Stock, db.Tuple{
				db.I(int64(i)), db.I(int64(w)), db.I(int64(q)),
				db.I(0), db.I(0), db.I(0), db.S("stockdata"),
			}); err != nil {
				return nil, err
			}
		}
		for dd := 1; dd <= g.cfg.Districts; dd++ {
			g.distYtd[[2]int{w, dd}] = 30000
			g.nextOID[[2]int{w, dd}] = g.cfg.OrdersPerDistrict + 1
			if err := ins(District, db.Tuple{
				db.I(int64(dd)), db.I(int64(w)), db.S(fmt.Sprintf("dist-%d-%d", w, dd)),
				db.F(money(g.r.Float64() * 0.2)), db.F(30000), db.I(int64(g.cfg.OrdersPerDistrict + 1)),
			}); err != nil {
				return nil, err
			}
			for c := 1; c <= g.cfg.CustomersPerDistrict; c++ {
				key := [3]int{w, dd, c}
				g.custBal[key] = -10
				g.custYtd[key] = 10
				g.custPay[key] = 1
				credit := "GC"
				if g.r.Intn(10) == 0 {
					credit = "BC"
				}
				if err := ins(Customer, db.Tuple{
					db.I(int64(c)), db.I(int64(dd)), db.I(int64(w)),
					db.S(cLast(c % 1000)), db.S(fmt.Sprintf("first-%d", c)), db.S(credit),
					db.F(money(g.r.Float64() * 0.5)), db.F(-10), db.F(10),
					db.I(1), db.I(0), db.S("customerdata"),
				}); err != nil {
					return nil, err
				}
				g.hid++
				if err := ins(History, db.Tuple{
					db.I(int64(g.hid)), db.I(int64(c)), db.I(int64(dd)), db.I(int64(w)),
					db.I(int64(dd)), db.I(int64(w)), db.I(0), db.F(10), db.S("init"),
				}); err != nil {
					return nil, err
				}
			}
			for o := 1; o <= g.cfg.OrdersPerDistrict; o++ {
				c := 1 + g.r.Intn(g.cfg.CustomersPerDistrict)
				cnt := 5 + g.r.Intn(11)
				okey := [3]int{w, dd, o}
				g.orderCust[okey] = c
				g.orderCnt[okey] = cnt
				delivered := o <= g.cfg.OrdersPerDistrict*7/10
				carrier := 0
				if delivered {
					carrier = 1 + g.r.Intn(10)
				} else {
					g.pending[[2]int{w, dd}] = append(g.pending[[2]int{w, dd}], o)
					if err := ins(NewOrder, db.Tuple{db.I(int64(o)), db.I(int64(dd)), db.I(int64(w))}); err != nil {
						return nil, err
					}
				}
				if err := ins(Orders, db.Tuple{
					db.I(int64(o)), db.I(int64(dd)), db.I(int64(w)), db.I(int64(c)),
					db.I(0), db.I(int64(carrier)), db.I(int64(cnt)), db.I(1),
				}); err != nil {
					return nil, err
				}
				var amt float64
				for l := 1; l <= cnt; l++ {
					item := 1 + g.r.Intn(g.cfg.Items)
					lineAmt := 0.0
					deliveryD := 1
					if !delivered {
						lineAmt = money(0.01 + g.r.Float64()*99.99)
						deliveryD = 0
					}
					amt += lineAmt
					if err := ins(OrderLine, db.Tuple{
						db.I(int64(o)), db.I(int64(dd)), db.I(int64(w)), db.I(int64(l)),
						db.I(int64(item)), db.I(int64(w)), db.I(int64(deliveryD)),
						db.I(5), db.F(lineAmt),
					}); err != nil {
						return nil, err
					}
				}
				g.orderAmt[okey] = amt
			}
		}
	}
	return d, nil
}
