package tpcc

import (
	"fmt"

	"hyperprov/internal/db"
)

// The selection patterns below pin, besides the key columns, the
// current values of every column the workload mutates (year-to-date
// totals, balances, counters, order ids). This is how a reenactment log
// lowers TPC-C's read-then-write statements into the hyperplane
// fragment, and it is essential for the provenance semantics: deleted
// and modified tuples stay in the support of annotated relations
// (Section 3.1), so a selection that pinned only the key would also
// match every historical version of a hot row (the warehouse, say) and
// the provenance of rows updated n times would grow as 2^n instead of
// linearly. Pinning the mutable columns keeps historical versions out
// of later selections while staying inside the fragment.

// selDistrict selects one district row by key and current mutable state.
func (g *Generator) selDistrict(w, d int) db.Pattern {
	return db.Pattern{
		db.Const(db.I(int64(d))), db.Const(db.I(int64(w))),
		db.AnyVar("n"), db.AnyVar("t"),
		db.Const(db.F(g.distYtd[[2]int{w, d}])),
		db.Const(db.I(int64(g.nextOID[[2]int{w, d}]))),
	}
}

func (g *Generator) selWarehouse(w int) db.Pattern {
	return db.Pattern{
		db.Const(db.I(int64(w))),
		db.AnyVar("n"), db.AnyVar("c"), db.AnyVar("s"), db.AnyVar("t"),
		db.Const(db.F(g.whYtd[w])),
	}
}

func (g *Generator) selCustomer(w, d, c int) db.Pattern {
	key := [3]int{w, d, c}
	return db.Pattern{
		db.Const(db.I(int64(c))), db.Const(db.I(int64(d))), db.Const(db.I(int64(w))),
		db.AnyVar("l"), db.AnyVar("f"), db.AnyVar("cr"), db.AnyVar("disc"),
		db.Const(db.F(g.custBal[key])),
		db.Const(db.F(g.custYtd[key])),
		db.Const(db.I(int64(g.custPay[key]))),
		db.Const(db.I(int64(g.custDel[key]))),
		db.AnyVar("data"),
	}
}

func (g *Generator) selStock(w, i int) db.Pattern {
	key := [2]int{w, i}
	return db.Pattern{
		db.Const(db.I(int64(i))), db.Const(db.I(int64(w))),
		db.Const(db.I(int64(g.stockQty[key]))),
		db.Const(db.I(int64(g.stockYtd[key]))),
		db.Const(db.I(int64(g.stockOrd[key]))),
		db.AnyVar("rc"), db.AnyVar("d"),
	}
}

// selOrder pins o_carrier_id = 0: delivery only touches undelivered
// orders.
func selOrder(w, d, o int) db.Pattern {
	return db.Pattern{
		db.Const(db.I(int64(o))), db.Const(db.I(int64(d))), db.Const(db.I(int64(w))),
		db.AnyVar("c"), db.AnyVar("e"), db.Const(db.I(0)), db.AnyVar("cnt"), db.AnyVar("al"),
	}
}

// selOrderLines pins ol_delivery_d = 0: only undelivered lines.
func selOrderLines(w, d, o int) db.Pattern {
	return db.Pattern{
		db.Const(db.I(int64(o))), db.Const(db.I(int64(d))), db.Const(db.I(int64(w))),
		db.AnyVar("n"), db.AnyVar("i"), db.AnyVar("sw"), db.Const(db.I(0)), db.AnyVar("q"), db.AnyVar("a"),
	}
}

func selNewOrder(w, d, o int) db.Pattern {
	return db.Pattern{db.Const(db.I(int64(o))), db.Const(db.I(int64(d))), db.Const(db.I(int64(w)))}
}

func keepN(n int) []db.SetClause { return make([]db.SetClause, n) }

// NewOrderTxn generates one TPC-C New-Order transaction as hyperplane
// updates: the district order counter advances, the order, its
// NEW_ORDER entry and 5–15 order lines are inserted, and each ordered
// item's stock row is modified.
func (g *Generator) NewOrderTxn() db.Transaction {
	w := 1 + g.r.Intn(g.cfg.Warehouses)
	d := 1 + g.r.Intn(g.cfg.Districts)
	c := 1 + g.r.Intn(g.cfg.CustomersPerDistrict)
	g.clock++
	g.txnNo++
	key := [2]int{w, d}
	o := g.nextOID[key]
	distSel := g.selDistrict(w, d) // pins the pre-update counter
	g.nextOID[key] = o + 1
	cnt := 5 + g.r.Intn(11)
	okey := [3]int{w, d, o}
	g.orderCust[okey] = c
	g.orderCnt[okey] = cnt
	g.pending[key] = append(g.pending[key], o)

	txn := db.Transaction{Label: fmt.Sprintf("neworder_%d", g.txnNo)}
	set := keepN(6)
	set[5] = db.SetTo(db.I(int64(o + 1)))
	txn.Updates = append(txn.Updates, db.Modify(District, distSel, set))
	txn.Updates = append(txn.Updates, db.Insert(Orders, db.Tuple{
		db.I(int64(o)), db.I(int64(d)), db.I(int64(w)), db.I(int64(c)),
		db.I(int64(g.clock)), db.I(0), db.I(int64(cnt)), db.I(1),
	}))
	txn.Updates = append(txn.Updates, db.Insert(NewOrder, db.Tuple{
		db.I(int64(o)), db.I(int64(d)), db.I(int64(w)),
	}))
	var amt float64
	prevItem := 0
	for l := 1; l <= cnt; l++ {
		item := 1 + g.r.Intn(g.cfg.Items)
		// TPC-C orders may repeat an item; a repeated item makes the
		// same stock row pass through two modifications of one
		// transaction, which is exactly where the Figure 6 rules
		// compress the normal form below the naive representation.
		if prevItem != 0 && g.r.Intn(100) < 15 {
			item = prevItem
		}
		prevItem = item
		qty := 1 + g.r.Intn(10)
		skey := [2]int{w, item}
		stockSel := g.selStock(w, item) // pins the pre-update quantities
		sq := g.stockQty[skey]
		if sq-qty < 10 {
			sq += 91
		}
		sq -= qty
		g.stockQty[skey] = sq
		g.stockYtd[skey] += qty
		g.stockOrd[skey]++
		sset := keepN(7)
		sset[2] = db.SetTo(db.I(int64(sq)))
		sset[3] = db.SetTo(db.I(int64(g.stockYtd[skey])))
		sset[4] = db.SetTo(db.I(int64(g.stockOrd[skey])))
		txn.Updates = append(txn.Updates, db.Modify(Stock, stockSel, sset))
		lineAmt := money(float64(qty) * (1 + g.r.Float64()*99))
		amt += lineAmt
		txn.Updates = append(txn.Updates, db.Insert(OrderLine, db.Tuple{
			db.I(int64(o)), db.I(int64(d)), db.I(int64(w)), db.I(int64(l)),
			db.I(int64(item)), db.I(int64(w)), db.I(0), db.I(int64(qty)), db.F(lineAmt),
		}))
	}
	g.orderAmt[okey] = amt
	return txn
}

// PaymentTxn generates one TPC-C Payment transaction: warehouse and
// district year-to-date totals and the customer's balance are modified,
// and a history row is inserted.
func (g *Generator) PaymentTxn() db.Transaction {
	w := 1 + g.r.Intn(g.cfg.Warehouses)
	d := 1 + g.r.Intn(g.cfg.Districts)
	c := 1 + g.r.Intn(g.cfg.CustomersPerDistrict)
	g.clock++
	g.txnNo++
	h := money(1 + g.r.Float64()*4999)
	txn := db.Transaction{Label: fmt.Sprintf("payment_%d", g.txnNo)}

	whSel := g.selWarehouse(w)
	g.whYtd[w] = money(g.whYtd[w] + h)
	wset := keepN(6)
	wset[5] = db.SetTo(db.F(g.whYtd[w]))
	txn.Updates = append(txn.Updates, db.Modify(Warehouse, whSel, wset))

	dkey := [2]int{w, d}
	distSel := g.selDistrict(w, d)
	g.distYtd[dkey] = money(g.distYtd[dkey] + h)
	dset := keepN(6)
	dset[4] = db.SetTo(db.F(g.distYtd[dkey]))
	txn.Updates = append(txn.Updates, db.Modify(District, distSel, dset))

	ckey := [3]int{w, d, c}
	custSel := g.selCustomer(w, d, c)
	g.custBal[ckey] = money(g.custBal[ckey] - h)
	g.custYtd[ckey] = money(g.custYtd[ckey] + h)
	g.custPay[ckey]++
	cset := keepN(12)
	cset[7] = db.SetTo(db.F(g.custBal[ckey]))
	cset[8] = db.SetTo(db.F(g.custYtd[ckey]))
	cset[9] = db.SetTo(db.I(int64(g.custPay[ckey])))
	txn.Updates = append(txn.Updates, db.Modify(Customer, custSel, cset))

	g.hid++
	txn.Updates = append(txn.Updates, db.Insert(History, db.Tuple{
		db.I(int64(g.hid)), db.I(int64(c)), db.I(int64(d)), db.I(int64(w)),
		db.I(int64(d)), db.I(int64(w)), db.I(int64(g.clock)), db.F(h), db.S("payment"),
	}))
	return txn
}

// DeliveryTxn generates one TPC-C Delivery transaction: for each
// district with a pending order, the NEW_ORDER entry is deleted, the
// order is assigned a carrier, all its order lines receive a delivery
// date (a genuinely multi-row hyperplane modification), and the
// customer's balance and delivery count are modified.
func (g *Generator) DeliveryTxn() db.Transaction {
	w := 1 + g.r.Intn(g.cfg.Warehouses)
	carrier := 1 + g.r.Intn(10)
	g.clock++
	g.txnNo++
	txn := db.Transaction{Label: fmt.Sprintf("delivery_%d", g.txnNo)}
	for d := 1; d <= g.cfg.Districts; d++ {
		key := [2]int{w, d}
		queue := g.pending[key]
		if len(queue) == 0 {
			continue
		}
		o := queue[0]
		g.pending[key] = queue[1:]
		okey := [3]int{w, d, o}
		c := g.orderCust[okey]

		txn.Updates = append(txn.Updates, db.Delete(NewOrder, selNewOrder(w, d, o)))

		oset := keepN(8)
		oset[5] = db.SetTo(db.I(int64(carrier)))
		txn.Updates = append(txn.Updates, db.Modify(Orders, selOrder(w, d, o), oset))

		olset := keepN(9)
		olset[6] = db.SetTo(db.I(int64(g.clock)))
		txn.Updates = append(txn.Updates, db.Modify(OrderLine, selOrderLines(w, d, o), olset))

		ckey := [3]int{w, d, c}
		custSel := g.selCustomer(w, d, c)
		g.custBal[ckey] = money(g.custBal[ckey] + g.orderAmt[okey])
		g.custDel[ckey]++
		cset := keepN(12)
		cset[7] = db.SetTo(db.F(g.custBal[ckey]))
		cset[10] = db.SetTo(db.I(int64(g.custDel[ckey])))
		txn.Updates = append(txn.Updates, db.Modify(Customer, custSel, cset))
	}
	return txn
}

// NextTransaction draws from the TPC-C write-transaction mix: the TPC-C
// weights for New-Order (45%), Payment (43%) and the remaining
// deferred-execution share assigned to Delivery (the read-only
// Order-Status and Stock-Level transactions generate no updates and are
// omitted).
func (g *Generator) NextTransaction() db.Transaction {
	switch x := g.r.Intn(100); {
	case x < 45:
		return g.NewOrderTxn()
	case x < 88:
		return g.PaymentTxn()
	default:
		return g.DeliveryTxn()
	}
}

// Transactions generates n transactions from the mix.
func (g *Generator) Transactions(n int) []db.Transaction {
	out := make([]db.Transaction, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.NextTransaction())
	}
	return out
}

// TransactionsForQueries generates transactions until the total number
// of update queries reaches at least q (the paper's x-axes count
// individual update queries, up to 1966).
func (g *Generator) TransactionsForQueries(q int) []db.Transaction {
	var out []db.Transaction
	total := 0
	for total < q {
		t := g.NextTransaction()
		if len(t.Updates) == 0 {
			continue
		}
		total += len(t.Updates)
		out = append(out, t)
	}
	return out
}
