// Package tpcc is the TPC-C substrate of hyperprov's evaluation: the
// nine-table TPC-C schema, a deterministic scaled data generator, and a
// transaction-log generator that lowers the write transactions of the
// benchmark (New-Order, Payment, Delivery) to hyperplane update queries.
//
// The paper (Section 6.1) uses the py-tpcc implementation to produce
// logs of up to ~2000 update queries over a ~2.1M-tuple database. This
// package replaces that setup: what the evaluation actually needs from
// TPC-C is an update-intensive workload of hyperplane queries with
// realistic structure — key-equality selections touching few tuples per
// query, single-tuple inserts, multi-row modifications (order-line
// delivery), and deletions (NEW-ORDER consumption) — over a large
// initial database. The generator tracks shadow state so that every
// modification can be expressed with constant SET clauses, as the
// hyperplane fragment requires.
package tpcc

import "hyperprov/internal/db"

func intAttr(name string) db.Attribute   { return db.Attribute{Name: name, Kind: db.KindInt} }
func strAttr(name string) db.Attribute   { return db.Attribute{Name: name, Kind: db.KindString} }
func floatAttr(name string) db.Attribute { return db.Attribute{Name: name, Kind: db.KindFloat} }

// Relation names of the nine TPC-C tables.
const (
	Warehouse = "WAREHOUSE"
	District  = "DISTRICT"
	Customer  = "CUSTOMER"
	History   = "HISTORY"
	NewOrder  = "NEW_ORDER"
	Orders    = "ORDERS"
	OrderLine = "ORDER_LINE"
	Item      = "ITEM"
	Stock     = "STOCK"
)

// Schema returns the TPC-C schema. Column sets follow the TPC-C
// specification, trimmed of address/phone filler columns that no
// transaction in the generated mix reads or writes (the filler is
// carried by the *_data payload columns instead, keeping tuples wide
// enough to be representative).
func Schema() *db.Schema {
	return db.MustSchema(
		db.MustRelationSchema(Warehouse,
			intAttr("w_id"), strAttr("w_name"), strAttr("w_city"), strAttr("w_state"),
			floatAttr("w_tax"), floatAttr("w_ytd"),
		),
		db.MustRelationSchema(District,
			intAttr("d_id"), intAttr("d_w_id"), strAttr("d_name"),
			floatAttr("d_tax"), floatAttr("d_ytd"), intAttr("d_next_o_id"),
		),
		db.MustRelationSchema(Customer,
			intAttr("c_id"), intAttr("c_d_id"), intAttr("c_w_id"),
			strAttr("c_last"), strAttr("c_first"), strAttr("c_credit"),
			floatAttr("c_discount"), floatAttr("c_balance"), floatAttr("c_ytd_payment"),
			intAttr("c_payment_cnt"), intAttr("c_delivery_cnt"), strAttr("c_data"),
		),
		db.MustRelationSchema(History,
			intAttr("h_id"), intAttr("h_c_id"), intAttr("h_c_d_id"), intAttr("h_c_w_id"),
			intAttr("h_d_id"), intAttr("h_w_id"), intAttr("h_date"),
			floatAttr("h_amount"), strAttr("h_data"),
		),
		db.MustRelationSchema(NewOrder,
			intAttr("no_o_id"), intAttr("no_d_id"), intAttr("no_w_id"),
		),
		db.MustRelationSchema(Orders,
			intAttr("o_id"), intAttr("o_d_id"), intAttr("o_w_id"), intAttr("o_c_id"),
			intAttr("o_entry_d"), intAttr("o_carrier_id"), intAttr("o_ol_cnt"), intAttr("o_all_local"),
		),
		db.MustRelationSchema(OrderLine,
			intAttr("ol_o_id"), intAttr("ol_d_id"), intAttr("ol_w_id"), intAttr("ol_number"),
			intAttr("ol_i_id"), intAttr("ol_supply_w_id"), intAttr("ol_delivery_d"),
			intAttr("ol_quantity"), floatAttr("ol_amount"),
		),
		db.MustRelationSchema(Item,
			intAttr("i_id"), intAttr("i_im_id"), strAttr("i_name"),
			floatAttr("i_price"), strAttr("i_data"),
		),
		db.MustRelationSchema(Stock,
			intAttr("s_i_id"), intAttr("s_w_id"), intAttr("s_quantity"),
			intAttr("s_ytd"), intAttr("s_order_cnt"), intAttr("s_remote_cnt"), strAttr("s_data"),
		),
	)
}
