package parser_test

import (
	"strings"
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/parser"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/workload"
)

func TestFormatDatalogExamples(t *testing.T) {
	s := schema()
	cases := []struct {
		u     db.Update
		label string
		want  string
	}{
		{
			db.Insert("Products", db.Tuple{db.S("Lego bricks"), db.S("Kids"), db.I(90)}),
			"p",
			`Products+,p("Lego bricks", "Kids", 90):-`,
		},
		{
			db.Delete("Products", db.Pattern{db.VarNotEq("x", db.S("Kids mnt bike")), db.Const(db.S("Sport")), db.AnyVar("c")}),
			"p",
			`Products-,p([x != "Kids mnt bike"], "Sport", c):-`,
		},
		{
			db.Modify("Products",
				db.Pattern{db.Const(db.S("Kids mnt bike")), db.AnyVar("a"), db.AnyVar("b")},
				[]db.SetClause{db.Keep(), db.SetTo(db.S("Bicycles")), db.Keep()}),
			"p",
			`ProductsM,p("Kids mnt bike", a, b -> "Kids mnt bike", "Bicycles", b):-`,
		},
	}
	for _, c := range cases {
		got, err := parser.FormatDatalog(s, c.u, c.label)
		if err != nil {
			t.Fatalf("FormatDatalog(%v): %v", c.u, err)
		}
		if got != c.want {
			t.Errorf("FormatDatalog = %q, want %q", got, c.want)
		}
		back, label, err := parser.ParseDatalogQuery(s, got)
		if err != nil {
			t.Fatalf("reparse of %q: %v", got, err)
		}
		if label != c.label {
			t.Errorf("label = %q, want %q", label, c.label)
		}
		d1, d2 := initialDB(t), initialDB(t)
		if err := d1.Apply(c.u); err != nil {
			t.Fatal(err)
		}
		if err := d2.Apply(back); err != nil {
			t.Fatal(err)
		}
		if !d1.Equal(d2) {
			t.Errorf("round trip of %q changed semantics", got)
		}
	}
}

func TestFormatDatalogRejectsConds(t *testing.T) {
	s := db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "a", Kind: db.KindInt},
		db.Attribute{Name: "b", Kind: db.KindInt},
	))
	u := db.Delete("R", db.AllPattern(2)).WithConds(db.AttrCond{Left: 0, Right: 1})
	if _, err := parser.FormatDatalog(s, u, "p"); err == nil {
		t.Error("conjunctive-extension update must have no datalog form")
	}
}

func TestFormatDatalogLogRoundTripWorkloads(t *testing.T) {
	// Synthetic.
	cfg := workload.Config{Tuples: 150, Pool: 10, Group: 2, Updates: 40, QueriesPerTxn: 5, MergeRatio: 0.2, Seed: 8}
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := parser.FormatDatalogLog(initial.Schema(), txns)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parser.ParseDatalogLog(initial.Schema(), src)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := initial.Clone(), initial.Clone()
	if err := d1.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	if err := d2.ApplyAll(back); err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Errorf("synthetic datalog round trip changed semantics:\n%s", d1.Diff(d2))
	}

	// TPC-C.
	g := tpcc.NewGenerator(tpcc.DefaultConfig())
	tinit, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	ttxns := g.Transactions(10)
	tsrc, err := parser.FormatDatalogLog(tinit.Schema(), ttxns)
	if err != nil {
		t.Fatal(err)
	}
	tback, err := parser.ParseDatalogLog(tinit.Schema(), tsrc)
	if err != nil {
		t.Fatal(err)
	}
	td1, td2 := tinit.Clone(), tinit.Clone()
	if err := td1.ApplyAll(ttxns); err != nil {
		t.Fatal(err)
	}
	if err := td2.ApplyAll(tback); err != nil {
		t.Fatal(err)
	}
	if !td1.Equal(td2) {
		t.Errorf("TPC-C datalog round trip changed semantics:\n%s", td1.Diff(td2))
	}
	if !strings.Contains(tsrc, "STOCKM,") {
		t.Error("expected STOCK modifications in the log")
	}
}
