package parser_test

import (
	"testing"

	"hyperprov/internal/parser"
)

// FuzzParseSQLStatement checks the SQL front end never panics and that
// accepted statements re-format and re-parse to the same behaviour.
func FuzzParseSQLStatement(f *testing.F) {
	for _, seed := range []string{
		"INSERT INTO Products VALUES ('a', 'b', 1)",
		"DELETE FROM Products WHERE Category = 'Sport' AND Product <> 'x'",
		"UPDATE Products SET Price = 50 WHERE Category = 'Sport'",
		"DELETE FROM Products",
		"INSERT INTO",
		"UPDATE Products SET",
		"DELETE FROM Products WHERE Price < 3",
		"INSERT INTO Products VALUES ('it''s', 'q', 2)",
	} {
		f.Add(seed)
	}
	s := schema()
	f.Fuzz(func(t *testing.T, stmt string) {
		u, err := parser.ParseSQLStatement(s, stmt)
		if err != nil {
			return
		}
		if err := u.Validate(s); err != nil {
			t.Fatalf("accepted update fails validation: %v (from %q)", err, stmt)
		}
		out, err := parser.FormatSQL(s, u)
		if err != nil {
			// Modifications without SET clauses cannot be formatted; the
			// parser never produces them.
			t.Fatalf("accepted update cannot be formatted: %v (from %q)", err, stmt)
		}
		back, err := parser.ParseSQLStatement(s, out)
		if err != nil {
			t.Fatalf("formatted statement %q does not re-parse: %v", out, err)
		}
		d1, d2 := initialDB(t), initialDB(t)
		if err := d1.Apply(u); err != nil {
			t.Fatal(err)
		}
		if err := d2.Apply(back); err != nil {
			t.Fatal(err)
		}
		if !d1.Equal(d2) {
			t.Fatalf("round trip changed semantics of %q -> %q", stmt, out)
		}
	})
}

// FuzzParseDatalogQuery checks the datalog front end never panics and
// accepted queries are valid.
func FuzzParseDatalogQuery(f *testing.F) {
	for _, seed := range []string{
		`Products+,p("a", "b", 1):-`,
		`Products-,p([x != "a"], "Sport", c):-`,
		`ProductsM,p("a", b, c -> "a", "X", c):-`,
		`ProductsM,p(a, b, c, a, "X", c):-`,
		`Products+,p(`,
		`Nope-,p(a):-`,
	} {
		f.Add(seed)
	}
	s := schema()
	f.Fuzz(func(t *testing.T, src string) {
		u, label, err := parser.ParseDatalogQuery(s, src)
		if err != nil {
			return
		}
		if label == "" {
			t.Fatalf("accepted query with empty label: %q", src)
		}
		if err := u.Validate(s); err != nil {
			t.Fatalf("accepted update fails validation: %v (from %q)", err, src)
		}
	})
}
