package parser

import (
	"fmt"
	"strings"

	"hyperprov/internal/db"
)

// quoteDatalog renders a value as a datalog-notation literal.
func quoteDatalog(v db.Value) string {
	if v.Kind() == db.KindString {
		return `"` + strings.ReplaceAll(v.Str(), `"`, `""`) + `"`
	}
	return v.String()
}

func datalogTerm(term db.Term, pos int) string {
	if term.IsConst() {
		return quoteDatalog(term.Value())
	}
	name := term.VarName()
	if name == "" || name == "_" {
		name = fmt.Sprintf("v%d", pos)
	}
	if len(term.NotEq()) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, ne := range term.NotEq() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s != %s", name, quoteDatalog(ne))
	}
	b.WriteByte(']')
	return b.String()
}

// FormatDatalog renders an annotated update in the paper's datalog-like
// notation accepted by ParseDatalogQuery. Updates carrying attribute
// conditions (the conjunctive extension) cannot be expressed in the
// notation and are rejected.
func FormatDatalog(s *db.Schema, u db.Update, label string) (string, error) {
	rel := s.Relation(u.Rel)
	if rel == nil {
		return "", fmt.Errorf("parser: unknown relation %s", u.Rel)
	}
	if !u.IsHyperplane() {
		return "", fmt.Errorf("parser: update with attribute conditions has no datalog form")
	}
	var b strings.Builder
	switch u.Kind {
	case db.OpInsert:
		fmt.Fprintf(&b, "%s+,%s(", rel.Name, label)
		for i, v := range u.Row {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteDatalog(v))
		}
	case db.OpDelete:
		fmt.Fprintf(&b, "%s-,%s(", rel.Name, label)
		for i, term := range u.Sel {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(datalogTerm(term, i))
		}
	case db.OpModify:
		fmt.Fprintf(&b, "%sM,%s(", rel.Name, label)
		for i, term := range u.Sel {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(datalogTerm(term, i))
		}
		b.WriteString(" -> ")
		for i, c := range u.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			if c.Set {
				b.WriteString(quoteDatalog(c.Val))
				continue
			}
			// u2 repeats u1's term at kept positions; a disequality
			// collapses to its bare variable (the restriction already
			// applied on the selection side).
			term := u.Sel[i]
			if term.IsConst() {
				b.WriteString(quoteDatalog(term.Value()))
			} else {
				name := term.VarName()
				if name == "" || name == "_" {
					name = fmt.Sprintf("v%d", i)
				}
				b.WriteString(name)
			}
		}
	default:
		return "", fmt.Errorf("parser: unknown update kind %v", u.Kind)
	}
	b.WriteString("):-")
	return b.String(), nil
}

// FormatDatalogLog renders a transaction sequence one annotated query
// per line, as ParseDatalogLog expects (consecutive queries of one
// transaction share its label).
func FormatDatalogLog(s *db.Schema, txns []db.Transaction) (string, error) {
	var b strings.Builder
	for i := range txns {
		for _, u := range txns[i].Updates {
			line, err := FormatDatalog(s, u, txns[i].Label)
			if err != nil {
				return "", err
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}
