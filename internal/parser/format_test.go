package parser_test

import (
	"strings"
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/parser"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/workload"
)

func TestFormatSQLRoundTrip(t *testing.T) {
	s := schema()
	updates := []db.Update{
		db.Insert("Products", db.Tuple{db.S("O'Neil board"), db.S("Sport"), db.I(300)}),
		db.Delete("Products", db.Pattern{db.VarNotEq("p", db.S("Kids mnt bike")), db.Const(db.S("Sport")), db.AnyVar("c")}),
		db.Modify("Products",
			db.Pattern{db.Const(db.S("Kids mnt bike")), db.AnyVar("a"), db.AnyVar("b")},
			[]db.SetClause{db.Keep(), db.SetTo(db.S("Bicycles")), db.Keep()}),
		db.Delete("Products", db.AllPattern(3)),
	}
	for _, u := range updates {
		stmt, err := parser.FormatSQL(s, u)
		if err != nil {
			t.Fatalf("FormatSQL(%v): %v", u, err)
		}
		back, err := parser.ParseSQLStatement(s, stmt)
		if err != nil {
			t.Fatalf("reparse of %q: %v", stmt, err)
		}
		if back.Kind != u.Kind || back.Rel != u.Rel {
			t.Errorf("round trip changed update: %q", stmt)
		}
		// Behavioural equivalence: same effect on the example database.
		d1, d2 := initialDB(t), initialDB(t)
		if err := d1.Apply(u); err != nil {
			t.Fatal(err)
		}
		if err := d2.Apply(back); err != nil {
			t.Fatal(err)
		}
		if !d1.Equal(d2) {
			t.Errorf("round trip of %q changed semantics:\n%s", stmt, d1.Diff(d2))
		}
	}
}

func TestFormatSQLLogRoundTripTPCC(t *testing.T) {
	g := tpcc.NewGenerator(tpcc.DefaultConfig())
	initial, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	txns := g.Transactions(15)
	src, err := parser.FormatSQLLog(initial.Schema(), txns)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parser.ParseSQLLog(initial.Schema(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(txns) {
		t.Fatalf("round trip: %d transactions, want %d", len(back), len(txns))
	}
	d1, d2 := initial.Clone(), initial.Clone()
	if err := d1.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	if err := d2.ApplyAll(back); err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Errorf("TPC-C SQL log round trip changed semantics:\n%s", d1.Diff(d2))
	}
}

func TestFormatSQLLogRoundTripSynthetic(t *testing.T) {
	cfg := workload.Config{Tuples: 200, Pool: 10, Group: 2, Updates: 50, MergeRatio: 0.2, Seed: 4}
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := parser.FormatSQLLog(initial.Schema(), txns)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parser.ParseSQLLog(initial.Schema(), src)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := initial.Clone(), initial.Clone()
	if err := d1.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	if err := d2.ApplyAll(back); err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Errorf("synthetic SQL log round trip changed semantics:\n%s", d1.Diff(d2))
	}
}

func TestFormatSQLQuoting(t *testing.T) {
	s := schema()
	stmt, err := parser.FormatSQL(s, db.Insert("Products", db.Tuple{db.S("O'Neil"), db.S("Sport"), db.I(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt, "'O''Neil'") {
		t.Errorf("quote escaping missing: %q", stmt)
	}
}

func TestFormatSQLErrors(t *testing.T) {
	s := schema()
	if _, err := parser.FormatSQL(s, db.Insert("Nope", db.Tuple{db.S("x")})); err == nil {
		t.Error("unknown relation accepted")
	}
	noop := db.Modify("Products", db.AllPattern(3), make([]db.SetClause, 3))
	if _, err := parser.FormatSQL(s, noop); err == nil {
		t.Error("modification without SET clauses accepted")
	}
}
