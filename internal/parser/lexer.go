// Package parser provides two textual front ends for hyperplane update
// transactions: the SQL fragment identified in Section 2 of the paper
// (single-tuple INSERT, DELETE/UPDATE with conjunctions of
// AttributeName op constant predicates, op ∈ {=, <>}), and the paper's
// datalog-like notation (R+,p(u):-, R-,p(u):-, RM,p(u1, u2):-).
//
// Both parsers produce db.Update / db.Transaction values validated
// against a schema, so everything they accept is inside the hyperplane
// fragment by construction.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // single punctuation rune, or the two-rune <> and != and :-
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
	i    int
}

func newLexer(src string) (*lexer, error) {
	l := &lexer{src: src}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *lexer) scan() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL comment to end of line.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\'' || c == '"':
			start := l.pos
			quote := c
			l.pos++
			var b strings.Builder
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("parser: unterminated string at offset %d", start)
				}
				if l.src[l.pos] == quote {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
						b.WriteByte(quote) // doubled quote escapes itself
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		default:
			start := l.pos
			if rest := l.src[l.pos:]; strings.HasPrefix(rest, "<>") || strings.HasPrefix(rest, "!=") || strings.HasPrefix(rest, ":-") || strings.HasPrefix(rest, "->") {
				l.toks = append(l.toks, token{kind: tokPunct, text: rest[:2], pos: start})
				l.pos += 2
			} else {
				l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: start})
				l.pos++
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return nil
}

func (l *lexer) peek() token { return l.toks[l.i] }

func (l *lexer) next() token {
	t := l.toks[l.i]
	if t.kind != tokEOF {
		l.i++
	}
	return t
}

// acceptPunct consumes the next token if it is the given punctuation.
func (l *lexer) acceptPunct(p string) bool {
	if t := l.peek(); t.kind == tokPunct && t.text == p {
		l.i++
		return true
	}
	return false
}

// acceptKeyword consumes the next token if it is the identifier kw
// (case-insensitive).
func (l *lexer) acceptKeyword(kw string) bool {
	if t := l.peek(); t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		l.i++
		return true
	}
	return false
}

func (l *lexer) expectPunct(p string) error {
	if !l.acceptPunct(p) {
		return fmt.Errorf("parser: expected %q at offset %d, got %q", p, l.peek().pos, l.peek().text)
	}
	return nil
}

func (l *lexer) expectIdent() (string, error) {
	t := l.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("parser: expected identifier at offset %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}
