package parser

import (
	"fmt"
	"strings"

	"hyperprov/internal/db"
)

// rawTerm is a pattern position before kinds are resolved against the
// schema.
type rawTerm struct {
	isConst bool
	isStr   bool
	text    string // literal text (string contents or number)
	varName string
	notEq   []rawTerm
	pos     int
}

func (l *lexer) parseRawTerm() (rawTerm, error) {
	t := l.next()
	switch {
	case t.kind == tokString:
		return rawTerm{isConst: true, isStr: true, text: t.text, pos: t.pos}, nil
	case t.kind == tokNumber:
		return rawTerm{isConst: true, text: t.text, pos: t.pos}, nil
	case t.kind == tokIdent:
		return rawTerm{varName: t.text, pos: t.pos}, nil
	case t.kind == tokPunct && t.text == "[":
		// [x != "a", x != "b"]
		out := rawTerm{pos: t.pos}
		for {
			name, err := l.expectIdent()
			if err != nil {
				return out, err
			}
			if out.varName == "" {
				out.varName = name
			} else if out.varName != name {
				return out, fmt.Errorf("parser: mixed variables %s and %s in disequality at offset %d", out.varName, name, t.pos)
			}
			if !l.acceptPunct("!=") && !l.acceptPunct("<>") {
				return out, fmt.Errorf("parser: expected != in disequality at offset %d", l.peek().pos)
			}
			c := l.next()
			switch c.kind {
			case tokString:
				out.notEq = append(out.notEq, rawTerm{isConst: true, isStr: true, text: c.text, pos: c.pos})
			case tokNumber:
				out.notEq = append(out.notEq, rawTerm{isConst: true, text: c.text, pos: c.pos})
			default:
				return out, fmt.Errorf("parser: expected constant after != at offset %d", c.pos)
			}
			if !l.acceptPunct(",") {
				break
			}
		}
		if err := l.expectPunct("]"); err != nil {
			return out, err
		}
		return out, nil
	default:
		return rawTerm{}, fmt.Errorf("parser: expected term at offset %d, got %q", t.pos, t.text)
	}
}

func (rt rawTerm) toValue(kind db.Kind) (db.Value, error) {
	if rt.isStr {
		if kind != db.KindString {
			return db.Value{}, fmt.Errorf("parser: string literal %q where %v expected at offset %d", rt.text, kind, rt.pos)
		}
		return db.S(rt.text), nil
	}
	return db.ParseValue(kind, rt.text)
}

func (rt rawTerm) toTerm(kind db.Kind) (db.Term, error) {
	if rt.isConst {
		v, err := rt.toValue(kind)
		if err != nil {
			return db.Term{}, err
		}
		return db.Const(v), nil
	}
	if len(rt.notEq) == 0 {
		return db.AnyVar(rt.varName), nil
	}
	vals := make([]db.Value, len(rt.notEq))
	for i, ne := range rt.notEq {
		v, err := ne.toValue(kind)
		if err != nil {
			return db.Term{}, err
		}
		vals[i] = v
	}
	return db.VarNotEq(rt.varName, vals...), nil
}

// ParseDatalogQuery parses one annotated query in the paper's
// datalog-like notation and returns the update together with its
// annotation label:
//
//	Products+,p("Lego bricks", "Kids", 90):-
//	Products-,p(a, "Fashion", b):-
//	ProductsM,p("Kids mnt bike", a, b -> "Kids mnt bike", "Bicycles", b):-
//
// The modification's u1 and u2 may also be given as 2n comma-separated
// terms without the -> separator, exactly as the paper writes them.
func ParseDatalogQuery(s *db.Schema, src string) (db.Update, string, error) {
	l, err := newLexer(src)
	if err != nil {
		return db.Update{}, "", err
	}
	head, err := l.expectIdent()
	if err != nil {
		return db.Update{}, "", err
	}
	var kind db.UpdateKind
	rel := s.Relation(head)
	switch {
	case rel != nil && l.acceptPunct("+"):
		kind = db.OpInsert
	case rel != nil && l.acceptPunct("-"):
		kind = db.OpDelete
	case rel == nil && strings.HasSuffix(head, "M") && s.Relation(strings.TrimSuffix(head, "M")) != nil:
		kind = db.OpModify
		rel = s.Relation(strings.TrimSuffix(head, "M"))
	default:
		return db.Update{}, "", fmt.Errorf("parser: cannot resolve head %q (want Rel+, Rel- or RelM)", head)
	}
	if err := l.expectPunct(","); err != nil {
		return db.Update{}, "", err
	}
	label, err := l.expectIdent()
	if err != nil {
		return db.Update{}, "", err
	}
	if err := l.expectPunct("("); err != nil {
		return db.Update{}, "", err
	}
	var raws []rawTerm
	arrowAt := -1
	for {
		if l.acceptPunct("->") {
			arrowAt = len(raws)
			continue
		}
		rt, err := l.parseRawTerm()
		if err != nil {
			return db.Update{}, "", err
		}
		raws = append(raws, rt)
		if l.acceptPunct(",") {
			continue
		}
		if l.acceptPunct("->") {
			arrowAt = len(raws)
			continue
		}
		break
	}
	if err := l.expectPunct(")"); err != nil {
		return db.Update{}, "", err
	}
	if err := l.expectPunct(":-"); err != nil {
		return db.Update{}, "", err
	}
	if l.peek().kind != tokEOF {
		return db.Update{}, "", fmt.Errorf("parser: trailing input at offset %d", l.peek().pos)
	}

	n := rel.Arity()
	var u db.Update
	switch kind {
	case db.OpInsert:
		if len(raws) != n {
			return db.Update{}, "", fmt.Errorf("parser: insertion into %s needs %d constants, got %d", rel.Name, n, len(raws))
		}
		row := make(db.Tuple, n)
		for i, rt := range raws {
			if !rt.isConst {
				return db.Update{}, "", fmt.Errorf("parser: insertion terms must be constants (position %d)", i)
			}
			v, err := rt.toValue(rel.Attrs[i].Kind)
			if err != nil {
				return db.Update{}, "", err
			}
			row[i] = v
		}
		u = db.Insert(rel.Name, row)
	case db.OpDelete:
		if len(raws) != n {
			return db.Update{}, "", fmt.Errorf("parser: deletion on %s needs %d terms, got %d", rel.Name, n, len(raws))
		}
		sel := make(db.Pattern, n)
		for i, rt := range raws {
			term, err := rt.toTerm(rel.Attrs[i].Kind)
			if err != nil {
				return db.Update{}, "", err
			}
			sel[i] = term
		}
		u = db.Delete(rel.Name, sel)
	case db.OpModify:
		if arrowAt < 0 {
			if len(raws) != 2*n {
				return db.Update{}, "", fmt.Errorf("parser: modification on %s needs %d terms (u1, u2), got %d", rel.Name, 2*n, len(raws))
			}
			arrowAt = n
		}
		if arrowAt != n || len(raws)-arrowAt != n {
			return db.Update{}, "", fmt.Errorf("parser: modification on %s needs %d+%d terms, got %d+%d",
				rel.Name, n, n, arrowAt, len(raws)-arrowAt)
		}
		u1, u2 := raws[:n], raws[n:]
		sel := make(db.Pattern, n)
		set := make([]db.SetClause, n)
		for i := range u1 {
			term, err := u1[i].toTerm(rel.Attrs[i].Kind)
			if err != nil {
				return db.Update{}, "", err
			}
			sel[i] = term
			switch {
			case !u2[i].isConst:
				if u2[i].varName != u1[i].varName || len(u2[i].notEq) > 0 {
					return db.Update{}, "", fmt.Errorf("parser: u2 position %d must repeat u1's variable or be a constant", i)
				}
				set[i] = db.Keep()
			case u1[i].isConst && u1[i].text == u2[i].text && u1[i].isStr == u2[i].isStr:
				set[i] = db.Keep()
			default:
				v, err := u2[i].toValue(rel.Attrs[i].Kind)
				if err != nil {
					return db.Update{}, "", err
				}
				set[i] = db.SetTo(v)
			}
		}
		u = db.Modify(rel.Name, sel, set)
	}
	return u, label, u.Validate(s)
}

// ParseDatalogLog parses one annotated query per non-empty line and
// groups consecutive queries sharing an annotation into a transaction
// (the paper uses one annotation per transaction).
func ParseDatalogLog(s *db.Schema, src string) ([]db.Transaction, error) {
	var txns []db.Transaction
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "--") {
			continue
		}
		u, label, err := ParseDatalogQuery(s, line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if len(txns) > 0 && txns[len(txns)-1].Label == label {
			txns[len(txns)-1].Updates = append(txns[len(txns)-1].Updates, u)
		} else {
			txns = append(txns, db.Transaction{Label: label, Updates: []db.Update{u}})
		}
	}
	return txns, nil
}
