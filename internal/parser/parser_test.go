package parser_test

import (
	"context"
	"strings"
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/parser"
)

func schema() *db.Schema {
	return db.MustSchema(db.MustRelationSchema("Products",
		db.Attribute{Name: "Product", Kind: db.KindString},
		db.Attribute{Name: "Category", Kind: db.KindString},
		db.Attribute{Name: "Price", Kind: db.KindInt},
	))
}

func initialDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.NewDatabase(schema())
	for _, r := range []db.Tuple{
		{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)},
		{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
		{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)},
		{db.S("Children sneakers"), db.S("Fashion"), db.I(40)},
	} {
		if err := d.InsertTuple("Products", r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestParseSQLInsert(t *testing.T) {
	u, err := parser.ParseSQLStatement(schema(), "INSERT INTO Products VALUES ('Lego bricks', 'Kids', 90)")
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != db.OpInsert || !u.Row.Equal(db.Tuple{db.S("Lego bricks"), db.S("Kids"), db.I(90)}) {
		t.Errorf("parsed %v", u)
	}
}

func TestParseSQLDelete(t *testing.T) {
	u, err := parser.ParseSQLStatement(schema(), "DELETE FROM Products WHERE Category = 'Sport' AND Product <> 'Kids mnt bike'")
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != db.OpDelete {
		t.Fatalf("kind = %v", u.Kind)
	}
	// Example 2.1's selection.
	if !u.Sel.Matches(db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(70)}) {
		t.Error("racket should match")
	}
	if u.Sel.Matches(db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)}) {
		t.Error("bike must not match")
	}
}

func TestParseSQLDeleteNoWhere(t *testing.T) {
	u, err := parser.ParseSQLStatement(schema(), "DELETE FROM Products")
	if err != nil {
		t.Fatal(err)
	}
	if !u.Sel.Matches(db.Tuple{db.S("x"), db.S("y"), db.I(1)}) {
		t.Error("missing WHERE must match everything")
	}
}

func TestParseSQLUpdate(t *testing.T) {
	u, err := parser.ParseSQLStatement(schema(),
		"UPDATE Products SET Category = 'Bicycles' WHERE Product = 'Kids mnt bike'")
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != db.OpModify {
		t.Fatalf("kind = %v", u.Kind)
	}
	got := u.Target(db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)})
	want := db.Tuple{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)}
	if !got.Equal(want) {
		t.Errorf("Target = %v, want %v", got, want)
	}
}

func TestParseSQLErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT * FROM Products",
		"INSERT INTO Nope VALUES ('x')",
		"INSERT INTO Products VALUES ('x', 'y')",
		"INSERT INTO Products VALUES ('x', 'y', 'z')",
		"DELETE FROM Products WHERE Price < 100",        // comparison outside the fragment
		"DELETE FROM Products WHERE Product = Category", // attribute comparison outside the fragment
		"UPDATE Products SET Price = Price WHERE Price = 1",
		"UPDATE Products SET Nope = 1",
		"DELETE FROM Products WHERE Category = 'a' AND Category = 'b'",
		"INSERT INTO Products VALUES ('x', 'y', 90) extra",
	}
	for _, s := range bad {
		if _, err := parser.ParseSQLStatement(schema(), s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestParseSQLLogWithTransactions(t *testing.T) {
	src := `
-- the paper's running example as SQL
BEGIN p;
UPDATE Products SET Category = 'Sport' WHERE Product = 'Kids mnt bike' AND Category = 'Kids';
UPDATE Products SET Category = 'Bicycles' WHERE Product = 'Kids mnt bike' AND Category = 'Sport';
COMMIT;
BEGIN pp;
UPDATE Products SET Price = 50 WHERE Category = 'Sport';
COMMIT;
DELETE FROM Products WHERE Category = 'Fashion';
`
	txns, err := parser.ParseSQLLog(schema(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 3 || txns[0].Label != "p" || len(txns[0].Updates) != 2 || txns[1].Label != "pp" || txns[2].Label != "q0" {
		t.Fatalf("unexpected structure: %+v", txns)
	}
	// The parsed log reproduces the Figure 4 result through the engine.
	e := engine.New(engine.ModeNormalForm, initialDB(t))
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	live := engine.LiveDB(e)
	if !live.Instance("Products").Contains(db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(50)}) {
		t.Error("expected discounted racket after parsed log")
	}
	// As in Figure 4 / Example 4.4: the Sport bike at $50 carries an
	// annotation but is not live (T1 moved the bike to Bicycles before
	// T2 discounted Sport products).
	bike50 := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(50)}
	if live.Instance("Products").Contains(bike50) {
		t.Error("discounted sport bike must not be live")
	}
	if e.Annotation("Products", bike50) == nil {
		t.Error("discounted sport bike must still carry provenance")
	}
}

func TestParseSQLLogErrors(t *testing.T) {
	if _, err := parser.ParseSQLLog(schema(), "BEGIN p;\nDELETE FROM Products;"); err == nil || !strings.Contains(err.Error(), "COMMIT") {
		t.Errorf("missing COMMIT accepted: %v", err)
	}
}

func TestParseDatalogInsert(t *testing.T) {
	u, label, err := parser.ParseDatalogQuery(schema(), `Products+,p("Lego bricks", "Kids", 90):-`)
	if err != nil {
		t.Fatal(err)
	}
	if label != "p" || u.Kind != db.OpInsert || !u.Row.Equal(db.Tuple{db.S("Lego bricks"), db.S("Kids"), db.I(90)}) {
		t.Errorf("parsed %v with label %q", u, label)
	}
}

func TestParseDatalogDeleteWithDisequality(t *testing.T) {
	// Example 2.1.
	u, _, err := parser.ParseDatalogQuery(schema(), `Products-,p([x != "Kids mnt bike"], "Sport", c):-`)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Sel.Matches(db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(70)}) {
		t.Error("racket should match")
	}
	if u.Sel.Matches(db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)}) {
		t.Error("bike must not match")
	}
}

func TestParseDatalogModify(t *testing.T) {
	// Example 2.4 in both notations.
	for _, src := range []string{
		`ProductsM,p("Kids mnt bike", a, b -> "Kids mnt bike", "Bicycles", b):-`,
		`ProductsM,p("Kids mnt bike", a, b, "Kids mnt bike", "Bicycles", b):-`,
	} {
		u, _, err := parser.ParseDatalogQuery(schema(), src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if u.Kind != db.OpModify {
			t.Fatalf("kind = %v", u.Kind)
		}
		got := u.Target(db.Tuple{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)})
		if !got.Equal(db.Tuple{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)}) {
			t.Errorf("%q: Target = %v", src, got)
		}
		if !u.Sel.Matches(db.Tuple{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)}) {
			t.Errorf("%q: selection broken", src)
		}
	}
}

func TestParseDatalogErrors(t *testing.T) {
	bad := []string{
		``,
		`Nope+,p("x"):-`,
		`Products+,p(a, "Kids", 90):-`,      // variable in insertion
		`Products+,p("x", "y", 90)`,         // missing :-
		`Products-,p("x", "y"):-`,           // arity
		`ProductsM,p(a, b, c -> a, b):-`,    // u2 arity
		`ProductsM,p(a, b, c -> d, b, c):-`, // u2 fresh variable
		`Products-,p([x != "a", y != "b"], "Sport", c):-`, // mixed disequality vars
		`ProductsM,p(a, b, c -> a, [b != "x"], c):-`,      // disequality in u2
	}
	for _, s := range bad {
		if _, _, err := parser.ParseDatalogQuery(schema(), s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestParseDatalogLogGrouping(t *testing.T) {
	src := `
% Figure 2: transactions T1 and T2
ProductsM,p("Kids mnt bike", "Kids", c -> "Kids mnt bike", "Sport", c):-
ProductsM,p("Kids mnt bike", "Sport", c -> "Kids mnt bike", "Bicycles", c):-
ProductsM,pp(a, "Sport", c -> a, "Sport", 50):-
`
	txns, err := parser.ParseDatalogLog(schema(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 2 || len(txns[0].Updates) != 2 || txns[0].Label != "p" || txns[1].Label != "pp" {
		t.Fatalf("unexpected grouping: %+v", txns)
	}
	// And the engine agrees with the hand-built Figure 2 transactions.
	e := engine.New(engine.ModeNaive, initialDB(t))
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	bike := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(50)}
	ann := e.Annotation("Products", bike)
	if ann == nil {
		t.Fatal("missing annotation for discounted bike")
	}
	if got, want := ann.String(), "0 +M (((t1 +M (t0 *M p)) - p) *M pp)"; got != want {
		t.Errorf("annotation = %q, want %q", got, want)
	}
}

func TestSQLAndDatalogAgree(t *testing.T) {
	sqlTxns, err := parser.ParseSQLLog(schema(), `
BEGIN p;
UPDATE Products SET Category = 'Bicycles' WHERE Product = 'Kids mnt bike';
COMMIT;`)
	if err != nil {
		t.Fatal(err)
	}
	dlTxns, err := parser.ParseDatalogLog(schema(), `ProductsM,p("Kids mnt bike", a, b -> "Kids mnt bike", "Bicycles", b):-`)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := initialDB(t), initialDB(t)
	if err := d1.ApplyAll(sqlTxns); err != nil {
		t.Fatal(err)
	}
	if err := d2.ApplyAll(dlTxns); err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2) {
		t.Errorf("SQL and datalog forms diverge:\n%s", d1.Diff(d2))
	}
}
