package parser

import (
	"fmt"
	"strings"

	"hyperprov/internal/db"
)

// ParseSQLStatement parses one statement of the hyperplane SQL fragment
// against the schema:
//
//	INSERT INTO Rel VALUES (v1, …, vn)
//	DELETE FROM Rel [WHERE attr op const AND …]
//	UPDATE Rel SET attr = const, … [WHERE attr op const AND …]
//
// with op ∈ {=, <>, !=}. A missing WHERE clause selects every tuple.
func ParseSQLStatement(s *db.Schema, stmt string) (db.Update, error) {
	l, err := newLexer(stmt)
	if err != nil {
		return db.Update{}, err
	}
	u, err := parseSQLStatement(s, l)
	if err != nil {
		return db.Update{}, err
	}
	l.acceptPunct(";")
	if l.peek().kind != tokEOF {
		return db.Update{}, fmt.Errorf("parser: trailing input at offset %d", l.peek().pos)
	}
	return u, nil
}

func parseSQLStatement(s *db.Schema, l *lexer) (db.Update, error) {
	switch {
	case l.acceptKeyword("INSERT"):
		return parseInsert(s, l)
	case l.acceptKeyword("DELETE"):
		return parseDelete(s, l)
	case l.acceptKeyword("UPDATE"):
		return parseUpdate(s, l)
	default:
		return db.Update{}, fmt.Errorf("parser: expected INSERT, DELETE or UPDATE at offset %d, got %q", l.peek().pos, l.peek().text)
	}
}

func relation(s *db.Schema, l *lexer) (*db.RelationSchema, error) {
	name, err := l.expectIdent()
	if err != nil {
		return nil, err
	}
	rel := s.Relation(name)
	if rel == nil {
		return nil, fmt.Errorf("parser: unknown relation %s", name)
	}
	return rel, nil
}

func parseConst(l *lexer, kind db.Kind) (db.Value, error) {
	t := l.next()
	switch t.kind {
	case tokString:
		if kind != db.KindString {
			return db.Value{}, fmt.Errorf("parser: string literal %q where %v expected at offset %d", t.text, kind, t.pos)
		}
		return db.S(t.text), nil
	case tokNumber:
		return db.ParseValue(kind, t.text)
	default:
		return db.Value{}, fmt.Errorf("parser: expected constant at offset %d, got %q", t.pos, t.text)
	}
}

func parseInsert(s *db.Schema, l *lexer) (db.Update, error) {
	if !l.acceptKeyword("INTO") {
		return db.Update{}, fmt.Errorf("parser: expected INTO at offset %d", l.peek().pos)
	}
	rel, err := relation(s, l)
	if err != nil {
		return db.Update{}, err
	}
	if !l.acceptKeyword("VALUES") {
		return db.Update{}, fmt.Errorf("parser: expected VALUES at offset %d", l.peek().pos)
	}
	if err := l.expectPunct("("); err != nil {
		return db.Update{}, err
	}
	row := make(db.Tuple, 0, rel.Arity())
	for i := 0; i < rel.Arity(); i++ {
		if i > 0 {
			if err := l.expectPunct(","); err != nil {
				return db.Update{}, err
			}
		}
		v, err := parseConst(l, rel.Attrs[i].Kind)
		if err != nil {
			return db.Update{}, err
		}
		row = append(row, v)
	}
	if err := l.expectPunct(")"); err != nil {
		return db.Update{}, err
	}
	u := db.Insert(rel.Name, row)
	return u, u.Validate(s)
}

// parseWhere parses the conjunction of hyperplane predicates into a
// pattern over the relation. Equality predicates become constant terms;
// disequality predicates accumulate on variable terms.
func parseWhere(rel *db.RelationSchema, l *lexer) (db.Pattern, error) {
	type constraint struct {
		eq    *db.Value
		notEq []db.Value
	}
	cons := make([]constraint, rel.Arity())
	if l.acceptKeyword("WHERE") {
		for {
			attr, err := l.expectIdent()
			if err != nil {
				return nil, err
			}
			col := rel.AttrIndex(attr)
			if col < 0 {
				return nil, fmt.Errorf("parser: relation %s has no attribute %s", rel.Name, attr)
			}
			var neq bool
			switch {
			case l.acceptPunct("="):
			case l.acceptPunct("<>"), l.acceptPunct("!="):
				neq = true
			default:
				return nil, fmt.Errorf("parser: expected = or <> at offset %d (hyperplane predicates compare an attribute to a constant)", l.peek().pos)
			}
			v, err := parseConst(l, rel.Attrs[col].Kind)
			if err != nil {
				return nil, err
			}
			if neq {
				cons[col].notEq = append(cons[col].notEq, v)
			} else {
				if cons[col].eq != nil && *cons[col].eq != v {
					return nil, fmt.Errorf("parser: contradictory equalities on %s", attr)
				}
				cons[col].eq = &v
			}
			if !l.acceptKeyword("AND") {
				break
			}
		}
	}
	p := make(db.Pattern, rel.Arity())
	for i, c := range cons {
		switch {
		case c.eq != nil:
			p[i] = db.Const(*c.eq)
		case len(c.notEq) > 0:
			p[i] = db.VarNotEq(strings.ToLower(rel.Attrs[i].Name), c.notEq...)
		default:
			p[i] = db.AnyVar(strings.ToLower(rel.Attrs[i].Name))
		}
	}
	return p, nil
}

func parseDelete(s *db.Schema, l *lexer) (db.Update, error) {
	if !l.acceptKeyword("FROM") {
		return db.Update{}, fmt.Errorf("parser: expected FROM at offset %d", l.peek().pos)
	}
	rel, err := relation(s, l)
	if err != nil {
		return db.Update{}, err
	}
	sel, err := parseWhere(rel, l)
	if err != nil {
		return db.Update{}, err
	}
	u := db.Delete(rel.Name, sel)
	return u, u.Validate(s)
}

func parseUpdate(s *db.Schema, l *lexer) (db.Update, error) {
	rel, err := relation(s, l)
	if err != nil {
		return db.Update{}, err
	}
	if !l.acceptKeyword("SET") {
		return db.Update{}, fmt.Errorf("parser: expected SET at offset %d", l.peek().pos)
	}
	set := make([]db.SetClause, rel.Arity())
	for {
		attr, err := l.expectIdent()
		if err != nil {
			return db.Update{}, err
		}
		col := rel.AttrIndex(attr)
		if col < 0 {
			return db.Update{}, fmt.Errorf("parser: relation %s has no attribute %s", rel.Name, attr)
		}
		if err := l.expectPunct("="); err != nil {
			return db.Update{}, err
		}
		v, err := parseConst(l, rel.Attrs[col].Kind)
		if err != nil {
			return db.Update{}, err
		}
		set[col] = db.SetTo(v)
		if !l.acceptPunct(",") {
			break
		}
	}
	sel, err := parseWhere(rel, l)
	if err != nil {
		return db.Update{}, err
	}
	u := db.Modify(rel.Name, sel, set)
	return u, u.Validate(s)
}

// ParseSQLLog parses a transaction log: statements terminated by ';',
// optionally grouped as
//
//	BEGIN label;
//	  …statements…
//	COMMIT;
//
// Statements outside BEGIN/COMMIT become single-query transactions
// labeled q0, q1, …. SQL comments (--) are ignored.
func ParseSQLLog(s *db.Schema, src string) ([]db.Transaction, error) {
	l, err := newLexer(src)
	if err != nil {
		return nil, err
	}
	var txns []db.Transaction
	auto := 0
	for l.peek().kind != tokEOF {
		if l.acceptKeyword("BEGIN") {
			label, err := l.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := l.expectPunct(";"); err != nil {
				return nil, err
			}
			txn := db.Transaction{Label: label}
			for !l.acceptKeyword("COMMIT") {
				if l.peek().kind == tokEOF {
					return nil, fmt.Errorf("parser: transaction %s missing COMMIT", label)
				}
				u, err := parseSQLStatement(s, l)
				if err != nil {
					return nil, err
				}
				if err := l.expectPunct(";"); err != nil {
					return nil, err
				}
				txn.Updates = append(txn.Updates, u)
			}
			if err := l.expectPunct(";"); err != nil {
				return nil, err
			}
			txns = append(txns, txn)
			continue
		}
		u, err := parseSQLStatement(s, l)
		if err != nil {
			return nil, err
		}
		if err := l.expectPunct(";"); err != nil {
			return nil, err
		}
		txns = append(txns, db.Transaction{Label: fmt.Sprintf("q%d", auto), Updates: []db.Update{u}})
		auto++
	}
	return txns, nil
}
