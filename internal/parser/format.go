package parser

import (
	"fmt"
	"strings"

	"hyperprov/internal/db"
)

// quoteSQL renders a value as a SQL literal.
func quoteSQL(v db.Value) string {
	if v.Kind() == db.KindString {
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	}
	return v.String()
}

// FormatSQL renders an update in the hyperplane SQL fragment accepted by
// ParseSQLStatement (without the trailing ';').
func FormatSQL(s *db.Schema, u db.Update) (string, error) {
	rel := s.Relation(u.Rel)
	if rel == nil {
		return "", fmt.Errorf("parser: unknown relation %s", u.Rel)
	}
	var b strings.Builder
	where := func(sel db.Pattern) {
		first := true
		emit := func(clause string) {
			if first {
				b.WriteString(" WHERE ")
				first = false
			} else {
				b.WriteString(" AND ")
			}
			b.WriteString(clause)
		}
		for i, term := range sel {
			if term.IsConst() {
				emit(fmt.Sprintf("%s = %s", rel.Attrs[i].Name, quoteSQL(term.Value())))
				continue
			}
			for _, ne := range term.NotEq() {
				emit(fmt.Sprintf("%s <> %s", rel.Attrs[i].Name, quoteSQL(ne)))
			}
		}
	}
	switch u.Kind {
	case db.OpInsert:
		fmt.Fprintf(&b, "INSERT INTO %s VALUES (", rel.Name)
		for i, v := range u.Row {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteSQL(v))
		}
		b.WriteString(")")
	case db.OpDelete:
		fmt.Fprintf(&b, "DELETE FROM %s", rel.Name)
		where(u.Sel)
	case db.OpModify:
		fmt.Fprintf(&b, "UPDATE %s SET ", rel.Name)
		first := true
		for i, c := range u.Set {
			if !c.Set {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "%s = %s", rel.Attrs[i].Name, quoteSQL(c.Val))
		}
		if first {
			return "", fmt.Errorf("parser: modification on %s sets no attribute", rel.Name)
		}
		where(u.Sel)
	default:
		return "", fmt.Errorf("parser: unknown update kind %v", u.Kind)
	}
	return b.String(), nil
}

// FormatSQLLog renders a transaction sequence in the BEGIN/COMMIT log
// format accepted by ParseSQLLog.
func FormatSQLLog(s *db.Schema, txns []db.Transaction) (string, error) {
	var b strings.Builder
	for i := range txns {
		fmt.Fprintf(&b, "BEGIN %s;\n", txns[i].Label)
		for _, u := range txns[i].Updates {
			stmt, err := FormatSQL(s, u)
			if err != nil {
				return "", err
			}
			b.WriteString(stmt)
			b.WriteString(";\n")
		}
		b.WriteString("COMMIT;\n")
	}
	return b.String(), nil
}
