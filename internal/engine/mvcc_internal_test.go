package engine

import (
	"fmt"
	"testing"

	"hyperprov/internal/db"
)

func seqTestSchema(t *testing.T) *db.Schema {
	t.Helper()
	return db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "K", Kind: db.KindInt},
		db.Attribute{Name: "V", Kind: db.KindInt},
	))
}

func collectSeqs(t *testing.T, e *Engine) map[uint64]string {
	t.Helper()
	seqs := make(map[uint64]string)
	for _, rel := range e.schema.Names() {
		for _, r := range e.tables[rel].list.snapshot() {
			if prev, dup := seqs[r.seq]; dup {
				t.Fatalf("rows %s and %s/%s share seq %#x", prev, rel, r.tuple, r.seq)
			}
			seqs[r.seq] = rel + "/" + r.tuple.String()
		}
	}
	return seqs
}

// TestRowSeqUniqueness is the satellite regression for the
// version-ordering bug: the plain engine applied without a coordinator
// (direct ApplyTransaction calls, no ApplyAll) used to leave every row
// at sequence 0, which collapses MVCC validity intervals. Every live
// row — across initial load and any mix of apply paths — must carry a
// distinct sequence number, on both implementations.
func TestRowSeqUniqueness(t *testing.T) {
	schema := seqTestSchema(t)
	initial := db.NewDatabase(schema)
	for i := int64(0); i < 4; i++ {
		if err := initial.InsertTuple("R", db.Tuple{db.I(i), db.I(0)}); err != nil {
			t.Fatal(err)
		}
	}
	txn := func(i int64) db.Transaction {
		return db.Transaction{
			Label: fmt.Sprintf("t%d", i),
			Updates: []db.Update{
				db.Insert("R", db.Tuple{db.I(100 + i), db.I(1)}),
				db.Insert("R", db.Tuple{db.I(200 + i), db.I(2)}),
			},
		}
	}

	t.Run("plain_uncoordinated", func(t *testing.T) {
		e := New(ModeNormalForm, initial)
		for i := int64(0); i < 6; i++ {
			tx := txn(i)
			if err := e.ApplyTransaction(&tx); err != nil {
				t.Fatal(err)
			}
		}
		seqs := collectSeqs(t, e)
		if want := 4 + 2*6; len(seqs) != want {
			t.Fatalf("got %d distinct seqs, want %d rows", len(seqs), want)
		}
		// The initial load is epoch 0; every transaction's rows must sit
		// in a later epoch, not at the zero value.
		later := 0
		for s := range seqs {
			if SeqEpoch(s) > 0 {
				later++
			}
		}
		if want := 2 * 6; later != want {
			t.Fatalf("%d rows in post-initial epochs, want %d (uncoordinated applies left rows at epoch 0)", later, want)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		se := NewSharded(ModeNormalForm, initial, WithShards(4))
		for i := int64(0); i < 6; i++ {
			tx := txn(i)
			if err := se.ApplyTransaction(&tx); err != nil {
				t.Fatal(err)
			}
		}
		seqs := make(map[uint64]string)
		for _, sh := range se.shards {
			for s, who := range collectSeqs(t, sh) {
				if prev, dup := seqs[s]; dup {
					t.Fatalf("rows %s and %s on different shards share seq %#x", prev, who, s)
				}
				seqs[s] = who
			}
		}
		if want := 4 + 2*6; len(seqs) != want {
			t.Fatalf("got %d distinct seqs, want %d rows", len(seqs), want)
		}
	})
}

// TestScanAtCompactedIndexFallsBack pins the gating rule that a
// compaction sweep (which drops posting-list entries and with them the
// history they proved) disqualifies an index from historical scans:
// scanAt must take the full-scan path even for horizons the index's
// since watermark covers.
func TestScanAtCompactedIndexFallsBack(t *testing.T) {
	schema := seqTestSchema(t)
	e := New(ModeNormalForm, db.NewDatabase(schema))
	tx := db.Transaction{Label: "t0", Updates: []db.Update{
		db.Insert("R", db.Tuple{db.I(1), db.I(7)}),
		db.Insert("R", db.Tuple{db.I(2), db.I(7)}),
	}}
	if err := e.ApplyTransaction(&tx); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildIndex("R", "V"); err != nil {
		t.Fatal(err)
	}
	sel := db.Pattern{db.AnyVar("x"), db.Const(db.I(7))}
	h := e.Horizon()

	before := e.PlannerStats()
	got, err := e.selectAt("R", sel, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("indexed select: %d rows, want 2", len(got))
	}
	if after := e.PlannerStats(); after.IndexScans != before.IndexScans+1 {
		t.Fatalf("intact index at a covered horizon did not serve the scan: %+v -> %+v", before, after)
	}

	// Simulate a sweep having dropped entries: history above since is
	// gone, so even covered horizons must fall back.
	e.idx.tables["R"].cols[1].compacted = true
	before = e.PlannerStats()
	got, err = e.selectAt("R", sel, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("fallback select: %d rows, want 2", len(got))
	}
	if after := e.PlannerStats(); after.FullScans != before.FullScans+1 {
		t.Fatalf("compacted index was still used for a historical scan: %+v -> %+v", before, after)
	}
}
