package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// productsDB builds the paper's Figure 1a instance with the annotations
// p1…p4 used throughout the running example.
func productsDB(t *testing.T) *db.Database {
	t.Helper()
	schema := db.MustSchema(db.MustRelationSchema("Products",
		db.Attribute{Name: "Product", Kind: db.KindString},
		db.Attribute{Name: "Category", Kind: db.KindString},
		db.Attribute{Name: "Price", Kind: db.KindInt},
	))
	d := db.NewDatabase(schema)
	for _, r := range []db.Tuple{
		{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)},
		{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
		{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)},
		{db.S("Children sneakers"), db.S("Fashion"), db.I(40)},
	} {
		if err := d.InsertTuple("Products", r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// figure1Annots names the initial tuples p1…p4 as in Figure 1a.
func figure1Annots() func(rel string, t db.Tuple) core.Annot {
	return func(rel string, t db.Tuple) core.Annot {
		switch {
		case t[0] == db.S("Kids mnt bike") && t[1] == db.S("Sport"):
			return core.TupleAnnot("p1")
		case t[0] == db.S("Tennis Racket"):
			return core.TupleAnnot("p2")
		case t[0] == db.S("Kids mnt bike") && t[1] == db.S("Kids"):
			return core.TupleAnnot("p3")
		default:
			return core.TupleAnnot("p4")
		}
	}
}

// transactionT1 is Figure 2a: Kids→Sport then Sport→Bicycles for the
// Kids mnt bike.
func transactionT1() db.Transaction {
	bike := func(cat string) db.Pattern {
		return db.Pattern{db.Const(db.S("Kids mnt bike")), db.Const(db.S(cat)), db.AnyVar("c")}
	}
	return db.Transaction{Label: "p", Updates: []db.Update{
		db.Modify("Products", bike("Kids"), []db.SetClause{db.Keep(), db.SetTo(db.S("Sport")), db.Keep()}),
		db.Modify("Products", bike("Sport"), []db.SetClause{db.Keep(), db.SetTo(db.S("Bicycles")), db.Keep()}),
	}}
}

// transactionT1Prime is Figure 2b: both bike tuples straight to
// Bicycles.
func transactionT1Prime() db.Transaction {
	bike := func(cat string) db.Pattern {
		return db.Pattern{db.Const(db.S("Kids mnt bike")), db.Const(db.S(cat)), db.AnyVar("c")}
	}
	return db.Transaction{Label: "p", Updates: []db.Update{
		db.Modify("Products", bike("Kids"), []db.SetClause{db.Keep(), db.SetTo(db.S("Bicycles")), db.Keep()}),
		db.Modify("Products", bike("Sport"), []db.SetClause{db.Keep(), db.SetTo(db.S("Bicycles")), db.Keep()}),
	}}
}

// transactionT2 is Figure 2c: all Sport products priced at 50.
func transactionT2() db.Transaction {
	return db.Transaction{Label: "p'", Updates: []db.Update{
		db.Modify("Products",
			db.Pattern{db.AnyVar("a"), db.Const(db.S("Sport")), db.AnyVar("c")},
			[]db.SetClause{db.Keep(), db.Keep(), db.SetTo(db.I(50))}),
	}}
}

func annotString(t *testing.T, e *engine.Engine, rel string, tuple db.Tuple) string {
	t.Helper()
	ann := e.Annotation(rel, tuple)
	if ann == nil {
		t.Fatalf("no annotation for %v", tuple)
	}
	return ann.String()
}

// TestExample32Naive replays Example 3.2 literally on the naive engine.
func TestExample32Naive(t *testing.T) {
	e := engine.New(engine.ModeNaive, productsDB(t), engine.WithInitialAnnotations(figure1Annots()))
	t1 := transactionT1()
	if err := e.ApplyAll(context.Background(), []db.Transaction{t1}); err != nil {
		t.Fatal(err)
	}
	kids := db.Tuple{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)}
	if got, want := annotString(t, e, "Products", kids), "p3 - p"; got != want {
		t.Errorf("Kids tuple: %q, want %q", got, want)
	}
	sport := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)}
	if got, want := annotString(t, e, "Products", sport), "(p1 +M (p3 *M p)) - p"; got != want {
		t.Errorf("Sport tuple: %q, want %q", got, want)
	}
	bic := db.Tuple{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)}
	if got, want := annotString(t, e, "Products", bic), "0 +M ((p1 +M (p3 *M p)) *M p)"; got != want {
		t.Errorf("Bicycles tuple: %q, want %q", got, want)
	}
}

// TestExample57NormalForm replays Example 5.7 on the normal-form engine.
func TestExample57NormalForm(t *testing.T) {
	e := engine.New(engine.ModeNormalForm, productsDB(t), engine.WithInitialAnnotations(figure1Annots()))
	if err := e.ApplyAll(context.Background(), []db.Transaction{transactionT1()}); err != nil {
		t.Fatal(err)
	}
	sport := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)}
	if got, want := annotString(t, e, "Products", sport), "p1 - p"; got != want {
		t.Errorf("Sport tuple: %q, want %q (Rule 2)", got, want)
	}
	bic := db.Tuple{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)}
	// Rule 7 gives 0 +M ((p1 + p3) ·M p); the zero post-processing of
	// Example 5.7 then yields (p1 + p3) ·M p.
	if got, want := annotString(t, e, "Products", bic), "0 +M ((p1 + p3) *M p)"; got != want {
		t.Errorf("Bicycles tuple: %q, want %q (Rule 7)", got, want)
	}
	if got := core.Minimize(e.Annotation("Products", bic)); got.String() != "(p1 + p3) *M p" {
		t.Errorf("minimized Bicycles tuple: %q", got)
	}
}

// TestFigure4Sequence replays the two-transaction sequence of Example
// 3.8 and checks the Figure 4 annotations on the naive engine.
func TestFigure4Sequence(t *testing.T) {
	e := engine.New(engine.ModeNaive, productsDB(t), engine.WithInitialAnnotations(figure1Annots()))
	if err := e.ApplyAll(context.Background(), []db.Transaction{transactionT1(), transactionT2()}); err != nil {
		t.Fatal(err)
	}
	racket := db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(50)}
	if got, want := annotString(t, e, "Products", racket), "0 +M (p2 *M p')"; got != want {
		t.Errorf("Tennis Racket: %q, want %q", got, want)
	}
	bike := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(50)}
	if got, want := annotString(t, e, "Products", bike), "0 +M (((p1 +M (p3 *M p)) - p) *M p')"; got != want {
		t.Errorf("Sport bike at 50: %q, want %q", got, want)
	}
}

// TestProposition35OnExample: the set-equivalent transactions T1 and T1'
// (Example 3.7) yield UP[X]-equivalent annotated databases, on both
// engines, decided via the canonical form.
func TestProposition35OnExample(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		e1 := engine.New(mode, productsDB(t), engine.WithInitialAnnotations(figure1Annots()))
		e2 := engine.New(mode, productsDB(t), engine.WithInitialAnnotations(figure1Annots()))
		if err := e1.ApplyAll(context.Background(), []db.Transaction{transactionT1()}); err != nil {
			t.Fatal(err)
		}
		if err := e2.ApplyAll(context.Background(), []db.Transaction{transactionT1Prime()}); err != nil {
			t.Fatal(err)
		}
		for _, tuple := range []db.Tuple{
			{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)},
			{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)},
			{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)},
			{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
		} {
			a1 := core.Minimize(core.Normalize(e1.Annotation("Products", tuple)))
			a2 := core.Minimize(core.Normalize(e2.Annotation("Products", tuple)))
			if !a1.Equal(a2) {
				t.Errorf("%v (%v): T1 gives %v, T1' gives %v", mode, tuple, a1, a2)
			}
		}
	}
}

func TestLiveDBMatchesPlainOnExample(t *testing.T) {
	plain := productsDB(t)
	txns := []db.Transaction{transactionT1(), transactionT2()}
	if err := plain.ApplyAll(txns); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		e := engine.New(mode, productsDB(t))
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		live := engine.LiveDB(e)
		if !live.Equal(plain) {
			t.Errorf("%v: live database diverges from plain engine:\n%s", mode, live.Diff(plain))
		}
		if e.SupportSize() < plain.NumTuples() {
			t.Errorf("%v: support %d smaller than plain %d", mode, e.SupportSize(), plain.NumTuples())
		}
		if e.NumRows() <= plain.NumTuples() {
			t.Errorf("%v: tombstones should make NumRows %d exceed plain %d", mode, e.NumRows(), plain.NumTuples())
		}
	}
}

func TestApplyErrors(t *testing.T) {
	e := engine.New(engine.ModeNaive, productsDB(t))
	if err := e.Apply(db.Insert("Products", db.Tuple{db.S("x"), db.S("y"), db.I(1)})); err == nil {
		t.Error("Apply outside a transaction must fail")
	}
	e.Begin("p")
	if err := e.Apply(db.Insert("Nope", db.Tuple{db.S("x")})); err == nil {
		t.Error("unknown relation must fail")
	}
	e.End()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("End without Begin must panic")
			}
		}()
		e.End()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested Begin must panic")
			}
		}()
		e.Begin("a")
		e.Begin("b")
	}()
}

// --- randomized oracle tests -------------------------------------------

var (
	testCats = []string{"a", "b", "c"}
)

func randSchema() *db.Schema {
	return db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "id", Kind: db.KindInt},
		db.Attribute{Name: "cat", Kind: db.KindString},
		db.Attribute{Name: "val", Kind: db.KindInt},
	))
}

func randTuple(r *rand.Rand) db.Tuple {
	return db.Tuple{db.I(int64(r.Intn(6))), db.S(testCats[r.Intn(len(testCats))]), db.I(int64(r.Intn(4)))}
}

func randDB(r *rand.Rand, n int) *db.Database {
	d := db.NewDatabase(randSchema())
	for i := 0; i < n; i++ {
		_ = d.InsertTuple("R", randTuple(r))
	}
	return d
}

func randTerm(r *rand.Rand, col int) db.Term {
	switch r.Intn(3) {
	case 0:
		switch col {
		case 0:
			return db.Const(db.I(int64(r.Intn(6))))
		case 1:
			return db.Const(db.S(testCats[r.Intn(len(testCats))]))
		default:
			return db.Const(db.I(int64(r.Intn(4))))
		}
	case 1:
		switch col {
		case 0:
			return db.VarNotEq(fmt.Sprintf("x%d", col), db.I(int64(r.Intn(6))))
		case 1:
			return db.VarNotEq(fmt.Sprintf("x%d", col), db.S(testCats[r.Intn(len(testCats))]))
		default:
			return db.VarNotEq(fmt.Sprintf("x%d", col), db.I(int64(r.Intn(4))))
		}
	default:
		return db.AnyVar(fmt.Sprintf("x%d", col))
	}
}

func randPattern(r *rand.Rand) db.Pattern {
	return db.Pattern{randTerm(r, 0), randTerm(r, 1), randTerm(r, 2)}
}

func randUpdate(r *rand.Rand) db.Update {
	switch r.Intn(3) {
	case 0:
		return db.Insert("R", randTuple(r))
	case 1:
		return db.Delete("R", randPattern(r))
	default:
		set := make([]db.SetClause, 3)
		changed := false
		for col := range set {
			if r.Intn(2) == 0 {
				changed = true
				switch col {
				case 0:
					set[col] = db.SetTo(db.I(int64(r.Intn(6))))
				case 1:
					set[col] = db.SetTo(db.S(testCats[r.Intn(len(testCats))]))
				default:
					set[col] = db.SetTo(db.I(int64(r.Intn(4))))
				}
			}
		}
		if !changed {
			set[2] = db.SetTo(db.I(int64(r.Intn(4))))
		}
		return db.Modify("R", randPattern(r), set)
	}
}

func randTxns(r *rand.Rand, nTxn, nOps int) []db.Transaction {
	txns := make([]db.Transaction, nTxn)
	for i := range txns {
		txns[i].Label = fmt.Sprintf("q%d", i)
		for j := 0; j < nOps; j++ {
			txns[i].Updates = append(txns[i].Updates, randUpdate(r))
		}
	}
	return txns
}

// TestOracleLiveDB is the end-to-end ground-truth test: for random
// databases and random hyperplane transactions, the all-true valuation
// of both provenance engines reproduces exactly the plain engine's set
// semantics.
func TestOracleLiveDB(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for trial := 0; trial < 60; trial++ {
		initial := randDB(r, 2+r.Intn(10))
		txns := randTxns(r, 1+r.Intn(3), 1+r.Intn(5))
		plain := initial.Clone()
		if err := plain.ApplyAll(txns); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			e := engine.New(mode, initial)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			live := engine.LiveDB(e)
			if !live.Equal(plain) {
				t.Fatalf("trial %d, %v: live DB diverges:\n%sTransactions: %v", trial, mode, live.Diff(plain), txns)
			}
		}
	}
}

// TestOracleDeletionPropagation: assigning false to one input tuple's
// annotation must equal re-running the transactions on the database
// without that tuple (Section 4.1), for both engines.
func TestOracleDeletionPropagation(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 40; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		txns := randTxns(r, 1+r.Intn(2), 1+r.Intn(5))

		// Pick a victim tuple and name annotations deterministically.
		victims := initial.Instance("R").Tuples()
		victim := victims[r.Intn(len(victims))]
		annotOf := func(rel string, tu db.Tuple) core.Annot {
			return core.TupleAnnot("t_" + tu.Key())
		}

		smaller := db.NewDatabase(initial.Schema())
		for _, tu := range victims {
			if !tu.Equal(victim) {
				_ = smaller.InsertTuple("R", tu)
			}
		}
		want := smaller
		if err := want.ApplyAll(txns); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			e := engine.New(mode, initial, engine.WithInitialAnnotations(annotOf))
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			got := engine.DeletionPropagation(e, annotOf("R", victim))
			if !got.Equal(want) {
				t.Fatalf("trial %d, %v: deletion propagation diverges for victim %v:\n%sTransactions: %v",
					trial, mode, victim, got.Diff(want), txns)
			}
		}
	}
}

// TestOracleAbortTransaction: assigning false to a transaction label
// must equal re-running the sequence without that transaction.
func TestOracleAbortTransaction(t *testing.T) {
	r := rand.New(rand.NewSource(307))
	for trial := 0; trial < 40; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		txns := randTxns(r, 2+r.Intn(2), 1+r.Intn(4))
		aborted := r.Intn(len(txns))

		want := initial.Clone()
		for i := range txns {
			if i == aborted {
				continue
			}
			if err := want.ApplyTransaction(&txns[i]); err != nil {
				t.Fatal(err)
			}
		}
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			e := engine.New(mode, initial)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			got := engine.AbortTransactions(e, txns[aborted].Label)
			if !got.Equal(want) {
				t.Fatalf("trial %d, %v: abort of %s diverges:\n%sTransactions: %v",
					trial, mode, txns[aborted].Label, got.Diff(want), txns)
			}
		}
	}
}

// TestNaiveAndNormalFormEquivalent: the two engines produce
// UP[X]-equivalent annotations, decided canonically.
func TestNaiveAndNormalFormEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(311))
	for trial := 0; trial < 40; trial++ {
		initial := randDB(r, 2+r.Intn(8))
		txns := randTxns(r, 1+r.Intn(3), 1+r.Intn(4))
		annotOf := func(rel string, tu db.Tuple) core.Annot {
			return core.TupleAnnot("t_" + tu.Key())
		}
		naive := engine.New(engine.ModeNaive, initial, engine.WithInitialAnnotations(annotOf))
		nf := engine.New(engine.ModeNormalForm, initial, engine.WithInitialAnnotations(annotOf))
		if err := naive.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		if err := nf.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		naive.EachRow("R", func(tu db.Tuple, ann *core.Expr) {
			nfAnn := nf.Annotation("R", tu)
			if nfAnn == nil {
				nfAnn = core.Zero()
			}
			c1 := core.Minimize(core.Normalize(ann))
			c2 := core.Minimize(core.Normalize(nfAnn))
			if !c1.Equal(c2) {
				t.Errorf("trial %d, tuple %v:\n naive = %v\n nf    = %v", trial, tu, c1, c2)
			}
		})
	}
}

// TestIndexAblationSameResults: the hash-index access path must not
// change any annotation.
func TestIndexAblationSameResults(t *testing.T) {
	r := rand.New(rand.NewSource(313))
	for trial := 0; trial < 20; trial++ {
		initial := randDB(r, 5+r.Intn(10))
		txns := randTxns(r, 2, 4)
		plainEng := engine.New(engine.ModeNormalForm, initial)
		indexed := engine.New(engine.ModeNormalForm, initial)
		if err := indexed.BuildIndex("R", "id"); err != nil {
			t.Fatal(err)
		}
		if err := plainEng.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		if err := indexed.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		if plainEng.ProvSize() != indexed.ProvSize() || plainEng.NumRows() != indexed.NumRows() {
			t.Fatalf("trial %d: index changed provenance (%d vs %d nodes, %d vs %d rows)",
				trial, plainEng.ProvSize(), indexed.ProvSize(), plainEng.NumRows(), indexed.NumRows())
		}
		plainEng.EachRow("R", func(tu db.Tuple, ann *core.Expr) {
			other := indexed.Annotation("R", tu)
			if other == nil || !ann.Equal(other) {
				t.Errorf("trial %d: annotation of %v differs under index", trial, tu)
			}
		})
	}
}

func TestBuildIndexErrors(t *testing.T) {
	e := engine.New(engine.ModeNaive, productsDB(t))
	if err := e.BuildIndex("Nope", "x"); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := e.BuildIndex("Products", "Nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := e.BuildIndex("Products", "Category"); err != nil {
		t.Errorf("valid index rejected: %v", err)
	}
}

// TestNormalFormProvenanceSmaller: on merge-heavy workloads the normal
// form representation is strictly smaller than the naive one.
func TestNormalFormProvenanceSmaller(t *testing.T) {
	r := rand.New(rand.NewSource(317))
	initial := randDB(r, 12)
	txns := randTxns(r, 4, 6)
	naive := engine.New(engine.ModeNaive, initial)
	nf := engine.New(engine.ModeNormalForm, initial)
	if err := naive.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	if err := nf.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	if nf.ProvSize() > naive.ProvSize() {
		t.Errorf("normal form (%d) larger than naive (%d)", nf.ProvSize(), naive.ProvSize())
	}
}

// TestMinimizeAllPreservesLiveDB: the Proposition 5.5 post-processing
// must not change any tuple's membership semantics.
func TestMinimizeAllPreservesLiveDB(t *testing.T) {
	r := rand.New(rand.NewSource(319))
	initial := randDB(r, 8)
	txns := randTxns(r, 3, 4)
	e := engine.New(engine.ModeNormalForm, initial)
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	before := engine.LiveDB(e)
	sizeBefore := e.ProvSize()
	sizeAfter, err := e.MinimizeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter > sizeBefore {
		t.Errorf("MinimizeAll grew provenance: %d -> %d", sizeBefore, sizeAfter)
	}
	after := engine.LiveDB(e)
	if !after.Equal(before) {
		t.Errorf("MinimizeAll changed the live database:\n%s", after.Diff(before))
	}
}

// TestCopyOnWriteAblation: disabling deep copies must not change
// annotations (structurally), only sharing.
func TestCopyOnWriteAblation(t *testing.T) {
	r := rand.New(rand.NewSource(323))
	initial := randDB(r, 8)
	txns := randTxns(r, 2, 5)
	cow := engine.New(engine.ModeNaive, initial)
	shared := engine.New(engine.ModeNaive, initial, engine.WithCopyOnWrite(false))
	if err := cow.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	if err := shared.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	if cow.ProvSize() != shared.ProvSize() {
		t.Errorf("tree sizes differ: cow=%d shared=%d", cow.ProvSize(), shared.ProvSize())
	}
	cow.EachRow("R", func(tu db.Tuple, ann *core.Expr) {
		other := shared.Annotation("R", tu)
		if other == nil || !ann.Equal(other) {
			t.Errorf("annotation of %v differs without copy-on-write", tu)
		}
	})
}

// TestEagerZeroAxiomsPreservesSemantics: the naive engine's optional
// zero-axiom application shrinks expressions without changing them
// semantically.
func TestEagerZeroAxiomsPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(329))
	initial := randDB(r, 8)
	txns := randTxns(r, 2, 5)
	raw := engine.New(engine.ModeNaive, initial)
	eager := engine.New(engine.ModeNaive, initial, engine.WithEagerZeroAxioms(true))
	if err := raw.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	if err := eager.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	if eager.ProvSize() > raw.ProvSize() {
		t.Errorf("eager zero axioms grew provenance: %d > %d", eager.ProvSize(), raw.ProvSize())
	}
	if !engine.LiveDB(eager).Equal(engine.LiveDB(raw)) {
		t.Error("eager zero axioms changed the live database")
	}
}
