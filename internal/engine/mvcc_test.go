package engine_test

// MVCC time travel is tested differentially against replay: the view
// pinned at epoch k of one engine that applied the whole log must be
// indistinguishable — annotations, normal forms, row streams, size
// measures, and snapshot bytes — from a fresh engine that stopped
// after the first k transactions. The check runs across both engine
// implementations and both provenance modes, so the lock-free version
// chains are held to exactly the behavior of the old locked reads.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
	"hyperprov/internal/workload"
)

// mvccWorkload is one seeded random log shared by the MVCC tests:
// small enough that per-epoch replay stays fast, rich enough to
// exercise inserts, deletes and merges.
func mvccWorkload(t *testing.T) (*db.Database, []db.Transaction) {
	t.Helper()
	initial, txns, err := workload.Generate(workload.Config{
		Tuples: 40, Pool: 10, Group: 3, Updates: 24,
		QueriesPerTxn: 4, MergeRatio: 0.4, Seed: 11,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return initial, txns
}

func snapshotBytes(t *testing.T, src provstore.Source) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, src); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// readerRows streams a reader's rows in deterministic order.
func readerRows(e engine.Reader) []string {
	var out []string
	e.Rows(func(rel string, tp db.Tuple, ann *core.Expr) {
		out = append(out, rel+"\x00"+tp.Key()+"\x00"+ann.String())
	})
	return out
}

// TestMVCCTimeTravelDifferential applies a log one transaction per
// epoch and asserts that At(epoch k) of the full engine matches a
// fresh replay of the first k transactions at every k, for both
// implementations and both modes.
func TestMVCCTimeTravelDifferential(t *testing.T) {
	initial, txns := mvccWorkload(t)
	for _, shards := range []int{1, 8} {
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			t.Run(fmt.Sprintf("shards%d_%s", shards, mode), func(t *testing.T) {
				full := engine.Open(mode, initial, engine.WithShards(shards))
				for _, txn := range txns {
					txn := txn
					if err := full.ApplyTransaction(&txn); err != nil {
						t.Fatalf("apply: %v", err)
					}
				}
				if got, want := engine.SeqEpoch(full.Horizon()), uint64(len(txns)); got != want {
					t.Fatalf("horizon epoch = %d, want %d (one epoch per transaction)", got, want)
				}
				for k := 0; k <= len(txns); k++ {
					oracle := engine.Open(mode, initial, engine.WithShards(shards))
					for i := 0; i < k; i++ {
						txn := txns[i]
						if err := oracle.ApplyTransaction(&txn); err != nil {
							t.Fatalf("oracle apply: %v", err)
						}
					}
					view := full.At(engine.EpochSeq(uint64(k)))
					if got, want := view.AsOf(), engine.EpochSeq(uint64(k)); got != want {
						t.Fatalf("epoch %d: AsOf = %#x, want %#x", k, got, want)
					}
					vRows, oRows := readerRows(view), readerRows(oracle)
					if len(vRows) != len(oRows) {
						t.Fatalf("epoch %d: view has %d rows, replay %d", k, len(vRows), len(oRows))
					}
					for i := range vRows {
						if vRows[i] != oRows[i] {
							t.Fatalf("epoch %d row %d:\nview:   %s\nreplay: %s", k, i, vRows[i], oRows[i])
						}
					}
					// NF agreement on every replayed row (nil on both sides
					// in naive mode).
					oracle.Rows(func(rel string, tp db.Tuple, _ *core.Expr) {
						vn, on := view.NF(rel, tp), oracle.NF(rel, tp)
						switch {
						case (vn == nil) != (on == nil):
							t.Fatalf("epoch %d: NF presence differs for %s %s", k, rel, tp)
						case vn != nil && vn.ToExpr() != on.ToExpr():
							t.Fatalf("epoch %d: NF differs for %s %s", k, rel, tp)
						}
					})
					if got, want := view.NumRows(), oracle.NumRows(); got != want {
						t.Fatalf("epoch %d: NumRows = %d, want %d", k, got, want)
					}
					if got, want := view.SupportSize(), oracle.SupportSize(); got != want {
						t.Fatalf("epoch %d: SupportSize = %d, want %d", k, got, want)
					}
					if got, want := view.ProvSize(), oracle.ProvSize(); got != want {
						t.Fatalf("epoch %d: ProvSize = %d, want %d", k, got, want)
					}
					if got, want := view.ProvDAGSize(), oracle.ProvDAGSize(); got != want {
						t.Fatalf("epoch %d: ProvDAGSize = %d, want %d", k, got, want)
					}
					if !bytes.Equal(snapshotBytes(t, view), snapshotBytes(t, oracle)) {
						t.Fatalf("epoch %d: snapshot bytes differ from replay", k)
					}
				}
			})
		}
	}
}

// TestMVCCViewStability pins views and asserts their bytes never move
// while the engine keeps applying transactions after them.
func TestMVCCViewStability(t *testing.T) {
	initial, txns := mvccWorkload(t)
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			e := engine.Open(engine.ModeNormalForm, initial, engine.WithShards(shards))
			half := len(txns) / 2
			if err := e.ApplyAll(context.Background(), txns[:half]); err != nil {
				t.Fatalf("apply: %v", err)
			}
			view := e.At(e.Horizon())
			before := snapshotBytes(t, view)
			if err := e.ApplyAll(context.Background(), txns[half:]); err != nil {
				t.Fatalf("apply rest: %v", err)
			}
			if !bytes.Equal(before, snapshotBytes(t, view)) {
				t.Fatalf("pinned view changed after %d further transactions", len(txns)-half)
			}
			if e.Horizon() <= view.AsOf() {
				t.Fatalf("horizon did not advance past the pinned view")
			}
			// At with the latest-horizon sentinel tracks the live state.
			latest := snapshotBytes(t, e.At(e.Horizon()))
			live := snapshotBytes(t, e)
			if !bytes.Equal(latest, live) {
				t.Fatalf("At(Horizon()) and live engine snapshots differ")
			}
		})
	}
}

// TestMVCCPinnedReadersDuringApply is the -race stress of the
// tentpole: readers pin views and stream rows while ApplyAll runs
// concurrently. Each reader's view must stay internally consistent
// (every streamed annotation re-readable through Annotation at the
// same pinned horizon) and the horizon must only move forward.
func TestMVCCPinnedReadersDuringApply(t *testing.T) {
	initial, txns := mvccWorkload(t)
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			e := engine.Open(engine.ModeNormalForm, initial, engine.WithShards(shards))
			var wg sync.WaitGroup
			stop := make(chan struct{})
			var lastH atomic.Uint64
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						h := e.Horizon()
						if prev := lastH.Load(); h < prev {
							t.Errorf("horizon went backwards: %#x after %#x", h, prev)
							return
						}
						lastH.Store(h)
						v := e.At(h)
						n := 0
						v.Rows(func(rel string, tp db.Tuple, ann *core.Expr) {
							n++
							if got := v.Annotation(rel, tp); got != ann {
								t.Errorf("streamed annotation and point lookup disagree at %#x", h)
							}
						})
						if n < initial.NumTuples() {
							t.Errorf("view at %#x lost initial rows: %d < %d", h, n, initial.NumTuples())
							return
						}
						_ = v.SupportSize()
						_ = engine.LiveDB(v)
					}
				}()
			}
			for i := 0; i < 6; i++ {
				if err := e.ApplyAll(context.Background(), txns); err != nil {
					t.Errorf("apply: %v", err)
					break
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestSelectTimeTravel checks the interval-aware planner: Select
// through a pinned view must agree with a fresh replay at every epoch
// even when a secondary index was built long after the epoch being
// queried — the index's since watermark forces the full-scan fallback
// for horizons it cannot prove complete, and serves covered horizons.
func TestSelectTimeTravel(t *testing.T) {
	schema := db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "K", Kind: db.KindInt},
		db.Attribute{Name: "V", Kind: db.KindInt},
	))
	var txns []db.Transaction
	for i := int64(0); i < 8; i++ {
		txns = append(txns, db.Transaction{
			Label: fmt.Sprintf("t%d", i),
			Updates: []db.Update{
				db.Insert("R", db.Tuple{db.I(i), db.I(i % 3)}),
				db.Delete("R", db.Pattern{db.Const(db.I(i - 4)), db.AnyVar("x")}),
			},
		})
	}
	sels := []db.Pattern{
		{db.AnyVar("x"), db.Const(db.I(0))},
		{db.AnyVar("x"), db.Const(db.I(2))},
		{db.Const(db.I(3)), db.AnyVar("x")},
	}
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			full := engine.OpenEmpty(engine.ModeNormalForm, schema, engine.WithShards(shards))
			for i := range txns {
				txn := txns[i]
				if err := full.ApplyTransaction(&txn); err != nil {
					t.Fatal(err)
				}
			}
			// The index arrives only now: its history starts at the final
			// horizon, so every earlier epoch must be answered without it.
			if err := full.BuildIndex("R", "V"); err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= len(txns); k++ {
				oracle := engine.OpenEmpty(engine.ModeNormalForm, schema, engine.WithShards(shards))
				for i := 0; i < k; i++ {
					txn := txns[i]
					if err := oracle.ApplyTransaction(&txn); err != nil {
						t.Fatal(err)
					}
				}
				view := full.At(engine.EpochSeq(uint64(k)))
				for si, sel := range sels {
					want, err := oracle.Select("R", sel)
					if err != nil {
						t.Fatal(err)
					}
					got, err := view.Select("R", sel)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("epoch %d sel %d: %d rows, replay %d", k, si, len(got), len(want))
					}
					for i := range got {
						if got[i].Key() != want[i].Key() {
							t.Fatalf("epoch %d sel %d row %d: %s vs replay %s", k, si, i, got[i], want[i])
						}
					}
				}
			}
			if shards == 1 {
				// Gating counters, single engine only (shards each count):
				// a pre-index epoch falls back to the full scan, the final
				// horizon is served by the index.
				before := full.PlannerStats()
				if _, err := full.At(engine.EpochSeq(2)).Select("R", sels[0]); err != nil {
					t.Fatal(err)
				}
				mid := full.PlannerStats()
				if mid.FullScans != before.FullScans+1 {
					t.Fatalf("pre-index epoch served by the index: %+v -> %+v", before, mid)
				}
				if _, err := full.Select("R", sels[0]); err != nil {
					t.Fatal(err)
				}
				after := full.PlannerStats()
				if after.IndexScans != mid.IndexScans+1 {
					t.Fatalf("covered horizon not served by the index: %+v -> %+v", mid, after)
				}
			}
		})
	}
}

// TestAtClampsMidEpoch pins At's clamping: cutting inside an epoch
// would expose a half-applied batch, so a mid-epoch sequence snaps
// down to the previous epoch boundary, and sequences beyond the
// horizon clamp to it.
func TestAtClampsMidEpoch(t *testing.T) {
	initial, txns := mvccWorkload(t)
	e := engine.Open(engine.ModeNormalForm, initial)
	if err := e.ApplyAll(context.Background(), txns[:4]); err != nil {
		t.Fatal(err)
	}
	if got, want := e.At(engine.EpochSeq(2)+1).AsOf(), engine.EpochSeq(2); got != want {
		t.Fatalf("mid-epoch cut: AsOf = %#x, want snap to %#x", got, want)
	}
	if got, want := e.At(^uint64(0)-1).AsOf(), e.Horizon(); got != want {
		t.Fatalf("beyond-horizon cut: AsOf = %#x, want clamp to %#x", got, want)
	}
}

// TestApplyBatchReportsApplied is the satellite-2 regression: a batch
// that fails or is cancelled midway must report how many transactions
// were durably applied, and that count must be a prefix — every
// transaction below it fully visible, in both implementations.
func TestApplyBatchReportsApplied(t *testing.T) {
	schema := db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "K", Kind: db.KindInt},
	))
	mkTxns := func(n int) []db.Transaction {
		txns := make([]db.Transaction, n)
		for i := range txns {
			txns[i] = db.Transaction{
				Label:   fmt.Sprintf("t%d", i),
				Updates: []db.Update{db.Insert("R", db.Tuple{db.I(int64(i))})},
			}
		}
		return txns
	}
	present := func(e engine.DB, i int) bool {
		return e.Annotation("R", db.Tuple{db.I(int64(i))}) != nil
	}

	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards%d/failure", shards), func(t *testing.T) {
			e := engine.OpenEmpty(engine.ModeNormalForm, schema, engine.WithShards(shards))
			txns := mkTxns(64)
			// An invalid transaction in the middle: unknown relation.
			bad := 40
			txns[bad].Updates = []db.Update{db.Insert("NoSuchRel", db.Tuple{db.I(1)})}
			applied, err := e.ApplyBatch(context.Background(), txns)
			if err == nil {
				t.Fatalf("ApplyBatch with a bad transaction: err = nil")
			}
			if applied < 0 || applied > bad {
				t.Fatalf("applied = %d, want 0..%d (the bad transaction cannot be applied)", applied, bad)
			}
			for i := 0; i < applied; i++ {
				if !present(e, i) {
					t.Fatalf("applied = %d but transaction %d is not visible", applied, i)
				}
			}
		})
		t.Run(fmt.Sprintf("shards%d/precancelled", shards), func(t *testing.T) {
			e := engine.OpenEmpty(engine.ModeNormalForm, schema, engine.WithShards(shards))
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			applied, err := e.ApplyBatch(ctx, mkTxns(32))
			if err == nil {
				t.Fatalf("ApplyBatch under cancelled context: err = nil")
			}
			for i := 0; i < applied; i++ {
				if !present(e, i) {
					t.Fatalf("applied = %d but transaction %d is not visible", applied, i)
				}
			}
		})
		t.Run(fmt.Sprintf("shards%d/midflight", shards), func(t *testing.T) {
			e := engine.OpenEmpty(engine.ModeNormalForm, schema, engine.WithShards(shards))
			txns := mkTxns(2048)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				// Cancel as soon as some progress is visible, so the batch
				// is usually interrupted mid-flight; if it wins the race and
				// completes, the assertions below still hold.
				for e.NumRows() == 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				cancel()
			}()
			applied, err := e.ApplyBatch(ctx, txns)
			close(done)
			cancel()
			if err != nil && applied == len(txns) {
				t.Fatalf("applied = len(txns) with err = %v", err)
			}
			if err == nil && applied != len(txns) {
				t.Fatalf("applied = %d with nil error, want %d", applied, len(txns))
			}
			for i := 0; i < applied; i++ {
				if !present(e, i) {
					t.Fatalf("applied = %d but transaction %d is not visible", applied, i)
				}
			}
		})
	}
}
