package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/upstruct"
)

// Mode selects the provenance representation.
type Mode uint8

const (
	// ModeNaive builds raw expressions per the Section 3.1 definitions,
	// applying no axioms ("No axioms" in the paper's graphs).
	ModeNaive Mode = iota
	// ModeNormalForm maintains the Theorem 5.3 normal form
	// incrementally ("Normal form" in the paper's graphs).
	ModeNormalForm
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "No axioms"
	case ModeNormalForm:
		return "Normal form"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// row is one stored tuple together with its version chain (see
// mvcc.go). Rows are retained after logical deletion (tombstones) so
// that provenance can be inspected and updates can be undone by
// valuation; the provenance itself lives in the versions reached
// through head.
type row struct {
	tuple db.Tuple
	// fp is the tuple's db.Tuple.Fingerprint, cached at insertion: the
	// rowMap probes compare it before tuple equality, and shard routing
	// reuses it, so the hot path never rebuilds Key() strings (keys
	// survive only in snapshots and the WAL, where byte-compatibility
	// matters).
	fp  uint64
	txn int // last transaction that touched the row (freeze tracking)
	// seq is the row's global creation sequence number,
	// epoch<<32|counter: the epoch is the transaction (or restore, or
	// minimization pass) that created the row and the counter its
	// creation index within that epoch. Sequence numbers are unique per
	// engine — the plain engine numbers its own epochs, the sharded
	// coordinator numbers across shards — so sorting by seq reproduces
	// exactly the insertion order a single engine would have used, and
	// a row is visible at horizon s iff seq ≤ s.
	seq uint64
	// pos is the row's position in its table's list — unique per table
	// and monotone in insertion order. Posting lists are kept sorted by
	// pos so index scans visit rows in full-scan order, and pos doubles
	// as the membership key for binary-search reinsertion.
	pos int
	// head points at the newest version; readers resolve it against
	// their pinned horizon with row.at.
	head atomic.Pointer[version]
}

type table struct {
	rel *db.RelationSchema
	// rows indexes rows by tuple fingerprint (see storage.go). Entries
	// are never deleted (tombstones persist), so readers probe lock-free
	// while the serialized writer stores new rows; no Key() string is
	// built on either side.
	rows rowMap
	// list holds the rows in insertion order; rows are never removed,
	// and scans iterate it for determinism: the order of Σ summands
	// must not depend on map iteration. The rowList publication order
	// (element before length) makes concurrent lock-free reads safe.
	list rowList
	// cols mirrors the tuples column-major (struct-of-arrays) with a
	// parallel sequence vector; planner full scans and visibility
	// counting read contiguous vectors instead of chasing row pointers.
	cols colStore
}

// get returns the row stored for the tuple (fp must be the tuple's
// fingerprint), or nil. Lock-free and allocation-free.
func (t *table) get(fp uint64, tu db.Tuple) *row {
	return t.rows.get(fp, tu)
}

// add stores a new row (writer-only): fingerprint map, columnar mirror,
// then the list append that publishes the row to ordered readers.
func (t *table) add(r *row) {
	r.fp = r.tuple.Fingerprint()
	n := t.list.len()
	r.pos = n
	t.rows.add(r)
	t.cols.append(r.tuple, r.seq, n)
	t.list.append(r)
}

// config collects the settings shared by both engines; Options mutate
// it before construction.
type config struct {
	cow        bool
	zeroAxioms bool
	liveMatch  bool
	shards     int
	autoIndex  int
	initAnnot  func(rel string, t db.Tuple) core.Annot
}

func newConfig(opts []Option) *config {
	c := &config{cow: true, shards: 1}
	for _, o := range opts {
		o(c)
	}
	if c.shards < 1 {
		c.shards = 1
	}
	return c
}

// Option configures an engine (single or sharded; see Open).
type Option func(*config)

// WithCopyOnWrite controls whether the naive mode deep-copies
// sub-expressions reused across tuples (the paper's implementation
// behaviour; default true). Disabling it is the shared-representation
// ablation: expressions become DAGs, tree sizes stay exponential but
// memory and copying time do not.
func WithCopyOnWrite(cow bool) Option {
	return func(c *config) { c.cow = cow }
}

// WithEagerZeroAxioms makes the naive mode apply the zero-related axioms
// after every annotation update. The paper's "No axioms" configuration
// leaves them off (default false).
func WithEagerZeroAxioms(on bool) Option {
	return func(c *config) { c.zeroAxioms = on }
}

// WithInitialAnnotations overrides the naming of the fresh annotations
// assigned to initial database tuples; f receives the relation name and
// tuple and returns the annotation.
func WithInitialAnnotations(f func(rel string, t db.Tuple) core.Annot) Option {
	return func(c *config) { c.initAnnot = f }
}

// WithShards selects the hash-sharded engine with n independent lock
// domains when passed to Open/OpenEmpty (n ≤ 1 keeps the single
// engine). New and NewEmpty ignore it.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithAutoIndex enables the adaptive index advisor: once a column has
// been pinned to an =-constant by threshold scans without an index of
// its own, the engine builds the index automatically and the planner
// starts using it (each shard of a sharded engine advises its own
// partition). threshold <= 0 disables auto-indexing (the default);
// manual BuildIndex works either way. Indexes never change results —
// only access paths — so enabling this is always safe.
func WithAutoIndex(threshold int) Option {
	return func(c *config) { c.autoIndex = threshold }
}

// WithLiveMatching restricts update selections to semantically live
// tuples instead of the paper's formal support (annotation ≠ 0, which
// includes logically deleted tuples — see Figure 4, where the dead
// Sport bike still participates in T2). Live matching reproduces what a
// conventional reenactment implementation measures — per-tuple
// provenance stays linear in the number of updates that actually
// touched the tuple, comparable to an MV-semiring version chain — but
// it trades away part of the model's hypothetical-reasoning power:
// transaction-abortion valuations can diverge from true re-execution,
// because the effect of a query on a tuple that was dead at the time is
// no longer recorded (deletion propagation of input tuples remains
// exact; see the package tests). Default off.
func WithLiveMatching(on bool) Option {
	return func(c *config) { c.liveMatch = on }
}

// Engine is a provenance-tracking database: every stored tuple carries
// an UP[X] annotation. Construct with New, load tuples through the
// initial database, then apply annotated transactions with
// ApplyTransaction (or Begin/Apply/End for streaming use).
//
// Concurrency: writers are still serialized — ApplyTransaction,
// ApplyAll, RestoreRow, BuildIndex, DropIndex and MinimizeAll take the
// write lock — but readers no longer lock at all. Annotation, NF,
// EachRow, Rows, NumRows, SupportSize, ProvSize, ProvDAGSize, At and
// the package-level valuation entry points (Specialize,
// SpecializeParallel, BoolRestrict*, …) pin the committed horizon
// (Horizon) on entry and resolve every row against the MVCC version
// chains, so any number of provenance-usage queries run against a
// consistent epoch snapshot while transactions commit concurrently —
// no stop-the-world on any read path. At(seq) pins an older horizon
// for time travel. The Begin/Apply/End streaming path remains the
// single-goroutine hot path the benchmarks measure; servers go through
// ApplyTransaction.
type Engine struct {
	mu sync.RWMutex // serializes writers (readers are lock-free)

	mode      Mode
	schema    *db.Schema
	tables    map[string]*table
	seq       *core.AnnotSeq
	initAnnot func(rel string, t db.Tuple) core.Annot

	cow        bool
	zeroAxioms bool
	liveMatch  bool

	cur     core.Annot
	inTxn   bool
	txnNo   int
	touched []*row

	// hook, when installed, receives one CommitEvent per committed own
	// epoch. evRows/evKind/evLabel accumulate the event of the epoch in
	// flight; collectEv gates the accumulation — set from hook by Begin
	// and the other own-epoch entry points, or forced on by the sharded
	// coordinator, which harvests evRows itself (a coordinated shard
	// never emits: the tracker owns event order then). All of these are
	// guarded by mu.
	hook      CommitHook
	collectEv bool
	evKind    CommitKind
	evLabel   string
	evRows    []RowRef

	// epoch numbers this engine's own write epochs (transactions,
	// restores, minimization passes) when no sharded coordinator is
	// driving it; curEpoch is the epoch of the write in flight and
	// seqLocal its creation counter. ownSeq records whether the current
	// write allocated its own epoch (and must publish the horizon when
	// it commits) or runs under a coordinator.
	epoch    atomic.Uint64
	curEpoch uint64
	seqLocal uint64
	ownSeq   bool

	// visibleSeq is the committed read horizon: every version born at
	// or before it is visible to readers. Initialized to
	// EpochSeq(0) — the initial rows — and advanced (with release
	// semantics, the readers' happens-before edge) when an own epoch
	// commits. A coordinated shard never advances it; the sharded
	// engine's epochTracker owns visibility then.
	visibleSeq atomic.Uint64

	// hzNote wakes WaitHorizon callers after each visibleSeq advance.
	hzNote horizonNote

	// versions counts row versions ever created (MVCCStats).
	versions atomic.Uint64

	// nextSeq, when set (by the sharded coordinator, under the write
	// lock), numbers newly created rows with global sequence numbers.
	nextSeq func() uint64

	// idx is the secondary-index manager: per-column hash indexes, the
	// adaptive advisor and the planner counters (see index.go).
	idx *indexManager

	// scanBufs is the writer-owned free-list recycling scan result
	// buffers (see storage.go); guarded by the write lock like every
	// other scan-path structure.
	scanBufs [][]*row
}

// New builds an engine in the given mode from an initial database. Each
// initial tuple is annotated with a fresh tuple annotation (t0, t1, …
// unless WithInitialAnnotations overrides the naming); the input
// database is not modified or referenced afterwards.
func New(mode Mode, initial *db.Database, opts ...Option) *Engine {
	cfg := newConfig(opts)
	e := newShell(mode, initial.Schema(), cfg)
	var seq uint64
	for _, name := range e.schema.Names() {
		tbl := e.tables[name]
		for _, t := range initial.Instance(name).Tuples() {
			a := e.freshAnnot(name, t)
			r := newRow(mode, t, core.Var(a), seq)
			seq++
			e.versions.Add(1)
			tbl.add(r)
		}
	}
	return e
}

// newShell builds an engine with empty tables for every relation.
func newShell(mode Mode, schema *db.Schema, cfg *config) *Engine {
	e := &Engine{
		mode:       mode,
		schema:     schema,
		tables:     make(map[string]*table),
		seq:        core.NewAnnotSeq("t", core.KindTuple),
		initAnnot:  cfg.initAnnot,
		cow:        cfg.cow,
		zeroAxioms: cfg.zeroAxioms,
		liveMatch:  cfg.liveMatch,
		idx:        newIndexManager(cfg.autoIndex),
	}
	e.visibleSeq.Store(EpochSeq(0))
	for _, name := range schema.Names() {
		tbl := &table{rel: schema.Relation(name)}
		tbl.cols.init(len(tbl.rel.Attrs))
		e.tables[name] = tbl
	}
	return e
}

// newRow builds a live initial row (epoch 0) annotated with the given
// base expression in the representation of the mode.
func newRow(mode Mode, t db.Tuple, base *core.Expr, seq uint64) *row {
	r := &row{tuple: t, txn: -1, seq: seq}
	v := &version{born: seq, live: true}
	if mode == ModeNaive {
		v.expr = base
	} else {
		v.nf = core.NewNF(base)
	}
	r.head.Store(v)
	return r
}

func (e *Engine) freshAnnot(rel string, t db.Tuple) core.Annot {
	if e.initAnnot != nil {
		return e.initAnnot(rel, t)
	}
	return e.seq.Next()
}

// NewEmpty builds an engine over a schema with no initial tuples, for
// snapshot restoration and streaming ingestion.
func NewEmpty(mode Mode, schema *db.Schema, opts ...Option) *Engine {
	return New(mode, db.NewDatabase(schema), opts...)
}

// RestoreRow stores a tuple with an explicit annotation, overwriting any
// existing row for the same tuple. It is the inverse of EachRow and is
// used by snapshot loading (package provstore); it must not be called
// inside a transaction. Each restore is its own write epoch.
func (e *Engine) RestoreRow(rel string, t db.Tuple, ann *core.Expr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nextSeq == nil {
		e.beginOwnEpoch()
		e.beginEvent(CommitRestore, "")
		err := e.restoreRowLocked(rel, t, ann)
		e.commitOwnEpoch()
		return err
	}
	return e.restoreRowLocked(rel, t, ann)
}

// SetCommitHook installs (or, with nil, removes) the commit-event
// subscriber. At most one hook is installed at a time; see CommitHook
// for the contract it must honour. SetCommitHook waits for any write
// in flight under the lock, so every epoch applied after it returns is
// announced; it must not race the lock-free Begin/Apply/End streaming
// path (which is single-goroutine by contract anyway).
func (e *Engine) SetCommitHook(h CommitHook) {
	e.mu.Lock()
	e.hook = h
	e.mu.Unlock()
}

// beginEvent opens event accumulation for an own epoch.
func (e *Engine) beginEvent(kind CommitKind, label string) {
	e.evKind, e.evLabel = kind, label
	e.evRows = e.evRows[:0]
	e.collectEv = e.hook != nil
}

// beginOwnEpoch opens a self-allocated write epoch (no sharded
// coordinator); commitOwnEpoch publishes it to readers.
func (e *Engine) beginOwnEpoch() {
	e.curEpoch = e.epoch.Add(1)
	e.seqLocal = 0
	e.ownSeq = true
}

func (e *Engine) commitOwnEpoch() {
	e.ownSeq = false
	e.visibleSeq.Store(EpochSeq(e.curEpoch))
	e.hzNote.wake()
	// The event fires after the horizon advance, so a subscriber reading
	// At(ev.Seq) observes the committed epoch. Emission runs under the
	// write lock, which is what serializes events into epoch order.
	if e.hook != nil && e.collectEv {
		e.hook(CommitEvent{
			Epoch: e.curEpoch,
			Seq:   EpochSeq(e.curEpoch),
			Kind:  e.evKind,
			Label: e.evLabel,
			Rows:  e.evRows,
		})
		e.evRows = nil // ownership passed to the hook
	}
	e.collectEv = false
}

func (e *Engine) restoreRowLocked(rel string, t db.Tuple, ann *core.Expr) error {
	if e.inTxn {
		return fmt.Errorf("engine: RestoreRow inside a transaction")
	}
	tbl := e.tables[rel]
	if tbl == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, rel)
	}
	if err := t.Conforms(tbl.rel); err != nil {
		return fmt.Errorf("engine: %w: %v", ErrBadTuple, err)
	}
	r := tbl.get(t.Fingerprint(), t)
	fresh := r == nil
	wasMatchable := !fresh && e.matchable(r)
	if fresh {
		r = e.newVersionedRow(t)
	}
	v := e.mutable(r)
	if e.mode == ModeNaive {
		v.expr = ann
		v.nf = nil
	} else {
		v.nf = core.NewNF(ann)
		v.expr = nil
	}
	v.live = upstruct.Eval(ann, upstruct.Bool, func(core.Annot) bool { return true })
	if fresh {
		tbl.add(r)
	}
	switch {
	case fresh, !wasMatchable && e.matchable(r):
		e.indexAdd(tbl, r)
	case wasMatchable && !e.matchable(r):
		e.indexDead(tbl, r)
	}
	if e.collectEv {
		e.evRows = append(e.evRows, RowRef{Rel: rel, Tuple: t})
	}
	return nil
}

// Mode reports the provenance representation in use.
func (e *Engine) Mode() Mode { return e.mode }

// Schema returns the database schema.
func (e *Engine) Schema() *db.Schema { return e.schema }

// Begin starts a transaction whose queries carry the annotation label.
// Unless a sharded coordinator installed its own numbering, the
// transaction allocates the engine's next epoch; its effects become
// visible to readers at End.
func (e *Engine) Begin(label string) {
	if e.inTxn {
		panic("engine: Begin inside an open transaction")
	}
	e.cur = core.QueryAnnot(label)
	e.inTxn = true
	e.touched = e.touched[:0]
	e.beginEvent(CommitTxn, label)
	if e.nextSeq == nil {
		e.beginOwnEpoch()
	}
}

// End closes the current transaction. In normal-form mode every touched
// row is frozen so that the next transaction (with a different
// annotation) layers on top. A self-numbered transaction publishes its
// epoch to the read horizon here — commit, from the readers' view.
func (e *Engine) End() {
	if !e.inTxn {
		panic("engine: End without Begin")
	}
	if e.mode == ModeNormalForm {
		for _, r := range e.touched {
			r.latest().nf.Freeze()
		}
	}
	e.inTxn = false
	e.txnNo++
	e.touched = e.touched[:0]
	if e.ownSeq {
		e.commitOwnEpoch()
	}
}

func (e *Engine) touch(tbl *table, r *row) {
	if r.txn != e.txnNo {
		r.txn = e.txnNo
		e.touched = append(e.touched, r)
		if e.collectEv {
			// Piggybacking on the freeze-tracking dedup keeps each touched
			// row in the event exactly once per epoch.
			e.evRows = append(e.evRows, RowRef{Rel: tbl.rel.Name, Tuple: r.tuple})
		}
	}
}

// assignSeq numbers a newly created row: with the sharded coordinator's
// closure when one is installed, from the engine's own epoch and
// creation counter otherwise — every row gets a unique, monotone
// sequence number either way, so version order is total in the
// single-engine path too.
func (e *Engine) assignSeq(r *row) {
	if e.nextSeq != nil {
		r.seq = e.nextSeq()
		return
	}
	r.seq = e.curEpoch<<32 | e.seqLocal
	e.seqLocal++
}

// newVersionedRow creates a row with a zero-annotated first version
// born at the row's creation sequence. The caller publishes it with
// tbl.add (after any same-epoch mutation it performs through mutable —
// in-flight versions are invisible to readers regardless, because
// their epoch is beyond every committed horizon).
func (e *Engine) newVersionedRow(t db.Tuple) *row {
	r := &row{tuple: t, txn: -1}
	e.assignSeq(r)
	v := &version{born: r.seq}
	if e.mode == ModeNaive {
		v.expr = core.Zero()
	} else {
		v.nf = core.NewNF(core.Zero())
	}
	e.versions.Add(1)
	r.head.Store(v)
	return r
}

// mutable returns the version of r the current write epoch may mutate
// in place: the head itself when this epoch already owns it, otherwise
// a copy-on-write successor born at epoch<<32, atomically published as
// the new head. Readers pinned at or before the previous epoch keep
// resolving the old head — that is the whole MVCC invariant.
func (e *Engine) mutable(r *row) *version {
	v := r.head.Load()
	if v.born>>32 == e.curEpoch {
		return v
	}
	nv := &version{prev: v, born: e.curEpoch << 32, expr: v.expr, live: v.live}
	if v.nf != nil {
		nv.nf = v.nf.Clone()
	}
	e.versions.Add(1)
	r.head.Store(nv)
	return nv
}

// matchable reports whether a row is a candidate for update selections
// in the writer's view: rows in the formal support by default,
// semantically live rows under WithLiveMatching.
func (e *Engine) matchable(r *row) bool {
	return e.matchableV(r.latest())
}

// matchableV is matchable over an already-resolved version (the
// writer's head or a reader's horizon-pinned version).
func (e *Engine) matchableV(v *version) bool {
	if e.liveMatch {
		return v.live
	}
	return v.inSupport(e.mode)
}

// Apply executes one update query of the current transaction.
func (e *Engine) Apply(u db.Update) error {
	if !e.inTxn {
		return fmt.Errorf("engine: Apply outside a transaction")
	}
	tbl := e.tables[u.Rel]
	if tbl == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, u.Rel)
	}
	switch u.Kind {
	case db.OpInsert:
		e.applyInsert(tbl, u)
		return nil
	case db.OpDelete:
		e.applyDelete(tbl, u)
		return nil
	case db.OpModify:
		e.applyModify(tbl, u)
		return nil
	default:
		return fmt.Errorf("engine: unknown update kind %v", u.Kind)
	}
}

func (e *Engine) applyInsert(tbl *table, u db.Update) {
	r := tbl.get(u.Row.Fingerprint(), u.Row)
	fresh := r == nil
	wasMatchable := !fresh && e.matchable(r)
	if fresh {
		r = e.newVersionedRow(u.Row)
		tbl.add(r)
	}
	v := e.mutable(r)
	if e.mode == ModeNaive {
		v.expr = e.simplify(core.PlusI(v.expr, core.Var(e.cur)))
	} else {
		v.nf.Insert(e.cur)
	}
	v.live = true
	if fresh {
		e.indexAdd(tbl, r)
	} else if !wasMatchable {
		// A tombstoned tuple came back to life: its posting entries may
		// have been compacted away, so re-register it.
		e.indexRevive(tbl, r)
	}
	e.touch(tbl, r)
}

func (e *Engine) applyDelete(tbl *table, u db.Update) {
	rows := e.scan(tbl, u)
	for _, r := range rows {
		e.deleteRow(tbl, r)
	}
	e.putScanBuf(rows)
}

// deleteRow applies the current query as a deletion (−M for modify
// sources) to one row. Callers only pass matchable rows (scan and
// lookupPinned filter), so a row that is unmatchable afterwards made a
// real transition and its posting entries are marked dead.
func (e *Engine) deleteRow(tbl *table, r *row) {
	v := e.mutable(r)
	if e.mode == ModeNaive {
		v.expr = e.simplify(core.Minus(v.expr, core.Var(e.cur)))
	} else {
		v.nf.Delete(e.cur)
	}
	v.live = false
	if !e.matchable(r) {
		e.indexDead(tbl, r)
	}
	e.touch(tbl, r)
}

// lookupPinned returns the one candidate row of a selection whose
// constraints pin every attribute (see db.Pattern.PinnedTuple): only
// the row stored for the pinned tuple can match, so the full scan
// reduces to an allocation-free fingerprint probe.
func (e *Engine) lookupPinned(tbl *table, u db.Update, t db.Tuple) *row {
	r := tbl.get(t.Fingerprint(), t)
	if r == nil || !e.matchable(r) || !u.MatchesTuple(r.tuple) {
		return nil
	}
	return r
}

// modGroup accumulates, per target tuple, the provenance contributions
// of the sources collapsing into it. Groups are found by target
// fingerprint; collide chains the (vanishingly rare) distinct targets
// sharing one fingerprint so a hash collision can never merge groups.
type modGroup struct {
	target  db.Tuple
	fp      uint64
	collide *modGroup
	// naive: pre-query source annotations (copied under cow).
	raw []*core.Expr
	// normal form: flattened contributions and the inserted flag.
	contrib  []*core.Expr
	inserted bool
}

// findModGroup returns the group for the target in the fingerprint-
// keyed chain map, appending a fresh one to order on first sight.
func findModGroup(groups map[uint64]*modGroup, order *[]*modGroup, target db.Tuple, fp uint64) *modGroup {
	g := groups[fp]
	for g != nil && !g.target.Equal(target) {
		g = g.collide
	}
	if g == nil {
		g = &modGroup{target: target, fp: fp, collide: groups[fp]}
		groups[fp] = g
		*order = append(*order, g)
	}
	return g
}

func (e *Engine) applyModify(tbl *table, u db.Update) {
	sources := e.scan(tbl, u)
	e.applyModifySources(tbl, u, sources)
	e.putScanBuf(sources)
}

// captureContribution records one source row's pre-query annotation in
// its target group (naive: the raw expression, deep-copied under cow;
// normal form: the flattened Contribution).
func (e *Engine) captureContribution(g *modGroup, src *row) {
	v := src.latest()
	if e.mode == ModeNaive {
		contrib := v.expr
		if e.cow {
			contrib = contrib.DeepCopy()
		}
		g.raw = append(g.raw, contrib)
	} else {
		c, ins := v.nf.Contribution()
		g.contrib = append(g.contrib, c...)
		g.inserted = g.inserted || ins
	}
}

// absorbModTarget applies a completed modification group to its target
// row, creating the row if the target tuple was never stored.
func (e *Engine) absorbModTarget(tbl *table, g *modGroup, pe *core.Expr) {
	r := tbl.get(g.fp, g.target)
	fresh := r == nil
	wasMatchable := !fresh && e.matchable(r)
	if fresh {
		r = e.newVersionedRow(g.target)
		tbl.add(r)
	}
	v := e.mutable(r)
	if e.mode == ModeNaive {
		v.expr = e.simplify(core.PlusM(v.expr, core.DotM(core.Sum(g.raw...), pe)))
	} else {
		v.nf.AbsorbMod(g.contrib, g.inserted, e.cur)
	}
	v.live = true
	if fresh {
		e.indexAdd(tbl, r)
	} else if !wasMatchable {
		e.indexRevive(tbl, r)
	}
	e.touch(tbl, r)
}

// applyModifySources runs a modification over the given source rows (in
// deterministic scan order).
func (e *Engine) applyModifySources(tbl *table, u db.Update, sources []*row) {
	if len(sources) == 0 {
		return
	}
	pe := core.Var(e.cur)
	groups := make(map[uint64]*modGroup)
	var order []*modGroup
	for _, src := range sources {
		target := u.Target(src.tuple)
		g := findModGroup(groups, &order, target, target.Fingerprint())
		e.captureContribution(g, src)
	}
	// Sources are deleted (−M p) after their pre-query annotations have
	// been captured.
	for _, src := range sources {
		e.deleteRow(tbl, src)
	}
	// Targets receive old +M ((Σ sources) ·M p); a target that is itself
	// a source (necessarily a self-map) uses its post-deletion
	// annotation, yielding the paper's fifth normal-form shape.
	for _, g := range order {
		e.absorbModTarget(tbl, g, pe)
	}
}

func (e *Engine) simplify(x *core.Expr) *core.Expr {
	if e.zeroAxioms {
		return core.SimplifyZero(x)
	}
	return x
}

// ApplyTransaction runs a whole transaction (Begin, all queries, End)
// under the write lock. Its effects publish atomically to the read
// horizon at End: concurrent readers observe the database either
// before or after the transaction, never mid-way.
func (e *Engine) ApplyTransaction(t *db.Transaction) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyTransactionLocked(t)
}

func (e *Engine) applyTransactionLocked(t *db.Transaction) error {
	e.Begin(t.Label)
	for i := range t.Updates {
		if err := e.Apply(t.Updates[i]); err != nil {
			e.End()
			return fmt.Errorf("transaction %s, query %d: %w", t.Label, i, err)
		}
	}
	e.End()
	return nil
}

// ApplyAll runs a sequence of transactions. The write lock is taken per
// transaction, so readers observe transaction-granular progress during
// bulk ingestion; ctx is checked between transactions and aborts the
// remainder of the batch when cancelled. See ApplyBatch to learn how
// many transactions a cancelled or failed batch durably applied.
func (e *Engine) ApplyAll(ctx context.Context, txns []db.Transaction) error {
	_, err := e.ApplyBatch(ctx, txns)
	return err
}

// ApplyBatch is ApplyAll reporting progress: it returns the number of
// leading transactions durably applied (and visible to readers). On a
// nil error applied == len(txns); after a cancellation or failure the
// caller can resume from txns[applied:] without double-applying —
// transaction applied+1 itself was not executed (it failed before
// mutating anything, or was never started).
func (e *Engine) ApplyBatch(ctx context.Context, txns []db.Transaction) (applied int, err error) {
	for i := range txns {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return i, err
			}
		}
		if err := e.ApplyTransaction(&txns[i]); err != nil {
			return i, err
		}
	}
	return len(txns), nil
}

// Annotation returns the provenance expression of the tuple at the
// committed horizon, or nil if the tuple was never stored. In
// normal-form mode the expression is materialized from the NF
// representation. Lock-free: concurrent transactions never block it.
func (e *Engine) Annotation(rel string, t db.Tuple) *core.Expr {
	return e.annotationAt(rel, t, e.Horizon())
}

// NF returns the normal-form value of the tuple in ModeNormalForm at
// the committed horizon, or nil. The returned NF must not be mutated.
func (e *Engine) NF(rel string, t db.Tuple) *core.NF {
	return e.nfAt(rel, t, e.Horizon())
}

// EachRow calls f for every row of the relation visible at the
// committed horizon (including tombstones outside the support) with its
// tuple and annotation, in deterministic insertion order (the table
// list, the same order Specialize and SpecializeParallel stream rows) —
// never map order, so snapshot bytes and streamed results are stable
// across runs. In normal-form mode annotations are materialized per
// call. The pass is lock-free and the horizon is pinned on entry, so
// the visited rows form one consistent epoch snapshot even while
// transactions commit concurrently; f may freely call back into the
// engine.
func (e *Engine) EachRow(rel string, f func(t db.Tuple, ann *core.Expr)) {
	e.eachRowAt(rel, e.Horizon(), f)
}

// Rows calls f for every row visible at the committed horizon —
// relations in schema order, rows in insertion order — with the horizon
// pinned once for the whole pass, so the visited rows form one
// consistent snapshot even while transactions are applied concurrently.
// Snapshot saving uses this.
func (e *Engine) Rows(f func(rel string, t db.Tuple, ann *core.Expr)) {
	e.rowsAt(e.Horizon(), f)
}

// Relations returns the relation names in schema order.
func (e *Engine) Relations() []string { return e.schema.Names() }

// NumRows reports the total number of rows visible at the committed
// horizon, including tombstones and tuples outside the support (the
// paper's "database size" under provenance tracking, which exceeds the
// plain database by ~2% on TPC-C).
func (e *Engine) NumRows() int {
	return e.numRowsAt(e.Horizon())
}

// SupportSize reports the number of visible rows whose annotation is
// not syntactically zero.
func (e *Engine) SupportSize() int {
	return e.supportSizeAt(e.Horizon())
}

// ProvSize reports the total provenance size (tree size summed over all
// visible rows) — the size measure of the paper's Section 6.
func (e *Engine) ProvSize() int64 {
	return e.provSizeAt(e.Horizon())
}

// ProvDAGSize reports the number of distinct expression nodes backing
// all visible annotations: shared subterms — shared within a row,
// across rows, and across relations — are counted once. With
// hash-consed expressions this is the number of nodes actually held in
// memory for this engine's provenance, the companion measure to
// ProvSize's per-occurrence tree count (the paper's Fig. 7b/8b report
// the latter; the stats endpoint reports both).
func (e *Engine) ProvDAGSize() int64 {
	return e.provDAGSizeAt(make(map[*core.Expr]struct{}), e.Horizon())
}

// MinimizeAll applies the zero-axiom post-processing of Proposition 5.5
// to every stored annotation (normal-form mode only; the naive mode is
// deliberately axiom-free). It returns the provenance size after
// minimization. The pass is one write epoch: rows whose annotation
// actually shrinks get a new version, so pinned views taken before the
// pass keep reading the unminimized history. ctx is checked between
// relations; a cancelled pass leaves already-minimized rows minimized
// (minimization is idempotent and preserves equivalence, so a partial
// pass is still a correct state).
func (e *Engine) MinimizeAll(ctx context.Context) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nextSeq == nil {
		e.beginOwnEpoch()
		e.beginEvent(CommitMinimize, "")
		n, err := e.minimizeAllLocked(ctx)
		e.commitOwnEpoch()
		return n, err
	}
	return e.minimizeAllLocked(ctx)
}

func (e *Engine) minimizeAllLocked(ctx context.Context) (int64, error) {
	var n int64
	for _, name := range e.schema.Names() {
		tbl := e.tables[name]
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		for _, r := range tbl.list.snapshot() {
			v := r.latest()
			if e.mode != ModeNormalForm {
				n += v.expr.Size()
				continue
			}
			old := v.nf.ToExpr()
			m := core.Minimize(old)
			n += m.Size()
			if m == old {
				// Hash-consing makes no-op minimizations pointer-equal:
				// skip the version churn for already-minimal rows.
				continue
			}
			wasMatchable := e.matchableV(v)
			nv := e.mutable(r)
			nv.nf = core.NewNF(m)
			if e.collectEv {
				e.evRows = append(e.evRows, RowRef{Rel: name, Tuple: r.tuple})
			}
			// Minimization can collapse a zero-equivalent annotation
			// to syntactic 0, taking the row out of the support.
			if wasMatchable && !e.matchableV(nv) {
				e.indexDead(tbl, r)
			}
		}
	}
	return n, nil
}
