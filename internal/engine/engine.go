package engine

import (
	"context"
	"fmt"
	"sync"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/upstruct"
)

// Mode selects the provenance representation.
type Mode uint8

const (
	// ModeNaive builds raw expressions per the Section 3.1 definitions,
	// applying no axioms ("No axioms" in the paper's graphs).
	ModeNaive Mode = iota
	// ModeNormalForm maintains the Theorem 5.3 normal form
	// incrementally ("Normal form" in the paper's graphs).
	ModeNormalForm
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "No axioms"
	case ModeNormalForm:
		return "Normal form"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// row is one stored tuple with its provenance. Exactly one of expr/nf is
// used, depending on the engine mode. Rows are retained after logical
// deletion (tombstones) so that provenance can be inspected and updates
// can be undone by valuation.
type row struct {
	tuple db.Tuple
	expr  *core.Expr // ModeNaive
	nf    *core.NF   // ModeNormalForm
	txn   int        // last transaction that touched the row (freeze tracking)
	live  bool       // set-semantics membership, maintained per update
	// seq is a global creation sequence number assigned by the sharded
	// engine (0 in a plain Engine): merging the per-shard lists by seq
	// reproduces exactly the insertion order a single engine would have
	// used, independent of shard scheduling.
	seq uint64
	// pos is the row's position in its table's list — unique per table
	// and monotone in insertion order. Posting lists are kept sorted by
	// pos so index scans visit rows in full-scan order, and pos doubles
	// as the membership key for binary-search reinsertion.
	pos int
}

type table struct {
	rel  *db.RelationSchema
	rows map[string]*row
	// list holds the rows in insertion order; rows are never removed
	// (tombstones persist), so scans iterate it for determinism: the
	// order of Σ summands must not depend on map iteration.
	list []*row
}

func (t *table) add(key string, r *row) {
	r.pos = len(t.list)
	t.rows[key] = r
	t.list = append(t.list, r)
}

// config collects the settings shared by both engines; Options mutate
// it before construction.
type config struct {
	cow        bool
	zeroAxioms bool
	liveMatch  bool
	shards     int
	autoIndex  int
	initAnnot  func(rel string, t db.Tuple) core.Annot
}

func newConfig(opts []Option) *config {
	c := &config{cow: true, shards: 1}
	for _, o := range opts {
		o(c)
	}
	if c.shards < 1 {
		c.shards = 1
	}
	return c
}

// Option configures an engine (single or sharded; see Open).
type Option func(*config)

// WithCopyOnWrite controls whether the naive mode deep-copies
// sub-expressions reused across tuples (the paper's implementation
// behaviour; default true). Disabling it is the shared-representation
// ablation: expressions become DAGs, tree sizes stay exponential but
// memory and copying time do not.
func WithCopyOnWrite(cow bool) Option {
	return func(c *config) { c.cow = cow }
}

// WithEagerZeroAxioms makes the naive mode apply the zero-related axioms
// after every annotation update. The paper's "No axioms" configuration
// leaves them off (default false).
func WithEagerZeroAxioms(on bool) Option {
	return func(c *config) { c.zeroAxioms = on }
}

// WithInitialAnnotations overrides the naming of the fresh annotations
// assigned to initial database tuples; f receives the relation name and
// tuple and returns the annotation.
func WithInitialAnnotations(f func(rel string, t db.Tuple) core.Annot) Option {
	return func(c *config) { c.initAnnot = f }
}

// WithShards selects the hash-sharded engine with n independent lock
// domains when passed to Open/OpenEmpty (n ≤ 1 keeps the single
// engine). New and NewEmpty ignore it.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithAutoIndex enables the adaptive index advisor: once a column has
// been pinned to an =-constant by threshold scans without an index of
// its own, the engine builds the index automatically and the planner
// starts using it (each shard of a sharded engine advises its own
// partition). threshold <= 0 disables auto-indexing (the default);
// manual BuildIndex works either way. Indexes never change results —
// only access paths — so enabling this is always safe.
func WithAutoIndex(threshold int) Option {
	return func(c *config) { c.autoIndex = threshold }
}

// WithLiveMatching restricts update selections to semantically live
// tuples instead of the paper's formal support (annotation ≠ 0, which
// includes logically deleted tuples — see Figure 4, where the dead
// Sport bike still participates in T2). Live matching reproduces what a
// conventional reenactment implementation measures — per-tuple
// provenance stays linear in the number of updates that actually
// touched the tuple, comparable to an MV-semiring version chain — but
// it trades away part of the model's hypothetical-reasoning power:
// transaction-abortion valuations can diverge from true re-execution,
// because the effect of a query on a tuple that was dead at the time is
// no longer recorded (deletion propagation of input tuples remains
// exact; see the package tests). Default off.
func WithLiveMatching(on bool) Option {
	return func(c *config) { c.liveMatch = on }
}

// Engine is a provenance-tracking database: every stored tuple carries
// an UP[X] annotation. Construct with New, load tuples through the
// initial database, then apply annotated transactions with
// ApplyTransaction (or Begin/Apply/End for streaming use).
//
// Concurrency: an Engine is safe for concurrent readers while
// transactions are being applied, with transaction granularity.
// ApplyTransaction, ApplyAll, RestoreRow, BuildIndex, DropIndex and
// MinimizeAll take the write lock; Annotation, NF, EachRow, Rows,
// NumRows, IndexStats,
// SupportSize, ProvSize and the package-level valuation entry points
// (Specialize, SpecializeParallel, BoolRestrict*, …) take read locks,
// so any number of provenance-usage queries can run against a
// consistent state between transactions. The Begin/Apply/End streaming
// path is deliberately lock-free — it is the single-goroutine hot path
// the benchmarks measure — and must not be mixed with concurrent
// readers; servers go through ApplyTransaction.
type Engine struct {
	mu sync.RWMutex

	mode      Mode
	schema    *db.Schema
	tables    map[string]*table
	seq       *core.AnnotSeq
	initAnnot func(rel string, t db.Tuple) core.Annot

	cow        bool
	zeroAxioms bool
	liveMatch  bool

	cur     core.Annot
	inTxn   bool
	txnNo   int
	touched []*row

	// nextSeq, when set (by the sharded coordinator, under the write
	// lock), numbers newly created rows with global sequence numbers.
	nextSeq func() uint64

	// idx is the secondary-index manager: per-column hash indexes, the
	// adaptive advisor and the planner counters (see index.go).
	idx *indexManager
}

// New builds an engine in the given mode from an initial database. Each
// initial tuple is annotated with a fresh tuple annotation (t0, t1, …
// unless WithInitialAnnotations overrides the naming); the input
// database is not modified or referenced afterwards.
func New(mode Mode, initial *db.Database, opts ...Option) *Engine {
	cfg := newConfig(opts)
	e := newShell(mode, initial.Schema(), cfg)
	for _, name := range e.schema.Names() {
		tbl := e.tables[name]
		for _, t := range initial.Instance(name).Tuples() {
			a := e.freshAnnot(name, t)
			tbl.add(t.Key(), newRow(mode, t, core.Var(a)))
		}
	}
	return e
}

// newShell builds an engine with empty tables for every relation.
func newShell(mode Mode, schema *db.Schema, cfg *config) *Engine {
	e := &Engine{
		mode:       mode,
		schema:     schema,
		tables:     make(map[string]*table),
		seq:        core.NewAnnotSeq("t", core.KindTuple),
		initAnnot:  cfg.initAnnot,
		cow:        cfg.cow,
		zeroAxioms: cfg.zeroAxioms,
		liveMatch:  cfg.liveMatch,
		idx:        newIndexManager(cfg.autoIndex),
	}
	for _, name := range schema.Names() {
		e.tables[name] = &table{rel: schema.Relation(name), rows: make(map[string]*row)}
	}
	return e
}

// newRow builds a live initial row annotated with the given base
// expression in the representation of the mode.
func newRow(mode Mode, t db.Tuple, base *core.Expr) *row {
	r := &row{tuple: t, txn: -1, live: true}
	if mode == ModeNaive {
		r.expr = base
	} else {
		r.nf = core.NewNF(base)
	}
	return r
}

func (e *Engine) freshAnnot(rel string, t db.Tuple) core.Annot {
	if e.initAnnot != nil {
		return e.initAnnot(rel, t)
	}
	return e.seq.Next()
}

// NewEmpty builds an engine over a schema with no initial tuples, for
// snapshot restoration and streaming ingestion.
func NewEmpty(mode Mode, schema *db.Schema, opts ...Option) *Engine {
	return New(mode, db.NewDatabase(schema), opts...)
}

// RestoreRow stores a tuple with an explicit annotation, overwriting any
// existing row for the same tuple. It is the inverse of EachRow and is
// used by snapshot loading (package provstore); it must not be called
// inside a transaction.
func (e *Engine) RestoreRow(rel string, t db.Tuple, ann *core.Expr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.restoreRowLocked(rel, t, ann)
}

func (e *Engine) restoreRowLocked(rel string, t db.Tuple, ann *core.Expr) error {
	if e.inTxn {
		return fmt.Errorf("engine: RestoreRow inside a transaction")
	}
	tbl := e.tables[rel]
	if tbl == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, rel)
	}
	if err := t.Conforms(tbl.rel); err != nil {
		return fmt.Errorf("engine: %w: %v", ErrBadTuple, err)
	}
	key := t.Key()
	r := tbl.rows[key]
	fresh := r == nil
	wasMatchable := !fresh && e.matchable(r)
	if fresh {
		r = &row{tuple: t, txn: -1}
		e.assignSeq(r)
		tbl.add(key, r)
	}
	if e.mode == ModeNaive {
		r.expr = ann
		r.nf = nil
	} else {
		r.nf = core.NewNF(ann)
		r.expr = nil
	}
	r.live = upstruct.Eval(ann, upstruct.Bool, func(core.Annot) bool { return true })
	switch {
	case fresh, !wasMatchable && e.matchable(r):
		e.indexAdd(tbl, r)
	case wasMatchable && !e.matchable(r):
		e.indexDead(tbl, r)
	}
	return nil
}

// Mode reports the provenance representation in use.
func (e *Engine) Mode() Mode { return e.mode }

// Schema returns the database schema.
func (e *Engine) Schema() *db.Schema { return e.schema }

// Begin starts a transaction whose queries carry the annotation label.
func (e *Engine) Begin(label string) {
	if e.inTxn {
		panic("engine: Begin inside an open transaction")
	}
	e.cur = core.QueryAnnot(label)
	e.inTxn = true
	e.touched = e.touched[:0]
}

// End closes the current transaction. In normal-form mode every touched
// row is frozen so that the next transaction (with a different
// annotation) layers on top.
func (e *Engine) End() {
	if !e.inTxn {
		panic("engine: End without Begin")
	}
	if e.mode == ModeNormalForm {
		for _, r := range e.touched {
			r.nf.Freeze()
		}
	}
	e.inTxn = false
	e.txnNo++
	e.touched = e.touched[:0]
}

func (e *Engine) touch(r *row) {
	if r.txn != e.txnNo {
		r.txn = e.txnNo
		e.touched = append(e.touched, r)
	}
}

// assignSeq numbers a newly created row when a sharded coordinator is
// driving this engine; rows of a plain engine keep seq 0 (their
// tbl.list position already is the insertion order).
func (e *Engine) assignSeq(r *row) {
	if e.nextSeq != nil {
		r.seq = e.nextSeq()
	}
}

// matchable reports whether a row is a candidate for update selections:
// rows in the formal support by default, semantically live rows under
// WithLiveMatching.
func (e *Engine) matchable(r *row) bool {
	if e.liveMatch {
		return r.live
	}
	return r.inSupport(e.mode)
}

// inSupport reports whether the row is in the relation per Section 3.1:
// its annotation is not syntactically 0.
func (r *row) inSupport(mode Mode) bool {
	if mode == ModeNaive {
		return !r.expr.IsZero()
	}
	return !r.nf.IsZero()
}

// Apply executes one update query of the current transaction.
func (e *Engine) Apply(u db.Update) error {
	if !e.inTxn {
		return fmt.Errorf("engine: Apply outside a transaction")
	}
	tbl := e.tables[u.Rel]
	if tbl == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, u.Rel)
	}
	switch u.Kind {
	case db.OpInsert:
		e.applyInsert(tbl, u)
		return nil
	case db.OpDelete:
		e.applyDelete(tbl, u)
		return nil
	case db.OpModify:
		e.applyModify(tbl, u)
		return nil
	default:
		return fmt.Errorf("engine: unknown update kind %v", u.Kind)
	}
}

func (e *Engine) applyInsert(tbl *table, u db.Update) {
	key := u.Row.Key()
	r := tbl.rows[key]
	fresh := r == nil
	wasMatchable := !fresh && e.matchable(r)
	if fresh {
		r = &row{tuple: u.Row, txn: -1}
		if e.mode == ModeNaive {
			r.expr = core.Zero()
		} else {
			r.nf = core.NewNF(core.Zero())
		}
		e.assignSeq(r)
		tbl.add(key, r)
	}
	if e.mode == ModeNaive {
		r.expr = e.simplify(core.PlusI(r.expr, core.Var(e.cur)))
	} else {
		r.nf.Insert(e.cur)
	}
	r.live = true
	if fresh {
		e.indexAdd(tbl, r)
	} else if !wasMatchable {
		// A tombstoned tuple came back to life: its posting entries may
		// have been compacted away, so re-register it.
		e.indexRevive(tbl, r)
	}
	e.touch(r)
}

func (e *Engine) applyDelete(tbl *table, u db.Update) {
	for _, r := range e.scan(tbl, u) {
		e.deleteRow(tbl, r)
	}
}

// deleteRow applies the current query as a deletion (−M for modify
// sources) to one row. Callers only pass matchable rows (scan and
// lookupPinned filter), so a row that is unmatchable afterwards made a
// real transition and its posting entries are marked dead.
func (e *Engine) deleteRow(tbl *table, r *row) {
	if e.mode == ModeNaive {
		r.expr = e.simplify(core.Minus(r.expr, core.Var(e.cur)))
	} else {
		r.nf.Delete(e.cur)
	}
	r.live = false
	if !e.matchable(r) {
		e.indexDead(tbl, r)
	}
	e.touch(r)
}

// lookupPinned returns the one candidate row of a selection whose
// constraints pin every attribute (see db.Pattern.PinnedTuple): only
// the row stored under the pinned key can match, so the full scan
// reduces to a map lookup.
func (e *Engine) lookupPinned(tbl *table, u db.Update, key string) *row {
	r := tbl.rows[key]
	if r == nil || !e.matchable(r) || !u.MatchesTuple(r.tuple) {
		return nil
	}
	return r
}

// modGroup accumulates, per target tuple, the provenance contributions
// of the sources collapsing into it.
type modGroup struct {
	target db.Tuple
	// naive: pre-query source annotations (copied under cow).
	raw []*core.Expr
	// normal form: flattened contributions and the inserted flag.
	contrib  []*core.Expr
	inserted bool
}

func (e *Engine) applyModify(tbl *table, u db.Update) {
	e.applyModifySources(tbl, u, e.scan(tbl, u))
}

// captureContribution records one source row's pre-query annotation in
// its target group (naive: the raw expression, deep-copied under cow;
// normal form: the flattened Contribution).
func (e *Engine) captureContribution(g *modGroup, src *row) {
	if e.mode == ModeNaive {
		contrib := src.expr
		if e.cow {
			contrib = contrib.DeepCopy()
		}
		g.raw = append(g.raw, contrib)
	} else {
		c, ins := src.nf.Contribution()
		g.contrib = append(g.contrib, c...)
		g.inserted = g.inserted || ins
	}
}

// absorbModTarget applies a completed modification group to its target
// row, creating the row if the target tuple was never stored.
func (e *Engine) absorbModTarget(tbl *table, g *modGroup, key string, pe *core.Expr) {
	r := tbl.rows[key]
	fresh := r == nil
	wasMatchable := !fresh && e.matchable(r)
	if fresh {
		r = &row{tuple: g.target, txn: -1}
		if e.mode == ModeNaive {
			r.expr = core.Zero()
		} else {
			r.nf = core.NewNF(core.Zero())
		}
		e.assignSeq(r)
		tbl.add(key, r)
	}
	if e.mode == ModeNaive {
		r.expr = e.simplify(core.PlusM(r.expr, core.DotM(core.Sum(g.raw...), pe)))
	} else {
		r.nf.AbsorbMod(g.contrib, g.inserted, e.cur)
	}
	r.live = true
	if fresh {
		e.indexAdd(tbl, r)
	} else if !wasMatchable {
		e.indexRevive(tbl, r)
	}
	e.touch(r)
}

// applyModifySources runs a modification over the given source rows (in
// deterministic scan order).
func (e *Engine) applyModifySources(tbl *table, u db.Update, sources []*row) {
	if len(sources) == 0 {
		return
	}
	pe := core.Var(e.cur)
	groups := make(map[string]*modGroup)
	var order []string
	for _, src := range sources {
		target := u.Target(src.tuple)
		key := target.Key()
		g := groups[key]
		if g == nil {
			g = &modGroup{target: target}
			groups[key] = g
			order = append(order, key)
		}
		e.captureContribution(g, src)
	}
	// Sources are deleted (−M p) after their pre-query annotations have
	// been captured.
	for _, src := range sources {
		e.deleteRow(tbl, src)
	}
	// Targets receive old +M ((Σ sources) ·M p); a target that is itself
	// a source (necessarily a self-map) uses its post-deletion
	// annotation, yielding the paper's fifth normal-form shape.
	for _, key := range order {
		e.absorbModTarget(tbl, groups[key], key, pe)
	}
}

func (e *Engine) simplify(x *core.Expr) *core.Expr {
	if e.zeroAxioms {
		return core.SimplifyZero(x)
	}
	return x
}

// ApplyTransaction runs a whole transaction (Begin, all queries, End)
// under the write lock: concurrent readers observe the database either
// before or after the transaction, never mid-way.
func (e *Engine) ApplyTransaction(t *db.Transaction) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyTransactionLocked(t)
}

func (e *Engine) applyTransactionLocked(t *db.Transaction) error {
	e.Begin(t.Label)
	for i := range t.Updates {
		if err := e.Apply(t.Updates[i]); err != nil {
			e.End()
			return fmt.Errorf("transaction %s, query %d: %w", t.Label, i, err)
		}
	}
	e.End()
	return nil
}

// ApplyAll runs a sequence of transactions. The write lock is taken per
// transaction, so concurrent readers interleave at transaction
// boundaries during bulk ingestion; ctx is checked between transactions
// and aborts the remainder of the batch when cancelled.
func (e *Engine) ApplyAll(ctx context.Context, txns []db.Transaction) error {
	for i := range txns {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := e.ApplyTransaction(&txns[i]); err != nil {
			return err
		}
	}
	return nil
}

// Annotation returns the provenance expression of the tuple, or nil if
// the tuple was never stored. In normal-form mode the expression is
// materialized from the NF representation.
func (e *Engine) Annotation(rel string, t db.Tuple) *core.Expr {
	e.mu.RLock()
	defer e.mu.RUnlock()
	tbl := e.tables[rel]
	if tbl == nil {
		return nil
	}
	r := tbl.rows[t.Key()]
	if r == nil {
		return nil
	}
	if e.mode == ModeNaive {
		return r.expr
	}
	return r.nf.ToExpr()
}

// NF returns the normal-form value of the tuple in ModeNormalForm, or
// nil. The returned NF must not be mutated.
func (e *Engine) NF(rel string, t db.Tuple) *core.NF {
	if e.mode != ModeNormalForm {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	tbl := e.tables[rel]
	if tbl == nil {
		return nil
	}
	r := tbl.rows[t.Key()]
	if r == nil {
		return nil
	}
	return r.nf
}

// EachRow calls f for every stored row of the relation (including
// tombstones outside the support) with its tuple and annotation, in
// deterministic insertion order (tbl.list, the same order Specialize
// and SpecializeParallel stream rows) — never map order, so snapshot
// bytes and streamed results are stable across runs. In normal-form
// mode annotations are materialized per call. f must not call back into
// the engine (the read lock is held).
func (e *Engine) EachRow(rel string, f func(t db.Tuple, ann *core.Expr)) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.eachRow(rel, f)
}

func (e *Engine) eachRow(rel string, f func(t db.Tuple, ann *core.Expr)) {
	tbl := e.tables[rel]
	if tbl == nil {
		return
	}
	for _, r := range tbl.list {
		if e.mode == ModeNaive {
			f(r.tuple, r.expr)
		} else {
			f(r.tuple, r.nf.ToExpr())
		}
	}
}

// Rows calls f for every stored row of every relation — relations in
// schema order, rows in insertion order — under a single read lock, so
// the visited rows form one consistent snapshot even while transactions
// are applied concurrently. Snapshot saving uses this. f must not call
// back into the engine.
func (e *Engine) Rows(f func(rel string, t db.Tuple, ann *core.Expr)) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, rel := range e.schema.Names() {
		name := rel
		e.eachRow(name, func(t db.Tuple, ann *core.Expr) { f(name, t, ann) })
	}
}

// Relations returns the relation names in schema order.
func (e *Engine) Relations() []string { return e.schema.Names() }

// NumRows reports the total number of stored rows, including tombstones
// and tuples outside the support (the paper's "database size" under
// provenance tracking, which exceeds the plain database by ~2% on
// TPC-C).
func (e *Engine) NumRows() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.numRowsLocked()
}

func (e *Engine) numRowsLocked() int {
	n := 0
	for _, tbl := range e.tables {
		n += len(tbl.rows)
	}
	return n
}

// SupportSize reports the number of rows whose annotation is not
// syntactically zero.
func (e *Engine) SupportSize() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.supportSizeLocked()
}

func (e *Engine) supportSizeLocked() int {
	n := 0
	for _, tbl := range e.tables {
		for _, r := range tbl.rows {
			if r.inSupport(e.mode) {
				n++
			}
		}
	}
	return n
}

// ProvSize reports the total provenance size (tree size summed over all
// stored rows) — the size measure of the paper's Section 6.
func (e *Engine) ProvSize() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.provSizeLocked()
}

func (e *Engine) provSizeLocked() int64 {
	var n int64
	for _, tbl := range e.tables {
		for _, r := range tbl.rows {
			if e.mode == ModeNaive {
				n += r.expr.Size()
			} else {
				n += r.nf.Size()
			}
		}
	}
	return n
}

// ProvDAGSize reports the number of distinct expression nodes backing
// all stored annotations: shared subterms — shared within a row, across
// rows, and across relations — are counted once. With hash-consed
// expressions this is the number of nodes actually held in memory for
// this engine's provenance, the companion measure to ProvSize's
// per-occurrence tree count (the paper's Fig. 7b/8b report the latter;
// the stats endpoint reports both).
func (e *Engine) ProvDAGSize() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	seen := make(map[*core.Expr]struct{})
	return e.provDAGSizeLocked(seen)
}

// provDAGSizeLocked counts distinct nodes into a shared seen set, so a
// sharded engine can union the per-shard counts without double-counting
// nodes shared across shards.
func (e *Engine) provDAGSizeLocked(seen map[*core.Expr]struct{}) int64 {
	var n int64
	for _, tbl := range e.tables {
		for _, r := range tbl.rows {
			if e.mode == ModeNaive {
				n += r.expr.DAGSizeInto(seen)
			} else {
				n += r.nf.ToExpr().DAGSizeInto(seen)
			}
		}
	}
	return n
}

// MinimizeAll applies the zero-axiom post-processing of Proposition 5.5
// to every stored annotation (normal-form mode only; the naive mode is
// deliberately axiom-free). It returns the provenance size after
// minimization. ctx is checked between relations; a cancelled pass
// leaves already-minimized rows minimized (minimization is idempotent
// and preserves equivalence, so a partial pass is still a correct
// state).
func (e *Engine) MinimizeAll(ctx context.Context) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.minimizeAllLocked(ctx)
}

func (e *Engine) minimizeAllLocked(ctx context.Context) (int64, error) {
	var n int64
	for _, tbl := range e.tables {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		for _, r := range tbl.rows {
			if e.mode == ModeNormalForm {
				wasMatchable := e.matchable(r)
				m := core.Minimize(r.nf.ToExpr())
				r.nf = core.NewNF(m)
				n += m.Size()
				// Minimization can collapse a zero-equivalent annotation
				// to syntactic 0, taking the row out of the support.
				if wasMatchable && !e.matchable(r) {
					e.indexDead(tbl, r)
				}
			} else {
				n += r.expr.Size()
			}
		}
	}
	return n, nil
}
