package engine_test

// Differential tests of the columnar row storage. The engine keeps a
// struct-of-arrays mirror of every table and uses it to prefilter
// write-path scans on =-constant terms; an engine whose scans resolve
// through index posting lists (row-wise) instead must reach the exact
// same state — identical rows, identical interned annotation pointers,
// byte-identical snapshots. Randomized workloads drive all three scan
// paths (columnar full scan, posting list, sharded fan-out) against
// each other, and point selections are re-checked against a naive
// row-wise filter of the full relation.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/workload"
)

func columnarConfigs() []workload.Config {
	var cfgs []workload.Config
	for seed := int64(21); seed <= 24; seed++ {
		cfgs = append(cfgs, workload.Config{
			Tuples: 80, Pool: 20, Group: 3, Updates: 50,
			QueriesPerTxn: 4, MergeRatio: 0.4, Seed: seed,
		})
	}
	return cfgs
}

func TestColumnarVsRowWiseDifferential(t *testing.T) {
	for ci, cfg := range columnarConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d_seed%d", ci, cfg.Seed), func(t *testing.T) {
			initial, txns, err := workload.Generate(cfg)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			// colEng scans through the columnar prefilter (no index);
			// idxEng resolves the same selections through posting lists;
			// shEng partitions rows and fans scans out.
			colEng := engine.New(engine.ModeNormalForm, initial)
			idxEng := engine.New(engine.ModeNormalForm, initial)
			if err := idxEng.BuildIndex("R", "grp"); err != nil {
				t.Fatalf("build index: %v", err)
			}
			shEng := engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(3))
			for _, e := range []engine.DB{colEng, idxEng, shEng} {
				if err := e.ApplyAll(context.Background(), txns); err != nil {
					t.Fatalf("apply: %v", err)
				}
			}

			// Row-for-row identity including interned annotation pointers.
			colRows, idxRows := collectRows(colEng), collectRows(idxEng)
			if len(colRows) != len(idxRows) {
				t.Fatalf("row counts differ: columnar %d vs indexed %d", len(colRows), len(idxRows))
			}
			for k, ann := range colRows {
				if idxRows[k] != ann {
					t.Fatalf("row %q: columnar and indexed annotations differ", k)
				}
			}

			// Snapshot byte-identity across all three scan paths.
			colSnap := snapshotBytes(t, colEng)
			if !bytes.Equal(colSnap, snapshotBytes(t, idxEng)) {
				t.Fatal("columnar vs indexed snapshots differ")
			}
			if !bytes.Equal(colSnap, snapshotBytes(t, shEng)) {
				t.Fatal("columnar vs sharded snapshots differ")
			}

			// Point selections against a naive row-wise reference.
			all, err := colEng.Select("R", db.AllPattern(5))
			if err != nil {
				t.Fatalf("select all: %v", err)
			}
			r := rand.New(rand.NewSource(cfg.Seed * 31))
			for trial := 0; trial < 20 && len(all) > 0; trial++ {
				probe := all[r.Intn(len(all))]
				ci := r.Intn(len(probe))
				sel := db.AllPattern(5)
				sel[ci] = db.Const(probe[ci])
				if r.Intn(3) == 0 {
					// Second constant: exercises intersect/filter order.
					cj := r.Intn(len(probe))
					sel[cj] = db.Const(probe[cj])
				}
				var want []db.Tuple
				for _, tu := range all {
					if sel.Matches(tu) {
						want = append(want, tu)
					}
				}
				for name, e := range map[string]engine.DB{"columnar": colEng, "indexed": idxEng, "sharded": shEng} {
					got, err := e.Select("R", sel)
					if err != nil {
						t.Fatalf("%s select: %v", name, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s: selection %v returned %d tuples, reference %d", name, sel, len(got), len(want))
					}
					for i := range got {
						if !got[i].Equal(want[i]) {
							t.Fatalf("%s: selection %v row %d = %v, reference %v", name, sel, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}
