package engine

import "hyperprov/internal/db"

// Commit events are the engine's change-notification bus: every
// committed write epoch — a transaction, a snapshot restore, a
// minimization pass — is announced to an installed CommitHook exactly
// once, in epoch order, immediately after the epoch became visible to
// readers. Subscribers (internal/subscribe) use the events to maintain
// registered what-ifs incrementally: Theorem 5.3 locality guarantees a
// row's normal form depends only on that row's annotation and the query
// annotation, so re-specializing exactly the rows named by an event
// reproduces a from-scratch recompute at the event's horizon.

// CommitKind says what kind of write epoch a CommitEvent announces.
type CommitKind uint8

const (
	// CommitTxn is a committed transaction (ApplyTransaction / ApplyAll /
	// ApplyBatch / Begin…End).
	CommitTxn CommitKind = iota
	// CommitRestore is a RestoreRow epoch (snapshot loading).
	CommitRestore
	// CommitMinimize is a MinimizeAll pass (annotations may have been
	// rewritten to smaller equivalent forms).
	CommitMinimize
	// CommitReset announces that the database identity changed wholesale
	// (engine swap behind a wal.Store, e.g. a follower resync): Rows is
	// empty and subscribers must rebuild from scratch at Seq.
	CommitReset
)

// String names the kind for logs and frames.
func (k CommitKind) String() string {
	switch k {
	case CommitTxn:
		return "txn"
	case CommitRestore:
		return "restore"
	case CommitMinimize:
		return "minimize"
	case CommitReset:
		return "reset"
	default:
		return "unknown"
	}
}

// RowRef names one stored row: the relation and the tuple (the row key
// is Tuple.Key()).
type RowRef struct {
	Rel   string
	Tuple db.Tuple
}

// CommitEvent describes one committed write epoch. Rows lists every row
// the epoch touched (created, annotated, deleted or rewritten), each at
// most once; reading the database At(Seq) observes exactly the state
// the event describes. Events arrive in strictly increasing Epoch
// order per engine (followers renumber epochs from their own bootstrap,
// so epoch values are engine-local).
type CommitEvent struct {
	Epoch uint64
	Seq   uint64 // EpochSeq(Epoch): pass to DB.At to pin the post-event state
	Kind  CommitKind
	Label string // transaction label (CommitTxn only)
	Rows  []RowRef
}

// CommitHook receives commit events. Hooks run on the committing
// goroutine with engine-internal locks held: they must return quickly
// and must never block or call back into the engine's write path
// (reads are fine — they are lock-free). A hook that needs to do real
// work hands the event to its own goroutine (see subscribe.Manager).
type CommitHook func(CommitEvent)
