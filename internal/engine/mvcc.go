package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
)

// Multi-version concurrency control over the epoch<<32|counter sequence
// numbers.
//
// Row storage is append-only at two granularities. Tables never remove
// rows (tombstones persist — that is the paper's Section 3.1 semantics
// already), and with MVCC each row's annotation history is itself
// append-only: a row holds an atomic pointer to an immutable chain of
// versions, each valid over the sequence interval [born of this
// version, born of the next). Writers — still serialized per engine by
// the write lock — publish a new head per touched row per epoch;
// readers pin a horizon sequence on entry and resolve every row against
// it, so Annotation, NF, EachRow, Rows, Specialize* and BoolRestrict*
// run lock-free against a concurrent ApplyAll.
//
// Visibility is published by a single atomic horizon: epoch k's
// mutations become visible exactly when the horizon reaches
// k<<32|seqCounterMask, and the atomic store/load pair carries the
// happens-before edge that makes every version written under epoch ≤ k
// safe to read without locks. Versions born in an epoch beyond the
// reader's horizon are skipped by walking the chain; a row whose
// creation sequence is beyond the horizon is invisible entirely.
//
// The same machinery provides time travel: At(seq) returns a read-only
// View pinned to any committed horizon, and EpochSeq converts a
// transaction epoch to its horizon sequence.

// seqCounterMask is the low (creation-counter) half of a sequence
// number; epoch k is fully visible at horizon k<<32|seqCounterMask.
const seqCounterMask = 1<<32 - 1

// latestMark pins a scan or chunk to the current head versions — the
// writer's own view, which may include its uncommitted epoch.
const latestMark = ^uint64(0)

// EpochSeq returns the horizon sequence at which transaction epoch k is
// fully visible: pass it to DB.At to read the database as of epoch k
// (epoch 0 is the initial database before any transaction).
func EpochSeq(epoch uint64) uint64 { return epoch<<32 | seqCounterMask }

// SeqEpoch returns the transaction epoch of a sequence number (the high
// half); it inverts EpochSeq.
func SeqEpoch(seq uint64) uint64 { return seq >> 32 }

// clampSeq normalizes a requested read horizon: never beyond the
// committed horizon, and never mid-epoch — mutation versions of epoch k
// are born at k<<32, so a cut inside epoch k would expose a
// half-applied transaction. Mid-epoch requests snap down to the last
// fully committed epoch (epoch 0 only ever creates rows, so a partial
// epoch-0 cut is already consistent and passes through).
func clampSeq(seq, horizon uint64) uint64 {
	if seq > horizon {
		seq = horizon
	}
	if seq&seqCounterMask != seqCounterMask && seq>>32 > 0 {
		seq = EpochSeq(seq>>32 - 1)
	}
	return seq
}

// version is one immutable-once-committed state of a row's provenance.
// Exactly one of expr/nf is used, per the engine mode. born is the
// sequence number from which this version is current: the row's own
// creation sequence for the first version, epoch<<32 for in-place
// epoch mutations (a reader at horizon s sees the newest version with
// born ≤ s). The chain via prev is ordered by strictly decreasing born.
//
// A version is mutable only while its epoch is open — it is then
// invisible to every reader (all horizons precede the open epoch) and
// the writer is single-threaded per shard, so in-place updates within
// an epoch are race-free and cost nothing over the pre-MVCC engine.
type version struct {
	prev *version
	born uint64
	expr *core.Expr // ModeNaive
	nf   *core.NF   // ModeNormalForm
	live bool       // set-semantics membership, maintained per update
}

// inSupport reports whether the version is in the relation per Section
// 3.1: its annotation is not syntactically 0.
func (v *version) inSupport(mode Mode) bool {
	if mode == ModeNaive {
		return !v.expr.IsZero()
	}
	return !v.nf.IsZero()
}

// annotation materializes the version's provenance expression.
// Committed normal forms are frozen (shape NFBase), so this is a pure
// read and safe to call concurrently.
func (v *version) annotation(mode Mode) *core.Expr {
	if mode == ModeNaive {
		return v.expr
	}
	return v.nf.ToExpr()
}

// latest returns the row's newest version (the writer's view).
func (r *row) latest() *version { return r.head.Load() }

// at resolves the row at horizon s: the newest version born at or
// before s, or nil when the row did not exist yet.
func (r *row) at(s uint64) *version {
	for v := r.head.Load(); v != nil; v = v.prev {
		if v.born <= s {
			return v
		}
	}
	return nil
}

// rowList is an append-only row slice readable without locks. The
// writer (serialized by the engine write lock) stores the element
// before publishing the new length; readers load the length first and
// clamp against the array they observe, so a torn grow is never
// exposed. Capacity grows by the usual doubling, copying into a fresh
// array — published atomically — so readers never see an array mutated
// underneath an index they already validated.
type rowList struct {
	arr atomic.Pointer[[]*row]
	n   atomic.Int64
}

// len reports the published length.
func (l *rowList) len() int { return int(l.n.Load()) }

// append adds a row at the end. Writer-only (under the engine lock).
func (l *rowList) append(r *row) {
	n := int(l.n.Load())
	arr := l.arr.Load()
	if arr == nil || n == len(*arr) {
		capacity := 16
		if arr != nil && len(*arr) > 0 {
			capacity = 2 * len(*arr)
		}
		grown := make([]*row, capacity)
		if arr != nil {
			copy(grown, *arr)
		}
		arr = &grown
		l.arr.Store(arr)
	}
	(*arr)[n] = r
	l.n.Store(int64(n + 1))
}

// snapshot returns the published prefix as a read-only slice.
func (l *rowList) snapshot() []*row {
	n := int(l.n.Load())
	arr := l.arr.Load()
	if arr == nil {
		return nil
	}
	if n > len(*arr) {
		// The length was published against a newer array than the one we
		// loaded; the prefix we can prove complete is the loaded array.
		n = len(*arr)
	}
	return (*arr)[:n:n]
}

// epochTracker turns out-of-order epoch completions into a monotone
// horizon. Shard workers of a sharded ApplyAll commit epochs as they
// finish, not in dispatch order; the horizon only advances to epoch k
// once every epoch ≤ k has committed, so a pinned reader never observes
// epoch k+1 without k (which would break the prefix-replay equivalence
// the differential tests check). Every allocated epoch must be
// committed exactly once — including transactions skipped after a
// failure — or the horizon stalls.
type epochTracker struct {
	mu      sync.Mutex
	done    map[uint64]struct{}
	low     uint64 // epochs 1..low have all committed
	horizon atomic.Uint64
	note    horizonNote

	// emit, when set, is called under mu for every epoch the horizon
	// newly covers, in increasing epoch order and after the horizon
	// store — the in-order commit-event edge of the sharded engine,
	// whose workers otherwise finish out of dispatch order. It must not
	// block (see CommitHook).
	emit func(epoch uint64)
}

func (t *epochTracker) init() {
	t.done = make(map[uint64]struct{})
	t.horizon.Store(seqCounterMask) // epoch 0 (initial rows) is visible
}

func (t *epochTracker) commit(epoch uint64) {
	t.mu.Lock()
	if epoch != t.low+1 {
		t.done[epoch] = struct{}{}
		t.mu.Unlock()
		return
	}
	from := t.low
	t.low++
	for {
		if _, ok := t.done[t.low+1]; !ok {
			break
		}
		delete(t.done, t.low+1)
		t.low++
	}
	t.horizon.Store(EpochSeq(t.low))
	if t.emit != nil {
		for k := from + 1; k <= t.low; k++ {
			t.emit(k)
		}
	}
	t.mu.Unlock()
	t.note.wake()
}

// horizonNote publishes horizon advances to blocked waiters. The write
// paths are single-threaded per engine (or funneled through the epoch
// tracker), so wake is called once per committed epoch — cheap next to
// the commit itself — while readers that never wait never touch it.
// The bell channel is closed on every advance and lazily re-armed, so a
// waiter loops: check the horizon, grab the bell, check again, sleep.
type horizonNote struct {
	mu sync.Mutex
	ch chan struct{}
}

// wake releases every current waiter. Called after the horizon store,
// so a woken waiter re-reading the horizon observes the new value.
func (n *horizonNote) wake() {
	n.mu.Lock()
	if n.ch != nil {
		close(n.ch)
		n.ch = nil
	}
	n.mu.Unlock()
}

// bell returns a channel closed at the next horizon advance.
func (n *horizonNote) bell() <-chan struct{} {
	n.mu.Lock()
	if n.ch == nil {
		n.ch = make(chan struct{})
	}
	ch := n.ch
	n.mu.Unlock()
	return ch
}

// waitHorizon blocks until horizon() >= seq or ctx is done. The
// check-subscribe-recheck order closes the race with a concurrent wake.
func (n *horizonNote) waitHorizon(ctx context.Context, horizon func() uint64, seq uint64) error {
	for {
		if horizon() >= seq {
			return nil
		}
		bell := n.bell()
		if horizon() >= seq {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-bell:
		}
	}
}

// MVCCStats reports the version-storage state of an engine.
type MVCCStats struct {
	// HorizonEpoch is the newest fully visible transaction epoch.
	HorizonEpoch uint64 `json:"horizonEpoch"`
	// HorizonSeq is the committed read horizon (EpochSeq(HorizonEpoch)).
	HorizonSeq uint64 `json:"horizonSeq"`
	// Epochs counts allocated write epochs (transactions, restores and
	// minimization passes), including any still uncommitted.
	Epochs uint64 `json:"epochs"`
	// Versions counts row versions ever created, initial rows included.
	Versions uint64 `json:"versions"`
}

// Horizon returns the newest committed read horizon; At(Horizon())
// pins the current state.
func (e *Engine) Horizon() uint64 { return e.visibleSeq.Load() }

// WaitHorizon blocks until the committed horizon reaches seq or ctx is
// done. This is the horizon-publication hook replication followers (and
// fenced reads) build on: a follower replaying a leader's log can park
// readers until the epoch they demand has been replayed, without
// polling. Sequences that are already visible return immediately.
func (e *Engine) WaitHorizon(ctx context.Context, seq uint64) error {
	return e.hzNote.waitHorizon(ctx, e.Horizon, seq)
}

// At returns a read-only view of the database at the given horizon
// sequence (see EpochSeq), clamped to the committed horizon and snapped
// down to an epoch boundary. The view is immutable and lock-free: it
// stays byte-identical no matter how many transactions commit after it
// was taken.
func (e *Engine) At(seq uint64) View {
	return &engineView{e: e, s: clampSeq(seq, e.Horizon())}
}

// MVCCStats reports the engine's version-storage counters.
func (e *Engine) MVCCStats() MVCCStats {
	h := e.Horizon()
	return MVCCStats{
		HorizonEpoch: SeqEpoch(h),
		HorizonSeq:   h,
		Epochs:       e.epoch.Load(),
		Versions:     e.versions.Load(),
	}
}

// Horizon returns the newest committed read horizon across all shards:
// the largest sequence s such that every epoch ≤ SeqEpoch(s) has
// committed on every shard it touched.
func (se *ShardedEngine) Horizon() uint64 { return se.tracker.horizon.Load() }

// WaitHorizon blocks until the cross-shard committed horizon reaches
// seq or ctx is done (see Engine.WaitHorizon).
func (se *ShardedEngine) WaitHorizon(ctx context.Context, seq uint64) error {
	return se.tracker.note.waitHorizon(ctx, se.Horizon, seq)
}

// At returns a read-only view of the sharded database at the given
// horizon sequence (see Engine.At).
func (se *ShardedEngine) At(seq uint64) View {
	return &shardedView{se: se, s: clampSeq(seq, se.Horizon())}
}

// MVCCStats reports version-storage counters summed over shards.
func (se *ShardedEngine) MVCCStats() MVCCStats {
	h := se.Horizon()
	st := MVCCStats{HorizonEpoch: SeqEpoch(h), HorizonSeq: h, Epochs: se.epoch.Load()}
	for _, sh := range se.shards {
		st.Versions += sh.versions.Load()
	}
	return st
}

// engineView is a single-engine database pinned at one horizon. All
// methods are lock-free reads against the version chains.
type engineView struct {
	e *Engine
	s uint64
}

func (v *engineView) Mode() Mode          { return v.e.mode }
func (v *engineView) Schema() *db.Schema  { return v.e.schema }
func (v *engineView) Relations() []string { return v.e.schema.Names() }

// AsOf returns the horizon sequence the view is pinned to.
func (v *engineView) AsOf() uint64 { return v.s }

func (v *engineView) Annotation(rel string, t db.Tuple) *core.Expr {
	return v.e.annotationAt(rel, t, v.s)
}

func (v *engineView) NF(rel string, t db.Tuple) *core.NF {
	return v.e.nfAt(rel, t, v.s)
}

func (v *engineView) EachRow(rel string, f func(t db.Tuple, ann *core.Expr)) {
	v.e.eachRowAt(rel, v.s, f)
}

func (v *engineView) Rows(f func(rel string, t db.Tuple, ann *core.Expr)) {
	v.e.rowsAt(v.s, f)
}

func (v *engineView) Select(rel string, sel db.Pattern) ([]db.Tuple, error) {
	return v.e.selectAt(rel, sel, v.s)
}

func (v *engineView) NumRows() int     { return v.e.numRowsAt(v.s) }
func (v *engineView) SupportSize() int { return v.e.supportSizeAt(v.s) }
func (v *engineView) ProvSize() int64  { return v.e.provSizeAt(v.s) }
func (v *engineView) ProvDAGSize() int64 {
	return v.e.provDAGSizeAt(make(map[*core.Expr]struct{}), v.s)
}

// shardedView is a sharded database pinned at one horizon.
type shardedView struct {
	se *ShardedEngine
	s  uint64
}

func (v *shardedView) Mode() Mode          { return v.se.mode }
func (v *shardedView) Schema() *db.Schema  { return v.se.schema }
func (v *shardedView) Relations() []string { return v.se.schema.Names() }

// AsOf returns the horizon sequence the view is pinned to.
func (v *shardedView) AsOf() uint64 { return v.s }

func (v *shardedView) Annotation(rel string, t db.Tuple) *core.Expr {
	return v.se.shardFor(t).annotationAt(rel, t, v.s)
}

func (v *shardedView) NF(rel string, t db.Tuple) *core.NF {
	return v.se.shardFor(t).nfAt(rel, t, v.s)
}

func (v *shardedView) EachRow(rel string, f func(t db.Tuple, ann *core.Expr)) {
	v.se.eachRowAt(rel, v.s, f)
}

func (v *shardedView) Rows(f func(rel string, t db.Tuple, ann *core.Expr)) {
	v.se.rowsAt(v.s, f)
}

func (v *shardedView) Select(rel string, sel db.Pattern) ([]db.Tuple, error) {
	return v.se.selectAt(rel, sel, v.s)
}

func (v *shardedView) NumRows() int     { return v.se.numRowsAt(v.s) }
func (v *shardedView) SupportSize() int { return v.se.supportSizeAt(v.s) }
func (v *shardedView) ProvSize() int64  { return v.se.provSizeAt(v.s) }
func (v *shardedView) ProvDAGSize() int64 {
	return v.se.provDAGSizeAt(v.s)
}

var (
	_ View = (*engineView)(nil)
	_ View = (*shardedView)(nil)
)

// --- horizon-pinned reads of the single engine --------------------------

func (e *Engine) annotationAt(rel string, t db.Tuple, s uint64) *core.Expr {
	tbl := e.tables[rel]
	if tbl == nil {
		return nil
	}
	// Fingerprint probe: the steady-state point lookup allocates nothing
	// (enforced by TestAllocFreeReads), and no Key() string is built.
	r := tbl.get(t.Fingerprint(), t)
	if r == nil {
		return nil
	}
	v := r.at(s)
	if v == nil {
		return nil
	}
	return v.annotation(e.mode)
}

func (e *Engine) nfAt(rel string, t db.Tuple, s uint64) *core.NF {
	if e.mode != ModeNormalForm {
		return nil
	}
	tbl := e.tables[rel]
	if tbl == nil {
		return nil
	}
	r := tbl.get(t.Fingerprint(), t)
	if r == nil {
		return nil
	}
	v := r.at(s)
	if v == nil {
		return nil
	}
	return v.nf
}

func (e *Engine) eachRowAt(rel string, s uint64, f func(t db.Tuple, ann *core.Expr)) {
	tbl := e.tables[rel]
	if tbl == nil {
		return
	}
	for _, r := range tbl.list.snapshot() {
		if r.seq > s {
			// A plain engine's writes are serialized under one lock, so
			// list order is sequence order and the visible rows form a
			// prefix. (Shard partitions are read through mergedRowsAt,
			// which sorts, never through this early exit.)
			break
		}
		v := r.at(s)
		if v == nil {
			continue
		}
		f(r.tuple, v.annotation(e.mode))
	}
}

func (e *Engine) rowsAt(s uint64, f func(rel string, t db.Tuple, ann *core.Expr)) {
	for _, rel := range e.schema.Names() {
		name := rel
		e.eachRowAt(name, s, func(t db.Tuple, ann *core.Expr) { f(name, t, ann) })
	}
}

func (e *Engine) numRowsAt(s uint64) int {
	n := 0
	for _, name := range e.schema.Names() {
		tbl := e.tables[name]
		// Visibility counting walks the contiguous sequence vector; no
		// row pointer is touched.
		for _, q := range tbl.cols.seqPrefix(tbl.list.len()) {
			if q <= s {
				n++
			}
		}
	}
	return n
}

func (e *Engine) supportSizeAt(s uint64) int {
	n := 0
	for _, name := range e.schema.Names() {
		for _, r := range e.tables[name].list.snapshot() {
			if v := r.at(s); v != nil && v.inSupport(e.mode) {
				n++
			}
		}
	}
	return n
}

func (e *Engine) provSizeAt(s uint64) int64 {
	var n int64
	for _, name := range e.schema.Names() {
		for _, r := range e.tables[name].list.snapshot() {
			v := r.at(s)
			if v == nil {
				continue
			}
			if e.mode == ModeNaive {
				n += v.expr.Size()
			} else {
				n += v.nf.Size()
			}
		}
	}
	return n
}

// provDAGSizeAt counts distinct nodes into a shared seen set, so a
// sharded engine can union the per-shard counts without double-counting
// nodes shared across shards.
func (e *Engine) provDAGSizeAt(seen map[*core.Expr]struct{}, s uint64) int64 {
	var n int64
	for _, name := range e.schema.Names() {
		for _, r := range e.tables[name].list.snapshot() {
			v := r.at(s)
			if v == nil {
				continue
			}
			n += v.annotation(e.mode).DAGSizeInto(seen)
		}
	}
	return n
}
