package engine_test

import (
	"context"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/upstruct"
)

func TestDependencies(t *testing.T) {
	e := engine.New(engine.ModeNormalForm, productsDB(t), engine.WithInitialAnnotations(figure1Annots()))
	if err := e.ApplyAll(context.Background(), []db.Transaction{transactionT1(), transactionT2()}); err != nil {
		t.Fatal(err)
	}
	bike50 := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(50)}
	tuples, txns := engine.Dependencies(e, "Products", bike50)
	// The normal form already applied Rule 2 inside T1, so p3 (whose
	// contribution a naive expression would still mention) is gone: the
	// tuple's fate depends only on p1 and the two transactions. This is
	// the equivalence-invariance payoff — dependencies reflect the
	// computation's essence, not its phrasing.
	wantTuples := []string{"p1"}
	wantTxns := []string{"p", "p'"}
	if len(tuples) != len(wantTuples) || len(txns) != len(wantTxns) {
		t.Fatalf("Dependencies = %v / %v, want %v / %v", tuples, txns, wantTuples, wantTxns)
	}
	for i, w := range wantTuples {
		if tuples[i].Name != w {
			t.Errorf("tuple dep %d = %s, want %s", i, tuples[i].Name, w)
		}
	}
	for i, w := range wantTxns {
		if txns[i].Name != w {
			t.Errorf("txn dep %d = %s, want %s", i, txns[i].Name, w)
		}
	}
	if tu, tx := engine.Dependencies(e, "Products", db.Tuple{db.S("nope"), db.S("x"), db.I(1)}); tu != nil || tx != nil {
		t.Error("missing tuple must have nil dependencies")
	}
}

// TestImpactAgainstGlobalValuation: Flipped must coincide with the
// difference between the all-true database and the database with the
// annotation revoked, computed globally.
func TestImpactAgainstGlobalValuation(t *testing.T) {
	r := rand.New(rand.NewSource(431))
	for trial := 0; trial < 25; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		txns := randTxns(r, 2, 4)
		annotOf := func(rel string, tu db.Tuple) core.Annot {
			return core.TupleAnnot("t_" + tu.Key())
		}
		e := engine.New(engine.ModeNormalForm, initial, engine.WithInitialAnnotations(annotOf))
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		im := engine.BuildImpact(e)
		if im.NumAnnotations() == 0 {
			t.Fatal("empty impact index")
		}
		// Pick one tuple annotation and one transaction annotation.
		var probes []core.Annot
		initial.Instance("R").Each(func(tu db.Tuple) {
			if len(probes) == 0 {
				probes = append(probes, annotOf("R", tu))
			}
		})
		probes = append(probes, core.QueryAnnot(txns[0].Label))
		for _, a := range probes {
			before := engine.LiveDB(e)
			after := engine.BoolRestrict(e, upstruct.MapEnv(map[core.Annot]bool{a: false}, true))
			// Global flip set.
			flipped := make(map[string]bool)
			before.Instance("R").Each(func(tu db.Tuple) {
				if !after.Instance("R").Contains(tu) {
					flipped[tu.Key()] = true
				}
			})
			after.Instance("R").Each(func(tu db.Tuple) {
				if !before.Instance("R").Contains(tu) {
					flipped[tu.Key()] = true
				}
			})
			_, got := im.Flipped(a)
			gotSet := make(map[string]bool, len(got))
			for _, tu := range got {
				gotSet[tu.Key()] = true
			}
			if len(gotSet) != len(flipped) {
				t.Fatalf("trial %d, annot %v: Flipped has %d rows, global diff %d", trial, a, len(gotSet), len(flipped))
			}
			for k := range flipped {
				if !gotSet[k] {
					t.Fatalf("trial %d, annot %v: missing flipped row %q", trial, a, k)
				}
			}
		}
	}
}

func TestImpactCandidatesSuperset(t *testing.T) {
	e := engine.New(engine.ModeNormalForm, productsDB(t), engine.WithInitialAnnotations(figure1Annots()))
	if err := e.ApplyAll(context.Background(), []db.Transaction{transactionT1(), transactionT2()}); err != nil {
		t.Fatal(err)
	}
	im := engine.BuildImpact(e)
	rels, cands := im.Candidates(core.QueryAnnot("p"))
	if len(cands) == 0 || len(rels) != len(cands) {
		t.Fatal("no candidates for transaction p")
	}
	_, flipped := im.Flipped(core.QueryAnnot("p"))
	if len(flipped) > len(cands) {
		t.Error("flipped rows must be a subset of candidates")
	}
	// p4's tuple is untouched: no candidates beyond itself.
	_, p4 := im.Candidates(core.TupleAnnot("p4"))
	if len(p4) != 1 {
		t.Errorf("p4 should only reach its own row, got %d", len(p4))
	}
}

func TestParallelSpecializeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(433))
	initial := randDB(r, 20)
	txns := randTxns(r, 3, 5)
	e := engine.New(engine.ModeNormalForm, initial)
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	env := func(a core.Annot) bool { return a.Name != "q1" }
	seq := engine.BoolRestrict(e, env)
	for _, workers := range []int{0, 1, 2, 8} {
		par, err := engine.BoolRestrictParallel(context.Background(), e, env, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Equal(seq) {
			t.Errorf("workers=%d: parallel result diverges:\n%s", workers, par.Diff(seq))
		}
	}
}
