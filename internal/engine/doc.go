// Package engine executes annotated hyperplane update transactions over
// annotated databases, implementing the provenance-aware semantics of
// Section 3.1 of Bourhis, Deutch, Moskovitch (SIGMOD 2020).
//
// The engine runs in one of two modes:
//
//   - ModeNaive follows the provenance definitions literally, building
//     raw UP[X] expressions with no simplification (the paper's "No
//     axioms" configuration). Sub-expressions reused by modifications
//     are deep-copied by default, reproducing the time and memory
//     blowup of Section 5.1 (configurable via WithCopyOnWrite for the
//     shared-representation ablation).
//
//   - ModeNormalForm maintains every tuple's provenance in the normal
//     form of Theorem 5.3, updated incrementally per query by the
//     rewrite rules of Figure 6 and frozen at transaction boundaries
//     (the paper's "Normal form" configuration). Provenance stays
//     linear in the database size and transaction length.
//
// Following Section 3.1 and the discussion in Section 6.2, deleted and
// modified tuples are not removed: a tuple is in the support of a
// relation iff its annotation is not syntactically 0, and subsequent
// queries are applied to all supported tuples — the axioms guarantee
// that logically deleted tuples contribute nothing. The plain engine of
// package db defines the ground-truth set semantics, which must (and,
// per the package tests, does) coincide with the all-true Boolean
// valuation of either provenance mode.
//
// Specialization helpers (Specialize, LiveDB, DeletionPropagation,
// AbortTransactions, AccessControl, Certify) map the symbolic
// provenance into concrete Update-Structures for the applications of
// Section 4.
package engine
