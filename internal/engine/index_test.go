package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// applyTxns applies transactions and fails the test on error.
func applyTxns(t *testing.T, e engine.DB, txns []db.Transaction) {
	t.Helper()
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
}

// findIndex returns the IndexInfo for rel.attr, or nil.
func findIndex(infos []engine.IndexInfo, rel, attr string) *engine.IndexInfo {
	for i := range infos {
		if infos[i].Rel == rel && infos[i].Attr == attr {
			return &infos[i]
		}
	}
	return nil
}

// TestPostingListBoundedAfterChurn is the tombstone-bloat regression
// test: under live matching, rounds of insert-then-delete churn must not
// grow posting lists without bound — amortized compaction has to keep
// the stored entries proportional to the matchable rows, not to the
// total rows ever inserted.
func TestPostingListBoundedAfterChurn(t *testing.T) {
	e := engine.New(engine.ModeNormalForm, randDB(rand.New(rand.NewSource(1)), 0),
		engine.WithLiveMatching(true))
	if err := e.BuildIndex("R", "cat"); err != nil {
		t.Fatal(err)
	}
	const rounds, perRound = 30, 50
	id := int64(1000) // distinct ids each round, so every row is fresh
	for round := 0; round < rounds; round++ {
		var ins db.Transaction
		ins.Label = fmt.Sprintf("ins%d", round)
		for i := 0; i < perRound; i++ {
			ins.Updates = append(ins.Updates, db.Insert("R",
				db.Tuple{db.I(id), db.S("a"), db.I(int64(i))}))
			id++
		}
		del := db.Transaction{Label: fmt.Sprintf("del%d", round), Updates: []db.Update{
			db.Delete("R", db.Pattern{db.AnyVar("id"), db.Const(db.S("a")), db.AnyVar("v")}),
		}}
		applyTxns(t, e, []db.Transaction{ins, del})
	}
	info := findIndex(e.IndexStats(), "R", "cat")
	if info == nil {
		t.Fatal("index on R.cat disappeared")
	}
	total := rounds * perRound
	// Every round ends with zero live "a" rows; without compaction the
	// list would hold all `total` tombstones. The 50% dead trigger bounds
	// the stored entries by roughly one round's worth of churn.
	if bound := 2*perRound + 2; info.Entries > bound {
		t.Fatalf("posting-list bloat: %d entries stored after churning %d rows (want <= %d)",
			info.Entries, total, bound)
	}
	if info.Compactions == 0 {
		t.Fatal("no compaction sweeps ran during churn")
	}
	if info.Dead > info.Entries {
		t.Fatalf("dead count %d exceeds stored entries %d", info.Dead, info.Entries)
	}
	if ps := e.PlannerStats(); ps.Compactions == 0 {
		t.Fatal("planner counters did not record the compactions")
	}
}

// TestBuildIndexTwiceCoexists: building an index twice is a no-op, and
// indexes on different columns coexist — the second build must not
// silently replace the first.
func TestBuildIndexTwiceCoexists(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	e := engine.New(engine.ModeNormalForm, randDB(r, 20))
	for _, attr := range []string{"id", "id", "cat"} { // "id" twice on purpose
		if err := e.BuildIndex("R", attr); err != nil {
			t.Fatalf("BuildIndex(R, %s): %v", attr, err)
		}
	}
	infos := e.IndexStats()
	if len(infos) != 2 {
		t.Fatalf("want 2 coexisting indexes after duplicate build, got %d: %+v", len(infos), infos)
	}
	if findIndex(infos, "R", "id") == nil || findIndex(infos, "R", "cat") == nil {
		t.Fatalf("expected indexes on R.id and R.cat, got %+v", infos)
	}

	// Both indexes serve scans: pin id only, then cat only.
	before := e.PlannerStats()
	applyTxns(t, e, []db.Transaction{{Label: "q0", Updates: []db.Update{
		db.Delete("R", db.Pattern{db.Const(db.I(1)), db.AnyVar("c"), db.AnyVar("v")}),
		db.Delete("R", db.Pattern{db.AnyVar("i"), db.Const(db.S("a")), db.AnyVar("v")}),
	}}})
	after := e.PlannerStats()
	if got := after.IndexScans - before.IndexScans; got != 2 {
		t.Fatalf("want both single-column selections index-scanned, got %d index scans", got)
	}

	// The duplicate build kept the existing index complete: results match
	// an unindexed engine.
	plain := engine.New(engine.ModeNormalForm, randDB(rand.New(rand.NewSource(7)), 20))
	applyTxns(t, plain, []db.Transaction{{Label: "q0", Updates: []db.Update{
		db.Delete("R", db.Pattern{db.Const(db.I(1)), db.AnyVar("c"), db.AnyVar("v")}),
		db.Delete("R", db.Pattern{db.AnyVar("i"), db.Const(db.S("a")), db.AnyVar("v")}),
	}}})
	diffStreams(t, "build-twice", streamRows(plain), streamRows(e))
}

// TestDropIndexErrors: dropping an index that does not exist — never
// built, wrong attribute, or already dropped — returns the typed
// sentinel, and the relation itself is still validated.
func TestDropIndexErrors(t *testing.T) {
	e := engine.New(engine.ModeNaive, randDB(rand.New(rand.NewSource(11)), 5))
	if err := e.DropIndex("R", "id"); !errors.Is(err, engine.ErrUnknownIndex) {
		t.Fatalf("dropping a never-built index: want ErrUnknownIndex, got %v", err)
	}
	if err := e.DropIndex("Nope", "id"); !errors.Is(err, engine.ErrUnknownRelation) {
		t.Fatalf("dropping on unknown relation: want ErrUnknownRelation, got %v", err)
	}
	if err := e.BuildIndex("R", "id"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("R", "cat"); !errors.Is(err, engine.ErrUnknownIndex) {
		t.Fatalf("dropping wrong attribute: want ErrUnknownIndex, got %v", err)
	}
	if err := e.DropIndex("R", "id"); err != nil {
		t.Fatalf("dropping an existing index: %v", err)
	}
	if err := e.DropIndex("R", "id"); !errors.Is(err, engine.ErrUnknownIndex) {
		t.Fatalf("double drop: want ErrUnknownIndex, got %v", err)
	}
	if err := e.BuildIndex("R", "nope"); !errors.Is(err, engine.ErrUnknownAttribute) {
		t.Fatalf("building on unknown attribute: want ErrUnknownAttribute, got %v", err)
	}
	if n := len(e.IndexStats()); n != 0 {
		t.Fatalf("want no indexes after drop, got %d", n)
	}
}

// TestPlannerNotEqFallback: selections whose only constraints are ≠
// never use an index (the planner has no =-pinned candidate column) and
// fall back to the full scan; mixed =/≠ selections use the index on the
// =-column and filter the ≠ per row. Both shapes must produce the same
// result as an unindexed engine.
func TestPlannerNotEqFallback(t *testing.T) {
	mk := func() []db.Transaction {
		return []db.Transaction{
			{Label: "q0", Updates: []db.Update{
				// ≠-only: no index candidate.
				db.Delete("R", db.Pattern{db.AnyVar("i"), db.VarNotEq("c", db.S("a")), db.AnyVar("v")}),
			}},
			{Label: "q1", Updates: []db.Update{
				// mixed =/≠: cat is pinned, val is ≠-constrained.
				db.Modify("R",
					db.Pattern{db.AnyVar("i"), db.Const(db.S("b")), db.VarNotEq("v", db.I(0))},
					[]db.SetClause{db.Keep(), db.Keep(), db.SetTo(db.I(9))}),
			}},
			{Label: "q2", Updates: []db.Update{
				// =-pinned on both indexed columns.
				db.Delete("R", db.Pattern{db.Const(db.I(2)), db.Const(db.S("c")), db.AnyVar("v")}),
			}},
		}
	}
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		plain := engine.New(mode, randDB(rand.New(rand.NewSource(23)), 40))
		indexed := engine.New(mode, randDB(rand.New(rand.NewSource(23)), 40))
		for _, attr := range []string{"id", "cat"} {
			if err := indexed.BuildIndex("R", attr); err != nil {
				t.Fatal(err)
			}
		}
		applyTxns(t, plain, mk())
		applyTxns(t, indexed, mk())
		diffStreams(t, mode.String(), streamRows(plain), streamRows(indexed))

		ps := indexed.PlannerStats()
		if ps.FullScans == 0 {
			t.Fatalf("%s: ≠-only selection did not fall back to a full scan: %+v", mode, ps)
		}
		if ps.IndexScans == 0 {
			t.Fatalf("%s: =-pinned selections did not use the index: %+v", mode, ps)
		}
	}
}

// TestPlannerAbsentValueShortCircuits: an =-pinned value with no posting
// list proves the selection empty — the scan must return no rows (and be
// counted as an index scan), leaving annotations untouched.
func TestPlannerAbsentValueShortCircuits(t *testing.T) {
	e := engine.New(engine.ModeNormalForm, randDB(rand.New(rand.NewSource(29)), 10))
	if err := e.BuildIndex("R", "id"); err != nil {
		t.Fatal(err)
	}
	before := streamRows(e)
	stats := e.PlannerStats()
	applyTxns(t, e, []db.Transaction{{Label: "q0", Updates: []db.Update{
		db.Delete("R", db.Pattern{db.Const(db.I(999)), db.AnyVar("c"), db.AnyVar("v")}),
	}}})
	if got := e.PlannerStats().IndexScans - stats.IndexScans; got != 1 {
		t.Fatalf("absent-value probe not counted as an index scan (delta %d)", got)
	}
	diffStreams(t, "absent value", before, streamRows(e))
}

// TestAutoIndexAdvisor: with WithAutoIndex(n), the n'th =-pinned scan of
// an unindexed column builds its index automatically — visible in
// IndexStats as Auto and in the planner counters — and the resulting
// engine stays row-identical to an unindexed one.
func TestAutoIndexAdvisor(t *testing.T) {
	const threshold = 3
	mk := func() []db.Transaction {
		var txns []db.Transaction
		for i := 0; i < threshold+2; i++ {
			txns = append(txns, db.Transaction{Label: fmt.Sprintf("q%d", i), Updates: []db.Update{
				db.Modify("R",
					db.Pattern{db.AnyVar("i"), db.Const(db.S(testCats[i%len(testCats)])), db.AnyVar("v")},
					[]db.SetClause{db.Keep(), db.Keep(), db.SetTo(db.I(int64(i)))}),
			}})
		}
		return txns
	}
	plain := engine.New(engine.ModeNormalForm, randDB(rand.New(rand.NewSource(31)), 30))
	auto := engine.New(engine.ModeNormalForm, randDB(rand.New(rand.NewSource(31)), 30),
		engine.WithAutoIndex(threshold))
	applyTxns(t, plain, mk())
	applyTxns(t, auto, mk())
	diffStreams(t, "auto-index", streamRows(plain), streamRows(auto))

	info := findIndex(auto.IndexStats(), "R", "cat")
	if info == nil {
		t.Fatalf("advisor did not build the R.cat index: %+v", auto.IndexStats())
	}
	if !info.Auto {
		t.Fatal("advisor-built index not marked Auto")
	}
	ps := auto.PlannerStats()
	if ps.AutoBuilds != 1 {
		t.Fatalf("want exactly 1 auto build, got %d", ps.AutoBuilds)
	}
	if ps.IndexScans == 0 {
		t.Fatal("scans after the auto build did not use the index")
	}
	// id was never pinned often enough; no index may appear there.
	if findIndex(auto.IndexStats(), "R", "id") != nil {
		t.Fatal("advisor built an index on a column that never crossed the threshold")
	}

	// BuildIndex on the advisor's index adopts it as manual (idempotent).
	if err := auto.BuildIndex("R", "cat"); err != nil {
		t.Fatal(err)
	}
	if info := findIndex(auto.IndexStats(), "R", "cat"); info == nil || info.Auto {
		t.Fatalf("manual BuildIndex did not adopt the auto index: %+v", info)
	}
	// And a dropped auto index must re-earn its build.
	if err := auto.DropIndex("R", "cat"); err != nil {
		t.Fatal(err)
	}
	if findIndex(auto.IndexStats(), "R", "cat") != nil {
		t.Fatal("index survived DropIndex")
	}
}

// TestAnnotationsIdenticalUnderIndexes: the Theorem 5.3 license in full —
// random workloads leave every annotation structurally identical whether
// resolved by full scans, manual indexes on every column, or the
// advisor, including revival of tombstoned tuples.
func TestAnnotationsIdenticalUnderIndexes(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 25; trial++ {
		initial := randDB(r, 4+r.Intn(12))
		txns := randTxns(r, 2+r.Intn(2), 3+r.Intn(4))
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			plain := engine.New(mode, initial)
			manual := engine.New(mode, initial)
			for _, attr := range []string{"id", "cat", "val"} {
				if err := manual.BuildIndex("R", attr); err != nil {
					t.Fatal(err)
				}
			}
			auto := engine.New(mode, initial, engine.WithAutoIndex(2))
			applyTxns(t, plain, txns)
			applyTxns(t, manual, txns)
			applyTxns(t, auto, txns)
			want := streamRows(plain)
			diffStreams(t, fmt.Sprintf("trial %d %s manual", trial, mode), want, streamRows(manual))
			diffStreams(t, fmt.Sprintf("trial %d %s auto", trial, mode), want, streamRows(auto))
			plain.EachRow("R", func(tu db.Tuple, ann *core.Expr) {
				if other := manual.Annotation("R", tu); other == nil || !ann.Equal(other) {
					t.Errorf("trial %d %s: annotation of %v differs under manual indexes", trial, mode, tu)
				}
			})
		}
	}
}
