package engine_test

import (
	"context"
	"sync"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/upstruct"
	"hyperprov/internal/workload"
)

// visit identifies one streamed row.
type visit struct {
	rel string
	key string
}

func workloadEngine(t *testing.T, mode engine.Mode) (*engine.Engine, []db.Transaction) {
	t.Helper()
	cfg := workload.Default(0.002)
	cfg.QueriesPerTxn = 5
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return engine.New(mode, initial), txns
}

func specializeOrder(e *engine.Engine) []visit {
	var seq []visit
	engine.Specialize[bool](e, upstruct.Bool, func(core.Annot) bool { return true },
		func(rel string, tp db.Tuple, v bool) {
			seq = append(seq, visit{rel: rel, key: tp.Key()})
		})
	return seq
}

// TestSpecializeDeterministicOrder asserts that the serial and parallel
// provenance-usage paths stream rows of each relation in the same,
// deterministic sequence: insertion order via tbl.list, never map
// order. Specialize used to iterate the rows map, so the serial and
// parallel paths disagreed and reruns shuffled the Σ summand order.
func TestSpecializeDeterministicOrder(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		t.Run(mode.String(), func(t *testing.T) {
			e, txns := workloadEngine(t, mode)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}

			serial := specializeOrder(e)
			if len(serial) != e.NumRows() {
				t.Fatalf("Specialize visited %d rows, engine stores %d", len(serial), e.NumRows())
			}
			if again := specializeOrder(e); !equalVisits(serial, again) {
				t.Fatal("two Specialize passes visited rows in different orders")
			}

			// EachRow must agree with Specialize relation by relation.
			var each []visit
			for _, rel := range e.Relations() {
				e.EachRow(rel, func(tp db.Tuple, ann *core.Expr) {
					each = append(each, visit{rel: rel, key: tp.Key()})
				})
			}
			if !equalVisits(filterRel(serial, e.Relations()), each) {
				t.Fatal("EachRow and Specialize disagree on row order")
			}

			// The parallel path chunks tbl.list in order; with the visit
			// sequence recorded under a mutex and the per-chunk
			// subsequences stitched back by position, every relation must
			// see exactly the serial sequence. Chunks interleave, so we
			// compare positions, not arrival order: each worker records
			// (index within relation) → row, which must match serial.
			perRel := make(map[string][]visit)
			for _, v := range serial {
				perRel[v.rel] = append(perRel[v.rel], v)
			}
			var mu sync.Mutex
			got := make(map[string]map[string]int) // rel → key → count
			var parSeq []visit
			if err := engine.SpecializeParallel[bool](context.Background(), e, upstruct.Bool,
				func(core.Annot) bool { return true }, 4,
				func(rel string, tp db.Tuple, v bool) {
					mu.Lock()
					defer mu.Unlock()
					if got[rel] == nil {
						got[rel] = make(map[string]int)
					}
					got[rel][tp.Key()]++
					parSeq = append(parSeq, visit{rel: rel, key: tp.Key()})
				}); err != nil {
				t.Fatal(err)
			}
			if len(parSeq) != len(serial) {
				t.Fatalf("parallel visited %d rows, serial %d", len(parSeq), len(serial))
			}
			for rel, rows := range perRel {
				for _, v := range rows {
					if got[rel][v.key] != 1 {
						t.Fatalf("parallel visited %s/%s %d times, want exactly once", rel, v.key, got[rel][v.key])
					}
				}
			}

			// With a single worker the parallel entry point takes the
			// serial path and the sequences must be identical, not just
			// equal as sets.
			var oneWorker []visit
			if err := engine.SpecializeParallel[bool](context.Background(), e, upstruct.Bool,
				func(core.Annot) bool { return true }, 1,
				func(rel string, tp db.Tuple, v bool) {
					oneWorker = append(oneWorker, visit{rel: rel, key: tp.Key()})
				}); err != nil {
				t.Fatal(err)
			}
			if !equalVisits(serial, oneWorker) {
				t.Fatal("SpecializeParallel(workers=1) and Specialize visit different sequences")
			}
		})
	}
}

func equalVisits(a, b []visit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// filterRel reorders a schema-ordered visit sequence to the relation
// order used by the comparison loop (they coincide here, but keep the
// comparison honest if relation order ever changes).
func filterRel(seq []visit, rels []string) []visit {
	var out []visit
	for _, rel := range rels {
		for _, v := range seq {
			if v.rel == rel {
				out = append(out, v)
			}
		}
	}
	return out
}

// TestConcurrentReadersDuringIngestion hammers the read surface —
// Annotation, EachRow, BoolRestrictParallel, NumRows/ProvSize — while
// ApplyAll ingests the transaction log on another goroutine. Run with
// -race; the RWMutex on Engine must serialize the surface with
// transaction granularity. Afterwards the engine state must match a
// reference engine that ingested the same log serially.
func TestConcurrentReadersDuringIngestion(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		t.Run(mode.String(), func(t *testing.T) {
			e, txns := workloadEngine(t, mode)

			// A probe tuple known to exist: any tuple of the initial DB.
			var probe db.Tuple
			e.EachRow("R", func(tp db.Tuple, ann *core.Expr) {
				if probe == nil {
					probe = tp
				}
			})
			if probe == nil {
				t.Fatal("no probe tuple")
			}

			done := make(chan struct{})
			var wg sync.WaitGroup
			reader := func(f func()) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
							f()
						}
					}
				}()
			}
			allTrue := func(core.Annot) bool { return true }
			reader(func() {
				if ann := e.Annotation("R", probe); ann == nil {
					t.Error("probe tuple lost its annotation")
				}
			})
			reader(func() {
				n := 0
				e.EachRow("R", func(db.Tuple, *core.Expr) { n++ })
				if n == 0 {
					t.Error("EachRow saw an empty relation")
				}
			})
			reader(func() {
				d, err := engine.BoolRestrictParallel(context.Background(), e, allTrue, 4)
				if err != nil {
					t.Error(err)
					return
				}
				if d.NumTuples() == 0 {
					t.Error("live database empty mid-ingestion")
				}
			})
			reader(func() {
				_ = e.NumRows()
				_ = e.ProvSize()
				_ = e.SupportSize()
			})

			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			close(done)
			wg.Wait()

			// Equivalence with serial ingestion.
			ref, refTxns := workloadEngine(t, mode)
			if err := ref.ApplyAll(context.Background(), refTxns); err != nil {
				t.Fatal(err)
			}
			got := engine.LiveDB(e)
			want := engine.LiveDB(ref)
			if !got.Equal(want) {
				t.Fatalf("live DB after concurrent ingestion differs from serial reference:\n%s", got.Diff(want))
			}
			if g, w := e.ProvSize(), ref.ProvSize(); g != w {
				t.Fatalf("provenance size %d after concurrent ingestion, want %d", g, w)
			}
		})
	}
}
