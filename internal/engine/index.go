package engine

import (
	"fmt"

	"hyperprov/internal/db"
)

// index is an optional hash index over one column of a relation. The
// paper's reference implementation deliberately has no indices (every
// update scans the relation); BuildIndex is a beyond-the-paper extension
// used by the ablation benchmarks to show that provenance overhead is
// orthogonal to access-path choices.
type index struct {
	col     int
	byValue map[db.Value][]*row
}

// BuildIndex creates a hash index on the named attribute of the
// relation. Subsequent updates whose selection pattern constrains that
// attribute to a constant use the index instead of a full scan. At most
// one index per relation is supported.
func (e *Engine) BuildIndex(rel, attr string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	tbl := e.tables[rel]
	if tbl == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, rel)
	}
	col := tbl.rel.AttrIndex(attr)
	if col < 0 {
		return fmt.Errorf("engine: relation %s has no attribute %s", rel, attr)
	}
	ix := &index{col: col, byValue: make(map[db.Value][]*row)}
	for _, r := range tbl.list {
		ix.byValue[r.tuple[col]] = append(ix.byValue[r.tuple[col]], r)
	}
	e.indexes[rel] = ix
	return nil
}

func (e *Engine) indexAdd(tbl *table, r *row) {
	ix := e.indexes[tbl.rel.Name]
	if ix == nil {
		return
	}
	ix.byValue[r.tuple[ix.col]] = append(ix.byValue[r.tuple[ix.col]], r)
}

// scan returns the rows of the table that the selection applies to, in
// deterministic order: the rows in support (annotation ≠ 0) by default,
// only the semantically live rows under WithLiveMatching. It uses the
// relation's index when the pattern pins the indexed column to a
// constant, and a full scan otherwise.
func (e *Engine) scan(tbl *table, u db.Update) []*row {
	var out []*row
	if ix := e.indexes[tbl.rel.Name]; ix != nil && u.Sel[ix.col].IsConst() {
		for _, r := range ix.byValue[u.Sel[ix.col].Value()] {
			if e.matchable(r) && u.MatchesTuple(r.tuple) {
				out = append(out, r)
			}
		}
		return out
	}
	for _, r := range tbl.list {
		if e.matchable(r) && u.MatchesTuple(r.tuple) {
			out = append(out, r)
		}
	}
	return out
}
