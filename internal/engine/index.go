package engine

import (
	"fmt"
	"sort"
	"sync/atomic"

	"hyperprov/internal/db"
)

// Secondary indexing and the cost-based scan planner.
//
// The paper's reference implementation deliberately has no indices:
// every update scans the relation. Theorem 5.3 makes access paths
// orthogonal to provenance — the normal form is maintained per row,
// from that row's annotation and the query annotation alone — so any
// access path returning the same matching rows (in the same order)
// yields byte-identical provenance. That license is what this file
// exploits: each relation may carry any number of per-column hash
// indexes whose posting lists are kept in row-position order (the
// tbl.list insertion order, which is also the global sequence order
// under the sharded engine), so walking a posting list visits matching
// rows in exactly the order a full scan would. The differential tests
// (planner_diff_test.go) enforce this contract: annotations, streaming
// order and snapshot bytes are identical with indexing on and off.
//
// Three pieces cooperate:
//
//   - postingList/colIndex: one hash index per (relation, column).
//     Lists are strictly ordered by row.pos; inserts append (new rows
//     always have the largest pos), revivals of compacted-away rows
//     re-enter by binary search. Rows that leave the matchable set
//     (logical deletion under live matching, or an annotation becoming
//     syntactic zero) only bump a dead counter; once a list is more
//     than half dead it is compacted in place — the amortized sweep
//     that keeps churn-heavy posting lists proportional to their
//     matchable rows instead of growing without bound.
//
//   - the advisor: counts, per (relation, column), how many scans
//     arrived with that column pinned to an =-constant but unindexed.
//     When auto-indexing is enabled (WithAutoIndex / -autoindex) and a
//     column's count crosses the threshold, the index is built on the
//     spot (under the write lock the scan already holds) and used for
//     the very scan that triggered it.
//
//   - the planner inside scan(): probes every indexed =-constrained
//     column of the selection, walks the shortest posting list, and
//     merge-intersects the two shortest when the runner-up is close
//     enough in size for the intersection to pay for itself.
//     ≠-constraints and free variables never use an index on their own
//     column; a selection with no indexed =-column falls back to the
//     full tbl.list scan.

// minIntersectLen and maxIntersectRatio gate the two-list intersection:
// the shortest list must be at least minIntersectLen entries for the
// merge to beat per-row pattern checks, and the runner-up must be at
// most maxIntersectRatio times longer, or the merge walks mostly
// non-intersecting entries.
const (
	minIntersectLen   = 64
	maxIntersectRatio = 4
)

// postingList holds the rows carrying one value in one indexed column,
// in strictly increasing row position order (the relation's insertion
// order, so index scans reproduce full-scan order). dead counts entries
// whose row has left the matchable set since the last compaction.
type postingList struct {
	rows []*row
	dead int
}

// insert adds a row, keeping position order. New rows carry the largest
// position and append; a revived row (compacted away while dead)
// re-enters at its sorted position. Returns false if already present.
func (pl *postingList) insert(r *row) bool {
	n := len(pl.rows)
	if n == 0 || pl.rows[n-1].pos < r.pos {
		pl.rows = append(pl.rows, r)
		return true
	}
	i := sort.Search(n, func(i int) bool { return pl.rows[i].pos >= r.pos })
	if i < n && pl.rows[i].pos == r.pos {
		return false
	}
	pl.rows = append(pl.rows, nil)
	copy(pl.rows[i+1:], pl.rows[i:])
	pl.rows[i] = r
	return true
}

// colIndex is a hash index over one column of a relation.
type colIndex struct {
	col     int
	attr    string
	auto    bool // built by the advisor rather than BuildIndex
	byValue map[db.Value]*postingList
	entries int    // posting entries currently stored, across all lists
	dead    int    // dead entries awaiting compaction, across all lists
	sweeps  uint64 // compaction sweeps run
	// Interval-awareness (MVCC): an index proves completeness only for
	// the horizons whose matchable set it has fully observed. since is
	// the earliest such horizon — the build itself skips rows that are
	// unmatchable at build time, which may have been matchable at older
	// epochs — and compacted records that a sweep has dropped entries
	// since, losing history above since too. scanAt uses the index for a
	// pinned horizon s iff s ≥ since and !compacted, and falls back to a
	// full scan otherwise.
	since     uint64
	compacted bool
}

// tableIndexes holds every index of one relation plus the advisor's
// pinned-scan counters for the columns that are not (yet) indexed.
type tableIndexes struct {
	cols    map[int]*colIndex
	ordered []*colIndex // build order; deterministic maintenance walks
	scans   map[int]int // advisor: =-pinned scan count per unindexed column
}

// indexManager is the per-engine index state: one tableIndexes per
// relation (created lazily) and the planner counters. The counters are
// atomics because PlannerStats may be read while a transaction holds
// the write lock; everything else is guarded by the engine lock (or the
// single goroutine of the lock-free Begin/Apply/End path).
type indexManager struct {
	threshold int // auto-build after this many pinned scans; 0 disables
	tables    map[string]*tableIndexes

	fullScans      atomic.Uint64
	indexScans     atomic.Uint64
	intersectScans atomic.Uint64
	autoBuilds     atomic.Uint64
	compactions    atomic.Uint64
}

func newIndexManager(threshold int) *indexManager {
	return &indexManager{threshold: threshold, tables: make(map[string]*tableIndexes)}
}

func (m *indexManager) ensure(rel string) *tableIndexes {
	ti := m.tables[rel]
	if ti == nil {
		ti = &tableIndexes{cols: make(map[int]*colIndex), scans: make(map[int]int)}
		m.tables[rel] = ti
	}
	return ti
}

// IndexInfo describes one secondary index for IndexStats: identity,
// origin (manual or advisor-built) and current posting-list volume.
// Entries−Dead approximates the matchable rows reachable through the
// index; Dead entries are dropped by the next compaction of their list.
type IndexInfo struct {
	Rel  string `json:"rel"`
	Attr string `json:"attr"`
	Auto bool   `json:"auto"`
	// Keys is the number of distinct values (posting lists).
	Keys int `json:"keys"`
	// Entries is the number of posting entries currently stored.
	Entries int `json:"entries"`
	// Dead is the number of entries awaiting compaction.
	Dead int `json:"dead"`
	// Compactions counts amortized sweeps over this index's lists.
	Compactions uint64 `json:"compactions"`
}

// PlannerStats are the scan planner's cumulative counters: how
// selections were resolved and how much index maintenance ran.
type PlannerStats struct {
	// FullScans counts selections resolved by walking tbl.list (no
	// indexed =-constrained column, e.g. ≠-only patterns).
	FullScans uint64 `json:"fullScans"`
	// IndexScans counts selections resolved by walking one posting list.
	IndexScans uint64 `json:"indexScans"`
	// IntersectScans counts selections resolved by merge-intersecting
	// the two shortest candidate posting lists.
	IntersectScans uint64 `json:"intersectScans"`
	// AutoBuilds counts indexes built by the advisor.
	AutoBuilds uint64 `json:"autoBuilds"`
	// Compactions counts posting-list compaction sweeps.
	Compactions uint64 `json:"compactions"`
}

func (m *indexManager) stats() PlannerStats {
	return PlannerStats{
		FullScans:      m.fullScans.Load(),
		IndexScans:     m.indexScans.Load(),
		IntersectScans: m.intersectScans.Load(),
		AutoBuilds:     m.autoBuilds.Load(),
		Compactions:    m.compactions.Load(),
	}
}

// BuildIndex creates a hash index on the named attribute of the
// relation. Subsequent updates whose selection pattern constrains that
// attribute to a constant may use the index instead of a full scan. Any
// number of indexes may coexist per relation — building a second one on
// a different attribute never replaces the first — and building an
// index that already exists is a no-op (the index is already complete;
// an advisor-built index is adopted as manual so DropIndex semantics
// stay predictable).
func (e *Engine) BuildIndex(rel, attr string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.buildIndexLocked(rel, attr, false, e.sinceSeq())
}

// sinceSeq over-approximates the horizon from which an index built now
// covers the matchable set: the committed horizon, or the write epoch
// in flight when the build happens inside one (auto-builds do; a
// coordinated shard's own visibleSeq is stale, so curEpoch — the
// coordinator's epoch — carries the right scale there).
func (e *Engine) sinceSeq() uint64 {
	s := e.visibleSeq.Load()
	if c := EpochSeq(e.curEpoch); c > s {
		s = c
	}
	return s
}

func (e *Engine) buildIndexLocked(rel, attr string, auto bool, since uint64) error {
	tbl := e.tables[rel]
	if tbl == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, rel)
	}
	col := tbl.rel.AttrIndex(attr)
	if col < 0 {
		return fmt.Errorf("engine: %w: relation %s has no attribute %s", ErrUnknownAttribute, rel, attr)
	}
	ti := e.idx.ensure(rel)
	if ix := ti.cols[col]; ix != nil {
		if !auto {
			ix.auto = false
		}
		return nil
	}
	e.buildColIndexLocked(tbl, ti, col, auto, since)
	return nil
}

// buildColIndexLocked materializes the index over the current table
// state. Unmatchable rows (tombstones under live matching, syntactic
// zeros) are skipped — they are exactly what compaction would drop —
// and re-enter their lists if they ever become matchable again (see
// indexRevive).
func (e *Engine) buildColIndexLocked(tbl *table, ti *tableIndexes, col int, auto bool, since uint64) *colIndex {
	ix := &colIndex{
		col:     col,
		attr:    tbl.rel.Attrs[col].Name,
		auto:    auto,
		since:   since,
		byValue: make(map[db.Value]*postingList),
	}
	for _, r := range tbl.list.snapshot() {
		if !e.matchable(r) {
			continue
		}
		v := r.tuple[col]
		pl := ix.byValue[v]
		if pl == nil {
			pl = &postingList{}
			ix.byValue[v] = pl
		}
		pl.rows = append(pl.rows, r) // tbl.list is pos-ordered
		ix.entries++
	}
	ti.cols[col] = ix
	ti.ordered = append(ti.ordered, ix)
	delete(ti.scans, col) // the advisor's job here is done
	return ix
}

// DropIndex removes the index on the named attribute. Dropping an index
// that does not exist returns ErrUnknownIndex (the HTTP layer maps it
// to 404); the relation must exist either way.
func (e *Engine) DropIndex(rel, attr string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropIndexLocked(rel, attr)
}

func (e *Engine) dropIndexLocked(rel, attr string) error {
	tbl := e.tables[rel]
	if tbl == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, rel)
	}
	col := tbl.rel.AttrIndex(attr)
	ti := e.idx.tables[rel]
	if col < 0 || ti == nil || ti.cols[col] == nil {
		return fmt.Errorf("engine: %w %s.%s", ErrUnknownIndex, rel, attr)
	}
	delete(ti.cols, col)
	for i, ix := range ti.ordered {
		if ix.col == col {
			ti.ordered = append(ti.ordered[:i], ti.ordered[i+1:]...)
			break
		}
	}
	// Reset the advisor counter: a dropped index must re-earn an
	// auto-build instead of reappearing on the next pinned scan.
	delete(ti.scans, col)
	return nil
}

// IndexStats reports every index of the engine — relations in schema
// order, attributes in column order — with its current posting-list
// volume.
func (e *Engine) IndexStats() []IndexInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.indexStatsLocked()
}

func (e *Engine) indexStatsLocked() []IndexInfo {
	var out []IndexInfo
	for _, rel := range e.schema.Names() {
		ti := e.idx.tables[rel]
		if ti == nil {
			continue
		}
		cols := make([]int, 0, len(ti.cols))
		for col := range ti.cols {
			cols = append(cols, col)
		}
		sort.Ints(cols)
		for _, col := range cols {
			ix := ti.cols[col]
			out = append(out, IndexInfo{
				Rel:         rel,
				Attr:        ix.attr,
				Auto:        ix.auto,
				Keys:        len(ix.byValue),
				Entries:     ix.entries,
				Dead:        ix.dead,
				Compactions: ix.sweeps,
			})
		}
	}
	return out
}

// PlannerStats reports the scan planner's cumulative counters.
func (e *Engine) PlannerStats() PlannerStats { return e.idx.stats() }

// --- maintenance hooks --------------------------------------------------

// indexAdd registers a newly created row with every index of its table.
// New rows carry the largest position, so this is an append on every
// touched posting list.
func (e *Engine) indexAdd(tbl *table, r *row) {
	ti := e.idx.tables[tbl.rel.Name]
	if ti == nil {
		return
	}
	for _, ix := range ti.ordered {
		v := r.tuple[ix.col]
		pl := ix.byValue[v]
		if pl == nil {
			pl = &postingList{}
			ix.byValue[v] = pl
		}
		if pl.insert(r) {
			ix.entries++
		}
	}
}

// indexDead records that a row left the matchable set: its posting
// entries stay in place but count toward each list's dead ratio, and a
// list that crosses 50% dead is compacted on the spot. Callers only
// invoke this on an actual matchable→unmatchable transition (scan and
// lookupPinned never hand out unmatchable rows), so the dead counters
// track reality; over-counting would only cause earlier sweeps.
func (e *Engine) indexDead(tbl *table, r *row) {
	ti := e.idx.tables[tbl.rel.Name]
	if ti == nil {
		return
	}
	for _, ix := range ti.ordered {
		pl := ix.byValue[r.tuple[ix.col]]
		if pl == nil {
			continue
		}
		pl.dead++
		ix.dead++
		if 2*pl.dead > len(pl.rows) {
			e.compact(ix, pl)
		}
	}
}

// indexRevive re-registers a row that became matchable again (an
// insertion or modification target landing on a tombstoned tuple, or a
// snapshot restore overwriting one). The row may have been compacted
// out of any subset of its lists, so each list is checked by binary
// search on the row's unique position.
func (e *Engine) indexRevive(tbl *table, r *row) {
	e.indexAdd(tbl, r)
}

// compact drops the unmatchable rows of one posting list in place,
// preserving position order. Amortization argument: a sweep runs only
// when more than half the list is dead, and each sweep is linear in the
// list, so total sweep work is linear in the number of entries ever
// marked dead.
func (e *Engine) compact(ix *colIndex, pl *postingList) {
	kept := pl.rows[:0]
	for _, r := range pl.rows {
		if e.matchable(r) {
			kept = append(kept, r)
		}
	}
	dropped := len(pl.rows) - len(kept)
	for i := len(kept); i < len(pl.rows); i++ {
		pl.rows[i] = nil
	}
	pl.rows = kept
	ix.entries -= dropped
	ix.dead -= pl.dead
	pl.dead = 0
	ix.sweeps++
	if dropped > 0 {
		// Dropped entries lose index-completeness for historical
		// horizons; pinned-epoch scans fall back to full scans from now
		// on (see scanAt).
		ix.compacted = true
	}
	e.idx.compactions.Add(1)
}

// --- the planner --------------------------------------------------------

// scan returns the rows of the table that the selection applies to, in
// deterministic order: the rows in support (annotation ≠ 0) by default,
// only the semantically live rows under WithLiveMatching — always in
// tbl.list insertion order, whatever access path resolves them.
//
// Access-path choice is cost-based: every indexed column that the
// pattern pins to an =-constant is a candidate, the shortest posting
// list wins, and the two shortest are merge-intersected when the
// runner-up is within maxIntersectRatio of the winner. Columns
// constrained only by ≠ (or free) never qualify, so ≠-only selections
// fall back to the full scan. When auto-indexing is on, the advisor
// counts each =-pinned unindexed column and builds its index the moment
// the count crosses the threshold — including for the current scan.
func (e *Engine) scan(tbl *table, u db.Update) []*row {
	ti := e.idx.tables[tbl.rel.Name]
	if ti == nil && e.idx.threshold > 0 {
		ti = e.idx.ensure(tbl.rel.Name)
	}
	if ti == nil {
		e.idx.fullScans.Add(1)
		return e.fullScan(tbl, u)
	}

	var best, second *postingList
	for i, term := range u.Sel {
		if !term.IsConst() {
			continue
		}
		ix := ti.cols[i]
		if ix == nil {
			if e.idx.threshold > 0 {
				ti.scans[i]++
				if ti.scans[i] >= e.idx.threshold {
					ix = e.buildColIndexLocked(tbl, ti, i, true, e.sinceSeq())
					e.idx.autoBuilds.Add(1)
				}
			}
			if ix == nil {
				continue
			}
		}
		pl := ix.byValue[term.Value()]
		if pl == nil {
			// Every matchable row holding this value is in the index, so
			// an absent list proves the selection matches nothing.
			e.idx.indexScans.Add(1)
			return nil
		}
		switch {
		case best == nil || len(pl.rows) < len(best.rows):
			best, second = pl, best
		case second == nil || len(pl.rows) < len(second.rows):
			second = pl
		}
	}
	if best == nil {
		e.idx.fullScans.Add(1)
		return e.fullScan(tbl, u)
	}
	if second != nil && len(best.rows) >= minIntersectLen &&
		len(second.rows) <= maxIntersectRatio*len(best.rows) {
		e.idx.intersectScans.Add(1)
		cand := intersectByPosInto(e.getScanBuf(), best.rows, second.rows)
		out := e.filterRows(cand, u)
		e.putScanBuf(cand)
		return out
	}
	e.idx.indexScans.Add(1)
	return e.filterRows(best.rows, u)
}

// fullScan is the paper's access path: walk the whole relation in
// insertion order. When the selection carries an =-constant term, the
// columnar mirror prefilters it against the contiguous column vector,
// so non-matching rows cost one 16-byte compare and no row or version
// pointer is chased for them.
func (e *Engine) fullScan(tbl *table, u db.Update) []*row {
	rows := tbl.list.snapshot()
	if ci := firstConstTerm(u.Sel); ci >= 0 {
		if col := tbl.cols.col(ci, len(rows)); len(col) == len(rows) {
			want := u.Sel[ci].Value()
			out := e.getScanBuf()
			for i, r := range rows {
				if col[i] != want {
					continue
				}
				if e.matchable(r) && u.MatchesTuple(r.tuple) {
					out = append(out, r)
				}
			}
			return out
		}
	}
	return e.filterRows(rows, u)
}

// firstConstTerm returns the index of the first =-constant term of the
// pattern, or -1.
func firstConstTerm(p db.Pattern) int {
	for i := range p {
		if p[i].IsConst() {
			return i
		}
	}
	return -1
}

// filterRows applies matchability and the full selection to candidate
// rows, preserving their order. The result comes from the writer's
// scan-buffer free-list; callers release it with putScanBuf when the
// update is done with it.
func (e *Engine) filterRows(rows []*row, u db.Update) []*row {
	out := e.getScanBuf()
	for _, r := range rows {
		if e.matchable(r) && u.MatchesTuple(r.tuple) {
			out = append(out, r)
		}
	}
	return out
}

// scanAt is the planner at a pinned horizon: it returns the rows the
// selection would have applied to as of sequence s, in the same
// deterministic order scan would have produced then. Posting lists are
// interval-aware — entries are never removed except by compaction, so
// an index whose history is intact (s ≥ since, never compacted) still
// proves completeness for old horizons, and the absent-list shortcut
// still proves emptiness; otherwise the scan falls back to the full
// list with per-row version resolution. Unlike the lock-free read
// paths, scanAt takes the read lock: index structures are writer-owned
// and mutated in place, and pinned-epoch planning is rare enough that
// transaction-granular blocking is acceptable. The advisor never runs
// here (historical scans must not mutate planner state beyond the
// counters).
func (e *Engine) scanAt(tbl *table, u db.Update, s uint64) []*row {
	if s == latestMark {
		return e.scan(tbl, u)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, none := e.planAt(tbl, u, s)
	if none {
		return nil
	}
	return e.filterRowsAt(rows, u, s)
}

// planAt is the pinned-horizon access-path choice shared by scanAt and
// selectEachAt: the candidate rows still to be filtered (possibly the
// whole list), or none=true when an index proves the selection empty.
// The caller holds the read lock.
func (e *Engine) planAt(tbl *table, u db.Update, s uint64) (rows []*row, none bool) {
	if ti := e.idx.tables[tbl.rel.Name]; ti != nil {
		var best, second *postingList
		usable := true
		for i, term := range u.Sel {
			if !term.IsConst() {
				continue
			}
			ix := ti.cols[i]
			if ix == nil {
				continue
			}
			if ix.compacted || s < ix.since {
				usable = false
				break
			}
			pl := ix.byValue[term.Value()]
			if pl == nil {
				// No row was ever matchable with this value while the
				// index was live, so the selection matches nothing at any
				// covered horizon.
				e.idx.indexScans.Add(1)
				return nil, true
			}
			switch {
			case best == nil || len(pl.rows) < len(best.rows):
				best, second = pl, best
			case second == nil || len(pl.rows) < len(second.rows):
				second = pl
			}
		}
		if usable && best != nil {
			if second != nil && len(best.rows) >= minIntersectLen &&
				len(second.rows) <= maxIntersectRatio*len(best.rows) {
				e.idx.intersectScans.Add(1)
				return intersectByPos(best.rows, second.rows), false
			}
			e.idx.indexScans.Add(1)
			return best.rows, false
		}
	}
	e.idx.fullScans.Add(1)
	return tbl.list.snapshot(), false
}

// Select implements Reader: the tuples the selection pattern matches
// at the committed horizon, in insertion order, through the planner.
func (e *Engine) Select(rel string, sel db.Pattern) ([]db.Tuple, error) {
	return e.selectAt(rel, sel, e.Horizon())
}

// selectAt resolves a selection at a pinned horizon and materializes
// the matched tuples.
func (e *Engine) selectAt(rel string, sel db.Pattern, s uint64) ([]db.Tuple, error) {
	rows, err := e.selectRowsAt(rel, sel, s)
	if err != nil {
		return nil, err
	}
	out := make([]db.Tuple, len(rows))
	for i, r := range rows {
		out[i] = r.tuple
	}
	return out, nil
}

// selectRowsAt validates the pattern and runs the pinned-horizon
// planner over it. The pattern is wrapped as a deletion solely because
// deletions are the pure-selection update shape the planner consumes.
func (e *Engine) selectRowsAt(rel string, sel db.Pattern, s uint64) ([]*row, error) {
	tbl := e.tables[rel]
	if tbl == nil {
		return nil, fmt.Errorf("engine: %w %s", ErrUnknownRelation, rel)
	}
	u := db.Delete(rel, sel)
	if err := u.Validate(e.schema); err != nil {
		return nil, fmt.Errorf("engine: %w: %v", ErrBadTuple, err)
	}
	return e.scanAt(tbl, u, s), nil
}

// filterRowsAt is filterRows against the versions visible at horizon s.
func (e *Engine) filterRowsAt(rows []*row, u db.Update, s uint64) []*row {
	var out []*row
	for _, r := range rows {
		v := r.at(s)
		if v == nil || !e.matchableV(v) || !u.MatchesTuple(r.tuple) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// SelectEach streams the tuples matching the selection at the
// committed horizon to f, in insertion order, through the planner —
// Select without materializing the result slice. With an indexed
// =-constrained column the steady-state pass allocates nothing
// (enforced by TestAllocFreeReads); f must not retain the tuples
// across engine mutations it triggers itself.
func (e *Engine) SelectEach(rel string, sel db.Pattern, f func(db.Tuple)) error {
	return e.selectEachAt(rel, sel, e.Horizon(), f)
}

func (e *Engine) selectEachAt(rel string, sel db.Pattern, s uint64, f func(db.Tuple)) error {
	tbl := e.tables[rel]
	if tbl == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, rel)
	}
	u := db.Delete(rel, sel)
	if err := u.Validate(e.schema); err != nil {
		return fmt.Errorf("engine: %w: %v", ErrBadTuple, err)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, none := e.planAt(tbl, u, s)
	if none {
		return nil
	}
	for _, r := range rows {
		v := r.at(s)
		if v == nil || !e.matchableV(v) || !u.MatchesTuple(r.tuple) {
			continue
		}
		f(r.tuple)
	}
	return nil
}

// intersectByPos merges two position-ordered row lists into their
// intersection, still position-ordered. Positions are unique per table,
// so pointer identity and position identity coincide.
func intersectByPos(a, b []*row) []*row {
	return intersectByPosInto(nil, a, b)
}

// intersectByPosInto is intersectByPos appending into a caller-supplied
// buffer (the write path passes a recycled scan buffer).
func intersectByPosInto(out []*row, a, b []*row) []*row {
	if len(b) < len(a) {
		a, b = b, a
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].pos == b[j].pos:
			out = append(out, a[i])
			i++
			j++
		case a[i].pos < b[j].pos:
			i++
		default:
			j++
		}
	}
	return out
}
