package engine

import (
	"sync/atomic"

	"hyperprov/internal/db"
)

// Row storage. Two structures back every table, both append-only and
// readable without locks:
//
//   - rowMap: an open-addressing hash table from tuple fingerprints to
//     rows. Point lookups (pinned updates, Annotation/NF) probe a
//     contiguous slot array by db.Tuple.Fingerprint — no Key() string
//     is ever built on the lookup path — and disambiguate 64-bit
//     collisions with Tuple.Equal. Rows are never deleted (tombstones
//     persist), so probe sequences never break and the writer-only
//     grow path can rebuild into a fresh array and publish it with a
//     single atomic store.
//
//   - colStore: a struct-of-arrays mirror of the table's tuples — one
//     value vector per attribute plus a parallel sequence vector, all
//     published with the rowList discipline (elements land before the
//     list's length does, and the length load is the readers'
//     happens-before edge). Planner full scans test =-constant terms
//     against the contiguous column before chasing any row or version
//     pointer, and visibility counting walks the sequence vector
//     without touching rows at all.
//
// Memory model: the writer is serialized by the engine write lock. It
// stores elements with plain writes, then publishes them through an
// atomic store (the map's slot pointer, or the table list's length);
// readers load the atomic first and only then read the plainly-written
// memory, which is the same release/acquire pairing rowList has always
// used.

// rowSlots is one published generation of a rowMap: a power-of-two
// slot array probed linearly from fp & mask.
type rowSlots struct {
	mask  uint64
	slots []atomic.Pointer[row]
}

// rowMap is the fingerprint-keyed row index of a table. Readers use
// get concurrently with a writer's add; the writer is serialized by
// the engine lock.
type rowMap struct {
	tab atomic.Pointer[rowSlots]
	n   int // writer-only: rows stored
}

// get returns the row stored for the tuple, or nil. Lock-free and
// allocation-free: the probe compares fingerprints first and confirms
// with tuple equality, so a fingerprint collision costs an extra
// compare, never a wrong row.
func (m *rowMap) get(fp uint64, t db.Tuple) *row {
	tab := m.tab.Load()
	if tab == nil {
		return nil
	}
	for i := fp & tab.mask; ; i = (i + 1) & tab.mask {
		r := tab.slots[i].Load()
		if r == nil {
			return nil
		}
		if r.fp == fp && r.tuple.Equal(t) {
			return r
		}
	}
}

// add stores a new row (writer-only, under the engine lock). The row's
// fp must be set. Load is kept under 3/4 so reader probes always
// terminate at an empty slot.
func (m *rowMap) add(r *row) {
	tab := m.tab.Load()
	if tab == nil || 4*(m.n+1) > 3*len(tab.slots) {
		tab = m.grow(tab)
	}
	m.n++
	for i := r.fp & tab.mask; ; i = (i + 1) & tab.mask {
		if tab.slots[i].Load() == nil {
			tab.slots[i].Store(r)
			return
		}
	}
}

// grow rebuilds into a doubled slot array and publishes it. Readers
// holding the old generation still see every row inserted before the
// grow; rows added after only land in the new one — the same
// only-eventually-visible guarantee a concurrent map store has anyway.
func (m *rowMap) grow(old *rowSlots) *rowSlots {
	size := 16
	if old != nil {
		size = 2 * len(old.slots)
	}
	tab := &rowSlots{mask: uint64(size - 1), slots: make([]atomic.Pointer[row], size)}
	if old != nil {
		for i := range old.slots {
			r := old.slots[i].Load()
			if r == nil {
				continue
			}
			for j := r.fp & tab.mask; ; j = (j + 1) & tab.mask {
				if tab.slots[j].Load() == nil {
					tab.slots[j].Store(r)
					break
				}
			}
		}
	}
	m.tab.Store(tab)
	return tab
}

// colVec is one append-only column vector, grown copy-on-write and
// published atomically (see the file comment for the ordering
// argument).
type colVec struct {
	arr atomic.Pointer[[]db.Value]
}

// appendAt stores the value at index n (writer-only; n is the table
// list's unpublished next length).
func (v *colVec) appendAt(n int, val db.Value) {
	arr := v.arr.Load()
	if arr == nil || n == len(*arr) {
		capacity := 16
		if arr != nil && len(*arr) > 0 {
			capacity = 2 * len(*arr)
		}
		grown := make([]db.Value, capacity)
		if arr != nil {
			copy(grown, *arr)
		}
		arr = &grown
		v.arr.Store(arr)
	}
	(*arr)[n] = val
}

// prefix returns the first n elements; n must come from the table
// list's published length (clamped defensively like rowList.snapshot).
func (v *colVec) prefix(n int) []db.Value {
	arr := v.arr.Load()
	if arr == nil {
		return nil
	}
	if n > len(*arr) {
		n = len(*arr)
	}
	return (*arr)[:n:n]
}

// seqVec is colVec for the parallel sequence-number vector.
type seqVec struct {
	arr atomic.Pointer[[]uint64]
}

func (v *seqVec) appendAt(n int, seq uint64) {
	arr := v.arr.Load()
	if arr == nil || n == len(*arr) {
		capacity := 16
		if arr != nil && len(*arr) > 0 {
			capacity = 2 * len(*arr)
		}
		grown := make([]uint64, capacity)
		if arr != nil {
			copy(grown, *arr)
		}
		arr = &grown
		v.arr.Store(arr)
	}
	(*arr)[n] = seq
}

func (v *seqVec) prefix(n int) []uint64 {
	arr := v.arr.Load()
	if arr == nil {
		return nil
	}
	if n > len(*arr) {
		n = len(*arr)
	}
	return (*arr)[:n:n]
}

// colStore is the columnar mirror of a table: per-attribute value
// vectors plus the parallel sequence vector, indexed by row position.
type colStore struct {
	cols []colVec
	seqs seqVec
}

func (c *colStore) init(arity int) {
	c.cols = make([]colVec, arity)
}

// append mirrors one row at position n (writer-only, before the table
// list publishes n+1).
func (c *colStore) append(t db.Tuple, seq uint64, n int) {
	for i := range c.cols {
		c.cols[i].appendAt(n, t[i])
	}
	c.seqs.appendAt(n, seq)
}

// col returns the first n values of one attribute's vector.
func (c *colStore) col(i, n int) []db.Value { return c.cols[i].prefix(n) }

// seqPrefix returns the first n sequence numbers.
func (c *colStore) seqPrefix(n int) []uint64 { return c.seqs.prefix(n) }

// --- writer scratch ------------------------------------------------------

// getScanBuf returns an empty row buffer from the engine's free-list.
// The free-list is writer-owned: every caller of scan/filterRows holds
// the engine write lock (fanModify holds each shard's lock while that
// shard scans), so no synchronization is needed. Buffers handed out by
// scan must come back through putScanBuf once the update is done with
// them — an unpaired buffer is merely garbage-collected, never corrupt.
func (e *Engine) getScanBuf() []*row {
	if n := len(e.scanBufs); n > 0 {
		buf := e.scanBufs[n-1]
		e.scanBufs = e.scanBufs[:n-1]
		return buf
	}
	return make([]*row, 0, 64)
}

// putScanBuf recycles a buffer returned by scan. Row pointers are
// cleared so the free-list never retains rows. Accepts nil (the
// absent-posting-list shortcut returns nil, not a buffer).
func (e *Engine) putScanBuf(buf []*row) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = nil
	}
	e.scanBufs = append(e.scanBufs, buf[:0])
}
