package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
)

// ShardedEngine partitions every relation's rows across N shards by
// tuple fingerprint (db.ShardOfTuple over db.Tuple.Fingerprint — no
// Key() string is built on the routing path). Each shard is a full
// Engine — its own table maps behind its own write lock — so shards
// are independent lock domains and transactions touching disjoint
// shards apply concurrently.
//
// Updates route by constraint analysis (db.Update.RouteTuples): an update
// whose =-constant constraints pin the key attributes goes to exactly
// one shard, where the pinned selection degenerates to a map lookup
// instead of the paper's relation scan; all other updates — free
// variables, ≠ constraints, key-modifying +M — fan out to all shards in
// parallel. Theorem 5.3 locality makes the fan-out sound: each row's
// normal form depends only on that row's annotation and the query
// annotation, never on other rows, so disjoint partitions maintain it
// independently. The one cross-row construct, the Σ over a
// modification's sources, is merged by the coordinator in global row
// order before the targets absorb it, reproducing the single engine's
// Σ summand order exactly.
//
// Reads are lock-free: shard workers commit epochs out of dispatch
// order, so the engine-level epochTracker only advances the read
// horizon to epoch k once every epoch ≤ k has committed, and readers
// resolve the per-shard MVCC version chains against that pinned
// horizon (a coordinated shard's own visibleSeq is never advanced —
// the tracker owns visibility).
//
// Equivalence contract (checked by the differential tests): for the
// same initial database and transaction log, a ShardedEngine holds
// row-for-row identical annotations to a single Engine — the same
// interned expression pointers — streams rows in the same order, and
// produces byte-identical snapshots, for any shard count, at every
// committed epoch. The mechanism is a global row sequence number: rows
// of transaction k carry seq = k<<32 | i (i counting creations within
// the transaction, in update order), so merging the per-shard lists by
// seq reconstructs the insertion order a single engine would have
// used, independent of how transactions were scheduled across shards.
type ShardedEngine struct {
	mode   Mode
	schema *db.Schema
	shards []*Engine
	all    []int // 0..len(shards)-1, the fan-out shard set

	// epoch numbers transactions (and snapshot restores) in dispatch
	// order; it is the high half of every row sequence number.
	epoch atomic.Uint64

	// tracker converts out-of-order epoch commits into the monotone
	// read horizon (see mvcc.go).
	tracker epochTracker

	// hook is the commit-event subscriber. Executing workers stash each
	// epoch's event in pending (keyed by epoch) before committing the
	// epoch to the tracker; the tracker's emit callback then delivers
	// events in epoch order as the horizon advances. An epoch with no
	// stashed event (a transaction skipped after a batch failure, or one
	// applied while no hook was installed) emits as an empty CommitTxn so
	// subscribers still see every epoch.
	hook    atomic.Pointer[CommitHook]
	pendMu  sync.Mutex
	pending map[uint64]*CommitEvent

	routedTxns     atomic.Uint64 // pinned to a single shard
	rendezvousTxns atomic.Uint64 // pinned, spanning several shards
	fanoutTxns     atomic.Uint64 // evaluated against every shard
}

// NewSharded builds a hash-sharded engine from an initial database.
// The shard count comes from WithShards (minimum 1). Initial tuples are
// annotated in the single engine's order — relations in schema order,
// tuples in sorted-key order — so annotation names are independent of
// the shard count.
func NewSharded(mode Mode, initial *db.Database, opts ...Option) *ShardedEngine {
	cfg := newConfig(opts)
	schema := initial.Schema()
	se := &ShardedEngine{mode: mode, schema: schema}
	se.tracker.init()
	se.tracker.emit = se.emitEpoch
	for i := 0; i < cfg.shards; i++ {
		se.shards = append(se.shards, newShell(mode, schema, cfg))
	}
	se.all = make([]int, cfg.shards)
	for i := range se.all {
		se.all[i] = i
	}
	var seq uint64
	for _, name := range schema.Names() {
		for _, t := range initial.Instance(name).Tuples() {
			a := se.shards[0].freshAnnot(name, t)
			r := newRow(mode, t, core.Var(a), seq)
			seq++
			sh := se.shardFor(t)
			sh.versions.Add(1)
			sh.tables[name].add(r)
		}
	}
	return se
}

// Mode reports the provenance representation in use.
func (se *ShardedEngine) Mode() Mode { return se.mode }

// Schema returns the database schema.
func (se *ShardedEngine) Schema() *db.Schema { return se.schema }

// Relations returns the relation names in schema order.
func (se *ShardedEngine) Relations() []string { return se.schema.Names() }

// NumShards reports the number of shards.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

func (se *ShardedEngine) shardFor(t db.Tuple) *Engine {
	return se.shards[db.ShardOfTuple(t, len(se.shards))]
}

// SetCommitHook installs (or, with nil, removes) the commit-event
// subscriber; see CommitHook for the contract.
func (se *ShardedEngine) SetCommitHook(h CommitHook) {
	if h == nil {
		se.hook.Store(nil)
		return
	}
	se.hook.Store(&h)
}

// stashEvent parks a completed epoch's event until the tracker's
// horizon covers the epoch (emitEpoch delivers it then, in order).
func (se *ShardedEngine) stashEvent(epoch uint64, ev CommitEvent) {
	se.pendMu.Lock()
	if se.pending == nil {
		se.pending = make(map[uint64]*CommitEvent)
	}
	se.pending[epoch] = &ev
	se.pendMu.Unlock()
}

// emitEpoch delivers one epoch's commit event. Called by the tracker
// under its mutex, strictly in epoch order, after the horizon store —
// so a subscriber reading At(ev.Seq) observes the committed epoch.
func (se *ShardedEngine) emitEpoch(epoch uint64) {
	se.pendMu.Lock()
	ev, ok := se.pending[epoch]
	delete(se.pending, epoch)
	se.pendMu.Unlock()
	hp := se.hook.Load()
	if hp == nil {
		return
	}
	if !ok {
		// No stashed event: the epoch executed before the hook was
		// installed (install races an in-flight apply). Announce it as a
		// reset — the subscriber rebuilds from the horizon, which covers
		// the epoch — rather than as an empty transaction that would
		// silently skip its rows. (Epochs skipped after a batch failure
		// stash an explicit empty event and never take this path.)
		ev = &CommitEvent{Epoch: epoch, Kind: CommitReset}
	}
	ev.Seq = EpochSeq(epoch)
	(*hp)(*ev)
}

// lockShards/unlockShards take the write locks of a sorted shard set in
// ascending order (the global lock order; keeps concurrent multi-shard
// transactions deadlock-free).
func (se *ShardedEngine) lockShards(shards []int) {
	for _, si := range shards {
		se.shards[si].mu.Lock()
	}
}

func (se *ShardedEngine) unlockShards(shards []int) {
	for _, si := range shards {
		se.shards[si].mu.Unlock()
	}
}

// analyze classifies a transaction: the sorted set of shards it can
// touch, and whether constraint analysis pinned every update (pinned
// = routable; otherwise the set is all shards and updates fan out).
func (se *ShardedEngine) analyze(t *db.Transaction) (shards []int, pinned bool) {
	seen := make(map[int]struct{})
	for i := range t.Updates {
		tuples, ok := t.Updates[i].RouteTuples()
		if !ok {
			return se.all, false
		}
		for _, tu := range tuples {
			seen[db.ShardOfTuple(tu, len(se.shards))] = struct{}{}
		}
	}
	if len(seen) == 0 {
		// An empty transaction still needs a shard to record Begin/End.
		return []int{0}, true
	}
	shards = make([]int, 0, len(seen))
	for si := range seen {
		shards = append(shards, si)
	}
	sort.Ints(shards)
	return shards, true
}

func (se *ShardedEngine) countTxn(shards []int, pinned bool) {
	switch {
	case !pinned:
		se.fanoutTxns.Add(1)
	case len(shards) == 1:
		se.routedTxns.Add(1)
	default:
		se.rendezvousTxns.Add(1)
	}
}

// execLocked applies one transaction to the given shard set; the caller
// holds every involved shard's write lock. Begin/End bracket the
// transaction on every involved shard, so normal-form freezing stays
// per-shard consistent, and a shared sequence closure numbers the rows
// created by the transaction in update order. The caller commits the
// epoch to the tracker after releasing the locks.
func (se *ShardedEngine) execLocked(t *db.Transaction, shards []int, epoch uint64) error {
	var local uint64
	next := func() uint64 {
		s := epoch<<32 | local
		local++
		return s
	}
	collect := se.hook.Load() != nil
	for _, si := range shards {
		sh := se.shards[si]
		sh.nextSeq = next
		sh.curEpoch = epoch
		sh.Begin(t.Label)
		// Shards have no hook of their own; the coordinator forces event
		// collection (after Begin, which reset evRows) and harvests the
		// per-shard refs below, while the locks are still held.
		sh.collectEv = collect
	}
	var err error
	for i := range t.Updates {
		if aerr := se.applyUpdateLocked(t.Updates[i], shards); aerr != nil {
			err = fmt.Errorf("transaction %s, query %d: %w", t.Label, i, aerr)
			break
		}
	}
	var rows []RowRef
	for _, si := range shards {
		sh := se.shards[si]
		sh.End()
		sh.nextSeq = nil
		if collect {
			rows = append(rows, sh.evRows...)
			sh.evRows = sh.evRows[:0]
			sh.collectEv = false
		}
	}
	if collect {
		se.stashEvent(epoch, CommitEvent{Epoch: epoch, Kind: CommitTxn, Label: t.Label, Rows: rows})
	}
	return err
}

// applyUpdateLocked routes one update: pinned updates touch exactly the
// rows named by their keys (point lookups); unpinned ones fan out over
// the shard set in parallel.
func (se *ShardedEngine) applyUpdateLocked(u db.Update, shards []int) error {
	if se.schema.Relation(u.Rel) == nil {
		return fmt.Errorf("engine: %w %s", ErrUnknownRelation, u.Rel)
	}
	tuples, pinned := u.RouteTuples()
	switch u.Kind {
	case db.OpInsert:
		sh := se.shardFor(tuples[0])
		sh.applyInsert(sh.tables[u.Rel], u)
		return nil
	case db.OpDelete:
		if pinned {
			sh := se.shardFor(tuples[0])
			if r := sh.lookupPinned(sh.tables[u.Rel], u, tuples[0]); r != nil {
				sh.deleteRow(sh.tables[u.Rel], r)
			}
			return nil
		}
		se.fanDelete(u, shards)
		return nil
	case db.OpModify:
		if pinned {
			sh := se.shardFor(tuples[0])
			if r := sh.lookupPinned(sh.tables[u.Rel], u, tuples[0]); r != nil {
				se.modifyAcross(u, []shardSource{{sh: sh, r: r}})
			}
			return nil
		}
		se.fanModify(u, shards)
		return nil
	default:
		return fmt.Errorf("engine: unknown update kind %v", u.Kind)
	}
}

// fanDelete applies an unpinned deletion on every shard of the set in
// parallel; deletions touch rows in place, so shards need no
// coordination beyond the locks already held.
func (se *ShardedEngine) fanDelete(u db.Update, shards []int) {
	if len(shards) == 1 {
		sh := se.shards[shards[0]]
		sh.applyDelete(sh.tables[u.Rel], u)
		return
	}
	var wg sync.WaitGroup
	for _, si := range shards {
		wg.Add(1)
		go func(sh *Engine) {
			defer wg.Done()
			sh.applyDelete(sh.tables[u.Rel], u)
		}(se.shards[si])
	}
	wg.Wait()
}

// shardSource is one modification source row together with the shard
// holding it.
type shardSource struct {
	sh *Engine
	r  *row
}

// fanModify evaluates an unpinned modification: every shard scans its
// partition in parallel, then the coordinator merges the matched
// sources by global row order and applies the modification across
// shards.
func (se *ShardedEngine) fanModify(u db.Update, shards []int) {
	per := make([][]*row, len(shards))
	if len(shards) == 1 {
		sh := se.shards[shards[0]]
		per[0] = sh.scan(sh.tables[u.Rel], u)
	} else {
		var wg sync.WaitGroup
		for i, si := range shards {
			wg.Add(1)
			go func(i int, sh *Engine) {
				defer wg.Done()
				per[i] = sh.scan(sh.tables[u.Rel], u)
			}(i, se.shards[si])
		}
		wg.Wait()
	}
	var sources []shardSource
	for i, si := range shards {
		sh := se.shards[si]
		for _, r := range per[i] {
			sources = append(sources, shardSource{sh: sh, r: r})
		}
		// Scan buffers recycle to the shard that lent them (its write
		// lock is still held by this coordinator).
		sh.putScanBuf(per[i])
	}
	// Merge to the single engine's scan order: row sequence numbers are
	// globally unique, so this order is total and deterministic.
	sort.Slice(sources, func(i, j int) bool { return sources[i].r.seq < sources[j].r.seq })
	se.modifyAcross(u, sources)
}

// modifyAcross runs a modification over source rows that may live on
// different shards from their targets: capture every source's
// contribution (in global row order), delete the sources, then route
// each target group to the shard owning the target key and absorb —
// the same capture/delete/absorb sequence as the single engine's
// applyModify, so Σ summand order and the self-map shape come out
// identical.
func (se *ShardedEngine) modifyAcross(u db.Update, sources []shardSource) {
	if len(sources) == 0 {
		return
	}
	pe := core.Var(sources[0].sh.cur)
	groups := make(map[uint64]*modGroup)
	var order []*modGroup
	for _, s := range sources {
		target := u.Target(s.r.tuple)
		g := findModGroup(groups, &order, target, target.Fingerprint())
		s.sh.captureContribution(g, s.r)
	}
	for _, s := range sources {
		s.sh.deleteRow(s.sh.tables[u.Rel], s.r)
	}
	for _, g := range order {
		sh := se.shards[db.ShardOfFingerprint(g.fp, len(se.shards))]
		sh.absorbModTarget(sh.tables[u.Rel], g, pe)
	}
}

// ApplyTransaction runs a whole transaction under the write locks of
// exactly the shards it can touch; transactions over disjoint shards
// proceed concurrently. The transaction's epoch commits to the tracker
// after the locks are released, advancing the read horizon once every
// earlier epoch has also committed.
func (se *ShardedEngine) ApplyTransaction(t *db.Transaction) error {
	shards, pinned := se.analyze(t)
	se.countTxn(shards, pinned)
	epoch := se.epoch.Add(1)
	se.lockShards(shards)
	err := se.execLocked(t, shards, epoch)
	se.unlockShards(shards)
	se.tracker.commit(epoch)
	return err
}

// shardTask is one transaction in flight through the ApplyAll worker
// pool.
type shardTask struct {
	txn    *db.Transaction
	idx    int // position in the batch (ApplyBatch progress tracking)
	epoch  uint64
	shards []int
	// pending counts the involved workers that have not yet reached the
	// task; the last one to arrive executes it (the per-transaction
	// epoch barrier), then closes done.
	pending atomic.Int32
	done    chan struct{}
}

// batchTracker tracks which batch positions applied successfully and
// reports the length of the contiguous applied prefix.
type batchTracker struct {
	mu   sync.Mutex
	done map[int]struct{}
	low  int // txns[0:low] all applied
}

func newBatchTracker() *batchTracker {
	return &batchTracker{done: make(map[int]struct{})}
}

func (t *batchTracker) complete(i int) {
	t.mu.Lock()
	if i != t.low {
		t.done[i] = struct{}{}
		t.mu.Unlock()
		return
	}
	t.low++
	for {
		if _, ok := t.done[t.low]; !ok {
			break
		}
		delete(t.done, t.low)
		t.low++
	}
	t.mu.Unlock()
}

func (t *batchTracker) prefix() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.low
}

// ApplyAll pipelines a batch of transactions through one worker per
// shard. The dispatcher classifies each transaction in log order and
// enqueues it on every involved shard's queue: single-shard
// transactions execute on their shard's worker alone, so streaks
// bound for different shards apply in parallel; multi-shard and
// fan-out transactions rendezvous — the last involved worker to reach
// the task executes it holding all involved write locks, which
// preserves per-shard log order (every queue is FIFO and dispatch
// order is the log order).
//
// ctx is checked before each dispatch; on cancellation or error,
// transactions already dispatched still complete, and the first error
// in dispatch order is returned. Per-shard routing statistics merge
// deterministically (see Stats) because classification happens on the
// dispatcher, in log order. See ApplyBatch to learn how many
// transactions a cancelled or failed batch durably applied.
func (se *ShardedEngine) ApplyAll(ctx context.Context, txns []db.Transaction) error {
	_, err := se.ApplyBatch(ctx, txns)
	return err
}

// ApplyBatch is ApplyAll reporting progress: it returns the length of
// the contiguous batch prefix durably applied (and visible to
// readers). On a nil error applied == len(txns); after a cancellation
// or failure, txns[:applied] need not be replayed — WAL recovery and
// replication resume from txns[applied:]. Because shard workers
// complete out of log order, transactions after the failed one may
// also have applied (they are deliberately not counted: the prefix is
// the resumable part), and transactions enqueued but skipped after the
// first failure never execute.
func (se *ShardedEngine) ApplyBatch(ctx context.Context, txns []db.Transaction) (applied int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(se.shards)
	if n == 1 {
		for i := range txns {
			if err := ctx.Err(); err != nil {
				return i, err
			}
			if err := se.ApplyTransaction(&txns[i]); err != nil {
				return i, err
			}
		}
		return len(txns), nil
	}

	var (
		errMu      sync.Mutex
		firstErr   error
		firstEpoch uint64
	)
	fail := func(epoch uint64, err error) {
		errMu.Lock()
		if firstErr == nil || epoch < firstEpoch {
			firstErr, firstEpoch = err, epoch
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	bt := newBatchTracker()

	queues := make([]chan *shardTask, n)
	for i := range queues {
		queues[i] = make(chan *shardTask, 64)
	}
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for tk := range queues[si] {
				if len(tk.shards) == 1 {
					// Skipped tasks still commit their epoch: the horizon
					// must not stall behind an epoch that will never run.
					if failed() {
						if se.hook.Load() != nil {
							se.stashEvent(tk.epoch, CommitEvent{Epoch: tk.epoch, Kind: CommitTxn})
						}
						se.tracker.commit(tk.epoch)
						continue
					}
					sh := se.shards[si]
					sh.mu.Lock()
					err := se.execLocked(tk.txn, tk.shards, tk.epoch)
					sh.mu.Unlock()
					se.tracker.commit(tk.epoch)
					if err != nil {
						fail(tk.epoch, err)
					} else {
						bt.complete(tk.idx)
					}
					continue
				}
				if tk.pending.Add(-1) > 0 {
					// Other involved workers have not reached the barrier;
					// wait for the last of them to execute the transaction.
					<-tk.done
					continue
				}
				if !failed() {
					se.lockShards(tk.shards)
					err := se.execLocked(tk.txn, tk.shards, tk.epoch)
					se.unlockShards(tk.shards)
					if err != nil {
						fail(tk.epoch, err)
					} else {
						bt.complete(tk.idx)
					}
				} else if se.hook.Load() != nil {
					se.stashEvent(tk.epoch, CommitEvent{Epoch: tk.epoch, Kind: CommitTxn})
				}
				se.tracker.commit(tk.epoch)
				close(tk.done)
			}
		}(si)
	}

	for i := range txns {
		if ctx.Err() != nil || failed() {
			break
		}
		shards, pinned := se.analyze(&txns[i])
		se.countTxn(shards, pinned)
		tk := &shardTask{txn: &txns[i], idx: i, epoch: se.epoch.Add(1), shards: shards}
		if len(shards) > 1 {
			tk.pending.Store(int32(len(shards)))
			tk.done = make(chan struct{})
		}
		for _, si := range shards {
			queues[si] <- tk
		}
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()

	applied = bt.prefix()
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return applied, err
	}
	return applied, ctx.Err()
}

// RestoreRow stores a tuple with an explicit annotation on the shard
// owning it (see Engine.RestoreRow). Each restore is its own epoch,
// committed to the tracker like a transaction.
func (se *ShardedEngine) RestoreRow(rel string, t db.Tuple, ann *core.Expr) error {
	sh := se.shardFor(t)
	collect := se.hook.Load() != nil
	epoch := se.epoch.Add(1)
	sh.mu.Lock()
	sh.nextSeq = func() uint64 { return epoch << 32 }
	sh.curEpoch = epoch
	if collect {
		sh.evRows = sh.evRows[:0]
		sh.collectEv = true
	}
	err := sh.restoreRowLocked(rel, t, ann)
	var rows []RowRef
	if collect {
		rows = append(rows, sh.evRows...)
		sh.evRows = sh.evRows[:0]
		sh.collectEv = false
	}
	sh.nextSeq = nil
	sh.mu.Unlock()
	if collect {
		se.stashEvent(epoch, CommitEvent{Epoch: epoch, Kind: CommitRestore, Rows: rows})
	}
	se.tracker.commit(epoch)
	return err
}

// BuildIndex creates the hash index on every shard's partition of the
// relation (each shard indexes exactly the rows it owns). All shards
// record the same history watermark — the newest epoch allocated
// anywhere, not the last epoch the individual shard saw — so a
// historical scan never mistakes an index built after an epoch for one
// that covers it.
func (se *ShardedEngine) BuildIndex(rel, attr string) error {
	since := EpochSeq(se.epoch.Load())
	for _, sh := range se.shards {
		sh.mu.Lock()
		err := sh.buildIndexLocked(rel, attr, false, since)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Select implements Reader: per-shard planner scans at the committed
// horizon, merged to global insertion order.
func (se *ShardedEngine) Select(rel string, sel db.Pattern) ([]db.Tuple, error) {
	return se.selectAt(rel, sel, se.Horizon())
}

func (se *ShardedEngine) selectAt(rel string, sel db.Pattern, s uint64) ([]db.Tuple, error) {
	var all []*row
	for _, sh := range se.shards {
		rows, err := sh.selectRowsAt(rel, sel, s)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	// Shard-local scans come back in shard insertion order; sequence
	// numbers are globally unique and define the merged order.
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]db.Tuple, len(all))
	for i, r := range all {
		out[i] = r.tuple
	}
	return out, nil
}

// SelectEach streams the tuples matching the selection at the
// committed horizon to f in global insertion order. The sharded form
// materializes the merged result first — the cross-shard order
// requires the sequence sort — so the zero-allocation streaming gate
// applies to the single engine only.
func (se *ShardedEngine) SelectEach(rel string, sel db.Pattern, f func(db.Tuple)) error {
	tuples, err := se.Select(rel, sel)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		f(t)
	}
	return nil
}

// DropIndex removes the index from every shard that has it. Because the
// advisor builds per shard, an auto-built index may exist on a strict
// subset of shards; the drop succeeds if any shard held it and returns
// ErrUnknownIndex only when none did.
func (se *ShardedEngine) DropIndex(rel, attr string) error {
	var firstErr error
	dropped := false
	for _, sh := range se.shards {
		err := sh.DropIndex(rel, attr)
		switch {
		case err == nil:
			dropped = true
		case firstErr == nil:
			firstErr = err
		}
	}
	if dropped {
		return nil
	}
	return firstErr
}

// IndexStats merges the per-shard index statistics by (relation,
// attribute): keys, entries and dead counts sum over shards (shards
// partition the rows, so per-shard posting lists are disjoint; distinct
// values may repeat across shards and Keys counts per-shard lists). An
// index is reported Auto when every shard holding it was advisor-built.
func (se *ShardedEngine) IndexStats() []IndexInfo {
	merged := make(map[string]*IndexInfo)
	var order []string
	for _, sh := range se.shards {
		for _, info := range sh.IndexStats() {
			k := info.Rel + "\x00" + info.Attr
			m := merged[k]
			if m == nil {
				cp := info
				merged[k] = &cp
				order = append(order, k)
				continue
			}
			m.Auto = m.Auto && info.Auto
			m.Keys += info.Keys
			m.Entries += info.Entries
			m.Dead += info.Dead
			m.Compactions += info.Compactions
		}
	}
	out := make([]IndexInfo, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// PlannerStats sums the per-shard planner counters.
func (se *ShardedEngine) PlannerStats() PlannerStats {
	var ps PlannerStats
	for _, sh := range se.shards {
		s := sh.PlannerStats()
		ps.FullScans += s.FullScans
		ps.IndexScans += s.IndexScans
		ps.IntersectScans += s.IntersectScans
		ps.AutoBuilds += s.AutoBuilds
		ps.Compactions += s.Compactions
	}
	return ps
}

// Annotation returns the provenance expression of the tuple at the
// committed horizon, from the shard owning it. Lock-free and
// allocation-free (fingerprint routing plus a fingerprint probe).
func (se *ShardedEngine) Annotation(rel string, t db.Tuple) *core.Expr {
	return se.shardFor(t).annotationAt(rel, t, se.Horizon())
}

// NF returns the normal-form value of the tuple in ModeNormalForm at
// the committed horizon, or nil.
func (se *ShardedEngine) NF(rel string, t db.Tuple) *core.NF {
	return se.shardFor(t).nfAt(rel, t, se.Horizon())
}

// mergedRowsAt returns every row of the relation visible at horizon s
// across all shards, ordered by global sequence number — exactly the
// insertion order of the equivalent single engine at that epoch.
// Lock-free: per-shard lists are snapshotted and visibility-filtered
// before the merge (a shard's list is not seq-sorted in general —
// epochs are allocated before shard locks are taken — so the merge
// sorts the union rather than assuming per-shard order).
func (se *ShardedEngine) mergedRowsAt(rel string, s uint64) []*row {
	var out []*row
	for _, sh := range se.shards {
		for _, r := range sh.tables[rel].list.snapshot() {
			if r.seq <= s {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func (se *ShardedEngine) eachRowAt(rel string, s uint64, f func(t db.Tuple, ann *core.Expr)) {
	if se.schema.Relation(rel) == nil {
		return
	}
	for _, r := range se.mergedRowsAt(rel, s) {
		v := r.at(s)
		if v == nil {
			continue
		}
		f(r.tuple, v.annotation(se.mode))
	}
}

func (se *ShardedEngine) rowsAt(s uint64, f func(rel string, t db.Tuple, ann *core.Expr)) {
	for _, rel := range se.schema.Names() {
		name := rel
		se.eachRowAt(name, s, func(t db.Tuple, ann *core.Expr) { f(name, t, ann) })
	}
}

// EachRow calls f for every row of the relation visible at the
// committed horizon, in the same deterministic order as the single
// engine (global insertion order, merged across shards). The horizon is
// pinned on entry; the pass is lock-free.
func (se *ShardedEngine) EachRow(rel string, f func(t db.Tuple, ann *core.Expr)) {
	se.eachRowAt(rel, se.Horizon(), f)
}

// Rows calls f for every row visible at the committed horizon —
// relations in schema order, rows in global insertion order — against
// one horizon pinned for the whole pass, so the visited rows form one
// consistent cut across shards even while transactions commit
// concurrently.
func (se *ShardedEngine) Rows(f func(rel string, t db.Tuple, ann *core.Expr)) {
	se.rowsAt(se.Horizon(), f)
}

// perShardInt64 evaluates f on every shard concurrently and returns the
// per-shard results in shard order — a deterministic merge regardless
// of completion order.
func (se *ShardedEngine) perShardInt64(f func(sh *Engine) int64) []int64 {
	out := make([]int64, len(se.shards))
	var wg sync.WaitGroup
	for i, sh := range se.shards {
		wg.Add(1)
		go func(i int, sh *Engine) {
			defer wg.Done()
			out[i] = f(sh)
		}(i, sh)
	}
	wg.Wait()
	return out
}

func (se *ShardedEngine) numRowsAt(s uint64) int {
	var n int64
	for _, c := range se.perShardInt64(func(sh *Engine) int64 { return int64(sh.numRowsAt(s)) }) {
		n += c
	}
	return int(n)
}

func (se *ShardedEngine) supportSizeAt(s uint64) int {
	var n int64
	for _, c := range se.perShardInt64(func(sh *Engine) int64 { return int64(sh.supportSizeAt(s)) }) {
		n += c
	}
	return int(n)
}

func (se *ShardedEngine) provSizeAt(s uint64) int64 {
	var n int64
	for _, c := range se.perShardInt64(func(sh *Engine) int64 { return sh.provSizeAt(s) }) {
		n += c
	}
	return n
}

// NumRows reports the total number of rows visible at the committed
// horizon across all shards.
func (se *ShardedEngine) NumRows() int { return se.numRowsAt(se.Horizon()) }

// SupportSize reports the number of visible rows whose annotation is
// not syntactically zero, shard-parallel.
func (se *ShardedEngine) SupportSize() int { return se.supportSizeAt(se.Horizon()) }

// ProvSize reports the total provenance tree size, shard-parallel.
func (se *ShardedEngine) ProvSize() int64 { return se.provSizeAt(se.Horizon()) }

// provDAGSizeAt counts distinct expression nodes at horizon s: shards
// count their partitions in parallel into private seen sets, whose
// union dedupes nodes shared across shards.
func (se *ShardedEngine) provDAGSizeAt(s uint64) int64 {
	sets := make([]map[*core.Expr]struct{}, len(se.shards))
	var wg sync.WaitGroup
	for i, sh := range se.shards {
		wg.Add(1)
		go func(i int, sh *Engine) {
			defer wg.Done()
			sets[i] = make(map[*core.Expr]struct{})
			sh.provDAGSizeAt(sets[i], s)
		}(i, sh)
	}
	wg.Wait()
	union := sets[0]
	for _, set := range sets[1:] {
		for x := range set {
			union[x] = struct{}{}
		}
	}
	return int64(len(union))
}

// ProvDAGSize reports the number of distinct expression nodes backing
// all visible annotations.
func (se *ShardedEngine) ProvDAGSize() int64 { return se.provDAGSizeAt(se.Horizon()) }

// MinimizeAll minimizes every shard's partition in parallel under all
// write locks; ctx is checked at shard boundaries (each shard checks
// between its relations). The pass is one write epoch across all
// shards, so pinned views taken before it keep reading the unminimized
// history. The per-shard sizes merge by summation — deterministic
// regardless of completion order.
func (se *ShardedEngine) MinimizeAll(ctx context.Context) (int64, error) {
	collect := se.hook.Load() != nil
	epoch := se.epoch.Add(1)
	se.lockShards(se.all)
	errs := make([]error, len(se.shards))
	sizes := make([]int64, len(se.shards))
	var wg sync.WaitGroup
	for i, sh := range se.shards {
		sh.curEpoch = epoch
		if collect {
			sh.evRows = sh.evRows[:0]
			sh.collectEv = true
		}
		wg.Add(1)
		go func(i int, sh *Engine) {
			defer wg.Done()
			sizes[i], errs[i] = sh.minimizeAllLocked(ctx)
		}(i, sh)
	}
	wg.Wait()
	if collect {
		var rows []RowRef
		for _, sh := range se.shards {
			rows = append(rows, sh.evRows...)
			sh.evRows = sh.evRows[:0]
			sh.collectEv = false
		}
		se.stashEvent(epoch, CommitEvent{Epoch: epoch, Kind: CommitMinimize, Rows: rows})
	}
	se.unlockShards(se.all)
	se.tracker.commit(epoch)
	var n int64
	for _, s := range sizes {
		n += s
	}
	for _, err := range errs {
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ShardedStats summarizes routing decisions and the row distribution.
type ShardedStats struct {
	Shards     int
	Routed     uint64 // transactions pinned to a single shard
	Rendezvous uint64 // pinned transactions spanning several shards
	FanOut     uint64 // transactions evaluated against every shard
	// RowsPerShard lists stored-row counts in shard order.
	RowsPerShard []int
}

// Stats reports routing counters and per-shard row counts at the
// committed horizon, merged in shard order (deterministic for a
// quiescent engine).
func (se *ShardedEngine) Stats() ShardedStats {
	st := ShardedStats{
		Shards:     len(se.shards),
		Routed:     se.routedTxns.Load(),
		Rendezvous: se.rendezvousTxns.Load(),
		FanOut:     se.fanoutTxns.Load(),
	}
	h := se.Horizon()
	st.RowsPerShard = make([]int, len(se.shards))
	for i, sh := range se.shards {
		st.RowsPerShard[i] = sh.numRowsAt(h)
	}
	return st
}
