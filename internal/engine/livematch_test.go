package engine_test

import (
	"context"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// TestLiveMatchingOracleLiveDB: with live matching the engine's scans
// coincide with the plain engine's, so the all-true valuation still
// reproduces set semantics exactly.
func TestLiveMatchingOracleLiveDB(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	for trial := 0; trial < 40; trial++ {
		initial := randDB(r, 2+r.Intn(10))
		txns := randTxns(r, 1+r.Intn(3), 1+r.Intn(5))
		plain := initial.Clone()
		if err := plain.ApplyAll(txns); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			e := engine.New(mode, initial, engine.WithLiveMatching(true))
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			if live := engine.LiveDB(e); !live.Equal(plain) {
				t.Fatalf("trial %d, %v: live-matching live DB diverges:\n%s", trial, mode, live.Diff(plain))
			}
		}
	}
}

// TestLiveMatchingDeletionPropagationStillExact: removing an input tuple
// can only remove descendants (hyperplane selections are data-
// independent), so deletion propagation stays exact under live matching.
func TestLiveMatchingDeletionPropagationStillExact(t *testing.T) {
	r := rand.New(rand.NewSource(503))
	for trial := 0; trial < 30; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		txns := randTxns(r, 1+r.Intn(2), 1+r.Intn(5))
		victims := initial.Instance("R").Tuples()
		victim := victims[r.Intn(len(victims))]
		annotOf := func(rel string, tu db.Tuple) core.Annot {
			return core.TupleAnnot("t_" + tu.Key())
		}
		smaller := db.NewDatabase(initial.Schema())
		for _, tu := range victims {
			if !tu.Equal(victim) {
				_ = smaller.InsertTuple("R", tu)
			}
		}
		if err := smaller.ApplyAll(txns); err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.ModeNormalForm, initial,
			engine.WithLiveMatching(true), engine.WithInitialAnnotations(annotOf))
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		got := engine.DeletionPropagation(e, annotOf("R", victim))
		if !got.Equal(smaller) {
			t.Fatalf("trial %d: deletion propagation diverged under live matching:\n%s", trial, got.Diff(smaller))
		}
	}
}

// TestLiveMatchingLosesAbortInformation documents the trade-off: under
// the formal semantics (default), aborting a transaction by valuation
// matches re-execution; under live matching the information needed for
// that hypothetical is not recorded and the valuation diverges. The
// scenario is the paper's own Figure 4: T1 kills the Sport bike before
// T2 discounts Sport products, so "what if T1 aborted?" requires T2's
// effect on the then-live bike — which only the formal semantics
// tracked.
func TestLiveMatchingLosesAbortInformation(t *testing.T) {
	initial := productsDB(t)
	txns := []db.Transaction{transactionT1(), transactionT2()}

	// Ground truth: re-execution without T1.
	want := initial.Clone()
	if err := want.ApplyTransaction(&txns[1]); err != nil {
		t.Fatal(err)
	}
	bike50 := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(50)}
	if !want.Instance("Products").Contains(bike50) {
		t.Fatal("setup: without T1 the Sport bike is discounted")
	}

	// Formal semantics: correct.
	formal := engine.New(engine.ModeNormalForm, initial)
	if err := formal.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	if got := engine.AbortTransactions(formal, "p"); !got.Equal(want) {
		t.Fatalf("formal semantics must answer the abortion correctly:\n%s", got.Diff(want))
	}

	// Live matching: T2 never touched the dead bike, so the abortion
	// valuation misses the discounted tuple.
	lm := engine.New(engine.ModeNormalForm, initial, engine.WithLiveMatching(true))
	if err := lm.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	got := engine.AbortTransactions(lm, "p")
	if got.Equal(want) {
		t.Fatal("expected live matching to lose the abortion information on Figure 4's scenario")
	}
	if got.Instance("Products").Contains(bike50) {
		t.Error("live matching should specifically miss the discounted bike")
	}
}

// TestLiveMatchingBoundsProvenanceGrowth: repeated updates selecting the
// same constants grow per-tuple provenance linearly under live matching,
// versus the compounding dead-version sums of the formal semantics.
func TestLiveMatchingBoundsProvenanceGrowth(t *testing.T) {
	schema := db.MustSchema(db.MustRelationSchema("W",
		db.Attribute{Name: "id", Kind: db.KindInt},
		db.Attribute{Name: "ytd", Kind: db.KindInt},
	))
	initial := db.NewDatabase(schema)
	if err := initial.InsertTuple("W", db.Tuple{db.I(1), db.I(0)}); err != nil {
		t.Fatal(err)
	}
	// n "payments": UPDATE W SET ytd = k WHERE id = 1 (key-only
	// selection, like an unpinned TPC-C payment).
	var txns []db.Transaction
	n := 14
	for k := 1; k <= n; k++ {
		txns = append(txns, db.Transaction{
			Label: labelFor(k),
			Updates: []db.Update{db.Modify("W",
				db.Pattern{db.Const(db.I(1)), db.AnyVar("y")},
				[]db.SetClause{db.Keep(), db.SetTo(db.I(int64(k)))})},
		})
	}
	formal := engine.New(engine.ModeNormalForm, initial)
	if err := formal.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	lm := engine.New(engine.ModeNormalForm, initial, engine.WithLiveMatching(true))
	if err := lm.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	if formal.ProvSize() < 10*lm.ProvSize() {
		t.Errorf("expected compounding growth under formal semantics: formal=%d live=%d",
			formal.ProvSize(), lm.ProvSize())
	}
	// Per-version annotations are linear in the number of updates, so
	// the total across the n retained versions is quadratic (the formal
	// semantics is exponential: each version re-absorbs all prior ones).
	if lm.ProvSize() > int64(4*n*n) {
		t.Errorf("live matching should stay quadratic in total: %d nodes for %d updates", lm.ProvSize(), n)
	}
	// Both still agree on the final database.
	if !engine.LiveDB(formal).Equal(engine.LiveDB(lm)) {
		t.Error("final databases diverge")
	}
}

func labelFor(k int) string {
	return "pay" + string(rune('a'+k%26)) + string(rune('a'+(k/26)%26))
}
