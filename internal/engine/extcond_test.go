package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// These tests cover the conjunctive extension beyond the hyperplane
// fragment (db.AttrCond / Update.WithConds — the paper's Section 8
// future work): provenance tracking and the semantic applications stay
// exact, even though the equivalence-invariance guarantee no longer has
// a complete axiomatization behind it.

func randCondUpdate(r *rand.Rand) db.Update {
	u := randUpdate(r)
	if u.Kind == db.OpInsert {
		return u
	}
	// id and val are both ints: comparable.
	if r.Intn(2) == 0 {
		return u.WithConds(db.AttrCond{Left: 0, Right: 2, Neq: r.Intn(2) == 0})
	}
	return u
}

func randCondTxns(r *rand.Rand, nTxn, nOps int) []db.Transaction {
	txns := make([]db.Transaction, nTxn)
	for i := range txns {
		txns[i].Label = fmt.Sprintf("q%d", i)
		for j := 0; j < nOps; j++ {
			txns[i].Updates = append(txns[i].Updates, randCondUpdate(r))
		}
	}
	return txns
}

func TestAttrCondSemantics(t *testing.T) {
	s := randSchema()
	d := db.NewDatabase(s)
	for _, tu := range []db.Tuple{
		{db.I(1), db.S("a"), db.I(1)},
		{db.I(1), db.S("a"), db.I(2)},
		{db.I(3), db.S("b"), db.I(3)},
	} {
		if err := d.InsertTuple("R", tu); err != nil {
			t.Fatal(err)
		}
	}
	// DELETE WHERE id = val (diagonal).
	del := db.Delete("R", db.AllPattern(3)).WithConds(db.AttrCond{Left: 0, Right: 2})
	if err := del.Validate(s); err != nil {
		t.Fatal(err)
	}
	if del.IsHyperplane() {
		t.Error("conditioned update must not report hyperplane")
	}
	if err := d.Apply(del); err != nil {
		t.Fatal(err)
	}
	if d.NumTuples() != 1 || !d.Instance("R").Contains(db.Tuple{db.I(1), db.S("a"), db.I(2)}) {
		t.Errorf("diagonal delete left %v", d.Instance("R").Tuples())
	}
}

func TestAttrCondValidate(t *testing.T) {
	s := randSchema()
	bad := db.Delete("R", db.AllPattern(3)).WithConds(db.AttrCond{Left: 0, Right: 1}) // int vs string
	if err := bad.Validate(s); err == nil {
		t.Error("kind-mismatched condition accepted")
	}
	oob := db.Delete("R", db.AllPattern(3)).WithConds(db.AttrCond{Left: 0, Right: 9})
	if err := oob.Validate(s); err == nil {
		t.Error("out-of-range condition accepted")
	}
	ins := db.Insert("R", db.Tuple{db.I(1), db.S("a"), db.I(1)}).WithConds(db.AttrCond{Left: 0, Right: 2})
	if err := ins.Validate(s); err == nil {
		t.Error("conditioned insertion accepted")
	}
}

// TestOracleLiveDBWithConds: the all-true valuation still reproduces
// set semantics when updates carry inter-attribute conditions.
func TestOracleLiveDBWithConds(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for trial := 0; trial < 40; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		txns := randCondTxns(r, 1+r.Intn(3), 1+r.Intn(5))
		plain := initial.Clone()
		if err := plain.ApplyAll(txns); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			e := engine.New(mode, initial)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			if live := engine.LiveDB(e); !live.Equal(plain) {
				t.Fatalf("trial %d, %v: live DB diverges with attribute conditions:\n%s", trial, mode, live.Diff(plain))
			}
		}
	}
}

// TestOracleDeletionPropagationWithConds: what-if deletion remains exact
// under the extension (selections are still data-independent across
// tuples).
func TestOracleDeletionPropagationWithConds(t *testing.T) {
	r := rand.New(rand.NewSource(603))
	for trial := 0; trial < 25; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		txns := randCondTxns(r, 1+r.Intn(2), 1+r.Intn(5))
		victims := initial.Instance("R").Tuples()
		victim := victims[r.Intn(len(victims))]
		annotOf := func(rel string, tu db.Tuple) core.Annot {
			return core.TupleAnnot("t_" + tu.Key())
		}
		smaller := db.NewDatabase(initial.Schema())
		for _, tu := range victims {
			if !tu.Equal(victim) {
				_ = smaller.InsertTuple("R", tu)
			}
		}
		if err := smaller.ApplyAll(txns); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			e := engine.New(mode, initial, engine.WithInitialAnnotations(annotOf))
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			got := engine.DeletionPropagation(e, annotOf("R", victim))
			if !got.Equal(smaller) {
				t.Fatalf("trial %d, %v: deletion propagation diverged with conditions:\n%s", trial, mode, got.Diff(smaller))
			}
		}
	}
}

// TestOracleAbortWithConds: transaction abortion by valuation also
// stays exact under the formal (dead tuples participate) semantics —
// correctness of the construction is semantic and does not rest on the
// axiomatization that the extension lacks.
func TestOracleAbortWithConds(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	for trial := 0; trial < 25; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		txns := randCondTxns(r, 2+r.Intn(2), 1+r.Intn(4))
		aborted := r.Intn(len(txns))
		want := initial.Clone()
		for i := range txns {
			if i == aborted {
				continue
			}
			if err := want.ApplyTransaction(&txns[i]); err != nil {
				t.Fatal(err)
			}
		}
		e := engine.New(engine.ModeNormalForm, initial)
		if err := e.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		got := engine.AbortTransactions(e, txns[aborted].Label)
		if !got.Equal(want) {
			t.Fatalf("trial %d: abort diverged with conditions:\n%s", trial, got.Diff(want))
		}
	}
}
