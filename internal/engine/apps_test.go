package engine_test

import (
	"context"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/upstruct"
)

// accessControlSetup builds the Section 4.1 access-control scenario:
// per-country product visibility, an EU-only price update, a global
// category deletion.
func accessControlSetup(t *testing.T) (*engine.Engine, upstruct.Env[upstruct.Set]) {
	t.Helper()
	initial := productsDB(t)
	annots := engine.WithInitialAnnotations(func(rel string, tu db.Tuple) core.Annot {
		return core.TupleAnnot("t:" + tu[0].Str() + "/" + tu[1].Str())
	})
	e := engine.New(engine.ModeNormalForm, initial, annots)
	txns := []db.Transaction{
		{Label: "eu_sale", Updates: []db.Update{
			db.Modify("Products",
				db.Pattern{db.AnyVar("a"), db.Const(db.S("Sport")), db.AnyVar("c")},
				[]db.SetClause{db.Keep(), db.Keep(), db.SetTo(db.I(50))}),
		}},
		{Label: "cleanup", Updates: []db.Update{
			db.Delete("Products", db.Pattern{db.AnyVar("a"), db.Const(db.S("Fashion")), db.AnyVar("c")}),
		}},
	}
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	visibility := map[string]upstruct.Set{
		"t:Kids mnt bike/Sport":       upstruct.NewSet("IL", "FR", "US"),
		"t:Kids mnt bike/Kids":        upstruct.NewSet("IL", "FR", "US"),
		"t:Tennis Racket/Sport":       upstruct.NewSet("FR", "DE"),
		"t:Children sneakers/Fashion": upstruct.NewSet("IL"),
	}
	env := func(a core.Annot) upstruct.Set {
		switch a {
		case core.QueryAnnot("eu_sale"):
			return upstruct.NewSet("FR", "DE")
		case core.QueryAnnot("cleanup"):
			return upstruct.NewSet("IL", "FR", "DE", "US")
		default:
			return visibility[a.Name]
		}
	}
	return e, env
}

func TestAccessControlSemantics(t *testing.T) {
	e, env := accessControlSetup(t)
	result := engine.AccessControl(e, env)
	rows := result["Products"]

	// The discounted racket is visible exactly where both the tuple and
	// the sale transaction are visible: {FR,DE} ∩ {FR,DE} = {FR, DE}.
	discounted := db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(50)}
	if got := rows[discounted.Key()]; !got.Equal(upstruct.NewSet("DE", "FR")) {
		t.Errorf("discounted racket visible in %v, want {DE, FR}", got)
	}
	// The racket at the old price survives exactly outside the sale:
	// {FR,DE} ∖ {FR,DE} = ∅ — absent from the result map.
	original := db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(70)}
	if _, ok := rows[original.Key()]; ok {
		t.Error("racket at the old price should be visible nowhere")
	}
	// The bike at the old price survives outside the sale:
	// {IL,FR,US} ∖ {FR,DE} = {IL, US}.
	oldBike := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)}
	if got := rows[oldBike.Key()]; !got.Equal(upstruct.NewSet("IL", "US")) {
		t.Errorf("old-price bike visible in %v, want {IL, US}", got)
	}
	// The sneakers were deleted globally: invisible.
	sneakers := db.Tuple{db.S("Children sneakers"), db.S("Fashion"), db.I(40)}
	if _, ok := rows[sneakers.Key()]; ok {
		t.Error("sneakers should be deleted for every country")
	}
}

// TestAccessControlRestrictionHomomorphism checks Prop. 4.2 end to end:
// restricting the set-valued result to one country coincides with
// evaluating in the Boolean structure under the restricted valuation.
func TestAccessControlRestrictionHomomorphism(t *testing.T) {
	e, env := accessControlSetup(t)
	for _, country := range []string{"IL", "FR", "DE", "US"} {
		boolView := engine.BoolRestrict(e, func(a core.Annot) bool { return env(a).Contains(country) })
		setResult := engine.AccessControl(e, env)
		n := 0
		for _, rows := range setResult {
			for key, set := range rows {
				if set.Contains(country) {
					n++
					_ = key
				}
			}
		}
		if got := boolView.NumTuples(); got != n {
			t.Errorf("country %s: Boolean view has %d tuples, set view %d", country, got, n)
		}
	}
}

func TestCertifySemantics(t *testing.T) {
	initial := productsDB(t)
	annots := engine.WithInitialAnnotations(func(rel string, tu db.Tuple) core.Annot {
		return core.TupleAnnot("t:" + tu[0].Str() + "/" + tu[1].Str())
	})
	e := engine.New(engine.ModeNormalForm, initial, annots)
	txn := db.Transaction{Label: "sale", Updates: []db.Update{
		db.Modify("Products",
			db.Pattern{db.AnyVar("a"), db.Const(db.S("Sport")), db.AnyVar("c")},
			[]db.SetClause{db.Keep(), db.Keep(), db.SetTo(db.I(50))}),
	}}
	if err := e.ApplyTransaction(&txn); err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{
		"t:Kids mnt bike/Sport":       0.9,
		"t:Kids mnt bike/Kids":        0.9,
		"t:Tennis Racket/Sport":       0.4,
		"t:Children sneakers/Fashion": 0.7,
		"sale":                        0.8,
	}
	env := func(a core.Annot) upstruct.Trust { return upstruct.Score(scores[a.Name]) }

	// L = 0.5: the racket (0.4) is untrusted, so its discounted version
	// does not certify; the bike's does (0.9 and 0.8 both pass).
	certified := engine.Certify(e, 0.5, env)
	bike50 := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(50)}
	racket50 := db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(50)}
	if !certified.Instance("Products").Contains(bike50) {
		t.Error("discounted bike should certify at L=0.5")
	}
	if certified.Instance("Products").Contains(racket50) {
		t.Error("discounted racket must not certify at L=0.5")
	}
	// L = 0.85: the sale itself (0.8) becomes untrusted — no discounted
	// tuple certifies, but the original bike rows do.
	strict := engine.Certify(e, 0.85, env)
	if strict.Instance("Products").Contains(bike50) {
		t.Error("discounted bike must not certify at L=0.85")
	}
	bike120 := db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)}
	if !strict.Instance("Products").Contains(bike120) {
		t.Error("original bike should certify at L=0.85 (the untrusted sale did not happen)")
	}
}

// TestSpecializeVisitsAllRows: Specialize streams tombstones too, with
// values that evaluate to the structure's zero.
func TestSpecializeVisitsAllRows(t *testing.T) {
	e := engine.New(engine.ModeNaive, productsDB(t))
	txn := db.Transaction{Label: "p", Updates: []db.Update{
		db.Delete("Products", db.AllPattern(3)),
	}}
	if err := e.ApplyTransaction(&txn); err != nil {
		t.Fatal(err)
	}
	visited := 0
	live := 0
	engine.Specialize[bool](e, upstruct.Bool, func(core.Annot) bool { return true },
		func(rel string, tu db.Tuple, v bool) {
			visited++
			if v {
				live++
			}
		})
	if visited != 4 || live != 0 {
		t.Errorf("visited %d rows (%d live), want 4 tombstones", visited, live)
	}
}

// TestTrustToBoolHomomorphism: trusted() is a structure homomorphism
// from the certification semantics to the Boolean semantics, so
// Certify and BoolRestrict agree (another instance of Prop. 4.2).
func TestTrustToBoolHomomorphism(t *testing.T) {
	st := upstruct.TrustStructure{L: 0.5}
	h := func(a upstruct.Trust) bool { return st.Trusted(a) }
	samples := []upstruct.Trust{
		st.Zero(), upstruct.Score(0.2), upstruct.Score(0.7),
		{V: 1, R: upstruct.TrustTrue}, {V: 0, R: upstruct.TrustFalse},
	}
	for _, v := range upstruct.CheckHomomorphism[upstruct.Trust, bool](h, st, upstruct.Bool,
		func(a, b bool) bool { return a == b }, samples) {
		t.Error(v)
	}
}
