package engine_test

// Differential testing of the two provenance engines: over seeded
// random workload logs, the naive engine (which materializes raw
// construction expressions) and the normal-form engine (which maintains
// Theorem 5.3 shapes incrementally) must agree row by row up to UP[X]
// equivalence. With hash-consed expressions the check is sharp:
// canonicalization (Normalize + Minimize) must map both annotations to
// the identical interned node. Rows present in only one engine are
// compared against 0 — the engines may retain different phantom rows
// whose annotations are ≡ 0 (e.g. a modification target fed only by
// deleted sources), and that is exactly what canonicalization decides.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/upstruct"
	"hyperprov/internal/workload"
)

func canon(e *core.Expr) *core.Expr {
	if e == nil {
		e = core.Zero()
	}
	return core.Minimize(core.Normalize(e))
}

// collectRows snapshots every row of the engine keyed by relation and
// tuple key.
func collectRows(e *engine.Engine) map[string]*core.Expr {
	out := make(map[string]*core.Expr)
	e.Rows(func(rel string, t db.Tuple, ann *core.Expr) {
		out[rel+"\x00"+t.Key()] = ann
	})
	return out
}

func diffConfigs() []workload.Config {
	var cfgs []workload.Config
	for seed := int64(1); seed <= 5; seed++ {
		cfgs = append(cfgs, workload.Config{
			Tuples: 60, Pool: 12, Group: 3, Updates: 40,
			QueriesPerTxn: 4, MergeRatio: 0.4, Seed: seed,
		})
	}
	// Knob sweep: single-tuple groups, long transactions, merge-heavy.
	cfgs = append(cfgs,
		workload.Config{Tuples: 50, Pool: 10, Group: 1, Updates: 60, QueriesPerTxn: 1, MergeRatio: 0, Seed: 7},
		workload.Config{Tuples: 80, Pool: 20, Group: 5, Updates: 30, QueriesPerTxn: 10, MergeRatio: 0.8, Seed: 8},
		workload.Config{Tuples: 40, Pool: 8, Group: 2, Updates: 80, QueriesPerTxn: 3, MergeRatio: 0.5, Seed: 9},
	)
	return cfgs
}

// TestDifferentialNaiveVsNormalForm runs both engines over seeded
// random transaction logs and asserts canonical pointer identity of
// every row's annotation, plus agreement of the live database under
// random Boolean valuations.
func TestDifferentialNaiveVsNormalForm(t *testing.T) {
	for ci, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d_seed%d", ci, cfg.Seed), func(t *testing.T) {
			initial, txns, err := workload.Generate(cfg)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			naive := engine.New(engine.ModeNaive, initial)
			nf := engine.New(engine.ModeNormalForm, initial)
			if err := naive.ApplyAll(context.Background(), txns); err != nil {
				t.Fatalf("naive apply: %v", err)
			}
			if err := nf.ApplyAll(context.Background(), txns); err != nil {
				t.Fatalf("nf apply: %v", err)
			}

			nRows, fRows := collectRows(naive), collectRows(nf)
			keys := make(map[string]struct{}, len(nRows)+len(fRows))
			for k := range nRows {
				keys[k] = struct{}{}
			}
			for k := range fRows {
				keys[k] = struct{}{}
			}
			var annots map[core.Annot]struct{}
			for k := range keys {
				cn, cf := canon(nRows[k]), canon(fRows[k])
				if cn != cf {
					t.Fatalf("row %q: canonical annotations differ\nnaive: %s\nnf:    %s", k, cn, cf)
				}
				if !cn.IsZero() && !cn.Interned() {
					t.Fatalf("row %q: canonical annotation not interned", k)
				}
				annots = cn.Annots(annots)
			}

			// Random valuations over every annotation in play: the live
			// databases must coincide (deletion-propagation semantics).
			r := rand.New(rand.NewSource(cfg.Seed * 1009))
			names := make([]core.Annot, 0, len(annots))
			for a := range annots {
				names = append(names, a)
			}
			for trial := 0; trial < 5; trial++ {
				vals := make(map[core.Annot]bool, len(names))
				for _, a := range names {
					vals[a] = r.Intn(4) > 0 // mostly live
				}
				env := upstruct.MapEnv(vals, true)
				for k := range keys {
					ln := upstruct.Eval(canon(nRows[k]), upstruct.Bool, env)
					lf := upstruct.Eval(canon(fRows[k]), upstruct.Bool, env)
					if ln != lf {
						t.Fatalf("row %q: liveness differs under trial %d", k, trial)
					}
				}
			}
		})
	}
}
