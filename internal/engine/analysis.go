package engine

import (
	"sort"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/upstruct"
)

// Dependencies lists the basic annotations a tuple's provenance depends
// on, split into input-tuple annotations and transaction annotations —
// the raw material for the hypothetical-reasoning applications of
// Section 4 ("which inputs and which transactions could affect this
// tuple?"). Both slices are sorted by name. The tuple must be stored
// (possibly as a tombstone); otherwise both results are nil.
func Dependencies(e Reader, rel string, t db.Tuple) (tuples, txns []core.Annot) {
	ann := e.Annotation(rel, t)
	if ann == nil {
		return nil, nil
	}
	for a := range ann.Annots(nil) {
		if a.Kind == core.KindQuery {
			txns = append(txns, a)
		} else {
			tuples = append(tuples, a)
		}
	}
	sortAnnots(tuples)
	sortAnnots(txns)
	return tuples, txns
}

func sortAnnots(as []core.Annot) {
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
}

// Impact is the inverted dependency index of an annotated database: for
// every basic annotation, the stored rows whose provenance mentions it.
// Build it once with BuildImpact and query it for impact analysis
// ("which outputs could change if this input tuple or transaction were
// revoked?"); candidates are a sound overapproximation of the rows whose
// membership actually flips, which RefineImpact narrows by valuation.
type Impact struct {
	e     Reader
	index map[core.Annot][]impactRow
}

type impactRow struct {
	rel   string
	tuple db.Tuple
}

// BuildImpact scans every stored row once — against a single pinned
// MVCC horizon, so the index reflects one consistent state — and
// indexes its annotation's basic annotations.
func BuildImpact(e Reader) *Impact {
	im := &Impact{e: e, index: make(map[core.Annot][]impactRow)}
	e.Rows(func(rel string, t db.Tuple, ann *core.Expr) {
		for a := range ann.Annots(nil) {
			im.index[a] = append(im.index[a], impactRow{rel: rel, tuple: t})
		}
	})
	return im
}

// Candidates returns the rows whose provenance mentions the annotation,
// as (relation, tuple) pairs in index order. The returned tuples must
// not be modified.
func (im *Impact) Candidates(a core.Annot) (rels []string, tuples []db.Tuple) {
	for _, r := range im.index[a] {
		rels = append(rels, r.rel)
		tuples = append(tuples, r.tuple)
	}
	return rels, tuples
}

// NumAnnotations reports the number of distinct basic annotations in
// the index.
func (im *Impact) NumAnnotations() int { return len(im.index) }

// Flipped evaluates, for every candidate row of the annotation, whether
// revoking it (assigning false, all else true) actually changes the
// row's membership, and returns the rows that flip. This is deletion
// propagation (for tuple annotations) or transaction abortion (for
// query annotations) restricted to the candidate set — equivalent to
// the global valuation because rows whose provenance does not mention
// the annotation cannot change.
func (im *Impact) Flipped(a core.Annot) (rels []string, tuples []db.Tuple) {
	withoutA := upstruct.Env[bool](func(x core.Annot) bool { return x != a })
	allTrue := upstruct.Env[bool](func(core.Annot) bool { return true })
	for _, r := range im.index[a] {
		ann := im.e.Annotation(r.rel, r.tuple)
		if ann == nil {
			continue
		}
		before := upstruct.Eval(ann, upstruct.Bool, allTrue)
		after := upstruct.Eval(ann, upstruct.Bool, withoutA)
		if before != after {
			rels = append(rels, r.rel)
			tuples = append(tuples, r.tuple)
		}
	}
	return rels, tuples
}
