package engine

import (
	"context"
	"runtime"
	"sync"

	"hyperprov/internal/db"
	"hyperprov/internal/upstruct"
)

// rowChunk is one relation-homogeneous slice of rows handed to a
// specialization worker, together with the horizon its rows must be
// resolved at.
type rowChunk struct {
	rel  string
	at   uint64
	rows []*row
}

// chunkPool recycles the chunk descriptor slices of the parallel
// passes. Unlike the writer-owned scan-buffer free-list, parallel
// passes run concurrently on the reader side, so this scratch really
// needs sync.Pool. Descriptors are cleared on put so the pool never
// pins row snapshots.
var chunkPool = sync.Pool{
	New: func() any {
		s := make([]rowChunk, 0, 16)
		return &s
	},
}

func getChunkBuf() []rowChunk {
	return (*chunkPool.Get().(*[]rowChunk))[:0]
}

func putChunkBuf(chunks []rowChunk) {
	chunks = chunks[:cap(chunks)]
	for i := range chunks {
		chunks[i] = rowChunk{}
	}
	chunks = chunks[:0]
	chunkPool.Put(&chunks)
}

// chunksAt splits every relation's visible rows at horizon s into up to
// workers pieces, in deterministic order (schema order, then row order
// within the relation), appending into buf. Lock-free: the lists are
// snapshotted and rows beyond the horizon excluded up front, so workers
// only resolve versions.
func (e *Engine) chunksAt(buf []rowChunk, workers int, s uint64) []rowChunk {
	chunks := buf
	for _, rel := range e.schema.Names() {
		tbl := e.tables[rel]
		rows := tbl.list.snapshot()
		// Visible rows form a prefix (plain-engine lists are
		// sequence-ordered); the trim walks the contiguous sequence
		// vector instead of chasing row pointers.
		n := len(rows)
		if seqs := tbl.cols.seqPrefix(n); len(seqs) == n {
			for n > 0 && seqs[n-1] > s {
				n--
			}
		} else {
			for n > 0 && rows[n-1].seq > s {
				n--
			}
		}
		rows = rows[:n]
		per := (len(rows) + workers - 1) / workers
		if per == 0 {
			continue
		}
		for start := 0; start < len(rows); start += per {
			end := min(start+per, len(rows))
			chunks = append(chunks, rowChunk{rel: rel, at: s, rows: rows[start:end]})
		}
	}
	return chunks
}

// chunksAt splits the shard-merged visible rows (global insertion
// order at horizon s) into up to workers pieces per relation.
func (se *ShardedEngine) chunksAt(buf []rowChunk, workers int, s uint64) []rowChunk {
	chunks := buf
	for _, rel := range se.schema.Names() {
		rows := se.mergedRowsAt(rel, s)
		per := (len(rows) + workers - 1) / workers
		if per == 0 {
			continue
		}
		for start := 0; start < len(rows); start += per {
			end := min(start+per, len(rows))
			chunks = append(chunks, rowChunk{rel: rel, at: s, rows: rows[start:end]})
		}
	}
	return chunks
}

// readerChunks resolves a Reader to its chunk list (built in a pooled
// buffer the caller must return via putChunkBuf) and mode, or ok=false
// for foreign implementations that must use the generic fallback.
func readerChunks(e Reader, workers int) (chunks []rowChunk, mode Mode, ok bool) {
	switch v := e.(type) {
	case *Engine:
		return v.chunksAt(getChunkBuf(), workers, v.Horizon()), v.mode, true
	case *ShardedEngine:
		return v.chunksAt(getChunkBuf(), workers, v.Horizon()), v.mode, true
	case *engineView:
		return v.e.chunksAt(getChunkBuf(), workers, v.s), v.e.mode, true
	case *shardedView:
		return v.se.chunksAt(getChunkBuf(), workers, v.s), v.se.mode, true
	default:
		return nil, 0, false
	}
}

// SpecializeParallel is Specialize with row evaluation spread over
// workers goroutines (0 = GOMAXPROCS). Expressions are immutable and
// the structure's operations must be pure, so evaluation parallelizes
// trivially; f is called from multiple goroutines and must be safe for
// concurrent use (or accumulate per-chunk as BoolRestrictParallel
// does). The MVCC horizon is pinned once at entry (a View's own pinned
// horizon is used as-is), so the pass is lock-free and consistent
// against concurrent writers. ctx is checked at chunk boundaries
// before dispatch; on cancellation the pass stops early — chunks
// already dispatched still complete — and ctx.Err() is returned. This
// is a beyond-the-paper extension: provenance usage is the measurement
// of Figures 7c/8c, and valuation is embarrassingly parallel, unlike
// the re-execution baseline.
func SpecializeParallel[T any](ctx context.Context, e Reader, s upstruct.Structure[T], env upstruct.Env[T], workers int, f func(rel string, t db.Tuple, v T)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		Specialize(e, s, env, f)
		return nil
	}
	chunks, mode, ok := readerChunks(e, workers)
	if !ok {
		if err := ctx.Err(); err != nil {
			return err
		}
		Specialize(e, s, env, f)
		return nil
	}
	defer putChunkBuf(chunks)
	return specializeChunks(ctx, chunks, mode, s, env, f)
}

func specializeChunks[T any](ctx context.Context, chunks []rowChunk, mode Mode, s upstruct.Structure[T], env upstruct.Env[T], f func(rel string, t db.Tuple, v T)) error {
	var wg sync.WaitGroup
	for i := range chunks {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(c rowChunk) {
			defer wg.Done()
			for _, r := range c.rows {
				ver := r.at(c.at)
				if ver == nil {
					continue
				}
				f(c.rel, r.tuple, evalVersion(mode, ver, s, env))
			}
		}(chunks[i])
	}
	wg.Wait()
	return ctx.Err()
}

// BoolRestrictParallel materializes the database selected by a Boolean
// valuation using parallel evaluation. Workers accumulate hits into
// private buffers (no shared state on the hot path) that are merged in
// chunk order at the end, so the result's insertion order matches the
// sequential BoolRestrict on either engine (or view). env must be safe
// for concurrent use (pure functions and MapEnv lookups are). The
// horizon is pinned once at entry; the pass is lock-free. ctx is
// checked at chunk boundaries; on cancellation, (nil, ctx.Err()) is
// returned.
func BoolRestrictParallel(ctx context.Context, e Reader, env upstruct.Env[bool], workers int) (*db.Database, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks, mode, ok := readerChunks(e, workers)
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return BoolRestrict(e, env), nil
	}
	defer putChunkBuf(chunks)
	hits := make([][]db.Tuple, len(chunks))
	var wg sync.WaitGroup
	for i := range chunks {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := chunks[i]
			local := make([]db.Tuple, 0, len(c.rows))
			for _, r := range c.rows {
				ver := r.at(c.at)
				if ver == nil {
					continue
				}
				if evalVersion(mode, ver, upstruct.Bool, env) {
					local = append(local, r.tuple)
				}
			}
			hits[i] = local
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := db.NewDatabase(e.Schema())
	for i, c := range chunks {
		for _, t := range hits[i] {
			_ = out.InsertTuple(c.rel, t)
		}
	}
	return out, nil
}
