package engine

import (
	"context"
	"runtime"
	"sync"

	"hyperprov/internal/db"
	"hyperprov/internal/upstruct"
)

// rowChunk is one relation-homogeneous slice of rows handed to a
// specialization worker.
type rowChunk struct {
	rel  string
	rows []*row
}

// chunksLocked splits every relation's row list into up to workers
// pieces, in deterministic order (schema order, then row order within
// the relation). The caller holds e.mu.
func (e *Engine) chunksLocked(workers int) []rowChunk {
	var chunks []rowChunk
	for _, rel := range e.schema.Names() {
		rows := e.tables[rel].list
		per := (len(rows) + workers - 1) / workers
		if per == 0 {
			continue
		}
		for start := 0; start < len(rows); start += per {
			end := min(start+per, len(rows))
			chunks = append(chunks, rowChunk{rel: rel, rows: rows[start:end]})
		}
	}
	return chunks
}

// chunksLocked splits the shard-merged row lists (global insertion
// order) into up to workers pieces per relation. The caller holds all
// shard locks.
func (se *ShardedEngine) chunksLocked(workers int) []rowChunk {
	var chunks []rowChunk
	for _, rel := range se.schema.Names() {
		rows := se.mergedRowsLocked(rel)
		per := (len(rows) + workers - 1) / workers
		if per == 0 {
			continue
		}
		for start := 0; start < len(rows); start += per {
			end := min(start+per, len(rows))
			chunks = append(chunks, rowChunk{rel: rel, rows: rows[start:end]})
		}
	}
	return chunks
}

// SpecializeParallel is Specialize with row evaluation spread over
// workers goroutines (0 = GOMAXPROCS). Expressions are immutable and
// the structure's operations must be pure, so evaluation parallelizes
// trivially; f is called from multiple goroutines and must be safe for
// concurrent use (or accumulate per-chunk as BoolRestrictParallel
// does). ctx is checked at chunk boundaries before dispatch; on
// cancellation the pass stops early — chunks already dispatched still
// complete — and ctx.Err() is returned. This is a beyond-the-paper
// extension: provenance usage is the measurement of Figures 7c/8c, and
// valuation is embarrassingly parallel, unlike the re-execution
// baseline.
func SpecializeParallel[T any](ctx context.Context, e DB, s upstruct.Structure[T], env upstruct.Env[T], workers int, f func(rel string, t db.Tuple, v T)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch v := e.(type) {
	case *Engine:
		v.mu.RLock()
		defer v.mu.RUnlock()
		if workers == 1 {
			if err := ctx.Err(); err != nil {
				return err
			}
			specialize(v, s, env, f)
			return nil
		}
		return specializeChunks(ctx, v.chunksLocked(workers), v.mode, s, env, f)
	case *ShardedEngine:
		v.rlockAll()
		defer v.runlockAll()
		if workers == 1 {
			if err := ctx.Err(); err != nil {
				return err
			}
			specializeSharded(v, s, env, f)
			return nil
		}
		return specializeChunks(ctx, v.chunksLocked(workers), v.mode, s, env, f)
	default:
		if err := ctx.Err(); err != nil {
			return err
		}
		Specialize(e, s, env, f)
		return nil
	}
}

func specializeChunks[T any](ctx context.Context, chunks []rowChunk, mode Mode, s upstruct.Structure[T], env upstruct.Env[T], f func(rel string, t db.Tuple, v T)) error {
	var wg sync.WaitGroup
	for i := range chunks {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(c rowChunk) {
			defer wg.Done()
			for _, r := range c.rows {
				var v T
				if mode == ModeNaive {
					v = upstruct.Eval(r.expr, s, env)
				} else {
					v = upstruct.EvalNF(r.nf, s, env)
				}
				f(c.rel, r.tuple, v)
			}
		}(chunks[i])
	}
	wg.Wait()
	return ctx.Err()
}

// BoolRestrictParallel materializes the database selected by a Boolean
// valuation using parallel evaluation. Workers accumulate hits into
// private buffers (no shared state on the hot path) that are merged in
// chunk order at the end, so the result's insertion order matches the
// sequential BoolRestrict on either engine. env must be safe for
// concurrent use (pure functions and MapEnv lookups are). ctx is
// checked at chunk boundaries; on cancellation, (nil, ctx.Err()) is
// returned.
func BoolRestrictParallel(ctx context.Context, e DB, env upstruct.Env[bool], workers int) (*db.Database, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		chunks []rowChunk
		mode   Mode
		unlock func()
	)
	switch v := e.(type) {
	case *Engine:
		v.mu.RLock()
		unlock = v.mu.RUnlock
		chunks, mode = v.chunksLocked(workers), v.mode
	case *ShardedEngine:
		v.rlockAll()
		unlock = v.runlockAll
		chunks, mode = v.chunksLocked(workers), v.mode
	default:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return BoolRestrict(e, env), nil
	}
	defer unlock()
	hits := make([][]db.Tuple, len(chunks))
	var wg sync.WaitGroup
	for i := range chunks {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := chunks[i]
			local := make([]db.Tuple, 0, len(c.rows))
			for _, r := range c.rows {
				var v bool
				if mode == ModeNaive {
					v = upstruct.Eval(r.expr, upstruct.Bool, env)
				} else {
					v = upstruct.EvalNF(r.nf, upstruct.Bool, env)
				}
				if v {
					local = append(local, r.tuple)
				}
			}
			hits[i] = local
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := db.NewDatabase(e.Schema())
	for i, c := range chunks {
		for _, t := range hits[i] {
			_ = out.InsertTuple(c.rel, t)
		}
	}
	return out, nil
}
