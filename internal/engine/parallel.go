package engine

import (
	"runtime"
	"sync"

	"hyperprov/internal/db"
	"hyperprov/internal/upstruct"
)

// SpecializeParallel is Specialize with row evaluation spread over
// workers goroutines (0 = GOMAXPROCS). Expressions are immutable and
// the structure's operations must be pure, so evaluation parallelizes
// trivially; f is called from multiple goroutines and must be safe for
// concurrent use (or accumulate per-shard as BoolRestrictParallel does).
// This is a beyond-the-paper extension: provenance usage is the
// measurement of Figures 7c/8c, and valuation is embarrassingly
// parallel, unlike the re-execution baseline.
func SpecializeParallel[T any](e *Engine, s upstruct.Structure[T], env upstruct.Env[T], workers int, f func(rel string, t db.Tuple, v T)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if workers == 1 {
		specialize(e, s, env, f)
		return
	}
	var wg sync.WaitGroup
	for _, rel := range e.schema.Names() {
		tbl := e.tables[rel]
		rows := tbl.list
		chunk := (len(rows) + workers - 1) / workers
		if chunk == 0 {
			continue
		}
		for start := 0; start < len(rows); start += chunk {
			end := start + chunk
			if end > len(rows) {
				end = len(rows)
			}
			wg.Add(1)
			go func(rel string, part []*row) {
				defer wg.Done()
				for _, r := range part {
					var v T
					if e.mode == ModeNaive {
						v = upstruct.Eval(r.expr, s, env)
					} else {
						v = upstruct.EvalNF(r.nf, s, env)
					}
					f(rel, r.tuple, v)
				}
			}(rel, rows[start:end])
		}
	}
	wg.Wait()
}

// BoolRestrictParallel materializes the database selected by a Boolean
// valuation using parallel evaluation. Workers accumulate hits into
// private buffers (no shared state on the hot path) that are merged at
// the end. env must be safe for concurrent use (pure functions and
// MapEnv lookups are).
func BoolRestrictParallel(e *Engine, env upstruct.Env[bool], workers int) *db.Database {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	type chunk struct {
		rel  string
		rows []*row
	}
	var chunks []chunk
	for _, rel := range e.schema.Names() {
		rows := e.tables[rel].list
		per := (len(rows) + workers - 1) / workers
		if per == 0 {
			continue
		}
		for start := 0; start < len(rows); start += per {
			end := start + per
			if end > len(rows) {
				end = len(rows)
			}
			chunks = append(chunks, chunk{rel: rel, rows: rows[start:end]})
		}
	}
	hits := make([][]db.Tuple, len(chunks))
	var wg sync.WaitGroup
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := chunks[i]
			local := make([]db.Tuple, 0, len(c.rows))
			for _, r := range c.rows {
				var v bool
				if e.mode == ModeNaive {
					v = upstruct.Eval(r.expr, upstruct.Bool, env)
				} else {
					v = upstruct.EvalNF(r.nf, upstruct.Bool, env)
				}
				if v {
					local = append(local, r.tuple)
				}
			}
			hits[i] = local
		}(i)
	}
	wg.Wait()
	out := db.NewDatabase(e.schema)
	for i, c := range chunks {
		for _, t := range hits[i] {
			_ = out.InsertTuple(c.rel, t)
		}
	}
	return out
}
