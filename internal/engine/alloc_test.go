package engine_test

// Allocation-regression gates for the hot read paths. The interning /
// columnar-storage work makes a hard claim: once the engine is in
// steady state, point lookups (Annotation, NF), indexed selections
// (SelectEach) and streaming passes (EachRow) allocate nothing — no
// Key() strings, no scratch slices, no boxing. testing.AllocsPerRun
// turns that claim into a regression test; if any of these gates start
// failing, a hot path regained an allocation.

import (
	"context"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/workload"
)

// Sinks defeat dead-code elimination inside AllocsPerRun bodies.
var (
	sinkExpr  *core.Expr
	sinkNF    *core.NF
	sinkCount int
)

func allocWorkload(t *testing.T) (*db.Database, []db.Transaction) {
	t.Helper()
	initial, txns, err := workload.Generate(workload.Config{
		Tuples: 300, Pool: 60, Group: 4, Updates: 60,
		QueriesPerTxn: 3, MergeRatio: 0.3, Seed: 11,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return initial, txns
}

// pickTuple returns a tuple that survives the workload (steady state:
// it is present at the committed horizon).
func pickTuple(t *testing.T, e *engine.Engine) db.Tuple {
	t.Helper()
	tuples, err := e.Select("R", db.AllPattern(5))
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(tuples) == 0 {
		t.Fatal("workload left no visible tuples")
	}
	return tuples[len(tuples)/2]
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	// Warm-up: first calls may grow pooled scratch or lazily build maps.
	f()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

func TestAllocFreeReads(t *testing.T) {
	initial, txns := allocWorkload(t)
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e := engine.New(mode, initial)
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatalf("apply: %v", err)
			}
			tup := pickTuple(t, e)

			assertZeroAllocs(t, "Annotation", func() {
				sinkExpr = e.Annotation("R", tup)
			})
			if sinkExpr == nil {
				t.Fatal("Annotation returned nil for a visible tuple")
			}
			if mode == engine.ModeNormalForm {
				assertZeroAllocs(t, "NF", func() {
					sinkNF = e.NF("R", tup)
				})
				if sinkNF == nil {
					t.Fatal("NF returned nil for a visible tuple")
				}
			}

			// Indexed streaming selection: =-pinned on the indexed grp
			// column, planner resolves through the posting list.
			if err := e.BuildIndex("R", "grp"); err != nil {
				t.Fatalf("build index: %v", err)
			}
			sel := db.Pattern{
				db.AnyVar("id"),
				db.Const(tup[1]),
				db.AnyVar("cat"),
				db.AnyVar("val"),
				db.AnyVar("pad"),
			}
			each := func(db.Tuple) { sinkCount++ }
			assertZeroAllocs(t, "SelectEach/indexed", func() {
				if err := e.SelectEach("R", sel, each); err != nil {
					t.Fatalf("SelectEach: %v", err)
				}
			})

			// Unindexed streaming selection still holds the gate (full
			// list walk, no materialization).
			selCat := db.Pattern{
				db.AnyVar("id"),
				db.AnyVar("grp"),
				db.Const(tup[2]),
				db.AnyVar("val"),
				db.AnyVar("pad"),
			}
			assertZeroAllocs(t, "SelectEach/full", func() {
				if err := e.SelectEach("R", selCat, each); err != nil {
					t.Fatalf("SelectEach: %v", err)
				}
			})

			rowFn := func(_ db.Tuple, ann *core.Expr) {
				if ann != nil {
					sinkCount++
				}
			}
			assertZeroAllocs(t, "EachRow", func() {
				e.EachRow("R", rowFn)
			})
		})
	}
}

// TestAllocFreeShardedPointReads: fingerprint routing keeps the
// sharded engine's point lookups allocation-free too (no Key() string
// on the routing path).
func TestAllocFreeShardedPointReads(t *testing.T) {
	initial, txns := allocWorkload(t)
	se := engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(4))
	if err := se.ApplyAll(context.Background(), txns); err != nil {
		t.Fatalf("apply: %v", err)
	}
	tuples, err := se.Select("R", db.AllPattern(5))
	if err != nil || len(tuples) == 0 {
		t.Fatalf("select: %v (%d tuples)", err, len(tuples))
	}
	tup := tuples[len(tuples)/2]
	assertZeroAllocs(t, "Sharded.Annotation", func() {
		sinkExpr = se.Annotation("R", tup)
	})
	if sinkExpr == nil {
		t.Fatal("Annotation returned nil for a visible tuple")
	}
	assertZeroAllocs(t, "Sharded.NF", func() {
		sinkNF = se.NF("R", tup)
	})
}
