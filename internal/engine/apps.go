package engine

import (
	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/upstruct"
)

// Specialize evaluates every stored annotation in the given
// Update-Structure under the valuation env and streams the results to f
// (including tombstone rows, whose values typically evaluate to the
// structure's zero). Rows stream in deterministic order: relations in
// schema order, rows in insertion order — identical to EachRow and
// SpecializeParallel, and identical across both engine implementations
// — never map order. This is the generic "provenance usage" operation
// of Section 6: all applications below are thin wrappers over it, sound
// by Proposition 4.2. The MVCC horizon is pinned once on entry (the
// view's own horizon when e is a View), so the streamed rows form one
// consistent epoch snapshot, lock-free against concurrent writers.
func Specialize[T any](e Reader, s upstruct.Structure[T], env upstruct.Env[T], f func(rel string, t db.Tuple, v T)) {
	switch v := e.(type) {
	case *Engine:
		specializeAt(v, v.Horizon(), s, env, f)
	case *ShardedEngine:
		specializeShardedAt(v, v.Horizon(), s, env, f)
	case *engineView:
		specializeAt(v.e, v.s, s, env, f)
	case *shardedView:
		specializeShardedAt(v.se, v.s, s, env, f)
	default:
		// Generic fallback over materialized annotations.
		e.Rows(func(rel string, t db.Tuple, ann *core.Expr) {
			f(rel, t, upstruct.Eval(ann, s, env))
		})
	}
}

// evalVersion evaluates one resolved version in the structure.
func evalVersion[T any](mode Mode, ver *version, s upstruct.Structure[T], env upstruct.Env[T]) T {
	if mode == ModeNaive {
		return upstruct.Eval(ver.expr, s, env)
	}
	return upstruct.EvalNF(ver.nf, s, env)
}

// specializeAt is the lock-free core of Specialize at one pinned
// horizon.
func specializeAt[T any](e *Engine, at uint64, s upstruct.Structure[T], env upstruct.Env[T], f func(rel string, t db.Tuple, v T)) {
	for _, rel := range e.schema.Names() {
		tbl := e.tables[rel]
		for _, r := range tbl.list.snapshot() {
			if r.seq > at {
				break // plain-engine lists are sequence-ordered
			}
			ver := r.at(at)
			if ver == nil {
				continue
			}
			f(rel, r.tuple, evalVersion(e.mode, ver, s, env))
		}
	}
}

// specializeShardedAt is the sharded core of Specialize: rows merge to
// global insertion order at the pinned horizon before evaluation, so
// the stream is identical to the single engine's.
func specializeShardedAt[T any](se *ShardedEngine, at uint64, s upstruct.Structure[T], env upstruct.Env[T], f func(rel string, t db.Tuple, v T)) {
	for _, rel := range se.schema.Names() {
		for _, r := range se.mergedRowsAt(rel, at) {
			ver := r.at(at)
			if ver == nil {
				continue
			}
			f(rel, r.tuple, evalVersion(se.mode, ver, s, env))
		}
	}
}

// BoolRestrict materializes the database selected by a Boolean
// valuation: the result contains exactly the tuples whose provenance
// evaluates to true.
func BoolRestrict(e Reader, env upstruct.Env[bool]) *db.Database {
	out := db.NewDatabase(e.Schema())
	Specialize[bool](e, upstruct.Bool, env, func(rel string, t db.Tuple, v bool) {
		if v {
			// Tuples stored by the engine conform by construction.
			_ = out.InsertTuple(rel, t)
		}
	})
	return out
}

// LiveDB returns the database under the all-true valuation — the set
// semantics of the transactions actually executed. It must equal the
// result of the plain engine on the same input (the package tests use
// this as the ground-truth oracle).
func LiveDB(e Reader) *db.Database {
	return BoolRestrict(e, func(core.Annot) bool { return true })
}

// DeletionPropagation answers the Section 4.1 what-if question "what
// would the result be had these input tuples not been in the database?"
// by assigning false to the given tuple annotations and true elsewhere —
// without re-running the transactions.
func DeletionPropagation(e Reader, deleted ...core.Annot) *db.Database {
	dead := make(map[core.Annot]bool, len(deleted))
	for _, a := range deleted {
		dead[a] = false
	}
	return BoolRestrict(e, upstruct.MapEnv(dead, true))
}

// AbortTransactions answers "what would the result be had these
// transactions been aborted?" by assigning false to the given
// transaction labels.
func AbortTransactions(e Reader, labels ...string) *db.Database {
	dead := make(map[core.Annot]bool, len(labels))
	for _, l := range labels {
		dead[core.QueryAnnot(l)] = false
	}
	return BoolRestrict(e, upstruct.MapEnv(dead, true))
}

// AccessControl evaluates the access-control semantics of Section 4.1:
// env assigns each tuple and transaction annotation its set of
// credentials (e.g. country names), and the result maps every visible
// tuple to the credentials that may see it. Tuples whose credential set
// comes out empty are omitted.
func AccessControl(e Reader, env upstruct.Env[upstruct.Set]) map[string]map[string]upstruct.Set {
	out := make(map[string]map[string]upstruct.Set)
	Specialize[upstruct.Set](e, upstruct.Sets, env, func(rel string, t db.Tuple, v upstruct.Set) {
		if v.Len() == 0 {
			return
		}
		m := out[rel]
		if m == nil {
			m = make(map[string]upstruct.Set)
			out[rel] = m
		}
		// The one remaining Key() construction in the engine: the API's
		// result shape is keyed by the durable string encoding. Every
		// lookup path (table probes, routing, Annotation/NF) runs on
		// fingerprints and never rebuilds keys.
		m[t.Key()] = v
	})
	return out
}

// Certify evaluates the certification semantics of Section 4.1 with
// minimal trust level l: env assigns raw trust scores to annotations,
// and the result is the database of tuples certified at that level.
func Certify(e Reader, l float64, env upstruct.Env[upstruct.Trust]) *db.Database {
	st := upstruct.TrustStructure{L: l}
	out := db.NewDatabase(e.Schema())
	Specialize[upstruct.Trust](e, st, env, func(rel string, t db.Tuple, v upstruct.Trust) {
		if st.Trusted(v) {
			_ = out.InsertTuple(rel, t)
		}
	})
	return out
}
