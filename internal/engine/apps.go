package engine

import (
	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/upstruct"
)

// Specialize evaluates every stored annotation in the given
// Update-Structure under the valuation env and streams the results to f
// (including tombstone rows, whose values typically evaluate to the
// structure's zero). Rows stream in deterministic order: relations in
// schema order, rows in insertion order — identical to EachRow and
// SpecializeParallel, and identical across both engine implementations
// — never map order. This is the generic "provenance usage" operation
// of Section 6: all applications below are thin wrappers over it, sound
// by Proposition 4.2. The engine's read lock (all shard read locks for
// a ShardedEngine) is held for the whole pass, so the streamed rows
// form one consistent snapshot; f must not call back into the engine.
func Specialize[T any](e DB, s upstruct.Structure[T], env upstruct.Env[T], f func(rel string, t db.Tuple, v T)) {
	switch v := e.(type) {
	case *Engine:
		v.mu.RLock()
		defer v.mu.RUnlock()
		specialize(v, s, env, f)
	case *ShardedEngine:
		v.rlockAll()
		defer v.runlockAll()
		specializeSharded(v, s, env, f)
	default:
		// Generic fallback over materialized annotations.
		e.Rows(func(rel string, t db.Tuple, ann *core.Expr) {
			f(rel, t, upstruct.Eval(ann, s, env))
		})
	}
}

// specialize is the lock-free core of Specialize; callers hold e.mu.
func specialize[T any](e *Engine, s upstruct.Structure[T], env upstruct.Env[T], f func(rel string, t db.Tuple, v T)) {
	for _, rel := range e.schema.Names() {
		tbl := e.tables[rel]
		for _, r := range tbl.list {
			var v T
			if e.mode == ModeNaive {
				v = upstruct.Eval(r.expr, s, env)
			} else {
				v = upstruct.EvalNF(r.nf, s, env)
			}
			f(rel, r.tuple, v)
		}
	}
}

// specializeSharded is the sharded core of Specialize: rows merge to
// global insertion order before evaluation, so the stream is identical
// to the single engine's. Callers hold all shard read locks.
func specializeSharded[T any](se *ShardedEngine, s upstruct.Structure[T], env upstruct.Env[T], f func(rel string, t db.Tuple, v T)) {
	for _, rel := range se.schema.Names() {
		for _, r := range se.mergedRowsLocked(rel) {
			var v T
			if se.mode == ModeNaive {
				v = upstruct.Eval(r.expr, s, env)
			} else {
				v = upstruct.EvalNF(r.nf, s, env)
			}
			f(rel, r.tuple, v)
		}
	}
}

// BoolRestrict materializes the database selected by a Boolean
// valuation: the result contains exactly the tuples whose provenance
// evaluates to true.
func BoolRestrict(e DB, env upstruct.Env[bool]) *db.Database {
	out := db.NewDatabase(e.Schema())
	Specialize[bool](e, upstruct.Bool, env, func(rel string, t db.Tuple, v bool) {
		if v {
			// Tuples stored by the engine conform by construction.
			_ = out.InsertTuple(rel, t)
		}
	})
	return out
}

// LiveDB returns the database under the all-true valuation — the set
// semantics of the transactions actually executed. It must equal the
// result of the plain engine on the same input (the package tests use
// this as the ground-truth oracle).
func LiveDB(e DB) *db.Database {
	return BoolRestrict(e, func(core.Annot) bool { return true })
}

// DeletionPropagation answers the Section 4.1 what-if question "what
// would the result be had these input tuples not been in the database?"
// by assigning false to the given tuple annotations and true elsewhere —
// without re-running the transactions.
func DeletionPropagation(e DB, deleted ...core.Annot) *db.Database {
	dead := make(map[core.Annot]bool, len(deleted))
	for _, a := range deleted {
		dead[a] = false
	}
	return BoolRestrict(e, upstruct.MapEnv(dead, true))
}

// AbortTransactions answers "what would the result be had these
// transactions been aborted?" by assigning false to the given
// transaction labels.
func AbortTransactions(e DB, labels ...string) *db.Database {
	dead := make(map[core.Annot]bool, len(labels))
	for _, l := range labels {
		dead[core.QueryAnnot(l)] = false
	}
	return BoolRestrict(e, upstruct.MapEnv(dead, true))
}

// AccessControl evaluates the access-control semantics of Section 4.1:
// env assigns each tuple and transaction annotation its set of
// credentials (e.g. country names), and the result maps every visible
// tuple to the credentials that may see it. Tuples whose credential set
// comes out empty are omitted.
func AccessControl(e DB, env upstruct.Env[upstruct.Set]) map[string]map[string]upstruct.Set {
	out := make(map[string]map[string]upstruct.Set)
	Specialize[upstruct.Set](e, upstruct.Sets, env, func(rel string, t db.Tuple, v upstruct.Set) {
		if v.Len() == 0 {
			return
		}
		m := out[rel]
		if m == nil {
			m = make(map[string]upstruct.Set)
			out[rel] = m
		}
		m[t.Key()] = v
	})
	return out
}

// Certify evaluates the certification semantics of Section 4.1 with
// minimal trust level l: env assigns raw trust scores to annotations,
// and the result is the database of tuples certified at that level.
func Certify(e DB, l float64, env upstruct.Env[upstruct.Trust]) *db.Database {
	st := upstruct.TrustStructure{L: l}
	out := db.NewDatabase(e.Schema())
	Specialize[upstruct.Trust](e, st, env, func(rel string, t db.Tuple, v upstruct.Trust) {
		if st.Trusted(v) {
			_ = out.InsertTuple(rel, t)
		}
	})
	return out
}
