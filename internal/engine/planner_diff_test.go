package engine_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hyperprov/internal/engine"
	"hyperprov/internal/workload"
)

// indexConfig is one access-path configuration of the differential
// matrix: how (and whether) indexes come into being.
type indexConfig struct {
	name   string
	opts   []engine.Option // extra engine options (e.g. the advisor)
	manual []string        // attributes of R to BuildIndex up front
}

func plannerConfigs() []indexConfig {
	return []indexConfig{
		{name: "noindex"},
		{name: "manual", manual: []string{"id", "cat", "val"}},
		{name: "autoindex", opts: []engine.Option{engine.WithAutoIndex(2)}},
	}
}

// TestPlannerDifferential is the scan planner's correctness contract:
// for random databases and random hyperplane transactions (constants, ≠
// constraints and free variables mixed), annotations, streaming order
// and snapshot bytes must be identical with indexes off, manually built
// on every column, and advisor-built — across shards ∈ {1, 8}, both
// provenance modes, and both matchability semantics.
func TestPlannerDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for trial := 0; trial < 15; trial++ {
		initial := randDB(r, 4+r.Intn(12))
		txns := randTxns(r, 2, 2+r.Intn(4))
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			for _, live := range []bool{false, true} {
				base := engine.New(mode, initial, engine.WithLiveMatching(live))
				if err := base.ApplyAll(context.Background(), txns); err != nil {
					t.Fatal(err)
				}
				want := streamRows(base)
				wantSnap := snapshotOf(t, base)
				for _, cfg := range plannerConfigs() {
					for _, shards := range []int{1, 8} {
						label := fmt.Sprintf("trial %d %s live=%v %s shards=%d",
							trial, mode, live, cfg.name, shards)
						opts := append([]engine.Option{
							engine.WithShards(shards),
							engine.WithLiveMatching(live),
						}, cfg.opts...)
						e := engine.Open(mode, initial, opts...)
						for _, attr := range cfg.manual {
							if err := e.BuildIndex("R", attr); err != nil {
								t.Fatalf("%s: BuildIndex: %v", label, err)
							}
						}
						if err := e.ApplyAll(context.Background(), txns); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						diffStreams(t, label, want, streamRows(e))
						if !bytes.Equal(wantSnap, snapshotOf(t, e)) {
							t.Fatalf("%s: snapshot bytes differ from unindexed single engine", label)
						}
					}
				}
			}
		}
	}
}

// TestPlannerDifferentialMultiColumn runs the partially-pinned workload
// the planner is built for — big enough that the two-list
// merge-intersection actually fires — and checks the same byte-identity
// contract, plus that the interesting planner paths were really taken.
func TestPlannerDifferentialMultiColumn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-column differential needs a few thousand rows")
	}
	wcfg := workload.Config{Tuples: 2000, Group: 200, Updates: 120, QueriesPerTxn: 4, Seed: 603}
	initial, txns, err := workload.GenerateMultiColumn(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	base := engine.New(engine.ModeNormalForm, initial)
	if err := base.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	want := streamRows(base)
	wantSnap := snapshotOf(t, base)

	for _, cfg := range plannerConfigs()[1:] { // manual, autoindex
		for _, shards := range []int{1, 8} {
			label := fmt.Sprintf("%s shards=%d", cfg.name, shards)
			opts := append([]engine.Option{engine.WithShards(shards)}, cfg.opts...)
			e := engine.Open(engine.ModeNormalForm, initial, opts...)
			if cfg.name == "manual" {
				// The workload pins grp and cat; id/val indexes would sit idle.
				for _, attr := range []string{"grp", "cat"} {
					if err := e.BuildIndex("R", attr); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := e.ApplyAll(context.Background(), txns); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			diffStreams(t, label, want, streamRows(e))
			if !bytes.Equal(wantSnap, snapshotOf(t, e)) {
				t.Fatalf("%s: snapshot bytes differ", label)
			}
			ps := e.PlannerStats()
			if ps.IndexScans == 0 {
				t.Fatalf("%s: workload never index-scanned: %+v", label, ps)
			}
			if ps.FullScans == 0 {
				t.Fatalf("%s: ≠-only selections never fell back to full scan: %+v", label, ps)
			}
			if cfg.name == "manual" && shards == 1 && ps.IntersectScans == 0 {
				t.Fatalf("%s: grp+cat selections never merge-intersected: %+v", label, ps)
			}
			if cfg.name == "autoindex" && ps.AutoBuilds == 0 {
				t.Fatalf("%s: advisor never built an index: %+v", label, ps)
			}
		}
	}
}

// TestConcurrentAutoIndexStress drives a sharded engine with the
// advisor enabled while readers hammer the statistics and annotation
// endpoints and a maintenance goroutine builds and drops an index in a
// loop. Run under -race (the CI race job does), this is the memory-model
// contract for concurrent auto-index builds: scans mutate index state
// only under each shard's write lock, the planner counters are atomics.
func TestConcurrentAutoIndexStress(t *testing.T) {
	wcfg := workload.Config{Tuples: 400, Group: 40, Updates: 200, QueriesPerTxn: 2, Seed: 607}
	initial, txns, err := workload.GenerateMultiColumn(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.Open(engine.ModeNormalForm, initial,
		engine.WithShards(8), engine.WithAutoIndex(2))

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // readers: stats, annotations, row streams
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = e.PlannerStats()
				_ = e.IndexStats()
				_ = e.NumRows()
				_ = e.ProvSize()
			}
		}()
	}
	wg.Add(1)
	go func() { // builder/dropper racing the advisor
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := e.BuildIndex("R", "val"); err != nil {
				t.Errorf("concurrent BuildIndex: %v", err)
				return
			}
			if err := e.DropIndex("R", "val"); err != nil && !errors.Is(err, engine.ErrUnknownIndex) {
				t.Errorf("concurrent DropIndex: %v", err)
				return
			}
		}
	}()

	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Error(err)
	}
	close(done)
	wg.Wait()

	// The advisor must have fired somewhere, and the result must still
	// match a quiet, unindexed run.
	if ps := e.PlannerStats(); ps.AutoBuilds == 0 {
		t.Fatalf("advisor never fired under concurrency: %+v", ps)
	}
	quiet := engine.New(engine.ModeNormalForm, initial)
	if err := quiet.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	diffStreams(t, "concurrent auto-index", streamRows(quiet), streamRows(e))
	if !bytes.Equal(snapshotOf(t, quiet), snapshotOf(t, e)) {
		t.Fatal("snapshot bytes diverged after concurrent auto-index stress")
	}
}

// TestShardedIndexStatsMerge: IndexStats on a sharded engine merges the
// per-shard indexes into one row per (relation, attribute), and
// PlannerStats sums the shard counters.
func TestShardedIndexStatsMerge(t *testing.T) {
	wcfg := workload.Config{Tuples: 200, Group: 20, Updates: 40, QueriesPerTxn: 2, Seed: 611}
	initial, txns, err := workload.GenerateMultiColumn(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.Open(engine.ModeNormalForm, initial, engine.WithShards(4))
	if err := e.BuildIndex("R", "grp"); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildIndex("R", "cat"); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	infos := e.IndexStats()
	if len(infos) != 2 {
		t.Fatalf("want one merged row per index, got %d: %+v", len(infos), infos)
	}
	var totalEntries int
	for _, info := range infos {
		if info.Rel != "R" || (info.Attr != "grp" && info.Attr != "cat") {
			t.Fatalf("unexpected merged index row: %+v", info)
		}
		if info.Auto {
			t.Fatalf("manual index reported as auto: %+v", info)
		}
		totalEntries += info.Entries
	}
	if totalEntries == 0 {
		t.Fatal("merged IndexStats reports no posting entries")
	}
	ps := e.PlannerStats()
	if ps.IndexScans == 0 && ps.IntersectScans == 0 {
		t.Fatalf("sharded PlannerStats summed to nothing: %+v", ps)
	}
}
