package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/upstruct"
)

// This file tests Proposition 3.5 on the engines: set-equivalent
// transaction pairs — instances of the Karabeg–Vianu rewrite rules that
// the paper's axioms mirror — yield UP[X]-equivalent annotated
// databases. Equivalence is decided canonically (Normalize + Minimize)
// where the canonical form is known to coincide, and by randomized
// evaluation in the Boolean and set structures everywhere.

// equivPair is a pair of set-equivalent transactions over the random
// test schema (id:int, cat:string, val:int).
type equivPair struct {
	name string
	a, b db.Transaction
}

func catSel(cat string) db.Pattern {
	return db.Pattern{db.AnyVar("i"), db.Const(db.S(cat)), db.AnyVar("v")}
}

func setCat(cat string) []db.SetClause {
	return []db.SetClause{db.Keep(), db.SetTo(db.S(cat)), db.Keep()}
}

func equivPairs() []equivPair {
	row := db.Tuple{db.I(1), db.S("a"), db.I(0)}
	return []equivPair{
		{
			// Example 3.3: M(u1→u2); D(u2) ≡ D(u1); D(u2).
			name: "modify-then-delete-target",
			a: db.Transaction{Label: "p", Updates: []db.Update{
				db.Modify("R", catSel("a"), setCat("b")),
				db.Delete("R", catSel("b")),
			}},
			b: db.Transaction{Label: "p", Updates: []db.Update{
				db.Delete("R", catSel("a")),
				db.Delete("R", catSel("b")),
			}},
		},
		{
			// Figure 2 / Example 3.7 generalized: chaining a→b→c equals
			// sending both a and b to c.
			name: "modify-chain",
			a: db.Transaction{Label: "p", Updates: []db.Update{
				db.Modify("R", catSel("a"), setCat("b")),
				db.Modify("R", catSel("b"), setCat("c")),
			}},
			b: db.Transaction{Label: "p", Updates: []db.Update{
				db.Modify("R", catSel("a"), setCat("c")),
				db.Modify("R", catSel("b"), setCat("c")),
			}},
		},
		{
			// Insertion is idempotent under set semantics.
			name: "double-insert",
			a: db.Transaction{Label: "p", Updates: []db.Update{
				db.Insert("R", row), db.Insert("R", row),
			}},
			b: db.Transaction{Label: "p", Updates: []db.Update{
				db.Insert("R", row),
			}},
		},
		{
			// Deletion is idempotent.
			name: "double-delete",
			a: db.Transaction{Label: "p", Updates: []db.Update{
				db.Delete("R", catSel("a")), db.Delete("R", catSel("a")),
			}},
			b: db.Transaction{Label: "p", Updates: []db.Update{
				db.Delete("R", catSel("a")),
			}},
		},
		{
			// Inserting a tuple that a later deletion selects is
			// absorbed by the deletion.
			name: "insert-then-delete",
			a: db.Transaction{Label: "p", Updates: []db.Update{
				db.Insert("R", row),
				db.Delete("R", catSel("a")),
			}},
			b: db.Transaction{Label: "p", Updates: []db.Update{
				db.Delete("R", catSel("a")),
			}},
		},
		{
			// Modifying into a value and then modifying that value again
			// within the transaction factorizes (axiom 3 / rules 6–7).
			name: "modify-then-remodify-target",
			a: db.Transaction{Label: "p", Updates: []db.Update{
				db.Modify("R", catSel("a"), setCat("b")),
				db.Modify("R", catSel("c"), setCat("b")),
			}},
			b: db.Transaction{Label: "p", Updates: []db.Update{
				db.Modify("R", catSel("c"), setCat("b")),
				db.Modify("R", catSel("a"), setCat("b")),
			}},
		},
		{
			// Deleting and then inserting a tuple of the deleted class
			// equals deleting the rest and inserting (axiom 10 shape).
			name: "delete-then-insert",
			a: db.Transaction{Label: "p", Updates: []db.Update{
				db.Delete("R", db.ConstPattern(row)),
				db.Insert("R", row),
			}},
			b: db.Transaction{Label: "p", Updates: []db.Update{
				db.Insert("R", row),
			}},
		},
	}
}

// annotEnvBool builds a random-but-consistent Boolean valuation.
func annotEnvBool(r *rand.Rand) upstruct.Env[bool] {
	m := make(map[core.Annot]bool)
	return func(a core.Annot) bool {
		v, ok := m[a]
		if !ok {
			v = r.Intn(2) == 0
			m[a] = v
		}
		return v
	}
}

func annotEnvSet(r *rand.Rand) upstruct.Env[upstruct.Set] {
	universe := []string{"IL", "FR", "US"}
	m := make(map[core.Annot]upstruct.Set)
	return func(a core.Annot) upstruct.Set {
		v, ok := m[a]
		if !ok {
			var elems []string
			for _, c := range universe {
				if r.Intn(2) == 0 {
					elems = append(elems, c)
				}
			}
			v = upstruct.NewSet(elems...)
			m[a] = v
		}
		return v
	}
}

func TestProposition35OnRewritePairs(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	pairs := equivPairs()
	for trial := 0; trial < 25; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		annotOf := func(rel string, tu db.Tuple) core.Annot {
			return core.TupleAnnot("t_" + tu.Key())
		}
		for _, pair := range pairs {
			for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
				e1 := engine.New(mode, initial, engine.WithInitialAnnotations(annotOf))
				e2 := engine.New(mode, initial, engine.WithInitialAnnotations(annotOf))
				if err := e1.ApplyTransaction(&pair.a); err != nil {
					t.Fatal(err)
				}
				if err := e2.ApplyTransaction(&pair.b); err != nil {
					t.Fatal(err)
				}
				// Set-equivalence sanity: same live database.
				l1, l2 := engine.LiveDB(e1), engine.LiveDB(e2)
				if !l1.Equal(l2) {
					t.Fatalf("%s (%v): pair is not even set-equivalent:\n%s", pair.name, mode, l1.Diff(l2))
				}
				// UP[X]-equivalence of every tuple's annotation, by
				// randomized evaluation.
				checkAnnotEquiv(t, r, e1, e2, pair.name, mode)
			}
		}
	}
}

func checkAnnotEquiv(t *testing.T, r *rand.Rand, e1, e2 *engine.Engine, name string, mode engine.Mode) {
	t.Helper()
	seen := make(map[string]db.Tuple)
	collect := func(e *engine.Engine) {
		e.EachRow("R", func(tu db.Tuple, _ *core.Expr) { seen[tu.Key()] = tu })
	}
	collect(e1)
	collect(e2)
	for _, tu := range seen {
		a1 := e1.Annotation("R", tu)
		a2 := e2.Annotation("R", tu)
		if a1 == nil {
			a1 = core.Zero()
		}
		if a2 == nil {
			a2 = core.Zero()
		}
		for i := 0; i < 12; i++ {
			env := annotEnvBool(r)
			if upstruct.Eval(a1, upstruct.Bool, env) != upstruct.Eval(a2, upstruct.Bool, env) {
				t.Fatalf("%s (%v): Boolean divergence on %v:\n  a = %v\n  b = %v", name, mode, tu, a1, a2)
			}
			senv := annotEnvSet(r)
			if !upstruct.Eval(a1, upstruct.Sets, senv).Equal(upstruct.Eval(a2, upstruct.Sets, senv)) {
				t.Fatalf("%s (%v): set divergence on %v:\n  a = %v\n  b = %v", name, mode, tu, a1, a2)
			}
		}
	}
}

// TestProposition35Canonical: on the pairs where the canonical form is
// complete (the modify/delete rewrites of Examples 3.3 and 3.7), the
// minimized normal forms coincide structurally.
func TestProposition35Canonical(t *testing.T) {
	r := rand.New(rand.NewSource(403))
	canonicalPairs := equivPairs()[:2]
	for trial := 0; trial < 25; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		annotOf := func(rel string, tu db.Tuple) core.Annot {
			return core.TupleAnnot("t_" + tu.Key())
		}
		for _, pair := range canonicalPairs {
			e1 := engine.New(engine.ModeNormalForm, initial, engine.WithInitialAnnotations(annotOf))
			e2 := engine.New(engine.ModeNormalForm, initial, engine.WithInitialAnnotations(annotOf))
			if err := e1.ApplyTransaction(&pair.a); err != nil {
				t.Fatal(err)
			}
			if err := e2.ApplyTransaction(&pair.b); err != nil {
				t.Fatal(err)
			}
			e1.EachRow("R", func(tu db.Tuple, ann *core.Expr) {
				other := e2.Annotation("R", tu)
				if other == nil {
					other = core.Zero()
				}
				c1 := core.Minimize(core.Normalize(ann))
				c2 := core.Minimize(core.Normalize(other))
				if !c1.Equal(c2) {
					t.Errorf("%s, trial %d, tuple %v:\n  a = %v\n  b = %v", pair.name, trial, tu, c1, c2)
				}
			})
		}
	}
}

// TestNonEquivalentPairsDiverge guards the "only if" direction on a
// sample: transactions that are NOT set-equivalent must yield
// provenance that differs under some valuation.
func TestNonEquivalentPairsDiverge(t *testing.T) {
	initial := db.NewDatabase(randSchema())
	if err := initial.InsertTuple("R", db.Tuple{db.I(1), db.S("a"), db.I(0)}); err != nil {
		t.Fatal(err)
	}
	del := db.Transaction{Label: "p", Updates: []db.Update{db.Delete("R", catSel("a"))}}
	noop := db.Transaction{Label: "p"}
	e1 := engine.New(engine.ModeNormalForm, initial)
	e2 := engine.New(engine.ModeNormalForm, initial)
	if err := e1.ApplyTransaction(&del); err != nil {
		t.Fatal(err)
	}
	if err := e2.ApplyTransaction(&noop); err != nil {
		t.Fatal(err)
	}
	tu := db.Tuple{db.I(1), db.S("a"), db.I(0)}
	a1 := e1.Annotation("R", tu)
	a2 := e2.Annotation("R", tu)
	allTrue := func(core.Annot) bool { return true }
	if upstruct.Eval(a1, upstruct.Bool, allTrue) == upstruct.Eval(a2, upstruct.Bool, allTrue) {
		t.Error("deleting and doing nothing must be distinguishable")
	}
}

// TestSequenceEquivalenceAcrossTransactions replays Example 3.9: the
// sequences (T1, T2) and (T1', T2) give equivalent provenance even
// though the equivalent rewrite happened in an earlier transaction.
func TestSequenceEquivalenceAcrossTransactions(t *testing.T) {
	r := rand.New(rand.NewSource(407))
	t2 := db.Transaction{Label: "pp", Updates: []db.Update{
		db.Modify("R", catSel("c"), []db.SetClause{db.Keep(), db.Keep(), db.SetTo(db.I(50))}),
	}}
	for trial := 0; trial < 20; trial++ {
		initial := randDB(r, 3+r.Intn(8))
		pair := equivPairs()[1] // the modify-chain pair
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			e1 := engine.New(mode, initial)
			e2 := engine.New(mode, initial)
			if err := e1.ApplyAll(context.Background(), []db.Transaction{pair.a, t2}); err != nil {
				t.Fatal(err)
			}
			if err := e2.ApplyAll(context.Background(), []db.Transaction{pair.b, t2}); err != nil {
				t.Fatal(err)
			}
			if !engine.LiveDB(e1).Equal(engine.LiveDB(e2)) {
				t.Fatalf("trial %d (%v): sequences not set-equivalent", trial, mode)
			}
			checkAnnotEquiv(t, r, e1, e2, fmt.Sprintf("sequence trial %d", trial), mode)
		}
	}
}
