package engine_test

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/upstruct"
	"hyperprov/internal/workload"
)

var shardCounts = []int{1, 2, 8}

// streamedRow captures one streamed row: relation, key and annotation,
// in the engine's deterministic iteration order.
type streamedRow struct {
	rel string
	key string
	ann *core.Expr
}

func streamRows(e engine.DB) []streamedRow {
	var out []streamedRow
	e.Rows(func(rel string, t db.Tuple, ann *core.Expr) {
		out = append(out, streamedRow{rel, t.Key(), ann})
	})
	return out
}

// diffStreams asserts the equivalence contract of the sharded engine:
// same rows, same order, structurally identical annotations.
func diffStreams(t *testing.T, label string, single, sharded []streamedRow) {
	t.Helper()
	if len(single) != len(sharded) {
		t.Fatalf("%s: row counts differ: single %d, sharded %d", label, len(single), len(sharded))
	}
	for i := range single {
		a, b := single[i], sharded[i]
		if a.rel != b.rel || a.key != b.key {
			t.Fatalf("%s: row %d order differs: single %s/%s, sharded %s/%s",
				label, i, a.rel, a.key, b.rel, b.key)
		}
		if !a.ann.Equal(b.ann) {
			t.Fatalf("%s: row %d (%s/%s) annotations differ:\n  single  %v\n  sharded %v",
				label, i, a.rel, a.key, a.ann, b.ann)
		}
	}
}

func snapshotOf(t *testing.T, e engine.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedMatchesSingleRandom is the core differential test: random
// databases and random hyperplane transactions (the same generator the
// oracle tests use, so selections mix constants, ≠ constraints and free
// variables) must leave a sharded engine row-for-row identical to the
// single engine for every shard count, in both modes, including the
// serialized snapshot bytes.
func TestShardedMatchesSingleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	for trial := 0; trial < 30; trial++ {
		initial := randDB(r, 2+r.Intn(10))
		txns := randTxns(r, 1+r.Intn(3), 1+r.Intn(5))
		for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
			single := engine.New(mode, initial)
			if err := single.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			want := streamRows(single)
			wantSnap := snapshotOf(t, single)
			for _, n := range shardCounts {
				sh := engine.NewSharded(mode, initial, engine.WithShards(n))
				if sh.NumShards() != n {
					t.Fatalf("NumShards = %d, want %d", sh.NumShards(), n)
				}
				if err := sh.ApplyAll(context.Background(), txns); err != nil {
					t.Fatal(err)
				}
				label := mode.String()
				diffStreams(t, label, want, streamRows(sh))
				if !bytes.Equal(wantSnap, snapshotOf(t, sh)) {
					t.Fatalf("trial %d, %s, shards=%d: snapshot bytes differ from single engine",
						trial, label, n)
				}
				if got, want := sh.NumRows(), single.NumRows(); got != want {
					t.Fatalf("NumRows: sharded %d, single %d", got, want)
				}
				if got, want := sh.ProvSize(), single.ProvSize(); got != want {
					t.Fatalf("ProvSize: sharded %d, single %d", got, want)
				}
				if !engine.LiveDB(sh).Equal(engine.LiveDB(single)) {
					t.Fatalf("trial %d, %s, shards=%d: live databases diverge", trial, label, n)
				}
			}
		}
	}
}

// TestShardedMatchesSinglePinned runs the fully pinned workload — the
// one the sharded benchmarks use — and checks both the equivalence
// contract and the routing statistics: with one update per transaction
// every transaction is pinned, so nothing fans out.
func TestShardedMatchesSinglePinned(t *testing.T) {
	cfg := workload.Config{Tuples: 200, Updates: 300, QueriesPerTxn: 1, Seed: 7}
	initial, txns, err := workload.GeneratePinned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		single := engine.New(mode, initial)
		if err := single.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		want := streamRows(single)
		wantSnap := snapshotOf(t, single)
		for _, n := range shardCounts {
			sh := engine.NewSharded(mode, initial, engine.WithShards(n))
			if err := sh.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			diffStreams(t, mode.String(), want, streamRows(sh))
			if !bytes.Equal(wantSnap, snapshotOf(t, sh)) {
				t.Fatalf("%s, shards=%d: snapshot bytes differ", mode, n)
			}
			st := sh.Stats()
			if st.FanOut != 0 {
				t.Errorf("%s, shards=%d: pinned workload fanned out %d transactions", mode, n, st.FanOut)
			}
			if st.Routed+st.Rendezvous != uint64(len(txns)) {
				t.Errorf("%s, shards=%d: routed %d + rendezvous %d ≠ %d transactions",
					mode, n, st.Routed, st.Rendezvous, len(txns))
			}
			if n > 1 && st.Routed == 0 {
				t.Errorf("%s, shards=%d: no transaction took the single-shard fast path", mode, n)
			}
			rows := 0
			for _, c := range st.RowsPerShard {
				rows += c
			}
			if rows != sh.NumRows() {
				t.Errorf("%s, shards=%d: RowsPerShard sums to %d, NumRows is %d", mode, n, rows, sh.NumRows())
			}
		}
	}
}

// TestShardedMatchesSingleWorkload runs the paper's synthetic workload
// (group selections over the numeric column — nothing is pinned, so
// every transaction fans out) through Open and checks the contract plus
// the valuation surface: Specialize in the bool and set structures.
func TestShardedMatchesSingleWorkload(t *testing.T) {
	cfg := workload.Default(0.002)
	cfg.QueriesPerTxn = 5
	initial, txns, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []engine.Mode{engine.ModeNaive, engine.ModeNormalForm} {
		single := engine.Open(mode, initial)
		if _, ok := single.(*engine.Engine); !ok {
			t.Fatalf("Open without WithShards returned %T", single)
		}
		if err := single.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		want := streamRows(single)
		boolEnv := func(a core.Annot) bool { return a.Name != "q1" }
		setEnv := func(a core.Annot) upstruct.Set { return upstruct.NewSet(a.Name) }
		var wantBool []bool
		engine.Specialize[bool](single, upstruct.Bool, boolEnv, func(rel string, tp db.Tuple, v bool) {
			wantBool = append(wantBool, v)
		})
		var wantSets []upstruct.Set
		engine.Specialize[upstruct.Set](single, upstruct.Sets, setEnv, func(rel string, tp db.Tuple, v upstruct.Set) {
			wantSets = append(wantSets, v)
		})
		for _, n := range []int{2, 8} {
			sh := engine.Open(mode, initial, engine.WithShards(n))
			if _, ok := sh.(*engine.ShardedEngine); !ok {
				t.Fatalf("Open with WithShards(%d) returned %T", n, sh)
			}
			if err := sh.ApplyAll(context.Background(), txns); err != nil {
				t.Fatal(err)
			}
			diffStreams(t, mode.String(), want, streamRows(sh))
			i := 0
			engine.Specialize[bool](sh, upstruct.Bool, boolEnv, func(rel string, tp db.Tuple, v bool) {
				if i < len(wantBool) && v != wantBool[i] {
					t.Fatalf("shards=%d: bool specialization diverges at row %d", n, i)
				}
				i++
			})
			if i != len(wantBool) {
				t.Fatalf("shards=%d: bool specialization visited %d rows, want %d", n, i, len(wantBool))
			}
			j := 0
			engine.Specialize[upstruct.Set](sh, upstruct.Sets, setEnv, func(rel string, tp db.Tuple, v upstruct.Set) {
				if j < len(wantSets) && !v.Equal(wantSets[j]) {
					t.Fatalf("shards=%d: set specialization diverges at row %d", n, j)
				}
				j++
			})
			if j != len(wantSets) {
				t.Fatalf("shards=%d: set specialization visited %d rows, want %d", n, j, len(wantSets))
			}
		}
	}
}

// TestShardedMatchesSingleTPCC runs the TPC-C-derived log (realistic
// transaction shapes: multi-update transactions mixing pinned and
// hyperplane selections across several relations) through the same
// differential check.
func TestShardedMatchesSingleTPCC(t *testing.T) {
	g := tpcc.NewGenerator(tpcc.Scaled(0.02))
	initial, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	txns := g.TransactionsForQueries(150)
	single := engine.New(engine.ModeNormalForm, initial)
	if err := single.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	want := streamRows(single)
	wantSnap := snapshotOf(t, single)
	for _, n := range shardCounts {
		sh := engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(n))
		if err := sh.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		diffStreams(t, "tpcc", want, streamRows(sh))
		if !bytes.Equal(wantSnap, snapshotOf(t, sh)) {
			t.Fatalf("shards=%d: TPC-C snapshot bytes differ from single engine", n)
		}
	}
}

// TestShardedSnapshotRoundTrip: snapshots restore into sharded engines
// of any shard count (RestoreRow routes by key), and re-saving — with
// the sequential and the parallel encoder alike — reproduces the
// original bytes.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	cfg := workload.Config{Tuples: 150, Updates: 200, QueriesPerTxn: 3, Seed: 11}
	initial, txns, err := workload.GeneratePinned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.ModeNormalForm, initial)
	if err := e.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	orig := snapshotOf(t, e)
	for _, n := range shardCounts {
		restored, err := provstore.LoadSnapshot(bytes.NewReader(orig), engine.WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		if n > 1 {
			if _, ok := restored.(*engine.ShardedEngine); !ok {
				t.Fatalf("LoadSnapshot with WithShards(%d) returned %T", n, restored)
			}
		}
		if !bytes.Equal(orig, snapshotOf(t, restored)) {
			t.Fatalf("shards=%d: save→load→save not byte-idempotent", n)
		}
		for _, workers := range []int{2, 4} {
			var buf bytes.Buffer
			if err := provstore.SaveSnapshotParallel(&buf, restored, workers); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(orig, buf.Bytes()) {
				t.Fatalf("shards=%d, workers=%d: parallel snapshot differs from sequential", n, workers)
			}
		}
	}
}

// TestShardedApplyAllCancellation: a canceled context stops the batched
// apply at a shard boundary with context.Canceled.
func TestShardedApplyAllCancellation(t *testing.T) {
	cfg := workload.Config{Tuples: 100, Updates: 200, QueriesPerTxn: 1, Seed: 13}
	initial, txns, err := workload.GeneratePinned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sh.ApplyAll(ctx, txns); err == nil {
		t.Fatal("ApplyAll with canceled context returned nil")
	}
	// The engine remains usable after a canceled batch.
	if err := sh.ApplyAll(context.Background(), txns[:5]); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConcurrentReadersDuringApply hammers the read surface of
// the sharded engine while ApplyAll ingests a batch on another
// goroutine — run with -race. Afterwards the state must match a single
// engine that applied the same log.
func TestShardedConcurrentReadersDuringApply(t *testing.T) {
	cfg := workload.Config{Tuples: 300, Updates: 400, QueriesPerTxn: 2, Seed: 17}
	initial, txns, err := workload.GeneratePinned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(8))

	var probe db.Tuple
	sh.EachRow("R", func(tp db.Tuple, ann *core.Expr) {
		if probe == nil {
			probe = tp
		}
	})
	if probe == nil {
		t.Fatal("no probe tuple")
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	reader := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					f()
				}
			}
		}()
	}
	allTrue := func(core.Annot) bool { return true }
	reader(func() {
		n := 0
		sh.EachRow("R", func(db.Tuple, *core.Expr) { n++ })
		if n == 0 {
			t.Error("EachRow saw an empty relation")
		}
	})
	reader(func() {
		d, err := engine.BoolRestrictParallel(context.Background(), sh, allTrue, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if d.NumTuples() == 0 {
			t.Error("live database empty mid-apply")
		}
	})
	reader(func() {
		_ = sh.NumRows()
		_ = sh.ProvSize()
		_ = sh.SupportSize()
	})

	if err := sh.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	single := engine.New(engine.ModeNormalForm, initial)
	if err := single.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	diffStreams(t, "post-stress", streamRows(single), streamRows(sh))
}

// TestShardedMinimizeAll: minimization over shards gives the same sizes
// and annotations as over the single engine.
func TestShardedMinimizeAll(t *testing.T) {
	r := rand.New(rand.NewSource(509))
	initial := randDB(r, 8)
	txns := randTxns(r, 3, 4)
	single := engine.New(engine.ModeNormalForm, initial)
	if err := single.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	wantSize, err := single.MinimizeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range shardCounts {
		sh := engine.NewSharded(engine.ModeNormalForm, initial, engine.WithShards(n))
		if err := sh.ApplyAll(context.Background(), txns); err != nil {
			t.Fatal(err)
		}
		gotSize, err := sh.MinimizeAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if gotSize != wantSize {
			t.Errorf("shards=%d: MinimizeAll size %d, single %d", n, gotSize, wantSize)
		}
		diffStreams(t, "minimized", streamRows(single), streamRows(sh))
	}
}
