package engine

import (
	"context"
	"errors"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
)

// Sentinel errors for the conditions callers routinely branch on (the
// HTTP layer maps them to 404/400). Wrapped with %w throughout the
// package; test with errors.Is.
var (
	// ErrUnknownRelation reports an operation against a relation the
	// schema does not contain.
	ErrUnknownRelation = errors.New("unknown relation")
	// ErrBadTuple reports a tuple that does not conform to its relation
	// schema.
	ErrBadTuple = errors.New("bad tuple")
	// ErrUnknownAttribute reports an index operation naming an attribute
	// the relation schema does not contain.
	ErrUnknownAttribute = errors.New("unknown attribute")
	// ErrUnknownIndex reports a DropIndex against an index that does not
	// exist.
	ErrUnknownIndex = errors.New("unknown index")
)

// DB is the surface shared by the single-lock Engine and the
// hash-sharded ShardedEngine: annotated transaction application plus
// the provenance-usage read side. Open returns one or the other
// depending on WithShards; servers and applications program against
// this interface.
//
// All read methods observe the database at transaction granularity, and
// the streaming methods (EachRow, Rows) visit rows in the same
// deterministic order on both implementations: relations in schema
// order, rows in single-engine insertion order.
type DB interface {
	Mode() Mode
	Schema() *db.Schema
	Relations() []string

	ApplyTransaction(t *db.Transaction) error
	ApplyAll(ctx context.Context, txns []db.Transaction) error
	RestoreRow(rel string, t db.Tuple, ann *core.Expr) error

	// Secondary indexing: indexes are pure access-path choices (the
	// Theorem 5.3 normal form is per-row local, so results are
	// byte-identical with or without them). Any number of per-column
	// indexes may coexist per relation; IndexStats lists them and
	// PlannerStats reports how scans were resolved.
	BuildIndex(rel, attr string) error
	DropIndex(rel, attr string) error
	IndexStats() []IndexInfo
	PlannerStats() PlannerStats

	Annotation(rel string, t db.Tuple) *core.Expr
	NF(rel string, t db.Tuple) *core.NF
	EachRow(rel string, f func(t db.Tuple, ann *core.Expr))
	Rows(f func(rel string, t db.Tuple, ann *core.Expr))

	NumRows() int
	SupportSize() int
	ProvSize() int64
	ProvDAGSize() int64
	MinimizeAll(ctx context.Context) (int64, error)
}

var (
	_ DB = (*Engine)(nil)
	_ DB = (*ShardedEngine)(nil)
)

// Open builds a provenance engine from an initial database: the plain
// single-lock Engine by default, the hash-sharded ShardedEngine when
// WithShards(n) with n > 1 is given. Both produce identical annotations
// and identical snapshot bytes for the same input.
func Open(mode Mode, initial *db.Database, opts ...Option) DB {
	if newConfig(opts).shards > 1 {
		return NewSharded(mode, initial, opts...)
	}
	return New(mode, initial, opts...)
}

// OpenEmpty is Open over a schema with no initial tuples, for snapshot
// restoration and streaming ingestion.
func OpenEmpty(mode Mode, schema *db.Schema, opts ...Option) DB {
	return Open(mode, db.NewDatabase(schema), opts...)
}
