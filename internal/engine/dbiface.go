package engine

import (
	"context"
	"errors"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
)

// Sentinel errors for the conditions callers routinely branch on (the
// HTTP layer maps them to 404/400). Wrapped with %w throughout the
// package; test with errors.Is.
var (
	// ErrUnknownRelation reports an operation against a relation the
	// schema does not contain.
	ErrUnknownRelation = errors.New("unknown relation")
	// ErrBadTuple reports a tuple that does not conform to its relation
	// schema.
	ErrBadTuple = errors.New("bad tuple")
	// ErrUnknownAttribute reports an index operation naming an attribute
	// the relation schema does not contain.
	ErrUnknownAttribute = errors.New("unknown attribute")
	// ErrUnknownIndex reports a DropIndex against an index that does not
	// exist.
	ErrUnknownIndex = errors.New("unknown index")
)

// Reader is the provenance-usage read side shared by live engines and
// pinned views: annotation lookup, deterministic row streaming and the
// size measures. All methods resolve against one committed MVCC
// horizon — the newest one for a live engine, the pinned one for a
// View — lock-free, so they never block behind (or stall) a concurrent
// ApplyAll. The streaming methods (EachRow, Rows) visit rows in the
// same deterministic order on every implementation: relations in
// schema order, rows in single-engine insertion order.
type Reader interface {
	Mode() Mode
	Schema() *db.Schema
	Relations() []string

	Annotation(rel string, t db.Tuple) *core.Expr
	NF(rel string, t db.Tuple) *core.NF
	EachRow(rel string, f func(t db.Tuple, ann *core.Expr))
	Rows(f func(rel string, t db.Tuple, ann *core.Expr))

	// Select returns the tuples the hyperplane selection pattern matches
	// at the reader's horizon, in insertion order, resolved through the
	// scan planner: a secondary index whose recorded history covers the
	// horizon serves the candidates (posting lists are interval-aware),
	// otherwise the relation is walked with per-row version resolution.
	Select(rel string, sel db.Pattern) ([]db.Tuple, error)

	NumRows() int
	SupportSize() int
	ProvSize() int64
	ProvDAGSize() int64
}

// View is a read-only database pinned at one horizon sequence, as
// returned by DB.At: its reads are immutable — byte-identical no
// matter how many transactions commit after the view was taken — and
// lock-free. AsOf reports the pinned horizon (see EpochSeq/SeqEpoch).
type View interface {
	Reader
	AsOf() uint64
}

// DB is the surface shared by the single-writer Engine and the
// hash-sharded ShardedEngine: the Reader surface at the live horizon,
// annotated transaction application, and MVCC time travel. Open
// returns one or the other depending on WithShards; servers and
// applications program against this interface.
//
// Writes observe transaction granularity: a transaction's effects
// publish atomically to the read horizon at commit, and readers pin
// that horizon on entry, so they see the database either before or
// after a transaction, never mid-way.
type DB interface {
	Reader

	ApplyTransaction(t *db.Transaction) error
	ApplyAll(ctx context.Context, txns []db.Transaction) error
	// ApplyBatch is ApplyAll reporting the durably applied prefix: on a
	// cancelled or failed batch, txns[:applied] must not be replayed and
	// txns[applied:] may be (WAL recovery and replication resume there).
	ApplyBatch(ctx context.Context, txns []db.Transaction) (applied int, err error)
	RestoreRow(rel string, t db.Tuple, ann *core.Expr) error

	// MVCC time travel: At pins a read-only view at a horizon sequence
	// (clamped to the committed Horizon and snapped to an epoch
	// boundary; see EpochSeq), Horizon reports the newest committed
	// horizon, and MVCCStats the version-storage counters.
	At(seq uint64) View
	Horizon() uint64
	// WaitHorizon blocks until the committed horizon reaches seq or ctx
	// is done — the notification edge replication followers and fenced
	// reads build on instead of polling Horizon.
	WaitHorizon(ctx context.Context, seq uint64) error
	MVCCStats() MVCCStats

	// Secondary indexing: indexes are pure access-path choices (the
	// Theorem 5.3 normal form is per-row local, so results are
	// byte-identical with or without them). Any number of per-column
	// indexes may coexist per relation; IndexStats lists them and
	// PlannerStats reports how scans were resolved.
	BuildIndex(rel, attr string) error
	DropIndex(rel, attr string) error
	IndexStats() []IndexInfo
	PlannerStats() PlannerStats

	// SetCommitHook installs (or, with nil, removes) the change-
	// notification subscriber: one CommitEvent per committed write
	// epoch, in epoch order, delivered after the epoch became readable.
	// See CommitHook for the (non-blocking) contract; internal/subscribe
	// builds the live-subscription surface on top of this.
	SetCommitHook(CommitHook)

	MinimizeAll(ctx context.Context) (int64, error)
}

var (
	_ DB = (*Engine)(nil)
	_ DB = (*ShardedEngine)(nil)
)

// Open builds a provenance engine from an initial database: the plain
// single-lock Engine by default, the hash-sharded ShardedEngine when
// WithShards(n) with n > 1 is given. Both produce identical annotations
// and identical snapshot bytes for the same input.
func Open(mode Mode, initial *db.Database, opts ...Option) DB {
	if newConfig(opts).shards > 1 {
		return NewSharded(mode, initial, opts...)
	}
	return New(mode, initial, opts...)
}

// OpenEmpty is Open over a schema with no initial tuples, for snapshot
// restoration and streaming ingestion.
func OpenEmpty(mode Mode, schema *db.Schema, opts ...Option) DB {
	return Open(mode, db.NewDatabase(schema), opts...)
}
