package core

// Minimize returns the canonical zero-minimized representation of e
// (Proposition 5.5): the zero-related axioms are applied bottom-up, and
// every sum is flattened, deduplicated and put into a deterministic
// order (Σ ranges over a set of expressions; reordering summands is
// sanctioned by axiom 1). For expressions in the normal form of
// Theorem 5.3 the result is one of
//
//	(1) a normal-form shape, (2) the literal 0, or (3) (Σ bi) ·M p,
//
// and the paper shows it is a unique minimal representative, which makes
// Minimize usable as a canonical form when comparing provenance
// expressions produced by different but set-equivalent transactions —
// with hash-consing the comparison is pointer equality: Minimize always
// returns an interned node, and UP[X]-equal inputs in normal form map
// to the *same* node.
//
// The result is memoized on the canonical node, so repeated
// minimization of shared history (the common case across rows that
// went through the same transactions) costs one pointer load, and one
// pass over a DAG is linear in its number of distinct nodes rather
// than its tree size.
func Minimize(e *Expr) *Expr {
	return minimizeInterned(Intern(e))
}

func minimizeInterned(e *Expr) *Expr {
	if m := e.minimized.Load(); m != nil {
		return m
	}
	m := minimizeStep(e)
	// Minimize is idempotent (TestMinimizeIdempotent), so the result is
	// its own fixed point; recording that saves the re-walk when a
	// minimized expression is minimized again.
	m.minimized.Store(m)
	e.minimized.Store(m)
	return m
}

func minimizeStep(e *Expr) *Expr {
	switch e.op {
	case OpZero, OpVar:
		return e
	case OpSum:
		kids := make([]*Expr, 0, len(e.kids))
		for _, k := range e.kids {
			m := minimizeInterned(k)
			if m.IsZero() {
				continue
			}
			if m.op == OpSum {
				kids = append(kids, m.kids...)
			} else {
				kids = append(kids, m)
			}
		}
		kids = dedupExprs(kids)
		if len(kids) == 0 {
			return zeroExpr
		}
		if len(kids) == 1 {
			return kids[0]
		}
		return Sum(SortedByHash(kids)...)
	}
	l := minimizeInterned(e.kids[0])
	r := minimizeInterned(e.kids[1])
	switch e.op {
	case OpMinus:
		if l.IsZero() {
			return zeroExpr
		}
		if r.IsZero() {
			return l
		}
	case OpDotM:
		if l.IsZero() || r.IsZero() {
			return zeroExpr
		}
	case OpPlusI, OpPlusM:
		if l.IsZero() {
			return r
		}
		if r.IsZero() {
			return l
		}
	}
	if l == e.kids[0] && r == e.kids[1] {
		return e
	}
	return binary(e.op, l, r)
}

// dedupExprs removes structural duplicates, keeping first occurrences.
// Elements are canonicalized, so duplicate detection is a pointer-set
// lookup (hash collisions are already resolved by the intern table).
func dedupExprs(es []*Expr) []*Expr {
	if len(es) < 2 {
		return es
	}
	seen := make(map[*Expr]struct{}, len(es))
	out := es[:0]
	for _, c := range es {
		c = Intern(c)
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		out = append(out, c)
	}
	return out
}
