package core

// Minimize returns the canonical zero-minimized representation of e
// (Proposition 5.5): the zero-related axioms are applied bottom-up, and
// every sum is flattened, deduplicated and put into a deterministic
// order (Σ ranges over a set of expressions; reordering summands is
// sanctioned by axiom 1). For expressions in the normal form of
// Theorem 5.3 the result is one of
//
//	(1) a normal-form shape, (2) the literal 0, or (3) (Σ bi) ·M p,
//
// and the paper shows it is a unique minimal representative, which makes
// Minimize usable as a canonical form when comparing provenance
// expressions produced by different but set-equivalent transactions.
func Minimize(e *Expr) *Expr {
	switch e.op {
	case OpZero, OpVar:
		return e
	case OpSum:
		kids := make([]*Expr, 0, len(e.kids))
		for _, k := range e.kids {
			m := Minimize(k)
			if m.IsZero() {
				continue
			}
			if m.op == OpSum {
				kids = append(kids, m.kids...)
			} else {
				kids = append(kids, m)
			}
		}
		kids = dedupExprs(kids)
		if len(kids) == 0 {
			return zeroExpr
		}
		if len(kids) == 1 {
			return kids[0]
		}
		return Sum(SortedByHash(kids)...)
	}
	l := Minimize(e.kids[0])
	r := Minimize(e.kids[1])
	switch e.op {
	case OpMinus:
		if l.IsZero() {
			return zeroExpr
		}
		if r.IsZero() {
			return l
		}
	case OpDotM:
		if l.IsZero() || r.IsZero() {
			return zeroExpr
		}
	case OpPlusI, OpPlusM:
		if l.IsZero() {
			return r
		}
		if r.IsZero() {
			return l
		}
	}
	if l == e.kids[0] && r == e.kids[1] {
		return e
	}
	return binary(e.op, l, r)
}

func dedupExprs(es []*Expr) []*Expr {
	if len(es) < 2 {
		return es
	}
	seen := make(map[uint64][]*Expr, len(es))
	out := es[:0]
	for _, c := range es {
		dup := false
		for _, prev := range seen[c.hash] {
			if prev.Equal(c) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[c.hash] = append(seen[c.hash], c)
		out = append(out, c)
	}
	return out
}
