package core

// Subst returns e with every variable whose annotation is mapped by sub
// replaced by its image, leaving other nodes untouched. Substitution is
// the instantiation mechanism of the Figure 3 axiom schemas: an axiom
// holds for all valuations, hence for all substitutions of its
// metavariables by expressions (the property-based axiom tests rely on
// this). The walk is DAG-aware: shared subterms are rewritten once.
func Subst(e *Expr, sub map[Annot]*Expr) *Expr {
	if len(sub) == 0 {
		return e
	}
	memo := make(map[*Expr]*Expr)
	var walk func(x *Expr) *Expr
	walk = func(x *Expr) *Expr {
		if r, ok := memo[x]; ok {
			return r
		}
		var r *Expr
		switch x.op {
		case OpZero:
			r = x
		case OpVar:
			if img, ok := sub[x.ann]; ok {
				r = img
			} else {
				r = x
			}
		case OpSum:
			kids := make([]*Expr, len(x.kids))
			for i, k := range x.kids {
				kids[i] = walk(k)
			}
			r = Sum(kids...)
		default:
			r = binary(x.op, walk(x.kids[0]), walk(x.kids[1]))
		}
		memo[x] = r
		return r
	}
	return walk(e)
}
