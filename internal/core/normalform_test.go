package core_test

import (
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/upstruct"
)

// evalEquiv reports whether two expressions evaluate identically under
// the Boolean and the set structure for the given number of random
// valuations. It is a sound (no false negatives) randomized check of
// UP[X]-equivalence used throughout the tests.
func evalEquiv(t *testing.T, r *rand.Rand, e1, e2 *core.Expr, trials int) bool {
	t.Helper()
	for i := 0; i < trials; i++ {
		env := randBoolEnv(r)
		if upstruct.Eval(e1, upstruct.Bool, env) != upstruct.Eval(e2, upstruct.Bool, env) {
			t.Logf("bool divergence:\n  e1 = %v\n  e2 = %v", e1, e2)
			return false
		}
		senv := randSetEnv(r)
		if !upstruct.Eval(e1, upstruct.Sets, senv).Equal(upstruct.Eval(e2, upstruct.Sets, senv)) {
			t.Logf("set divergence:\n  e1 = %v\n  e2 = %v", e1, e2)
			return false
		}
	}
	return true
}

func TestNFInsertOverrides(t *testing.T) {
	p := core.QueryAnnot("p")
	r := rand.New(rand.NewSource(1))
	// Whatever happened before in this transaction, inserting yields a +I p.
	build := []func(n *core.NF){
		func(n *core.NF) {},
		func(n *core.NF) { n.Delete(p) },
		func(n *core.NF) { n.Insert(p) },
		func(n *core.NF) { n.AbsorbMod([]*core.Expr{tv("b")}, false, p) },
		func(n *core.NF) { n.Delete(p); n.AbsorbMod([]*core.Expr{tv("b")}, false, p) },
	}
	for i, setup := range build {
		n := core.NewNF(tv("a"))
		setup(n)
		before := n.ToExpr()
		n.Insert(p)
		want := core.PlusI(tv("a"), core.Var(p))
		if !n.ToExpr().Equal(want) {
			t.Errorf("case %d: after insert got %v, want %v", i, n.ToExpr(), want)
		}
		// Rule 1 must be equivalence-preserving: before +I p ≡ after.
		if !evalEquiv(t, r, core.PlusI(before, core.Var(p)), n.ToExpr(), 16) {
			t.Errorf("case %d: rule 1 not equivalence preserving", i)
		}
	}
}

func TestNFDeleteOverrides(t *testing.T) {
	p := core.QueryAnnot("p")
	r := rand.New(rand.NewSource(2))
	build := []func(n *core.NF){
		func(n *core.NF) {},
		func(n *core.NF) { n.Delete(p) },
		func(n *core.NF) { n.Insert(p) },
		func(n *core.NF) { n.AbsorbMod([]*core.Expr{tv("b")}, false, p) },
		func(n *core.NF) { n.Delete(p); n.AbsorbMod([]*core.Expr{tv("b")}, false, p) },
	}
	for i, setup := range build {
		n := core.NewNF(tv("a"))
		setup(n)
		before := n.ToExpr()
		n.Delete(p)
		want := core.Minus(tv("a"), core.Var(p))
		if !n.ToExpr().Equal(want) {
			t.Errorf("case %d: after delete got %v, want %v", i, n.ToExpr(), want)
		}
		if !evalEquiv(t, r, core.Minus(before, core.Var(p)), n.ToExpr(), 16) {
			t.Errorf("case %d: rule 2 not equivalence preserving", i)
		}
	}
}

func TestNFModTransitions(t *testing.T) {
	p := core.QueryAnnot("p")
	r := rand.New(rand.NewSource(3))
	contrib := []*core.Expr{tv("b0"), tv("b1")}
	type tc struct {
		name     string
		setup    func(n *core.NF)
		inserted bool
		wantKind core.NFKind
	}
	cases := []tc{
		{"base", func(n *core.NF) {}, false, core.NFMod},
		{"minus", func(n *core.NF) { n.Delete(p) }, false, core.NFMinusMod},
		{"plusI stays", func(n *core.NF) { n.Insert(p) }, false, core.NFPlusI},
		{"mod merges", func(n *core.NF) { n.AbsorbMod([]*core.Expr{tv("c")}, false, p) }, false, core.NFMod},
		{"minusmod merges", func(n *core.NF) {
			n.Delete(p)
			n.AbsorbMod([]*core.Expr{tv("c")}, false, p)
		}, false, core.NFMinusMod},
		{"inserted source wins", func(n *core.NF) {}, true, core.NFPlusI},
		{"inserted over minus", func(n *core.NF) { n.Delete(p) }, true, core.NFPlusI},
		{"inserted over mod", func(n *core.NF) { n.AbsorbMod([]*core.Expr{tv("c")}, false, p) }, true, core.NFPlusI},
	}
	for _, c := range cases {
		n := core.NewNF(tv("a"))
		c.setup(n)
		before := n.ToExpr()
		n.AbsorbMod(contrib, c.inserted, p)
		if n.Kind() != c.wantKind {
			t.Errorf("%s: kind = %v, want %v", c.name, n.Kind(), c.wantKind)
		}
		// The raw (unnormalized) application per Section 3.1.
		var raw *core.Expr
		if c.inserted {
			// An inserted source contributes its pre-insert annotation
			// behind a +I p; use a fresh base to stand for it.
			raw = core.PlusM(before, core.DotM(core.Sum(core.PlusI(tv("src"), core.Var(p))), core.Var(p)))
		} else {
			raw = core.PlusM(before, core.DotM(core.Sum(contrib...), core.Var(p)))
		}
		if !evalEquiv(t, r, raw, n.ToExpr(), 24) {
			t.Errorf("%s: AbsorbMod not equivalence preserving\n raw=%v\n nf=%v", c.name, raw, n.ToExpr())
		}
	}
}

func TestNFModEmptyContribNoEffect(t *testing.T) {
	p := core.QueryAnnot("p")
	n := core.NewNF(tv("a"))
	n.AbsorbMod(nil, false, p)
	if n.Kind() != core.NFBase || !n.ToExpr().Equal(tv("a")) {
		t.Errorf("rule 3: empty contribution must leave the form unchanged, got %v", n.ToExpr())
	}
}

func TestNFSumDedup(t *testing.T) {
	p := core.QueryAnnot("p")
	n := core.NewNF(core.Zero())
	n.AbsorbMod([]*core.Expr{tv("b"), tv("b")}, false, p)
	n.AbsorbMod([]*core.Expr{tv("b"), tv("c")}, false, p)
	if got := len(n.Sum()); got != 2 {
		t.Errorf("sum must be deduplicated: got %d summands (%v)", got, n.ToExpr())
	}
}

func TestNFZeroContributionsSkipped(t *testing.T) {
	p := core.QueryAnnot("p")
	n := core.NewNF(tv("a"))
	n.AbsorbMod([]*core.Expr{core.Zero(), tv("b")}, false, p)
	if got := len(n.Sum()); got != 1 {
		t.Errorf("zero summands must be dropped: %v", n.ToExpr())
	}
}

func TestNFSizeMatchesToExpr(t *testing.T) {
	p := core.QueryAnnot("p")
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := core.NewNF(randExpr(r, 3))
		for i := 0; i < r.Intn(6); i++ {
			switch r.Intn(3) {
			case 0:
				n.Insert(p)
			case 1:
				n.Delete(p)
			default:
				var contrib []*core.Expr
				for j := 0; j < 1+r.Intn(3); j++ {
					contrib = append(contrib, randExpr(r, 2))
				}
				n.AbsorbMod(contrib, r.Intn(8) == 0, p)
			}
		}
		if got, want := n.Size(), n.ToExpr().Size(); got != want {
			t.Fatalf("NF.Size = %d, ToExpr().Size = %d for %v", got, want, n.ToExpr())
		}
	}
}

func TestNFFreezeAndNextTransaction(t *testing.T) {
	p := core.QueryAnnot("p")
	p2 := core.QueryAnnot("p'")
	n := core.NewNF(tv("p1"))
	n.AbsorbMod([]*core.Expr{tv("p3")}, false, p)
	n.Freeze()
	if n.Kind() != core.NFBase {
		t.Fatalf("Freeze must reset to NFBase, got %v", n.Kind())
	}
	n.Delete(p2)
	want := "(p1 +M (p3 *M p)) - p'"
	if got := n.ToExpr().String(); got != want {
		t.Errorf("after second transaction: %q, want %q", got, want)
	}
}

func TestNFPanicsOnMixedAnnotationsWithoutFreeze(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("updating an NF under a second annotation without Freeze must panic")
		}
	}()
	n := core.NewNF(tv("a"))
	n.Delete(core.QueryAnnot("p"))
	n.Delete(core.QueryAnnot("p'"))
}

func TestNFClone(t *testing.T) {
	p := core.QueryAnnot("p")
	n := core.NewNF(tv("a"))
	n.AbsorbMod([]*core.Expr{tv("b")}, false, p)
	c := n.Clone()
	c.AbsorbMod([]*core.Expr{tv("c")}, false, p)
	if len(n.Sum()) != 1 || len(c.Sum()) != 2 {
		t.Errorf("Clone must be independent: n=%v c=%v", n.ToExpr(), c.ToExpr())
	}
}

func TestEvalNFMatchesEvalToExpr(t *testing.T) {
	p := core.QueryAnnot("p")
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := core.NewNF(randExpr(r, 3))
		for i := 0; i < r.Intn(5); i++ {
			switch r.Intn(3) {
			case 0:
				n.Insert(p)
			case 1:
				n.Delete(p)
			default:
				n.AbsorbMod([]*core.Expr{randExpr(r, 2)}, false, p)
			}
		}
		env := randBoolEnv(r)
		if upstruct.EvalNF(n, upstruct.Bool, env) != upstruct.Eval(n.ToExpr(), upstruct.Bool, env) {
			t.Fatalf("EvalNF diverges from Eval(ToExpr) for %v", n.ToExpr())
		}
	}
}
