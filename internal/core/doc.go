// Package core implements the UP[X] algebraic provenance structure for
// hyperplane update queries, following Bourhis, Deutch and Moskovitch,
// "Equivalence-Invariant Algebraic Provenance for Hyperplane Update
// Queries" (SIGMOD 2020).
//
// The structure UP[X] is built from a set X of basic annotations
// (identifiers attached to input tuples and to update queries) and five
// abstract operations plus a distinguished zero element:
//
//   - a +I p  — provenance of inserting a tuple annotated a by a query
//     annotated p (OpPlusI);
//   - a − p   — provenance of deleting (or modifying away) a tuple; the
//     paper's −D and −M coincide by axiom derivation (OpMinus);
//   - a +M e  — provenance of a tuple that receives the result of a
//     modification e (OpPlusM);
//   - a ·M p  — a tuple annotated a updated by a query annotated p into a
//     new tuple (OpDotM);
//   - Σ / +   — the disjunction of the annotations of all tuples that a
//     modification collapses into a single output tuple (OpSum).
//
// The zero element 0 (OpZero) annotates absent tuples; the zero-related
// axioms of Section 3.1 of the paper are implemented by SimplifyZero.
//
// Expressions are immutable trees with cached tree size and structural
// hash. The naive provenance construction (Section 5.1 of the paper)
// manipulates these trees directly and may grow exponentially with the
// transaction length; the normal form of Section 5.2 is implemented by
// the NF type, which maintains one of the five shapes of Theorem 5.3
// incrementally per update, using the rewrite rules of Figure 6 (see
// rules.go). Minimize implements the unique zero-minimized representation
// of Proposition 5.5 and is used as a canonical form.
package core
