package core

import (
	"sync"
	"sync/atomic"
)

// This file implements hash-consing for UP[X] expressions: every
// constructor returns a canonical *Expr from a global, sharded intern
// table, so structurally equal expressions built through the
// constructors are pointer-equal. This is sound because Expr is
// immutable: a canonical node can be shared freely across rows, engines
// and goroutines. Pointer equality then makes structural comparison,
// summand deduplication and the rewrite-rule guards O(1), and turns the
// per-row expression "trees" of the paper into one global DAG whose
// memory footprint is the number of *distinct* subterms (the paper's
// Fig. 7b/8b tree-size measure is still available via Size; DAGSize and
// engine.ProvDAGSize report the interned measure).
//
// The only producer of non-interned nodes is DeepCopy, which exists so
// that the naive engine's copy-on-write configuration can keep modeling
// the paper's tree-memory behaviour. Constructors that receive a
// non-interned child deliberately build a non-interned parent (raw
// trees stay raw and are never registered in the table); Intern
// re-canonicalizes such a tree, and Minimize/Normalize do so implicitly.
//
// Fingerprints are the 64-bit structural hashes of hashNode. They are
// strong enough to shard and bucket on, but they are not assumed
// collision-free: a bucket holds every canonical node with the same
// fingerprint and lookups compare structurally (operator, annotation
// and child identity) before declaring a hit, so a hash collision costs
// a bucket scan, never a wrong canonical node. TestInternForcedCollision
// pins this down.
//
// Memory layout: canonical nodes are immortal (the table is append-only
// for the process lifetime), which makes them ideal arena tenants. Each
// shard slab-allocates its nodes from fixed-size chunks, so interning a
// node costs one bump-pointer step instead of an individual heap object,
// and the GC tracks thousands of nodes per allocation. Collision
// overflow lists are chunked the same way (rare: they require a genuine
// 64-bit fingerprint collision), so bucket growth never re-allocates a
// slice.

// internShardCount is the number of lock stripes of the intern table.
// Power of two; 64 stripes keep contention negligible at GOMAXPROCS
// well beyond typical core counts.
const internShardCount = 64

// arenaChunkLen is the number of Expr nodes per slab chunk.
const arenaChunkLen = 1024

// exprArena bump-allocates immortal Expr nodes from fixed-size chunks.
// Chunks are never re-allocated or copied: published *Expr pointers stay
// valid (the nodes embed atomic memo fields and must never move). All
// access happens under the owning shard's write lock.
type exprArena struct {
	cur  []Expr // current chunk; len(cur) slots used, allocated lazily
	used int
}

func (a *exprArena) alloc() *Expr {
	if a.used == len(a.cur) {
		a.cur = make([]Expr, arenaChunkLen)
		a.used = 0
	}
	n := &a.cur[a.used]
	a.used++
	return n
}

// bucketChunkLen is the capacity of one collision-overflow chunk.
const bucketChunkLen = 4

// exprBucket is a chunked list of canonical nodes sharing one
// fingerprint beyond the first: appends fill the newest chunk in place
// and link a fresh chunk when full, so growth never copies.
type exprBucket struct {
	nodes [bucketChunkLen]*Expr
	n     int
	next  *exprBucket // older, always-full chunks
}

func (b *exprBucket) each(f func(*Expr) bool) *Expr {
	for c := b; c != nil; c = c.next {
		for i := 0; i < c.n; i++ {
			if f(c.nodes[i]) {
				return c.nodes[i]
			}
		}
	}
	return nil
}

type internShard struct {
	mu sync.RWMutex
	// first maps a structural fingerprint to the first canonical node
	// carrying it — the only entry in the overwhelmingly common
	// collision-free case, so a node costs one map slot, not a slice.
	first map[uint64]*Expr
	// rest holds any further canonical nodes under a fingerprint: only
	// populated by a genuine 64-bit collision.
	rest  map[uint64]*exprBucket
	arena exprArena
}

// addRest appends a colliding node to the fingerprint's overflow bucket;
// the caller holds the write lock.
func (s *internShard) addRest(h uint64, n *Expr) {
	b := s.rest[h]
	if b == nil || b.n == bucketChunkLen {
		b = &exprBucket{next: b}
		s.rest[h] = b
	}
	b.nodes[b.n] = n
	b.n++
}

type internTable struct {
	shards [internShardCount]internShard
	nodes  atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

var interns = newInternTable()

func newInternTable() *internTable {
	t := &internTable{}
	for i := range t.shards {
		t.shards[i].first = make(map[uint64]*Expr)
		t.shards[i].rest = make(map[uint64]*exprBucket)
	}
	return t
}

func (t *internTable) shard(h uint64) *internShard {
	// Fold the high bits in so shard choice is not just the low bits of
	// the FNV state. Callers compute the shard once per constructor call
	// and reuse it across the read probe and the write path.
	return &t.shards[(h^h>>32)&(internShardCount-1)]
}

// sameNode reports whether the canonical node e represents (op, ann,
// kids). Children are compared by identity: interned nodes only ever
// hold canonical children, so pointer comparison is exact structural
// comparison here.
func sameNode(e *Expr, op Op, ann Annot, kids []*Expr) bool {
	if e.op != op || e.ann != ann || len(e.kids) != len(kids) {
		return false
	}
	for i := range kids {
		if e.kids[i] != kids[i] {
			return false
		}
	}
	return true
}

// intern returns the canonical node for (op, ann, kids) under the
// fingerprint h, inserting a fresh node on first sight. Every kid must
// already be canonical; on a miss the kids slice is adopted by the
// table and must not be mutated by the caller.
func (t *internTable) intern(op Op, ann Annot, kids []*Expr, h uint64) *Expr {
	s := t.shard(h)
	s.mu.RLock()
	e := s.find(op, ann, kids, h)
	s.mu.RUnlock()
	if e != nil {
		t.hits.Add(1)
		return e
	}

	size := int64(1)
	for _, k := range kids {
		size += k.size
	}

	s.mu.Lock()
	// Re-check under the write lock: another goroutine may have interned
	// the same node between the two lock acquisitions; only the winner
	// takes an arena slot, so the canonical pointer stays unique.
	if e := s.find(op, ann, kids, h); e != nil {
		s.mu.Unlock()
		t.hits.Add(1)
		return e
	}
	n := s.arena.alloc()
	n.op, n.ann, n.kids, n.size, n.hash, n.interned = op, ann, kids, size, h, true
	if _, taken := s.first[h]; !taken {
		s.first[h] = n
	} else {
		s.addRest(h, n)
	}
	s.mu.Unlock()
	t.nodes.Add(1)
	t.misses.Add(1)
	return n
}

// find scans the fingerprint's canonical nodes for (op, ann, kids); the
// caller holds the shard lock.
func (s *internShard) find(op Op, ann Annot, kids []*Expr, h uint64) *Expr {
	if e, ok := s.first[h]; ok {
		if sameNode(e, op, ann, kids) {
			return e
		}
		if b := s.rest[h]; b != nil {
			return b.each(func(e *Expr) bool { return sameNode(e, op, ann, kids) })
		}
	}
	return nil
}

// findBinary is find for a binary node given its children directly, so
// the probe needs no kids slice; the caller holds the shard lock.
func (s *internShard) findBinary(op Op, l, r *Expr, h uint64) *Expr {
	hit := func(e *Expr) bool {
		return e.op == op && len(e.kids) == 2 && e.kids[0] == l && e.kids[1] == r
	}
	if e, ok := s.first[h]; ok {
		if hit(e) {
			return e
		}
		if b := s.rest[h]; b != nil {
			return b.each(hit)
		}
	}
	return nil
}

// internBinary returns the canonical node for op over the canonical
// children l and r under the fingerprint h, interning on first sight.
// The shard is resolved once for both the allocation-free hit probe and
// the write path, and the kids slice is only allocated after a miss.
func (t *internTable) internBinary(op Op, l, r *Expr, h uint64) *Expr {
	s := t.shard(h)
	s.mu.RLock()
	e := s.findBinary(op, l, r, h)
	s.mu.RUnlock()
	if e != nil {
		t.hits.Add(1)
		return e
	}

	s.mu.Lock()
	if e := s.findBinary(op, l, r, h); e != nil {
		s.mu.Unlock()
		t.hits.Add(1)
		return e
	}
	n := s.arena.alloc()
	n.op, n.kids, n.size, n.hash, n.interned = op, []*Expr{l, r}, 1+l.size+r.size, h, true
	if _, taken := s.first[h]; !taken {
		s.first[h] = n
	} else {
		s.addRest(h, n)
	}
	s.mu.Unlock()
	t.nodes.Add(1)
	t.misses.Add(1)
	return n
}

// Interned reports whether e is a canonical node of the intern table
// (true for everything built through the constructors; false only for
// DeepCopy results and their enclosing raw trees).
func (e *Expr) Interned() bool { return e.interned }

// Intern returns the canonical representative of e: e itself if it is
// already canonical, otherwise the interned node of the identical
// structure, interning bottom-up. The cost is linear in the number of
// non-canonical nodes reachable from e.
func Intern(e *Expr) *Expr {
	if e == nil || e.interned {
		return e
	}
	switch e.op {
	case OpZero:
		return zeroExpr
	case OpVar:
		return Var(e.ann)
	}
	kids := make([]*Expr, len(e.kids))
	for i, k := range e.kids {
		kids[i] = Intern(k)
	}
	// Interning children preserves structure, hence the structural hash.
	return interns.intern(e.op, e.ann, kids, e.hash)
}

// InternTableStats is a snapshot of the global intern table counters.
type InternTableStats struct {
	// Nodes is the number of canonical nodes resident in the table —
	// the memory actually held by all interned provenance in the
	// process (the DAG measure), as opposed to the tree sizes reported
	// by Expr.Size.
	Nodes int64
	// Hits counts constructor calls answered with an existing canonical
	// node; Misses counts calls that inserted a new one.
	Hits, Misses int64
}

// InternStats returns the current intern table counters.
func InternStats() InternTableStats {
	return InternTableStats{
		Nodes:  interns.nodes.Load(),
		Hits:   interns.hits.Load(),
		Misses: interns.misses.Load(),
	}
}
