package core

import (
	"sync"
	"sync/atomic"
)

// This file implements hash-consing for UP[X] expressions: every
// constructor returns a canonical *Expr from a global, sharded intern
// table, so structurally equal expressions built through the
// constructors are pointer-equal. This is sound because Expr is
// immutable: a canonical node can be shared freely across rows, engines
// and goroutines. Pointer equality then makes structural comparison,
// summand deduplication and the rewrite-rule guards O(1), and turns the
// per-row expression "trees" of the paper into one global DAG whose
// memory footprint is the number of *distinct* subterms (the paper's
// Fig. 7b/8b tree-size measure is still available via Size; DAGSize and
// engine.ProvDAGSize report the interned measure).
//
// The only producer of non-interned nodes is DeepCopy, which exists so
// that the naive engine's copy-on-write configuration can keep modeling
// the paper's tree-memory behaviour. Constructors that receive a
// non-interned child deliberately build a non-interned parent (raw
// trees stay raw and are never registered in the table); Intern
// re-canonicalizes such a tree, and Minimize/Normalize do so implicitly.
//
// Fingerprints are the 64-bit structural hashes of hashNode. They are
// strong enough to shard and bucket on, but they are not assumed
// collision-free: a bucket holds every canonical node with the same
// fingerprint and lookups compare structurally (operator, annotation
// and child identity) before declaring a hit, so a hash collision costs
// a bucket scan, never a wrong canonical node. TestInternForcedCollision
// pins this down.

// internShardCount is the number of lock stripes of the intern table.
// Power of two; 64 stripes keep contention negligible at GOMAXPROCS
// well beyond typical core counts.
const internShardCount = 64

type internShard struct {
	mu sync.RWMutex
	// first maps a structural fingerprint to the first canonical node
	// carrying it — the only entry in the overwhelmingly common
	// collision-free case, so a node costs one map slot, not a slice.
	first map[uint64]*Expr
	// rest holds any further canonical nodes under a fingerprint: only
	// populated by a genuine 64-bit collision.
	rest map[uint64][]*Expr
}

type internTable struct {
	shards [internShardCount]internShard
	nodes  atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

var interns = newInternTable()

func newInternTable() *internTable {
	t := &internTable{}
	for i := range t.shards {
		t.shards[i].first = make(map[uint64]*Expr)
		t.shards[i].rest = make(map[uint64][]*Expr)
	}
	return t
}

func (t *internTable) shard(h uint64) *internShard {
	// Fold the high bits in so shard choice is not just the low bits of
	// the FNV state.
	return &t.shards[(h^h>>32)&(internShardCount-1)]
}

// sameNode reports whether the canonical node e represents (op, ann,
// kids). Children are compared by identity: interned nodes only ever
// hold canonical children, so pointer comparison is exact structural
// comparison here.
func sameNode(e *Expr, op Op, ann Annot, kids []*Expr) bool {
	if e.op != op || e.ann != ann || len(e.kids) != len(kids) {
		return false
	}
	for i := range kids {
		if e.kids[i] != kids[i] {
			return false
		}
	}
	return true
}

// intern returns the canonical node for (op, ann, kids) under the
// fingerprint h, inserting a fresh node on first sight. Every kid must
// already be canonical; on a miss the kids slice is adopted by the
// table and must not be mutated by the caller.
func (t *internTable) intern(op Op, ann Annot, kids []*Expr, h uint64) *Expr {
	s := t.shard(h)
	s.mu.RLock()
	if e := s.find(op, ann, kids, h); e != nil {
		s.mu.RUnlock()
		t.hits.Add(1)
		return e
	}
	s.mu.RUnlock()

	size := int64(1)
	for _, k := range kids {
		size += k.size
	}
	n := &Expr{op: op, ann: ann, kids: kids, size: size, hash: h, interned: true}

	s.mu.Lock()
	// Re-check under the write lock: another goroutine may have interned
	// the same node between the two lock acquisitions; the loser's
	// allocation is dropped so the canonical pointer stays unique.
	if e := s.find(op, ann, kids, h); e != nil {
		s.mu.Unlock()
		t.hits.Add(1)
		return e
	}
	if _, taken := s.first[h]; !taken {
		s.first[h] = n
	} else {
		s.rest[h] = append(s.rest[h], n)
	}
	s.mu.Unlock()
	t.nodes.Add(1)
	t.misses.Add(1)
	return n
}

// find scans the fingerprint's canonical nodes for (op, ann, kids); the
// caller holds the shard lock.
func (s *internShard) find(op Op, ann Annot, kids []*Expr, h uint64) *Expr {
	if e, ok := s.first[h]; ok {
		if sameNode(e, op, ann, kids) {
			return e
		}
		for _, e := range s.rest[h] {
			if sameNode(e, op, ann, kids) {
				return e
			}
		}
	}
	return nil
}

// lookupBinary returns the canonical node for op applied to the
// canonical children l and r under the fingerprint h, or nil if none is
// interned yet. Unlike intern it takes the children directly, so the
// constructor hot path allocates nothing at all on a hit.
func (t *internTable) lookupBinary(op Op, l, r *Expr, h uint64) *Expr {
	binaryHit := func(e *Expr) bool {
		return e.op == op && len(e.kids) == 2 && e.kids[0] == l && e.kids[1] == r
	}
	s := t.shard(h)
	s.mu.RLock()
	if e, ok := s.first[h]; ok {
		if binaryHit(e) {
			s.mu.RUnlock()
			t.hits.Add(1)
			return e
		}
		for _, e := range s.rest[h] {
			if binaryHit(e) {
				s.mu.RUnlock()
				t.hits.Add(1)
				return e
			}
		}
	}
	s.mu.RUnlock()
	return nil
}

// Interned reports whether e is a canonical node of the intern table
// (true for everything built through the constructors; false only for
// DeepCopy results and their enclosing raw trees).
func (e *Expr) Interned() bool { return e.interned }

// Intern returns the canonical representative of e: e itself if it is
// already canonical, otherwise the interned node of the identical
// structure, interning bottom-up. The cost is linear in the number of
// non-canonical nodes reachable from e.
func Intern(e *Expr) *Expr {
	if e == nil || e.interned {
		return e
	}
	switch e.op {
	case OpZero:
		return zeroExpr
	case OpVar:
		return Var(e.ann)
	}
	kids := make([]*Expr, len(e.kids))
	for i, k := range e.kids {
		kids[i] = Intern(k)
	}
	// Interning children preserves structure, hence the structural hash.
	return interns.intern(e.op, e.ann, kids, e.hash)
}

// InternTableStats is a snapshot of the global intern table counters.
type InternTableStats struct {
	// Nodes is the number of canonical nodes resident in the table —
	// the memory actually held by all interned provenance in the
	// process (the DAG measure), as opposed to the tree sizes reported
	// by Expr.Size.
	Nodes int64
	// Hits counts constructor calls answered with an existing canonical
	// node; Misses counts calls that inserted a new one.
	Hits, Misses int64
}

// InternStats returns the current intern table counters.
func InternStats() InternTableStats {
	return InternTableStats{
		Nodes:  interns.nodes.Load(),
		Hits:   interns.hits.Load(),
		Misses: interns.misses.Load(),
	}
}
