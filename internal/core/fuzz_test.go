package core_test

import (
	"strings"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/upstruct"
)

// FuzzParseExpr checks that the expression parser never panics and that
// everything it accepts round-trips through String, rewrites safely and
// evaluates without divergence between the rewritten forms.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"0",
		"p1 +M (p3 *M p)",
		"(p1 +M (p3 *M p)) - p",
		"(a + b + c) *M p",
		"((a - p) +M ((b0 + b1) *M p)) +I q",
		"x1 + x2",
		"((",
		"a +M",
		"0 - 0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := core.ParseExpr(src, kindOf)
		if err != nil {
			return
		}
		back, err := core.ParseExpr(e.String(), kindOf)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", e.String(), src, err)
		}
		if !back.Equal(e) {
			t.Fatalf("round trip changed %q -> %q", e, back)
		}
		// Rewrites must not panic and must preserve the Boolean all-true
		// and all-false semantics.
		n := core.Normalize(e)
		m := core.Minimize(e)
		z := core.SimplifyZero(e)
		for _, val := range []bool{true, false} {
			env := func(core.Annot) bool { return val }
			want := upstruct.Eval(e, upstruct.Bool, env)
			if upstruct.Eval(m, upstruct.Bool, env) != want {
				t.Fatalf("Minimize changed semantics of %q", src)
			}
			if upstruct.Eval(z, upstruct.Bool, env) != want {
				t.Fatalf("SimplifyZero changed semantics of %q", src)
			}
			_ = n // Normalize is only guaranteed on construction-shaped input
		}
		if e.Size() < 1 || e.Depth() < 1 {
			t.Fatal("degenerate size/depth")
		}
	})
}

func TestExplainString(t *testing.T) {
	e := mustParse(t, "0 +M (((p1 - p) + p2) *M q1)")
	out := core.ExplainString(e)
	for _, frag := range []string{
		"received a modification",
		"any of 2 merged sources",
		"deleted by",
		"transaction p",
		"input tuple p2",
		"absent tuple (0)",
		"updated by",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("explanation missing %q:\n%s", frag, out)
		}
	}
	ins := mustParse(t, "x1 +I q1")
	if !strings.Contains(core.ExplainString(ins), "inserted by") {
		t.Error("insertion explanation missing")
	}
}
