package core

import "strings"

// String renders the expression in the paper's notation, e.g.
// "(p1 +M (p3 *M p)) - p". Binary operators are written infix with
// parentheses around compound operands; sums are written infix with "+".
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, true)
	return b.String()
}

func (e *Expr) write(b *strings.Builder, top bool) {
	switch e.op {
	case OpZero:
		b.WriteByte('0')
	case OpVar:
		b.WriteString(e.ann.Name)
	case OpSum:
		if !top {
			b.WriteByte('(')
		}
		for i, k := range e.kids {
			if i > 0 {
				b.WriteString(" + ")
			}
			k.write(b, false)
		}
		if !top {
			b.WriteByte(')')
		}
	default:
		if !top {
			b.WriteByte('(')
		}
		e.kids[0].write(b, false)
		b.WriteByte(' ')
		b.WriteString(opSymbol(e.op))
		b.WriteByte(' ')
		e.kids[1].write(b, false)
		if !top {
			b.WriteByte(')')
		}
	}
}

func opSymbol(o Op) string {
	switch o {
	case OpPlusI:
		return "+I"
	case OpMinus:
		return "-"
	case OpPlusM:
		return "+M"
	case OpDotM:
		return "*M"
	case OpSum:
		return "+"
	default:
		return o.String()
	}
}
