package core

// This file implements the rewrite rules of Figure 6 of the paper as a
// recursive transformation of arbitrary UP[X] expressions produced by
// the provenance construction of Section 3.1. Normalize realizes the
// transformation of Theorem 5.3: every expression obtained by applying a
// sequence of hyperplane updates to an X-database is rewritten into an
// equivalent expression in which, for every transaction annotation p,
// the p-level of the expression has one of the five normal-form shapes.
//
// The incremental engine (package engine) never materializes large
// expressions and uses NF directly; Normalize exists to normalize
// expressions after the fact — in particular the output of the naive
// construction — and serves as an executable specification that the
// incremental transitions of NF are equivalent to exhaustive rule
// application.

// isQueryVar reports whether e is a variable expression carrying the
// annotation p.
func isQueryVar(e *Expr, p Annot) bool {
	return e.op == OpVar && e.ann == p
}

// stripSamePhase removes from the root of e every operator layer that
// belongs to the same transaction annotation p, returning the underlying
// base (Rules 1 and 2: insertions and deletions override the earlier
// updates of their own transaction; algebraically axioms 2, 4, 7, 9
// and 10).
func stripSamePhase(e *Expr, p Annot) *Expr {
	for {
		switch {
		case (e.op == OpPlusI || e.op == OpMinus) && isQueryVar(e.Right(), p):
			e = e.Left()
		case e.op == OpPlusM && e.Right().op == OpDotM && isQueryVar(e.Right().Right(), p):
			e = e.Left()
		default:
			return e
		}
	}
}

// modContribution computes what the (already normalized) expression c
// contributes as a source of a modification annotated p, mirroring
// NF.Contribution: a tuple deleted under p contributes nothing (Rules 3
// and 8), a tuple inserted under p makes the target's existence
// unconditional (Rule 4), and modification layers under p are flattened
// (Rules 6/7 and axiom 12).
func modContribution(c *Expr, p Annot) (contrib []*Expr, inserted bool) {
	switch {
	case c.IsZero():
		return nil, false
	case c.op == OpPlusI && isQueryVar(c.Right(), p):
		return nil, true
	case c.op == OpMinus && isQueryVar(c.Right(), p):
		return nil, false
	case c.op == OpPlusM && c.Right().op == OpDotM && isQueryVar(c.Right().Right(), p):
		inner := c.Right().Left()
		var sum []*Expr
		if inner.op == OpSum {
			sum = inner.kids
		} else {
			sum = []*Expr{inner}
		}
		left := c.Left()
		if left.op == OpMinus && isQueryVar(left.Right(), p) {
			// (a − p) +M (Σ ·M p): axiom 12 — only the summands pass through.
			return sum, false
		}
		out := make([]*Expr, 0, len(sum)+1)
		cl, ins := modContribution(left, p)
		if ins {
			return nil, true
		}
		out = append(out, cl...)
		out = append(out, sum...)
		return out, false
	default:
		return []*Expr{c}, false
	}
}

// Normalize rewrites e into the normal form of Theorem 5.3 by exhaustive
// application of the rules of Figure 6, processing the expression
// bottom-up. Expressions not produced by the provenance construction are
// still rewritten soundly: layers whose right operand is not a query
// annotation variable are treated as opaque.
//
// The input is canonicalized first and the result — itself canonical —
// is memoized on the interned node, so normalizing annotations that
// share history is linear in the number of distinct subterms, not in
// the (possibly exponential) tree size.
func Normalize(e *Expr) *Expr {
	return normalizeInterned(Intern(e))
}

func normalizeInterned(e *Expr) *Expr {
	if n := e.normalized.Load(); n != nil {
		return n
	}
	n := normalizeStep(e)
	// Normalize is idempotent (TestNormalizeIdempotent): the result is
	// its own normal form.
	n.normalized.Store(n)
	e.normalized.Store(n)
	return n
}

func normalizeStep(e *Expr) *Expr {
	switch e.op {
	case OpZero, OpVar:
		return e
	case OpSum:
		kids := make([]*Expr, len(e.kids))
		for i, k := range e.kids {
			kids[i] = normalizeInterned(k)
		}
		return Sum(kids...)
	case OpPlusI, OpMinus:
		l := normalizeInterned(e.kids[0])
		r := normalizeInterned(e.kids[1])
		if r.op == OpVar {
			l = stripSamePhase(l, r.ann) // Rules 1 and 2
		}
		return binary(e.op, l, r)
	case OpDotM:
		return binary(OpDotM, normalizeInterned(e.kids[0]), normalizeInterned(e.kids[1]))
	case OpPlusM:
		l := normalizeInterned(e.kids[0])
		r := normalizeInterned(e.kids[1])
		if r.op != OpDotM || r.Right().op != OpVar {
			return binary(OpPlusM, l, r)
		}
		p := r.Right().ann
		inner := r.Left()
		var raw []*Expr
		if inner.op == OpSum {
			raw = inner.kids
		} else {
			raw = []*Expr{inner}
		}
		var contrib []*Expr
		inserted := false
		for _, c := range raw {
			cc, ins := modContribution(c, p)
			if ins {
				inserted = true
				break
			}
			contrib = append(contrib, cc...)
		}
		contrib = dedupExprs(contrib)
		if inserted {
			// Rule 4 (with Rule 1): the target is simply inserted.
			return PlusI(stripSamePhase(l, p), Var(p))
		}
		if len(contrib) == 0 {
			return l // Rule 3.
		}
		switch {
		case l.op == OpPlusI && isQueryVar(l.Right(), p):
			return l // Rule 5.
		case l.op == OpPlusM && l.Right().op == OpDotM && isQueryVar(l.Right().Right(), p):
			// Rules 6/7: merge into the existing modification layer.
			prev := l.Right().Left()
			var prevSum []*Expr
			if prev.op == OpSum {
				prevSum = prev.kids
			} else {
				prevSum = []*Expr{prev}
			}
			merged := dedupExprs(append(append([]*Expr{}, prevSum...), contrib...))
			return PlusM(l.Left(), DotM(Sum(merged...), Var(p)))
		default:
			return PlusM(l, DotM(Sum(contrib...), Var(p)))
		}
	default:
		return e
	}
}
