package core

import "fmt"

// AnnotKind distinguishes the two sources of basic annotations in the
// paper's model: annotations drawn from X, attached to database tuples,
// and annotations drawn from P, attached to update queries (one per
// transaction).
type AnnotKind uint8

const (
	// KindTuple marks an annotation from X attached to a database tuple.
	KindTuple AnnotKind = iota
	// KindQuery marks an annotation from P attached to an update query or
	// transaction.
	KindQuery
)

// String returns "tuple" or "query".
func (k AnnotKind) String() string {
	switch k {
	case KindTuple:
		return "tuple"
	case KindQuery:
		return "query"
	default:
		return fmt.Sprintf("AnnotKind(%d)", uint8(k))
	}
}

// Annot is a basic provenance annotation: an opaque identifier together
// with its kind. Annotations are value types and compare with ==.
type Annot struct {
	Name string
	Kind AnnotKind
}

// TupleAnnot returns a tuple annotation (an element of X) with the given
// name.
func TupleAnnot(name string) Annot { return Annot{Name: name, Kind: KindTuple} }

// QueryAnnot returns a query/transaction annotation (an element of P)
// with the given name.
func QueryAnnot(name string) Annot { return Annot{Name: name, Kind: KindQuery} }

// String returns the annotation name.
func (a Annot) String() string { return a.Name }

// AnnotSeq hands out fresh, uniquely named annotations. It is used by
// the provenance engines to annotate initial database tuples and by
// tests and generators. The zero value is ready to use.
type AnnotSeq struct {
	prefix string
	kind   AnnotKind
	n      int
}

// NewAnnotSeq returns a sequence producing annotations prefix0, prefix1, …
// of the given kind.
func NewAnnotSeq(prefix string, kind AnnotKind) *AnnotSeq {
	return &AnnotSeq{prefix: prefix, kind: kind}
}

// Next returns the next fresh annotation in the sequence.
func (s *AnnotSeq) Next() Annot {
	a := Annot{Name: fmt.Sprintf("%s%d", s.prefix, s.n), Kind: s.kind}
	s.n++
	return a
}

// Count reports how many annotations have been handed out.
func (s *AnnotSeq) Count() int { return s.n }
