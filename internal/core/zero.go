package core

// SimplifyZero applies the zero-related axioms of Section 3.1 of the
// paper, bottom-up, until none applies:
//
//	0 − a        = 0
//	0 ·M a       = a ·M 0 = 0
//	0 +M a       = a
//	0 +I a       = a
//	a op 0       = a        for op ∈ {+I, +M, −}
//
// In addition, 0 summands are dropped from Σ (for every concrete
// Update-Structure in the paper, + has 0 as a neutral element; see the
// deletion-propagation, access-control and certification semantics of
// Section 4.1). The result is equivalent to e in UP[X].
func SimplifyZero(e *Expr) *Expr {
	switch e.op {
	case OpZero, OpVar:
		return e
	case OpSum:
		kids := make([]*Expr, 0, len(e.kids))
		changed := false
		for _, k := range e.kids {
			s := SimplifyZero(k)
			if s != k {
				changed = true
			}
			if s.IsZero() {
				changed = true
				continue
			}
			kids = append(kids, s)
		}
		if !changed {
			return e
		}
		return Sum(kids...)
	}
	l := SimplifyZero(e.kids[0])
	r := SimplifyZero(e.kids[1])
	switch e.op {
	case OpMinus:
		if l.IsZero() {
			return zeroExpr // 0 − a = 0
		}
		if r.IsZero() {
			return l // a − 0 = a
		}
	case OpDotM:
		if l.IsZero() || r.IsZero() {
			return zeroExpr // 0 ·M a = a ·M 0 = 0
		}
	case OpPlusI, OpPlusM:
		if l.IsZero() {
			return r // 0 op a = a
		}
		if r.IsZero() {
			return l // a op 0 = a
		}
	}
	if l == e.kids[0] && r == e.kids[1] {
		return e
	}
	return binary(e.op, l, r)
}
