package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/upstruct"
)

// simState simulates the provenance construction of Section 3.1 on a
// fixed set of abstract "tuple slots", maintaining for every slot both
// the raw expression built by the definitions (no simplification at all)
// and the incremental normal form. It is the executable core of the
// equivalence between Theorem 5.3's exhaustive rewriting and the
// incremental NF transitions.
type simState struct {
	raw []*core.Expr
	nf  []*core.NF
	p   core.Annot
}

func newSimState(n int) *simState {
	s := &simState{}
	for i := 0; i < n; i++ {
		var base *core.Expr
		if i%3 == 2 {
			base = core.Zero() // some slots start absent
		} else {
			base = tv(fmt.Sprintf("x%d", i))
		}
		s.raw = append(s.raw, base)
		s.nf = append(s.nf, core.NewNF(base))
	}
	return s
}

func (s *simState) begin(p core.Annot) { s.p = p }

func (s *simState) end() {
	for _, n := range s.nf {
		n.Freeze()
	}
}

// inSupport mirrors the engine's membership test: a tuple is in the
// relation iff its annotation is not syntactically 0. The raw and NF
// sides may disagree on phantom tuples (raw keeps ≡0 expressions); the
// simulation uses the raw side's support so that both sides process the
// same updates, which is the harder case for the NF transitions.
func (s *simState) inSupport(i int) bool { return !s.raw[i].IsZero() }

func (s *simState) insert(i int) {
	pe := core.Var(s.p)
	s.raw[i] = core.PlusI(s.raw[i], pe)
	s.nf[i].Insert(s.p)
}

func (s *simState) delete(i int) {
	if !s.inSupport(i) {
		return
	}
	pe := core.Var(s.p)
	s.raw[i] = core.Minus(s.raw[i], pe)
	s.nf[i].Delete(s.p)
}

// modify applies a modification whose sources are the supported slots in
// srcs and whose single target is dst (sources collapse into one tuple,
// exercising Σ). Sources and target follow Section 3.1: the target
// receives old(dst) +M ((Σ old(src)) ·M p) and every source becomes
// old(src) − p, all based on pre-query annotations.
func (s *simState) modify(srcs []int, dst int) {
	pe := core.Var(s.p)
	var live []int
	for _, i := range srcs {
		if s.inSupport(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return
	}
	oldRaw := make([]*core.Expr, len(live))
	var contrib []*core.Expr
	inserted := false
	selfSource := false
	for k, i := range live {
		oldRaw[k] = s.raw[i]
		if i == dst {
			selfSource = true
		}
		c, ins := s.nf[i].Contribution()
		contrib = append(contrib, c...)
		inserted = inserted || ins
	}
	dstOldRaw := s.raw[dst]
	// Sources are deleted first (their −M), then the target receives the
	// modification; a slot that is both source and target goes through
	// both transitions, matching the engine's treatment of self-maps.
	for _, i := range live {
		s.raw[i] = core.Minus(s.raw[i], pe)
		s.nf[i].Delete(s.p)
	}
	rawTarget := dstOldRaw
	if selfSource {
		rawTarget = core.Minus(dstOldRaw, pe)
	}
	s.raw[dst] = core.PlusM(rawTarget, core.DotM(core.Sum(oldRaw...), pe))
	s.nf[dst].AbsorbMod(contrib, inserted, s.p)
}

// run executes a random script of nTxn transactions with nOps updates
// each over nSlots slots.
func (s *simState) run(r *rand.Rand, nTxn, nOps int) {
	for txn := 0; txn < nTxn; txn++ {
		s.begin(core.QueryAnnot(fmt.Sprintf("q%d", txn)))
		for op := 0; op < nOps; op++ {
			switch r.Intn(3) {
			case 0:
				s.insert(r.Intn(len(s.raw)))
			case 1:
				s.delete(r.Intn(len(s.raw)))
			default:
				n := 1 + r.Intn(3)
				srcs := make([]int, n)
				for i := range srcs {
					srcs[i] = r.Intn(len(s.raw))
				}
				s.modify(srcs, r.Intn(len(s.raw)))
			}
		}
		s.end()
	}
}

// TestSimNaiveVsNormalFormEquivalence is the central property test of
// the core package: for random update scripts the incrementally
// maintained normal form is UP[X]-equivalent to the raw construction —
// checked by randomized evaluation in the Boolean and set structures —
// and canonical forms (Normalize + Minimize) of both sides coincide.
func TestSimNaiveVsNormalFormEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		s := newSimState(3 + r.Intn(4))
		s.run(r, 1+r.Intn(3), 1+r.Intn(8))
		for i := range s.raw {
			nfExpr := s.nf[i].ToExpr()
			if !evalEquiv(t, r, s.raw[i], nfExpr, 12) {
				t.Fatalf("trial %d slot %d: NF diverged\n raw = %v\n nf  = %v", trial, i, s.raw[i], nfExpr)
			}
			cRaw := canon(s.raw[i])
			cNF := canon(nfExpr)
			if !cRaw.Equal(cNF) {
				t.Fatalf("trial %d slot %d: canonical forms differ\n raw   = %v\n canon = %v\n nf    = %v\n canon = %v",
					trial, i, s.raw[i], cRaw, nfExpr, cNF)
			}
		}
	}
}

// TestSimNormalFormLinearSize checks the size claim of Theorem 5.3: the
// normal form stays linear in the number of distinct base annotations
// even when the raw construction grows much faster.
func TestSimNormalFormLinearSize(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	s := newSimState(4)
	s.begin(core.QueryAnnot("q0"))
	for op := 0; op < 60; op++ {
		n := 1 + r.Intn(3)
		srcs := make([]int, n)
		for i := range srcs {
			srcs[i] = r.Intn(4)
		}
		s.modify(srcs, r.Intn(4))
	}
	for i := range s.nf {
		if sz := s.nf[i].Size(); sz > 64 {
			t.Errorf("slot %d: NF size %d exceeds linear bound", i, sz)
		}
	}
}

// TestSimTrustStructureAgreement evaluates both sides under the
// certification semantics, comparing observable trustedness.
func TestSimTrustStructureAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	st := upstruct.TrustStructure{L: 0.5}
	for trial := 0; trial < 40; trial++ {
		s := newSimState(4)
		s.run(r, 2, 5)
		m := make(map[core.Annot]upstruct.Trust)
		env := func(a core.Annot) upstruct.Trust {
			v, ok := m[a]
			if !ok {
				v = upstruct.Score(r.Float64())
				m[a] = v
			}
			return v
		}
		for i := range s.raw {
			a := upstruct.Eval(s.raw[i], st, env)
			b := upstruct.Eval(s.nf[i].ToExpr(), st, env)
			if st.Trusted(a) != st.Trusted(b) {
				t.Fatalf("trial %d slot %d: trust divergence", trial, i)
			}
		}
	}
}
