package core

// White-box tests of the hash-consing layer: canonicalization through
// the constructors, collision handling inside the intern table, raw
// (DeepCopy) trees staying out of the table, and the memoized
// Minimize/Normalize results. The concurrency of the sharded table is
// additionally exercised under -race by TestInternConcurrent.

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternPointerEquality: structurally equal expressions constructed
// independently are the same canonical node (the acceptance criterion
// of the interning layer).
func TestInternPointerEquality(t *testing.T) {
	build := func() *Expr {
		return PlusM(
			Minus(TupleVar("ia"), QueryVar("ip")),
			DotM(Sum(TupleVar("ib"), TupleVar("ic")), QueryVar("ip")),
		)
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("independently constructed equal expressions are distinct nodes: %p vs %p", a, b)
	}
	if !a.Interned() {
		t.Fatal("constructor result not interned")
	}
	if a.Child(0) != Minus(TupleVar("ia"), QueryVar("ip")) {
		t.Fatal("subterm not canonical")
	}
	// Different structure must stay different.
	if build() == PlusM(Minus(TupleVar("ia"), QueryVar("ip")), DotM(Sum(TupleVar("ic"), TupleVar("ib")), QueryVar("ip"))) {
		t.Fatal("differently ordered sums interned to the same node")
	}
}

// TestInternForcedCollision: nodes with identical fingerprints but
// different structure must coexist in one bucket, each canonical for
// its own structure — the table compares structurally on collision
// instead of trusting the 64-bit hash.
func TestInternForcedCollision(t *testing.T) {
	tab := newInternTable()
	const h = uint64(0xdecafbadc0ffee)
	a1 := tab.intern(OpVar, TupleAnnot("collision-a"), nil, h)
	b1 := tab.intern(OpVar, TupleAnnot("collision-b"), nil, h)
	if a1 == b1 {
		t.Fatal("colliding nodes with different structure interned to one node")
	}
	if a2 := tab.intern(OpVar, TupleAnnot("collision-a"), nil, h); a2 != a1 {
		t.Fatal("re-interning after a collision lost the canonical node")
	}
	if b2 := tab.intern(OpVar, TupleAnnot("collision-b"), nil, h); b2 != b1 {
		t.Fatal("re-interning the colliding node lost its canonical node")
	}
	// A composite colliding with a leaf: same fingerprint, different
	// arity — must also stay distinct.
	c1 := tab.intern(OpPlusI, Annot{}, []*Expr{a1, b1}, h)
	if c1 == a1 || c1 == b1 {
		t.Fatal("composite collided into a leaf node")
	}
	if c2 := tab.intern(OpPlusI, Annot{}, []*Expr{a1, b1}, h); c2 != c1 {
		t.Fatal("re-interning the colliding composite lost its canonical node")
	}
	sh := tab.shard(h)
	rest := 0
	if b := sh.rest[h]; b != nil {
		b.each(func(*Expr) bool { rest++; return false })
	}
	if sh.first[h] == nil || rest != 2 {
		t.Fatalf("collision bucket holds first=%v rest=%d, want one first and two overflow nodes",
			sh.first[h], rest)
	}
	// Overflow past one chunk must link a new chunk, not drop nodes.
	for i := 0; i < 2*bucketChunkLen; i++ {
		tab.intern(OpVar, TupleAnnot(fmt.Sprintf("collision-%d", i)), nil, h)
	}
	for i := 0; i < 2*bucketChunkLen; i++ {
		a := TupleAnnot(fmt.Sprintf("collision-%d", i))
		n := tab.intern(OpVar, a, nil, h)
		if n.ann != a {
			t.Fatalf("chunked bucket lost node %d", i)
		}
	}
}

// TestInternRawTreesStayRaw: DeepCopy results and expressions built on
// top of them are not interned (the naive copy-on-write engine models
// the paper's tree memory), and Intern restores the canonical node.
func TestInternRawTreesStayRaw(t *testing.T) {
	e := PlusM(TupleVar("ra"), DotM(Sum(TupleVar("rb"), TupleVar("rc")), QueryVar("rp")))
	c := e.DeepCopy()
	if c.Interned() || c == e {
		t.Fatal("DeepCopy returned an interned node")
	}
	parent := PlusI(c, QueryVar("rp"))
	if parent.Interned() {
		t.Fatal("parent of a raw node must be raw")
	}
	if got := Intern(c); got != e {
		t.Fatalf("Intern(DeepCopy(e)) = %p, want the canonical %p", got, e)
	}
	if got := Intern(parent); got != PlusI(e, QueryVar("rp")) || !got.Interned() {
		t.Fatal("Intern did not canonicalize the raw parent")
	}
	if !e.Equal(c) || !c.Equal(e) {
		t.Fatal("raw/interned structural equality broken")
	}
}

// TestInternConcurrent hammers the sharded table from many goroutines
// building the same expressions; every goroutine must observe the same
// canonical pointers. Run with -race (CI does).
func TestInternConcurrent(t *testing.T) {
	const workers = 8
	results := make([][]*Expr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]*Expr, 0, 64)
			for i := 0; i < 64; i++ {
				v := TupleVar(fmt.Sprintf("cc%d", i))
				e := PlusM(Minus(v, QueryVar("cp")), DotM(v, QueryVar("cp")))
				out = append(out, Minimize(e))
			}
			results[w] = out
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d observed a different canonical node at %d", w, i)
			}
		}
	}
}

// TestMinimizeNormalizeMemoized: repeated canonicalization of the same
// node returns the identical pointer, and the memo survives across
// structurally equal reconstructions (they are the same node).
func TestMinimizeNormalizeMemoized(t *testing.T) {
	mk := func() *Expr {
		return PlusM(PlusI(Zero(), QueryVar("mp")), DotM(Sum(TupleVar("ma"), Zero()), QueryVar("mp")))
	}
	m1 := Minimize(mk())
	m2 := Minimize(mk())
	if m1 != m2 {
		t.Fatal("Minimize of the same canonical node returned different pointers")
	}
	if !m1.Interned() {
		t.Fatal("Minimize result not interned")
	}
	if Minimize(m1) != m1 {
		t.Fatal("Minimize not a pointer-stable fixed point")
	}
	n1 := Normalize(mk())
	if n1 != Normalize(mk()) || !n1.Interned() {
		t.Fatal("Normalize memoization broken")
	}
	if Normalize(n1) != n1 {
		t.Fatal("Normalize not a pointer-stable fixed point")
	}
	// Raw input canonicalizes to the same memoized result.
	if Minimize(mk().DeepCopy()) != m1 {
		t.Fatal("Minimize of a raw copy diverged from the canonical result")
	}
}

// TestInternStatsCounters: the table counters move in the right
// direction (exact values depend on test order, so only deltas are
// checked).
func TestInternStatsCounters(t *testing.T) {
	before := InternStats()
	v := TupleVar("stats-fresh-annotation")
	after := InternStats()
	if after.Nodes <= before.Nodes || after.Misses <= before.Misses {
		t.Fatalf("fresh node did not bump Nodes/Misses: %+v -> %+v", before, after)
	}
	_ = TupleVar("stats-fresh-annotation")
	again := InternStats()
	if again.Hits <= after.Hits {
		t.Fatalf("re-construction did not bump Hits: %+v -> %+v", after, again)
	}
	if again.Nodes != after.Nodes {
		t.Fatalf("re-construction changed Nodes: %+v -> %+v", after, again)
	}
	_ = v
}
