package core

import "fmt"

// NFKind enumerates the five shapes of Theorem 5.3. Within a transaction
// annotated p, the provenance of every tuple can be kept in one of these
// shapes, where the base a and the summands b0…bn are expressions fixed
// at transaction start:
//
//	NFBase      a
//	NFPlusI     a +I p
//	NFMinus     a − p
//	NFMod       a +M ((b0 + … + bn) ·M p)
//	NFMinusMod  (a − p) +M ((b0 + … + bn) ·M p)
type NFKind uint8

const (
	NFBase NFKind = iota
	NFPlusI
	NFMinus
	NFMod
	NFMinusMod
)

// String names the shape.
func (k NFKind) String() string {
	switch k {
	case NFBase:
		return "a"
	case NFPlusI:
		return "a +I p"
	case NFMinus:
		return "a - p"
	case NFMod:
		return "a +M (Σb *M p)"
	case NFMinusMod:
		return "(a - p) +M (Σb *M p)"
	default:
		return fmt.Sprintf("NFKind(%d)", uint8(k))
	}
}

// NF is a provenance expression maintained in the normal form of
// Theorem 5.3. It records the shape, the base expression a (the tuple's
// provenance at the start of the current transaction, possibly 0), the
// current transaction annotation p (meaningful for all shapes but
// NFBase), and the deduplicated summands b0…bn for the modification
// shapes.
//
// The per-update transitions implemented by Insert, Delete, Contribution
// and AbsorbMod are exactly the rewrite rules of Figure 6 of the paper
// (see the comments on each method); every transition keeps the
// expression linear in the number of distinct contributing base
// expressions, avoiding the exponential blowup of Proposition 5.1.
//
// NF values are mutable and not safe for concurrent mutation.
type NF struct {
	kind NFKind
	base *Expr
	p    Annot
	sum  []*Expr
	// seen deduplicates sum by canonical node identity: summands are
	// interned on entry, so structural dedup is a pointer-set lookup.
	seen map[*Expr]struct{}
}

// NewNF returns a normal form in shape NFBase over the given base
// expression (use Zero() for a tuple absent from the database).
func NewNF(base *Expr) *NF {
	return &NF{kind: NFBase, base: base}
}

// Kind reports the current shape.
func (n *NF) Kind() NFKind { return n.kind }

// Base returns the base expression a.
func (n *NF) Base() *Expr { return n.base }

// P returns the transaction annotation p of a non-NFBase shape.
func (n *NF) P() Annot { return n.p }

// Sum returns the summands b0…bn of a modification shape. The returned
// slice must not be modified.
func (n *NF) Sum() []*Expr { return n.sum }

// IsZero reports whether the normal form is (syntactically) the absent
// annotation 0, i.e. shape NFBase over the literal 0. Tuples whose
// normal form is zero are outside the support of the annotated relation.
func (n *NF) IsZero() bool { return n.kind == NFBase && n.base.IsZero() }

// Clone returns an independent copy of n. The base and summand
// expressions are shared (they are immutable).
func (n *NF) Clone() *NF {
	c := &NF{kind: n.kind, base: n.base, p: n.p}
	if n.sum != nil {
		c.sum = make([]*Expr, len(n.sum))
		copy(c.sum, n.sum)
		c.seen = make(map[*Expr]struct{}, len(n.seen))
		for e := range n.seen {
			c.seen[e] = struct{}{}
		}
	}
	return c
}

func (n *NF) checkP(p Annot) {
	if n.kind != NFBase && n.p != p {
		panic(fmt.Sprintf("core: normal form carries transaction annotation %s but was updated under %s; call Freeze at transaction boundaries", n.p, p))
	}
}

// Insert applies an insertion annotated p to the tuple: the provenance
// becomes old +I p, normalized by Rule 1 (an insertion overrides every
// earlier update of the same transaction; for the individual shapes this
// is axiom 10 for NFMinus, axiom 9 for NFMod/NFMinusMod and idempotence
// of +I for NFPlusI), so the shape becomes NFPlusI over the unchanged
// base.
func (n *NF) Insert(p Annot) {
	n.checkP(p)
	n.kind = NFPlusI
	n.p = p
	n.clearSum()
}

// Delete applies a deletion (or the −M half of a modification) annotated
// p: the provenance becomes old − p, normalized by Rule 2 (axiom 2 drops
// a pending modification, axiom 4 collapses repeated deletion, axiom 7
// cancels an insertion of the same transaction), so the shape becomes
// NFMinus over the unchanged base.
func (n *NF) Delete(p Annot) {
	n.checkP(p)
	n.kind = NFMinus
	n.p = p
	n.clearSum()
}

// Contribution reports what this tuple contributes when it is a source
// of a modification query of the same transaction:
//
//   - NFBase      → its base expression (0 contributes nothing);
//   - NFPlusI     → inserted = true: by Rule 4 a modification fed by a
//     tuple inserted in this transaction is equivalent to inserting the
//     target tuple, regardless of other sources;
//   - NFMinus     → nothing (Rules 3 and 8: a tuple already deleted in
//     this transaction has no effect; algebraically axiom 5);
//   - NFMod       → its base plus its summands, flattened (Rules 6/7,
//     axiom 3: successive modifications factorize into one);
//   - NFMinusMod  → its summands only (axiom 12: the deleted base is
//     dropped, the re-received modifications pass through).
func (n *NF) Contribution() (contrib []*Expr, inserted bool) {
	switch n.kind {
	case NFBase:
		if n.base.IsZero() {
			return nil, false
		}
		return []*Expr{n.base}, false
	case NFPlusI:
		return nil, true
	case NFMinus:
		return nil, false
	case NFMod:
		if n.base.IsZero() {
			return n.sum, false
		}
		out := make([]*Expr, 0, len(n.sum)+1)
		out = append(out, n.base)
		out = append(out, n.sum...)
		return out, false
	case NFMinusMod:
		return n.sum, false
	default:
		panic("core: invalid NF kind")
	}
}

// AbsorbMod applies the target half of a modification annotated p: the
// provenance becomes old +M ((Σ contrib) ·M p), where contrib is the
// concatenation of the Contribution of every source tuple and inserted
// reports whether any source was freshly inserted in this transaction.
// The normalizing transitions are:
//
//   - any source inserted → shape NFPlusI over the unchanged base
//     (Rule 4; combined with axiom 10 for NFMinus and axiom 9 for the
//     modification shapes);
//   - no contribution and no insertion → unchanged (Rule 3);
//   - NFBase   → NFMod with the contributed summands;
//   - NFPlusI  → unchanged (Rule 5: the tuple's existence is already
//     guaranteed by the insertion of this transaction);
//   - NFMinus  → NFMinusMod (the fifth shape of Theorem 5.3);
//   - NFMod / NFMinusMod → summands merged (Rules 6/7, axioms 1 and 3).
//
// Duplicate summands are dropped (Σ ranges over a set of expressions).
func (n *NF) AbsorbMod(contrib []*Expr, inserted bool, p Annot) {
	n.checkP(p)
	if inserted {
		switch n.kind {
		case NFPlusI:
			// (a +I p) +M e = a +I p — already normalized (Rule 5).
		default:
			n.kind = NFPlusI
			n.clearSum()
		}
		n.p = p
		return
	}
	nonZero := contrib
	for i, c := range contrib {
		if c.IsZero() {
			nonZero = make([]*Expr, 0, len(contrib)-1)
			nonZero = append(nonZero, contrib[:i]...)
			for _, c2 := range contrib[i+1:] {
				if !c2.IsZero() {
					nonZero = append(nonZero, c2)
				}
			}
			break
		}
	}
	if len(nonZero) == 0 {
		return // Rule 3: an update based only on deleted tuples has no effect.
	}
	switch n.kind {
	case NFBase:
		n.kind = NFMod
	case NFPlusI:
		return // Rule 5.
	case NFMinus:
		n.kind = NFMinusMod
	case NFMod, NFMinusMod:
		// merge below
	}
	n.p = p
	for _, c := range nonZero {
		n.addSummand(c)
	}
}

func (n *NF) addSummand(c *Expr) {
	if c.IsZero() {
		return
	}
	if c.op == OpSum {
		// Σ is flat: a summand that is itself a sum contributes its
		// elements (axiom 11).
		for _, k := range c.kids {
			n.addSummand(k)
		}
		return
	}
	// Engine-produced summands are already canonical, making this a
	// no-op; raw expressions handed in by external callers are interned
	// so the pointer-set dedup below stays exact.
	c = Intern(c)
	if n.seen == nil {
		n.seen = make(map[*Expr]struct{})
	}
	if _, dup := n.seen[c]; dup {
		return
	}
	n.seen[c] = struct{}{}
	n.sum = append(n.sum, c)
}

func (n *NF) clearSum() {
	n.sum = nil
	n.seen = nil
}

// ToExpr materializes the normal form as an UP[X] expression, one of the
// five shapes of Theorem 5.3. Summands keep their insertion order; use
// Minimize for the canonical zero-minimized representation.
func (n *NF) ToExpr() *Expr {
	switch n.kind {
	case NFBase:
		return n.base
	case NFPlusI:
		return PlusI(n.base, Var(n.p))
	case NFMinus:
		return Minus(n.base, Var(n.p))
	case NFMod:
		return PlusM(n.base, DotM(Sum(n.sum...), Var(n.p)))
	case NFMinusMod:
		return PlusM(Minus(n.base, Var(n.p)), DotM(Sum(n.sum...), Var(n.p)))
	default:
		panic("core: invalid NF kind")
	}
}

// Size returns the tree size of ToExpr() without materializing it.
func (n *NF) Size() int64 {
	switch n.kind {
	case NFBase:
		return n.base.Size()
	case NFPlusI, NFMinus:
		return n.base.Size() + 2
	case NFMod, NFMinusMod:
		s := int64(0)
		for _, b := range n.sum {
			s += b.Size()
		}
		if len(n.sum) > 1 {
			s++ // the Σ node
		}
		s += 3 + n.base.Size() // +M, ·M, p
		if n.kind == NFMinusMod {
			s += 2 // −, p
		}
		return s
	default:
		panic("core: invalid NF kind")
	}
}

// Freeze ends the current transaction for this tuple: the materialized
// expression becomes the new base and the shape returns to NFBase, so
// that a following transaction (with a different annotation) can be
// tracked incrementally on top of it.
func (n *NF) Freeze() {
	if n.kind == NFBase {
		return
	}
	n.base = n.ToExpr()
	n.kind = NFBase
	n.p = Annot{}
	n.clearSum()
}
