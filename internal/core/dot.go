package core

import (
	"fmt"
	"io"
)

// WriteDOT writes the expression as a Graphviz digraph in the tree
// rendering the paper uses in Section 5 (Figure 5): internal nodes are
// labeled with their operator, leaves with their annotation name or 0.
// Shared sub-expressions are expanded, so the drawn graph is a tree of
// Size() nodes.
func WriteDOT(w io.Writer, name string, e *Expr) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  node [shape=plaintext];\n", name); err != nil {
		return err
	}
	n := 0
	var walk func(x *Expr) (int, error)
	walk = func(x *Expr) (int, error) {
		id := n
		n++
		label := ""
		switch x.op {
		case OpZero:
			label = "0"
		case OpVar:
			label = x.ann.Name
		default:
			label = opSymbol(x.op)
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q];\n", id, label); err != nil {
			return 0, err
		}
		for _, k := range x.kids {
			kid, err := walk(k)
			if err != nil {
				return 0, err
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", id, kid); err != nil {
				return 0, err
			}
		}
		return id, nil
	}
	if _, err := walk(e); err != nil {
		return err
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
