package core

// This file states the twelve equivalence axioms of the paper's
// Figure 3 as first-class expression pairs, with metavariables
// represented as tuple-annotation variables (a, b, c, d, bᵢ) and the
// query annotation as a query variable. They serve as executable
// documentation and as the ground truth for the law checker in package
// upstruct: every Update-Structure must satisfy each axiom under every
// valuation, and the rewrite rules of Figure 6 must be derivable from
// them (both properties are verified by tests).

// Axiom is one equivalence axiom: LHS ≡ RHS for all valuations of the
// metavariables occurring in the two expressions.
type Axiom struct {
	// Name identifies the axiom by its Figure 3 number.
	Name string
	// Comment summarizes what the axiom captures.
	Comment  string
	LHS, RHS *Expr
}

// Axioms returns the Figure 3 axiom schemas. Axioms 3, 5 and 11, which
// quantify over sets of expressions, are instantiated at representative
// small sizes (the law checker additionally probes other partitions).
func Axioms() []Axiom {
	a, b, c, d := TupleVar("a"), TupleVar("b"), TupleVar("c"), TupleVar("d")
	b0, b1 := TupleVar("b0"), TupleVar("b1")
	p := QueryVar("p")
	mod := func(base, summand, q *Expr) *Expr { return PlusM(base, DotM(summand, q)) }
	return []Axiom{
		{
			Name:    "axiom 1",
			Comment: "modification layers over the same query commute",
			LHS:     mod(mod(a, b, p), d, p),
			RHS:     mod(mod(a, d, p), b, p),
		},
		{
			Name:    "axiom 2",
			Comment: "a deletion overrides a pending modification",
			LHS:     Minus(mod(a, b, p), p),
			RHS:     Minus(a, p),
		},
		{
			Name:    "axiom 3",
			Comment: "successive modifications factorize over a partition (I = {c,d}, S1 = {c}, S2 = {d})",
			LHS:     mod(mod(a, Sum(c, d), p), Sum(b0, b1), p),
			RHS:     mod(a, Sum(mod(b0, c, p), mod(b1, d, p)), p),
		},
		{
			Name:    "axiom 4",
			Comment: "deletion is idempotent",
			LHS:     Minus(Minus(a, b), b),
			RHS:     Minus(a, b),
		},
		{
			Name:    "axiom 5",
			Comment: "a modification fed only by tuples the query deleted has no effect (two summands)",
			LHS:     mod(a, Sum(Minus(b0, p), Minus(b1, p)), p),
			RHS:     a,
		},
		{
			Name:    "axiom 6",
			Comment: "insertion distributes over a pending modification",
			LHS:     PlusI(mod(a, b, p), p),
			RHS:     mod(PlusI(a, p), b, p),
		},
		{
			Name:    "axiom 7",
			Comment: "a deletion overrides an insertion by the same query",
			LHS:     Minus(PlusI(a, b), b),
			RHS:     Minus(a, b),
		},
		{
			Name:    "axiom 8",
			Comment: "a modification fed by an inserted tuple equals inserting the target",
			LHS:     mod(a, PlusI(b, p), p),
			RHS:     mod(PlusI(a, p), b, p),
		},
		{
			Name:    "axiom 9",
			Comment: "an insertion overrides a pending modification",
			LHS:     PlusI(mod(a, b, p), p),
			RHS:     PlusI(a, p),
		},
		{
			Name:    "axiom 10",
			Comment: "an insertion overrides a deletion by the same query",
			LHS:     PlusI(Minus(a, b), b),
			RHS:     PlusI(a, b),
		},
		{
			Name:    "axiom 11",
			Comment: "a modification's summands may be split across layers",
			LHS:     mod(a, Sum(b0, b1), p),
			RHS:     mod(mod(a, b0, p), b1, p),
		},
		{
			Name:    "axiom 12",
			Comment: "a deleted tuple's re-received modifications pass through its deleted base",
			LHS:     mod(Minus(a, b), c, b),
			RHS:     mod(Minus(a, b), mod(Minus(d, b), c, b), b),
		},
	}
}

// Metavariables returns the distinct annotations occurring in the axiom
// (the variables a valuation must assign).
func (ax Axiom) Metavariables() []Annot {
	set := ax.LHS.Annots(nil)
	ax.RHS.Annots(set)
	out := make([]Annot, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	return out
}
