package core_test

// Property-based battery for the Figure 3 axiom schemas and the zero
// axioms of Section 3.1. The existing axiom tests check the schemas as
// stated, under random valuations of their metavariables; this battery
// checks random *substitution instances*: each unguarded metavariable
// is replaced by a random construction-shaped expression, and the two
// sides must then
//
//  (1) canonicalize — Minimize ∘ Normalize — to the SAME interned
//      node (pointer equality, the hash-consing acceptance criterion),
//      and
//  (2) evaluate identically under every shipped Update-Structure
//      (deletion propagation, access control, certification, and the
//      two Theorem 4.5 semiring bridges) for random environments.
//
// Metavariables that occur as the right operand of +I, − or ·M are
// "guarded": the Figure 6 rewrite rules dispatch on that operand being
// a variable, so instantiating them with compound expressions leaves
// the construction-shaped fragment for which Theorem 5.3 guarantees a
// normal form. Those stay variables; everything else is substituted.

import (
	"math/rand"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/upstruct"
)

// guardedAnnots returns the annotations appearing as the (variable)
// right operand of a +I, − or ·M node anywhere in e.
func guardedAnnots(e *core.Expr, into map[core.Annot]struct{}) map[core.Annot]struct{} {
	if into == nil {
		into = make(map[core.Annot]struct{})
	}
	var walk func(x *core.Expr)
	walk = func(x *core.Expr) {
		switch x.Op() {
		case core.OpPlusI, core.OpMinus, core.OpDotM:
			if r := x.Right(); r.Op() == core.OpVar {
				into[r.Annot()] = struct{}{}
			}
		}
		for _, k := range x.Children() {
			walk(k)
		}
	}
	walk(e)
	return into
}

// genExpr returns a random construction-shaped expression over the
// pool annotations x1..x4 (tuples) and q1, q2 (transactions) — the pool
// is disjoint from every axiom metavariable, and in particular p-free,
// so substituting these below a p-guarded layer cannot capture p.
func genExpr(r *rand.Rand, depth int) *core.Expr {
	pool := []string{"x1", "x2", "x3", "x4"}
	leaf := func() *core.Expr { return core.TupleVar(pool[r.Intn(len(pool))]) }
	q := func() *core.Expr {
		if r.Intn(2) == 0 {
			return core.QueryVar("q1")
		}
		return core.QueryVar("q2")
	}
	if depth <= 0 {
		if r.Intn(8) == 0 {
			return core.Zero()
		}
		return leaf()
	}
	switch r.Intn(6) {
	case 0:
		return leaf()
	case 1:
		return core.PlusI(genExpr(r, depth-1), q())
	case 2:
		return core.Minus(genExpr(r, depth-1), q())
	case 3:
		return core.PlusM(genExpr(r, depth-1), core.DotM(genExpr(r, depth-1), q()))
	case 4:
		return core.Sum(genExpr(r, depth-1), genExpr(r, depth-1))
	default:
		if r.Intn(4) == 0 {
			return core.Zero()
		}
		return leaf()
	}
}

// checkStructures evaluates lhs and rhs under every shipped
// Update-Structure with nTrial random environments and reports the
// first disagreement.
func checkStructures(t *testing.T, r *rand.Rand, name string, lhs, rhs *core.Expr, nTrial int) {
	t.Helper()
	annots := lhs.Annots(nil)
	rhs.Annots(annots)
	universe := upstruct.NewSet("u", "v", "w")
	items := universe.Elems()
	trust := upstruct.TrustStructure{L: 0.5}
	boolBridge := upstruct.FromSemiring[bool](upstruct.BoolSemiring{}, func(a, b bool) bool { return a && !b })
	setBridge := upstruct.FromSemiring[upstruct.Set](upstruct.SetSemiring{Universe: universe}, upstruct.Set.Diff)

	for trial := 0; trial < nTrial; trial++ {
		boolVals := make(map[core.Annot]bool, len(annots))
		setVals := make(map[core.Annot]upstruct.Set, len(annots))
		trustVals := make(map[core.Annot]upstruct.Trust, len(annots))
		for a := range annots {
			boolVals[a] = r.Intn(2) == 0
			var elems []string
			for _, it := range items {
				if r.Intn(2) == 0 {
					elems = append(elems, it)
				}
			}
			setVals[a] = upstruct.NewSet(elems...)
			trustVals[a] = upstruct.Trust{V: r.Float64(), R: upstruct.TrustFlag(r.Intn(3))}
		}
		boolEnv := upstruct.MapEnv(boolVals, false)
		setEnv := upstruct.MapEnv(setVals, upstruct.Set{})
		trustEnv := upstruct.MapEnv(trustVals, upstruct.Score(0))

		if l, rr := upstruct.Eval(lhs, upstruct.Bool, boolEnv), upstruct.Eval(rhs, upstruct.Bool, boolEnv); l != rr {
			t.Fatalf("%s: Bool disagreement (%v vs %v) under %v\nlhs: %s\nrhs: %s", name, l, rr, boolVals, lhs, rhs)
		}
		if l, rr := upstruct.Eval(lhs, upstruct.Sets, setEnv), upstruct.Eval(rhs, upstruct.Sets, setEnv); !l.Equal(rr) {
			t.Fatalf("%s: Sets disagreement (%v vs %v)\nlhs: %s\nrhs: %s", name, l, rr, lhs, rhs)
		}
		// Trust values are compared observationally: what the structure
		// decides is trusted(x), not the raw score.
		if l, rr := upstruct.Eval[upstruct.Trust](lhs, trust, trustEnv), upstruct.Eval[upstruct.Trust](rhs, trust, trustEnv); trust.Trusted(l) != trust.Trusted(rr) {
			t.Fatalf("%s: Trust disagreement (%v vs %v)\nlhs: %s\nrhs: %s", name, l, rr, lhs, rhs)
		}
		if l, rr := upstruct.Eval(lhs, boolBridge, boolEnv), upstruct.Eval(rhs, boolBridge, boolEnv); l != rr {
			t.Fatalf("%s: bool semiring bridge disagreement (%v vs %v)\nlhs: %s\nrhs: %s", name, l, rr, lhs, rhs)
		}
		if l, rr := upstruct.Eval(lhs, setBridge, setEnv), upstruct.Eval(rhs, setBridge, setEnv); !l.Equal(rr) {
			t.Fatalf("%s: set semiring bridge disagreement (%v vs %v)\nlhs: %s\nrhs: %s", name, l, rr, lhs, rhs)
		}
	}
}

// TestAxiomSubstitutionInstances: for every Figure 3 axiom, random
// substitution instances canonicalize to the identical interned node
// and agree under every shipped Update-Structure.
func TestAxiomSubstitutionInstances(t *testing.T) {
	const instances = 40
	for axIdx, ax := range core.Axioms() {
		ax := ax
		t.Run(ax.Name, func(t *testing.T) {
			r := rand.New(rand.NewSource(0x5eed + int64(axIdx)))
			guarded := guardedAnnots(ax.LHS, nil)
			guardedAnnots(ax.RHS, guarded)
			for i := 0; i < instances; i++ {
				sub := make(map[core.Annot]*core.Expr)
				for _, m := range ax.Metavariables() {
					if _, g := guarded[m]; g {
						continue
					}
					sub[m] = genExpr(r, 1+r.Intn(2))
				}
				lhs := core.Subst(ax.LHS, sub)
				rhs := core.Subst(ax.RHS, sub)

				cl, cr := canon(lhs), canon(rhs)
				if cl != cr {
					t.Fatalf("instance %d: canonical forms differ\nlhs: %s\ncanon: %s\nrhs: %s\ncanon: %s",
						i, lhs, cl, rhs, cr)
				}
				if !cl.Interned() {
					t.Fatalf("instance %d: canonical form not interned", i)
				}
				checkStructures(t, r, ax.Name, lhs, rhs, 6)
			}
		})
	}
}

// TestZeroAxiomInstances: the zero axioms of Section 3.1, instantiated
// with random expressions, minimize to the identical node and agree
// under every structure.
func TestZeroAxiomInstances(t *testing.T) {
	zero := core.Zero()
	q := core.QueryVar("qz")
	cases := []struct {
		name string
		mk   func(a *core.Expr) (lhs, rhs *core.Expr)
	}{
		{"0-a=0", func(a *core.Expr) (*core.Expr, *core.Expr) { return core.Minus(zero, a), zero }},
		{"a-0=a", func(a *core.Expr) (*core.Expr, *core.Expr) { return core.Minus(a, zero), a }},
		{"0*Ma=0", func(a *core.Expr) (*core.Expr, *core.Expr) { return core.DotM(zero, a), zero }},
		{"a*M0=0", func(a *core.Expr) (*core.Expr, *core.Expr) { return core.DotM(a, zero), zero }},
		{"0+Ma=a", func(a *core.Expr) (*core.Expr, *core.Expr) { return core.PlusM(zero, a), a }},
		{"a+M0=a", func(a *core.Expr) (*core.Expr, *core.Expr) { return core.PlusM(a, zero), a }},
		{"0+Ia=a", func(a *core.Expr) (*core.Expr, *core.Expr) { return core.PlusI(zero, a), a }},
		{"a+I0=a", func(a *core.Expr) (*core.Expr, *core.Expr) { return core.PlusI(a, zero), a }},
		{"0 dropped from sums", func(a *core.Expr) (*core.Expr, *core.Expr) {
			return core.PlusM(a, core.DotM(core.Sum(a, zero, core.TupleVar("x1")), q)),
				core.PlusM(a, core.DotM(core.Sum(a, core.TupleVar("x1")), q))
		}},
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(0x0ddba11 + int64(ci)))
			for i := 0; i < 40; i++ {
				a := genExpr(r, 1+r.Intn(3))
				lhs, rhs := tc.mk(a)
				ml, mr := core.Minimize(lhs), core.Minimize(rhs)
				if ml != mr {
					t.Fatalf("instance %d: Minimize differs\nlhs: %s -> %s\nrhs: %s -> %s", i, lhs, ml, rhs, mr)
				}
				if !ml.Interned() {
					t.Fatalf("instance %d: minimized form not interned", i)
				}
				checkStructures(t, r, tc.name, lhs, rhs, 4)
			}
		})
	}
}

// TestAxiomSchemasCanonicalizeAsStated: the un-substituted schemas
// themselves (whose metavariables are all construction-shaped
// variables) already canonicalize to one node per axiom — the
// Proposition 5.5 uniqueness claim at the schema level.
func TestAxiomSchemasCanonicalizeAsStated(t *testing.T) {
	for _, ax := range core.Axioms() {
		if cl, cr := canon(ax.LHS), canon(ax.RHS); cl != cr {
			t.Errorf("%s: canon(LHS)=%s, canon(RHS)=%s — not the same node", ax.Name, cl, cr)
		}
	}
}
