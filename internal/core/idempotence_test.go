package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperprov/internal/core"
)

// randConstructionExpr builds expressions shaped like the provenance
// construction's output (right operands of +I/−/·M are query variables),
// the domain on which Normalize is specified.
func randConstructionExpr(r *rand.Rand, depth int) *core.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(5) == 0 {
			return core.Zero()
		}
		return tv([]string{"x1", "x2", "x3"}[r.Intn(3)])
	}
	p := qv([]string{"p", "q1", "q2"}[r.Intn(3)])
	a := randConstructionExpr(r, depth-1)
	switch r.Intn(4) {
	case 0:
		return core.PlusI(a, p)
	case 1:
		return core.Minus(a, p)
	case 2:
		return core.PlusM(a, core.DotM(core.Sum(randConstructionExpr(r, depth-1)), p))
	default:
		return core.PlusM(a, core.DotM(core.Sum(
			randConstructionExpr(r, depth-1), randConstructionExpr(r, depth-1)), p))
	}
}

// TestNormalizeIdempotent: applying the Figure 6 rules to an already
// normalized expression changes nothing — the rules define a normal
// form, not just a reduction.
func TestNormalizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	f := func() bool {
		e := randConstructionExpr(r, 5)
		once := core.Normalize(e)
		twice := core.Normalize(once)
		if !once.Equal(twice) {
			t.Logf("not idempotent:\n  e      = %v\n  once   = %v\n  twice  = %v", e, once, twice)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestMinimizeIdempotent: the Proposition 5.5 canonical form is a fixed
// point of itself.
func TestMinimizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	f := func() bool {
		e := randExpr(r, 5)
		once := core.Minimize(e)
		return once.Equal(core.Minimize(once))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSimplifyZeroIdempotent: so is the plain zero-axiom rewriting.
func TestSimplifyZeroIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	f := func() bool {
		e := randExpr(r, 5)
		once := core.SimplifyZero(e)
		return once == core.SimplifyZero(once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalFormDecidesEquivalenceOnConstructionShapes: for
// construction-shaped expressions over a single transaction annotation,
// equal canonical forms coincide with randomized-evaluation
// equivalence in both directions on a sample (completeness spot check
// of the Theorem 5.3 / Proposition 5.5 pipeline).
func TestCanonicalFormDecidesEquivalenceOnConstructionShapes(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	agree, differ := 0, 0
	for trial := 0; trial < 400; trial++ {
		e1 := randConstructionExpr(r, 4)
		e2 := randConstructionExpr(r, 4)
		c1 := core.Minimize(core.Normalize(e1))
		c2 := core.Minimize(core.Normalize(e2))
		equalCanon := c1.Equal(c2)
		equalEval := evalEquiv(t, r, e1, e2, 16)
		if equalCanon && !equalEval {
			t.Fatalf("canonical forms equal but evaluations differ:\n  e1 = %v\n  e2 = %v", e1, e2)
		}
		if equalCanon {
			agree++
		} else {
			differ++
		}
	}
	if differ == 0 {
		t.Error("sample degenerate: every pair canonically equal")
	}
}
