package core

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Op enumerates the node kinds of UP[X] expressions.
type Op uint8

const (
	// OpZero is the distinguished 0 element (annotation of absent tuples).
	OpZero Op = iota
	// OpVar is a basic annotation from X ∪ P.
	OpVar
	// OpPlusI is the binary insertion operator a +I b.
	OpPlusI
	// OpMinus is the binary deletion operator a − b (the paper's −D and
	// −M, unified by axiom derivation in Example 3.3).
	OpMinus
	// OpPlusM is the binary modification-receive operator a +M b.
	OpPlusM
	// OpDotM is the binary modification operator a ·M b.
	OpDotM
	// OpSum is the n-ary disjunction Σ / + over the annotations of the
	// tuples collapsed into a single modification target.
	OpSum
)

// String returns the operator's symbol as used by the paper.
func (o Op) String() string {
	switch o {
	case OpZero:
		return "0"
	case OpVar:
		return "var"
	case OpPlusI:
		return "+I"
	case OpMinus:
		return "-"
	case OpPlusM:
		return "+M"
	case OpDotM:
		return "*M"
	case OpSum:
		return "+"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Expr is an immutable UP[X] provenance expression. Expressions built
// through the constructors are hash-consed: structurally equal
// expressions are the same canonical node of a global intern table (see
// intern.go), so they compare pointer-equal and shared history is
// stored once, as a DAG. The cached Size is always the size of the
// expression *as a tree* (shared nodes counted once per occurrence),
// which is the size measure used throughout the paper's evaluation;
// DAGSize reports the deduplicated measure. Construct expressions only
// through the exported constructors; the zero value of Expr is not
// valid. Expr values must never be copied (the memo fields are atomic).
type Expr struct {
	op       Op
	ann      Annot // valid iff op == OpVar
	kids     []*Expr
	size     int64
	hash     uint64
	interned bool
	// minimized and normalized cache the Minimize/Normalize results for
	// canonical nodes. Both functions are deterministic and, on interned
	// input, return interned output, so a racing double computation
	// stores the same pointer twice; the fields are atomic only to keep
	// concurrent readers well-defined.
	minimized  atomic.Pointer[Expr]
	normalized atomic.Pointer[Expr]
}

// zeroExpr is the canonical 0 node; Zero always returns it, so a
// syntactic zero test is a pointer or op comparison.
var zeroExpr = &Expr{op: OpZero, size: 1, hash: hashNode(OpZero, Annot{}, nil), interned: true}

// Zero returns the distinguished 0 expression.
func Zero() *Expr { return zeroExpr }

// Var returns the canonical expression consisting of the single basic
// annotation a.
func Var(a Annot) *Expr {
	return interns.intern(OpVar, a, nil, hashNode(OpVar, a, nil))
}

// TupleVar is shorthand for Var(TupleAnnot(name)).
func TupleVar(name string) *Expr { return Var(TupleAnnot(name)) }

// QueryVar is shorthand for Var(QueryAnnot(name)).
func QueryVar(name string) *Expr { return Var(QueryAnnot(name)) }

func binary(op Op, l, r *Expr) *Expr {
	// The fingerprint folds the children's cached hashes, so nested
	// constructor chains (Sum over Minus over Var) hash two words per
	// level instead of re-walking structure; the child slice the node
	// keeps is only allocated once the canonical lookup has missed.
	h := hashBinary(op, l.hash, r.hash)
	if !l.interned || !r.interned {
		// A raw (DeepCopy'd) child makes the parent raw: raw trees model
		// the paper's unshared tree memory and must not pollute the
		// intern table with nodes whose children are not canonical.
		return &Expr{op: op, kids: []*Expr{l, r}, size: 1 + l.size + r.size, hash: h}
	}
	return interns.internBinary(op, l, r, h)
}

// PlusI returns l +I r.
func PlusI(l, r *Expr) *Expr { return binary(OpPlusI, l, r) }

// Minus returns l − r.
func Minus(l, r *Expr) *Expr { return binary(OpMinus, l, r) }

// PlusM returns l +M r.
func PlusM(l, r *Expr) *Expr { return binary(OpPlusM, l, r) }

// DotM returns l ·M r.
func DotM(l, r *Expr) *Expr { return binary(OpDotM, l, r) }

// Sum returns the disjunction Σ kids. A sum of zero children is 0 and a
// sum of one child is that child; sums are otherwise kept n-ary and
// nested sums are flattened one level, matching the paper's treatment of
// Σ over a set of expressions.
func Sum(kids ...*Expr) *Expr {
	flat := make([]*Expr, 0, len(kids))
	for _, k := range kids {
		if k.op == OpSum {
			flat = append(flat, k.kids...)
		} else {
			flat = append(flat, k)
		}
	}
	switch len(flat) {
	case 0:
		return zeroExpr
	case 1:
		return flat[0]
	}
	h := hashNode(OpSum, Annot{}, flat)
	for _, k := range flat {
		if !k.interned {
			size := int64(1)
			for _, c := range flat {
				size += c.size
			}
			return &Expr{op: OpSum, kids: flat, size: size, hash: h}
		}
	}
	return interns.intern(OpSum, Annot{}, flat, h)
}

// Op reports the node kind.
func (e *Expr) Op() Op { return e.op }

// Annot returns the basic annotation of an OpVar node; it panics on any
// other node kind.
func (e *Expr) Annot() Annot {
	if e.op != OpVar {
		panic("core: Annot called on non-variable expression")
	}
	return e.ann
}

// NumChildren reports the number of children.
func (e *Expr) NumChildren() int { return len(e.kids) }

// Child returns the i'th child.
func (e *Expr) Child(i int) *Expr { return e.kids[i] }

// Children returns the children slice. The returned slice must not be
// modified.
func (e *Expr) Children() []*Expr { return e.kids }

// Left returns the left operand of a binary node.
func (e *Expr) Left() *Expr { return e.kids[0] }

// Right returns the right operand of a binary node.
func (e *Expr) Right() *Expr { return e.kids[1] }

// Size returns the tree size (number of nodes, shared nodes counted per
// occurrence) of the expression. This is the provenance-size measure of
// the paper's Section 6.
func (e *Expr) Size() int64 { return e.size }

// Hash returns a structural hash of the expression. Equal expressions
// have equal hashes; the converse holds with high probability only.
func (e *Expr) Hash() uint64 { return e.hash }

// IsZero reports whether the expression is the literal 0. Per Section 3.1
// a tuple is in the support of an annotated relation iff its annotation
// is not (syntactically) 0.
func (e *Expr) IsZero() bool { return e.op == OpZero }

// Equal reports structural equality of two expressions. For two
// interned expressions this is a pointer comparison: hash-consing makes
// structural equality O(1) in every caller (dedupExprs, SortedByHash,
// the rewrite-rule guards, the snapshot codec).
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil {
		return e == o
	}
	if e.interned && o.interned {
		// Distinct canonical nodes are structurally distinct.
		return false
	}
	if e.hash != o.hash || e.op != o.op || e.ann != o.ann || len(e.kids) != len(o.kids) {
		return false
	}
	for i := range e.kids {
		if !e.kids[i].Equal(o.kids[i]) {
			return false
		}
	}
	return true
}

// DeepCopy returns a structurally identical expression sharing no nodes
// with e. The naive provenance engine uses it to model the copying cost
// that the paper's Section 6.2 attributes to large naive expressions;
// the copies are deliberately NOT interned (and neither are trees built
// on top of them), so the copy-on-write configuration keeps paying the
// paper's tree-shaped memory. Intern restores canonical sharing.
func (e *Expr) DeepCopy() *Expr {
	if e.op == OpZero {
		return zeroExpr
	}
	var kids []*Expr
	if len(e.kids) > 0 {
		kids = make([]*Expr, len(e.kids))
		for i, k := range e.kids {
			kids[i] = k.DeepCopy()
		}
	}
	return &Expr{op: e.op, ann: e.ann, kids: kids, size: e.size, hash: e.hash}
}

// Annots appends every basic annotation occurring in e (with
// multiplicity removed) to the given map keyed by annotation. Pass nil to
// allocate a fresh map.
func (e *Expr) Annots(into map[Annot]struct{}) map[Annot]struct{} {
	if into == nil {
		into = make(map[Annot]struct{})
	}
	var walk func(x *Expr)
	seen := make(map[*Expr]struct{})
	walk = func(x *Expr) {
		if _, ok := seen[x]; ok {
			return
		}
		seen[x] = struct{}{}
		if x.op == OpVar {
			into[x.ann] = struct{}{}
			return
		}
		for _, k := range x.kids {
			walk(k)
		}
	}
	walk(e)
	return into
}

// Depth returns the height of the expression tree (a leaf has depth 1).
func (e *Expr) Depth() int {
	d := 0
	for _, k := range e.kids {
		if kd := k.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// DAGSize returns the number of distinct nodes reachable from e, i.e. the
// size of the expression when shared sub-expressions are stored once.
// The naive engine with copy-on-write disabled (an ablation, see package
// engine) produces expressions whose memory footprint is the DAG size
// even when the tree size is exponential.
func (e *Expr) DAGSize() int64 {
	return e.DAGSizeInto(make(map[*Expr]struct{}))
}

// DAGSizeInto adds every node reachable from e to seen and returns the
// number of nodes that were new. Passing one seen map across many
// expressions computes their combined DAG size — with hash-consing,
// the actual number of expression nodes held in memory for all of them
// (the measure engine.ProvDAGSize and the server stats report next to
// the paper's tree size).
func (e *Expr) DAGSizeInto(seen map[*Expr]struct{}) int64 {
	added := int64(0)
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if _, ok := seen[x]; ok {
			return
		}
		seen[x] = struct{}{}
		added++
		for _, k := range x.kids {
			walk(k)
		}
	}
	walk(e)
	return added
}

// SortedByHash returns a copy of the given expressions sorted by
// (hash, rendered string) — a deterministic order used to canonicalize
// sums, justified by axiom 1 (sum elements commute under +M chains) and
// the paper's treatment of Σ as ranging over a *set* of expressions.
func SortedByHash(es []*Expr) []*Expr {
	out := make([]*Expr, len(es))
	copy(out, es)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].hash != out[j].hash {
			return out[i].hash < out[j].hash
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// FNV-1a 64-bit parameters. The structural hash is computed with inline
// arithmetic rather than hash/fnv so constructor calls allocate nothing;
// the byte stream hashed — op, annotation kind, annotation name bytes,
// then each child hash little-endian — is exactly the hash/fnv encoding
// used by earlier versions, so hash values (and with them the
// SortedByHash sum order and snapshot bytes) are unchanged.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func hashNode(op Op, ann Annot, kids []*Expr) uint64 {
	h := hashHeader(op, ann)
	for _, k := range kids {
		h = hashWord(h, k.hash)
	}
	return h
}

// hashBinary is hashNode for a binary node given the child hashes
// directly, so constructor chains hash child fingerprints without
// materializing a kids slice.
func hashBinary(op Op, lh, rh uint64) uint64 {
	return hashWord(hashWord(hashHeader(op, Annot{}), lh), rh)
}

func hashHeader(op Op, ann Annot) uint64 {
	h := fnvOffset64
	h ^= uint64(op)
	h *= fnvPrime64
	h ^= uint64(ann.Kind)
	h *= fnvPrime64
	for i := 0; i < len(ann.Name); i++ {
		h ^= uint64(ann.Name[i])
		h *= fnvPrime64
	}
	return h
}

func hashWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}
