package core

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseExpr parses the textual notation produced by Expr.String:
// variables are identifiers, 0 is the zero element, the binary operators
// are "+I", "-", "+M" and "*M", and "+" denotes the disjunction Σ.
// Operators at the same parenthesis level must either all be "+"
// (forming one n-ary sum) or form a left-associative chain of binary
// operators; mixed levels require parentheses, which is what String
// emits. kindOf maps a variable name to its annotation kind; pass nil to
// treat every variable as a tuple annotation.
func ParseExpr(s string, kindOf func(string) AnnotKind) (*Expr, error) {
	if kindOf == nil {
		kindOf = func(string) AnnotKind { return KindTuple }
	}
	p := &exprParser{src: s, kindOf: kindOf}
	e, err := p.parseLevel()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("core: trailing input at offset %d in %q", p.pos, s)
	}
	return e, nil
}

type exprParser struct {
	src    string
	pos    int
	kindOf func(string) AnnotKind
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// parseLevel parses a chain "primary (op primary)*" at one parenthesis
// level.
func (p *exprParser) parseLevel() (*Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var sum []*Expr
	for {
		p.skipSpace()
		op, ok := p.peekOp()
		if !ok {
			break
		}
		if op == OpSum {
			if sum == nil {
				sum = []*Expr{left}
			}
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			sum = append(sum, right)
			continue
		}
		if sum != nil {
			return nil, fmt.Errorf("core: cannot mix + with binary operators without parentheses at offset %d", p.pos)
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = binary(op, left, right)
	}
	if sum != nil {
		return Sum(sum...), nil
	}
	return left, nil
}

// peekOp consumes and returns the next operator, if any.
func (p *exprParser) peekOp() (Op, bool) {
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "+I"):
		p.pos += 2
		return OpPlusI, true
	case strings.HasPrefix(rest, "+M"):
		p.pos += 2
		return OpPlusM, true
	case strings.HasPrefix(rest, "*M"):
		p.pos += 2
		return OpDotM, true
	case strings.HasPrefix(rest, "+"):
		p.pos++
		return OpSum, true
	case strings.HasPrefix(rest, "-"):
		p.pos++
		return OpMinus, true
	}
	return 0, false
}

func (p *exprParser) parsePrimary() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("core: unexpected end of input in %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseLevel()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("core: missing ')' at offset %d in %q", p.pos, p.src)
		}
		p.pos++
		return e, nil
	case c == '0' && (p.pos+1 == len(p.src) || !isIdent(rune(p.src[p.pos+1]))):
		p.pos++
		return zeroExpr, nil
	case isIdentStart(rune(c)):
		start := p.pos
		for p.pos < len(p.src) && isIdent(rune(p.src[p.pos])) {
			p.pos++
		}
		name := p.src[start:p.pos]
		return Var(Annot{Name: name, Kind: p.kindOf(name)}), nil
	default:
		return nil, fmt.Errorf("core: unexpected character %q at offset %d in %q", c, p.pos, p.src)
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdent(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}
