package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperprov/internal/core"
	"hyperprov/internal/upstruct"
)

func TestSimplifyZeroCases(t *testing.T) {
	z := core.Zero()
	p := qv("p")
	x := tv("x")
	cases := []struct {
		in   *core.Expr
		want *core.Expr
	}{
		{core.Minus(z, p), z},                         // 0 − a = 0
		{core.DotM(z, p), z},                          // 0 ·M a = 0
		{core.DotM(x, z), z},                          // a ·M 0 = 0
		{core.PlusM(z, x), x},                         // 0 +M a = a
		{core.PlusI(z, p), p},                         // 0 +I a = a
		{core.PlusI(x, z), x},                         // a +I 0 = a
		{core.PlusM(x, z), x},                         // a +M 0 = a
		{core.Minus(x, z), x},                         // a − 0 = a
		{core.Sum(x, z, p), core.Sum(x, p)},           // zero summand dropped
		{core.PlusM(z, core.DotM(core.Sum(x), z)), z}, // nested
		{core.PlusM(z, core.DotM(core.Sum(tv("a"), tv("b")), p)),
			core.DotM(core.Sum(tv("a"), tv("b")), p)}, // Example 3.1
	}
	for _, c := range cases {
		if got := core.SimplifyZero(c.in); !got.Equal(c.want) {
			t.Errorf("SimplifyZero(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSimplifyZeroNoChangeSharing(t *testing.T) {
	e := core.PlusM(tv("a"), core.DotM(tv("b"), qv("p")))
	if got := core.SimplifyZero(e); got != e {
		t.Error("SimplifyZero must return the same node when nothing changes")
	}
}

func TestMinimizeSortsAndDedups(t *testing.T) {
	a, b := tv("a"), tv("b")
	s1 := core.Minimize(core.Sum(a, b, a))
	s2 := core.Minimize(core.Sum(b, a))
	if !s1.Equal(s2) {
		t.Errorf("Minimize should canonicalize sums: %v vs %v", s1, s2)
	}
	if s1.NumChildren() != 2 {
		t.Errorf("duplicates must be dropped: %v", s1)
	}
}

func TestMinimizeExample57(t *testing.T) {
	// Example 5.7: the post-processing step turns
	// 0 +M ((p1 + p3) ·M p) into (p1 + p3) ·M p.
	e, err := core.ParseExpr("0 +M ((p1 + p3) *M p)", kindOf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ParseExpr("(p1 + p3) *M p", kindOf)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.Minimize(e); !got.Equal(core.Minimize(want)) {
		t.Errorf("Minimize = %v, want %v", got, want)
	}
}

// Both SimplifyZero and Minimize must preserve the semantics of the
// expression in every Update-Structure.
func TestZeroRewritesPreserveSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		e := randExpr(r, 5)
		s := core.SimplifyZero(e)
		m := core.Minimize(e)
		for trial := 0; trial < 8; trial++ {
			env := randBoolEnv(r)
			want := upstruct.Eval(e, upstruct.Bool, env)
			if upstruct.Eval(s, upstruct.Bool, env) != want {
				t.Logf("SimplifyZero changed semantics of %v -> %v", e, s)
				return false
			}
			if upstruct.Eval(m, upstruct.Bool, env) != want {
				t.Logf("Minimize changed semantics of %v -> %v", e, m)
				return false
			}
			senv := randSetEnv(r)
			swant := upstruct.Eval(e, upstruct.Sets, senv)
			if !upstruct.Eval(s, upstruct.Sets, senv).Equal(swant) {
				return false
			}
			if !upstruct.Eval(m, upstruct.Sets, senv).Equal(swant) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randBoolEnv returns a random but consistent Boolean valuation.
func randBoolEnv(r *rand.Rand) upstruct.Env[bool] {
	m := make(map[core.Annot]bool)
	return func(a core.Annot) bool {
		v, ok := m[a]
		if !ok {
			v = r.Intn(2) == 0
			m[a] = v
		}
		return v
	}
}

var setUniverse = []string{"IL", "FR", "US", "DE"}

// randSetEnv returns a random but consistent set valuation.
func randSetEnv(r *rand.Rand) upstruct.Env[upstruct.Set] {
	m := make(map[core.Annot]upstruct.Set)
	return func(a core.Annot) upstruct.Set {
		v, ok := m[a]
		if !ok {
			var elems []string
			for _, c := range setUniverse {
				if r.Intn(2) == 0 {
					elems = append(elems, c)
				}
			}
			v = upstruct.NewSet(elems...)
			m[a] = v
		}
		return v
	}
}
