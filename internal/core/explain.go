package core

import (
	"fmt"
	"io"
	"strings"
)

// Explain writes a human-readable, indented account of a provenance
// expression, describing what each operator records about the tuple's
// history. It is aimed at end users of the CLI inspecting why a tuple
// is (or is not) in the database; the notation-oriented String form is
// better suited for logs and tests.
func Explain(w io.Writer, e *Expr) error {
	return explain(w, e, 0)
}

// ExplainString is Explain into a string.
func ExplainString(e *Expr) string {
	var b strings.Builder
	_ = explain(&b, e, 0)
	return b.String()
}

func explain(w io.Writer, e *Expr, depth int) error {
	indent := strings.Repeat("  ", depth)
	var err error
	switch e.Op() {
	case OpZero:
		_, err = fmt.Fprintf(w, "%sabsent tuple (0)\n", indent)
	case OpVar:
		a := e.Annot()
		if a.Kind == KindQuery {
			_, err = fmt.Fprintf(w, "%stransaction %s\n", indent, a.Name)
		} else {
			_, err = fmt.Fprintf(w, "%sinput tuple %s\n", indent, a.Name)
		}
	case OpPlusI:
		if _, err = fmt.Fprintf(w, "%sinserted by\n", indent); err != nil {
			return err
		}
		if err = explain(w, e.Right(), depth+1); err != nil {
			return err
		}
		if _, err = fmt.Fprintf(w, "%sover prior state\n", indent); err != nil {
			return err
		}
		err = explain(w, e.Left(), depth+1)
	case OpMinus:
		if _, err = fmt.Fprintf(w, "%sdeleted by\n", indent); err != nil {
			return err
		}
		if err = explain(w, e.Right(), depth+1); err != nil {
			return err
		}
		if _, err = fmt.Fprintf(w, "%sfrom prior state\n", indent); err != nil {
			return err
		}
		err = explain(w, e.Left(), depth+1)
	case OpPlusM:
		if _, err = fmt.Fprintf(w, "%sreceived a modification\n", indent); err != nil {
			return err
		}
		if err = explain(w, e.Right(), depth+1); err != nil {
			return err
		}
		if _, err = fmt.Fprintf(w, "%son top of prior state\n", indent); err != nil {
			return err
		}
		err = explain(w, e.Left(), depth+1)
	case OpDotM:
		if _, err = fmt.Fprintf(w, "%ssource state\n", indent); err != nil {
			return err
		}
		if err = explain(w, e.Left(), depth+1); err != nil {
			return err
		}
		if _, err = fmt.Fprintf(w, "%supdated by\n", indent); err != nil {
			return err
		}
		err = explain(w, e.Right(), depth+1)
	case OpSum:
		if _, err = fmt.Fprintf(w, "%sany of %d merged sources\n", indent, e.NumChildren()); err != nil {
			return err
		}
		for _, k := range e.Children() {
			if err = explain(w, k, depth+1); err != nil {
				return err
			}
		}
	default:
		_, err = fmt.Fprintf(w, "%s?\n", indent)
	}
	return err
}
